# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/types_test[1]_include.cmake")
include("/root/repo/build/tests/ctrie_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/join_sort_test[1]_include.cmake")
include("/root/repo/build/tests/persistence_test[1]_include.cmake")
include("/root/repo/build/tests/csv_union_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/crosseval_test[1]_include.cmake")
