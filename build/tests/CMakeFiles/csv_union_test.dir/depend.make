# Empty dependencies file for csv_union_test.
# This may be replaced when dependencies are built.
