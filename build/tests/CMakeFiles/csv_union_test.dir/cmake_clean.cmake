file(REMOVE_RECURSE
  "CMakeFiles/csv_union_test.dir/csv_union_test.cpp.o"
  "CMakeFiles/csv_union_test.dir/csv_union_test.cpp.o.d"
  "csv_union_test"
  "csv_union_test.pdb"
  "csv_union_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_union_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
