# Empty dependencies file for join_sort_test.
# This may be replaced when dependencies are built.
