file(REMOVE_RECURSE
  "CMakeFiles/join_sort_test.dir/join_sort_test.cpp.o"
  "CMakeFiles/join_sort_test.dir/join_sort_test.cpp.o.d"
  "join_sort_test"
  "join_sort_test.pdb"
  "join_sort_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
