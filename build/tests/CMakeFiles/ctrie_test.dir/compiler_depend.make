# Empty compiler generated dependencies file for ctrie_test.
# This may be replaced when dependencies are built.
