file(REMOVE_RECURSE
  "CMakeFiles/crosseval_test.dir/crosseval_test.cpp.o"
  "CMakeFiles/crosseval_test.dir/crosseval_test.cpp.o.d"
  "crosseval_test"
  "crosseval_test.pdb"
  "crosseval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crosseval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
