# Empty dependencies file for crosseval_test.
# This may be replaced when dependencies are built.
