# Empty dependencies file for idf_storage.
# This may be replaced when dependencies are built.
