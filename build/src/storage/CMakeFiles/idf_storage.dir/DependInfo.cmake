
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/partition_store.cpp" "src/storage/CMakeFiles/idf_storage.dir/partition_store.cpp.o" "gcc" "src/storage/CMakeFiles/idf_storage.dir/partition_store.cpp.o.d"
  "/root/repo/src/storage/row_batch.cpp" "src/storage/CMakeFiles/idf_storage.dir/row_batch.cpp.o" "gcc" "src/storage/CMakeFiles/idf_storage.dir/row_batch.cpp.o.d"
  "/root/repo/src/storage/row_layout.cpp" "src/storage/CMakeFiles/idf_storage.dir/row_layout.cpp.o" "gcc" "src/storage/CMakeFiles/idf_storage.dir/row_layout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/types/CMakeFiles/idf_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/idf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
