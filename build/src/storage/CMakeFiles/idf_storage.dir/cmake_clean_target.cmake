file(REMOVE_RECURSE
  "libidf_storage.a"
)
