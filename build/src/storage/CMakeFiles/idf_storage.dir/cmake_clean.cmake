file(REMOVE_RECURSE
  "CMakeFiles/idf_storage.dir/partition_store.cpp.o"
  "CMakeFiles/idf_storage.dir/partition_store.cpp.o.d"
  "CMakeFiles/idf_storage.dir/row_batch.cpp.o"
  "CMakeFiles/idf_storage.dir/row_batch.cpp.o.d"
  "CMakeFiles/idf_storage.dir/row_layout.cpp.o"
  "CMakeFiles/idf_storage.dir/row_layout.cpp.o.d"
  "libidf_storage.a"
  "libidf_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idf_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
