file(REMOVE_RECURSE
  "CMakeFiles/idf_core.dir/indexed_agg.cpp.o"
  "CMakeFiles/idf_core.dir/indexed_agg.cpp.o.d"
  "CMakeFiles/idf_core.dir/indexed_dataframe.cpp.o"
  "CMakeFiles/idf_core.dir/indexed_dataframe.cpp.o.d"
  "CMakeFiles/idf_core.dir/indexed_ops.cpp.o"
  "CMakeFiles/idf_core.dir/indexed_ops.cpp.o.d"
  "CMakeFiles/idf_core.dir/indexed_partition.cpp.o"
  "CMakeFiles/idf_core.dir/indexed_partition.cpp.o.d"
  "CMakeFiles/idf_core.dir/indexed_rdd.cpp.o"
  "CMakeFiles/idf_core.dir/indexed_rdd.cpp.o.d"
  "CMakeFiles/idf_core.dir/indexed_rules.cpp.o"
  "CMakeFiles/idf_core.dir/indexed_rules.cpp.o.d"
  "CMakeFiles/idf_core.dir/persistence.cpp.o"
  "CMakeFiles/idf_core.dir/persistence.cpp.o.d"
  "libidf_core.a"
  "libidf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
