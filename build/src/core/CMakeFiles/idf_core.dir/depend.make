# Empty dependencies file for idf_core.
# This may be replaced when dependencies are built.
