
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/indexed_agg.cpp" "src/core/CMakeFiles/idf_core.dir/indexed_agg.cpp.o" "gcc" "src/core/CMakeFiles/idf_core.dir/indexed_agg.cpp.o.d"
  "/root/repo/src/core/indexed_dataframe.cpp" "src/core/CMakeFiles/idf_core.dir/indexed_dataframe.cpp.o" "gcc" "src/core/CMakeFiles/idf_core.dir/indexed_dataframe.cpp.o.d"
  "/root/repo/src/core/indexed_ops.cpp" "src/core/CMakeFiles/idf_core.dir/indexed_ops.cpp.o" "gcc" "src/core/CMakeFiles/idf_core.dir/indexed_ops.cpp.o.d"
  "/root/repo/src/core/indexed_partition.cpp" "src/core/CMakeFiles/idf_core.dir/indexed_partition.cpp.o" "gcc" "src/core/CMakeFiles/idf_core.dir/indexed_partition.cpp.o.d"
  "/root/repo/src/core/indexed_rdd.cpp" "src/core/CMakeFiles/idf_core.dir/indexed_rdd.cpp.o" "gcc" "src/core/CMakeFiles/idf_core.dir/indexed_rdd.cpp.o.d"
  "/root/repo/src/core/indexed_rules.cpp" "src/core/CMakeFiles/idf_core.dir/indexed_rules.cpp.o" "gcc" "src/core/CMakeFiles/idf_core.dir/indexed_rules.cpp.o.d"
  "/root/repo/src/core/persistence.cpp" "src/core/CMakeFiles/idf_core.dir/persistence.cpp.o" "gcc" "src/core/CMakeFiles/idf_core.dir/persistence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/idf_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/idf_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/idf_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/idf_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/idf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
