file(REMOVE_RECURSE
  "libidf_core.a"
)
