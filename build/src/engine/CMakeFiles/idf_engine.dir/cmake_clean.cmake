file(REMOVE_RECURSE
  "CMakeFiles/idf_engine.dir/cluster.cpp.o"
  "CMakeFiles/idf_engine.dir/cluster.cpp.o.d"
  "libidf_engine.a"
  "libidf_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idf_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
