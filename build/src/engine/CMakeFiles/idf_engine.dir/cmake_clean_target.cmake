file(REMOVE_RECURSE
  "libidf_engine.a"
)
