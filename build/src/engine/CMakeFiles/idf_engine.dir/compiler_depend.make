# Empty compiler generated dependencies file for idf_engine.
# This may be replaced when dependencies are built.
