file(REMOVE_RECURSE
  "libidf_workload.a"
)
