# Empty dependencies file for idf_workload.
# This may be replaced when dependencies are built.
