file(REMOVE_RECURSE
  "CMakeFiles/idf_workload.dir/broconn.cpp.o"
  "CMakeFiles/idf_workload.dir/broconn.cpp.o.d"
  "CMakeFiles/idf_workload.dir/flights.cpp.o"
  "CMakeFiles/idf_workload.dir/flights.cpp.o.d"
  "CMakeFiles/idf_workload.dir/snb.cpp.o"
  "CMakeFiles/idf_workload.dir/snb.cpp.o.d"
  "CMakeFiles/idf_workload.dir/tpcds.cpp.o"
  "CMakeFiles/idf_workload.dir/tpcds.cpp.o.d"
  "libidf_workload.a"
  "libidf_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idf_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
