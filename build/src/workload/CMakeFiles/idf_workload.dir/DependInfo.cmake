
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/broconn.cpp" "src/workload/CMakeFiles/idf_workload.dir/broconn.cpp.o" "gcc" "src/workload/CMakeFiles/idf_workload.dir/broconn.cpp.o.d"
  "/root/repo/src/workload/flights.cpp" "src/workload/CMakeFiles/idf_workload.dir/flights.cpp.o" "gcc" "src/workload/CMakeFiles/idf_workload.dir/flights.cpp.o.d"
  "/root/repo/src/workload/snb.cpp" "src/workload/CMakeFiles/idf_workload.dir/snb.cpp.o" "gcc" "src/workload/CMakeFiles/idf_workload.dir/snb.cpp.o.d"
  "/root/repo/src/workload/tpcds.cpp" "src/workload/CMakeFiles/idf_workload.dir/tpcds.cpp.o" "gcc" "src/workload/CMakeFiles/idf_workload.dir/tpcds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/idf_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/idf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/idf_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/idf_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/idf_types.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
