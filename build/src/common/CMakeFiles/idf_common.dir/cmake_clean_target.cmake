file(REMOVE_RECURSE
  "libidf_common.a"
)
