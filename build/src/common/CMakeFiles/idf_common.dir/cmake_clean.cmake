file(REMOVE_RECURSE
  "CMakeFiles/idf_common.dir/hash.cpp.o"
  "CMakeFiles/idf_common.dir/hash.cpp.o.d"
  "CMakeFiles/idf_common.dir/logging.cpp.o"
  "CMakeFiles/idf_common.dir/logging.cpp.o.d"
  "CMakeFiles/idf_common.dir/rng.cpp.o"
  "CMakeFiles/idf_common.dir/rng.cpp.o.d"
  "CMakeFiles/idf_common.dir/stats.cpp.o"
  "CMakeFiles/idf_common.dir/stats.cpp.o.d"
  "CMakeFiles/idf_common.dir/status.cpp.o"
  "CMakeFiles/idf_common.dir/status.cpp.o.d"
  "CMakeFiles/idf_common.dir/threadpool.cpp.o"
  "CMakeFiles/idf_common.dir/threadpool.cpp.o.d"
  "libidf_common.a"
  "libidf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
