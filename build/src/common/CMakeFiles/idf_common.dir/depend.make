# Empty dependencies file for idf_common.
# This may be replaced when dependencies are built.
