
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sql/columnar.cpp" "src/sql/CMakeFiles/idf_sql.dir/columnar.cpp.o" "gcc" "src/sql/CMakeFiles/idf_sql.dir/columnar.cpp.o.d"
  "/root/repo/src/sql/csv.cpp" "src/sql/CMakeFiles/idf_sql.dir/csv.cpp.o" "gcc" "src/sql/CMakeFiles/idf_sql.dir/csv.cpp.o.d"
  "/root/repo/src/sql/expr.cpp" "src/sql/CMakeFiles/idf_sql.dir/expr.cpp.o" "gcc" "src/sql/CMakeFiles/idf_sql.dir/expr.cpp.o.d"
  "/root/repo/src/sql/parser.cpp" "src/sql/CMakeFiles/idf_sql.dir/parser.cpp.o" "gcc" "src/sql/CMakeFiles/idf_sql.dir/parser.cpp.o.d"
  "/root/repo/src/sql/physical.cpp" "src/sql/CMakeFiles/idf_sql.dir/physical.cpp.o" "gcc" "src/sql/CMakeFiles/idf_sql.dir/physical.cpp.o.d"
  "/root/repo/src/sql/plan.cpp" "src/sql/CMakeFiles/idf_sql.dir/plan.cpp.o" "gcc" "src/sql/CMakeFiles/idf_sql.dir/plan.cpp.o.d"
  "/root/repo/src/sql/planner.cpp" "src/sql/CMakeFiles/idf_sql.dir/planner.cpp.o" "gcc" "src/sql/CMakeFiles/idf_sql.dir/planner.cpp.o.d"
  "/root/repo/src/sql/session.cpp" "src/sql/CMakeFiles/idf_sql.dir/session.cpp.o" "gcc" "src/sql/CMakeFiles/idf_sql.dir/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/idf_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/idf_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/idf_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/idf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
