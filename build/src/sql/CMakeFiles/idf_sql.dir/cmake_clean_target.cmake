file(REMOVE_RECURSE
  "libidf_sql.a"
)
