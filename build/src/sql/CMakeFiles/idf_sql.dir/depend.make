# Empty dependencies file for idf_sql.
# This may be replaced when dependencies are built.
