file(REMOVE_RECURSE
  "CMakeFiles/idf_sql.dir/columnar.cpp.o"
  "CMakeFiles/idf_sql.dir/columnar.cpp.o.d"
  "CMakeFiles/idf_sql.dir/csv.cpp.o"
  "CMakeFiles/idf_sql.dir/csv.cpp.o.d"
  "CMakeFiles/idf_sql.dir/expr.cpp.o"
  "CMakeFiles/idf_sql.dir/expr.cpp.o.d"
  "CMakeFiles/idf_sql.dir/parser.cpp.o"
  "CMakeFiles/idf_sql.dir/parser.cpp.o.d"
  "CMakeFiles/idf_sql.dir/physical.cpp.o"
  "CMakeFiles/idf_sql.dir/physical.cpp.o.d"
  "CMakeFiles/idf_sql.dir/plan.cpp.o"
  "CMakeFiles/idf_sql.dir/plan.cpp.o.d"
  "CMakeFiles/idf_sql.dir/planner.cpp.o"
  "CMakeFiles/idf_sql.dir/planner.cpp.o.d"
  "CMakeFiles/idf_sql.dir/session.cpp.o"
  "CMakeFiles/idf_sql.dir/session.cpp.o.d"
  "libidf_sql.a"
  "libidf_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idf_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
