file(REMOVE_RECURSE
  "CMakeFiles/idf_types.dir/schema.cpp.o"
  "CMakeFiles/idf_types.dir/schema.cpp.o.d"
  "CMakeFiles/idf_types.dir/value.cpp.o"
  "CMakeFiles/idf_types.dir/value.cpp.o.d"
  "libidf_types.a"
  "libidf_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idf_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
