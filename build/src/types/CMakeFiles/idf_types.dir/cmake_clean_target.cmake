file(REMOVE_RECURSE
  "libidf_types.a"
)
