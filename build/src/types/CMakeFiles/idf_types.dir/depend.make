# Empty dependencies file for idf_types.
# This may be replaced when dependencies are built.
