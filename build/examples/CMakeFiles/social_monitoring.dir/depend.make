# Empty dependencies file for social_monitoring.
# This may be replaced when dependencies are built.
