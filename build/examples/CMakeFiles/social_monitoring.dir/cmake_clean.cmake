file(REMOVE_RECURSE
  "CMakeFiles/social_monitoring.dir/social_monitoring.cpp.o"
  "CMakeFiles/social_monitoring.dir/social_monitoring.cpp.o.d"
  "social_monitoring"
  "social_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
