# Empty dependencies file for flights_dashboard.
# This may be replaced when dependencies are built.
