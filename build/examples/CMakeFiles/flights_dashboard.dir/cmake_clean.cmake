file(REMOVE_RECURSE
  "CMakeFiles/flights_dashboard.dir/flights_dashboard.cpp.o"
  "CMakeFiles/flights_dashboard.dir/flights_dashboard.cpp.o.d"
  "flights_dashboard"
  "flights_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flights_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
