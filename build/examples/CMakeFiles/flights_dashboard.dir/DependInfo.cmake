
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/flights_dashboard.cpp" "examples/CMakeFiles/flights_dashboard.dir/flights_dashboard.cpp.o" "gcc" "examples/CMakeFiles/flights_dashboard.dir/flights_dashboard.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/idf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/idf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/idf_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/idf_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/idf_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/idf_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/idf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
