file(REMOVE_RECURSE
  "CMakeFiles/threat_detection.dir/threat_detection.cpp.o"
  "CMakeFiles/threat_detection.dir/threat_detection.cpp.o.d"
  "threat_detection"
  "threat_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threat_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
