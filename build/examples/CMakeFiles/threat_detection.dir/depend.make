# Empty dependencies file for threat_detection.
# This may be replaced when dependencies are built.
