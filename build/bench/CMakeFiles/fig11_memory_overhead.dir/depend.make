# Empty dependencies file for fig11_memory_overhead.
# This may be replaced when dependencies are built.
