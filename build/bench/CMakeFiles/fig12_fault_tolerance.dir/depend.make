# Empty dependencies file for fig12_fault_tolerance.
# This may be replaced when dependencies are built.
