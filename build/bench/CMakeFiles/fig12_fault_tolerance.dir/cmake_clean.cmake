file(REMOVE_RECURSE
  "CMakeFiles/fig12_fault_tolerance.dir/fig12_fault_tolerance.cpp.o"
  "CMakeFiles/fig12_fault_tolerance.dir/fig12_fault_tolerance.cpp.o.d"
  "fig12_fault_tolerance"
  "fig12_fault_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_fault_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
