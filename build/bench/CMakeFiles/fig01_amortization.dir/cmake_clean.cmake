file(REMOVE_RECURSE
  "CMakeFiles/fig01_amortization.dir/fig01_amortization.cpp.o"
  "CMakeFiles/fig01_amortization.dir/fig01_amortization.cpp.o.d"
  "fig01_amortization"
  "fig01_amortization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_amortization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
