# Empty compiler generated dependencies file for fig01_amortization.
# This may be replaced when dependencies are built.
