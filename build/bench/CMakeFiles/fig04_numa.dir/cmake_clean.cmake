file(REMOVE_RECURSE
  "CMakeFiles/fig04_numa.dir/fig04_numa.cpp.o"
  "CMakeFiles/fig04_numa.dir/fig04_numa.cpp.o.d"
  "fig04_numa"
  "fig04_numa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_numa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
