file(REMOVE_RECURSE
  "CMakeFiles/micro_ctrie.dir/micro_ctrie.cpp.o"
  "CMakeFiles/micro_ctrie.dir/micro_ctrie.cpp.o.d"
  "micro_ctrie"
  "micro_ctrie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ctrie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
