# Empty dependencies file for micro_ctrie.
# This may be replaced when dependencies are built.
