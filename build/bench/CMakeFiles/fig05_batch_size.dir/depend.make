# Empty dependencies file for fig05_batch_size.
# This may be replaced when dependencies are built.
