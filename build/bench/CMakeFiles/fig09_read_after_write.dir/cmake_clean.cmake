file(REMOVE_RECURSE
  "CMakeFiles/fig09_read_after_write.dir/fig09_read_after_write.cpp.o"
  "CMakeFiles/fig09_read_after_write.dir/fig09_read_after_write.cpp.o.d"
  "fig09_read_after_write"
  "fig09_read_after_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_read_after_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
