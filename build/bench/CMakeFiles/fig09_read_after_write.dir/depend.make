# Empty dependencies file for fig09_read_after_write.
# This may be replaced when dependencies are built.
