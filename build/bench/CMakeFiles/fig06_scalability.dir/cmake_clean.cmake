file(REMOVE_RECURSE
  "CMakeFiles/fig06_scalability.dir/fig06_scalability.cpp.o"
  "CMakeFiles/fig06_scalability.dir/fig06_scalability.cpp.o.d"
  "fig06_scalability"
  "fig06_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
