# Empty dependencies file for fig06_scalability.
# This may be replaced when dependencies are built.
