# Empty compiler generated dependencies file for ablation_backptr.
# This may be replaced when dependencies are built.
