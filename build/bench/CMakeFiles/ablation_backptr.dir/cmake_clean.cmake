file(REMOVE_RECURSE
  "CMakeFiles/ablation_backptr.dir/ablation_backptr.cpp.o"
  "CMakeFiles/ablation_backptr.dir/ablation_backptr.cpp.o.d"
  "ablation_backptr"
  "ablation_backptr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_backptr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
