file(REMOVE_RECURSE
  "CMakeFiles/fig08_operators.dir/fig08_operators.cpp.o"
  "CMakeFiles/fig08_operators.dir/fig08_operators.cpp.o.d"
  "fig08_operators"
  "fig08_operators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
