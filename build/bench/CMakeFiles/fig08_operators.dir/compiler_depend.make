# Empty compiler generated dependencies file for fig08_operators.
# This may be replaced when dependencies are built.
