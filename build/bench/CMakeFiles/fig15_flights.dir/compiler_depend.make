# Empty compiler generated dependencies file for fig15_flights.
# This may be replaced when dependencies are built.
