file(REMOVE_RECURSE
  "CMakeFiles/fig15_flights.dir/fig15_flights.cpp.o"
  "CMakeFiles/fig15_flights.dir/fig15_flights.cpp.o.d"
  "fig15_flights"
  "fig15_flights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_flights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
