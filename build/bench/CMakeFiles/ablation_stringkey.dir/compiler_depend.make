# Empty compiler generated dependencies file for ablation_stringkey.
# This may be replaced when dependencies are built.
