file(REMOVE_RECURSE
  "CMakeFiles/ablation_stringkey.dir/ablation_stringkey.cpp.o"
  "CMakeFiles/ablation_stringkey.dir/ablation_stringkey.cpp.o.d"
  "ablation_stringkey"
  "ablation_stringkey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stringkey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
