# Empty compiler generated dependencies file for fig14_tpcds_scale.
# This may be replaced when dependencies are built.
