file(REMOVE_RECURSE
  "CMakeFiles/fig14_tpcds_scale.dir/fig14_tpcds_scale.cpp.o"
  "CMakeFiles/fig14_tpcds_scale.dir/fig14_tpcds_scale.cpp.o.d"
  "fig14_tpcds_scale"
  "fig14_tpcds_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_tpcds_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
