file(REMOVE_RECURSE
  "CMakeFiles/ablation_cow.dir/ablation_cow.cpp.o"
  "CMakeFiles/ablation_cow.dir/ablation_cow.cpp.o.d"
  "ablation_cow"
  "ablation_cow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
