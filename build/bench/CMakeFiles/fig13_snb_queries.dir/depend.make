# Empty dependencies file for fig13_snb_queries.
# This may be replaced when dependencies are built.
