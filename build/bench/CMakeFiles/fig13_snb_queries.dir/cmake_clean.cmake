file(REMOVE_RECURSE
  "CMakeFiles/fig13_snb_queries.dir/fig13_snb_queries.cpp.o"
  "CMakeFiles/fig13_snb_queries.dir/fig13_snb_queries.cpp.o.d"
  "fig13_snb_queries"
  "fig13_snb_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_snb_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
