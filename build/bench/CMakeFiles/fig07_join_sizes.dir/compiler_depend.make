# Empty compiler generated dependencies file for fig07_join_sizes.
# This may be replaced when dependencies are built.
