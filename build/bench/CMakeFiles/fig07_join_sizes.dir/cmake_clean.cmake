file(REMOVE_RECURSE
  "CMakeFiles/fig07_join_sizes.dir/fig07_join_sizes.cpp.o"
  "CMakeFiles/fig07_join_sizes.dir/fig07_join_sizes.cpp.o.d"
  "fig07_join_sizes"
  "fig07_join_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_join_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
