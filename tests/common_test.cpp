// Tests for src/common: status, hashing, RNG/Zipf, thread pool, stats.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>

#include "common/hash.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/threadpool.h"
#include "common/timer.h"

namespace idf {
namespace {

// ---- Status / Result ------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "key 42");
  EXPECT_EQ(s.ToString(), "NotFound: key 42");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  IDF_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  Status s = UseHalf(7, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

// ---- Hashing ----------------------------------------------------------------

TEST(HashTest, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(1), Mix64(1));
  EXPECT_NE(Mix64(1), Mix64(2));
  // Consecutive inputs should differ in roughly half the bits.
  int total_flips = 0;
  for (uint64_t i = 0; i < 256; ++i) {
    total_flips += std::popcount(Mix64(i) ^ Mix64(i + 1));
  }
  const double avg = total_flips / 256.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(HashTest, HashBytesMatchesByLengthClass) {
  // Exercise every tail path: <4, 4..7, 8..31, >=32 bytes.
  std::string data(100, 'x');
  for (size_t len : {0u, 1u, 3u, 4u, 7u, 8u, 15u, 31u, 32u, 33u, 64u, 100u}) {
    const uint64_t h1 = HashBytes(data.data(), len);
    const uint64_t h2 = HashBytes(data.data(), len);
    EXPECT_EQ(h1, h2) << len;
    if (len > 0) {
      std::string other = data.substr(0, len);
      other[len - 1] = 'y';
      EXPECT_NE(HashBytes(other.data(), len), h1) << len;
    }
  }
}

TEST(HashTest, SeedChangesHash) {
  EXPECT_NE(HashString("abc", 0), HashString("abc", 1));
}

TEST(HashTest, DoubleNegativeZeroEqualsPositiveZero) {
  EXPECT_EQ(HashDouble(0.0), HashDouble(-0.0));
}

TEST(HashTest, LowCollisionRateOnSmallStrings) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 20000; ++i) {
    seen.insert(HashString("key_" + std::to_string(i)));
  }
  EXPECT_EQ(seen.size(), 20000u);  // 64-bit: collisions vanishingly unlikely
}

// ---- RNG ------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, BelowRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.Below(bound), bound);
  }
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Below(kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextStringHasRequestedLengthAndAlphabet) {
  Rng rng(3);
  std::string s = rng.NextString(16);
  EXPECT_EQ(s.size(), 16u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(RngTest, DeterministicShuffleIsAPermutationAndStable) {
  std::vector<int> v1{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> v2 = v1;
  Rng r1(42), r2(42);
  DeterministicShuffle(v1, r1);
  DeterministicShuffle(v2, r2);
  EXPECT_EQ(v1, v2);
  std::multiset<int> elems(v1.begin(), v1.end());
  EXPECT_EQ(elems, (std::multiset<int>{1, 2, 3, 4, 5, 6, 7, 8}));
}

// ---- Zipf -------------------------------------------------------------------

TEST(ZipfTest, SamplesWithinDomain) {
  Rng rng(17);
  ZipfSampler zipf(1000, 1.1);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Sample(rng), 1000u);
}

TEST(ZipfTest, SingleElementDomain) {
  Rng rng(17);
  ZipfSampler zipf(1, 1.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

TEST(ZipfTest, RankZeroDominates) {
  Rng rng(23);
  ZipfSampler zipf(10000, 1.2);
  int rank0 = 0, rank_tail = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t r = zipf.Sample(rng);
    if (r == 0) ++rank0;
    if (r >= 5000) ++rank_tail;
  }
  // For s=1.2, P(rank 0) ~ 1/zeta ~ 17%+; the upper half carries a few %.
  EXPECT_GT(rank0, kDraws / 10);
  EXPECT_LT(rank_tail, kDraws / 10);
}

TEST(ZipfTest, ExponentOneSupported) {
  Rng rng(29);
  ZipfSampler zipf(100, 1.0);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 100u);
}

TEST(ZipfTest, FrequenciesAreMonotoneOverLeadingRanks) {
  Rng rng(31);
  ZipfSampler zipf(1000, 1.0);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 200000; ++i) ++counts[zipf.Sample(rng)];
  // Smooth check: rank 0 > rank 3 > rank 30 > rank 300 (allowing noise).
  EXPECT_GT(counts[0], counts[3]);
  EXPECT_GT(counts[3], counts[30]);
  EXPECT_GT(counts[30], counts[300]);
}

// ---- ThreadPool -------------------------------------------------------------

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.Submit([] { return 7 * 6; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
}

TEST(ThreadPoolTest, CountsCompletedTasks) {
  ThreadPool pool(2);
  pool.ParallelFor(10, [](size_t) {});
  EXPECT_EQ(pool.completed_tasks(), 10u);
}

TEST(ThreadPoolTest, ManyConcurrentIncrements) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.ParallelFor(1000, [&](size_t) { counter++; });
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

// ---- Stats ------------------------------------------------------------------

TEST(StatsTest, RunningStatBasics) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StatsTest, RunningStatEmpty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StatsTest, SampleQuantiles) {
  Sample s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 100.0);
  EXPECT_NEAR(s.Median(), 50.5, 1e-9);
  EXPECT_NEAR(s.Quantile(0.25), 25.75, 1e-9);
  EXPECT_NEAR(s.Quantile(0.75), 75.25, 1e-9);
  EXPECT_DOUBLE_EQ(s.Mean(), 50.5);
}

TEST(StatsTest, SampleSingleElement) {
  Sample s;
  s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.Median(), 3.5);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 3.5);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 3.5);
}

TEST(StatsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512.0 B");
  EXPECT_EQ(FormatBytes(4096), "4.0 KB");
  EXPECT_EQ(FormatBytes(4.0 * 1024 * 1024), "4.0 MB");
}

TEST(StatsTest, FormatSeconds) {
  EXPECT_EQ(FormatSeconds(0.5), "500.00 ms");
  EXPECT_EQ(FormatSeconds(2.0), "2.00 s");
  EXPECT_EQ(FormatSeconds(12e-6), "12.0 us");
}

TEST(TimerTest, StopwatchAdvances) {
  Stopwatch sw;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GT(sw.ElapsedNanos(), 0u);
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace idf
