// Tests for the observability layer: metrics registry (concurrent updates,
// JSON export), span tracing (nesting, Chrome trace well-formedness),
// logging sinks, the new TaskMetrics fields, and EXPLAIN ANALYZE — including
// the acceptance check that an indexed equi-join's reported per-operator
// rows, probe/hit counts, and COW/snapshot work match a known-cardinality
// input.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/threadpool.h"
#include "core/indexed_dataframe.h"
#include "core/indexed_partition.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace idf {
namespace {

// ---- minimal JSON syntax checker ------------------------------------------
// Hand-rolled so the tests can assert "this is valid JSON" without a
// dependency. Checks syntax only (no duplicate-key or semantic checks).

class JsonChecker {
 public:
  static bool Valid(const std::string& text) {
    JsonChecker c(text);
    c.SkipWs();
    if (!c.Value()) return false;
    c.SkipWs();
    return c.pos_ == c.text_.size();
  }

 private:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Literal(const char* word) {
    const size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }
  bool String() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Value() {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      if (!Value()) return false;
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') { ++pos_; continue; }
      if (text_[pos_] == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') { ++pos_; return true; }
    while (true) {
      if (!Value()) return false;
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') { ++pos_; continue; }
      if (text_[pos_] == ']') { ++pos_; return true; }
      return false;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

TEST(JsonCheckerTest, SanityOnItself) {
  EXPECT_TRUE(JsonChecker::Valid("{\"a\": [1, 2.5, -3e4, \"x\\\"y\"], "
                                 "\"b\": {\"c\": true, \"d\": null}}"));
  EXPECT_FALSE(JsonChecker::Valid("{\"a\": }"));
  EXPECT_FALSE(JsonChecker::Valid("{\"a\": 1,}"));
  EXPECT_FALSE(JsonChecker::Valid("[1, 2"));
  EXPECT_FALSE(JsonChecker::Valid("{} trailing"));
}

// ---- metrics registry -----------------------------------------------------

TEST(MetricsRegistryTest, ConcurrentCounterUpdatesLandExactlyOnce) {
  obs::Registry registry;
  obs::Counter& counter = registry.GetCounter("test.counter");
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  ThreadPool pool(kThreads);
  pool.ParallelFor(kThreads, [&](size_t) {
    for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
  });
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(MetricsRegistryTest, ConcurrentHistogramObservationsLandExactlyOnce) {
  obs::Registry registry;
  obs::Histogram& hist = registry.GetHistogram("test.hist");
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 5000;
  ThreadPool pool(kThreads);
  pool.ParallelFor(kThreads, [&](size_t t) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      hist.Observe(static_cast<double>(t + 1));
    }
  });
  EXPECT_EQ(hist.count(), kThreads * kPerThread);
  // Sum of t+1 for t in [0,8) is 36, times kPerThread observations each.
  EXPECT_DOUBLE_EQ(hist.sum(), 36.0 * kPerThread);
  EXPECT_DOUBLE_EQ(hist.min(), 1.0);
  EXPECT_DOUBLE_EQ(hist.max(), 8.0);
}

TEST(MetricsRegistryTest, ConcurrentGaugeAddIsLossless) {
  obs::Registry registry;
  obs::Gauge& gauge = registry.GetGauge("test.gauge");
  constexpr size_t kThreads = 4;
  ThreadPool pool(kThreads);
  pool.ParallelFor(kThreads, [&](size_t) {
    for (int i = 0; i < 10000; ++i) gauge.Add(1.0);
  });
  EXPECT_DOUBLE_EQ(gauge.value(), 40000.0);
}

TEST(MetricsRegistryTest, GetOrCreateReturnsStableReferences) {
  obs::Registry registry;
  obs::Counter& a = registry.GetCounter("same.name");
  obs::Counter& b = registry.GetCounter("same.name");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(MetricsRegistryTest, HistogramQuantilesAtBucketResolution) {
  obs::Registry registry;
  obs::Histogram& hist = registry.GetHistogram("test.quantiles");
  for (int v = 1; v <= 100; ++v) hist.Observe(v);
  EXPECT_DOUBLE_EQ(hist.min(), 1.0);
  EXPECT_DOUBLE_EQ(hist.max(), 100.0);
  EXPECT_DOUBLE_EQ(hist.mean(), 50.5);
  // Exponential buckets: estimates are upper bucket bounds, so p50 lands in
  // [median, 2*median) and p99 is clamped by the exact max.
  EXPECT_GE(hist.Quantile(0.5), 50.0);
  EXPECT_LE(hist.Quantile(0.5), 100.0);
  EXPECT_LE(hist.Quantile(0.99), 100.0);
  EXPECT_LE(hist.Quantile(0.5), hist.Quantile(0.99));
}

TEST(MetricsRegistryTest, EmptyHistogramReportsZeros) {
  obs::Registry registry;
  obs::Histogram& hist = registry.GetHistogram("test.empty");
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.min(), 0.0);
  EXPECT_DOUBLE_EQ(hist.max(), 0.0);
  EXPECT_DOUBLE_EQ(hist.Quantile(0.5), 0.0);
}

TEST(MetricsRegistryTest, TaggedNameSortsTags) {
  EXPECT_EQ(obs::TaggedName("m", {}), "m");
  EXPECT_EQ(obs::TaggedName("m", {{"stage", "join"}}), "m{stage=join}");
  EXPECT_EQ(obs::TaggedName("m", {{"stage", "join"}, {"executor", "3"}}),
            "m{executor=3,stage=join}");
}

TEST(MetricsRegistryTest, ToJsonIsWellFormedAndCompleteish) {
  obs::Registry registry;
  registry.GetCounter("c.one").Add(7);
  registry.GetGauge("g.two").Set(1.5);
  registry.GetHistogram("h.three").Observe(0.25);
  registry.GetCounter("weird\"name\\with\nescapes").Increment();
  const std::string json = registry.ToJson();
  EXPECT_TRUE(JsonChecker::Valid(json)) << json;
  EXPECT_NE(json.find("\"c.one\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"h.three\""), std::string::npos);
}

TEST(MetricsRegistryTest, SnapshotSortedByName) {
  obs::Registry registry;
  registry.GetCounter("zz");
  registry.GetCounter("aa");
  const auto snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "aa");
  EXPECT_EQ(snap[1].name, "zz");
}

// ---- tracing --------------------------------------------------------------

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::Global().Clear();
    obs::Tracer::Global().SetEnabled(true);
  }
  void TearDown() override {
    obs::Tracer::Global().SetEnabled(false);
    obs::Tracer::Global().Clear();
  }
};

TEST_F(TracerTest, SpansNestViaThreadLocalStack) {
  uint64_t outer_id = 0, inner_id = 0;
  {
    obs::Span outer("test", "outer");
    ASSERT_TRUE(outer.active());
    outer_id = obs::Span::CurrentId();
    EXPECT_NE(outer_id, 0u);
    {
      obs::Span inner("test", "inner");
      inner_id = obs::Span::CurrentId();
      EXPECT_NE(inner_id, outer_id);
      inner.AddArgInt("rows", 42);
    }
    EXPECT_EQ(obs::Span::CurrentId(), outer_id);
  }
  EXPECT_EQ(obs::Span::CurrentId(), 0u);

  const auto events = obs::Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Snapshot is ordered by start time: outer starts first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].parent_id, 0u);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].parent_id, outer_id);
  EXPECT_EQ(events[1].span_id, inner_id);
  EXPECT_GE(events[0].dur_us, events[1].dur_us);
}

TEST_F(TracerTest, DisabledSpansRecordNothing) {
  obs::Tracer::Global().SetEnabled(false);
  {
    obs::Span span("test", "ghost");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(obs::Span::CurrentId(), 0u);
  }
  EXPECT_TRUE(obs::Tracer::Global().Snapshot().empty());
}

TEST_F(TracerTest, EventsFromPoolThreadsAllLand) {
  constexpr size_t kThreads = 4;
  constexpr int kSpansPerThread = 50;
  ThreadPool pool(kThreads);
  pool.ParallelFor(kThreads, [&](size_t t) {
    for (int i = 0; i < kSpansPerThread; ++i) {
      obs::Span span("test", "t" + std::to_string(t));
    }
  });
  const auto events = obs::Tracer::Global().Snapshot();
  EXPECT_EQ(events.size(), kThreads * kSpansPerThread);
}

TEST_F(TracerTest, ChromeTraceJsonIsWellFormed) {
  {
    obs::Span outer("query", "q");
    outer.AddArg("sql", "SELECT \"quoted\"\nnewline");
    outer.AddArgNum("seconds", 0.25);
    obs::Span inner("stage", "s");
  }
  const std::string chrome = obs::Tracer::Global().ToChromeJson();
  EXPECT_TRUE(JsonChecker::Valid(chrome)) << chrome;
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);

  const std::string jsonl = obs::Tracer::Global().ToJsonl();
  std::istringstream lines(jsonl);
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(JsonChecker::Valid(line)) << line;
    ++count;
  }
  EXPECT_EQ(count, 2);
}

// ---- logging sinks --------------------------------------------------------

class CaptureSink final : public LogSink {
 public:
  void Write(LogLevel level, const std::string& message) override {
    levels.push_back(level);
    lines.push_back(message);
  }
  std::vector<LogLevel> levels;
  std::vector<std::string> lines;
};

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_level_ = GetLogLevel(); }
  void TearDown() override {
    ClearLogSinks();
    SetLogLevel(previous_level_);
  }
  LogLevel previous_level_;
};

TEST_F(LoggingTest, AddedSinkReceivesFormattedMessages) {
  auto sink = std::make_shared<CaptureSink>();
  AddLogSink(sink);
  SetLogLevel(LogLevel::kInfo);
  IDF_LOG_INFO("hello %s %d", "world", 7);
  IDF_LOG_DEBUG("dropped: below threshold");
  ASSERT_EQ(sink->lines.size(), 1u);
  EXPECT_EQ(sink->lines[0], "hello world 7");
  EXPECT_EQ(sink->levels[0], LogLevel::kInfo);
}

TEST_F(LoggingTest, EveryNEmitsFirstAndEveryNth) {
  auto sink = std::make_shared<CaptureSink>();
  AddLogSink(sink);
  SetLogLevel(LogLevel::kInfo);
  for (int i = 0; i < 10; ++i) {
    IDF_LOG_EVERY_N(Info, 4, "hit %d", i);
  }
  // Emits on i = 0, 4, 8.
  ASSERT_EQ(sink->lines.size(), 3u);
  EXPECT_EQ(sink->lines[0], "hit 0");
  EXPECT_EQ(sink->lines[1], "hit 4");
  EXPECT_EQ(sink->lines[2], "hit 8");
}

TEST_F(LoggingTest, JsonlFileSinkWritesOneValidObjectPerLine) {
  const std::string path =
      ::testing::TempDir() + "/obs_test_log.jsonl";
  std::remove(path.c_str());
  auto sink = MakeJsonlFileSink(path);
  ASSERT_NE(sink, nullptr);
  AddLogSink(sink);
  SetLogLevel(LogLevel::kWarn);
  IDF_LOG_WARN("watch \"out\": %s", "tab\there");
  IDF_LOG_ERROR("second line");
  ClearLogSinks();  // flushes via sink Write; file closed on sink release

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int count = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(JsonChecker::Valid(line)) << line;
    EXPECT_NE(line.find("\"level\":"), std::string::npos);
    ++count;
  }
  EXPECT_EQ(count, 2);
}

// ---- TaskMetrics ----------------------------------------------------------

TEST(TaskMetricsTest, MergeFromCoversNewFields) {
  TaskMetrics a, b;
  a.index_probes = 10;
  a.index_hits = 4;
  a.batch_copies = 2;
  a.ctrie_snapshots = 1;
  b.index_probes = 5;
  b.index_hits = 5;
  b.batch_copies = 3;
  b.ctrie_snapshots = 2;
  a.MergeFrom(b);
  EXPECT_EQ(a.index_probes, 15u);
  EXPECT_EQ(a.index_hits, 9u);
  EXPECT_EQ(a.batch_copies, 5u);
  EXPECT_EQ(a.ctrie_snapshots, 3u);
}

TEST(TaskMetricsTest, DeltaSinceSubtractsFieldwise) {
  TaskMetrics base;
  base.rows_read = 100;
  base.index_probes = 7;
  TaskMetrics now = base;
  now.rows_read = 150;
  now.index_probes = 10;
  now.index_hits = 2;
  const TaskMetrics d = now.DeltaSince(base);
  EXPECT_EQ(d.rows_read, 50u);
  EXPECT_EQ(d.index_probes, 3u);
  EXPECT_EQ(d.index_hits, 2u);
  EXPECT_EQ(d.rows_written, 0u);
}

// ---- EXPLAIN ANALYZE ------------------------------------------------------

SchemaPtr EdgeSchema() {
  return std::make_shared<Schema>(Schema({
      {"src", TypeId::kInt64, false},
      {"dst", TypeId::kInt64, false},
  }));
}

SchemaPtr ProbeSchema() {
  return std::make_shared<Schema>(Schema({
      {"pk", TypeId::kInt64, false},
      {"tag", TypeId::kInt64, false},
  }));
}

SessionOptions SmallOptions() {
  SessionOptions opts;
  opts.cluster.num_workers = 2;
  opts.cluster.executors_per_worker = 2;
  opts.cluster.cores_per_executor = 2;
  opts.default_partitions = 4;
  return opts;
}

/// 10 indexed keys (0..9) with 3 rows each; probes hit keys 0..4 and miss
/// 100..104 — known cardinalities: 10 probes, 5 hits, 15 join rows.
struct JoinFixture {
  Session session{SmallOptions()};
  IndexedDataFrame indexed;
  DataFrame probe;

  JoinFixture() {
    std::vector<RowVec> edges;
    for (int64_t k = 0; k < 10; ++k) {
      for (int64_t d = 0; d < 3; ++d) {
        edges.push_back({Value::Int64(k), Value::Int64(k * 10 + d)});
      }
    }
    auto df = *session.CreateTable("edges", EdgeSchema(), edges);
    indexed = *IndexedDataFrame::Create(df, "src");

    std::vector<RowVec> probes;
    for (int64_t k = 0; k < 5; ++k) {
      probes.push_back({Value::Int64(k), Value::Int64(k)});
    }
    for (int64_t k = 100; k < 105; ++k) {
      probes.push_back({Value::Int64(k), Value::Int64(k)});
    }
    probe = *session.CreateTable("probe", ProbeSchema(), probes);
  }
};

TEST(ExplainAnalyzeTest, IndexedJoinReportsKnownCardinalities) {
  JoinFixture fx;
  DataFrame joined = fx.indexed.Join(fx.probe, "pk");

  QueryMetrics qm;
  auto text = joined.ExplainAnalyze(&qm);
  ASSERT_TRUE(text.ok()) << text.status().message();

  // The analyzed row count must match what an independent execution collects.
  auto collected = joined.Collect();
  ASSERT_TRUE(collected.ok());
  EXPECT_EQ(collected->rows.size(), 15u);

  ASSERT_NE(qm.op_profile, nullptr);
  const OpProfile* join_prof = nullptr;
  for (const auto& [node, prof] : *qm.op_profile) {
    if (prof.label.find("IndexedJoinExec") != std::string::npos) {
      join_prof = &prof;
    }
  }
  ASSERT_NE(join_prof, nullptr) << joined.ExplainPhysical().value_or("?");
  EXPECT_EQ(join_prof->executions, 1u);
  EXPECT_EQ(join_prof->rows_out, 15u);
  EXPECT_GT(join_prof->bytes_out, 0u);
  EXPECT_EQ(join_prof->inclusive.index_probes, 10u);
  EXPECT_EQ(join_prof->inclusive.index_hits, 5u);

  // Rendered text carries the same numbers on the join operator's line.
  EXPECT_NE(text->find("IndexedJoinExec"), std::string::npos) << *text;
  EXPECT_NE(text->find("rows=15"), std::string::npos) << *text;
  EXPECT_NE(text->find("probes=10 hits=5"), std::string::npos) << *text;
  EXPECT_NE(text->find("-- "), std::string::npos) << *text;
}

TEST(ExplainAnalyzeTest, AppendRowsChargesSnapshotMetrics) {
  JoinFixture fx;
  // Append one row per existing key: every partition snapshots its parent
  // before inserting the routed rows.
  std::vector<RowVec> extra;
  for (int64_t k = 0; k < 10; ++k) {
    extra.push_back({Value::Int64(k), Value::Int64(900 + k)});
  }
  auto extra_df = *fx.session.CreateTable("extra", EdgeSchema(), extra);
  QueryMetrics qm;
  auto v1 = fx.indexed.AppendRows(extra_df, &qm);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->num_rows(), 40u);

  // One O(1) snapshot per partition (4 partitions).
  EXPECT_EQ(qm.totals.ctrie_snapshots, 4u);
  // Bulk appends size each fresh batch to the routed bytes (ReserveHint),
  // so the parent's tail was exactly full when it was sealed — opening the
  // next batch is a capacity rollover, not a COW divergence. The counter
  // distinguishes the two; see the CowBatchOpens test for the divergence
  // case.
  EXPECT_EQ(qm.totals.batch_copies, 0u);
}

TEST(ExplainAnalyzeTest, SnapshotWithRoomyTailCountsCowBatchOpens) {
  // Known-cardinality COW accounting at the partition level: a 64 KB batch
  // holds all 8 rows with room to spare, so sealing it via Snapshot() and
  // then writing on either side is a genuine copy-on-write divergence.
  IndexedPartition parent(EdgeSchema(), 0, 64 << 10);
  for (int64_t k = 0; k < 8; ++k) {
    IDF_CHECK_OK(parent.InsertRow({Value::Int64(k), Value::Int64(k)}));
  }
  EXPECT_EQ(parent.cow_batch_opens(), 0u);

  std::shared_ptr<IndexedPartition> child = parent.Snapshot();
  EXPECT_EQ(child->cow_batch_opens(), 0u);

  // First divergent write on the child opens a fresh batch (1 COW open);
  // subsequent writes reuse it.
  IDF_CHECK_OK(child->InsertRow({Value::Int64(100), Value::Int64(1)}));
  IDF_CHECK_OK(child->InsertRow({Value::Int64(101), Value::Int64(1)}));
  EXPECT_EQ(child->cow_batch_opens(), 1u);

  // The parent's tail was sealed by the same snapshot: its next write
  // diverges too, independently.
  IDF_CHECK_OK(parent.InsertRow({Value::Int64(200), Value::Int64(2)}));
  EXPECT_EQ(parent.cow_batch_opens(), 1u);

  // MVCC isolation: neither side sees the other's divergent rows.
  EXPECT_EQ(child->num_rows(), 10u);
  EXPECT_EQ(parent.num_rows(), 9u);
  EXPECT_TRUE(child->LookupRows(Value::Int64(200)).empty());
  EXPECT_TRUE(parent.LookupRows(Value::Int64(100)).empty());
}

TEST(ExplainAnalyzeTest, GetRowsCountsProbeAndHit) {
  JoinFixture fx;
  QueryMetrics hit_metrics;
  auto rows = fx.indexed.GetRows(Value::Int64(3), &hit_metrics);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 3u);
  EXPECT_EQ(hit_metrics.totals.index_probes, 1u);
  EXPECT_EQ(hit_metrics.totals.index_hits, 1u);

  QueryMetrics miss_metrics;
  auto missing = fx.indexed.GetRows(Value::Int64(777), &miss_metrics);
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->rows.empty());
  EXPECT_EQ(miss_metrics.totals.index_probes, 1u);
  EXPECT_EQ(miss_metrics.totals.index_hits, 0u);
}

TEST(ExplainAnalyzeTest, SqlExplainReturnsPlanRows) {
  JoinFixture fx;
  auto df = fx.session.Sql("EXPLAIN SELECT * FROM probe");
  ASSERT_TRUE(df.ok()) << df.status().message();
  auto collected = df->Collect();
  ASSERT_TRUE(collected.ok());
  ASSERT_EQ(collected->schema->num_fields(), 1u);
  EXPECT_EQ(collected->schema->field(0).name, "plan");
  ASSERT_FALSE(collected->rows.empty());
  bool saw_scan = false;
  for (const RowVec& row : collected->rows) {
    if (row[0].ToString().find("ScanExec") != std::string::npos) {
      saw_scan = true;
    }
  }
  EXPECT_TRUE(saw_scan);
  // The EXPLAIN result must not leak into the catalog.
  EXPECT_FALSE(fx.session.LookupTable("explain result").ok());
}

TEST(ExplainAnalyzeTest, SqlExplainAnalyzeAnnotatesOperators) {
  JoinFixture fx;
  auto df = fx.session.Sql(
      "EXPLAIN ANALYZE SELECT * FROM probe WHERE tag >= 100");
  ASSERT_TRUE(df.ok()) << df.status().message();
  auto collected = df->Collect();
  ASSERT_TRUE(collected.ok());
  bool saw_annotated_filter = false;
  bool saw_summary = false;
  for (const RowVec& row : collected->rows) {
    const std::string line = row[0].ToString();
    if (line.find("FilterExec") != std::string::npos &&
        line.find("rows=5") != std::string::npos) {
      saw_annotated_filter = true;
    }
    if (line.find("-- ") != std::string::npos &&
        line.find("stages") != std::string::npos) {
      saw_summary = true;
    }
  }
  EXPECT_TRUE(saw_annotated_filter);
  EXPECT_TRUE(saw_summary);
}

TEST(ExplainAnalyzeTest, ExplainWithoutQueryIsAnError) {
  Session session(SmallOptions());
  EXPECT_FALSE(session.Sql("EXPLAIN").ok());
  EXPECT_FALSE(session.Sql("EXPLAIN ANALYZE").ok());
}

}  // namespace
}  // namespace idf
