// Chaos differential gate (src/testing/chaos.h, docs/TESTING.md).
//
// The contract under test, for ANY seeded chaos schedule: a query either
// returns results byte-identical to a clean run, or fails cleanly — a
// retryable status (kUnavailable / kCancelled / kDeadlineExceeded /
// kResourceExhausted) with zero leaked reservations, zero leaked pins, and
// no orphan state poisoning later queries.
//
// The sweep runs the same read-only workload under IDF_CHAOS_SWEEP distinct
// seeds (default 20) of ChaosConfig::Mixed — every fault class armed:
// task delays (forced steals), forced world evictions between AND during
// tasks (background evictor on every 4th seed), executor kills mid-stage,
// budget squeezes, demand/prefetch reload failures and delays, shuffle
// stalls and aborts. Every failing expectation names the seed; export
// IDF_CHAOS_SEED=<seed> to replay exactly that schedule (the sweep then
// runs only that seed), and the flight-recorder journal of the failing run
// is dumped to $IDF_EVENTS_DIR for post-mortem (tools/idf_events.py).
//
// Unlike most suites this one does NOT unset IDF_MEMORY_BUDGET: the gate
// must hold under any budget, and the CI chaos leg deliberately pins a
// small one to keep the spill/reload machinery hot.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/indexed_dataframe.h"
#include "mem/governor.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "server/query_service.h"
#include "sql/session.h"
#include "testing/chaos.h"

namespace idf {
namespace {

uint64_t CounterValue(const std::string& name) {
  return obs::Registry::Global().GetCounter(name).value();
}

/// Arms the global engine for the enclosing scope; always disarms on exit
/// (before the enclosing Session is torn down — declare it second).
class ScopedChaos {
 public:
  explicit ScopedChaos(const chaos::ChaosConfig& config) {
    chaos::ChaosEngine::Global().Arm(config);
  }
  ~ScopedChaos() { chaos::ChaosEngine::Global().Disarm(); }
  ScopedChaos(const ScopedChaos&) = delete;
  ScopedChaos& operator=(const ScopedChaos&) = delete;
};

SchemaPtr EdgeSchema() {
  return std::make_shared<Schema>(Schema({
      {"src", TypeId::kInt64, false},
      {"dst", TypeId::kInt64, false},
      {"weight", TypeId::kFloat64, true},
  }));
}

RowVec Edge(int64_t src, int64_t dst, double w = 1.0) {
  return {Value::Int64(src), Value::Int64(dst), Value::Float64(w)};
}

std::vector<RowVec> DenseEdges(int64_t n, int64_t salt = 0) {
  std::vector<RowVec> rows;
  rows.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back(
        Edge((i + salt) % 97, i, 0.25 * static_cast<double>(i + salt)));
  }
  return rows;
}

SessionOptions ChaosClusterOptions(uint64_t budget = 0) {
  SessionOptions opts;
  opts.cluster.num_workers = 2;
  opts.cluster.executors_per_worker = 2;
  opts.cluster.cores_per_executor = 2;
  opts.cluster.memory_budget_bytes = budget;
  opts.default_partitions = 4;
  return opts;
}

/// The failure-message suffix that makes any mismatch reproducible.
std::string ReplayHint(uint64_t seed) {
  return "chaos seed " + std::to_string(seed) +
         " — replay with IDF_CHAOS_SEED=" + std::to_string(seed);
}

/// A clean failure the gate accepts: the classes a client retries.
bool IsRetryable(const Status& s) {
  return s.code() == StatusCode::kUnavailable ||
         s.code() == StatusCode::kCancelled ||
         s.code() == StatusCode::kDeadlineExceeded ||
         s.code() == StatusCode::kResourceExhausted;
}

/// Zero-leak gate, checked after every chaos schedule: no reservation
/// survived its query, and no pin survived its scope. Transient pins (the
/// per-thread hint slot) linger by design; the scrub releases them first so
/// only genuinely leaked pins fail the gate.
void ExpectNoLeaks(uint64_t seed) {
  mem::MemoryGovernor& gov = mem::MemoryGovernor::Global();
  EXPECT_EQ(gov.reserved_bytes(), 0u)
      << "leaked reservation; " << ReplayHint(seed);
  gov.ScrubTransientPinsForTesting();
  EXPECT_EQ(gov.TotalPinsForTesting(), 0u)
      << "leaked pin; " << ReplayHint(seed);
}

/// Dumps the flight-recorder ring (which holds every injected chaos_fault
/// of the failing schedule) where the CI chaos leg uploads artifacts from.
void DumpJournalForSeed(uint64_t seed) {
  const char* dir = std::getenv("IDF_EVENTS_DIR");
  const std::string path = std::string(dir != nullptr ? dir : ".") +
                           "/idf-chaos-seed-" + std::to_string(seed) +
                           ".events.jsonl";
  const Status dumped = obs::FlightRecorder::Global().DumpJsonl(path);
  std::fprintf(stderr, "[chaos] seed %llu FAILED — events journal: %s (%s)\n",
               static_cast<unsigned long long>(seed), path.c_str(),
               dumped.ok() ? "written" : dumped.ToString().c_str());
}

/// Seeds for this run: IDF_CHAOS_SEED pins a single schedule (replay);
/// otherwise IDF_CHAOS_SWEEP distinct seeds (default 20).
std::vector<uint64_t> SweepSeeds() {
  if (const char* env = std::getenv("IDF_CHAOS_SEED")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env) return {static_cast<uint64_t>(v)};
  }
  uint64_t count = 20;
  if (const char* env = std::getenv("IDF_CHAOS_SWEEP")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && v > 0) count = static_cast<uint64_t>(v);
  }
  std::vector<uint64_t> seeds;
  for (uint64_t i = 1; i <= count; ++i) seeds.push_back(i);
  return seeds;
}

// ---- differential sweep -----------------------------------------------------

struct WorkloadResult {
  size_t hits = 0;
  std::vector<std::string> join;
  std::vector<std::string> scan;
};

/// The read-only query mix every seed replays: an indexed lookup, a join,
/// and a full scan. Read-only keeps the differential crisp — either every
/// byte matches the clean run or the failure status explains itself.
Result<WorkloadResult> RunWorkload(const IndexedDataFrame& indexed,
                                   const DataFrame& probe) {
  WorkloadResult r;
  IDF_ASSIGN_OR_RETURN(CollectedTable hits, indexed.GetRows(Value::Int64(13)));
  r.hits = hits.rows.size();
  IDF_ASSIGN_OR_RETURN(CollectedTable join,
                       indexed.Join(probe, "src").Collect());
  r.join = join.SortedRowStrings();
  IDF_ASSIGN_OR_RETURN(CollectedTable scan, indexed.AsDataFrame().Collect());
  r.scan = scan.SortedRowStrings();
  return r;
}

TEST(ChaosTest, SeededSweepIsByteIdenticalOrCleanlyRetryable) {
  constexpr int64_t kRows = 8000;
  IndexOptions index_options;
  index_options.batch_capacity = 8 << 10;

  // Clean reference, computed once.
  WorkloadResult expected;
  {
    Session session(ChaosClusterOptions());
    auto edges = *session.CreateTable("edges", EdgeSchema(), DenseEdges(kRows));
    auto probe =
        *session.CreateTable("probe", EdgeSchema(), DenseEdges(300, 3));
    auto indexed = *IndexedDataFrame::Create(edges, "src", index_options);
    auto clean = RunWorkload(indexed, probe);
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();
    expected = *clean;
  }

  uint64_t total_faults = 0;
  uint64_t total_retryable = 0;
  for (uint64_t seed : SweepSeeds()) {
    SCOPED_TRACE(ReplayHint(seed));
    {
      // Tight budget: the reload/spill machinery must be hot for the
      // reload- and eviction-class faults to bite.
      Session session(ChaosClusterOptions(512 << 10));
      auto edges =
          *session.CreateTable("edges", EdgeSchema(), DenseEdges(kRows));
      auto probe =
          *session.CreateTable("probe", EdgeSchema(), DenseEdges(300, 3));
      auto indexed = *IndexedDataFrame::Create(edges, "src", index_options);

      chaos::ChaosConfig config = chaos::ChaosConfig::Mixed(seed);
      // Every 4th seed also runs the background evictor, which force-evicts
      // the world *while* tasks run (wall-clock timing, seeded decisions).
      if (seed % 4 == 0) config.evictor_period_us = 500;
      ScopedChaos armed(config);

      for (int round = 0; round < 3; ++round) {
        auto got = RunWorkload(indexed, probe);
        if (got.ok()) {
          EXPECT_EQ(got->hits, expected.hits);
          EXPECT_EQ(got->join, expected.join);
          EXPECT_EQ(got->scan, expected.scan);
        } else {
          EXPECT_TRUE(IsRetryable(got.status()))
              << "non-retryable failure: " << got.status().ToString();
          ++total_retryable;
        }
      }
      total_faults += chaos::ChaosEngine::Global().faults_injected();
    }
    ExpectNoLeaks(seed);
    if (::testing::Test::HasFailure()) {
      DumpJournalForSeed(seed);
      break;  // the first failing seed is the repro; stop sweeping
    }
  }
  std::fprintf(stderr,
               "[chaos] sweep done: %llu faults injected, %llu retryable "
               "query failures, rest byte-identical\n",
               static_cast<unsigned long long>(total_faults),
               static_cast<unsigned long long>(total_retryable));
  // Mixed() probabilities are calibrated so a full sweep always injects.
  EXPECT_GT(total_faults, 0u);
}

// ---- decision determinism ---------------------------------------------------

/// One packed word per decision the engine handed back, so two schedules
/// compare with a single vector equality.
uint64_t Pack(const chaos::TaskAction& a) {
  return (static_cast<uint64_t>(a.delay_us) << 8) |
         (a.evict_world ? 1u : 0u) | (a.kill_executor ? 2u : 0u) |
         (a.cancel_query ? 4u : 0u) | (a.expire_query ? 8u : 0u) |
         (a.squeeze_budget ? 16u : 0u);
}

TEST(ChaosTest, DecisionScheduleIsAPureFunctionOfTheSeed) {
  // Replays a fixed synthetic visit sequence across every site and checks
  // the engine's decisions are a pure function of (seed, site, coordinates,
  // visit) — the property that makes IDF_CHAOS_SEED replay work at all.
  auto schedule = [](uint64_t seed) {
    chaos::ChaosEngine& engine = chaos::ChaosEngine::Global();
    chaos::ChaosConfig config = chaos::ChaosConfig::Mixed(seed);
    config.max_delay_us = 3;  // keep the in-place reload sleeps negligible
    engine.Arm(config);
    std::vector<uint64_t> trace;
    for (uint32_t i = 0; i < 300; ++i) {
      trace.push_back(Pack(engine.OnTaskStart(0xabcd, i % 16)));
      trace.push_back(static_cast<uint64_t>(
          engine.OnReload(42, i % 8, i % 3, /*prefetch=*/(i % 5) == 0)
              .code()));
      const chaos::ShuffleAction push = engine.OnShufflePush(7, i % 6, i % 4);
      trace.push_back((static_cast<uint64_t>(push.delay_us) << 1) |
                      (push.abort ? 1u : 0u));
      trace.push_back(engine.OnShufflePullDelayUs(7, i % 4));
      trace.push_back(engine.OnAdmissionDelayUs(1000 + i % 10));
    }
    engine.Disarm();
    return trace;
  };

  const auto a = schedule(7);
  EXPECT_EQ(a, schedule(7));  // same seed, same visits -> same schedule
  EXPECT_NE(a, schedule(8));  // a different seed draws a different one

  // Arming is itself journaled: the flight recorder carries the seed, so a
  // crash dump alone is enough to replay the run.
  bool saw_arm = false;
  for (const auto& event : obs::FlightRecorder::Global().Snapshot()) {
    if (event.type == obs::EventType::kChaosArm && event.a == 8) {
      saw_arm = true;
    }
  }
  EXPECT_TRUE(saw_arm);
}

// ---- fig12 fault tolerance under chaos --------------------------------------

TEST(ChaosTest, DoubleExecutorLossDuringPipelinedShuffleSalvagesExactly) {
  // The fig12_fault_tolerance scenario with the screws tightened: two
  // executors die at task boundaries *inside* a pipelined shuffled join,
  // under a ~25% budget, with an append the recovery must replay. Salvage
  // (spill files co-owned by the catalog) plus lineage recompute must hand
  // back byte-identical rows — at worst after one clean retry.
  constexpr int64_t kRows = 20000;
  ::setenv("IDF_SHUFFLE_PIPELINE", "1", 1);
  IndexOptions index_options;
  index_options.batch_capacity = 16 << 10;
  mem::MemoryGovernor& gov = mem::MemoryGovernor::Global();

  // Clean reference; also sizes the working set for the 25% budget below.
  std::vector<std::string> expected;
  uint64_t working_set = 0;
  {
    const uint64_t resident_before = gov.resident_bytes();
    SessionOptions opts = ChaosClusterOptions();
    opts.broadcast_threshold_bytes = 0;  // force the shuffled join path
    Session session(opts);
    auto edges = *session.CreateTable("edges", EdgeSchema(), DenseEdges(kRows));
    auto extra =
        *session.CreateTable("extra", EdgeSchema(), DenseEdges(1000, 11));
    auto probe =
        *session.CreateTable("probe", EdgeSchema(), DenseEdges(400, 7));
    auto indexed = *IndexedDataFrame::Create(edges, "src", index_options);
    indexed = *indexed.AppendRows(extra);
    working_set = gov.resident_bytes() - resident_before;
    expected = indexed.Join(probe, "src").Collect()->SortedRowStrings();
  }
  ASSERT_GT(working_set, 0u);

  SessionOptions opts = ChaosClusterOptions();
  opts.broadcast_threshold_bytes = 0;
  Session session(opts);
  // The ~25% budget is this test's premise (spills must exist for salvage
  // to recover); apply it with ScopedBudget so an ambient IDF_MEMORY_BUDGET
  // (the CI chaos leg pins 64m) cannot override it.
  mem::ScopedBudget tight(std::max<uint64_t>(working_set / 4, 128 << 10));
  auto edges = *session.CreateTable("edges", EdgeSchema(), DenseEdges(kRows));
  auto extra =
      *session.CreateTable("extra", EdgeSchema(), DenseEdges(1000, 11));
  auto probe = *session.CreateTable("probe", EdgeSchema(), DenseEdges(400, 7));
  auto indexed = *IndexedDataFrame::Create(edges, "src", index_options);
  indexed = *indexed.AppendRows(extra);

  // Scripted double loss on the chaos bus: the 3rd and 8th task boundaries
  // of the join kill executors 1 and 2 mid-stage (already-claimed tasks
  // keep running on their host threads; the dead executors' blocks drop).
  std::atomic<int> task_starts{0};
  std::atomic<int> kills{0};
  chaos::ChaosHooks hooks;
  hooks.on_task_start = [&] {
    const int n = task_starts.fetch_add(1);
    if (n == 2 && session.cluster().TryKillExecutor(1)) kills.fetch_add(1);
    if (n == 7 && session.cluster().TryKillExecutor(2)) kills.fetch_add(1);
  };
  chaos::ChaosEngine::SetHooks(std::move(hooks));

  const uint64_t salvaged_before = CounterValue("mem.salvage.segments");
  auto under_loss = indexed.Join(probe, "src").Collect();
  chaos::ChaosEngine::SetHooks({});
  EXPECT_EQ(kills.load(), 2);

  if (under_loss.ok()) {
    EXPECT_EQ(under_loss->SortedRowStrings(), expected);
  } else {
    // Blocks dropped out from under in-flight reads: a clean retryable
    // failure, and the retry must recover everything from salvage+lineage.
    EXPECT_TRUE(IsRetryable(under_loss.status()))
        << under_loss.status().ToString();
  }
  auto retried = indexed.Join(probe, "src").Collect();
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(retried->SortedRowStrings(), expected);
  EXPECT_GT(CounterValue("mem.salvage.segments"), salvaged_before);
  ::unsetenv("IDF_SHUFFLE_PIPELINE");
}

// ---- admission-queue churn storm --------------------------------------------

TEST(ChaosTest, AdmissionChurnStormLeavesNoReservationAndDrainsQueue) {
  // Randomized submit/cancel/deadline storm against the query service with
  // admission chaos armed (dequeue delays widen every cancel/deadline race,
  // task-boundary chaos fires cancels and deadline expiries mid-query).
  // Whatever the interleaving: every handle terminates, successful results
  // are byte-identical, failures are retryable, the queue drains, and not
  // one byte of reservation survives.
  constexpr int64_t kRows = 6000;
  Session session(ChaosClusterOptions(24 << 20));
  IndexOptions index_options;
  index_options.batch_capacity = 8 << 10;
  auto edges = *session.CreateTable("edges", EdgeSchema(), DenseEdges(kRows));
  auto probe = *session.CreateTable("probe", EdgeSchema(), DenseEdges(200, 5));
  auto indexed = *IndexedDataFrame::Create(edges, "src", index_options);
  const std::vector<std::string> expected =
      indexed.Join(probe, "src").Collect()->SortedRowStrings();
  const size_t expected_hits =
      indexed.GetRows(Value::Int64(29)).value().rows.size();

  mem::MemoryGovernor& gov = mem::MemoryGovernor::Global();
  ASSERT_EQ(gov.reserved_bytes(), 0u);

  const uint64_t seed = SweepSeeds().front();
  chaos::ChaosConfig config = chaos::ChaosConfig::Mixed(seed);
  config.admit_delay_p = 0.5;    // hammer the dequeue->admission window
  config.task_cancel_p = 0.05;   // and fire controls at task boundaries
  config.task_deadline_p = 0.05;
  config.task_kill_p = 0;        // keep the fleet up: this test is about
  config.evictor_period_us = 0;  // admission, not recovery
  ScopedChaos armed(config);

  server::QueryServiceConfig service_config;
  service_config.workers = 3;
  service_config.max_queue = 16;  // small queue: overflow rejections too
  service_config.default_reservation_bytes = 4 << 20;
  service_config.policy = server::AdmitPolicy::kQueue;
  server::QueryService service(session, service_config);

  // Client-side churn is seeded too (same base seed, named by the trace
  // below) — only thread scheduling varies between runs, which the gate
  // tolerates by construction.
  SCOPED_TRACE(ReplayHint(seed));
  std::mutex handles_mu;
  std::vector<server::QueryHandle> handles;
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937_64 rng(seed * 1000 + static_cast<uint64_t>(c));
      for (int i = 0; i < 30; ++i) {
        server::QueryOptions options;
        options.priority = static_cast<int32_t>(rng() % 3);
        const uint64_t dice = rng() % 10;
        if (dice < 3) {
          // A deadline so short it usually fires while queued or mid-run.
          options.deadline_seconds = 1e-4;
        } else if (dice < 5) {
          options.deadline_seconds = 5.0;  // comfortably slack
        }
        server::QueryHandle handle = service.Submit(
            [&](server::QueryContext& ctx) -> Status {
              IDF_ASSIGN_OR_RETURN(ctx.result,
                                   indexed.Join(probe, "src").Collect());
              return Status::OK();
            },
            options);
        if (rng() % 4 == 0) handle.Cancel();  // client-side churn
        std::lock_guard<std::mutex> lock(handles_mu);
        handles.push_back(std::move(handle));
      }
    });
  }
  for (std::thread& t : clients) t.join();

  size_t ok = 0;
  size_t failed_retryable = 0;
  for (server::QueryHandle& handle : handles) {
    const Status status = handle.Wait();
    if (status.ok()) {
      ++ok;
      auto result = handle.TakeResult();
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(result->SortedRowStrings(), expected);
    } else {
      EXPECT_TRUE(IsRetryable(status)) << status.ToString();
      ++failed_retryable;
    }
  }
  EXPECT_EQ(ok + failed_retryable, handles.size());

  service.Shutdown(/*cancel_pending=*/false);  // drain whatever remains
  EXPECT_EQ(service.ActiveQueries(), 0u);
  EXPECT_EQ(gov.reserved_bytes(), 0u) << ReplayHint(seed);
  ExpectNoLeaks(seed);
  std::fprintf(stderr,
               "[chaos] storm: %zu ok, %zu retryable failures, "
               "%llu faults injected\n",
               ok, failed_retryable,
               static_cast<unsigned long long>(
                   chaos::ChaosEngine::Global().faults_injected()));

  // The shared state survived the storm: the same queries, clean, still
  // return the reference bytes.
  EXPECT_EQ(indexed.GetRows(Value::Int64(29)).value().rows.size(),
            expected_hits);
  EXPECT_EQ(indexed.Join(probe, "src").Collect()->SortedRowStrings(),
            expected);
}

}  // namespace
}  // namespace idf
