// Tests for observability v2: the flight recorder ring (wraparound under
// concurrent writers, JSONL encoding, crash-dump round trip through the
// signal-safe encoder and the python decoder) and the introspection
// endpoint (Prometheus /metrics with explicit buckets, /residency JSON,
// /events tail — all fetched over a real loopback socket while a budgeted
// query has actually exercised the governor).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/indexed_dataframe.h"
#include "mem/governor.h"
#include "obs/flight_recorder.h"
#include "obs/build_info.h"
#include "obs/introspect.h"
#include "obs/metrics_registry.h"
#include "obs/query_profile.h"
#include "sql/session.h"

namespace idf {
namespace {

using obs::EventType;
using obs::FlightEvent;
using obs::FlightRecorder;

// ---- ring buffer ----------------------------------------------------------

TEST(FlightRecorderTest, RecordsAndSnapshotsInOrder) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.SetEnabled(true);
  const uint32_t name = fr.InternName("fr-order-stage");
  const uint64_t base = fr.total_recorded();
  for (uint64_t i = 0; i < 100; ++i) {
    fr.Record(EventType::kTaskStart, name, i, i + 1, i + 2);
  }
  EXPECT_EQ(fr.total_recorded(), base + 100);

  std::vector<FlightEvent> events = fr.Snapshot();
  ASSERT_GE(events.size(), 100u);
  // Oldest-first, strictly increasing seq.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
  // The 100 we just wrote are the newest and carry the interned name.
  size_t matched = 0;
  for (const FlightEvent& e : events) {
    if (e.seq < base) continue;
    EXPECT_EQ(e.type, EventType::kTaskStart);
    EXPECT_EQ(e.name, "fr-order-stage");
    EXPECT_EQ(e.a + 1, e.b);
    EXPECT_EQ(e.a + 2, e.c);
    EXPECT_GT(e.tid, 0u);
    ++matched;
  }
  EXPECT_EQ(matched, 100u);
}

TEST(FlightRecorderTest, DisabledRecorderDropsEvents) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.SetEnabled(false);
  const uint64_t before = fr.total_recorded();
  fr.Record(EventType::kEvict, 0, 1, 2, 3);
  EXPECT_EQ(fr.total_recorded(), before);
  fr.SetEnabled(true);
}

TEST(FlightRecorderTest, InternNameIsIdempotent) {
  FlightRecorder& fr = FlightRecorder::Global();
  const uint32_t a = fr.InternName("fr-intern-x");
  const uint32_t b = fr.InternName("fr-intern-x");
  const uint32_t c = fr.InternName("fr-intern-y");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, 0u);
}

// The wraparound test: more events than kCapacity from several writers at
// once. Every snapshotted slot must be internally consistent (the payload
// invariant a+1==b holds), seqs must be unique and increasing, and the
// snapshot must never exceed the ring capacity. Runs under TSan in CI —
// the per-slot seqlock is exactly the kind of code a race detector eats.
TEST(FlightRecorderTest, WraparoundUnderConcurrentWriters) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.SetEnabled(true);
  const uint32_t name = fr.InternName("fr-wrap-stage");
  constexpr int kThreads = 8;
  const uint64_t per_thread = (FlightRecorder::kCapacity / kThreads) * 2;

  const uint64_t base = fr.total_recorded();
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (uint64_t i = 0; i < per_thread; ++i) {
        const uint64_t tag = static_cast<uint64_t>(t) << 32 | i;
        fr.Record(EventType::kSteal, name, tag, tag + 1, tag + 2);
      }
    });
  }
  go.store(true, std::memory_order_release);

  // Concurrent readers while the ring is lapping itself.
  for (int round = 0; round < 4; ++round) {
    std::vector<FlightEvent> mid = fr.Snapshot(1024);
    EXPECT_LE(mid.size(), 1024u);
    for (const FlightEvent& e : mid) {
      if (e.seq < base) continue;
      EXPECT_EQ(e.a + 1, e.b);
      EXPECT_EQ(e.a + 2, e.c);
    }
  }
  for (std::thread& w : writers) w.join();

  EXPECT_EQ(fr.total_recorded(), base + kThreads * per_thread);
  std::vector<FlightEvent> events = fr.Snapshot();
  EXPECT_LE(events.size(), FlightRecorder::kCapacity);
  // The ring wrapped at least once, so it is full of our newest events.
  EXPECT_GT(events.size(), FlightRecorder::kCapacity / 2);
  int64_t last_seq = -1;
  for (const FlightEvent& e : events) {
    EXPECT_GT(static_cast<int64_t>(e.seq), last_seq);  // strictly increasing
    last_seq = static_cast<int64_t>(e.seq);
    if (e.seq < base) continue;
    EXPECT_EQ(e.type, EventType::kSteal);
    EXPECT_EQ(e.a + 1, e.b);
    EXPECT_EQ(e.a + 2, e.c);
    EXPECT_EQ(e.name, "fr-wrap-stage");
  }
  // Everything still in the ring is from the newest kCapacity tickets.
  EXPECT_GE(static_cast<uint64_t>(last_seq) + 1, fr.total_recorded());
}

TEST(FlightRecorderTest, JsonlLinesAreWellFormed) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.SetEnabled(true);
  const uint32_t name = fr.InternName("fr-jsonl \"quoted\\stage\"");
  fr.Record(EventType::kEvict, name, 123, 456, 789);
  const std::string jsonl = fr.ToJsonl(4);
  std::istringstream lines(jsonl);
  std::string line;
  size_t count = 0;
  bool saw_ours = false;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"seq\":"), std::string::npos);
    EXPECT_NE(line.find("\"ts_us\":"), std::string::npos);
    EXPECT_NE(line.find("\"type\":\""), std::string::npos);
    EXPECT_NE(line.find("\"tid\":"), std::string::npos);
    if (line.find("\"type\":\"evict\"") != std::string::npos &&
        line.find("\"a\":123") != std::string::npos) {
      saw_ours = true;
      // The name must be JSON-escaped (quote and backslash).
      EXPECT_NE(line.find("fr-jsonl \\\"quoted\\\\stage\\\""),
                std::string::npos);
    }
  }
  EXPECT_LE(count, 4u);
  EXPECT_TRUE(saw_ours);
}

// ---- crash dump round trip ------------------------------------------------

// The signal-safe encoder (DumpToFd) must produce the same JSONL the
// normal path does — verified byte-for-byte here, no dying required.
TEST(FlightRecorderTest, SignalSafeDumpMatchesToJsonl) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.SetEnabled(true);
  const uint32_t name = fr.InternName("fr-dump-stage");
  for (uint64_t i = 0; i < 16; ++i) {
    fr.Record(EventType::kSpillWrite, name, i * 4096, 7, i);
  }
  const std::string path =
      ::testing::TempDir() + "/fr_dumpfd_" + std::to_string(::getpid());
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  const size_t written = fr.DumpToFd(fd, 16);
  ::close(fd);
  EXPECT_EQ(written, 16u);

  std::ifstream in(path);
  std::stringstream file_contents;
  file_contents << in.rdbuf();
  // Not strictly equal to a fresh ToJsonl() — another test thread is not
  // running, but be safe: both encoders dump the same ring tail.
  EXPECT_EQ(file_contents.str(), fr.ToJsonl(16));
  std::remove(path.c_str());
}

TEST(FlightRecorderDeathTest, CrashHandlerDumpsDecodableJournal) {
  // Default ("fast") death-test style: the child is forked right here, so it
  // shares `dir` with the parent. Threadsafe style would re-execute the test
  // from the top in the child, which would recompute a pid-based dir.
  const std::string dir =
      ::testing::TempDir() + "/fr_crash_" + std::to_string(::getpid());
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);

  // The child installs the handler, records some context, then aborts. The
  // handler must write the journal and re-raise (so the child dies with
  // SIGABRT, which is what EXPECT_EXIT checks).
  EXPECT_EXIT(
      {
        FlightRecorder& fr = FlightRecorder::Global();
        fr.SetEnabled(true);
        const uint32_t name = fr.InternName("doomed-stage");
        fr.Record(EventType::kTaskStart, name, 3, 1, 0);
        fr.Record(EventType::kEvict, 0, 65536, 42, 5);
        FlightRecorder::InstallCrashHandler(dir);
        std::abort();
      },
      ::testing::KilledBySignal(SIGABRT),
      "flight recorder: crash journal written to ");

  // Find the child's journal (pid unknown): exactly one file in our dir.
  std::string journal;
  {
    DIR* d = ::opendir(dir.c_str());
    ASSERT_NE(d, nullptr);
    while (dirent* entry = ::readdir(d)) {
      const std::string file = entry->d_name;
      if (file.rfind("idf-crash-", 0) == 0) journal = dir + "/" + file;
    }
    ::closedir(d);
  }
  ASSERT_FALSE(journal.empty()) << "no crash journal in " << dir;

  // The journal must contain the pre-crash context and the crash marker
  // (signal 6 = SIGABRT), i.e. the handler dumped the live ring.
  std::ifstream in(journal);
  std::stringstream raw;
  raw << in.rdbuf();
  const std::string text = raw.str();
  EXPECT_NE(text.find("\"type\":\"crash\""), std::string::npos);
  EXPECT_NE(text.find("\"a\":6"), std::string::npos);  // SIGABRT
  EXPECT_NE(text.find("doomed-stage"), std::string::npos);

  // Round trip through the decoder when python3 is available.
  if (std::system("python3 -c '' >/dev/null 2>&1") == 0) {
    const std::string cmd = "python3 " + std::string(IDF_SOURCE_DIR) +
                            "/tools/idf_events.py --summary '" + journal +
                            "' > '" + dir + "/decoded.txt' 2>&1";
    EXPECT_EQ(std::system(cmd.c_str()), 0) << "decoder failed on " << journal;
    std::ifstream decoded(dir + "/decoded.txt");
    std::stringstream report;
    report << decoded.rdbuf();
    EXPECT_NE(report.str().find("crash"), std::string::npos) << report.str();
  }
}

// ---- introspection endpoint ----------------------------------------------

/// Minimal HTTP GET over loopback; returns the full response (headers+body).
std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

SessionOptions BudgetedOptions(uint64_t budget) {
  ::unsetenv("IDF_MEMORY_BUDGET");  // pin the exact budget under test
  SessionOptions opts;
  opts.cluster.num_workers = 2;
  opts.cluster.executors_per_worker = 2;
  opts.cluster.cores_per_executor = 2;
  opts.cluster.memory_budget_bytes = budget;
  opts.default_partitions = 4;
  return opts;
}

SchemaPtr EdgeSchema() {
  return std::make_shared<Schema>(Schema({
      {"src", TypeId::kInt64, false},
      {"dst", TypeId::kInt64, false},
      {"weight", TypeId::kFloat64, true},
  }));
}

TEST(IntrospectionServerTest, ServesMetricsResidencyAndEventsDuringQuery) {
  obs::IntrospectionServer& server = obs::IntrospectionServer::Global();
  Result<uint16_t> port = server.Start(0);  // ephemeral
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  ASSERT_GT(*port, 0);

  // A budgeted session: building the indexed table under a tight budget
  // forces evictions and reload faults, so /metrics and /residency have
  // real governor state to show and the recorder has events.
  constexpr int64_t kRows = 20000;
  IndexOptions index_options;
  index_options.batch_capacity = 16 << 10;
  Session session(BudgetedOptions(256 << 10));
  std::vector<RowVec> rows;
  rows.reserve(kRows);
  for (int64_t i = 0; i < kRows; ++i) {
    rows.push_back({Value::Int64(i % 97), Value::Int64(i),
                    Value::Float64(0.25 * static_cast<double>(i))});
  }
  auto edges = *session.CreateTable("edges", EdgeSchema(), rows);
  auto indexed = *IndexedDataFrame::Create(edges, "src", index_options);
  auto hits = indexed.GetRows(Value::Int64(13));
  ASSERT_TRUE(hits.ok());
  ASSERT_GT(hits->rows.size(), 0u);

  // /healthz
  const std::string health = HttpGet(*port, "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  // /metrics: Prometheus text with TYPE lines, governor counters, and
  // explicit cumulative histogram buckets closed by +Inf.
  const std::string metrics = HttpGet(*port, "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE mem_evictions counter"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE engine_task_seconds histogram"),
            std::string::npos);
  EXPECT_NE(metrics.find("engine_task_seconds_bucket{le=\""),
            std::string::npos);
  EXPECT_NE(metrics.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(metrics.find("engine_task_seconds_sum"), std::string::npos);
  EXPECT_NE(metrics.find("engine_task_seconds_count"), std::string::npos);

  // Bucket series for one histogram must be cumulative (non-decreasing).
  {
    std::istringstream lines(metrics);
    std::string line;
    uint64_t previous = 0;
    bool saw_bucket = false;
    while (std::getline(lines, line)) {
      if (line.rfind("engine_task_seconds_bucket", 0) != 0) continue;
      const size_t space = line.rfind(' ');
      ASSERT_NE(space, std::string::npos);
      const uint64_t value = std::strtoull(line.c_str() + space + 1,
                                           nullptr, 10);
      EXPECT_GE(value, previous) << line;
      previous = value;
      saw_bucket = true;
    }
    EXPECT_TRUE(saw_bucket);
  }

  // /residency: the governor's live map (registered by the engine layer).
  const std::string residency = HttpGet(*port, "/residency");
  EXPECT_NE(residency.find("200 OK"), std::string::npos);
  EXPECT_NE(residency.find("application/json"), std::string::npos);
  EXPECT_NE(residency.find("\"engaged\":true"), std::string::npos);
  EXPECT_NE(residency.find("\"budget_bytes\":"), std::string::npos);
  EXPECT_NE(residency.find("\"partitions\":["), std::string::npos);
  EXPECT_NE(residency.find("\"resident_bytes\":"), std::string::npos);

  // /events tail honours n= and returns recorder JSONL.
  const std::string events = HttpGet(*port, "/events?n=5");
  EXPECT_NE(events.find("200 OK"), std::string::npos);
  EXPECT_NE(events.find("application/x-ndjson"), std::string::npos);
  const std::string body = events.substr(events.find("\r\n\r\n") + 4);
  size_t lines = 0;
  for (const char ch : body) lines += ch == '\n';
  EXPECT_GT(lines, 0u);
  EXPECT_LE(lines, 5u);
  EXPECT_NE(body.find("\"type\":\""), std::string::npos);

  // Unknown paths 404 instead of crashing the serve loop.
  EXPECT_NE(HttpGet(*port, "/nope").find("404"), std::string::npos);

  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(IntrospectionServerTest, RestartsAfterStop) {
  obs::IntrospectionServer& server = obs::IntrospectionServer::Global();
  Result<uint16_t> first = server.Start(0);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(server.Start(0).ok());  // already running
  server.Stop();
  Result<uint16_t> second = server.Start(0);
  ASSERT_TRUE(second.ok());
  EXPECT_NE(HttpGet(*second, "/healthz").find("200 OK"), std::string::npos);
  server.Stop();
}

// ---- snapshot diff helper -------------------------------------------------

TEST(RegistryDeltaTest, CountersAndHistogramsDiff) {
  obs::Registry& reg = obs::Registry::Global();
  obs::Counter& counter = reg.GetCounter("fr_test.delta_counter");
  obs::Histogram& histogram = reg.GetHistogram("fr_test.delta_hist");
  counter.Add(5);
  histogram.Observe(1.0);

  obs::RegistryDelta delta;
  counter.Add(7);
  histogram.Observe(2.0);
  histogram.Observe(4.0);

  EXPECT_EQ(delta.Counter("fr_test.delta_counter"), 7u);
  EXPECT_EQ(delta.Counter("fr_test.nonexistent"), 0u);

  bool found = false;
  for (const obs::MetricSnapshot& s : delta.Deltas()) {
    if (s.name != "fr_test.delta_hist") continue;
    found = true;
    EXPECT_EQ(s.count, 2u);           // only the two post-baseline samples
    EXPECT_DOUBLE_EQ(s.sum, 6.0);
    uint64_t bucket_total = 0;
    for (const auto& [bound, n] : s.buckets) {
      (void)bound;
      bucket_total += n;
    }
    EXPECT_EQ(bucket_total, 2u);
  }
  EXPECT_TRUE(found);

  delta.Reset();
  EXPECT_EQ(delta.Counter("fr_test.delta_counter"), 0u);
}

// ---- query-id stamping, ring sizing, build identity -----------------------

TEST(FlightRecorderTest, EventsCarryCurrentQueryId) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.SetEnabled(true);
  const uint32_t name = fr.InternName("fr-q-stage");
  const uint64_t qid = obs::AllocateQueryId();
  {
    obs::QueryScope scope(qid);
    fr.Record(EventType::kSteal, name, 111, 222, 333);
  }
  fr.Record(EventType::kSteal, name, 444, 555, 666);  // outside: q == 0
  bool saw_scoped = false, saw_unscoped = false;
  for (const FlightEvent& e : fr.Snapshot()) {
    if (e.type != EventType::kSteal || e.name != "fr-q-stage") continue;
    if (e.a == 111) {
      EXPECT_EQ(e.q, qid);
      EXPECT_NE(obs::EventJson(e).find("\"q\":" + std::to_string(qid)),
                std::string::npos);
      saw_scoped = true;
    } else if (e.a == 444) {
      EXPECT_EQ(e.q, 0u);
      saw_unscoped = true;
    }
  }
  EXPECT_TRUE(saw_scoped);
  EXPECT_TRUE(saw_unscoped);
}

TEST(FlightRecorderTest, RingCapacityFromEnvParsesAndRejects) {
  ::unsetenv("IDF_EVENTS_RING_POW2");
  EXPECT_EQ(FlightRecorder::RingCapacityFromEnv(), FlightRecorder::kCapacity);
  ::setenv("IDF_EVENTS_RING_POW2", "12", 1);
  EXPECT_EQ(FlightRecorder::RingCapacityFromEnv(), size_t{1} << 12);
  ::setenv("IDF_EVENTS_RING_POW2", "10", 1);
  EXPECT_EQ(FlightRecorder::RingCapacityFromEnv(), size_t{1} << 10);
  // Out-of-range or malformed values fall back to the default capacity.
  for (const char* bad : {"9", "25", "abc", "12x", "", "-3"}) {
    ::setenv("IDF_EVENTS_RING_POW2", bad, 1);
    EXPECT_EQ(FlightRecorder::RingCapacityFromEnv(), FlightRecorder::kCapacity)
        << "value '" << bad << "'";
  }
  ::unsetenv("IDF_EVENTS_RING_POW2");
}

TEST(FlightRecorderTest, LappedCounterTracksRingOverwrites) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.SetEnabled(true);
  const uint32_t name = fr.InternName("fr-lap-stage");
  // Make sure the ring has wrapped at least once before the baseline so
  // every further Record is an overwrite.
  for (size_t i = 0; i < fr.capacity(); ++i) {
    fr.Record(EventType::kSteal, name, i, 0, 0);
  }
  obs::RegistryDelta delta;
  constexpr uint64_t kRecords = 1000;
  for (uint64_t i = 0; i < kRecords; ++i) {
    fr.Record(EventType::kSteal, name, i, 0, 0);
  }
  EXPECT_GE(delta.Counter("obs.ring.lapped"), kRecords);
}

TEST(BuildInfoTest, SummaryAndJsonAgree) {
  const obs::BuildInfo& info = obs::GetBuildInfo();
  const std::string sha = info.git_sha;
  const std::string build_type = info.build_type;
  const std::string sanitizer = info.sanitizer;
  EXPECT_FALSE(sha.empty());
  EXPECT_FALSE(build_type.empty());
  EXPECT_FALSE(sanitizer.empty());
  const std::string json = obs::BuildInfoJson();
  EXPECT_NE(json.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\":\"" + sha), std::string::npos);
  EXPECT_NE(json.find("\"build_type\":\"" + build_type), std::string::npos);
  EXPECT_NE(json.find("\"sanitizer\":\"" + sanitizer), std::string::npos);
  EXPECT_NE(json.find("\"uptime_seconds\":"), std::string::npos);
  const std::string summary = obs::BuildInfoSummary();
  EXPECT_NE(summary.find("sha=" + sha), std::string::npos);
  // The recorder stamped a build_info event at construction, so every
  // journal identifies its binary.
  bool saw_build_info = false;
  for (const FlightEvent& e : FlightRecorder::Global().Snapshot()) {
    if (e.type == EventType::kBuildInfo) saw_build_info = true;
  }
  // The ring may have lapped past it in long-running suites; only assert
  // when the recorder has not wrapped yet.
  if (FlightRecorder::Global().total_recorded() <
      FlightRecorder::Global().capacity()) {
    EXPECT_TRUE(saw_build_info);
  }
}

// ---- introspection error paths & concurrent scrapes ------------------------

TEST(IntrospectionServerTest, ErrorPathsAndBoundsAreSafe) {
  obs::IntrospectionServer& server = obs::IntrospectionServer::Global();
  Result<uint16_t> port = server.Start(0);
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  // /healthz is the build identity document.
  const std::string health = HttpGet(*port, "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("application/json"), std::string::npos);
  EXPECT_NE(health.find("\"git_sha\":"), std::string::npos);
  EXPECT_NE(health.find("\"build_type\":"), std::string::npos);
  EXPECT_NE(health.find("\"sanitizer\":"), std::string::npos);
  EXPECT_NE(health.find("\"uptime_seconds\":"), std::string::npos);

  // Unknown endpoints 404 with a hint, never crash the serve loop.
  const std::string unknown = HttpGet(*port, "/definitely-not-a-path");
  EXPECT_NE(unknown.find("404"), std::string::npos);
  EXPECT_NE(unknown.find("/queries"), std::string::npos);

  // Malformed n= falls back to the default instead of erroring.
  const std::string malformed = HttpGet(*port, "/events?n=abc");
  EXPECT_NE(malformed.find("200 OK"), std::string::npos);

  // Oversize n= clamps to the ring capacity instead of over-allocating.
  const std::string oversize = HttpGet(*port, "/events?n=99999999999");
  EXPECT_NE(oversize.find("200 OK"), std::string::npos);
  const std::string body = oversize.substr(oversize.find("\r\n\r\n") + 4);
  size_t lines = 0;
  for (const char ch : body) lines += ch == '\n';
  EXPECT_LE(lines, obs::FlightRecorder::Global().capacity());

  server.Stop();
}

TEST(IntrospectionServerTest, ConcurrentScrapesDuringBudgetedQuery) {
  obs::IntrospectionServer& server = obs::IntrospectionServer::Global();
  Result<uint16_t> port = server.Start(0);
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  constexpr int64_t kRows = 20000;
  IndexOptions index_options;
  index_options.batch_capacity = 16 << 10;
  Session session(BudgetedOptions(256 << 10));
  std::vector<RowVec> rows;
  rows.reserve(kRows);
  for (int64_t i = 0; i < kRows; ++i) {
    rows.push_back({Value::Int64(i % 97), Value::Int64(i),
                    Value::Float64(0.25 * static_cast<double>(i))});
  }
  auto edges = *session.CreateTable("edges", EdgeSchema(), rows);

  // Scrapers hammer every endpoint while the query below spills and
  // faults; every response must be well-formed (200 or 404, never empty).
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bad{0};
  std::vector<std::thread> scrapers;
  const char* paths[] = {"/metrics", "/events?n=64", "/healthz",
                         "/residency", "/queries/7", "/nope"};
  for (int t = 0; t < 3; ++t) {
    scrapers.emplace_back([&, t] {
      for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        const std::string response =
            HttpGet(*port, paths[(t + i) % (sizeof(paths) / sizeof(*paths))]);
        if (response.find("HTTP/1.0 ") != 0) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  auto indexed = *IndexedDataFrame::Create(edges, "src", index_options);
  for (int64_t key = 0; key < 20; ++key) {
    auto hits = indexed.GetRows(Value::Int64(key));
    ASSERT_TRUE(hits.ok());
  }
  stop.store(true);
  for (std::thread& s : scrapers) s.join();
  EXPECT_EQ(bad.load(), 0u);
  server.Stop();
}

TEST(RegistryDeltaTest, GaugeDeltaKeepsLevel) {
  obs::Registry& reg = obs::Registry::Global();
  obs::Gauge& gauge = reg.GetGauge("fr_test.delta_gauge");
  gauge.Set(10.0);
  obs::RegistryDelta delta;
  gauge.Set(25.0);
  bool found = false;
  for (const obs::MetricSnapshot& s : delta.Deltas()) {
    if (s.name != "fr_test.delta_gauge") continue;
    found = true;
    EXPECT_DOUBLE_EQ(s.gauge_value, 25.0);  // a level, not a difference
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace idf
