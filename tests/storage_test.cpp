// Tests for the storage layer: packed pointers, binary row layout, row
// batches, and the COW-versioned PartitionStore.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "storage/packed_ptr.h"
#include "storage/partition_store.h"
#include "storage/row_batch.h"
#include "storage/row_layout.h"

namespace idf {
namespace {

// ---- PackedRowPtr ----------------------------------------------------------

TEST(PackedRowPtrTest, DefaultIsNull) {
  PackedRowPtr p;
  EXPECT_TRUE(p.is_null());
  EXPECT_EQ(p, PackedRowPtr::Null());
}

TEST(PackedRowPtrTest, FieldsRoundTrip) {
  PackedRowPtr p = PackedRowPtr::Make(123, 456789, 1000);
  EXPECT_FALSE(p.is_null());
  EXPECT_EQ(p.batch(), 123u);
  EXPECT_EQ(p.offset(), 456789u);
  EXPECT_EQ(p.prev_size(), 1000u);
}

TEST(PackedRowPtrTest, ExtremesRoundTrip) {
  PackedRowPtr p = PackedRowPtr::Make(
      PackedRowPtr::kMaxBatch - 1, PackedRowPtr::kMaxOffset,
      PackedRowPtr::kMaxPrevSize);
  EXPECT_EQ(p.batch(), PackedRowPtr::kMaxBatch - 1);
  EXPECT_EQ(p.offset(), PackedRowPtr::kMaxOffset);
  EXPECT_EQ(p.prev_size(), PackedRowPtr::kMaxPrevSize);
  PackedRowPtr zero = PackedRowPtr::Make(0, 0, 0);
  EXPECT_EQ(zero.batch(), 0u);
  EXPECT_EQ(zero.offset(), 0u);
  EXPECT_EQ(zero.prev_size(), 0u);
  EXPECT_FALSE(zero.is_null());
}

TEST(PackedRowPtrTest, BitsRoundTrip) {
  PackedRowPtr p = PackedRowPtr::Make(7, 42, 99);
  PackedRowPtr q = PackedRowPtr::FromBits(p.bits());
  EXPECT_EQ(p, q);
}

// Property sweep: random triples survive pack/unpack.
class PackedPtrPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PackedPtrPropertyTest, RandomTriplesRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const uint32_t batch =
        static_cast<uint32_t>(rng.Below(PackedRowPtr::kMaxBatch));
    const uint32_t offset =
        static_cast<uint32_t>(rng.Below(PackedRowPtr::kMaxOffset + 1));
    const uint32_t prev =
        static_cast<uint32_t>(rng.Below(PackedRowPtr::kMaxPrevSize + 1));
    PackedRowPtr p = PackedRowPtr::Make(batch, offset, prev);
    EXPECT_EQ(p.batch(), batch);
    EXPECT_EQ(p.offset(), offset);
    EXPECT_EQ(p.prev_size(), prev);
    EXPECT_FALSE(p.is_null());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackedPtrPropertyTest,
                         ::testing::Values(1, 2, 3));

// ---- RowLayout ---------------------------------------------------------------

SchemaPtr MixedSchema() {
  return std::make_shared<Schema>(Schema({
      {"id", TypeId::kInt64, false},
      {"flag", TypeId::kBool, true},
      {"name", TypeId::kString, true},
      {"score", TypeId::kFloat64, true},
      {"count", TypeId::kInt32, true},
      {"tag", TypeId::kString, true},
  }));
}

RowVec MixedRow() {
  return {Value::Int64(42),       Value::Bool(true), Value::String("hello"),
          Value::Float64(2.5),    Value::Int32(-7),  Value::String("world!")};
}

TEST(RowLayoutTest, EncodeDecodeRoundTrip) {
  RowLayout layout(MixedSchema());
  RowVec row = MixedRow();
  auto size = layout.ComputeRowSize(row);
  ASSERT_TRUE(size.ok());
  std::vector<uint8_t> buf(*size);
  layout.EncodeRow(row, buf.data(), PackedRowPtr::Null());

  RowVec decoded = layout.DecodeRow(buf.data());
  ASSERT_EQ(decoded.size(), row.size());
  EXPECT_EQ(decoded[0], Value::Int64(42));
  EXPECT_EQ(decoded[1], Value::Bool(true));
  EXPECT_EQ(decoded[2], Value::String("hello"));
  EXPECT_EQ(decoded[3], Value::Float64(2.5));
  EXPECT_EQ(decoded[4], Value::Int32(-7));
  EXPECT_EQ(decoded[5], Value::String("world!"));
}

TEST(RowLayoutTest, ZeroCopyAccessors) {
  RowLayout layout(MixedSchema());
  RowVec row = MixedRow();
  std::vector<uint8_t> buf(*layout.ComputeRowSize(row));
  layout.EncodeRow(row, buf.data(), PackedRowPtr::Null());

  EXPECT_EQ(layout.GetInt64(buf.data(), 0), 42);
  EXPECT_TRUE(layout.GetBool(buf.data(), 1));
  EXPECT_EQ(layout.GetString(buf.data(), 2), "hello");
  EXPECT_DOUBLE_EQ(layout.GetFloat64(buf.data(), 3), 2.5);
  EXPECT_EQ(layout.GetInt32(buf.data(), 4), -7);
  EXPECT_EQ(layout.GetString(buf.data(), 5), "world!");
  for (size_t c = 0; c < 6; ++c) EXPECT_FALSE(layout.IsNull(buf.data(), c));
}

TEST(RowLayoutTest, NullsRoundTrip) {
  RowLayout layout(MixedSchema());
  RowVec row{Value::Int64(1),           Value::Null(TypeId::kBool),
             Value::Null(TypeId::kString), Value::Null(TypeId::kFloat64),
             Value::Null(TypeId::kInt32),  Value::String("t")};
  std::vector<uint8_t> buf(*layout.ComputeRowSize(row));
  layout.EncodeRow(row, buf.data(), PackedRowPtr::Null());

  EXPECT_FALSE(layout.IsNull(buf.data(), 0));
  EXPECT_TRUE(layout.IsNull(buf.data(), 1));
  EXPECT_TRUE(layout.IsNull(buf.data(), 2));
  EXPECT_TRUE(layout.IsNull(buf.data(), 3));
  EXPECT_TRUE(layout.IsNull(buf.data(), 4));
  EXPECT_FALSE(layout.IsNull(buf.data(), 5));
  RowVec decoded = layout.DecodeRow(buf.data());
  EXPECT_TRUE(decoded[1].is_null());
  EXPECT_TRUE(decoded[2].is_null());
  EXPECT_EQ(decoded[5], Value::String("t"));
}

TEST(RowLayoutTest, BackPtrHeader) {
  RowLayout layout(MixedSchema());
  RowVec row = MixedRow();
  std::vector<uint8_t> buf(*layout.ComputeRowSize(row));
  PackedRowPtr back = PackedRowPtr::Make(3, 1024, 96);
  layout.EncodeRow(row, buf.data(), back);
  EXPECT_EQ(RowLayout::BackPtr(buf.data()), back);
  PackedRowPtr other = PackedRowPtr::Make(9, 2048, 128);
  RowLayout::SetBackPtr(buf.data(), other);
  EXPECT_EQ(RowLayout::BackPtr(buf.data()), other);
}

TEST(RowLayoutTest, RowSizeHeaderMatches) {
  RowLayout layout(MixedSchema());
  RowVec row = MixedRow();
  auto size = layout.ComputeRowSize(row);
  std::vector<uint8_t> buf(*size);
  layout.EncodeRow(row, buf.data(), PackedRowPtr::Null());
  EXPECT_EQ(RowLayout::RowSize(buf.data()), *size);
}

TEST(RowLayoutTest, EmptyStringsSupported) {
  RowLayout layout(MixedSchema());
  RowVec row{Value::Int64(1), Value::Bool(false), Value::String(""),
             Value::Float64(0), Value::Int32(0), Value::String("")};
  std::vector<uint8_t> buf(*layout.ComputeRowSize(row));
  layout.EncodeRow(row, buf.data(), PackedRowPtr::Null());
  EXPECT_EQ(layout.GetString(buf.data(), 2), "");
  EXPECT_EQ(layout.GetString(buf.data(), 5), "");
}

TEST(RowLayoutTest, OversizeRowRejected) {
  RowLayout layout(MixedSchema());
  RowVec row{Value::Int64(1),   Value::Bool(false),
             Value::String(std::string(2000, 'x')),
             Value::Float64(0), Value::Int32(0),
             Value::String("")};
  auto size = layout.ComputeRowSize(row);
  EXPECT_EQ(size.status().code(), StatusCode::kInvalidArgument);
}

TEST(RowLayoutTest, WrongArityRejected) {
  RowLayout layout(MixedSchema());
  auto size = layout.ComputeRowSize({Value::Int64(1)});
  EXPECT_FALSE(size.ok());
}

TEST(RowLayoutTest, KeyCodeMatchesValueCode) {
  // The stored row's key code must equal IndexKeyCode of the lookup Value —
  // this is the contract that makes getRows(key) find appended rows.
  RowLayout layout(MixedSchema());
  RowVec row = MixedRow();
  std::vector<uint8_t> buf(*layout.ComputeRowSize(row));
  layout.EncodeRow(row, buf.data(), PackedRowPtr::Null());

  EXPECT_EQ(layout.KeyCode(buf.data(), 0), IndexKeyCode(Value::Int64(42)));
  EXPECT_EQ(layout.KeyCode(buf.data(), 2),
            IndexKeyCode(Value::String("hello")));
  EXPECT_EQ(layout.KeyCode(buf.data(), 3), IndexKeyCode(Value::Float64(2.5)));
  EXPECT_EQ(layout.KeyCode(buf.data(), 4), IndexKeyCode(Value::Int32(-7)));
}

TEST(RowLayoutTest, Int32AndInt64KeyCodesAgreeOnSameValue) {
  // TPC-DS joins int32 ss_sold_date_sk against int64 d_date_sk analogues;
  // key codes must be numeric-value based, not type based.
  EXPECT_EQ(IndexKeyCode(Value::Int32(12345)), IndexKeyCode(Value::Int64(12345)));
  EXPECT_EQ(IndexKeyCode(Value::Int32(-5)), IndexKeyCode(Value::Int64(-5)));
}

TEST(RowLayoutTest, KeyCodeNeedsVerifyOnlyForInexactTypes) {
  EXPECT_FALSE(KeyCodeNeedsVerify(TypeId::kInt32));
  EXPECT_FALSE(KeyCodeNeedsVerify(TypeId::kInt64));
  EXPECT_FALSE(KeyCodeNeedsVerify(TypeId::kBool));
  EXPECT_TRUE(KeyCodeNeedsVerify(TypeId::kString));
  EXPECT_TRUE(KeyCodeNeedsVerify(TypeId::kFloat64));
}

// Property test: random schemas, random rows, round-trip.
class RowLayoutPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RowLayoutPropertyTest, RandomRowsRoundTrip) {
  Rng rng(GetParam());
  static const TypeId kTypes[] = {TypeId::kBool, TypeId::kInt32,
                                  TypeId::kInt64, TypeId::kFloat64,
                                  TypeId::kString};
  for (int trial = 0; trial < 50; ++trial) {
    const size_t nfields = 1 + rng.Below(12);
    std::vector<Field> fields;
    for (size_t i = 0; i < nfields; ++i) {
      fields.push_back({"c" + std::to_string(i),
                        kTypes[rng.Below(5)], true});
    }
    auto schema = std::make_shared<Schema>(Schema(fields));
    RowLayout layout(schema);

    for (int r = 0; r < 20; ++r) {
      RowVec row;
      for (size_t i = 0; i < nfields; ++i) {
        if (rng.Chance(0.15)) {
          row.push_back(Value::Null(fields[i].type));
          continue;
        }
        switch (fields[i].type) {
          case TypeId::kBool: row.push_back(Value::Bool(rng.Chance(0.5))); break;
          case TypeId::kInt32:
            row.push_back(Value::Int32(static_cast<int32_t>(rng.Next())));
            break;
          case TypeId::kInt64:
            row.push_back(Value::Int64(static_cast<int64_t>(rng.Next())));
            break;
          case TypeId::kFloat64:
            row.push_back(Value::Float64(rng.NextDouble() * 1e6));
            break;
          case TypeId::kString:
            row.push_back(Value::String(rng.NextString(rng.Below(40))));
            break;
        }
      }
      auto size = layout.ComputeRowSize(row);
      ASSERT_TRUE(size.ok());
      std::vector<uint8_t> buf(*size);
      layout.EncodeRow(row, buf.data(), PackedRowPtr::Null());
      RowVec decoded = layout.DecodeRow(buf.data());
      ASSERT_EQ(decoded.size(), row.size());
      for (size_t i = 0; i < row.size(); ++i) {
        if (row[i].is_null()) {
          EXPECT_TRUE(decoded[i].is_null());
        } else {
          EXPECT_EQ(decoded[i], row[i]) << "field " << i;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RowLayoutPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

// ---- RowBatch -----------------------------------------------------------------

TEST(RowBatchTest, AllocateBumpsOffsets) {
  auto batch = RowBatch::Create(1024);
  auto a = batch->Allocate(100);
  auto b = batch->Allocate(200);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, 0u);
  EXPECT_EQ(*b, 100u);
  EXPECT_EQ(batch->used(), 300u);
  EXPECT_EQ(batch->remaining(), 724u);
  EXPECT_EQ(batch->num_rows(), 2u);
}

TEST(RowBatchTest, FullBatchRejectsAllocation) {
  auto batch = RowBatch::Create(128);
  ASSERT_TRUE(batch->Allocate(128).ok());
  auto r = batch->Allocate(1);
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(RowBatchTest, CloneCopiesPrefix) {
  auto batch = RowBatch::Create(256);
  auto off = batch->Allocate(8);
  std::memcpy(batch->MutableData() + *off, "abcdefgh", 8);
  auto clone = batch->Clone();
  EXPECT_EQ(clone->used(), batch->used());
  EXPECT_EQ(clone->num_rows(), batch->num_rows());
  EXPECT_EQ(std::memcmp(clone->data(), batch->data(), 8), 0);
  // Mutating the clone leaves the original untouched.
  clone->MutableData()[0] = 'z';
  EXPECT_EQ(batch->data()[0], 'a');
}

// ---- PartitionStore -------------------------------------------------------------

SchemaPtr EdgeSchema() {
  return std::make_shared<Schema>(Schema({
      {"src", TypeId::kInt64, false},
      {"dst", TypeId::kInt64, false},
      {"weight", TypeId::kFloat64, true},
  }));
}

RowVec Edge(int64_t src, int64_t dst, double w) {
  return {Value::Int64(src), Value::Int64(dst), Value::Float64(w)};
}

TEST(PartitionStoreTest, AppendAndRead) {
  RowLayout layout(EdgeSchema());
  PartitionStore store(4096);
  auto p1 = store.AppendRow(layout, Edge(1, 2, 0.5), PackedRowPtr::Null());
  ASSERT_TRUE(p1.ok());
  auto p2 = store.AppendRow(layout, Edge(3, 4, 1.5), PackedRowPtr::Null());
  ASSERT_TRUE(p2.ok());

  const uint8_t* r1 = store.RowAt(*p1);
  EXPECT_EQ(layout.GetInt64(r1, 0), 1);
  EXPECT_EQ(layout.GetInt64(r1, 1), 2);
  const uint8_t* r2 = store.RowAt(*p2);
  EXPECT_EQ(layout.GetInt64(r2, 0), 3);
  EXPECT_EQ(store.num_rows(), 2u);
  EXPECT_EQ(store.num_batches(), 1u);
}

TEST(PartitionStoreTest, BackwardChainAcrossAppends) {
  RowLayout layout(EdgeSchema());
  PartitionStore store(4096);
  auto p1 = store.AppendRow(layout, Edge(7, 1, 0), PackedRowPtr::Null());
  auto p2 = store.AppendRow(layout, Edge(7, 2, 0), *p1);
  auto p3 = store.AppendRow(layout, Edge(7, 3, 0), *p2);
  ASSERT_TRUE(p3.ok());

  // Walk the chain newest -> oldest via back pointers.
  const uint8_t* r3 = store.RowAt(*p3);
  EXPECT_EQ(layout.GetInt64(r3, 1), 3);
  PackedRowPtr back = RowLayout::BackPtr(r3);
  EXPECT_EQ(back, *p2);
  const uint8_t* r2 = store.RowAt(back);
  EXPECT_EQ(layout.GetInt64(r2, 1), 2);
  back = RowLayout::BackPtr(r2);
  EXPECT_EQ(back, *p1);
  const uint8_t* r1 = store.RowAt(back);
  EXPECT_EQ(layout.GetInt64(r1, 1), 1);
  EXPECT_TRUE(RowLayout::BackPtr(r1).is_null());

  // prev_size of p3's pointer equals p2's row size (paper's packed layout).
  EXPECT_EQ(p3->prev_size(), RowLayout::RowSize(r2));
  EXPECT_EQ(p1->prev_size(), 0u);
}

TEST(PartitionStoreTest, RollsOverToNewBatches) {
  RowLayout layout(EdgeSchema());
  PartitionStore store(1200);  // tiny batches force rollover
  std::vector<PackedRowPtr> ptrs;
  for (int i = 0; i < 100; ++i) {
    auto p = store.AppendRow(layout, Edge(i, i, 0), PackedRowPtr::Null());
    ASSERT_TRUE(p.ok());
    ptrs.push_back(*p);
  }
  EXPECT_GT(store.num_batches(), 1u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(layout.GetInt64(store.RowAt(ptrs[i]), 0), i);
  }
}

TEST(PartitionStoreTest, SnapshotIsolatesAppends) {
  RowLayout layout(EdgeSchema());
  PartitionStore store(4096);
  auto p1 = store.AppendRow(layout, Edge(1, 1, 0), PackedRowPtr::Null());
  ASSERT_TRUE(p1.ok());

  PartitionStore snap = store.Snapshot();
  auto p2 = store.AppendRow(layout, Edge(2, 2, 0), PackedRowPtr::Null());
  ASSERT_TRUE(p2.ok());

  // The snapshot sees only the first row.
  EXPECT_EQ(snap.num_rows(), 1u);
  EXPECT_EQ(store.num_rows(), 2u);
  EXPECT_EQ(layout.GetInt64(snap.RowAt(*p1), 0), 1);
  EXPECT_EQ(layout.GetInt64(store.RowAt(*p2), 0), 2);
}

TEST(PartitionStoreTest, DivergentAppendsCoexist) {
  // Paper Listing 2: two children of one parent, appends in either order.
  RowLayout layout(EdgeSchema());
  PartitionStore parent(4096);
  auto base = parent.AppendRow(layout, Edge(0, 0, 0), PackedRowPtr::Null());
  ASSERT_TRUE(base.ok());

  PartitionStore child_a = parent.Snapshot();
  PartitionStore child_b = parent.Snapshot();

  auto pa = child_a.AppendRow(layout, Edge(10, 10, 0), PackedRowPtr::Null());
  auto pb = child_b.AppendRow(layout, Edge(20, 20, 0), PackedRowPtr::Null());
  ASSERT_TRUE(pa.ok());
  ASSERT_TRUE(pb.ok());

  EXPECT_EQ(layout.GetInt64(child_a.RowAt(*pa), 0), 10);
  EXPECT_EQ(layout.GetInt64(child_b.RowAt(*pb), 0), 20);
  // Both children still read the shared base row.
  EXPECT_EQ(layout.GetInt64(child_a.RowAt(*base), 0), 0);
  EXPECT_EQ(layout.GetInt64(child_b.RowAt(*base), 0), 0);
  EXPECT_EQ(parent.num_rows(), 1u);
  EXPECT_EQ(child_a.num_rows(), 2u);
  EXPECT_EQ(child_b.num_rows(), 2u);
}

TEST(PartitionStoreTest, CowPreservesParentTailContents) {
  RowLayout layout(EdgeSchema());
  PartitionStore parent(4096);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        parent.AppendRow(layout, Edge(i, i, 0), PackedRowPtr::Null()).ok());
  }
  PartitionStore child = parent.Snapshot();
  // Child appends trigger a COW of the shared tail.
  auto pc = child.AppendRow(layout, Edge(99, 99, 0), PackedRowPtr::Null());
  ASSERT_TRUE(pc.ok());
  // Parent appends likewise COW its own tail.
  auto pp = parent.AppendRow(layout, Edge(77, 77, 0), PackedRowPtr::Null());
  ASSERT_TRUE(pp.ok());

  EXPECT_EQ(layout.GetInt64(child.RowAt(*pc), 0), 99);
  EXPECT_EQ(layout.GetInt64(parent.RowAt(*pp), 0), 77);
  // The divergent rows landed at the same packed location in different
  // physical batches — exactly the COW-at-batch-granularity design.
  EXPECT_EQ(pc->bits(), pp->bits());
}

TEST(PartitionStoreTest, AppendEncodedRewritesBackPtr) {
  RowLayout layout(EdgeSchema());
  PartitionStore src(4096);
  auto p1 = src.AppendRow(layout, Edge(5, 6, 0), PackedRowPtr::Null());
  ASSERT_TRUE(p1.ok());
  const uint8_t* encoded = src.RowAt(*p1);
  const uint32_t len = RowLayout::RowSize(encoded);

  PartitionStore dst(4096);
  auto d0 = dst.AppendRow(layout, Edge(5, 1, 0), PackedRowPtr::Null());
  ASSERT_TRUE(d0.ok());
  auto d1 = dst.AppendEncoded(encoded, len, *d0);
  ASSERT_TRUE(d1.ok());
  const uint8_t* moved = dst.RowAt(*d1);
  EXPECT_EQ(layout.GetInt64(moved, 0), 5);
  EXPECT_EQ(layout.GetInt64(moved, 1), 6);
  EXPECT_EQ(RowLayout::BackPtr(moved), *d0);
}

TEST(PartitionStoreTest, DataBytesAccounting) {
  RowLayout layout(EdgeSchema());
  PartitionStore store(4096);
  uint64_t expected = 0;
  for (int i = 0; i < 50; ++i) {
    RowVec row = Edge(i, i, 1.0);
    expected += *layout.ComputeRowSize(row);
    ASSERT_TRUE(store.AppendRow(layout, row, PackedRowPtr::Null()).ok());
  }
  EXPECT_EQ(store.data_bytes(), expected);
  EXPECT_EQ(store.allocated_bytes(),
            static_cast<uint64_t>(store.num_batches()) * 4096);
}

TEST(PartitionStoreTest, StringsSurviveShuffleCopy) {
  auto schema = std::make_shared<Schema>(Schema({
      {"tailnum", TypeId::kString, false},
      {"delay", TypeId::kInt32, true},
  }));
  RowLayout layout(schema);
  PartitionStore a(4096), b(4096);
  auto p = a.AppendRow(layout, {Value::String("N12345"), Value::Int32(12)},
                       PackedRowPtr::Null());
  ASSERT_TRUE(p.ok());
  const uint8_t* row = a.RowAt(*p);
  auto q = b.AppendEncoded(row, RowLayout::RowSize(row), PackedRowPtr::Null());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(layout.GetString(b.RowAt(*q), 0), "N12345");
  EXPECT_EQ(layout.GetInt32(b.RowAt(*q), 1), 12);
}

// Batch-size sweep: the store must behave identically across Fig. 5's range.
class PartitionStoreBatchSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PartitionStoreBatchSweep, RoundTripAtBatchSize) {
  RowLayout layout(EdgeSchema());
  PartitionStore store(GetParam());
  std::vector<PackedRowPtr> ptrs;
  for (int i = 0; i < 500; ++i) {
    auto p = store.AppendRow(layout, Edge(i, -i, i * 0.5),
                             PackedRowPtr::Null());
    ASSERT_TRUE(p.ok());
    ptrs.push_back(*p);
  }
  for (int i = 0; i < 500; ++i) {
    const uint8_t* r = store.RowAt(ptrs[i]);
    EXPECT_EQ(layout.GetInt64(r, 0), i);
    EXPECT_EQ(layout.GetInt64(r, 1), -i);
    EXPECT_DOUBLE_EQ(layout.GetFloat64(r, 2), i * 0.5);
  }
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, PartitionStoreBatchSweep,
                         ::testing::Values(4096, 16384, 65536, 1u << 20,
                                           4u << 20));

}  // namespace
}  // namespace idf
