// Stress tests for the parallel stage scheduler (engine/scheduler.h +
// Cluster::RunStage): sequential/parallel result and accounting parity,
// concurrent sessions, concurrent queries against one cached indexed table,
// and task-span parent propagation across pool threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/indexed_dataframe.h"
#include "engine/cluster.h"
#include "mem/governor.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "sql/columnar.h"
#include "sql/session.h"

namespace idf {
namespace {

SessionOptions Options(uint32_t scheduler_threads) {
  SessionOptions opts;
  opts.cluster.num_workers = 2;
  opts.cluster.executors_per_worker = 2;
  opts.cluster.cores_per_executor = 2;
  opts.cluster.scheduler_threads = scheduler_threads;
  opts.default_partitions = 4;
  return opts;
}

SchemaPtr EventSchema() {
  return std::make_shared<Schema>(Schema({
      {"k", TypeId::kInt64, false},
      {"cat", TypeId::kString, false},
      {"v", TypeId::kFloat64, true},
  }));
}

std::vector<RowVec> EventRows(int n) {
  std::vector<RowVec> rows;
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back({Value::Int64(i % 50),
                    Value::String(i % 2 == 0 ? "a" : "b"),
                    Value::Float64(static_cast<double>(i % 17))});
  }
  return rows;
}

SchemaPtr ProbeSchema() {
  return std::make_shared<Schema>(Schema({
      {"pk", TypeId::kInt64, false},
      {"tag", TypeId::kString, false},
  }));
}

std::vector<RowVec> ProbeRows() {
  std::vector<RowVec> rows;
  for (int64_t i = 0; i < 20; ++i) {
    rows.push_back({Value::Int64(i * 3 % 60),  // some keys miss
                    Value::String("t" + std::to_string(i))});
  }
  return rows;
}

struct WorkloadResult {
  std::vector<std::string> filter_rows;
  std::vector<std::string> join_rows;
};

/// The full filter+join workload in a fresh session: create + index the
/// events table, filter on v, indexed-join against a probe table. When
/// `working_set` is non-null it receives the governed resident bytes while
/// the session (and its cached tables) is still alive.
WorkloadResult RunWorkload(uint32_t scheduler_threads,
                           uint64_t* working_set = nullptr) {
  Session session(Options(scheduler_threads));
  DataFrame events =
      session.CreateTable("events", EventSchema(), EventRows(400)).value();
  IndexedDataFrame indexed = IndexedDataFrame::Create(events, "k").value();
  DataFrame probe =
      session.CreateTable("probe", ProbeSchema(), ProbeRows()).value();

  WorkloadResult out;
  out.filter_rows = events.Filter(Ge(Col("v"), Lit(9.0)))
                        .Collect()
                        .value()
                        .SortedRowStrings();
  out.join_rows =
      indexed.Join(probe, "pk").Collect().value().SortedRowStrings();
  if (working_set != nullptr) {
    *working_set = mem::MemoryGovernor::Global().resident_bytes();
  }
  return out;
}

uint64_t TasksCounter() {
  return obs::Registry::Global().GetCounter("engine.tasks").value();
}

// Parallel execution must be invisible in the results and in the metrics:
// same rows, same per-op EXPLAIN ANALYZE cardinalities, same exact
// engine.tasks totals as the sequential scheduler.
TEST(SchedulerStressTest, ParallelWorkloadMatchesSequential) {
  const uint64_t t0 = TasksCounter();
  const WorkloadResult seq = RunWorkload(1);
  const uint64_t seq_tasks = TasksCounter() - t0;

  const uint64_t t1 = TasksCounter();
  const WorkloadResult par = RunWorkload(4);
  const uint64_t par_tasks = TasksCounter() - t1;

  EXPECT_EQ(par.filter_rows, seq.filter_rows);
  EXPECT_EQ(par.join_rows, seq.join_rows);
  EXPECT_EQ(par_tasks, seq_tasks);
  EXPECT_GT(seq_tasks, 0u);
}

TEST(SchedulerStressTest, ExplainAnalyzeCardinalitiesMatchSequential) {
  auto profile = [](uint32_t threads) {
    Session session(Options(threads));
    DataFrame events =
        session.CreateTable("events", EventSchema(), EventRows(400)).value();
    IndexedDataFrame indexed = IndexedDataFrame::Create(events, "k").value();
    DataFrame probe =
        session.CreateTable("probe", ProbeSchema(), ProbeRows()).value();
    QueryMetrics metrics;
    metrics.op_profile =
        std::make_shared<std::map<const void*, OpProfile>>();
    (void)indexed.Join(probe, "pk").Collect(&metrics).value();
    // Addresses differ across runs; compare (label, rows, bytes) sorted.
    std::vector<std::string> ops;
    for (const auto& [node, prof] : *metrics.op_profile) {
      ops.push_back(prof.label + "|" + std::to_string(prof.rows_out) + "|" +
                    std::to_string(prof.bytes_out) + "|" +
                    std::to_string(prof.inclusive.index_probes) + "|" +
                    std::to_string(prof.inclusive.index_hits));
    }
    std::sort(ops.begin(), ops.end());
    return ops;
  };
  EXPECT_EQ(profile(4), profile(1));
}

// Two sessions (own clusters, own pools) running the same filter+join
// workload from two host threads: identical results, and the global
// engine.tasks counter advances by exactly twice one workload's tasks.
TEST(SchedulerStressTest, ConcurrentSessionsExactTaskAccounting) {
  const uint64_t t0 = TasksCounter();
  const WorkloadResult expected = RunWorkload(1);
  const uint64_t one_run = TasksCounter() - t0;
  ASSERT_GT(one_run, 0u);

  const uint64_t before = TasksCounter();
  WorkloadResult a, b;
  std::thread ta([&] { a = RunWorkload(4); });
  std::thread tb([&] { b = RunWorkload(4); });
  ta.join();
  tb.join();
  EXPECT_EQ(a.filter_rows, expected.filter_rows);
  EXPECT_EQ(a.join_rows, expected.join_rows);
  EXPECT_EQ(b.filter_rows, expected.filter_rows);
  EXPECT_EQ(b.join_rows, expected.join_rows);
  EXPECT_EQ(TasksCounter() - before, 2 * one_run);
}

// Two threads issuing queries against the SAME session and the SAME cached
// indexed table: concurrent stages interleave on one cluster (shared block
// manager, shuffle service, DES clocks) without corrupting results.
TEST(SchedulerStressTest, ConcurrentQueriesOnSharedCachedIndexedTable) {
  Session session(Options(4));
  DataFrame events =
      session.CreateTable("events", EventSchema(), EventRows(400)).value();
  IndexedDataFrame indexed = IndexedDataFrame::Create(events, "k").value();
  DataFrame probe =
      session.CreateTable("probe", ProbeSchema(), ProbeRows()).value();
  DataFrame filter_q = events.Filter(Ge(Col("v"), Lit(9.0)));
  DataFrame join_q = indexed.Join(probe, "pk");

  const std::vector<std::string> expected_filter =
      filter_q.Collect().value().SortedRowStrings();
  const std::vector<std::string> expected_join =
      join_q.Collect().value().SortedRowStrings();

  constexpr int kIters = 8;
  std::atomic<int> mismatches{0};
  auto worker = [&] {
    for (int i = 0; i < kIters; ++i) {
      if (filter_q.Collect().value().SortedRowStrings() != expected_filter) {
        mismatches++;
      }
      if (join_q.Collect().value().SortedRowStrings() != expected_join) {
        mismatches++;
      }
    }
  };
  const uint64_t before = TasksCounter();
  std::thread ta(worker);
  std::thread tb(worker);
  ta.join();
  tb.join();
  EXPECT_EQ(mismatches.load(), 0);
  // Exact accounting: every iteration runs the same deterministic stages.
  const uint64_t t2 = TasksCounter();
  (void)filter_q.Collect().value();
  (void)join_q.Collect().value();
  const uint64_t per_iter = TasksCounter() - t2;
  EXPECT_EQ(t2 - before, 2ull * kIters * per_iter);
}

// Task spans created on pool threads must still nest under the stage span
// that lives on the driver's stack.
TEST(SchedulerStressTest, TaskSpansNestUnderStageAcrossThreads) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.SetEnabled(true);
  tracer.Clear();
  ClusterConfig config;
  config.num_workers = 2;
  config.executors_per_worker = 2;
  config.cores_per_executor = 2;
  config.scheduler_threads = 4;
  Cluster cluster(config);
  StageSpec stage;
  stage.name = "traced-stage";
  for (int i = 0; i < 8; ++i) {
    stage.tasks.push_back(TaskSpec{kAnyExecutor,
                                   {},
                                   0,
                                   [](TaskContext&) {
                                     std::this_thread::sleep_for(
                                         std::chrono::milliseconds(1));
                                     return Status::OK();
                                   },
                                   {}});
  }
  ASSERT_TRUE(cluster.RunStage(stage).ok());
  tracer.SetEnabled(false);
  const std::vector<obs::TraceEvent> events = tracer.Snapshot();
  uint64_t stage_id = 0;
  for (const obs::TraceEvent& ev : events) {
    if (std::string(ev.category) == "stage" && ev.name == "traced-stage") {
      stage_id = ev.span_id;
    }
  }
  ASSERT_NE(stage_id, 0u);
  int task_events = 0;
  for (const obs::TraceEvent& ev : events) {
    if (std::string(ev.category) == "task" &&
        ev.name.rfind("traced-stage #", 0) == 0) {
      EXPECT_EQ(ev.parent_id, stage_id) << ev.name;
      ++task_events;
    }
  }
  EXPECT_EQ(task_events, 8);
  tracer.Clear();
}

// ---- spill-aware scheduling (residency map x dispatch order) ---------------

uint64_t MemCounter(const std::string& name) {
  return obs::Registry::Global().GetCounter(name).value();
}

SchemaPtr OneColSchema() {
  return std::make_shared<Schema>(Schema({{"x", TypeId::kInt64, false}}));
}

/// A sealed, governed columnar chunk tagged (owner, shard) — synthetic
/// residency for dispatch-order tests.
std::shared_ptr<ColumnarChunk> GovernedChunk(uint64_t owner, uint32_t shard) {
  auto chunk = std::make_shared<ColumnarChunk>(OneColSchema());
  for (int64_t i = 0; i < 64; ++i) {
    IDF_CHECK_OK(chunk->AppendRow({Value::Int64(i)}));
  }
  chunk->SealForCache(owner, shard);
  return chunk;
}

TEST(ResidencySchedulingTest, EvictedInputTasksDispatchLast) {
  // Four tasks over four partitions of one owner; partitions 1 and 3 are
  // force-evicted. Resident-preferred dispatch must run {0, 2} before
  // {1, 3}, preserving task-index order inside each group.
  ::unsetenv("IDF_MEMORY_BUDGET");
  mem::MemoryGovernor& gov = mem::MemoryGovernor::Global();
  mem::ScopedBudget engage(gov.resident_bytes() + (64 << 20));
  constexpr uint64_t kOwner = 990001;
  std::vector<std::shared_ptr<ColumnarChunk>> chunks;
  for (uint32_t p = 0; p < 4; ++p) chunks.push_back(GovernedChunk(kOwner, p));
  ASSERT_EQ(gov.EvictPartition(kOwner, 1), 1u);
  ASSERT_EQ(gov.EvictPartition(kOwner, 3), 1u);

  const mem::ResidencyMap residency = gov.ResidencySnapshot();
  ASSERT_GT(residency.at({kOwner, 0}).resident_bytes, 0u);
  ASSERT_GT(residency.at({kOwner, 1}).spilled_bytes, 0u);
  ASSERT_EQ(residency.at({kOwner, 1}).resident_bytes, 0u);

  ClusterConfig config;
  config.num_workers = 1;
  config.executors_per_worker = 1;
  config.cores_per_executor = 1;
  config.scheduler_threads = 1;
  Cluster cluster(config);
  std::vector<uint32_t> order;
  StageSpec stage;
  stage.name = "residency-order";
  for (uint32_t p = 0; p < 4; ++p) {
    stage.tasks.push_back(TaskSpec{kAnyExecutor,
                                   {},
                                   0,
                                   [&order, p](TaskContext&) {
                                     order.push_back(p);
                                     return Status::OK();
                                   },
                                   {{kOwner, p}}});
  }
  const uint64_t hits_before = MemCounter("sched.resident_hits");
  const uint64_t misses_before = MemCounter("sched.resident_misses");
  ASSERT_TRUE(cluster.RunStage(stage).ok());
  const std::vector<uint32_t> expected{0, 2, 1, 3};
  EXPECT_EQ(order, expected);
  EXPECT_EQ(MemCounter("sched.resident_hits") - hits_before, 2u);
  EXPECT_EQ(MemCounter("sched.resident_misses") - misses_before, 2u);
}

TEST(ResidencySchedulingTest, PrefetchNeverEvictsPinnedWorkingSet) {
  // Prefetch spends only budget headroom: with zero headroom and the
  // running task's chunk pinned, a prefetch of an evicted partition must be
  // skipped — never traded against the pin.
  ::unsetenv("IDF_MEMORY_BUDGET");
  mem::MemoryGovernor& gov = mem::MemoryGovernor::Global();
  mem::ScopedBudget engage(gov.resident_bytes() + (64 << 20));
  constexpr uint64_t kOwner = 990002;
  auto a = GovernedChunk(kOwner, 0);
  auto b = GovernedChunk(kOwner, 1);
  ASSERT_EQ(gov.EvictPartition(kOwner, 1), 1u);
  ASSERT_FALSE(b->resident());
  {
    mem::AccessScope scope;
    (void)a->RowAt(0);  // pins a for the scope: the "running task" working set
    mem::ScopedBudget zero_headroom(gov.resident_bytes());
    const uint64_t skipped_before = MemCounter("mem.prefetch.skipped");
    gov.PrefetchPartition(kOwner, 1);
    gov.DrainPrefetchForTesting();
    EXPECT_GT(MemCounter("mem.prefetch.skipped"), skipped_before);
    EXPECT_TRUE(a->resident());
    EXPECT_FALSE(b->resident());

    // The demand path still faults b in (overcommitting if it must) —
    // prefetch being bounded never makes data unreachable.
    EXPECT_EQ(b->RowAt(0)[0], Value::Int64(0));
    EXPECT_TRUE(b->resident());
    EXPECT_TRUE(a->resident());  // pinned throughout
  }
  // With headroom restored, the same prefetch reloads the partition.
  gov.EnforceBudget();
  ASSERT_EQ(gov.EvictPartition(kOwner, 1), 1u);
  const uint64_t reloads_before = MemCounter("mem.prefetch.reloads");
  gov.PrefetchPartition(kOwner, 1);
  gov.DrainPrefetchForTesting();
  EXPECT_GT(MemCounter("mem.prefetch.reloads"), reloads_before);
  EXPECT_TRUE(b->resident());
}

TEST(ResidencySchedulingTest, QuarterBudgetParallelMatchesSequential) {
  // The determinism contract survives memory pressure: at 25% of the
  // working set, with IDF_PARALLEL forcing the pool, results are identical
  // to the sequential unbudgeted run (residency-preferred dispatch only
  // reorders claim order, never assignment or merge order).
  ::unsetenv("IDF_MEMORY_BUDGET");
  mem::MemoryGovernor& gov = mem::MemoryGovernor::Global();
  const uint64_t base = gov.resident_bytes();
  uint64_t with_workload = 0;
  WorkloadResult reference;
  {
    mem::ScopedBudget engage(base + (256 << 20));  // roomy: registers chunks
    reference = RunWorkload(1, &with_workload);
  }
  ASSERT_GT(with_workload, base);
  const uint64_t budget = base + (with_workload - base) / 4;

  WorkloadResult seq_budgeted;
  {
    mem::ScopedBudget tight(budget);
    seq_budgeted = RunWorkload(1);
  }
  EXPECT_EQ(seq_budgeted.filter_rows, reference.filter_rows);
  EXPECT_EQ(seq_budgeted.join_rows, reference.join_rows);

  ::setenv("IDF_PARALLEL", "4", 1);
  WorkloadResult par_budgeted;
  {
    mem::ScopedBudget tight(budget);
    par_budgeted = RunWorkload(4);
  }
  ::unsetenv("IDF_PARALLEL");
  EXPECT_EQ(par_budgeted.filter_rows, reference.filter_rows);
  EXPECT_EQ(par_budgeted.join_rows, reference.join_rows);
}

}  // namespace
}  // namespace idf
