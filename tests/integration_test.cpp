// Cross-module integration tests: strategy selection for row-direct
// aggregation, multi-index tables, end-to-end SQL over indexed + appended
// data, version trees under mixed workloads, and composed operator chains.
#include <gtest/gtest.h>

#include "core/indexed_agg.h"
#include "core/indexed_dataframe.h"
#include "workload/flights.h"

namespace idf {
namespace {

SessionOptions SmallOptions() {
  SessionOptions opts;
  opts.cluster.num_workers = 2;
  opts.cluster.executors_per_worker = 2;
  opts.cluster.cores_per_executor = 2;
  opts.default_partitions = 4;
  return opts;
}

SchemaPtr EventSchema() {
  return std::make_shared<Schema>(Schema({
      {"user", TypeId::kInt64, false},
      {"kind", TypeId::kString, false},
      {"amount", TypeId::kFloat64, true},
  }));
}

std::vector<RowVec> EventRows(int n) {
  std::vector<RowVec> rows;
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back({Value::Int64(i % 20),
                    Value::String(i % 3 == 0 ? "buy" : "view"),
                    Value::Float64(static_cast<double>(i % 50))});
  }
  return rows;
}

TEST(IntegrationTest, AggregateOverIndexedPlansRowAggExec) {
  Session session(SmallOptions());
  auto df = *session.CreateTable("events", EventSchema(), EventRows(500));
  auto indexed = *IndexedDataFrame::Create(df, "user");
  auto q = indexed.AsDataFrame().Agg(
      {"kind"}, {AggSpec::Count("n"), AggSpec::Sum("amount")});
  auto plan = q.ExplainPhysical();
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("RowAggExec"), std::string::npos) << *plan;
  // And the result matches the vanilla aggregation.
  auto vanilla =
      df.Agg({"kind"}, {AggSpec::Count("n"), AggSpec::Sum("amount")})
          .Collect();
  auto fast = q.Collect();
  ASSERT_TRUE(vanilla.ok());
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast->SortedRowStrings(), vanilla->SortedRowStrings());
}

TEST(IntegrationTest, RowAggOverAppendedVersion) {
  Session session(SmallOptions());
  auto df = *session.CreateTable("events", EventSchema(), EventRows(100));
  auto v0 = *IndexedDataFrame::Create(df, "user");
  auto extra = *session.CreateTable(
      "extra", EventSchema(),
      {{Value::Int64(7), Value::String("buy"), Value::Float64(1000)}});
  auto v1 = *v0.AppendRows(extra);

  auto count_of = [](const IndexedDataFrame& idf) {
    return idf.AsDataFrame()
        .Agg({}, {AggSpec::Count("n")})
        .Collect()
        .value()
        .rows[0][0]
        .int64_value();
  };
  EXPECT_EQ(count_of(v0), 100);
  EXPECT_EQ(count_of(v1), 101);
}

TEST(IntegrationTest, TwoIndexesOverSameTable) {
  Session session(SmallOptions());
  FlightsConfig config;
  config.num_flights = 5000;
  config.num_planes = 100;
  config.partitions = 4;
  FlightsGenerator generator(config);
  auto flights = generator.Flights(session).value();
  auto by_num = *IndexedDataFrame::Create(flights, "flight_num");
  auto by_tail = *IndexedDataFrame::Create(flights, "tail_num");

  // Both indexes answer their own lookups; results agree with scans.
  auto by_num_rows = by_num.GetRows(Value::Int32(FlightsConfig::kKey10));
  ASSERT_TRUE(by_num_rows.ok());
  EXPECT_EQ(by_num_rows->rows.size(), 10u);

  const std::string tail = FlightsGenerator::TailNum(7);
  auto by_tail_rows = by_tail.GetRows(Value::String(tail));
  ASSERT_TRUE(by_tail_rows.ok());
  auto scanned = flights.Filter(Eq(Col("tail_num"), Lit(tail.c_str())))
                     .Collect()
                     .value();
  EXPECT_EQ(by_tail_rows->rows.size(), scanned.rows.size());
}

TEST(IntegrationTest, SqlOverAppendedIndexMatchesApi) {
  Session session(SmallOptions());
  auto df = *session.CreateTable("events", EventSchema(), EventRows(200));
  auto v0 = *IndexedDataFrame::Create(df, "user");
  auto extra = *session.CreateTable(
      "more", EventSchema(),
      {{Value::Int64(3), Value::String("buy"), Value::Float64(42)},
       {Value::Int64(3), Value::String("view"), Value::Float64(43)}});
  auto v1 = *v0.AppendRows(extra);
  v1.RegisterAs("live_events");

  auto via_sql =
      session.Sql("SELECT * FROM live_events WHERE user = 3")->Collect();
  auto via_api = v1.GetRows(Value::Int64(3));
  ASSERT_TRUE(via_sql.ok());
  ASSERT_TRUE(via_api.ok());
  EXPECT_EQ(via_sql->SortedRowStrings(), via_api->SortedRowStrings());
}

TEST(IntegrationTest, ComposedPipelineOverIndexedData) {
  // lookup -> join -> filter -> aggregate -> sort -> limit, end to end.
  Session session(SmallOptions());
  auto events = *session.CreateTable("events", EventSchema(), EventRows(400));
  auto users_schema = std::make_shared<Schema>(Schema({
      {"uid", TypeId::kInt64, false},
      {"segment", TypeId::kString, false},
  }));
  std::vector<RowVec> user_rows;
  for (int64_t u = 0; u < 20; ++u) {
    user_rows.push_back(
        {Value::Int64(u), Value::String(u % 2 ? "vip" : "free")});
  }
  auto users = *session.CreateTable("users", users_schema, user_rows);
  auto indexed = *IndexedDataFrame::Create(events, "user");

  auto result = indexed.Join(users, "uid")
                    .Filter(Eq(Col("kind"), Lit("buy")))
                    .Agg({"segment"}, {AggSpec::Count("purchases"),
                                       AggSpec::Avg("amount")})
                    .OrderBy({{"purchases", true}})
                    .Limit(1)
                    .Collect();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);

  // Cross-check against the pure vanilla pipeline.
  auto vanilla = events.Join(users, "user", "uid")
                     .Filter(Eq(Col("kind"), Lit("buy")))
                     .Agg({"segment"}, {AggSpec::Count("purchases"),
                                        AggSpec::Avg("amount")})
                     .OrderBy({{"purchases", true}})
                     .Limit(1)
                     .Collect();
  ASSERT_TRUE(vanilla.ok());
  EXPECT_EQ(result->SortedRowStrings(), vanilla->SortedRowStrings());
}

TEST(IntegrationTest, DeepVersionChainSurvivesFailure) {
  Session session(SmallOptions());
  auto df = *session.CreateTable("events", EventSchema(), EventRows(100));
  auto current = *IndexedDataFrame::Create(df, "user");
  for (int i = 0; i < 8; ++i) {
    auto extra = *session.CreateTable(
        "x" + std::to_string(i), EventSchema(),
        {{Value::Int64(99), Value::String("buy"),
          Value::Float64(static_cast<double>(i))}});
    current = *current.AppendRows(extra);
  }
  EXPECT_EQ(current.version(), 8u);
  EXPECT_EQ(current.GetRows(Value::Int64(99))->rows.size(), 8u);

  session.cluster().KillExecutor(0);
  session.cluster().KillExecutor(3);
  // Recovery replays the whole 8-append chain.
  EXPECT_EQ(current.GetRows(Value::Int64(99))->rows.size(), 8u);
}

TEST(IntegrationTest, UnionOfIndexedAndVanilla) {
  Session session(SmallOptions());
  auto a = *session.CreateTable("a", EventSchema(), EventRows(50));
  auto b = *session.CreateTable("b", EventSchema(), EventRows(30));
  auto indexed = *IndexedDataFrame::Create(a, "user");
  auto result = indexed.AsDataFrame().UnionAll(b).Count();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 80u);
}

}  // namespace
}  // namespace idf
