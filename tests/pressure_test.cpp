// Deterministic memory-pressure harness (tests/pressure_test.cpp).
//
// The mem_test suite provokes pressure organically (tight budgets, file
// truncation); this suite drives the chaos engine's scripted hooks
// (chaos::ChaosHooks, src/testing/chaos.h) to place evictions, reload
// failures, and fault-in delays at *exact* points in an execution:
//  - on_task_start fires at every task boundary (Cluster::ExecuteTask),
//    without governor locks — force-evicting between tasks is deterministic
//    no matter how the scheduler interleaves threads;
//  - on_reload is consulted before every payload reload, demand and
//    prefetch alike, with a global 1-based ordinal — failing the Nth reload
//    or delaying every fault-in needs no filesystem tricks.
// Scenarios: evict-everything-between-tasks, reload failure during
// prefetch (demand path recovers), Nth-reload demand failure (query fails
// kUnavailable, then succeeds once the fault passes), delayed fault-in
// under concurrent scans, and double executor loss with forced eviction
// (the salvage path under maximum pressure).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/indexed_dataframe.h"
#include "core/indexed_partition.h"
#include "mem/governor.h"
#include "obs/metrics_registry.h"
#include "sql/columnar.h"
#include "sql/session.h"
#include "testing/chaos.h"

namespace idf {
namespace {

uint64_t CounterValue(const std::string& name) {
  return obs::Registry::Global().GetCounter(name).value();
}

/// Installs hooks for the enclosing scope and always clears them on exit —
/// leaked hooks would make every later test in the process nondeterministic.
class ScopedHooks {
 public:
  explicit ScopedHooks(chaos::ChaosHooks hooks) {
    chaos::ChaosEngine::SetHooks(std::move(hooks));
  }
  ~ScopedHooks() { chaos::ChaosEngine::SetHooks({}); }
  ScopedHooks(const ScopedHooks&) = delete;
  ScopedHooks& operator=(const ScopedHooks&) = delete;
};

SchemaPtr EdgeSchema() {
  return std::make_shared<Schema>(Schema({
      {"src", TypeId::kInt64, false},
      {"dst", TypeId::kInt64, false},
      {"weight", TypeId::kFloat64, true},
  }));
}

RowVec Edge(int64_t src, int64_t dst, double w = 1.0) {
  return {Value::Int64(src), Value::Int64(dst), Value::Float64(w)};
}

std::vector<RowVec> DenseEdges(int64_t n) {
  std::vector<RowVec> rows;
  rows.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back(Edge(i % 97, i, 0.25 * static_cast<double>(i)));
  }
  return rows;
}

SessionOptions ClusterOptions(uint64_t budget = 0) {
  // The harness pins exact budgets through ClusterConfig; an external
  // IDF_MEMORY_BUDGET (which by design overrides the config) would change
  // the pressure pattern under test.
  ::unsetenv("IDF_MEMORY_BUDGET");
  SessionOptions opts;
  opts.cluster.num_workers = 2;
  opts.cluster.executors_per_worker = 2;
  opts.cluster.cores_per_executor = 2;
  opts.cluster.memory_budget_bytes = budget;
  opts.default_partitions = 4;
  return opts;
}

/// The hook body for maximum deterministic pressure: force-evict every
/// governed, unpinned payload of every (owner, shard) at a task boundary.
size_t EvictEverything() {
  mem::MemoryGovernor& gov = mem::MemoryGovernor::Global();
  size_t evicted = 0;
  for (const auto& [key, info] : gov.ResidencySnapshot()) {
    evicted += gov.EvictPartition(key.first, key.second);
  }
  return evicted;
}

TEST(PressureTest, EvictEverythingBetweenTasksKeepsResultsIdentical) {
  constexpr int64_t kRows = 8000;
  IndexOptions index_options;
  index_options.batch_capacity = 16 << 10;

  // Reference run: no budget, no hooks.
  std::vector<std::string> expected_join;
  size_t expected_hits = 0;
  {
    Session session(ClusterOptions());
    auto edges = *session.CreateTable("edges", EdgeSchema(), DenseEdges(kRows));
    auto probe = *session.CreateTable("probe", EdgeSchema(), DenseEdges(300));
    auto indexed = *IndexedDataFrame::Create(edges, "src", index_options);
    expected_hits = indexed.GetRows(Value::Int64(13)).value().rows.size();
    expected_join = indexed.Join(probe, "src").Collect()->SortedRowStrings();
  }

  // Pressured run: before EVERY task body, evict every governed payload.
  // Each task demand-faults its own working set back in; results must not
  // change by a byte.
  Session session(ClusterOptions(512 << 10));
  auto edges = *session.CreateTable("edges", EdgeSchema(), DenseEdges(kRows));
  auto probe = *session.CreateTable("probe", EdgeSchema(), DenseEdges(300));
  auto indexed = *IndexedDataFrame::Create(edges, "src", index_options);

  std::atomic<uint64_t> forced{0};
  chaos::ChaosHooks hooks;
  hooks.on_task_start = [&forced] { forced += EvictEverything(); };
  ScopedHooks guard(std::move(hooks));

  EXPECT_EQ(indexed.GetRows(Value::Int64(13)).value().rows.size(),
            expected_hits);
  EXPECT_EQ(indexed.Join(probe, "src").Collect()->SortedRowStrings(),
            expected_join);
  EXPECT_GT(forced.load(), 0u);
}

TEST(PressureTest, PrefetchReloadFailureFallsBackToDemandPath) {
  // A reload that fails during prefetch is swallowed (counted, payload
  // stays evicted); the demand path then reloads it and surfaces the data.
  ::unsetenv("IDF_MEMORY_BUDGET");
  mem::MemoryGovernor& gov = mem::MemoryGovernor::Global();
  mem::ScopedBudget engage(gov.resident_bytes() + (64 << 20));
  constexpr uint64_t kOwner = 770001;
  auto chunk = std::make_shared<ColumnarChunk>(EdgeSchema());
  for (int64_t i = 0; i < 128; ++i) {
    IDF_CHECK_OK(chunk->AppendRow(Edge(i, i)));
  }
  chunk->SealForCache(kOwner, 0);
  ASSERT_EQ(gov.EvictPartition(kOwner, 0), 1u);

  std::atomic<uint64_t> prefetch_attempts{0};
  chaos::ChaosHooks hooks;
  hooks.on_reload = [&prefetch_attempts](uint64_t, uint32_t, uint32_t,
                                         uint64_t, bool prefetch) {
    if (prefetch) {
      prefetch_attempts++;
      return Status::Unavailable("injected prefetch reload failure");
    }
    return Status::OK();
  };
  ScopedHooks guard(std::move(hooks));

  const uint64_t failures_before = CounterValue("mem.prefetch.failures");
  gov.PrefetchPartition(kOwner, 0);
  gov.DrainPrefetchForTesting();
  EXPECT_EQ(prefetch_attempts.load(), 1u);
  EXPECT_GT(CounterValue("mem.prefetch.failures"), failures_before);
  EXPECT_FALSE(chunk->resident());

  // Demand fault-in retries the reload (hook passes non-prefetch reloads).
  const uint64_t faults_before = CounterValue("mem.reload_faults");
  EXPECT_EQ(chunk->RowAt(5)[0], Value::Int64(5));
  EXPECT_TRUE(chunk->resident());
  EXPECT_GT(CounterValue("mem.reload_faults"), faults_before);
}

TEST(PressureTest, NthDemandReloadFailureFailsQueryThenRecovers) {
  // Port of MemSalvageTest.LostSpillFileFailsTheQueryInsteadOfAborting onto
  // the harness: instead of truncating spill files on disk, fail one demand
  // reload by ordinal. The query must fail kUnavailable (ReloadFault caught
  // at the task boundary) — and succeed once the fault has passed, because
  // nothing on disk was actually harmed.
  constexpr int64_t kRows = 20000;
  IndexOptions index_options;
  index_options.batch_capacity = 16 << 10;

  std::vector<std::string> expected;
  {
    Session session(ClusterOptions());
    auto edges = *session.CreateTable("edges", EdgeSchema(), DenseEdges(kRows));
    auto indexed = *IndexedDataFrame::Create(edges, "src", index_options);
    expected = indexed.AsDataFrame().Collect()->SortedRowStrings();
  }

  Session session(ClusterOptions(128 << 10));
  auto edges = *session.CreateTable("edges", EdgeSchema(), DenseEdges(kRows));
  auto indexed = *IndexedDataFrame::Create(edges, "src", index_options);
  ASSERT_GT(CounterValue("mem.evictions"), 0u);

  // Ordinals count from hook installation but are shared with the prefetch
  // thread (whose reloads the scan stage now triggers and this hook lets
  // pass), so the Nth *demand* reload is selected by the hook's own count:
  // exactly the first demand fault-in fails.
  std::atomic<uint64_t> demand_reloads{0};
  chaos::ChaosHooks hooks;
  hooks.on_reload = [&demand_reloads](uint64_t, uint32_t, uint32_t,
                                      uint64_t ordinal, bool prefetch) {
    if (!prefetch && demand_reloads.fetch_add(1) == 0) {
      return Status::Unavailable("injected reload failure (ordinal " +
                                 std::to_string(ordinal) + ")");
    }
    return Status::OK();
  };
  ScopedHooks guard(std::move(hooks));

  const auto failed = indexed.AsDataFrame().Collect();
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(demand_reloads.load(), 1u);

  // The fault was transient: the very next run reloads cleanly and matches
  // the unbudgeted reference.
  EXPECT_EQ(indexed.AsDataFrame().Collect()->SortedRowStrings(), expected);
}

TEST(PressureTest, DelayedFaultInUnderConcurrentScansStaysCorrect) {
  // Port of MemGovernorTest.ConcurrentScansUnderTightBudgetStayCorrect with
  // the harness widening the eviction/reload race: every reload sleeps
  // inside the governor lock, so concurrent readers of the same payload
  // pile up behind in-flight fault-ins far more often than they would
  // naturally. Every lookup must still see all of its rows.
  ::unsetenv("IDF_MEMORY_BUDGET");
  IndexedPartition part(EdgeSchema(), 0, 8 << 10);
  constexpr int64_t kKeys = 16;
  constexpr int64_t kRowsPerKey = 40;
  for (int64_t r = 0; r < kRowsPerKey; ++r) {
    for (int64_t k = 0; k < kKeys; ++k) {
      IDF_CHECK_OK(part.InsertRow(Edge(k, r)));
    }
  }
  std::shared_ptr<IndexedPartition> snap = part.Snapshot();

  chaos::ChaosHooks hooks;
  hooks.on_reload = [](uint64_t, uint32_t, uint32_t, uint64_t, bool) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    return Status::OK();
  };
  ScopedHooks guard(std::move(hooks));

  mem::ScopedBudget tight(1);
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      for (int iter = 0; iter < 15; ++iter) {
        const int64_t key = (t * 15 + iter) % kKeys;
        const auto rows = snap->LookupRows(Value::Int64(key));
        if (rows.size() != static_cast<size_t>(kRowsPerKey)) {
          failures.fetch_add(1);
          continue;
        }
        for (const RowVec& row : rows) {
          if (row[0] != Value::Int64(key)) failures.fetch_add(1);
        }
      }
    });
  }
  std::thread evictor([&] {
    for (int i = 0; i < 100; ++i) mem::MemoryGovernor::Global().EnforceBudget();
  });
  for (std::thread& t : readers) t.join();
  evictor.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(PressureTest, DoubleExecutorLossWithForcedEvictionStillRecovers) {
  // Port of MemSalvageTest.RecoveryReloadsSpilledBatchesAfterExecutorLoss
  // onto the harness, with the screws tightened: every task boundary of the
  // recovery itself force-evicts everything, so recompute runs against a
  // cache that keeps vanishing under it. Salvage (spill files co-owned by
  // the catalog) plus demand fault-in must still reproduce the exact rows.
  constexpr int64_t kRows = 20000;
  IndexOptions index_options;
  index_options.batch_capacity = 16 << 10;

  Session session(ClusterOptions(256 << 10));
  auto edges = *session.CreateTable("edges", EdgeSchema(), DenseEdges(kRows));
  auto indexed = *IndexedDataFrame::Create(edges, "src", index_options);
  ASSERT_GT(CounterValue("mem.evictions"), 0u);

  const auto before = indexed.GetRows(Value::Int64(29)).value();
  ASSERT_FALSE(before.rows.empty());

  std::atomic<uint64_t> forced{0};
  chaos::ChaosHooks hooks;
  hooks.on_task_start = [&forced] { forced += EvictEverything(); };
  ScopedHooks guard(std::move(hooks));

  const uint64_t salvaged_before = CounterValue("mem.salvage.segments");
  session.cluster().KillExecutor(1);
  session.cluster().KillExecutor(2);
  const auto after = indexed.GetRows(Value::Int64(29)).value();

  ASSERT_EQ(after.rows.size(), before.rows.size());
  for (size_t i = 0; i < after.rows.size(); ++i) {
    EXPECT_EQ(after.rows[i], before.rows[i]);
  }
  EXPECT_GT(CounterValue("mem.salvage.segments"), salvaged_before);
  EXPECT_GT(forced.load(), 0u);
}

}  // namespace
}  // namespace idf
