// Tests for out-of-core persistence: partition round-trips (chains, nulls,
// strings), corruption detection, full IndexedDataFrame save/load, appends
// on loaded indexes, and disk-backed lineage recovery.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/persistence.h"
#include "mem/governor.h"
#include "obs/metrics_registry.h"
#include "workload/snb.h"

namespace idf {
namespace {

SessionOptions SmallOptions() {
  SessionOptions opts;
  opts.cluster.num_workers = 2;
  opts.cluster.executors_per_worker = 2;
  opts.cluster.cores_per_executor = 2;
  opts.default_partitions = 4;
  return opts;
}

SchemaPtr MixedSchema() {
  return std::make_shared<Schema>(Schema({
      {"id", TypeId::kInt64, false},
      {"name", TypeId::kString, true},
      {"score", TypeId::kFloat64, true},
  }));
}

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("idf_persist_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string Path(const std::string& file) const {
    return (dir_ / file).string();
  }

  std::filesystem::path dir_;
};

TEST_F(PersistenceTest, PartitionRoundTrip) {
  IndexedPartition part(MixedSchema(), 0);
  for (int64_t i = 0; i < 1000; ++i) {
    IDF_CHECK_OK(part.InsertRow({Value::Int64(i % 100),
                                 Value::String("n" + std::to_string(i)),
                                 Value::Float64(i * 0.5)}));
  }
  IDF_CHECK_OK(SavePartition(part, Path("p.bin")));

  auto loaded = LoadPartition(Path("p.bin"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->num_rows(), 1000u);
  EXPECT_EQ((*loaded)->key_column(), 0u);
  EXPECT_EQ((*loaded)->schema(), part.schema());

  // Chains reproduce: every key has 10 rows, newest first.
  for (int64_t k = 0; k < 100; k += 13) {
    auto original = part.LookupRows(Value::Int64(k));
    auto restored = (*loaded)->LookupRows(Value::Int64(k));
    ASSERT_EQ(restored.size(), original.size()) << k;
    for (size_t i = 0; i < original.size(); ++i) {
      EXPECT_EQ(restored[i][1], original[i][1]);
    }
  }
}

TEST_F(PersistenceTest, NullsAndEmptyStringsSurvive) {
  IndexedPartition part(MixedSchema(), 0);
  IDF_CHECK_OK(part.InsertRow(
      {Value::Int64(1), Value::Null(TypeId::kString), Value::Float64(0)}));
  IDF_CHECK_OK(part.InsertRow(
      {Value::Int64(2), Value::String(""), Value::Null(TypeId::kFloat64)}));
  IDF_CHECK_OK(SavePartition(part, Path("p.bin")));
  auto loaded = LoadPartition(Path("p.bin"));
  ASSERT_TRUE(loaded.ok());
  auto r1 = (*loaded)->LookupRows(Value::Int64(1));
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_TRUE(r1[0][1].is_null());
  auto r2 = (*loaded)->LookupRows(Value::Int64(2));
  ASSERT_EQ(r2.size(), 1u);
  EXPECT_EQ(r2[0][1], Value::String(""));
  EXPECT_TRUE(r2[0][2].is_null());
}

TEST_F(PersistenceTest, StringKeyedPartitionRoundTrip) {
  IndexedPartition part(MixedSchema(), 1);
  for (int64_t i = 0; i < 200; ++i) {
    IDF_CHECK_OK(part.InsertRow({Value::Int64(i),
                                 Value::String("key" + std::to_string(i % 20)),
                                 Value::Float64(0)}));
  }
  IDF_CHECK_OK(SavePartition(part, Path("p.bin")));
  auto loaded = LoadPartition(Path("p.bin"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->LookupRows(Value::String("key7")).size(), 10u);
}

TEST_F(PersistenceTest, MissingFileIsNotFound) {
  EXPECT_EQ(LoadPartition(Path("nope.bin")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(PersistenceTest, CorruptMagicRejected) {
  std::ofstream out(Path("bad.bin"), std::ios::binary);
  out << "NOTAPART-and-some-garbage-bytes";
  out.close();
  EXPECT_EQ(LoadPartition(Path("bad.bin")).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PersistenceTest, TruncatedFileRejected) {
  IndexedPartition part(MixedSchema(), 0);
  for (int64_t i = 0; i < 100; ++i) {
    IDF_CHECK_OK(part.InsertRow(
        {Value::Int64(i), Value::String("x"), Value::Float64(0)}));
  }
  IDF_CHECK_OK(SavePartition(part, Path("p.bin")));
  // Truncate the tail.
  const auto full = std::filesystem::file_size(Path("p.bin"));
  std::filesystem::resize_file(Path("p.bin"), full - 64);
  EXPECT_FALSE(LoadPartition(Path("p.bin")).ok());
}

TEST_F(PersistenceTest, IndexedDataFrameSaveLoadRoundTrip) {
  Session session(SmallOptions());
  SnbConfig snb;
  snb.num_vertices = 200;
  snb.num_edges = 5000;
  snb.partitions = 4;
  SnbGenerator generator(snb);
  auto edges = generator.Edges(session).value();
  auto original = IndexedDataFrame::Create(edges, "edge_source").value();
  IDF_CHECK_OK(SaveIndexedDataFrame(original, dir_.string()));

  // Load into a brand-new session (nothing shared).
  Session fresh(SmallOptions());
  auto loaded = LoadIndexedDataFrame(fresh, dir_.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_rows(), 5000u);
  EXPECT_EQ(loaded->indexed_column_name(), "edge_source");
  EXPECT_EQ(loaded->num_partitions(), original.num_partitions());

  for (int64_t key : {0L, 7L, 150L}) {
    EXPECT_EQ(loaded->GetRows(Value::Int64(key))->rows.size(),
              original.GetRows(Value::Int64(key))->rows.size())
        << key;
  }
}

TEST_F(PersistenceTest, LoadedIndexSupportsAppendsAndJoins) {
  Session session(SmallOptions());
  SnbConfig snb;
  snb.num_vertices = 100;
  snb.num_edges = 2000;
  snb.partitions = 4;
  SnbGenerator generator(snb);
  auto edges = generator.Edges(session).value();
  auto original = IndexedDataFrame::Create(edges, "edge_source").value();
  IDF_CHECK_OK(SaveIndexedDataFrame(original, dir_.string()));

  Session fresh(SmallOptions());
  auto loaded = *LoadIndexedDataFrame(fresh, dir_.string());

  // Append on the loaded index: new version, MVCC intact.
  auto extra = fresh
                   .CreateTable("extra", SnbGenerator::EdgeSchema(),
                                {{Value::Int64(5), Value::Int64(9999),
                                  Value::Int64(1), Value::Float64(1)}})
                   .value();
  auto v1 = loaded.AppendRows(extra).value();
  EXPECT_EQ(v1.GetRows(Value::Int64(5))->rows.size(),
            loaded.GetRows(Value::Int64(5))->rows.size() + 1);

  // Indexed join on the loaded index matches a vanilla join.
  auto probe = generator.EdgeSample(fresh, 50, 3).value();
  auto via_index = loaded.Join(probe, "edge_source").Collect();
  ASSERT_TRUE(via_index.ok());
  auto vanilla_base = loaded.AsDataFrame();  // fallback scan of same data
  EXPECT_GT(via_index->rows.size(), 0u);
}

TEST_F(PersistenceTest, DiskBackedLineageRecovery) {
  Session session(SmallOptions());
  SnbConfig snb;
  snb.num_vertices = 100;
  snb.num_edges = 2000;
  snb.partitions = 4;
  SnbGenerator generator(snb);
  auto edges = generator.Edges(session).value();
  auto original = IndexedDataFrame::Create(edges, "edge_source").value();
  IDF_CHECK_OK(SaveIndexedDataFrame(original, dir_.string()));

  Session fresh(SmallOptions());
  auto loaded = *LoadIndexedDataFrame(fresh, dir_.string());
  const size_t expected = loaded.GetRows(Value::Int64(3))->rows.size();

  // Kill executors: lost partitions must be re-read from disk.
  fresh.cluster().KillExecutor(1);
  fresh.cluster().KillExecutor(2);
  auto after = loaded.GetRows(Value::Int64(3));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->rows.size(), expected);
}

TEST_F(PersistenceTest, LoadFromDirectoryWithoutManifestFails) {
  Session session(SmallOptions());
  EXPECT_EQ(LoadIndexedDataFrame(session, Path("empty")).status().code(),
            StatusCode::kNotFound);
}

// ---- eviction interplay (src/mem/governor.h) -------------------------------

TEST_F(PersistenceTest, SaveLoadRoundTripsWhileBatchesEvicted) {
  IndexedPartition part(MixedSchema(), 0, 16 << 10);
  for (int64_t i = 0; i < 2000; ++i) {
    IDF_CHECK_OK(part.InsertRow({Value::Int64(i % 100),
                                 Value::String("n" + std::to_string(i)),
                                 Value::Float64(i * 0.5)}));
  }
  part.Snapshot();  // seal the tail so every batch is evictable

  // Save under a 1-byte budget: SavePartition's scan faults each spilled
  // batch back in, so the file must be identical to an unbounded save.
  mem::ScopedBudget tight(1);
  EXPECT_GT(obs::Registry::Global().GetCounter("mem.evictions").value(), 0u);
  IDF_CHECK_OK(SavePartition(part, Path("p.bin")));

  auto loaded = LoadPartition(Path("p.bin"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->num_rows(), 2000u);
  for (int64_t k = 0; k < 100; k += 7) {
    auto original = part.LookupRows(Value::Int64(k));
    auto restored = (*loaded)->LookupRows(Value::Int64(k));
    ASSERT_EQ(restored.size(), original.size()) << k;
    for (size_t i = 0; i < original.size(); ++i) {
      EXPECT_EQ(restored[i], original[i]);
    }
  }
}

TEST_F(PersistenceTest, AppendsAfterEvictionMatchUnboundedRun) {
  // Two identical partitions; one lives under a tight budget with appends
  // landing after its earlier batches were spilled. Results must match the
  // unbounded twin exactly.
  auto build = [](IndexedPartition& part, int64_t from, int64_t to) {
    for (int64_t i = from; i < to; ++i) {
      IDF_CHECK_OK(part.InsertRow({Value::Int64(i % 50),
                                   Value::String("v" + std::to_string(i)),
                                   Value::Float64(i)}));
    }
  };
  IndexedPartition unbounded(MixedSchema(), 0, 16 << 10);
  build(unbounded, 0, 1500);
  build(unbounded, 1500, 2000);

  IndexedPartition budgeted(MixedSchema(), 0, 16 << 10);
  build(budgeted, 0, 1500);
  budgeted.Snapshot();  // seal, making the first 1500 rows evictable
  {
    mem::ScopedBudget tight(1);
    // Appends chase back-pointers into evicted batches: each insert must
    // transparently fault the chain head's batch back in.
    build(budgeted, 1500, 2000);
    for (int64_t k = 0; k < 50; ++k) {
      auto expected = unbounded.LookupRows(Value::Int64(k));
      auto actual = budgeted.LookupRows(Value::Int64(k));
      ASSERT_EQ(actual.size(), expected.size()) << k;
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(actual[i], expected[i]);
      }
    }
  }
}

}  // namespace
}  // namespace idf
