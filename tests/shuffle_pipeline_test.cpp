// Streaming shuffle pipeline (src/engine/shuffle.h, docs/SHUFFLE.md).
//
// The contract under test: the pipelined transport (fused map+reduce stage,
// per-reduce channels, backpressure window) must be *byte-identical* to the
// classic two-stage barrier path — same row order out of a full scan, same
// batch layouts, same COW/snapshot/metrics totals — while the raw channel
// layer must deliver buffers in (map id, seal sequence) order, honor the
// window's always-admit-the-minimum-map carve-out, and unwind cleanly on
// abort. A/B runs flip IDF_SHUFFLE_PIPELINE between sessions, exactly like
// the fig10 --pipelined bench does.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "core/indexed_dataframe.h"
#include "core/indexed_partition.h"
#include "engine/shuffle.h"
#include "sql/session.h"

namespace idf {
namespace {

/// Pins IDF_SHUFFLE_PIPELINE for the enclosing scope (the knob is re-read
/// on every shuffle, so flipping it between sessions A/Bs in-process).
class ScopedPipelineMode {
 public:
  explicit ScopedPipelineMode(bool on) {
    ::setenv("IDF_SHUFFLE_PIPELINE", on ? "1" : "0", 1);
  }
  ~ScopedPipelineMode() { ::unsetenv("IDF_SHUFFLE_PIPELINE"); }
  ScopedPipelineMode(const ScopedPipelineMode&) = delete;
  ScopedPipelineMode& operator=(const ScopedPipelineMode&) = delete;
};

SchemaPtr EventSchema() {
  return std::make_shared<Schema>(Schema({
      {"user", TypeId::kInt64, false},
      {"event", TypeId::kInt64, false},
      {"score", TypeId::kFloat64, true},
  }));
}

RowVec Event(int64_t user, int64_t event, double score = 1.0) {
  return {Value::Int64(user), Value::Int64(event), Value::Float64(score)};
}

std::vector<RowVec> MakeRows(int64_t n, int64_t salt = 0) {
  std::vector<RowVec> rows;
  rows.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back(Event((i * 7 + salt) % 131, i + salt * 1000000,
                         0.5 * static_cast<double>(i)));
  }
  return rows;
}

SessionOptions ClusterOptions(uint64_t budget = 0) {
  ::unsetenv("IDF_MEMORY_BUDGET");
  SessionOptions opts;
  opts.cluster.num_workers = 2;
  opts.cluster.executors_per_worker = 2;
  opts.cluster.cores_per_executor = 2;
  opts.cluster.memory_budget_bytes = budget;
  opts.default_partitions = 4;
  return opts;
}

/// Per-partition physical fingerprint: rows, batches, and byte layout. The
/// hint-credit insert gate exists so these match across transports.
struct PartitionShape {
  uint64_t num_rows;
  uint32_t num_batches;
  uint64_t data_bytes;
  uint64_t allocated_bytes;

  bool operator==(const PartitionShape& o) const {
    return num_rows == o.num_rows && num_batches == o.num_batches &&
           data_bytes == o.data_bytes && allocated_bytes == o.allocated_bytes;
  }
};

std::vector<PartitionShape> ShapesOf(Session& session,
                                     const IndexedDataFrame& idf) {
  std::vector<PartitionShape> shapes;
  TaskContext ctx(&session.cluster(), 0);
  for (uint32_t p = 0; p < idf.num_partitions(); ++p) {
    auto part = idf.rdd()->GetPartition(p, idf.version(), ctx);
    IDF_CHECK_OK(part.status());
    shapes.push_back({(*part)->num_rows(), (*part)->num_batches(),
                      (*part)->data_bytes(), (*part)->allocated_bytes()});
  }
  return shapes;
}

/// The TaskMetrics fields that must be invariant across transports. (Timing
/// fields and the DES makespan legitimately differ; stage *count* shrinks —
/// map+reduce fuse into one stage.)
struct InvariantTotals {
  uint64_t rows_read, rows_written, shuffle_read, shuffle_written;
  uint64_t index_probes, index_hits, batch_copies, ctrie_snapshots;

  static InvariantTotals Of(const QueryMetrics& m) {
    return {m.totals.rows_read,      m.totals.rows_written,
            m.totals.shuffle_bytes_read, m.totals.shuffle_bytes_written,
            m.totals.index_probes,   m.totals.index_hits,
            m.totals.batch_copies,   m.totals.ctrie_snapshots};
  }
  bool operator==(const InvariantTotals& o) const {
    return rows_read == o.rows_read && rows_written == o.rows_written &&
           shuffle_read == o.shuffle_read &&
           shuffle_written == o.shuffle_written &&
           index_probes == o.index_probes && index_hits == o.index_hits &&
           batch_copies == o.batch_copies &&
           ctrie_snapshots == o.ctrie_snapshots;
  }
};

struct IndexBuildResult {
  std::vector<std::string> scan;
  std::vector<PartitionShape> shapes;
  InvariantTotals totals;
  uint32_t num_stages;
  size_t lookup_hits;
};

IndexBuildResult BuildIndexOnce(bool pipelined, uint64_t budget) {
  ScopedPipelineMode mode(pipelined);
  Session session(ClusterOptions(budget));
  auto events =
      *session.CreateTable("events", EventSchema(), MakeRows(12000));
  IndexOptions options;
  options.batch_capacity = 16 << 10;
  QueryMetrics metrics;
  auto indexed = *IndexedDataFrame::Create(events, "user", options, &metrics);
  IndexBuildResult r;
  r.scan = indexed.AsDataFrame().Collect()->SortedRowStrings();
  r.shapes = ShapesOf(session, indexed);
  r.totals = InvariantTotals::Of(metrics);
  r.num_stages = metrics.num_stages;
  r.lookup_hits = indexed.GetRows(Value::Int64(13)).value().rows.size();
  return r;
}

TEST(ShufflePipelineTest, CreateIndexIsByteIdenticalAcrossTransports) {
  const IndexBuildResult barrier = BuildIndexOnce(false, 0);
  const IndexBuildResult pipelined = BuildIndexOnce(true, 0);

  EXPECT_EQ(pipelined.scan, barrier.scan);
  ASSERT_EQ(pipelined.shapes.size(), barrier.shapes.size());
  for (size_t p = 0; p < barrier.shapes.size(); ++p) {
    EXPECT_TRUE(pipelined.shapes[p] == barrier.shapes[p])
        << "partition " << p << " layout diverged";
  }
  EXPECT_TRUE(pipelined.totals == barrier.totals);
  EXPECT_EQ(pipelined.lookup_hits, barrier.lookup_hits);
  // Fusing map+reduce removes one stage from the build.
  EXPECT_LT(pipelined.num_stages, barrier.num_stages);
}

TEST(ShufflePipelineTest, CreateIndexIdenticalUnderTightBudget) {
  // A quarter-ish budget forces the governor to spill mid-build; the insert
  // gate and window must not change a byte of the result.
  const IndexBuildResult full = BuildIndexOnce(true, 0);
  const IndexBuildResult barrier_tight = BuildIndexOnce(false, 512 << 10);
  const IndexBuildResult pipelined_tight = BuildIndexOnce(true, 512 << 10);

  EXPECT_EQ(pipelined_tight.scan, full.scan);
  EXPECT_EQ(barrier_tight.scan, full.scan);
  ASSERT_EQ(pipelined_tight.shapes.size(), barrier_tight.shapes.size());
  for (size_t p = 0; p < barrier_tight.shapes.size(); ++p) {
    EXPECT_TRUE(pipelined_tight.shapes[p] == barrier_tight.shapes[p])
        << "partition " << p << " layout diverged under budget";
  }
}

struct AppendChainResult {
  std::vector<std::string> final_scan;
  uint64_t final_rows;
  std::vector<InvariantTotals> per_append;
};

AppendChainResult RunAppendChain(bool pipelined) {
  ScopedPipelineMode mode(pipelined);
  Session session(ClusterOptions());
  auto base = *session.CreateTable("base", EventSchema(), MakeRows(6000));
  IndexOptions options;
  options.batch_capacity = 16 << 10;
  auto v0 = *IndexedDataFrame::Create(base, "user", options);

  AppendChainResult r;
  IndexedDataFrame head = v0;
  for (int64_t step = 1; step <= 3; ++step) {
    auto delta = *session.CreateTable("delta" + std::to_string(step),
                                      EventSchema(), MakeRows(1500, step));
    QueryMetrics metrics;
    head = *head.AppendRows(delta, &metrics);
    r.per_append.push_back(InvariantTotals::Of(metrics));
  }
  r.final_scan = head.AsDataFrame().Collect()->SortedRowStrings();
  r.final_rows = head.num_rows();
  return r;
}

TEST(ShufflePipelineTest, ThreeDeepAppendChainMatchesBarrier) {
  const AppendChainResult barrier = RunAppendChain(false);
  const AppendChainResult pipelined = RunAppendChain(true);

  EXPECT_EQ(pipelined.final_rows, barrier.final_rows);
  EXPECT_EQ(pipelined.final_scan, barrier.final_scan);
  ASSERT_EQ(pipelined.per_append.size(), barrier.per_append.size());
  for (size_t i = 0; i < barrier.per_append.size(); ++i) {
    // COW batch opens and cTrie snapshots are the Fig. 9 costs; overlap must
    // not add or save a single copy.
    EXPECT_TRUE(pipelined.per_append[i] == barrier.per_append[i])
        << "append " << i << " metrics diverged";
  }
}

std::vector<std::string> RunShuffledJoin(bool pipelined, uint64_t budget,
                                         uint64_t* index_probes = nullptr,
                                         uint64_t* shuffle_written = nullptr) {
  ScopedPipelineMode mode(pipelined);
  SessionOptions opts = ClusterOptions(budget);
  opts.broadcast_threshold_bytes = 0;  // force the shuffled probe path
  Session session(opts);
  auto build = *session.CreateTable("build", EventSchema(), MakeRows(8000));
  auto probe = *session.CreateTable("probe", EventSchema(), MakeRows(900, 7));
  IndexOptions options;
  options.batch_capacity = 16 << 10;
  auto indexed = *IndexedDataFrame::Create(build, "user", options);
  QueryMetrics metrics;
  auto joined = indexed.Join(probe, "user").Collect(&metrics);
  IDF_CHECK_OK(joined.status());
  if (index_probes != nullptr) *index_probes = metrics.totals.index_probes;
  if (shuffle_written != nullptr) {
    *shuffle_written = metrics.totals.shuffle_bytes_written;
  }
  return joined->SortedRowStrings();
}

TEST(ShufflePipelineTest, ShuffledJoinMatchesBarrierAtFullAndTightBudget) {
  uint64_t probes_barrier = 0, probes_pipelined = 0;
  uint64_t written_barrier = 0, written_pipelined = 0;
  const auto barrier = RunShuffledJoin(false, 0, &probes_barrier,
                                       &written_barrier);
  const auto pipelined = RunShuffledJoin(true, 0, &probes_pipelined,
                                         &written_pipelined);
  EXPECT_EQ(pipelined, barrier);
  EXPECT_EQ(probes_pipelined, probes_barrier);
  EXPECT_EQ(written_pipelined, written_barrier);
  // Proof this exercised the shuffle path at all.
  EXPECT_GT(probes_barrier, 0u);
  EXPECT_GT(written_barrier, 0u);

  const auto barrier_tight = RunShuffledJoin(false, 512 << 10);
  const auto pipelined_tight = RunShuffledJoin(true, 512 << 10);
  EXPECT_EQ(barrier_tight, barrier);
  EXPECT_EQ(pipelined_tight, barrier);
}

// ---- raw channel layer ----------------------------------------------------

ShuffleBuffer MakeBuffer(uint32_t fill, uint32_t bytes, ExecutorId source) {
  // One synthetic self-delimiting "row": [size][payload]. The channel layer
  // never parses rows, so any size >= 4 works for transport tests.
  ShuffleBuffer buf;
  buf.bytes.assign(bytes, static_cast<uint8_t>(fill));
  std::memcpy(buf.bytes.data(), &bytes, sizeof(bytes));
  buf.num_rows = 1;
  buf.source = source;
  return buf;
}

TEST(ShufflePipelineTest, EightProducerStressDeliversOrderedByteStreams) {
  constexpr uint32_t kMaps = 8;
  constexpr uint32_t kReduces = 2;
  constexpr uint32_t kBuffersPerReduce = 16;
  constexpr uint32_t kBufBytes = 1024;

  ShuffleService service;
  const uint64_t id = service.NewShuffle(kMaps, kReduces);
  service.StartStreaming(id, /*window_bytes=*/4 << 10,
                         /*enforce_window=*/true);

  std::vector<std::thread> producers;
  for (uint32_t m = 0; m < kMaps; ++m) {
    producers.emplace_back([&, m] {
      for (uint32_t seq = 0; seq < kBuffersPerReduce; ++seq) {
        for (uint32_t r = 0; r < kReduces; ++r) {
          // Fill encodes (map, seq) so consumers can verify order.
          ASSERT_TRUE(service.PushMapOutput(
              id, m, r, MakeBuffer(m * 31 + seq, kBufBytes, m)));
        }
      }
      service.MapTaskFinished(id, m);
    });
  }

  std::vector<Status> consumer_status(kReduces, Status::OK());
  std::vector<std::thread> consumers;
  for (uint32_t r = 0; r < kReduces; ++r) {
    consumers.emplace_back([&, r] {
      ReduceInputStream in(service, id, r, [] { return false; },
                           [](ExecutorId, uint64_t) {});
      uint32_t expect_map = 0, expect_seq = 0;
      for (;;) {
        auto buf = in.Next();
        if (!buf.ok()) {
          consumer_status[r] = buf.status();
          return;
        }
        if (*buf == nullptr) break;
        // Ordered delivery: map-major, seal-sequence minor.
        ASSERT_EQ((*buf)->bytes.size(), kBufBytes);
        ASSERT_EQ((*buf)->bytes[8],
                  static_cast<uint8_t>(expect_map * 31 + expect_seq));
        ASSERT_EQ((*buf)->source, static_cast<ExecutorId>(expect_map));
        if (++expect_seq == kBuffersPerReduce) {
          expect_seq = 0;
          ++expect_map;
        }
      }
      ASSERT_EQ(expect_map, kMaps) << "reduce " << r << " missed buffers";
    });
  }

  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();
  for (uint32_t r = 0; r < kReduces; ++r) {
    EXPECT_TRUE(consumer_status[r].ok()) << consumer_status[r].message();
  }
  const uint64_t total =
      uint64_t{kMaps} * kReduces * kBuffersPerReduce * kBufBytes;
  EXPECT_GT(service.InflightPeakBytes(id), 0u);
  EXPECT_LE(service.InflightPeakBytes(id), total);
  service.Release(id);
}

TEST(ShufflePipelineTest, WindowBlocksNonMinimalMapUntilCarveOutAdvances) {
  ShuffleService service;
  const uint64_t id = service.NewShuffle(/*maps=*/2, /*reduces=*/1);
  service.StartStreaming(id, /*window_bytes=*/512, /*enforce_window=*/true);

  // Map 1 (not the minimum unfinished map) pushes a buffer larger than the
  // window: it must block until map 0 finishes and the carve-out advances.
  std::atomic<bool> map1_pushed{false};
  std::thread blocked([&] {
    ASSERT_TRUE(service.PushMapOutput(id, 1, 0, MakeBuffer(9, 1024, 1)));
    map1_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(map1_pushed.load()) << "window failed to block map 1";

  // Map 0 is always admitted (liveness carve-out), window full or not.
  ASSERT_TRUE(service.PushMapOutput(id, 0, 0, MakeBuffer(7, 1024, 0)));
  service.MapTaskFinished(id, 0);
  blocked.join();
  EXPECT_TRUE(map1_pushed.load());
  service.MapTaskFinished(id, 1);

  // Both buffers arrive, in map order, despite the reversed push order.
  ReduceInputStream in(service, id, 0, [] { return false; },
                       [](ExecutorId, uint64_t) {});
  auto first = in.Next();
  ASSERT_TRUE(first.ok());
  ASSERT_NE(*first, nullptr);
  EXPECT_EQ((*first)->bytes[8], 7);
  auto second = in.Next();
  ASSERT_TRUE(second.ok());
  ASSERT_NE(*second, nullptr);
  EXPECT_EQ((*second)->bytes[8], 9);
  auto end = in.Next();
  ASSERT_TRUE(end.ok());
  EXPECT_EQ(*end, nullptr);
  // The carve-out admitted ~2 KiB past a 512-byte window; peak is bounded by
  // window + the admitted maps' output, never the whole shuffle.
  EXPECT_LE(service.InflightPeakBytes(id), 512u + 2 * 1024u);
  service.Release(id);
}

TEST(ShufflePipelineTest, AbortUnblocksProducersAndConsumers) {
  ShuffleService service;
  const uint64_t id = service.NewShuffle(/*maps=*/2, /*reduces=*/1);
  service.StartStreaming(id, /*window_bytes=*/256, /*enforce_window=*/true);

  // A consumer blocked on an empty channel and a non-minimal producer
  // blocked on a full window must both unwind when the shuffle aborts.
  std::atomic<bool> consumer_aborted{false};
  std::thread consumer([&] {
    ReduceInputStream in(service, id, 0, [] { return false; },
                         [](ExecutorId, uint64_t) {});
    for (;;) {
      auto buf = in.Next();  // drains real buffers, then blocks until abort
      if (!buf.ok()) {
        consumer_aborted.store(IsShuffleAborted(buf.status()));
        return;
      }
      if (*buf == nullptr) return;
    }
  });
  std::atomic<bool> producer_rejected{false};
  std::thread producer([&] {
    // Admitted (map 0 carve-out) — fills the window past its bound.
    service.PushMapOutput(id, 0, 0, MakeBuffer(1, 512, 0));
    // Map 1 now blocks on the window until the abort drops it.
    producer_rejected.store(
        !service.PushMapOutput(id, 1, 0, MakeBuffer(2, 512, 1)));
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  service.AbortStreaming(id);
  consumer.join();
  producer.join();
  EXPECT_TRUE(consumer_aborted.load());
  EXPECT_TRUE(producer_rejected.load());

  // ShuffleWriter surfaces the abort as the canonical status.
  ShuffleWriter writer(service, id, /*map_task=*/1, /*num_targets=*/1,
                       /*source=*/1, /*streaming=*/true, /*hint_rows=*/4);
  std::vector<uint8_t> row(512, 0);
  const uint32_t len = 512;
  std::memcpy(row.data(), &len, sizeof(len));
  Status status = Status::OK();
  // Push enough to cross the seal threshold and hit the aborted channel.
  for (int i = 0; i < 600 && status.ok(); ++i) {
    status = writer.Append(0, row.data(), len);
  }
  EXPECT_TRUE(IsShuffleAborted(status)) << status.message();
  service.Release(id);
}

}  // namespace
}  // namespace idf
