// Tests for the concurrent hash trie (CTrie) — the Indexed DataFrame's index
// structure. Covers single-threaded semantics, hash-collision paths (LNode),
// entombment/contraction after removals, O(1) snapshots with isolation, and
// multi-threaded stress.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "ctrie/ctrie.h"

namespace idf {
namespace {

TEST(CTrieTest, EmptyLookupMisses) {
  CTrie<uint64_t, uint64_t> trie;
  EXPECT_FALSE(trie.Lookup(42).has_value());
  EXPECT_FALSE(trie.Contains(42));
  EXPECT_EQ(trie.Size(), 0u);
  EXPECT_TRUE(trie.Empty());
}

TEST(CTrieTest, PutThenLookup) {
  CTrie<uint64_t, uint64_t> trie;
  EXPECT_FALSE(trie.Put(1, 100).has_value());
  auto v = trie.Lookup(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 100u);
  EXPECT_FALSE(trie.Empty());
}

TEST(CTrieTest, PutReturnsPreviousValue) {
  // This is the contract the backward-pointer chain relies on (§III-C):
  // inserting a row for an existing key must yield the previous row pointer.
  CTrie<uint64_t, uint64_t> trie;
  EXPECT_FALSE(trie.Put(7, 1).has_value());
  auto old1 = trie.Put(7, 2);
  ASSERT_TRUE(old1.has_value());
  EXPECT_EQ(*old1, 1u);
  auto old2 = trie.Put(7, 3);
  ASSERT_TRUE(old2.has_value());
  EXPECT_EQ(*old2, 2u);
  EXPECT_EQ(*trie.Lookup(7), 3u);
}

TEST(CTrieTest, PutIfAbsentKeepsExisting) {
  CTrie<uint64_t, uint64_t> trie;
  EXPECT_FALSE(trie.PutIfAbsent(5, 50).has_value());
  auto existing = trie.PutIfAbsent(5, 99);
  ASSERT_TRUE(existing.has_value());
  EXPECT_EQ(*existing, 50u);
  EXPECT_EQ(*trie.Lookup(5), 50u);
}

TEST(CTrieTest, RemoveReturnsValue) {
  CTrie<uint64_t, uint64_t> trie;
  trie.Put(3, 30);
  auto removed = trie.Remove(3);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(*removed, 30u);
  EXPECT_FALSE(trie.Lookup(3).has_value());
  EXPECT_FALSE(trie.Remove(3).has_value());
}

TEST(CTrieTest, ManyKeysRoundTrip) {
  CTrie<uint64_t, uint64_t> trie;
  constexpr uint64_t kN = 50000;
  for (uint64_t i = 0; i < kN; ++i) trie.Put(i, i * 2);
  EXPECT_EQ(trie.Size(), kN);
  for (uint64_t i = 0; i < kN; ++i) {
    auto v = trie.Lookup(i);
    ASSERT_TRUE(v.has_value()) << i;
    EXPECT_EQ(*v, i * 2);
  }
  EXPECT_FALSE(trie.Lookup(kN + 1).has_value());
}

TEST(CTrieTest, RemoveAllContractsTrie) {
  CTrie<uint64_t, uint64_t> trie;
  constexpr uint64_t kN = 2000;
  for (uint64_t i = 0; i < kN; ++i) trie.Put(i, i);
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(trie.Remove(i).has_value()) << i;
  }
  EXPECT_EQ(trie.Size(), 0u);
  // After mass removal, re-insertion still works (no tombstone leaks).
  trie.Put(1, 11);
  EXPECT_EQ(*trie.Lookup(1), 11u);
}

TEST(CTrieTest, InterleavedInsertRemove) {
  CTrie<uint64_t, uint64_t> trie;
  std::map<uint64_t, uint64_t> model;
  Rng rng(2024);
  for (int step = 0; step < 20000; ++step) {
    uint64_t key = rng.Below(500);
    if (rng.Chance(0.6)) {
      auto expected = model.count(key) ? std::optional<uint64_t>(model[key])
                                       : std::nullopt;
      auto old = trie.Put(key, step);
      EXPECT_EQ(old, expected);
      model[key] = step;
    } else {
      auto expected = model.count(key) ? std::optional<uint64_t>(model[key])
                                       : std::nullopt;
      auto old = trie.Remove(key);
      EXPECT_EQ(old, expected);
      model.erase(key);
    }
  }
  EXPECT_EQ(trie.Size(), model.size());
  for (const auto& [k, v] : model) {
    auto found = trie.Lookup(k);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, v);
  }
}

TEST(CTrieTest, StringKeys) {
  CTrie<std::string, uint64_t> trie;
  trie.Put("alpha", 1);
  trie.Put("beta", 2);
  trie.Put("alpha", 3);
  EXPECT_EQ(*trie.Lookup("alpha"), 3u);
  EXPECT_EQ(*trie.Lookup("beta"), 2u);
  EXPECT_FALSE(trie.Lookup("gamma").has_value());
}

// ---- hash collisions (LNode path) -----------------------------------------

// Degenerate hasher mapping every key to one of two buckets: all operations
// funnel through deep CNode chains and LNode collision lists.
struct CollidingHash {
  uint64_t operator()(const uint64_t& k) const { return k % 2; }
};

TEST(CTrieTest, FullHashCollisionsUseLNodes) {
  CTrie<uint64_t, uint64_t, CollidingHash> trie;
  constexpr uint64_t kN = 64;
  for (uint64_t i = 0; i < kN; ++i) trie.Put(i, i + 1000);
  EXPECT_EQ(trie.Size(), kN);
  for (uint64_t i = 0; i < kN; ++i) {
    auto v = trie.Lookup(i);
    ASSERT_TRUE(v.has_value()) << i;
    EXPECT_EQ(*v, i + 1000);
  }
}

TEST(CTrieTest, CollidingUpdateReturnsOld) {
  CTrie<uint64_t, uint64_t, CollidingHash> trie;
  for (uint64_t i = 0; i < 16; ++i) trie.Put(i, i);
  auto old = trie.Put(6, 999);
  ASSERT_TRUE(old.has_value());
  EXPECT_EQ(*old, 6u);
  EXPECT_EQ(*trie.Lookup(6), 999u);
  EXPECT_EQ(trie.Size(), 16u);
}

TEST(CTrieTest, CollidingRemove) {
  CTrie<uint64_t, uint64_t, CollidingHash> trie;
  for (uint64_t i = 0; i < 16; ++i) trie.Put(i, i);
  for (uint64_t i = 0; i < 16; i += 2) {
    auto removed = trie.Remove(i);
    ASSERT_TRUE(removed.has_value()) << i;
  }
  EXPECT_EQ(trie.Size(), 8u);
  for (uint64_t i = 1; i < 16; i += 2) EXPECT_TRUE(trie.Contains(i));
  for (uint64_t i = 0; i < 16; i += 2) EXPECT_FALSE(trie.Contains(i));
}

TEST(CTrieTest, CollidingPutIfAbsent) {
  CTrie<uint64_t, uint64_t, CollidingHash> trie;
  trie.Put(2, 20);
  trie.Put(4, 40);
  auto existing = trie.PutIfAbsent(2, 99);
  ASSERT_TRUE(existing.has_value());
  EXPECT_EQ(*existing, 20u);
  EXPECT_FALSE(trie.PutIfAbsent(8, 80).has_value());
  EXPECT_EQ(*trie.Lookup(8), 80u);
}

// ---- snapshots -------------------------------------------------------------

TEST(CTrieSnapshotTest, ReadOnlySnapshotSeesStateAtCreation) {
  CTrie<uint64_t, uint64_t> trie;
  trie.Put(1, 10);
  trie.Put(2, 20);
  auto snap = trie.ReadOnlySnapshot();
  trie.Put(3, 30);
  trie.Put(1, 11);
  trie.Remove(2);

  EXPECT_EQ(*snap.Lookup(1), 10u);
  EXPECT_EQ(*snap.Lookup(2), 20u);
  EXPECT_FALSE(snap.Lookup(3).has_value());
  EXPECT_EQ(snap.Size(), 2u);

  EXPECT_EQ(*trie.Lookup(1), 11u);
  EXPECT_FALSE(trie.Lookup(2).has_value());
  EXPECT_EQ(*trie.Lookup(3), 30u);
}

TEST(CTrieSnapshotTest, WritableSnapshotDiverges) {
  // Paper Listing 2: two divergent children of one parent must both work.
  CTrie<uint64_t, uint64_t> parent;
  for (uint64_t i = 0; i < 100; ++i) parent.Put(i, i);

  auto child_a = parent.Snapshot();
  auto child_b = parent.Snapshot();
  child_a.Put(1000, 1);
  child_b.Put(2000, 2);
  child_a.Put(5, 555);

  EXPECT_TRUE(child_a.Contains(1000));
  EXPECT_FALSE(child_a.Contains(2000));
  EXPECT_FALSE(child_b.Contains(1000));
  EXPECT_TRUE(child_b.Contains(2000));
  EXPECT_EQ(*child_a.Lookup(5), 555u);
  EXPECT_EQ(*child_b.Lookup(5), 5u);
  EXPECT_EQ(*parent.Lookup(5), 5u);
  EXPECT_FALSE(parent.Contains(1000));
  EXPECT_FALSE(parent.Contains(2000));

  // Shared ancestry is still readable everywhere.
  for (uint64_t i = 0; i < 100; ++i) {
    if (i == 5) continue;
    EXPECT_EQ(*child_a.Lookup(i), i);
    EXPECT_EQ(*child_b.Lookup(i), i);
    EXPECT_EQ(*parent.Lookup(i), i);
  }
}

TEST(CTrieSnapshotTest, SnapshotOfSnapshot) {
  CTrie<uint64_t, uint64_t> trie;
  trie.Put(1, 1);
  auto s1 = trie.Snapshot();
  s1.Put(2, 2);
  auto s2 = s1.Snapshot();
  s2.Put(3, 3);
  EXPECT_EQ(trie.Size(), 1u);
  EXPECT_EQ(s1.Size(), 2u);
  EXPECT_EQ(s2.Size(), 3u);
}

TEST(CTrieSnapshotTest, SnapshotIsCheapStructurally) {
  // Snapshot must not copy the trie eagerly: taking one on a large trie and
  // writing a handful of keys should leave almost all nodes shared. We can't
  // observe sharing directly, but we can bound the node count growth of the
  // child after K writes: it should be O(K * depth), far below a full copy.
  CTrie<uint64_t, uint64_t> trie;
  constexpr uint64_t kN = 100000;
  for (uint64_t i = 0; i < kN; ++i) trie.Put(i, i);
  auto before = trie.ComputeMemoryStats();

  auto snap = trie.Snapshot();
  for (uint64_t i = 0; i < 10; ++i) snap.Put(kN + i, i);
  auto after_child = snap.ComputeMemoryStats();

  EXPECT_EQ(after_child.snodes, before.snodes + 10);
  // CNode count can only grow by the rewritten paths, not double.
  EXPECT_LT(after_child.cnodes, before.cnodes + 200);
}

TEST(CTrieSnapshotTest, MutatingReadOnlySnapshotAborts) {
  CTrie<uint64_t, uint64_t> trie;
  trie.Put(1, 1);
  auto snap = trie.ReadOnlySnapshot();
  EXPECT_TRUE(snap.read_only());
  EXPECT_DEATH(snap.Put(2, 2), "read-only");
}

TEST(CTrieSnapshotTest, ForEachIsConsistent) {
  CTrie<uint64_t, uint64_t> trie;
  for (uint64_t i = 0; i < 1000; ++i) trie.Put(i, i * 3);
  std::map<uint64_t, uint64_t> seen;
  trie.ForEach([&](const uint64_t& k, const uint64_t& v) { seen[k] = v; });
  EXPECT_EQ(seen.size(), 1000u);
  for (const auto& [k, v] : seen) EXPECT_EQ(v, k * 3);
}

TEST(CTrieSnapshotTest, ReadOnlySnapshotOfReadOnlySnapshot) {
  CTrie<uint64_t, uint64_t> trie;
  trie.Put(1, 10);
  auto s1 = trie.ReadOnlySnapshot();
  auto s2 = s1.ReadOnlySnapshot();
  EXPECT_EQ(*s2.Lookup(1), 10u);
  EXPECT_TRUE(s2.read_only());
}

TEST(CTrieSnapshotTest, MemoryStatsCountEntries) {
  CTrie<uint64_t, uint64_t> trie;
  for (uint64_t i = 0; i < 5000; ++i) trie.Put(i, i);
  auto stats = trie.ComputeMemoryStats();
  EXPECT_EQ(stats.snodes + stats.lnodes, 5000u);
  EXPECT_GT(stats.cnodes, 0u);
  EXPECT_GT(stats.approx_bytes, 5000 * sizeof(uint64_t) * 2);
}

// ---- concurrency -------------------------------------------------------------

TEST(CTrieConcurrencyTest, ParallelDisjointInserts) {
  CTrie<uint64_t, uint64_t> trie;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trie, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        trie.Put(static_cast<uint64_t>(t) * kPerThread + i, i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(trie.Size(), kThreads * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kPerThread; i += 97) {
      auto v = trie.Lookup(static_cast<uint64_t>(t) * kPerThread + i);
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, i);
    }
  }
}

TEST(CTrieConcurrencyTest, ParallelOverlappingPutsConverge) {
  CTrie<uint64_t, uint64_t> trie;
  constexpr int kThreads = 8;
  constexpr uint64_t kKeys = 256;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trie, t] {
      for (uint64_t round = 0; round < 2000; ++round) {
        trie.Put(round % kKeys, static_cast<uint64_t>(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(trie.Size(), kKeys);
  for (uint64_t k = 0; k < kKeys; ++k) {
    auto v = trie.Lookup(k);
    ASSERT_TRUE(v.has_value());
    EXPECT_LT(*v, static_cast<uint64_t>(kThreads));
  }
}

TEST(CTrieConcurrencyTest, ReadersDuringWrites) {
  CTrie<uint64_t, uint64_t> trie;
  for (uint64_t i = 0; i < 1000; ++i) trie.Put(i, i);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      Rng rng(static_cast<uint64_t>(reads.load()) + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        uint64_t k = rng.Below(1000);
        auto v = trie.Lookup(k);
        ASSERT_TRUE(v.has_value());
        // Values only move forward: base i, or i + multiple of 1000.
        EXPECT_EQ(*v % 1000, k);
        reads++;
      }
    });
  }
  for (uint64_t round = 1; round <= 20; ++round) {
    for (uint64_t i = 0; i < 1000; ++i) trie.Put(i, i + round * 1000);
  }
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_GT(reads.load(), 0u);
}

TEST(CTrieConcurrencyTest, SnapshotsDuringWrites) {
  CTrie<uint64_t, uint64_t> trie;
  for (uint64_t i = 0; i < 500; ++i) trie.Put(i, 0);
  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto snap = trie.ReadOnlySnapshot();
      // Within one snapshot all values must come from the same "round" or
      // the one in flight — but critically each key must still be present.
      size_t n = 0;
      snap.ForEach([&n](const uint64_t&, const uint64_t&) { ++n; });
      EXPECT_EQ(n, 500u);
    }
  });
  for (uint64_t round = 1; round <= 50; ++round) {
    for (uint64_t i = 0; i < 500; ++i) trie.Put(i, round);
  }
  stop.store(true);
  snapshotter.join();
}

TEST(CTrieConcurrencyTest, ConcurrentInsertAndRemoveDisjointRanges) {
  CTrie<uint64_t, uint64_t> trie;
  for (uint64_t i = 0; i < 10000; ++i) trie.Put(i, i);
  std::thread remover([&] {
    for (uint64_t i = 0; i < 10000; ++i) ASSERT_TRUE(trie.Remove(i));
  });
  std::thread inserter([&] {
    for (uint64_t i = 10000; i < 20000; ++i) trie.Put(i, i);
  });
  remover.join();
  inserter.join();
  EXPECT_EQ(trie.Size(), 10000u);
  for (uint64_t i = 10000; i < 20000; i += 501) {
    EXPECT_TRUE(trie.Contains(i));
  }
}

// ---- parameterized sweeps --------------------------------------------------

class CTrieSizeSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CTrieSizeSweep, InsertLookupRemoveAtScale) {
  const uint64_t n = GetParam();
  CTrie<uint64_t, uint64_t> trie;
  Rng rng(n);
  std::vector<uint64_t> keys;
  keys.reserve(n);
  for (uint64_t i = 0; i < n; ++i) keys.push_back(rng.Next());
  for (uint64_t i = 0; i < n; ++i) trie.Put(keys[i], i);
  EXPECT_LE(trie.Size(), n);  // random keys may repeat
  for (uint64_t i = 0; i < n; ++i) {
    EXPECT_TRUE(trie.Contains(keys[i]));
  }
  for (uint64_t i = 0; i < n; i += 2) trie.Remove(keys[i]);
  for (uint64_t i = 1; i < n; i += 2) {
    // Odd-index keys survive unless they collided with a removed duplicate.
    if (trie.Contains(keys[i])) continue;
    bool removed_as_duplicate = false;
    for (uint64_t j = 0; j < n; j += 2) {
      if (keys[j] == keys[i]) removed_as_duplicate = true;
    }
    EXPECT_TRUE(removed_as_duplicate) << "lost key at index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CTrieSizeSweep,
                         ::testing::Values(1, 2, 16, 64, 65, 1000, 20000));

class CTrieThreadSweep : public ::testing::TestWithParam<int> {};

TEST_P(CTrieThreadSweep, ConcurrentPutsAllLand) {
  const int threads = GetParam();
  CTrie<uint64_t, uint64_t> trie;
  std::vector<std::thread> pool;
  constexpr uint64_t kPerThread = 2000;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&trie, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        trie.Put(static_cast<uint64_t>(t) << 32 | i, i);
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(trie.Size(), static_cast<size_t>(threads) * kPerThread);
}

INSTANTIATE_TEST_SUITE_P(Threads, CTrieThreadSweep,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace idf
