// Cross-representation property tests: the engine stores the same logical
// rows in two physical forms — columnar chunks (vanilla cache) and binary
// rows in batches (Indexed Batch RDD). Every expression must evaluate to the
// same value over both, and every filter must select the same rows through
// the vectorized columnar path, the generic columnar path, and the indexed
// fallback path. This is the invariant behind all indexed-vs-vanilla result
// equality in the benches.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/rng.h"
#include "core/indexed_dataframe.h"
#include "mem/governor.h"
#include "sql/columnar.h"
#include "storage/partition_store.h"

namespace idf {
namespace {

SchemaPtr WideSchema() {
  return std::make_shared<Schema>(Schema({
      {"a", TypeId::kInt64, true},
      {"b", TypeId::kInt32, true},
      {"c", TypeId::kFloat64, true},
      {"s", TypeId::kString, true},
      {"f", TypeId::kBool, true},
  }));
}

RowVec RandomRow(Rng& rng) {
  auto maybe_null = [&](Value v, TypeId t) {
    return rng.Chance(0.15) ? Value::Null(t) : v;
  };
  return {
      maybe_null(Value::Int64(rng.Range(-50, 50)), TypeId::kInt64),
      maybe_null(Value::Int32(static_cast<int32_t>(rng.Range(-20, 20))),
                 TypeId::kInt32),
      maybe_null(Value::Float64(rng.NextDouble() * 40 - 20), TypeId::kFloat64),
      maybe_null(Value::String(rng.NextString(rng.Below(6))), TypeId::kString),
      maybe_null(Value::Bool(rng.Chance(0.5)), TypeId::kBool),
  };
}

/// A random expression tree of bounded depth over the schema's columns.
ExprPtr RandomExpr(Rng& rng, int depth) {
  if (depth == 0 || rng.Chance(0.3)) {
    // Leaf comparison.
    static const char* kNumCols[] = {"a", "b", "c"};
    switch (rng.Below(5)) {
      case 0: return Eq(Col(kNumCols[rng.Below(3)]),
                        Lit(static_cast<int64_t>(rng.Range(-50, 50))));
      case 1: return Lt(Col(kNumCols[rng.Below(3)]),
                        Lit(rng.NextDouble() * 40 - 20));
      case 2: return Ge(Col(kNumCols[rng.Below(3)]),
                        Lit(static_cast<int64_t>(rng.Range(-20, 20))));
      case 3: return IsNull(Col(kNumCols[rng.Below(3)]));
      default:
        return Eq(Col("s"), Lit(Value::String(rng.NextString(rng.Below(4)))));
    }
  }
  switch (rng.Below(4)) {
    case 0: return And(RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1));
    case 1: return Or(RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1));
    case 2: return Not(RandomExpr(rng, depth - 1));
    default:
      // Arithmetic comparison: (a <op> lit) cmp lit.
      return Gt(Add(Col("a"), Lit(static_cast<int64_t>(rng.Range(-5, 5)))),
                Lit(static_cast<int64_t>(rng.Range(-40, 40))));
  }
}

std::string ValueKey(const Value& v) {
  return v.is_null() ? "<null>" : v.ToString();
}

class CrossEvalProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrossEvalProperty, ExpressionsAgreeAcrossRepresentations) {
  Rng rng(GetParam());
  auto schema = WideSchema();
  RowLayout layout(schema);

  // Build the same 200 rows in both representations.
  std::vector<RowVec> rows;
  ColumnarChunk chunk(schema);
  PartitionStore store;
  std::vector<PackedRowPtr> ptrs;
  for (int i = 0; i < 200; ++i) {
    RowVec row = RandomRow(rng);
    IDF_CHECK_OK(chunk.AppendRow(row));
    ptrs.push_back(
        store.AppendRow(layout, row, PackedRowPtr::Null()).value());
    rows.push_back(std::move(row));
  }

  for (int trial = 0; trial < 30; ++trial) {
    ExprPtr expr = RandomExpr(rng, 3);
    auto resolved = expr->Resolve(*schema);
    ASSERT_TRUE(resolved.ok()) << expr->ToString();
    for (size_t i = 0; i < rows.size(); ++i) {
      ChunkRowAccessor columnar(chunk, i);
      BinaryRowAccessor binary(layout, store.RowAt(ptrs[i]));
      const Value via_columnar = (*resolved)->Eval(columnar);
      const Value via_binary = (*resolved)->Eval(binary);
      ASSERT_EQ(ValueKey(via_columnar), ValueKey(via_binary))
          << "expr " << expr->ToString() << " row " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossEvalProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

class FilterPathProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FilterPathProperty, VanillaAndIndexedFiltersSelectSameRows) {
  SessionOptions opts;
  opts.cluster.num_workers = 2;
  opts.cluster.executors_per_worker = 2;
  opts.cluster.cores_per_executor = 2;
  opts.default_partitions = 4;
  Session session(opts);

  Rng rng(GetParam());
  std::vector<RowVec> rows;
  for (int i = 0; i < 300; ++i) rows.push_back(RandomRow(rng));
  // Indexing requires a NOT NULL key; overwrite column a with non-nulls.
  for (auto& row : rows) {
    row[0] = Value::Int64(rng.Range(-50, 50));
  }
  auto df = *session.CreateTable("t", WideSchema(), rows);
  auto indexed = *IndexedDataFrame::Create(df, "a");

  for (int trial = 0; trial < 10; ++trial) {
    ExprPtr expr = RandomExpr(rng, 2);
    auto vanilla = df.Filter(expr).Collect();
    auto fallback = indexed.AsDataFrame().Filter(expr).Collect();
    ASSERT_TRUE(vanilla.ok()) << expr->ToString();
    ASSERT_TRUE(fallback.ok()) << expr->ToString();
    EXPECT_EQ(fallback->SortedRowStrings(), vanilla->SortedRowStrings())
        << expr->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FilterPathProperty,
                         ::testing::Values(10, 20, 30, 40));

class BudgetedFilterPathProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BudgetedFilterPathProperty, QuarterBudgetKeepsSelectionsIdentical) {
  // Same cross-representation invariant under memory pressure: with the
  // governor engaged the cached columnar chunks are budgeted Evictables
  // (spilled column-by-column, faulted back on access) alongside the
  // indexed row batches. At ~25% of the working set every filter must still
  // select exactly the rows the unbudgeted run selects, through both the
  // vanilla columnar path and the indexed fallback path.
  ::unsetenv("IDF_MEMORY_BUDGET");
  mem::MemoryGovernor& gov = mem::MemoryGovernor::Global();
  const uint64_t base = gov.resident_bytes();
  mem::ScopedBudget engage(base + (256 << 20));  // roomy: chunks register

  SessionOptions opts;
  opts.cluster.num_workers = 2;
  opts.cluster.executors_per_worker = 2;
  opts.cluster.cores_per_executor = 2;
  opts.default_partitions = 4;
  Session session(opts);

  Rng rng(GetParam());
  std::vector<RowVec> rows;
  for (int i = 0; i < 300; ++i) rows.push_back(RandomRow(rng));
  for (auto& row : rows) {
    row[0] = Value::Int64(rng.Range(-50, 50));
  }
  auto df = *session.CreateTable("t", WideSchema(), rows);
  auto indexed = *IndexedDataFrame::Create(df, "a");
  const uint64_t working_set = gov.resident_bytes() - base;
  ASSERT_GT(working_set, 0u);

  std::vector<ExprPtr> exprs;
  std::vector<std::vector<std::string>> expected;
  for (int trial = 0; trial < 8; ++trial) {
    ExprPtr expr = RandomExpr(rng, 2);
    auto unbudgeted = df.Filter(expr).Collect();
    ASSERT_TRUE(unbudgeted.ok()) << expr->ToString();
    expected.push_back(unbudgeted->SortedRowStrings());
    exprs.push_back(std::move(expr));
  }

  mem::ScopedBudget tight(base + working_set / 4);
  for (size_t trial = 0; trial < exprs.size(); ++trial) {
    auto vanilla = df.Filter(exprs[trial]).Collect();
    auto fallback = indexed.AsDataFrame().Filter(exprs[trial]).Collect();
    ASSERT_TRUE(vanilla.ok()) << exprs[trial]->ToString();
    ASSERT_TRUE(fallback.ok()) << exprs[trial]->ToString();
    EXPECT_EQ(vanilla->SortedRowStrings(), expected[trial])
        << exprs[trial]->ToString();
    EXPECT_EQ(fallback->SortedRowStrings(), expected[trial])
        << exprs[trial]->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BudgetedFilterPathProperty,
                         ::testing::Values(10, 30));

}  // namespace
}  // namespace idf
