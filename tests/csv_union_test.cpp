// Tests for CSV import/export, UNION ALL, and Distinct.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "sql/csv.h"
#include "sql/session.h"

namespace idf {
namespace {

SessionOptions SmallOptions() {
  SessionOptions opts;
  opts.cluster.num_workers = 2;
  opts.cluster.executors_per_worker = 2;
  opts.cluster.cores_per_executor = 2;
  opts.default_partitions = 4;
  return opts;
}

SchemaPtr FlightSchema() {
  return std::make_shared<Schema>(Schema({
      {"flight_num", TypeId::kInt32, false},
      {"tail", TypeId::kString, true},
      {"delay", TypeId::kInt64, true},
      {"distance", TypeId::kFloat64, true},
      {"cancelled", TypeId::kBool, true},
  }));
}

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("idf_csv_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".csv"))
                .string();
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }

  void WriteFile(const std::string& contents) {
    std::ofstream out(path_, std::ios::trunc);
    out << contents;
  }

  std::string path_;
};

// ---- line splitting ---------------------------------------------------------

TEST(CsvSplitTest, PlainCells) {
  auto cells = SplitCsvLine("a,b,c", ',');
  ASSERT_TRUE(cells.ok());
  EXPECT_EQ(*cells, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvSplitTest, EmptyCells) {
  auto cells = SplitCsvLine(",x,", ',');
  ASSERT_TRUE(cells.ok());
  EXPECT_EQ(*cells, (std::vector<std::string>{"", "x", ""}));
}

TEST(CsvSplitTest, QuotedCellsWithCommasAndEscapes) {
  auto cells = SplitCsvLine("\"a,b\",\"he said \"\"hi\"\"\",plain", ',');
  ASSERT_TRUE(cells.ok());
  EXPECT_EQ(*cells, (std::vector<std::string>{"a,b", "he said \"hi\"",
                                              "plain"}));
}

TEST(CsvSplitTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(SplitCsvLine("\"oops,b", ',').ok());
}

// ---- cell parsing ------------------------------------------------------------

TEST(CsvCellTest, TypedParsing) {
  EXPECT_EQ(*ParseCsvCell("42", {"c", TypeId::kInt32, true}),
            Value::Int32(42));
  EXPECT_EQ(*ParseCsvCell("-7", {"c", TypeId::kInt64, true}),
            Value::Int64(-7));
  EXPECT_EQ(*ParseCsvCell("2.5", {"c", TypeId::kFloat64, true}),
            Value::Float64(2.5));
  EXPECT_EQ(*ParseCsvCell("true", {"c", TypeId::kBool, true}),
            Value::Bool(true));
  EXPECT_EQ(*ParseCsvCell("N123", {"c", TypeId::kString, true}),
            Value::String("N123"));
}

TEST(CsvCellTest, NullsAndErrors) {
  EXPECT_TRUE(ParseCsvCell("", {"c", TypeId::kInt32, true})->is_null());
  EXPECT_TRUE(ParseCsvCell("NULL", {"c", TypeId::kInt64, true})->is_null());
  EXPECT_FALSE(ParseCsvCell("", {"c", TypeId::kInt32, false}).ok());
  EXPECT_FALSE(ParseCsvCell("12x", {"c", TypeId::kInt32, true}).ok());
  EXPECT_FALSE(ParseCsvCell("maybe", {"c", TypeId::kBool, true}).ok());
}

// ---- import / export -----------------------------------------------------------

TEST_F(CsvTest, ImportWithHeader) {
  WriteFile(
      "flight_num,tail,delay,distance,cancelled\n"
      "100,N1,5,320.5,false\n"
      "200,\"N2,X\",,1000,true\n"
      "300,N3,NULL,0.5,0\n");
  Session session(SmallOptions());
  auto df = ReadCsv(session, "flights", path_, FlightSchema());
  ASSERT_TRUE(df.ok());
  auto rows = df->Collect().value();
  EXPECT_EQ(rows.rows.size(), 3u);
  auto sorted = rows.SortedRowStrings();
  EXPECT_NE(sorted[1].find("\"N2,X\""), std::string::npos);

  // The imported table is in the catalog and SQL-queryable.
  EXPECT_EQ(session.Sql("SELECT * FROM flights WHERE cancelled = TRUE")
                ->Count()
                .value(),
            1u);  // only the "true" row; "0" parses to false
}

TEST_F(CsvTest, ImportBadRowFailsOrSkips) {
  WriteFile(
      "flight_num,tail,delay,distance,cancelled\n"
      "100,N1,5,320.5,false\n"
      "not_a_number,N2,1,1,true\n");
  Session session(SmallOptions());
  EXPECT_FALSE(ReadCsv(session, "f1", path_, FlightSchema()).ok());

  CsvOptions lenient;
  lenient.skip_bad_rows = true;
  auto df = ReadCsv(session, "f2", path_, FlightSchema(), 0, lenient);
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df->Count().value(), 1u);
}

TEST_F(CsvTest, ArityMismatchFails) {
  WriteFile("flight_num,tail,delay,distance,cancelled\n1,2,3\n");
  Session session(SmallOptions());
  EXPECT_FALSE(ReadCsv(session, "f", path_, FlightSchema()).ok());
}

TEST_F(CsvTest, ExportImportRoundTrip) {
  Session session(SmallOptions());
  std::vector<RowVec> rows = {
      {Value::Int32(1), Value::String("a,b"), Value::Int64(10),
       Value::Float64(1.5), Value::Bool(true)},
      {Value::Int32(2), Value::Null(TypeId::kString),
       Value::Null(TypeId::kInt64), Value::Float64(0), Value::Bool(false)},
  };
  auto df = *session.CreateTable("t", FlightSchema(), rows);
  auto collected = df.Collect().value();
  IDF_CHECK_OK(WriteCsv(collected, path_));

  auto reloaded = ReadCsv(session, "t2", path_, FlightSchema());
  ASSERT_TRUE(reloaded.ok());
  auto back = reloaded->Collect().value();
  EXPECT_EQ(back.SortedRowStrings(), collected.SortedRowStrings());
}

TEST_F(CsvTest, MissingFileIsNotFound) {
  Session session(SmallOptions());
  EXPECT_EQ(ReadCsv(session, "f", path_ + ".nope", FlightSchema())
                .status()
                .code(),
            StatusCode::kNotFound);
}

// ---- UNION ALL / Distinct -------------------------------------------------------

SchemaPtr KvSchema() {
  return std::make_shared<Schema>(Schema({
      {"k", TypeId::kInt64, false},
      {"v", TypeId::kString, false},
  }));
}

TEST(UnionTest, UnionAllConcatenates) {
  Session session(SmallOptions());
  auto a = *session.CreateTable(
      "a", KvSchema(),
      {{Value::Int64(1), Value::String("x")},
       {Value::Int64(2), Value::String("y")}});
  auto b = *session.CreateTable(
      "b", KvSchema(),
      {{Value::Int64(2), Value::String("y")},
       {Value::Int64(3), Value::String("z")}});
  auto result = a.UnionAll(b).Collect();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 4u);  // duplicates kept
}

TEST(UnionTest, SchemaMismatchRejected) {
  Session session(SmallOptions());
  auto a = *session.CreateTable("a", KvSchema(),
                                {{Value::Int64(1), Value::String("x")}});
  auto other_schema = std::make_shared<Schema>(Schema({
      {"k", TypeId::kInt64, false},
      {"w", TypeId::kInt64, false},
  }));
  auto b = *session.CreateTable("b", other_schema,
                                {{Value::Int64(1), Value::Int64(2)}});
  EXPECT_FALSE(a.UnionAll(b).Collect().ok());
}

TEST(UnionTest, SqlUnionAll) {
  Session session(SmallOptions());
  (void)session.CreateTable("a", KvSchema(),
                            {{Value::Int64(1), Value::String("x")}});
  (void)session.CreateTable("b", KvSchema(),
                            {{Value::Int64(2), Value::String("y")}});
  auto df = session.Sql("SELECT * FROM a UNION ALL SELECT * FROM b");
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df->Count().value(), 2u);
}

TEST(UnionTest, DistinctRemovesDuplicates) {
  Session session(SmallOptions());
  auto a = *session.CreateTable(
      "a", KvSchema(),
      {{Value::Int64(1), Value::String("x")},
       {Value::Int64(1), Value::String("x")},
       {Value::Int64(1), Value::String("other")},
       {Value::Int64(2), Value::String("y")}});
  auto distinct = a.Distinct();
  ASSERT_TRUE(distinct.ok());
  auto result = distinct->Collect();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 3u);
  EXPECT_EQ(result->schema->num_fields(), 2u);  // count column projected away
}

TEST(UnionTest, UnionThenDistinctIsSetUnion) {
  Session session(SmallOptions());
  auto a = *session.CreateTable(
      "a", KvSchema(),
      {{Value::Int64(1), Value::String("x")},
       {Value::Int64(2), Value::String("y")}});
  auto b = *session.CreateTable(
      "b", KvSchema(),
      {{Value::Int64(2), Value::String("y")},
       {Value::Int64(3), Value::String("z")}});
  auto result = a.UnionAll(b).Distinct()->Collect();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 3u);
}

}  // namespace
}  // namespace idf
