// Tests for the Value / Schema type system.
#include <gtest/gtest.h>

#include "types/schema.h"
#include "types/value.h"

namespace idf {
namespace {

TEST(ValueTest, NullConstruction) {
  Value v;
  EXPECT_TRUE(v.is_null());
  Value typed_null = Value::Null(TypeId::kInt64);
  EXPECT_TRUE(typed_null.is_null());
  EXPECT_EQ(typed_null.type(), TypeId::kInt64);
}

TEST(ValueTest, TypedAccessors) {
  EXPECT_EQ(Value::Bool(true).bool_value(), true);
  EXPECT_EQ(Value::Int32(-5).int32_value(), -5);
  EXPECT_EQ(Value::Int64(1LL << 40).int64_value(), 1LL << 40);
  EXPECT_DOUBLE_EQ(Value::Float64(2.5).float64_value(), 2.5);
  EXPECT_EQ(Value::String("hi").string_value(), "hi");
}

TEST(ValueTest, NumericWidening) {
  EXPECT_EQ(Value::Int32(7).AsInt64(), 7);
  EXPECT_EQ(Value::Bool(true).AsInt64(), 1);
  EXPECT_DOUBLE_EQ(Value::Int64(3).AsFloat64(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Float64(1.5).AsFloat64(), 1.5);
}

TEST(ValueTest, EqualitySameType) {
  EXPECT_EQ(Value::Int64(42), Value::Int64(42));
  EXPECT_NE(Value::Int64(42), Value::Int64(43));
  EXPECT_EQ(Value::String("a"), Value::String("a"));
  EXPECT_NE(Value::String("a"), Value::String("b"));
}

TEST(ValueTest, EqualityCrossNumeric) {
  EXPECT_EQ(Value::Int32(5), Value::Int64(5));
  EXPECT_EQ(Value::Int64(5), Value::Float64(5.0));
  EXPECT_NE(Value::Int64(5), Value::Float64(5.5));
}

TEST(ValueTest, NullNeverEqual) {
  EXPECT_NE(Value::Null(TypeId::kInt64), Value::Null(TypeId::kInt64));
  EXPECT_NE(Value::Null(TypeId::kInt64), Value::Int64(0));
}

TEST(ValueTest, CompareTotalOrder) {
  EXPECT_LT(Value::Int64(1).Compare(Value::Int64(2)), 0);
  EXPECT_GT(Value::Int64(2).Compare(Value::Int64(1)), 0);
  EXPECT_EQ(Value::Int64(1).Compare(Value::Int64(1)), 0);
  EXPECT_LT(Value::String("a").Compare(Value::String("b")), 0);
  // Nulls sort first.
  EXPECT_LT(Value::Null(TypeId::kInt64).Compare(Value::Int64(-100)), 0);
  EXPECT_EQ(Value::Null(TypeId::kInt64).Compare(Value::Null(TypeId::kInt64)),
            0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int64(9).Hash(), Value::Int64(9).Hash());
  EXPECT_EQ(Value::String("xyz").Hash(), Value::String("xyz").Hash());
  EXPECT_NE(Value::Int64(9).Hash(), Value::Int64(10).Hash());
}

TEST(ValueTest, HashMatchesRawHashers) {
  // The storage layer hashes raw column bytes with these functions; Value
  // keys must probe identically (index lookup contract).
  EXPECT_EQ(Value::Int64(123).Hash(), HashInt64(123));
  EXPECT_EQ(Value::Int32(123).Hash(), HashInt64(123));
  EXPECT_EQ(Value::String("tail42").Hash(), HashString("tail42"));
  EXPECT_EQ(Value::Float64(2.5).Hash(), HashDouble(2.5));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int64(7).ToString(), "7");
  EXPECT_EQ(Value::String("x").ToString(), "\"x\"");
  EXPECT_EQ(Value::Null(TypeId::kInt32).ToString(), "NULL");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
}

TEST(TypeTest, FixedSlotWidths) {
  EXPECT_EQ(FixedSlotWidth(TypeId::kBool), 1u);
  EXPECT_EQ(FixedSlotWidth(TypeId::kInt32), 4u);
  EXPECT_EQ(FixedSlotWidth(TypeId::kInt64), 8u);
  EXPECT_EQ(FixedSlotWidth(TypeId::kFloat64), 8u);
  EXPECT_EQ(FixedSlotWidth(TypeId::kString), 8u);
  EXPECT_TRUE(IsFixedWidth(TypeId::kInt64));
  EXPECT_FALSE(IsFixedWidth(TypeId::kString));
}

// ---- Schema ---------------------------------------------------------------

Schema TestSchema() {
  return Schema({{"id", TypeId::kInt64, false},
                 {"name", TypeId::kString, true},
                 {"score", TypeId::kFloat64, true}});
}

TEST(SchemaTest, FieldLookup) {
  Schema s = TestSchema();
  EXPECT_EQ(s.num_fields(), 3u);
  auto idx = s.FieldIndex("name");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  EXPECT_FALSE(s.FieldIndex("missing").ok());
  EXPECT_TRUE(s.HasField("score"));
  EXPECT_FALSE(s.HasField("Score"));  // case sensitive
}

TEST(SchemaTest, Project) {
  Schema s = TestSchema();
  auto p = s.Project({"score", "id"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_fields(), 2u);
  EXPECT_EQ(p->field(0).name, "score");
  EXPECT_EQ(p->field(1).name, "id");
  EXPECT_FALSE(s.Project({"nope"}).ok());
}

TEST(SchemaTest, ConcatForJoinRenamesCollisions) {
  Schema left({{"id", TypeId::kInt64, false}, {"v", TypeId::kInt64, true}});
  Schema right({{"id", TypeId::kInt64, false}, {"w", TypeId::kInt64, true}});
  Schema joined = left.ConcatForJoin(right);
  EXPECT_EQ(joined.num_fields(), 4u);
  EXPECT_EQ(joined.field(2).name, "id_r");
  EXPECT_EQ(joined.field(3).name, "w");
}

TEST(SchemaTest, ToStringMentionsTypes) {
  std::string str = TestSchema().ToString();
  EXPECT_NE(str.find("id: int64 NOT NULL"), std::string::npos);
  EXPECT_NE(str.find("name: string"), std::string::npos);
}

TEST(SchemaTest, ValidateRowAcceptsMatching) {
  Schema s = TestSchema();
  RowVec row{Value::Int64(1), Value::String("a"), Value::Float64(0.5)};
  EXPECT_TRUE(ValidateRow(s, row).ok());
}

TEST(SchemaTest, ValidateRowAcceptsNullsInNullable) {
  Schema s = TestSchema();
  RowVec row{Value::Int64(1), Value::Null(TypeId::kString),
             Value::Null(TypeId::kFloat64)};
  EXPECT_TRUE(ValidateRow(s, row).ok());
}

TEST(SchemaTest, ValidateRowRejectsNullInNotNull) {
  Schema s = TestSchema();
  RowVec row{Value::Null(TypeId::kInt64), Value::String("a"),
             Value::Float64(0.5)};
  EXPECT_EQ(ValidateRow(s, row).code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, ValidateRowRejectsWrongArity) {
  Schema s = TestSchema();
  RowVec row{Value::Int64(1)};
  EXPECT_FALSE(ValidateRow(s, row).ok());
}

TEST(SchemaTest, ValidateRowRejectsWrongType) {
  Schema s = TestSchema();
  RowVec row{Value::Int64(1), Value::Int64(2), Value::Float64(0.5)};
  EXPECT_FALSE(ValidateRow(s, row).ok());
}

}  // namespace
}  // namespace idf
