// Tests for the Indexed DataFrame core: IndexedPartition internals, index
// creation, point lookups, appends with MVCC (divergence), the index-aware
// planner strategies, indexed joins cross-checked against vanilla joins,
// fallback scans, and fault tolerance with append replay.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "core/indexed_dataframe.h"
#include "core/indexed_ops.h"
#include "core/indexed_partition.h"
#include "core/indexed_rules.h"

namespace idf {
namespace {

SchemaPtr EdgeSchema() {
  return std::make_shared<Schema>(Schema({
      {"src", TypeId::kInt64, false},
      {"dst", TypeId::kInt64, false},
      {"weight", TypeId::kFloat64, true},
  }));
}

RowVec Edge(int64_t src, int64_t dst, double w = 1.0) {
  return {Value::Int64(src), Value::Int64(dst), Value::Float64(w)};
}

SessionOptions SmallOptions() {
  SessionOptions opts;
  opts.cluster.num_workers = 2;
  opts.cluster.executors_per_worker = 2;
  opts.cluster.cores_per_executor = 2;
  opts.default_partitions = 4;
  return opts;
}

// ---- IndexedPartition -----------------------------------------------------

TEST(IndexedPartitionTest, InsertAndLookup) {
  IndexedPartition part(EdgeSchema(), 0, 64 << 10);
  IDF_CHECK_OK(part.InsertRow(Edge(1, 10)));
  IDF_CHECK_OK(part.InsertRow(Edge(2, 20)));
  auto rows = part.LookupRows(Value::Int64(1));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1], Value::Int64(10));
  EXPECT_TRUE(part.LookupRows(Value::Int64(3)).empty());
}

TEST(IndexedPartitionTest, NonUniqueKeysChainNewestFirst) {
  // §III-C "Non-unique Keys": the cTrie points at the latest row; backward
  // pointers chain earlier rows with the same key.
  IndexedPartition part(EdgeSchema(), 0, 64 << 10);
  for (int64_t k = 0; k < 5; ++k) IDF_CHECK_OK(part.InsertRow(Edge(7, k)));
  IDF_CHECK_OK(part.InsertRow(Edge(8, 100)));

  auto rows = part.LookupRows(Value::Int64(7));
  ASSERT_EQ(rows.size(), 5u);
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(rows[static_cast<size_t>(i)][1], Value::Int64(4 - i));
  }
  EXPECT_EQ(part.LookupRows(Value::Int64(8)).size(), 1u);
}

TEST(IndexedPartitionTest, NullKeysStoredButNotIndexed) {
  IndexedPartition part(EdgeSchema(), 2, 64 << 10);  // weight is nullable
  IDF_CHECK_OK(part.InsertRow({Value::Int64(1), Value::Int64(2),
                               Value::Null(TypeId::kFloat64)}));
  IDF_CHECK_OK(part.InsertRow(Edge(3, 4, 0.5)));
  EXPECT_EQ(part.num_rows(), 2u);
  size_t scanned = 0;
  part.ForEachRow([&](const uint8_t*) { ++scanned; });
  EXPECT_EQ(scanned, 2u);
  EXPECT_EQ(part.LookupRows(Value::Float64(0.5)).size(), 1u);
}

TEST(IndexedPartitionTest, StringKeysVerifyAgainstHashCollisions) {
  auto schema = std::make_shared<Schema>(Schema({
      {"tail", TypeId::kString, false},
      {"n", TypeId::kInt64, false},
  }));
  IndexedPartition part(schema, 0, 64 << 10);
  IDF_CHECK_OK(part.InsertRow({Value::String("N100"), Value::Int64(1)}));
  IDF_CHECK_OK(part.InsertRow({Value::String("N200"), Value::Int64(2)}));
  IDF_CHECK_OK(part.InsertRow({Value::String("N100"), Value::Int64(3)}));
  auto rows = part.LookupRows(Value::String("N100"));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_TRUE(part.LookupRows(Value::String("N300")).empty());
}

TEST(IndexedPartitionTest, SnapshotIsolation) {
  IndexedPartition part(EdgeSchema(), 0, 64 << 10);
  IDF_CHECK_OK(part.InsertRow(Edge(1, 1)));
  auto snap = part.Snapshot();
  IDF_CHECK_OK(snap->InsertRow(Edge(1, 2)));
  IDF_CHECK_OK(snap->InsertRow(Edge(9, 9)));

  EXPECT_EQ(part.LookupRows(Value::Int64(1)).size(), 1u);
  EXPECT_EQ(snap->LookupRows(Value::Int64(1)).size(), 2u);
  EXPECT_TRUE(part.LookupRows(Value::Int64(9)).empty());
  EXPECT_EQ(snap->LookupRows(Value::Int64(9)).size(), 1u);
  EXPECT_EQ(part.num_rows(), 1u);
  EXPECT_EQ(snap->num_rows(), 3u);
}

TEST(IndexedPartitionTest, ChainSpansSnapshotBoundary) {
  // Rows appended post-snapshot chain onto pre-snapshot rows of the same key.
  IndexedPartition part(EdgeSchema(), 0, 64 << 10);
  IDF_CHECK_OK(part.InsertRow(Edge(5, 1)));
  IDF_CHECK_OK(part.InsertRow(Edge(5, 2)));
  auto snap = part.Snapshot();
  IDF_CHECK_OK(snap->InsertRow(Edge(5, 3)));
  auto rows = snap->LookupRows(Value::Int64(5));
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][1], Value::Int64(3));
  EXPECT_EQ(rows[1][1], Value::Int64(2));
  EXPECT_EQ(rows[2][1], Value::Int64(1));
}

TEST(IndexedPartitionTest, IndexBytesSmallRelativeToData) {
  IndexedPartition part(EdgeSchema(), 0);
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    IDF_CHECK_OK(part.InsertRow(
        Edge(static_cast<int64_t>(rng.Below(5000)), i, rng.NextDouble())));
  }
  EXPECT_GT(part.IndexBytes(), 0u);
  // The trie indexes ~5000 distinct keys over 20k rows of ~48 bytes; the
  // absolute overhead must stay a modest fraction of the data (Fig. 11).
  EXPECT_LT(part.IndexBytes(), part.data_bytes());
}

TEST(IndexedPartitionTest, ScanSeesAllRowsInInsertionOrder) {
  IndexedPartition part(EdgeSchema(), 0, 2048);  // small batches: many rolls
  for (int64_t i = 0; i < 500; ++i) IDF_CHECK_OK(part.InsertRow(Edge(i, i)));
  std::vector<int64_t> seen;
  const RowLayout& layout = part.layout();
  part.ForEachRow(
      [&](const uint8_t* row) { seen.push_back(layout.GetInt64(row, 0)); });
  ASSERT_EQ(seen.size(), 500u);
  for (int64_t i = 0; i < 500; ++i) EXPECT_EQ(seen[static_cast<size_t>(i)], i);
}

// ---- IndexedDataFrame: create/lookup ------------------------------------------

std::vector<RowVec> PowerLawEdges(int n, uint64_t seed, int64_t key_domain) {
  Rng rng(seed);
  ZipfSampler zipf(static_cast<uint64_t>(key_domain), 1.1);
  std::vector<RowVec> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    rows.push_back(Edge(static_cast<int64_t>(zipf.Sample(rng)), i,
                        rng.NextDouble()));
  }
  return rows;
}

TEST(IndexedDataFrameTest, CreateAndGetRows) {
  Session session(SmallOptions());
  auto rows = PowerLawEdges(5000, 42, 500);
  auto df = *session.CreateTable("edges", EdgeSchema(), rows);
  auto indexed = IndexedDataFrame::Create(df, "src");
  ASSERT_TRUE(indexed.ok());
  EXPECT_EQ(indexed->num_rows(), 5000u);
  EXPECT_EQ(indexed->version(), 0u);

  // Cross-check every key in a sample against a brute-force scan.
  std::map<int64_t, int> expected;
  for (const RowVec& row : rows) ++expected[row[0].int64_value()];
  for (int64_t key : {0L, 1L, 7L, 100L, 499L}) {
    auto result = indexed->GetRows(Value::Int64(key));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->rows.size(),
              static_cast<size_t>(expected.count(key) ? expected[key] : 0))
        << "key " << key;
    for (const RowVec& row : result->rows) {
      EXPECT_EQ(row[0], Value::Int64(key));
    }
  }
  // A key outside the domain misses.
  EXPECT_TRUE(indexed->GetRows(Value::Int64(10'000'000)).value().rows.empty());
}

TEST(IndexedDataFrameTest, GetRowsOnStringColumn) {
  Session session(SmallOptions());
  auto schema = std::make_shared<Schema>(Schema({
      {"tail", TypeId::kString, false},
      {"delay", TypeId::kInt32, false},
  }));
  std::vector<RowVec> rows;
  for (int i = 0; i < 300; ++i) {
    rows.push_back({Value::String("N" + std::to_string(i % 30)),
                    Value::Int32(i)});
  }
  auto df = *session.CreateTable("flights", schema, rows);
  auto indexed = IndexedDataFrame::Create(df, "tail");
  ASSERT_TRUE(indexed.ok());
  auto result = indexed->GetRows(Value::String("N7"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 10u);
  for (const RowVec& row : result->rows) {
    EXPECT_EQ(row[0], Value::String("N7"));
  }
}

TEST(IndexedDataFrameTest, CreateOnMissingColumnFails) {
  Session session(SmallOptions());
  auto df = *session.CreateTable("edges", EdgeSchema(), PowerLawEdges(10, 1, 5));
  EXPECT_FALSE(IndexedDataFrame::Create(df, "nope").ok());
}

TEST(IndexedDataFrameTest, CacheIsIdempotentNoOp) {
  Session session(SmallOptions());
  auto df = *session.CreateTable("edges", EdgeSchema(), PowerLawEdges(100, 1, 5));
  auto indexed = *IndexedDataFrame::Create(df, "src");
  EXPECT_EQ(&indexed.Cache(), &indexed);
  EXPECT_EQ(indexed.Cache().num_rows(), 100u);
}

// ---- appends & MVCC --------------------------------------------------------------

TEST(IndexedAppendTest, AppendCreatesNewVersion) {
  Session session(SmallOptions());
  auto df = *session.CreateTable("edges", EdgeSchema(),
                                 PowerLawEdges(1000, 7, 100));
  auto v0 = *IndexedDataFrame::Create(df, "src");

  auto extra = *session.CreateTable(
      "extra", EdgeSchema(), {Edge(42, 9001), Edge(42, 9002), Edge(777, 1)});
  auto v1_result = v0.AppendRows(extra);
  ASSERT_TRUE(v1_result.ok());
  const IndexedDataFrame& v1 = *v1_result;

  EXPECT_EQ(v1.version(), 1u);
  EXPECT_EQ(v1.num_rows(), 1003u);
  EXPECT_EQ(v0.num_rows(), 1000u);

  const size_t base42 = v0.GetRows(Value::Int64(42)).value().rows.size();
  EXPECT_EQ(v1.GetRows(Value::Int64(42)).value().rows.size(), base42 + 2);
  EXPECT_EQ(v1.GetRows(Value::Int64(777)).value().rows.size(),
            v0.GetRows(Value::Int64(777)).value().rows.size() + 1);
}

TEST(IndexedAppendTest, ParentUnchangedAfterAppend) {
  Session session(SmallOptions());
  auto df = *session.CreateTable("edges", EdgeSchema(), PowerLawEdges(100, 9, 10));
  auto v0 = *IndexedDataFrame::Create(df, "src");
  const size_t before = v0.GetRows(Value::Int64(0)).value().rows.size();
  auto extra = *session.CreateTable("extra", EdgeSchema(), {Edge(0, 1234)});
  auto v1 = *v0.AppendRows(extra);
  EXPECT_EQ(v0.GetRows(Value::Int64(0)).value().rows.size(), before);
  EXPECT_EQ(v1.GetRows(Value::Int64(0)).value().rows.size(), before + 1);
}

TEST(IndexedAppendTest, DivergentAppendsCoexist) {
  // Paper Listing 2: two children of the same parent, both queryable,
  // materialization order irrelevant.
  Session session(SmallOptions());
  auto df = *session.CreateTable("edges", EdgeSchema(), PowerLawEdges(500, 3, 50));
  auto parent = *IndexedDataFrame::Create(df, "src");

  auto append_a = *session.CreateTable("a", EdgeSchema(), {Edge(1000, 1)});
  auto append_b = *session.CreateTable("b", EdgeSchema(), {Edge(2000, 2)});

  auto child_a = *parent.AppendRows(append_a);
  auto child_b = *parent.AppendRows(append_b);
  EXPECT_NE(child_a.version(), child_b.version());

  // Query B first, then A (the "reverse order" materialization).
  EXPECT_EQ(child_b.GetRows(Value::Int64(2000)).value().rows.size(), 1u);
  EXPECT_EQ(child_a.GetRows(Value::Int64(1000)).value().rows.size(), 1u);
  EXPECT_TRUE(child_a.GetRows(Value::Int64(2000)).value().rows.empty());
  EXPECT_TRUE(child_b.GetRows(Value::Int64(1000)).value().rows.empty());
  EXPECT_TRUE(parent.GetRows(Value::Int64(1000)).value().rows.empty());
  EXPECT_TRUE(parent.GetRows(Value::Int64(2000)).value().rows.empty());
}

TEST(IndexedAppendTest, ChainOfAppends) {
  Session session(SmallOptions());
  auto df = *session.CreateTable("edges", EdgeSchema(), {Edge(5, 0)});
  auto current = *IndexedDataFrame::Create(df, "src");
  for (int64_t i = 1; i <= 5; ++i) {
    auto extra = *session.CreateTable("x" + std::to_string(i), EdgeSchema(),
                                      {Edge(5, i)});
    current = *current.AppendRows(extra);
    EXPECT_EQ(current.GetRows(Value::Int64(5)).value().rows.size(),
              static_cast<size_t>(i + 1));
  }
  EXPECT_EQ(current.num_rows(), 6u);
}

TEST(IndexedAppendTest, AppendSchemaMismatchRejected) {
  Session session(SmallOptions());
  auto df = *session.CreateTable("edges", EdgeSchema(), {Edge(1, 1)});
  auto indexed = *IndexedDataFrame::Create(df, "src");
  auto wrong_schema = std::make_shared<Schema>(Schema({
      {"only", TypeId::kInt64, false},
  }));
  auto wrong = *session.CreateTable("wrong", wrong_schema, {{Value::Int64(1)}});
  EXPECT_FALSE(indexed.AppendRows(wrong).ok());
}

// ---- planner integration --------------------------------------------------------

TEST(IndexedPlanTest, JoinOnIndexedColumnUsesIndexedJoinExec) {
  Session session(SmallOptions());
  auto edges = *session.CreateTable("edges", EdgeSchema(),
                                    PowerLawEdges(1000, 11, 100));
  auto indexed = *IndexedDataFrame::Create(edges, "src");
  auto probe = *session.CreateTable("probe", EdgeSchema(),
                                    PowerLawEdges(50, 12, 100));

  auto plan = indexed.AsDataFrame().Join(probe, "src", "src");
  auto physical = plan.ExplainPhysical();
  ASSERT_TRUE(physical.ok());
  EXPECT_NE(physical->find("IndexedJoinExec"), std::string::npos) << *physical;

  // Indexed side on the right works too.
  auto plan2 = probe.Join(indexed.AsDataFrame(), "src", "src");
  auto physical2 = plan2.ExplainPhysical();
  ASSERT_TRUE(physical2.ok());
  EXPECT_NE(physical2->find("IndexedJoinExec"), std::string::npos);
}

TEST(IndexedPlanTest, JoinOnNonIndexedColumnFallsBack) {
  Session session(SmallOptions());
  auto edges = *session.CreateTable("edges", EdgeSchema(),
                                    PowerLawEdges(100, 13, 10));
  auto indexed = *IndexedDataFrame::Create(edges, "src");
  auto probe = *session.CreateTable("probe", EdgeSchema(),
                                    PowerLawEdges(50, 14, 10));
  // Join keyed on dst, which is NOT indexed: vanilla JoinExec must run.
  auto plan = indexed.AsDataFrame().Join(probe, "dst", "dst");
  auto physical = plan.ExplainPhysical();
  ASSERT_TRUE(physical.ok());
  EXPECT_EQ(physical->find("IndexedJoinExec"), std::string::npos);
  EXPECT_NE(physical->find("JoinExec"), std::string::npos);
}

TEST(IndexedPlanTest, EqualityFilterUsesIndexLookupExec) {
  Session session(SmallOptions());
  auto edges = *session.CreateTable("edges", EdgeSchema(),
                                    PowerLawEdges(100, 15, 10));
  auto indexed = *IndexedDataFrame::Create(edges, "src");
  auto q = indexed.AsDataFrame().Filter(Eq(Col("src"), Lit(int64_t{3})));
  auto physical = q.ExplainPhysical();
  ASSERT_TRUE(physical.ok());
  EXPECT_NE(physical->find("IndexLookupExec"), std::string::npos);
}

TEST(IndexedPlanTest, CompoundFilterSplitsResidual) {
  Session session(SmallOptions());
  auto edges = *session.CreateTable("edges", EdgeSchema(),
                                    PowerLawEdges(100, 16, 10));
  auto indexed = *IndexedDataFrame::Create(edges, "src");
  auto q = indexed.AsDataFrame().Filter(
      And(Gt(Col("dst"), Lit(int64_t{10})), Eq(Col("src"), Lit(int64_t{3}))));
  auto physical = q.ExplainPhysical();
  ASSERT_TRUE(physical.ok());
  EXPECT_NE(physical->find("IndexLookupExec"), std::string::npos);
  EXPECT_NE(physical->find("residual"), std::string::npos);
}

TEST(IndexedPlanTest, NonEqualityFilterFallsBack) {
  Session session(SmallOptions());
  auto edges = *session.CreateTable("edges", EdgeSchema(),
                                    PowerLawEdges(100, 17, 10));
  auto indexed = *IndexedDataFrame::Create(edges, "src");
  auto q = indexed.AsDataFrame().Filter(Gt(Col("src"), Lit(int64_t{3})));
  auto physical = q.ExplainPhysical();
  ASSERT_TRUE(physical.ok());
  EXPECT_EQ(physical->find("IndexLookupExec"), std::string::npos);
  EXPECT_NE(physical->find("FilterExec"), std::string::npos);
}

// ---- indexed execution correctness ------------------------------------------------

TEST(IndexedExecTest, IndexedJoinMatchesVanillaJoin) {
  Session session(SmallOptions());
  auto edges_rows = PowerLawEdges(3000, 21, 200);
  auto probe_rows = PowerLawEdges(150, 22, 200);
  auto edges = *session.CreateTable("edges", EdgeSchema(), edges_rows);
  auto probe = *session.CreateTable("probe", EdgeSchema(), probe_rows);

  auto vanilla = edges.Join(probe, "src", "src").Collect();
  ASSERT_TRUE(vanilla.ok());

  auto indexed = *IndexedDataFrame::Create(edges, "src");
  auto fast = indexed.Join(probe, "src").Collect();
  ASSERT_TRUE(fast.ok());

  EXPECT_EQ(fast->rows.size(), vanilla->rows.size());
  EXPECT_EQ(fast->SortedRowStrings(), vanilla->SortedRowStrings());
}

TEST(IndexedExecTest, IndexedJoinRightSideMatchesVanilla) {
  Session session(SmallOptions());
  auto edges = *session.CreateTable("edges", EdgeSchema(),
                                    PowerLawEdges(1000, 31, 80));
  auto probe = *session.CreateTable("probe", EdgeSchema(),
                                    PowerLawEdges(100, 32, 80));
  auto vanilla = probe.Join(edges, "src", "src").Collect();
  auto indexed = *IndexedDataFrame::Create(edges, "src");
  auto fast = probe.Join(indexed.AsDataFrame(), "src", "src").Collect();
  ASSERT_TRUE(vanilla.ok());
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast->SortedRowStrings(), vanilla->SortedRowStrings());
}

TEST(IndexedExecTest, LargeProbeUsesShufflePathAndMatches) {
  SessionOptions opts = SmallOptions();
  opts.broadcast_threshold_bytes = 64;  // force the shuffle path
  Session session(opts);
  auto edges = *session.CreateTable("edges", EdgeSchema(),
                                    PowerLawEdges(2000, 41, 100));
  auto probe = *session.CreateTable("probe", EdgeSchema(),
                                    PowerLawEdges(500, 42, 100));
  auto vanilla = edges.Join(probe, "src", "src").Collect();
  auto indexed = *IndexedDataFrame::Create(edges, "src");
  QueryMetrics metrics;
  auto handle = indexed.Join(probe, "src").Execute(&metrics);
  ASSERT_TRUE(handle.ok());
  EXPECT_GT(metrics.totals.shuffle_bytes_written, 0u);  // probe was shuffled
  auto fast = session.Collect(*handle);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast->SortedRowStrings(), vanilla->SortedRowStrings());
}

TEST(IndexedExecTest, IndexedJoinAfterAppendSeesNewRows) {
  Session session(SmallOptions());
  auto edges = *session.CreateTable("edges", EdgeSchema(), {Edge(1, 1)});
  auto probe = *session.CreateTable("probe", EdgeSchema(),
                                    {Edge(1, 0), Edge(2, 0)});
  auto v0 = *IndexedDataFrame::Create(edges, "src");
  EXPECT_EQ(v0.Join(probe, "src").Collect()->rows.size(), 1u);

  auto extra = *session.CreateTable("extra", EdgeSchema(),
                                    {Edge(2, 5), Edge(1, 6)});
  auto v1 = *v0.AppendRows(extra);
  EXPECT_EQ(v1.Join(probe, "src").Collect()->rows.size(), 3u);
  // The old version still joins against the old contents.
  EXPECT_EQ(v0.Join(probe, "src").Collect()->rows.size(), 1u);
}

TEST(IndexedExecTest, LookupViaSqlFilterMatchesGetRows) {
  Session session(SmallOptions());
  auto edges_rows = PowerLawEdges(2000, 51, 100);
  auto edges = *session.CreateTable("edges", EdgeSchema(), edges_rows);
  auto indexed = *IndexedDataFrame::Create(edges, "src");

  auto via_filter = indexed.AsDataFrame()
                        .Filter(Eq(Col("src"), Lit(int64_t{7})))
                        .Collect();
  auto via_getrows = indexed.GetRows(Value::Int64(7));
  ASSERT_TRUE(via_filter.ok());
  ASSERT_TRUE(via_getrows.ok());
  EXPECT_EQ(via_filter->SortedRowStrings(), via_getrows->SortedRowStrings());
}

TEST(IndexedExecTest, FallbackScanMatchesSource) {
  Session session(SmallOptions());
  auto edges_rows = PowerLawEdges(1000, 61, 50);
  auto edges = *session.CreateTable("edges", EdgeSchema(), edges_rows);
  auto indexed = *IndexedDataFrame::Create(edges, "src");

  // Aggregate over the indexed dataframe: no index help, full fallback scan.
  auto agg = indexed.AsDataFrame()
                 .Agg({}, {AggSpec::Count("n"), AggSpec::Sum("dst", "s")})
                 .Collect();
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->rows[0][0], Value::Int64(1000));
  int64_t expected = 0;
  for (const RowVec& row : edges_rows) expected += row[1].int64_value();
  EXPECT_EQ(agg->rows[0][1], Value::Int64(expected));
}

TEST(IndexedExecTest, ProjectionOnIndexedDataWorks) {
  Session session(SmallOptions());
  auto edges = *session.CreateTable("edges", EdgeSchema(),
                                    PowerLawEdges(200, 71, 20));
  auto indexed = *IndexedDataFrame::Create(edges, "src");
  auto result = indexed.AsDataFrame().Select({"dst"}).Collect();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 200u);
  EXPECT_EQ(result->schema->num_fields(), 1u);
}

// ---- memory report ---------------------------------------------------------------

TEST(IndexedMemoryTest, ReportCoversAllPartitionsWithModestOverhead) {
  Session session(SmallOptions());
  auto edges = *session.CreateTable("edges", EdgeSchema(),
                                    PowerLawEdges(20000, 81, 2000));
  auto indexed = *IndexedDataFrame::Create(edges, "src");
  auto report = indexed.MemoryReport();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->size(), indexed.num_partitions());
  uint64_t rows = 0;
  for (const PartitionMemory& pm : *report) {
    rows += pm.num_rows;
    if (pm.num_rows > 0) {
      EXPECT_GT(pm.index_bytes, 0u);
      EXPECT_GT(pm.data_bytes, 0u);
    }
  }
  EXPECT_EQ(rows, 20000u);
}

// ---- fault tolerance ---------------------------------------------------------------

TEST(IndexedFaultTest, LookupSurvivesExecutorFailure) {
  Session session(SmallOptions());
  auto edges_rows = PowerLawEdges(2000, 91, 100);
  auto edges = *session.CreateTable("edges", EdgeSchema(), edges_rows);
  auto indexed = *IndexedDataFrame::Create(edges, "src");

  const size_t expected = indexed.GetRows(Value::Int64(3)).value().rows.size();

  // Kill an executor: its indexed partitions (and possibly base blocks) are
  // lost; the next lookup must transparently re-index from lineage.
  session.cluster().KillExecutor(2);
  QueryMetrics metrics;
  auto after = indexed.GetRows(Value::Int64(3), &metrics);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->rows.size(), expected);
}

TEST(IndexedFaultTest, RecoveryReplaysAppends) {
  Session session(SmallOptions());
  auto edges = *session.CreateTable("edges", EdgeSchema(),
                                    PowerLawEdges(500, 92, 50));
  auto v0 = *IndexedDataFrame::Create(edges, "src");
  auto extra = *session.CreateTable(
      "extra", EdgeSchema(), {Edge(7, 9001), Edge(7, 9002)});
  auto v1 = *v0.AppendRows(extra);
  const size_t expected = v1.GetRows(Value::Int64(7)).value().rows.size();

  session.cluster().KillExecutor(1);
  session.cluster().KillExecutor(2);
  auto after = v1.GetRows(Value::Int64(7));
  ASSERT_TRUE(after.ok());
  // The re-built partition must include the replayed appends (§III-D).
  EXPECT_EQ(after->rows.size(), expected);
  bool found9001 = false;
  for (const RowVec& row : after->rows) {
    if (row[1] == Value::Int64(9001)) found9001 = true;
  }
  EXPECT_TRUE(found9001);
}

TEST(IndexedFaultTest, JoinSurvivesFailureWithConsistentResult) {
  Session session(SmallOptions());
  auto edges = *session.CreateTable("edges", EdgeSchema(),
                                    PowerLawEdges(1500, 93, 120));
  auto probe = *session.CreateTable("probe", EdgeSchema(),
                                    PowerLawEdges(80, 94, 120));
  auto indexed = *IndexedDataFrame::Create(edges, "src");
  auto before = indexed.Join(probe, "src").Collect();
  ASSERT_TRUE(before.ok());

  session.cluster().KillExecutor(3);
  auto after = indexed.Join(probe, "src").Collect();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->SortedRowStrings(), before->SortedRowStrings());
}

// ---- staleness (§III-D) --------------------------------------------------------

TEST(IndexedConsistencyTest, OldVersionBlocksNeverServeNewVersionQueries) {
  Session session(SmallOptions());
  auto edges = *session.CreateTable("edges", EdgeSchema(), {Edge(1, 1)});
  auto v0 = *IndexedDataFrame::Create(edges, "src");
  auto extra = *session.CreateTable("extra", EdgeSchema(), {Edge(1, 2)});
  auto v1 = *v0.AppendRows(extra);

  // Both versions' blocks exist simultaneously in the block manager.
  const uint64_t rdd = v0.rdd()->rdd_id();
  bool saw_v0 = false, saw_v1 = false;
  for (uint32_t p = 0; p < v0.num_partitions(); ++p) {
    for (uint64_t v : session.cluster().blocks().VersionsOf(rdd, p)) {
      saw_v0 |= (v == 0);
      saw_v1 |= (v == 1);
    }
  }
  EXPECT_TRUE(saw_v0);
  EXPECT_TRUE(saw_v1);

  // Queries against each version see exactly their own data.
  EXPECT_EQ(v0.GetRows(Value::Int64(1)).value().rows.size(), 1u);
  EXPECT_EQ(v1.GetRows(Value::Int64(1)).value().rows.size(), 2u);
}

// ---- property sweep: indexed join == vanilla join over random data -------------

class IndexedJoinProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexedJoinProperty, MatchesVanillaOnRandomData) {
  Session session(SmallOptions());
  Rng rng(GetParam());
  std::vector<RowVec> build_rows, probe_rows;
  const int64_t domain = 1 + static_cast<int64_t>(rng.Below(60));
  for (int i = 0; i < 800; ++i) {
    build_rows.push_back(Edge(static_cast<int64_t>(rng.Below(
                                  static_cast<uint64_t>(domain))),
                              i, rng.NextDouble()));
  }
  for (int i = 0; i < 120; ++i) {
    probe_rows.push_back(Edge(static_cast<int64_t>(rng.Below(
                                  static_cast<uint64_t>(domain * 2))),
                              -i, rng.NextDouble()));
  }
  auto build = *session.CreateTable("b", EdgeSchema(), build_rows);
  auto probe = *session.CreateTable("p", EdgeSchema(), probe_rows);
  auto vanilla = build.Join(probe, "src", "src").Collect();
  auto indexed = *IndexedDataFrame::Create(build, "src");
  auto fast = indexed.Join(probe, "src").Collect();
  ASSERT_TRUE(vanilla.ok());
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast->SortedRowStrings(), vanilla->SortedRowStrings());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexedJoinProperty,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace idf
