// Tests for the SQL front-end: lexer, parser, binding against the catalog,
// end-to-end execution, and integration with the index-aware strategies
// (a SQL equality filter on a registered indexed table must plan an
// IndexLookupExec, per Fig. 2).
#include <gtest/gtest.h>

#include "core/indexed_dataframe.h"
#include "sql/parser.h"
#include "sql/session.h"

namespace idf {
namespace {

using sql_detail::Lex;
using sql_detail::TokenKind;

SessionOptions SmallOptions() {
  SessionOptions opts;
  opts.cluster.num_workers = 2;
  opts.cluster.executors_per_worker = 2;
  opts.cluster.cores_per_executor = 2;
  opts.default_partitions = 4;
  return opts;
}

SchemaPtr PeopleSchema() {
  return std::make_shared<Schema>(Schema({
      {"id", TypeId::kInt64, false},
      {"name", TypeId::kString, true},
      {"age", TypeId::kInt32, true},
      {"score", TypeId::kFloat64, true},
  }));
}

std::vector<RowVec> PeopleRows() {
  std::vector<RowVec> rows;
  const char* names[] = {"ann", "bob", "cat", "dan", "eve",
                         "fay", "gus", "hal", "ivy", "joe"};
  for (int64_t i = 0; i < 10; ++i) {
    rows.push_back({Value::Int64(i), Value::String(names[i]),
                    Value::Int32(static_cast<int32_t>(20 + i)),
                    Value::Float64(i * 0.5)});
  }
  return rows;
}

SchemaPtr OrdersSchema() {
  return std::make_shared<Schema>(Schema({
      {"order_id", TypeId::kInt64, false},
      {"person", TypeId::kInt64, false},
      {"amount", TypeId::kFloat64, true},
  }));
}

std::vector<RowVec> OrdersRows() {
  std::vector<RowVec> rows;
  int64_t order_id = 0;
  for (int64_t person = 0; person < 10; ++person) {
    for (int64_t k = 0; k < person; ++k) {
      rows.push_back({Value::Int64(order_id++), Value::Int64(person),
                      Value::Float64(person * 10.0 + k)});
    }
  }
  return rows;
}

// ---- lexer ------------------------------------------------------------------

TEST(SqlLexerTest, TokenKinds) {
  auto tokens = Lex("SELECT a, 42 3.5 'str' >= <> (x)");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const auto& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kIdentifier, TokenKind::kIdentifier,
                TokenKind::kSymbol, TokenKind::kInteger, TokenKind::kFloat,
                TokenKind::kString, TokenKind::kSymbol, TokenKind::kSymbol,
                TokenKind::kSymbol, TokenKind::kIdentifier, TokenKind::kSymbol,
                TokenKind::kEnd}));
}

TEST(SqlLexerTest, KeywordsUppercasedRawPreserved) {
  auto tokens = Lex("select FooBar");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "FOOBAR");
  EXPECT_EQ((*tokens)[1].raw, "FooBar");
}

TEST(SqlLexerTest, StringsKeepCase) {
  auto tokens = Lex("'Hello World'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].raw, "Hello World");
}

TEST(SqlLexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Lex("SELECT 'oops").ok());
}

TEST(SqlLexerTest, BadCharacterFails) {
  EXPECT_FALSE(Lex("SELECT a & b").ok());
}

// ---- parsing & execution -----------------------------------------------------

class SqlQueryTest : public ::testing::Test {
 protected:
  SqlQueryTest() : session_(SmallOptions()) {
    (void)session_.CreateTable("people", PeopleSchema(), PeopleRows());
    (void)session_.CreateTable("orders", OrdersSchema(), OrdersRows());
  }
  Session session_;
};

TEST_F(SqlQueryTest, SelectStar) {
  auto df = session_.Sql("SELECT * FROM people");
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df->Count().value(), 10u);
}

TEST_F(SqlQueryTest, CaseInsensitiveKeywordsAndTableNames) {
  auto df = session_.Sql("select * from PEOPLE");
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df->Count().value(), 10u);
}

TEST_F(SqlQueryTest, Projection) {
  auto result = session_.Sql("SELECT name, age FROM people")->Collect();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->schema->num_fields(), 2u);
  EXPECT_EQ(result->schema->field(0).name, "name");
  EXPECT_EQ(result->rows.size(), 10u);
}

TEST_F(SqlQueryTest, WhereComparisons) {
  EXPECT_EQ(session_.Sql("SELECT * FROM people WHERE age >= 27")
                ->Count()
                .value(),
            3u);
  EXPECT_EQ(session_.Sql("SELECT * FROM people WHERE name = 'eve'")
                ->Count()
                .value(),
            1u);
  EXPECT_EQ(session_.Sql("SELECT * FROM people WHERE age <> 25")
                ->Count()
                .value(),
            9u);
  EXPECT_EQ(
      session_.Sql("SELECT * FROM people WHERE age > 22 AND score < 3.0")
          ->Count()
          .value(),
      3u);
  EXPECT_EQ(
      session_.Sql("SELECT * FROM people WHERE age < 21 OR age > 28")
          ->Count()
          .value(),
      2u);
  EXPECT_EQ(session_.Sql("SELECT * FROM people WHERE NOT (age < 25)")
                ->Count()
                .value(),
            5u);
}

TEST_F(SqlQueryTest, WhereArithmetic) {
  // age - 20 = id for every row.
  EXPECT_EQ(session_.Sql("SELECT * FROM people WHERE age - 20 = id")
                ->Count()
                .value(),
            10u);
  EXPECT_EQ(session_.Sql("SELECT * FROM people WHERE id * 2 >= 10")
                ->Count()
                .value(),
            5u);
}

TEST_F(SqlQueryTest, IsNull) {
  auto with_null = PeopleRows();
  with_null.push_back({Value::Int64(100), Value::Null(TypeId::kString),
                       Value::Null(TypeId::kInt32), Value::Float64(0)});
  (void)session_.CreateTable("people2", PeopleSchema(), with_null);
  EXPECT_EQ(session_.Sql("SELECT * FROM people2 WHERE age IS NULL")
                ->Count()
                .value(),
            1u);
  EXPECT_EQ(session_.Sql("SELECT * FROM people2 WHERE age IS NOT NULL")
                ->Count()
                .value(),
            10u);
}

TEST_F(SqlQueryTest, JoinOn) {
  auto df = session_.Sql(
      "SELECT name, amount FROM people JOIN orders ON id = person");
  ASSERT_TRUE(df.ok());
  auto result = df->Collect();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 45u);
  EXPECT_EQ(result->schema->num_fields(), 2u);
}

TEST_F(SqlQueryTest, JoinThenWhere) {
  auto df = session_.Sql(
      "SELECT * FROM people JOIN orders ON id = person WHERE amount > 80");
  ASSERT_TRUE(df.ok());
  int expected = 0;
  for (const RowVec& row : OrdersRows()) {
    if (row[2].float64_value() > 80) ++expected;
  }
  EXPECT_EQ(df->Count().value(), static_cast<uint64_t>(expected));
}

TEST_F(SqlQueryTest, GlobalAggregates) {
  auto result = session_
                    .Sql("SELECT COUNT(*) AS n, SUM(amount) AS total, "
                         "AVG(amount) AS mean FROM orders")
                    ->Collect();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], Value::Int64(45));
  double total = 0;
  for (const RowVec& row : OrdersRows()) total += row[2].float64_value();
  EXPECT_NEAR(result->rows[0][1].float64_value(), total, 1e-9);
  EXPECT_NEAR(result->rows[0][2].float64_value(), total / 45, 1e-9);
}

TEST_F(SqlQueryTest, GroupBy) {
  auto result =
      session_
          .Sql("SELECT person, COUNT(*) AS n FROM orders GROUP BY person")
          ->Collect();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 9u);
  for (const RowVec& row : result->rows) {
    EXPECT_EQ(row[0].int64_value(), row[1].int64_value());
  }
}

TEST_F(SqlQueryTest, MinMax) {
  auto result =
      session_.Sql("SELECT MIN(age) AS lo, MAX(age) AS hi FROM people")
          ->Collect();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0], Value::Int32(20));
  EXPECT_EQ(result->rows[0][1], Value::Int32(29));
}

TEST_F(SqlQueryTest, Limit) {
  EXPECT_EQ(session_.Sql("SELECT * FROM people LIMIT 4")->Count().value(), 4u);
}

TEST_F(SqlQueryTest, SqlMatchesDataFrameApi) {
  auto via_sql =
      session_
          .Sql("SELECT name FROM people JOIN orders ON id = person "
               "WHERE amount >= 50")
          ->Collect();
  auto people = session_.Read(session_.LookupTable("people").value());
  auto orders = session_.Read(session_.LookupTable("orders").value());
  auto via_api = people.Join(orders, "id", "person")
                     .Filter(Ge(Col("amount"), Lit(50.0)))
                     .Select({"name"})
                     .Collect();
  ASSERT_TRUE(via_sql.ok());
  ASSERT_TRUE(via_api.ok());
  EXPECT_EQ(via_sql->SortedRowStrings(), via_api->SortedRowStrings());
}

// ---- error handling ---------------------------------------------------------

TEST_F(SqlQueryTest, UnknownTableFails) {
  auto df = session_.Sql("SELECT * FROM nope");
  EXPECT_EQ(df.status().code(), StatusCode::kNotFound);
}

TEST_F(SqlQueryTest, UnknownColumnFailsAtBind) {
  EXPECT_FALSE(session_.Sql("SELECT zzz FROM people").ok());
}

TEST_F(SqlQueryTest, SyntaxErrors) {
  EXPECT_FALSE(session_.Sql("SELECT FROM people").ok());
  EXPECT_FALSE(session_.Sql("SELECT * people").ok());
  EXPECT_FALSE(session_.Sql("SELECT * FROM people WHERE").ok());
  EXPECT_FALSE(session_.Sql("SELECT * FROM people LIMIT x").ok());
  EXPECT_FALSE(session_.Sql("SELECT * FROM people trailing garbage").ok());
  EXPECT_FALSE(
      session_.Sql("SELECT * FROM people JOIN orders ON id person").ok());
}

TEST_F(SqlQueryTest, NonGroupedColumnWithAggregateFails) {
  EXPECT_FALSE(session_.Sql("SELECT name, COUNT(*) FROM people").ok());
}

TEST_F(SqlQueryTest, GroupByWithoutAggregateFails) {
  EXPECT_FALSE(session_.Sql("SELECT name FROM people GROUP BY name").ok());
}

// ---- index integration (Fig. 2) ------------------------------------------------

TEST_F(SqlQueryTest, SqlOnRegisteredIndexUsesIndexLookup) {
  auto people = session_.Read(session_.LookupTable("people").value());
  auto indexed = IndexedDataFrame::Create(people, "id").value();
  indexed.RegisterAs("people_idx");

  auto df = session_.Sql("SELECT * FROM people_idx WHERE id = 4");
  ASSERT_TRUE(df.ok());
  auto plan = df->ExplainPhysical();
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("IndexLookupExec"), std::string::npos) << *plan;
  auto result = df->Collect();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][1], Value::String("eve"));
}

TEST_F(SqlQueryTest, SqlJoinOnRegisteredIndexUsesIndexedJoin) {
  auto people = session_.Read(session_.LookupTable("people").value());
  auto indexed = IndexedDataFrame::Create(people, "id").value();
  indexed.RegisterAs("people_idx");

  auto df = session_.Sql(
      "SELECT name, amount FROM people_idx JOIN orders ON id = person");
  ASSERT_TRUE(df.ok());
  auto plan = df->ExplainPhysical();
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("IndexedJoinExec"), std::string::npos) << *plan;
  EXPECT_EQ(df->Count().value(), 45u);
}

TEST_F(SqlQueryTest, SqlSeesAppendedVersionAfterReRegistration) {
  auto people = session_.Read(session_.LookupTable("people").value());
  auto v0 = IndexedDataFrame::Create(people, "id").value();
  v0.RegisterAs("live");
  EXPECT_EQ(session_.Sql("SELECT * FROM live WHERE id = 4")->Count().value(),
            1u);

  auto extra = session_
                   .CreateTable("extra", PeopleSchema(),
                                {{Value::Int64(4), Value::String("eve2"),
                                  Value::Int32(25), Value::Float64(9.0)}})
                   .value();
  auto v1 = v0.AppendRows(extra).value();
  v1.RegisterAs("live");
  EXPECT_EQ(session_.Sql("SELECT * FROM live WHERE id = 4")->Count().value(),
            2u);
}

}  // namespace
}  // namespace idf
