// End-to-end tests for the SQL layer: columnar chunks, planner rules,
// physical execution of filter/project/join/aggregate/limit, and
// cross-validation of the three vanilla join algorithms.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "sql/session.h"

namespace idf {
namespace {

SessionOptions SmallOptions() {
  SessionOptions opts;
  opts.cluster.num_workers = 2;
  opts.cluster.executors_per_worker = 2;
  opts.cluster.cores_per_executor = 2;
  opts.default_partitions = 4;
  return opts;
}

SchemaPtr PeopleSchema() {
  return std::make_shared<Schema>(Schema({
      {"id", TypeId::kInt64, false},
      {"name", TypeId::kString, true},
      {"age", TypeId::kInt32, true},
      {"score", TypeId::kFloat64, true},
  }));
}

std::vector<RowVec> PeopleRows() {
  std::vector<RowVec> rows;
  const char* names[] = {"ann", "bob", "cat", "dan", "eve", "fay", "gus",
                         "hal", "ivy", "joe"};
  for (int64_t i = 0; i < 10; ++i) {
    rows.push_back({Value::Int64(i), Value::String(names[i]),
                    Value::Int32(static_cast<int32_t>(20 + i)),
                    Value::Float64(i * 0.5)});
  }
  return rows;
}

// ---- columnar ---------------------------------------------------------------

TEST(ColumnarTest, ChunkRoundTrip) {
  ColumnarChunk chunk(PeopleSchema());
  for (const RowVec& row : PeopleRows()) IDF_CHECK_OK(chunk.AppendRow(row));
  EXPECT_EQ(chunk.num_rows(), 10u);
  EXPECT_EQ(chunk.RowAt(3)[1], Value::String("dan"));
  EXPECT_EQ(chunk.ValueAt(5, 2), Value::Int32(25));
  EXPECT_GT(chunk.ByteSize(), 0u);
}

TEST(ColumnarTest, NullHandling) {
  ColumnarChunk chunk(PeopleSchema());
  IDF_CHECK_OK(chunk.AppendRow({Value::Int64(1), Value::Null(TypeId::kString),
                                Value::Null(TypeId::kInt32),
                                Value::Float64(0)}));
  EXPECT_TRUE(chunk.column(1).IsNull(0));
  EXPECT_TRUE(chunk.column(2).IsNull(0));
  EXPECT_FALSE(chunk.column(0).IsNull(0));
  EXPECT_TRUE(chunk.RowAt(0)[1].is_null());
}

TEST(ColumnarTest, KeyCodeMatchesIndexKeyCode) {
  ColumnarChunk chunk(PeopleSchema());
  IDF_CHECK_OK(chunk.AppendRow(PeopleRows()[4]));
  EXPECT_EQ(chunk.column(0).KeyCodeAt(0), IndexKeyCode(Value::Int64(4)));
  EXPECT_EQ(chunk.column(1).KeyCodeAt(0), IndexKeyCode(Value::String("eve")));
}

TEST(ColumnarTest, ChunkBuilderFromEncodedRows) {
  auto schema = PeopleSchema();
  RowLayout layout(schema);
  std::vector<uint8_t> buf;
  ChunkBuilder builder(schema);
  for (const RowVec& row : PeopleRows()) {
    buf.resize(*layout.ComputeRowSize(row));
    layout.EncodeRow(row, buf.data(), PackedRowPtr::Null());
    builder.AddEncodedRow(layout, buf.data());
  }
  ChunkPtr chunk = builder.Finish();
  EXPECT_EQ(chunk->num_rows(), 10u);
  EXPECT_EQ(chunk->RowAt(7)[1], Value::String("hal"));
}

// ---- planner rules --------------------------------------------------------------

TEST(PlannerTest, CombineFiltersRule) {
  Session session(SmallOptions());
  auto df = *session.CreateTable("people", PeopleSchema(), PeopleRows());
  auto filtered = df.Filter(Gt(Col("age"), Lit(int32_t{22})))
                      .Filter(Lt(Col("age"), Lit(int32_t{27})));
  auto explained = filtered.ExplainOptimized();
  ASSERT_TRUE(explained.ok());
  // Two Filter nodes collapse into one AND.
  EXPECT_EQ(explained->find("Filter"), explained->rfind("Filter"));
  EXPECT_NE(explained->find("AND"), std::string::npos);
}

TEST(PlannerTest, PushFilterBelowProjectRule) {
  Session session(SmallOptions());
  auto df = *session.CreateTable("people", PeopleSchema(), PeopleRows());
  auto q = df.Select({"id", "age"}).Filter(Eq(Col("id"), Lit(int64_t{3})));
  auto explained = q.ExplainOptimized();
  ASSERT_TRUE(explained.ok());
  // Project must now be above Filter.
  EXPECT_LT(explained->find("Project"), explained->find("Filter"));
}

TEST(PlannerTest, PhysicalPlanUsesVanillaOperators) {
  Session session(SmallOptions());
  auto df = *session.CreateTable("people", PeopleSchema(), PeopleRows());
  auto q = df.Filter(Gt(Col("age"), Lit(int32_t{21}))).Select({"name"});
  auto physical = q.ExplainPhysical();
  ASSERT_TRUE(physical.ok());
  EXPECT_NE(physical->find("ProjectExec"), std::string::npos);
  EXPECT_NE(physical->find("FilterExec"), std::string::npos);
  EXPECT_NE(physical->find("ScanExec"), std::string::npos);
}

// ---- execution: scan/filter/project -----------------------------------------

TEST(SqlExecTest, CollectWholeTable) {
  Session session(SmallOptions());
  auto df = *session.CreateTable("people", PeopleSchema(), PeopleRows());
  auto result = df.Collect();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 10u);
}

TEST(SqlExecTest, FilterNumericVectorizedPath) {
  Session session(SmallOptions());
  auto df = *session.CreateTable("people", PeopleSchema(), PeopleRows());
  auto result = df.Filter(Ge(Col("age"), Lit(int32_t{27}))).Collect();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 3u);  // ages 27, 28, 29
}

TEST(SqlExecTest, FilterLiteralOnLeftMirrorsComparison) {
  Session session(SmallOptions());
  auto df = *session.CreateTable("people", PeopleSchema(), PeopleRows());
  // 27 <= age is the mirrored form of age >= 27.
  auto result = df.Filter(Le(Lit(int32_t{27}), Col("age"))).Collect();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 3u);
}

TEST(SqlExecTest, FilterStringEqualityVectorizedPath) {
  Session session(SmallOptions());
  auto df = *session.CreateTable("people", PeopleSchema(), PeopleRows());
  auto result = df.Filter(Eq(Col("name"), Lit("eve"))).Collect();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], Value::Int64(4));

  auto inverse = df.Filter(Ne(Col("name"), Lit("eve"))).Collect();
  ASSERT_TRUE(inverse.ok());
  EXPECT_EQ(inverse->rows.size(), 9u);
}

TEST(SqlExecTest, FilterStringVectorizedSkipsNullsLikeGenericPath) {
  Session session(SmallOptions());
  auto rows = PeopleRows();
  rows.push_back({Value::Int64(10), Value::Null(TypeId::kString),
                  Value::Int32(30), Value::Float64(5.0)});
  auto df = *session.CreateTable("people_n", PeopleSchema(), rows);
  // The vectorized Eq path and the generic row-wise path (forced by the
  // ordering comparison, which only the generic path handles) must agree:
  // a null name matches neither = nor !=.
  auto eq = df.Filter(Eq(Col("name"), Lit("eve"))).Collect();
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(eq->rows.size(), 1u);
  auto ne = df.Filter(Ne(Col("name"), Lit("eve"))).Collect();
  ASSERT_TRUE(ne.ok());
  EXPECT_EQ(ne->rows.size(), 9u);  // 10 non-null names minus "eve"
  auto generic = df.Filter(Lt(Col("name"), Lit("eve"))).Collect();
  ASSERT_TRUE(generic.ok());
  EXPECT_EQ(generic->rows.size(), 4u);  // ann, bob, cat, dan
}

TEST(SqlExecTest, FilterCompoundPredicate) {
  Session session(SmallOptions());
  auto df = *session.CreateTable("people", PeopleSchema(), PeopleRows());
  auto result = df.Filter(And(Gt(Col("age"), Lit(int32_t{22})),
                              Lt(Col("score"), Lit(3.0))))
                    .Collect();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 3u);  // ids 3,4,5
}

TEST(SqlExecTest, FilterKeepsNoNullMatches) {
  Session session(SmallOptions());
  std::vector<RowVec> rows = PeopleRows();
  rows.push_back({Value::Int64(100), Value::String("nil"),
                  Value::Null(TypeId::kInt32), Value::Float64(0)});
  auto df = *session.CreateTable("people", PeopleSchema(), rows);
  auto result = df.Filter(Gt(Col("age"), Lit(int32_t{0}))).Collect();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 10u);  // null age row dropped
}

TEST(SqlExecTest, ProjectReordersColumns) {
  Session session(SmallOptions());
  auto df = *session.CreateTable("people", PeopleSchema(), PeopleRows());
  auto result = df.Select({"age", "id"}).Collect();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->schema->num_fields(), 2u);
  EXPECT_EQ(result->schema->field(0).name, "age");
  EXPECT_EQ(result->rows.size(), 10u);
  for (const RowVec& row : result->rows) {
    EXPECT_EQ(row[0].AsInt64() - 20, row[1].AsInt64());
  }
}

TEST(SqlExecTest, LimitTruncates) {
  Session session(SmallOptions());
  auto df = *session.CreateTable("people", PeopleSchema(), PeopleRows());
  auto result = df.Limit(3).Collect();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 3u);
  auto count = df.Limit(100).Count();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 10u);
}

// ---- execution: joins ---------------------------------------------------------

SchemaPtr OrdersSchema() {
  return std::make_shared<Schema>(Schema({
      {"order_id", TypeId::kInt64, false},
      {"person", TypeId::kInt64, false},
      {"amount", TypeId::kFloat64, true},
  }));
}

std::vector<RowVec> OrdersRows() {
  std::vector<RowVec> rows;
  // person i gets i orders (skew): person 0 none, 1 one, ...
  int64_t order_id = 0;
  for (int64_t person = 0; person < 10; ++person) {
    for (int64_t k = 0; k < person; ++k) {
      rows.push_back({Value::Int64(order_id++), Value::Int64(person),
                      Value::Float64(person * 10.0 + k)});
    }
  }
  return rows;  // 45 orders
}

std::map<std::string, int> JoinResultHistogram(const CollectedTable& t) {
  std::map<std::string, int> hist;
  for (const std::string& row : t.SortedRowStrings()) ++hist[row];
  return hist;
}

class JoinModeSweep : public ::testing::TestWithParam<JoinExec::Mode> {};

TEST_P(JoinModeSweep, JoinMatchesExpectedCardinality) {
  SessionOptions opts = SmallOptions();
  opts.join_mode = GetParam();
  Session session(opts);
  auto people = *session.CreateTable("people", PeopleSchema(), PeopleRows());
  auto orders = *session.CreateTable("orders", OrdersSchema(), OrdersRows());

  auto joined = people.Join(orders, "id", "person");
  auto result = joined.Collect();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 45u);
  // Schema: people columns then orders columns.
  EXPECT_EQ(result->schema->num_fields(), 7u);
  EXPECT_EQ(result->schema->field(0).name, "id");
  EXPECT_EQ(result->schema->field(4).name, "order_id");
  // Every joined row satisfies id == person.
  for (const RowVec& row : result->rows) {
    EXPECT_EQ(row[0].int64_value(), row[5].int64_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, JoinModeSweep,
                         ::testing::Values(JoinExec::Mode::kBroadcastHash,
                                           JoinExec::Mode::kShuffledHash,
                                           JoinExec::Mode::kSortMerge));

TEST(SqlJoinTest, AllJoinModesProduceIdenticalResults) {
  // Property: the three algorithms are interchangeable. Random datasets.
  Rng rng(77);
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<RowVec> left_rows, right_rows;
    for (int i = 0; i < 200; ++i) {
      left_rows.push_back({Value::Int64(static_cast<int64_t>(rng.Below(40))),
                           Value::String(rng.NextString(4)),
                           Value::Int32(static_cast<int32_t>(i)),
                           Value::Float64(rng.NextDouble())});
    }
    for (int i = 0; i < 100; ++i) {
      right_rows.push_back({Value::Int64(i),
                            Value::Int64(static_cast<int64_t>(rng.Below(40))),
                            Value::Float64(rng.NextDouble())});
    }
    std::map<std::string, int> results[3];
    int idx = 0;
    for (JoinExec::Mode mode :
         {JoinExec::Mode::kBroadcastHash, JoinExec::Mode::kShuffledHash,
          JoinExec::Mode::kSortMerge}) {
      SessionOptions opts = SmallOptions();
      opts.join_mode = mode;
      Session session(opts);
      auto left = *session.CreateTable("l", PeopleSchema(), left_rows);
      auto right = *session.CreateTable("r", OrdersSchema(), right_rows);
      auto collected = left.Join(right, "id", "person").Collect();
      ASSERT_TRUE(collected.ok());
      results[idx++] = JoinResultHistogram(*collected);
    }
    EXPECT_EQ(results[0], results[1]);
    EXPECT_EQ(results[1], results[2]);
  }
}

TEST(SqlJoinTest, StringKeyJoin) {
  Session session(SmallOptions());
  auto people = *session.CreateTable("people", PeopleSchema(), PeopleRows());
  auto lookup_schema = std::make_shared<Schema>(Schema({
      {"who", TypeId::kString, false},
      {"team", TypeId::kString, false},
  }));
  auto lookup = *session.CreateTable(
      "teams", lookup_schema,
      {{Value::String("ann"), Value::String("red")},
       {Value::String("eve"), Value::String("blue")},
       {Value::String("zed"), Value::String("green")}});
  auto result = people.Join(lookup, "name", "who").Collect();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 2u);  // ann and eve match; zed doesn't
}

TEST(SqlJoinTest, NullKeysNeverMatch) {
  Session session(SmallOptions());
  auto schema = std::make_shared<Schema>(Schema({
      {"k", TypeId::kInt64, true},
      {"v", TypeId::kInt64, false},
  }));
  auto left = *session.CreateTable(
      "l", schema,
      {{Value::Null(TypeId::kInt64), Value::Int64(1)},
       {Value::Int64(5), Value::Int64(2)}});
  auto right = *session.CreateTable(
      "r", schema,
      {{Value::Null(TypeId::kInt64), Value::Int64(3)},
       {Value::Int64(5), Value::Int64(4)}});
  auto result = left.Join(right, "k", "k").Collect();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 1u);  // only 5==5; null != null
}

TEST(SqlJoinTest, JoinMetricsShowShuffleOrBroadcast) {
  SessionOptions opts = SmallOptions();
  opts.join_mode = JoinExec::Mode::kShuffledHash;
  Session session(opts);
  auto people = *session.CreateTable("people", PeopleSchema(), PeopleRows());
  auto orders = *session.CreateTable("orders", OrdersSchema(), OrdersRows());
  QueryMetrics metrics;
  auto handle = people.Join(orders, "id", "person").Execute(&metrics);
  ASSERT_TRUE(handle.ok());
  EXPECT_GT(metrics.totals.shuffle_bytes_written, 0u);
  EXPECT_GT(metrics.totals.hash_build_seconds, 0.0);
  EXPECT_GT(metrics.simulated_seconds, 0.0);
  EXPECT_GT(metrics.num_stages, 1u);
}

// ---- execution: aggregates ------------------------------------------------------

TEST(SqlAggTest, GlobalAggregates) {
  Session session(SmallOptions());
  auto orders = *session.CreateTable("orders", OrdersSchema(), OrdersRows());
  auto result = orders
                    .Agg({}, {AggSpec::Count("n"), AggSpec::Sum("amount"),
                              AggSpec::Min("amount"), AggSpec::Max("amount"),
                              AggSpec::Avg("amount")})
                    .Collect();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  const RowVec& row = result->rows[0];
  EXPECT_EQ(row[0], Value::Int64(45));
  double expected_sum = 0;
  for (const RowVec& r : OrdersRows()) expected_sum += r[2].float64_value();
  EXPECT_NEAR(row[1].float64_value(), expected_sum, 1e-9);
  EXPECT_DOUBLE_EQ(row[2].float64_value(), 10.0);   // min: person 1, k 0
  EXPECT_DOUBLE_EQ(row[3].float64_value(), 98.0);   // max: person 9, k 8
  EXPECT_NEAR(row[4].float64_value(), expected_sum / 45, 1e-9);
}

TEST(SqlAggTest, GroupByCounts) {
  Session session(SmallOptions());
  auto orders = *session.CreateTable("orders", OrdersSchema(), OrdersRows());
  auto result =
      orders.Agg({"person"}, {AggSpec::Count("n")}).Collect();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 9u);  // persons 1..9 have orders
  for (const RowVec& row : result->rows) {
    EXPECT_EQ(row[0].int64_value(), row[1].int64_value());  // person i: i orders
  }
}

TEST(SqlAggTest, GroupBySums) {
  Session session(SmallOptions());
  auto people = *session.CreateTable("people", PeopleSchema(), PeopleRows());
  // Group by constant-ish small domain: age bucket = age (distinct) — use
  // name instead for string grouping.
  auto result = people.Agg({"name"}, {AggSpec::Sum("age", "total")}).Collect();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 10u);
}

TEST(SqlAggTest, AggregateOnEmptyTable) {
  Session session(SmallOptions());
  auto empty = *session.CreateTable("empty", OrdersSchema(), {});
  auto result =
      empty.Agg({}, {AggSpec::Count("n"), AggSpec::Sum("amount")}).Collect();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], Value::Int64(0));
}

TEST(SqlAggTest, GroupedAggregateAfterJoin) {
  Session session(SmallOptions());
  auto people = *session.CreateTable("people", PeopleSchema(), PeopleRows());
  auto orders = *session.CreateTable("orders", OrdersSchema(), OrdersRows());
  auto result = people.Join(orders, "id", "person")
                    .Agg({"name"}, {AggSpec::Sum("amount", "spend"),
                                    AggSpec::Count("n")})
                    .Collect();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 9u);
}

// ---- lineage integration ------------------------------------------------------

TEST(SqlLineageTest, QueriesSurviveExecutorFailure) {
  Session session(SmallOptions());
  auto people = *session.CreateTable("people", PeopleSchema(), PeopleRows());
  // First run works.
  ASSERT_EQ(people.Filter(Gt(Col("age"), Lit(int32_t{24}))).Count().value(),
            5u);
  // Kill an executor holding blocks; query must recompute via lineage.
  session.cluster().KillExecutor(1);
  QueryMetrics metrics;
  auto count = people.Filter(Gt(Col("age"), Lit(int32_t{24}))).Count(&metrics);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 5u);
}

}  // namespace
}  // namespace idf
