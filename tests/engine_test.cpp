// Tests for the engine substrate: topology validation, the NUMA model,
// block manager versioning/staleness, the discrete-event stage simulator,
// the shuffle service, and the cluster facade with failure injection +
// lineage recomputation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <set>
#include <thread>

#include "engine/block.h"
#include "engine/cluster.h"
#include "engine/des.h"
#include "engine/scheduler.h"
#include "engine/shuffle.h"
#include "engine/topology.h"
#include "obs/metrics_registry.h"

namespace idf {
namespace {

// ---- topology ---------------------------------------------------------------

TEST(TopologyTest, ValidateAcceptsReasonableConfigs) {
  ClusterConfig c;
  c.num_workers = 4;
  c.executors_per_worker = 4;
  c.cores_per_executor = 4;
  EXPECT_TRUE(c.Validate().ok());
  EXPECT_EQ(c.total_executors(), 16u);
  EXPECT_EQ(c.total_cores(), 64u);
}

TEST(TopologyTest, ValidateRejectsOversubscription) {
  ClusterConfig c;
  c.executors_per_worker = 4;
  c.cores_per_executor = 8;  // 32 > 16 cores per worker
  EXPECT_EQ(c.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(TopologyTest, ValidateRejectsZeroDimensions) {
  ClusterConfig c;
  c.num_workers = 0;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(TopologyTest, WorkerOfMapsExecutors) {
  ClusterConfig c;
  c.num_workers = 3;
  c.executors_per_worker = 2;
  EXPECT_EQ(c.WorkerOf(0), 0u);
  EXPECT_EQ(c.WorkerOf(1), 0u);
  EXPECT_EQ(c.WorkerOf(2), 1u);
  EXPECT_EQ(c.WorkerOf(5), 2u);
}

TEST(TopologyTest, NumaFactorOrdering) {
  // Fig. 4's qualitative result: pinned small executors < unpinned < spanning.
  ClusterConfig pinned;
  pinned.executors_per_worker = 4;
  pinned.cores_per_executor = 4;
  pinned.numa_pinned = true;

  ClusterConfig unpinned = pinned;
  unpinned.numa_pinned = false;

  ClusterConfig spanning;
  spanning.executors_per_worker = 1;
  spanning.cores_per_executor = 16;  // one fat executor spans both sockets

  EXPECT_DOUBLE_EQ(pinned.NumaFactor(), 1.0);
  EXPECT_GT(unpinned.NumaFactor(), pinned.NumaFactor());
  EXPECT_GT(spanning.NumaFactor(), unpinned.NumaFactor());
}

// ---- BlockManager --------------------------------------------------------------

class TestBlock : public Block {
 public:
  explicit TestBlock(uint64_t bytes, int payload = 0)
      : bytes_(bytes), payload_(payload) {}
  uint64_t ByteSize() const override { return bytes_; }
  int payload() const { return payload_; }

 private:
  uint64_t bytes_;
  int payload_;
};

TEST(BlockManagerTest, PutGetRoundTrip) {
  BlockManager bm;
  BlockId id{1, 0, 0};
  bm.Put(id, 2, std::make_shared<TestBlock>(100, 7));
  auto got = bm.Get(id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(static_cast<const TestBlock*>(got->get())->payload(), 7);
  EXPECT_EQ(bm.LocationOf(id), std::optional<ExecutorId>(2));
}

TEST(BlockManagerTest, MissingBlockIsNotFound) {
  BlockManager bm;
  EXPECT_EQ(bm.Get(BlockId{9, 9, 9}).status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(bm.LocationOf(BlockId{9, 9, 9}).has_value());
}

TEST(BlockManagerTest, VersionsAreDistinctBlocks) {
  // §III-D consistency: the same partition at different versions must be
  // distinguishable so stale replicas are never served for a newer version.
  BlockManager bm;
  bm.Put(BlockId{1, 0, 0}, 0, std::make_shared<TestBlock>(10, 100));
  bm.Put(BlockId{1, 0, 1}, 1, std::make_shared<TestBlock>(10, 101));

  auto v0 = bm.Get(BlockId{1, 0, 0});
  auto v1 = bm.Get(BlockId{1, 0, 1});
  ASSERT_TRUE(v0.ok());
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(static_cast<const TestBlock*>(v0->get())->payload(), 100);
  EXPECT_EQ(static_cast<const TestBlock*>(v1->get())->payload(), 101);

  // A request for version 2 must NOT silently fall back to version 1.
  EXPECT_EQ(bm.Get(BlockId{1, 0, 2}).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(bm.VersionsOf(1, 0), (std::vector<uint64_t>{0, 1}));
}

TEST(BlockManagerTest, DropExecutorRemovesItsBlocks) {
  BlockManager bm;
  bm.Put(BlockId{1, 0, 0}, 0, std::make_shared<TestBlock>(10));
  bm.Put(BlockId{1, 1, 0}, 1, std::make_shared<TestBlock>(10));
  bm.Put(BlockId{1, 2, 0}, 0, std::make_shared<TestBlock>(10));
  EXPECT_EQ(bm.DropExecutor(0), 2u);
  EXPECT_FALSE(bm.Get(BlockId{1, 0, 0}).ok());
  EXPECT_TRUE(bm.Get(BlockId{1, 1, 0}).ok());
  EXPECT_EQ(bm.NumBlocks(), 1u);
}

TEST(BlockManagerTest, DropRddRemovesAllVersions) {
  BlockManager bm;
  bm.Put(BlockId{1, 0, 0}, 0, std::make_shared<TestBlock>(10));
  bm.Put(BlockId{1, 0, 1}, 0, std::make_shared<TestBlock>(10));
  bm.Put(BlockId{2, 0, 0}, 0, std::make_shared<TestBlock>(10));
  bm.DropRdd(1);
  EXPECT_EQ(bm.NumBlocks(), 1u);
  EXPECT_TRUE(bm.Get(BlockId{2, 0, 0}).ok());
}

TEST(BlockManagerTest, TotalBytesSums) {
  BlockManager bm;
  bm.Put(BlockId{1, 0, 0}, 0, std::make_shared<TestBlock>(100));
  bm.Put(BlockId{1, 1, 0}, 0, std::make_shared<TestBlock>(250));
  EXPECT_EQ(bm.TotalBytes(), 350u);
}

// ---- StageSimulator --------------------------------------------------------------

ClusterConfig SmallCluster(uint32_t workers, uint32_t executors_per_worker,
                           uint32_t cores) {
  ClusterConfig c;
  c.num_workers = workers;
  c.executors_per_worker = executors_per_worker;
  c.cores_per_executor = cores;
  c.numa_pinned = true;
  return c;
}

TEST(StageSimTest, SingleTaskTakesItsComputeTime) {
  StageSimulator sim(SmallCluster(1, 1, 1));
  SimOutcome out = sim.RunStage({SimTask{1.0, 0, {}}});
  EXPECT_DOUBLE_EQ(out.makespan_seconds, 1.0);
  EXPECT_DOUBLE_EQ(out.network_seconds, 0.0);
}

TEST(StageSimTest, PerfectParallelismAcrossCores) {
  StageSimulator sim(SmallCluster(1, 1, 4));
  std::vector<SimTask> tasks(4, SimTask{1.0, kAnyExecutor, {}});
  SimOutcome out = sim.RunStage(tasks);
  EXPECT_NEAR(out.makespan_seconds, 1.0, 1e-9);
}

TEST(StageSimTest, MoreTasksThanCoresSerializes) {
  StageSimulator sim(SmallCluster(1, 1, 2));
  std::vector<SimTask> tasks(4, SimTask{1.0, kAnyExecutor, {}});
  SimOutcome out = sim.RunStage(tasks);
  EXPECT_NEAR(out.makespan_seconds, 2.0, 1e-9);
}

TEST(StageSimTest, VerticalScalingIsNearLinear) {
  // Fig. 6 (bottom): with one executor per worker and ample tasks, doubling
  // cores halves the makespan.
  std::vector<SimTask> tasks(64, SimTask{0.1, kAnyExecutor, {}});
  auto single_socket = [](uint32_t cores) {
    ClusterConfig c = SmallCluster(1, 1, cores);
    c.sockets_per_worker = 1;  // isolate core scaling from the NUMA model
    return c;
  };
  double t1, t4, t16;
  {
    StageSimulator sim(single_socket(1));
    t1 = sim.RunStage(tasks).makespan_seconds;
  }
  {
    StageSimulator sim(single_socket(4));
    t4 = sim.RunStage(tasks).makespan_seconds;
  }
  {
    StageSimulator sim(single_socket(16));
    t16 = sim.RunStage(tasks).makespan_seconds;
  }
  EXPECT_NEAR(t1 / t4, 4.0, 0.2);
  EXPECT_NEAR(t1 / t16, 16.0, 1.0);
}

TEST(StageSimTest, RemoteReadsChargeNetworkTime) {
  ClusterConfig c = SmallCluster(2, 1, 1);
  c.network.latency_s = 0.01;
  c.network.bandwidth_bytes_per_s = 1e6;  // 1 MB/s for visible costs
  StageSimulator sim(c);
  // Task on executor 1 reads 1 MB produced on executor 0 (cross-worker).
  SimTask task{0.5, 1, {SimRead{0, 1000000}}};
  SimOutcome out = sim.RunStage({task});
  EXPECT_NEAR(out.makespan_seconds, 0.5 + 0.01 + 1.0, 1e-6);
  EXPECT_NEAR(out.network_seconds, 1.01, 1e-6);
}

TEST(StageSimTest, LocalReadsAreFree) {
  StageSimulator sim(SmallCluster(2, 1, 1));
  SimTask task{0.5, 1, {SimRead{1, 1000000}}};
  SimOutcome out = sim.RunStage({task});
  EXPECT_NEAR(out.makespan_seconds, 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(out.network_seconds, 0.0);
}

TEST(StageSimTest, IntraWorkerReadsAreCheaperThanCrossWorker) {
  ClusterConfig c = SmallCluster(2, 2, 1);
  c.network.latency_s = 0;
  StageSimulator sim_intra(c), sim_cross(c);
  // Executors 0,1 share worker 0; executor 2 lives on worker 1.
  SimOutcome intra =
      sim_intra.RunStage({SimTask{0.0, 1, {SimRead{0, 100 << 20}}}});
  SimOutcome cross =
      sim_cross.RunStage({SimTask{0.0, 2, {SimRead{0, 100 << 20}}}});
  EXPECT_LT(intra.makespan_seconds, cross.makespan_seconds);
}

TEST(StageSimTest, NicSerializationCreatesContention) {
  // Many reducers all fetching from worker 0 must queue on its out-NIC.
  ClusterConfig c = SmallCluster(4, 1, 4);
  c.network.latency_s = 0;
  c.network.bandwidth_bytes_per_s = 1e6;
  StageSimulator sim(c);
  std::vector<SimTask> tasks;
  for (int i = 0; i < 3; ++i) {
    // Three tasks on three different remote workers, each pulling 1 MB
    // from worker 0: the source NIC serializes them (~1s each).
    tasks.push_back(SimTask{0.0, static_cast<ExecutorId>(i + 1),
                            {SimRead{0, 1000000}}});
  }
  SimOutcome out = sim.RunStage(tasks);
  EXPECT_GT(out.makespan_seconds, 2.5);  // not 1.0: transfers serialized
}

TEST(StageSimTest, HorizontalScalingIsSubLinear) {
  // Fig. 6 (top): with shuffle traffic, doubling workers does not halve
  // runtime — network costs erode the speedup.
  auto run = [](uint32_t workers) {
    ClusterConfig c = SmallCluster(workers, 1, 4);
    c.network.latency_s = 1e-4;
    c.network.bandwidth_bytes_per_s = 1.25e9;
    StageSimulator sim(c);
    std::vector<SimTask> tasks;
    for (uint32_t t = 0; t < 64; ++t) {
      // Every task reads ~32 MB scattered across all workers.
      std::vector<SimRead> reads;
      for (uint32_t w = 0; w < workers; ++w) {
        reads.push_back(SimRead{w, (32u << 20) / workers});
      }
      tasks.push_back(SimTask{0.2, static_cast<ExecutorId>(t % workers),
                              std::move(reads)});
    }
    return sim.RunStage(tasks).makespan_seconds;
  };
  const double t2 = run(2), t8 = run(8), t32 = run(32);
  EXPECT_GT(t2, t8);
  EXPECT_GT(t8, t32);
  EXPECT_LT(t2 / t8, 4.0);    // speedup below the ideal 4x
  EXPECT_LT(t8 / t32, 4.0);
}

TEST(StageSimTest, StagesActAsBarriers) {
  StageSimulator sim(SmallCluster(1, 1, 2));
  sim.RunStage({SimTask{1.0, kAnyExecutor, {}}});
  // Second stage starts only after the first finishes everywhere.
  SimOutcome out = sim.RunStage({SimTask{0.5, kAnyExecutor, {}}});
  EXPECT_NEAR(sim.Now(), 1.5, 1e-9);
  EXPECT_NEAR(out.makespan_seconds, 0.5, 1e-9);
}

TEST(StageSimTest, BroadcastCostGrowsWithWorkers) {
  ClusterConfig c2 = SmallCluster(2, 1, 1);
  ClusterConfig c16 = SmallCluster(16, 1, 1);
  c2.network.bandwidth_bytes_per_s = c16.network.bandwidth_bytes_per_s = 1e9;
  StageSimulator s2(c2), s16(c16);
  const double b2 = s2.Broadcast(100 << 20);
  const double b16 = s16.Broadcast(100 << 20);
  EXPECT_GT(b16, b2);
}

TEST(StageSimTest, NumaFactorStretchesCompute) {
  ClusterConfig spanning = SmallCluster(1, 1, 16);
  spanning.numa_pinned = false;
  StageSimulator sim(spanning);
  SimOutcome out = sim.RunStage({SimTask{1.0, 0, {}}});
  EXPECT_GT(out.makespan_seconds, 1.2);
}

TEST(StageSimTest, ResetClearsClocks) {
  StageSimulator sim(SmallCluster(1, 1, 1));
  sim.RunStage({SimTask{1.0, 0, {}}});
  sim.Reset();
  EXPECT_DOUBLE_EQ(sim.Now(), 0.0);
}

// ---- HashPartition --------------------------------------------------------------

TEST(HashPartitionTest, DeterministicAndInRange) {
  for (uint64_t k = 0; k < 1000; ++k) {
    const uint32_t p = HashPartition(k, 16);
    EXPECT_LT(p, 16u);
    EXPECT_EQ(p, HashPartition(k, 16));
  }
}

TEST(HashPartitionTest, BalancedOverSequentialKeys) {
  constexpr uint32_t kParts = 8;
  std::vector<int> counts(kParts, 0);
  for (uint64_t k = 0; k < 80000; ++k) ++counts[HashPartition(k, kParts)];
  for (int c : counts) {
    EXPECT_GT(c, 80000 / kParts * 0.9);
    EXPECT_LT(c, 80000 / kParts * 1.1);
  }
}

// ---- ShuffleService --------------------------------------------------------------

ShuffleBuffer MakeBuffer(std::initializer_list<uint32_t> row_sizes,
                         ExecutorId source) {
  ShuffleBuffer buf;
  buf.source = source;
  for (uint32_t size : row_sizes) {
    std::vector<uint8_t> row(size, 0);
    std::memcpy(row.data(), &size, sizeof(size));
    buf.AppendRow(row.data(), size);
  }
  return buf;
}

TEST(ShuffleServiceTest, MapOutputsRoutedToReducers) {
  ShuffleService svc;
  const uint64_t id = svc.NewShuffle(2, 2);
  svc.PutMapOutput(id, 0, 0, MakeBuffer({32, 48}, 0));
  svc.PutMapOutput(id, 0, 1, MakeBuffer({16}, 0));
  svc.PutMapOutput(id, 1, 0, MakeBuffer({64}, 1));

  auto r0 = svc.FetchReduceInputs(id, 0);
  ASSERT_EQ(r0.size(), 2u);
  EXPECT_EQ(r0[0]->num_rows, 2u);
  EXPECT_EQ(r0[1]->num_rows, 1u);
  EXPECT_EQ(svc.BytesForReduce(id, 0), 32u + 48 + 64);

  auto r1 = svc.FetchReduceInputs(id, 1);
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_EQ(svc.BytesForReduce(id, 1), 16u);
  EXPECT_EQ(svc.TotalBytes(id), 160u);
}

TEST(ShuffleServiceTest, EmptyOutputsSkipped) {
  ShuffleService svc;
  const uint64_t id = svc.NewShuffle(3, 1);
  svc.PutMapOutput(id, 1, 0, MakeBuffer({24}, 0));
  auto inputs = svc.FetchReduceInputs(id, 0);
  EXPECT_EQ(inputs.size(), 1u);
}

TEST(ShuffleServiceTest, ReaderWalksRows) {
  ShuffleBuffer buf = MakeBuffer({24, 40, 16}, 0);
  ShuffleBufferReader reader(buf);
  std::vector<uint32_t> sizes;
  while (reader.HasNext()) {
    const uint8_t* row = reader.Next();
    uint32_t size;
    std::memcpy(&size, row, sizeof(size));
    sizes.push_back(size);
  }
  EXPECT_EQ(sizes, (std::vector<uint32_t>{24, 40, 16}));
}

TEST(ShuffleServiceTest, ReleaseFreesShuffle) {
  ShuffleService svc;
  const uint64_t id = svc.NewShuffle(1, 1);
  svc.PutMapOutput(id, 0, 0, MakeBuffer({32}, 0));
  svc.Release(id);
  EXPECT_DEATH(svc.BytesForReduce(id, 0), "unknown shuffle");
}

// ---- Cluster facade --------------------------------------------------------------

TEST(ClusterTest, RunStageExecutesAllTasks) {
  Cluster cluster(SmallCluster(2, 2, 2));
  std::atomic<int> executed{0};
  StageSpec stage;
  stage.name = "count";
  for (int i = 0; i < 10; ++i) {
    stage.tasks.push_back(TaskSpec{
        kAnyExecutor, {}, 0, [&](TaskContext&) {
          executed++;
          return Status::OK();
        }, {}});
  }
  auto metrics = cluster.RunStage(stage);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(executed.load(), 10);
  EXPECT_EQ(metrics->num_tasks, 10u);
  EXPECT_GT(metrics->real_seconds, 0.0);
  EXPECT_GT(metrics->simulated_seconds, 0.0);
}

TEST(ClusterTest, TaskFailureAbortsStage) {
  Cluster cluster(SmallCluster(1, 1, 1));
  StageSpec stage;
  stage.name = "failing";
  stage.tasks.push_back(TaskSpec{
      kAnyExecutor, {}, 0, [](TaskContext&) {
        return Status::Internal("task exploded");
      }, {}});
  auto metrics = cluster.RunStage(stage);
  EXPECT_FALSE(metrics.ok());
  EXPECT_EQ(metrics.status().code(), StatusCode::kInternal);
}

TEST(ClusterTest, HomePlacementDeterministicAndAlive) {
  Cluster cluster(SmallCluster(4, 2, 2));
  const ExecutorId home = cluster.HomeExecutorFor(7, 3);
  EXPECT_EQ(home, cluster.HomeExecutorFor(7, 3));
  EXPECT_TRUE(cluster.IsAlive(home));
  cluster.KillExecutor(home);
  const ExecutorId rehomed = cluster.HomeExecutorFor(7, 3);
  EXPECT_NE(rehomed, home);
  EXPECT_TRUE(cluster.IsAlive(rehomed));
}

TEST(ClusterTest, KillExecutorDropsBlocks) {
  Cluster cluster(SmallCluster(2, 2, 2));
  cluster.blocks().Put(BlockId{1, 0, 0}, 1, std::make_shared<TestBlock>(10));
  cluster.blocks().Put(BlockId{1, 1, 0}, 2, std::make_shared<TestBlock>(10));
  EXPECT_EQ(cluster.KillExecutor(1), 1u);
  EXPECT_FALSE(cluster.IsAlive(1));
  EXPECT_FALSE(cluster.blocks().Get(BlockId{1, 0, 0}).ok());
  EXPECT_TRUE(cluster.blocks().Get(BlockId{1, 1, 0}).ok());
  cluster.ReviveExecutor(1);
  EXPECT_TRUE(cluster.IsAlive(1));
}

TEST(ClusterTest, GetOrComputeFetchesExisting) {
  Cluster cluster(SmallCluster(2, 1, 1));
  cluster.blocks().Put(BlockId{5, 0, 0}, 0,
                       std::make_shared<TestBlock>(64, 42));
  TaskContext ctx(&cluster, 0);
  auto block = cluster.GetOrCompute(BlockId{5, 0, 0}, ctx);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(static_cast<const TestBlock*>(block->get())->payload(), 42);
  EXPECT_EQ(ctx.metrics().recovery_seconds, 0.0);
}

TEST(ClusterTest, GetOrComputeRemoteBlockChargesNetwork) {
  Cluster cluster(SmallCluster(2, 1, 1));
  cluster.blocks().Put(BlockId{5, 0, 0}, 1,
                       std::make_shared<TestBlock>(1 << 20, 42));
  TaskContext ctx(&cluster, 0);  // task on executor 0, block homed at 1
  auto block = cluster.GetOrCompute(BlockId{5, 0, 0}, ctx);
  ASSERT_TRUE(block.ok());
  ASSERT_EQ(ctx.reads().size(), 1u);
  EXPECT_EQ(ctx.reads()[0].source, 1u);
  EXPECT_EQ(ctx.reads()[0].bytes, 1u << 20);
}

TEST(ClusterTest, GetOrComputeRecomputesFromLineage) {
  // §III-D: a lost indexed partition is rebuilt by replaying its lineage.
  Cluster cluster(SmallCluster(2, 1, 1));
  const uint64_t rdd = cluster.NewRddId();
  std::atomic<int> recomputes{0};
  cluster.RegisterLineage(
      rdd, [&](uint32_t partition, uint64_t version, TaskContext&) {
        recomputes++;
        return Result<BlockPtr>(std::make_shared<TestBlock>(
            32, static_cast<int>(partition * 100 + version)));
      });

  TaskContext ctx(&cluster, 0);
  auto block = cluster.GetOrCompute(BlockId{rdd, 3, 2}, ctx);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(static_cast<const TestBlock*>(block->get())->payload(), 302);
  EXPECT_EQ(recomputes.load(), 1);
  EXPECT_GE(ctx.metrics().recovery_seconds, 0.0);

  // Now cached: no second recompute.
  TaskContext ctx2(&cluster, 0);
  auto again = cluster.GetOrCompute(BlockId{rdd, 3, 2}, ctx2);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(recomputes.load(), 1);
}

TEST(ClusterTest, MissingBlockWithoutLineageIsUnavailable) {
  Cluster cluster(SmallCluster(1, 1, 1));
  TaskContext ctx(&cluster, 0);
  auto block = cluster.GetOrCompute(BlockId{777, 0, 0}, ctx);
  EXPECT_EQ(block.status().code(), StatusCode::kUnavailable);
}

TEST(ClusterTest, DeadPreferredExecutorFallsBack) {
  Cluster cluster(SmallCluster(2, 1, 1));
  cluster.KillExecutor(1);
  StageSpec stage;
  stage.name = "fallback";
  ExecutorId ran_on = kAnyExecutor;
  stage.tasks.push_back(TaskSpec{1, {}, 0, [&](TaskContext& ctx) {
                                   ran_on = ctx.executor();
                                   return Status::OK();
                                 }, {}});
  ASSERT_TRUE(cluster.RunStage(stage).ok());
  EXPECT_EQ(ran_on, 0u);
}

TEST(ClusterTest, DeadExecutorTasksRoundRobinAcrossAlive) {
  // Regression: tasks whose home executor died used to all pile onto
  // AliveExecutors()[0]; they must spread round-robin over the alive set.
  Cluster cluster(SmallCluster(2, 2, 1));  // executors 0..3
  cluster.KillExecutor(0);
  StageSpec stage;
  stage.name = "spread";
  std::vector<ExecutorId> ran_on(8, kAnyExecutor);
  for (uint32_t i = 0; i < 8; ++i) {
    stage.tasks.push_back(TaskSpec{0, {}, 0, [&, i](TaskContext& ctx) {
                                     ran_on[i] = ctx.executor();
                                     return Status::OK();
                                   }, {}});
  }
  ASSERT_TRUE(cluster.RunStage(stage).ok());
  const std::vector<ExecutorId> expected{1, 2, 3, 1, 2, 3, 1, 2};
  EXPECT_EQ(ran_on, expected);
}

TEST(ClusterTest, ParallelStageMatchesSequentialTotals) {
  // The scheduler contract: metrics totals and executor assignment are
  // identical whether tasks ran on 1 host thread or 4.
  auto run = [](uint32_t threads) {
    ClusterConfig config = SmallCluster(2, 2, 2);
    config.scheduler_threads = threads;
    Cluster cluster(config);
    StageSpec stage;
    stage.name = "parity";
    for (uint32_t i = 0; i < 16; ++i) {
      stage.tasks.push_back(TaskSpec{
          static_cast<ExecutorId>(i % 4), {}, 0, [i](TaskContext& ctx) {
            ctx.metrics().rows_read += 10 * (i + 1);
            ctx.metrics().index_probes += i;
            ctx.metrics().index_hits += i / 2;
            return Status::OK();
          }, {}});
    }
    auto metrics = cluster.RunStage(stage);
    EXPECT_TRUE(metrics.ok());
    return *metrics;
  };
  obs::Counter& tasks = obs::Registry::Global().GetCounter("engine.tasks");
  const uint64_t before_seq = tasks.value();
  const StageMetrics seq = run(1);
  const uint64_t before_par = tasks.value();
  EXPECT_EQ(before_par - before_seq, 16u);
  const StageMetrics par = run(4);
  EXPECT_EQ(tasks.value() - before_par, 16u);
  EXPECT_EQ(par.num_tasks, seq.num_tasks);
  EXPECT_EQ(par.totals.rows_read, seq.totals.rows_read);
  EXPECT_EQ(par.totals.index_probes, seq.totals.index_probes);
  EXPECT_EQ(par.totals.index_hits, seq.totals.index_hits);
}

TEST(ClusterTest, ParallelFirstErrorWinsAndCancelsRemainder) {
  ClusterConfig config = SmallCluster(2, 2, 2);
  config.scheduler_threads = 4;
  Cluster cluster(config);
  StageSpec stage;
  stage.name = "failing-parallel";
  std::atomic<int> executed{0};
  for (uint32_t i = 0; i < 64; ++i) {
    stage.tasks.push_back(
        TaskSpec{kAnyExecutor, {}, 0, [&, i](TaskContext&) -> Status {
          executed++;
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          if (i == 5) return Status::Internal("task 5 exploded");
          return Status::OK();
        }, {}});
  }
  auto metrics = cluster.RunStage(stage);
  ASSERT_FALSE(metrics.ok());
  EXPECT_EQ(metrics.status().code(), StatusCode::kInternal);
  EXPECT_NE(metrics.status().message().find("failing-parallel"),
            std::string::npos);
  // Cancellation: the failure surfaces long before all 64 ran.
  EXPECT_LT(executed.load(), 64);
}

TEST(ClusterTest, NestedStageFromTaskBodyRunsInline) {
  // A task body that launches its own stage must not deadlock the pool:
  // nested stages execute in-line on the calling worker.
  ClusterConfig config = SmallCluster(2, 2, 2);
  config.scheduler_threads = 4;
  Cluster cluster(config);
  std::atomic<int> inner_runs{0};
  StageSpec outer;
  outer.name = "outer";
  for (uint32_t i = 0; i < 4; ++i) {
    outer.tasks.push_back(
        TaskSpec{kAnyExecutor, {}, 0, [&](TaskContext& ctx) {
          StageSpec inner;
          inner.name = "inner";
          for (int j = 0; j < 2; ++j) {
            inner.tasks.push_back(
                TaskSpec{kAnyExecutor, {}, 0, [&](TaskContext&) {
                  inner_runs++;
                  return Status::OK();
                }, {}});
          }
          return ctx.cluster().RunStage(inner).status();
        }, {}});
  }
  ASSERT_TRUE(cluster.RunStage(outer).ok());
  EXPECT_EQ(inner_runs.load(), 8);
}

// ---- stage scheduler primitives ------------------------------------------

TEST(SchedulerTest, TaskLanesHomeFirstThenStealOldestFromLongest) {
  // tasks 0..4 on lanes 0,1,1,1,0 → lane0 = {0,4}, lane1 = {1,2,3}.
  TaskLanes lanes({0, 1, 1, 1, 0}, 2);
  uint32_t idx = 0;
  bool stolen = false;
  ASSERT_TRUE(lanes.Pop(0, &idx, &stolen));
  EXPECT_EQ(idx, 0u);
  EXPECT_FALSE(stolen);
  ASSERT_TRUE(lanes.Pop(0, &idx, &stolen));
  EXPECT_EQ(idx, 4u);
  EXPECT_FALSE(stolen);
  // Home lane dry: steal the oldest task of the longest other lane.
  ASSERT_TRUE(lanes.Pop(0, &idx, &stolen));
  EXPECT_EQ(idx, 1u);
  EXPECT_TRUE(stolen);
  ASSERT_TRUE(lanes.Pop(1, &idx, &stolen));
  EXPECT_EQ(idx, 2u);
  EXPECT_FALSE(stolen);
  ASSERT_TRUE(lanes.Pop(1, &idx, &stolen));
  EXPECT_EQ(idx, 3u);
  EXPECT_FALSE(stolen);
  EXPECT_FALSE(lanes.Pop(0, &idx, &stolen));
}

TEST(SchedulerTest, ResolveSchedulerThreadsHonorsConfigAndEnv) {
  ClusterConfig c = SmallCluster(2, 2, 1);
  c.scheduler_threads = 3;
  EXPECT_EQ(ResolveSchedulerThreads(c), 3u);
  c.scheduler_threads = 0;
  const uint32_t auto_threads = ResolveSchedulerThreads(c);
  EXPECT_GE(auto_threads, 1u);
  EXPECT_LE(auto_threads, c.total_executors());
  // IDF_PARALLEL is the debugging escape hatch and beats the config knob.
  c.scheduler_threads = 8;
  setenv("IDF_PARALLEL", "0", 1);
  EXPECT_EQ(ResolveSchedulerThreads(c), 1u);
  setenv("IDF_PARALLEL", "6", 1);
  EXPECT_EQ(ResolveSchedulerThreads(c), 6u);
  unsetenv("IDF_PARALLEL");
}

TEST(ClusterTest, StaleVersionNeverServed) {
  // End-to-end §III-D scenario: partition recomputed on another executor at
  // version 0 (duplicate), then appended to (version 1). A task requiring
  // version 1 must not get the stale replica.
  Cluster cluster(SmallCluster(2, 1, 1));
  const uint64_t rdd = cluster.NewRddId();
  // Original copy and a stale duplicate on another executor, both v0.
  cluster.blocks().Put(BlockId{rdd, 0, 0}, 0,
                       std::make_shared<TestBlock>(8, 1000));
  cluster.blocks().Put(BlockId{rdd, 0, 0}, 1,
                       std::make_shared<TestBlock>(8, 1000));
  // Append produced v1 on executor 0 only.
  cluster.blocks().Put(BlockId{rdd, 0, 1}, 0,
                       std::make_shared<TestBlock>(8, 2000));

  TaskContext ctx(&cluster, 1);
  auto got = cluster.GetOrCompute(BlockId{rdd, 0, 1}, ctx);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(static_cast<const TestBlock*>(got->get())->payload(), 2000);
}

}  // namespace
}  // namespace idf
