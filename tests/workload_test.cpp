// Tests for the workload generators: determinism (lineage-safety), schema
// shapes, cardinalities, skew properties, planted selectivities, and the
// SNB short-query analogues end-to-end on indexed and vanilla tables.
#include <gtest/gtest.h>

#include <map>

#include "core/indexed_dataframe.h"
#include "workload/broconn.h"
#include "workload/flights.h"
#include "workload/snb.h"
#include "workload/tpcds.h"

namespace idf {
namespace {

SessionOptions SmallOptions() {
  SessionOptions opts;
  opts.cluster.num_workers = 2;
  opts.cluster.executors_per_worker = 2;
  opts.cluster.cores_per_executor = 2;
  opts.default_partitions = 4;
  return opts;
}

// ---- SNB -------------------------------------------------------------------

SnbConfig TinySnb() {
  SnbConfig config;
  config.num_vertices = 2000;
  config.num_edges = 20000;
  config.partitions = 4;
  return config;
}

TEST(SnbTest, EdgeRowsDeterministic) {
  SnbGenerator g(TinySnb());
  for (uint64_t i : {0ull, 1ull, 999ull}) {
    RowVec a = g.EdgeRow(i);
    RowVec b = g.EdgeRow(i);
    EXPECT_EQ(a[0], b[0]);
    EXPECT_EQ(a[1], b[1]);
    EXPECT_EQ(a[2], b[2]);
  }
}

TEST(SnbTest, EdgeAndVertexCardinalities) {
  Session session(SmallOptions());
  SnbGenerator g(TinySnb());
  auto edges = *g.Edges(session);
  auto vertices = *g.Vertices(session);
  EXPECT_EQ(*edges.Count(), 20000u);
  EXPECT_EQ(*vertices.Count(), 2000u);
}

TEST(SnbTest, EdgeSourcesArePowerLaw) {
  Session session(SmallOptions());
  SnbGenerator g(TinySnb());
  auto edges = *g.Edges(session);
  auto degrees = edges.Agg({"edge_source"}, {AggSpec::Count("deg")}).Collect();
  ASSERT_TRUE(degrees.ok());
  // Zipf: far fewer distinct sources than edges, and the max degree is a
  // large multiple of the median.
  EXPECT_LT(degrees->rows.size(), 20000u / 2);
  int64_t max_deg = 0;
  for (const RowVec& row : degrees->rows) {
    max_deg = std::max(max_deg, row[1].int64_value());
  }
  EXPECT_GT(max_deg, 200);  // rank-0 vertex dominates
}

TEST(SnbTest, EdgeSampleSizeAndDomain) {
  Session session(SmallOptions());
  SnbGenerator g(TinySnb());
  auto sample = *g.EdgeSample(session, 500, 1);
  auto rows = sample.Collect();
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 500u);
  for (const RowVec& row : rows->rows) {
    EXPECT_LT(row[0].int64_value(), 2000);
  }
}

TEST(SnbTest, ScaleFactorHelper) {
  SnbConfig sf10 = SnbConfig::ScaleFactor(10);
  EXPECT_EQ(sf10.num_edges, 10000000u);
  // LDBC-like average degree of ~100.
  EXPECT_EQ(sf10.num_vertices, 100000u);
}

TEST(SnbTest, ShortQueriesRunOnVanillaAndIndexed) {
  Session session(SmallOptions());
  SnbGenerator g(TinySnb());
  auto edges = *g.Edges(session);
  auto vertices = *g.Vertices(session);
  auto indexed_edges = *IndexedDataFrame::Create(edges, "edge_source");
  auto indexed_vertices = *IndexedDataFrame::Create(vertices, "id");

  for (int q = 1; q <= 7; ++q) {
    auto vanilla =
        SnbShortQuery(q, edges, vertices, /*person_id=*/3).Collect();
    auto indexed = SnbShortQuery(q, indexed_edges.AsDataFrame(),
                                 indexed_vertices.AsDataFrame(), 3)
                       .Collect();
    ASSERT_TRUE(vanilla.ok()) << "SQ" << q;
    ASSERT_TRUE(indexed.ok()) << "SQ" << q;
    EXPECT_EQ(indexed->SortedRowStrings(), vanilla->SortedRowStrings())
        << "SQ" << q;
  }
}

TEST(SnbTest, IndexedShortQueriesUseIndexWhereExpected) {
  Session session(SmallOptions());
  SnbGenerator g(TinySnb());
  auto edges = *g.Edges(session);
  auto vertices = *g.Vertices(session);
  auto ie = *IndexedDataFrame::Create(edges, "edge_source");
  auto iv = *IndexedDataFrame::Create(vertices, "id");

  // SQ2 should plan an index lookup on edges AND an indexed join on vertices.
  auto sq2 = SnbShortQuery(2, ie.AsDataFrame(), iv.AsDataFrame(), 3);
  auto plan = sq2.ExplainPhysical();
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("IndexLookupExec"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("IndexedJoinExec"), std::string::npos) << *plan;

  // SQ5 cannot use the index (non-equality filter).
  auto sq5 = SnbShortQuery(5, ie.AsDataFrame(), iv.AsDataFrame(), 3);
  auto plan5 = sq5.ExplainPhysical();
  ASSERT_TRUE(plan5.ok());
  EXPECT_EQ(plan5->find("IndexLookupExec"), std::string::npos);
  EXPECT_EQ(plan5->find("IndexedJoinExec"), std::string::npos);
}

// ---- TPC-DS ---------------------------------------------------------------

TEST(TpcdsTest, CardinalitiesScaleWithSf) {
  TpcdsConfig sf1;
  sf1.scale_factor = 1.0;
  TpcdsConfig sf4;
  sf4.scale_factor = 4.0;
  EXPECT_EQ(sf4.sales_rows(), 4 * sf1.sales_rows());
  EXPECT_EQ(sf4.date_rows, sf1.date_rows);  // date_dim constant, as in TPC-DS
}

TEST(TpcdsTest, TablesMaterialize) {
  Session session(SmallOptions());
  TpcdsConfig config;
  config.scale_factor = 0.05;  // 6000 rows
  config.partitions = 4;
  TpcdsGenerator g(config);
  auto sales = *g.StoreSales(session);
  auto dates = *g.DateDim(session);
  EXPECT_EQ(*sales.Count(), config.sales_rows());
  EXPECT_EQ(*dates.Count(), config.date_rows);
}

TEST(TpcdsTest, DateDimYearFilterSelectsOneYear) {
  Session session(SmallOptions());
  TpcdsConfig config;
  config.scale_factor = 0.01;
  TpcdsGenerator g(config);
  auto year = *g.DateDimForYear(session, TpcdsConfig::kTargetYear);
  auto rows = year.Collect();
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 365u);
  for (const RowVec& row : rows->rows) {
    EXPECT_EQ(row[1], Value::Int32(TpcdsConfig::kTargetYear));
  }
}

TEST(TpcdsTest, JoinKeysLandInDateDomain) {
  Session session(SmallOptions());
  TpcdsConfig config;
  config.scale_factor = 0.02;
  TpcdsGenerator g(config);
  auto sales = *g.StoreSales(session);
  auto rows = sales.Collect();
  ASSERT_TRUE(rows.ok());
  for (const RowVec& row : rows->rows) {
    EXPECT_GE(row[0].int32_value(), 0);
    EXPECT_LT(row[0].int32_value(), static_cast<int32_t>(config.date_rows));
  }
}

TEST(TpcdsTest, IndexedJoinMatchesVanilla) {
  Session session(SmallOptions());
  TpcdsConfig config;
  config.scale_factor = 0.05;
  TpcdsGenerator g(config);
  auto sales = *g.StoreSales(session);
  auto dates = *g.DateDimForYear(session, TpcdsConfig::kTargetYear);

  auto vanilla = sales.Join(dates, "ss_sold_date_sk", "d_date_sk").Collect();
  auto indexed = *IndexedDataFrame::Create(sales, "ss_sold_date_sk");
  auto fast = indexed.Join(dates, "d_date_sk").Collect();
  ASSERT_TRUE(vanilla.ok());
  ASSERT_TRUE(fast.ok());
  EXPECT_GT(vanilla->rows.size(), 0u);
  EXPECT_EQ(fast->SortedRowStrings(), vanilla->SortedRowStrings());
}

// ---- Flights ---------------------------------------------------------------

FlightsConfig TinyFlights() {
  FlightsConfig config;
  config.num_flights = 20000;
  config.num_planes = 300;
  config.partitions = 4;
  return config;
}

TEST(FlightsTest, PlantedSelectivities) {
  Session session(SmallOptions());
  FlightsGenerator g(TinyFlights());
  auto flights = *g.Flights(session);
  auto indexed = *IndexedDataFrame::Create(flights, "flight_num");
  EXPECT_EQ(indexed.GetRows(Value::Int32(FlightsConfig::kKey10))->rows.size(),
            10u);
  EXPECT_EQ(indexed.GetRows(Value::Int32(FlightsConfig::kKey100))->rows.size(),
            100u);
  EXPECT_EQ(
      indexed.GetRows(Value::Int32(FlightsConfig::kKey1000))->rows.size(),
      1000u);
}

TEST(FlightsTest, TailNumsJoinPlanes) {
  Session session(SmallOptions());
  FlightsGenerator g(TinyFlights());
  auto flights = *g.Flights(session);
  auto planes = *g.Planes(session);
  EXPECT_EQ(*planes.Count(), 300u);
  // Every flight references an existing plane: inner join keeps all rows.
  auto joined = flights.Join(planes, "tail_num", "tail_num");
  EXPECT_EQ(*joined.Count(), 20000u);
}

TEST(FlightsTest, StringIndexedJoinMatchesVanilla) {
  Session session(SmallOptions());
  FlightsGenerator g(TinyFlights());
  auto flights = *g.Flights(session);
  auto planes = *g.Planes(session);
  auto vanilla = flights.Join(planes, "tail_num", "tail_num").Collect();
  auto indexed = *IndexedDataFrame::Create(flights, "tail_num");
  auto fast = indexed.Join(planes, "tail_num").Collect();
  ASSERT_TRUE(vanilla.ok());
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast->SortedRowStrings(), vanilla->SortedRowStrings());
}

TEST(FlightsTest, FlightNumDomain) {
  Session session(SmallOptions());
  FlightsConfig config = TinyFlights();
  FlightsGenerator g(config);
  auto flights = *g.Flights(session);
  // Q3's probe: flight_num < 200 (Table II).
  auto subset = flights.Filter(Lt(Col("flight_num"), Lit(int32_t{200})));
  auto n = subset.Count();
  ASSERT_TRUE(n.ok());
  // ~ (200/8000) * (20000 - 1110) regular rows.
  EXPECT_GT(*n, 300u);
  EXPECT_LT(*n, 700u);
}

// ---- Broconn ---------------------------------------------------------------

BroconnConfig TinyBroconn() {
  BroconnConfig config;
  config.num_connections = 20000;
  config.num_hosts = 2000;
  config.partitions = 4;
  return config;
}

TEST(BroconnTest, ConnectionsMaterializeWithSkew) {
  Session session(SmallOptions());
  BroconnGenerator g(TinyBroconn());
  auto conns = *g.Connections(session);
  EXPECT_EQ(*conns.Count(), 20000u);
  auto per_host = conns.Agg({"src_ip"}, {AggSpec::Count("n")}).Collect();
  ASSERT_TRUE(per_host.ok());
  int64_t max_count = 0;
  for (const RowVec& row : per_host->rows) {
    max_count = std::max(max_count, row[1].int64_value());
  }
  EXPECT_GT(max_count, 400);  // heavy-hitter host
}

TEST(BroconnTest, WatchlistJoinFindsThreats) {
  Session session(SmallOptions());
  BroconnGenerator g(TinyBroconn());
  auto conns = *g.Connections(session);
  auto watchlist = *g.Watchlist(session, 50, 9);
  auto indexed = *IndexedDataFrame::Create(conns, "src_ip");
  auto hits = indexed.Join(watchlist, "ip").Collect();
  auto vanilla = conns.Join(watchlist, "src_ip", "ip").Collect();
  ASSERT_TRUE(hits.ok());
  ASSERT_TRUE(vanilla.ok());
  EXPECT_EQ(hits->SortedRowStrings(), vanilla->SortedRowStrings());
}

TEST(BroconnTest, SampleProbeJoin) {
  Session session(SmallOptions());
  BroconnGenerator g(TinyBroconn());
  auto conns = *g.Connections(session);
  auto sample = *g.ConnectionSample(session, 100, 3);
  auto indexed = *IndexedDataFrame::Create(conns, "src_ip");
  auto joined = indexed.Join(sample, "src_ip");
  auto n = joined.Count();
  ASSERT_TRUE(n.ok());
  // Probe keys are uniform over the host domain; most hosts carry traffic,
  // so the self-join multiplies out well beyond the sample size.
  EXPECT_GT(*n, 100u);
}

}  // namespace
}  // namespace idf
