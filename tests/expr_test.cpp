// Tests for the expression system: resolution, SQL three-valued logic,
// arithmetic, pattern matching helpers.
#include <gtest/gtest.h>

#include "sql/columnar.h"
#include "sql/expr.h"
#include "storage/partition_store.h"
#include "storage/row_layout.h"

namespace idf {
namespace {

SchemaPtr TestSchema() {
  return std::make_shared<Schema>(Schema({
      {"a", TypeId::kInt64, true},
      {"b", TypeId::kFloat64, true},
      {"s", TypeId::kString, true},
      {"flag", TypeId::kBool, true},
  }));
}

/// Accessor over a plain RowVec for direct expression testing.
class VecAccessor final : public RowAccessor {
 public:
  explicit VecAccessor(RowVec row) : row_(std::move(row)) {}
  Value Get(size_t col) const override { return row_.at(col); }

 private:
  RowVec row_;
};

ExprPtr Resolved(ExprPtr e) {
  auto r = e->Resolve(*TestSchema());
  IDF_CHECK_OK(r.status());
  return *r;
}

Value EvalOn(ExprPtr e, RowVec row) {
  return Resolved(std::move(e))->Eval(VecAccessor(std::move(row)));
}

RowVec SampleRow() {
  return {Value::Int64(10), Value::Float64(2.5), Value::String("xyz"),
          Value::Bool(true)};
}

TEST(ExprTest, ColumnResolution) {
  auto resolved = Col("b")->Resolve(*TestSchema());
  ASSERT_TRUE(resolved.ok());
  const auto& col = static_cast<const ColumnExpr&>(**resolved);
  EXPECT_TRUE(col.resolved());
  EXPECT_EQ(col.index(), 1);
}

TEST(ExprTest, UnknownColumnFailsResolution) {
  EXPECT_FALSE(Col("zzz")->Resolve(*TestSchema()).ok());
  EXPECT_FALSE(Eq(Col("zzz"), Lit(int64_t{1}))->Resolve(*TestSchema()).ok());
}

TEST(ExprTest, ComparisonOperators) {
  EXPECT_EQ(EvalOn(Eq(Col("a"), Lit(int64_t{10})), SampleRow()),
            Value::Bool(true));
  EXPECT_EQ(EvalOn(Ne(Col("a"), Lit(int64_t{10})), SampleRow()),
            Value::Bool(false));
  EXPECT_EQ(EvalOn(Lt(Col("a"), Lit(int64_t{11})), SampleRow()),
            Value::Bool(true));
  EXPECT_EQ(EvalOn(Le(Col("a"), Lit(int64_t{10})), SampleRow()),
            Value::Bool(true));
  EXPECT_EQ(EvalOn(Gt(Col("a"), Lit(int64_t{10})), SampleRow()),
            Value::Bool(false));
  EXPECT_EQ(EvalOn(Ge(Col("a"), Lit(int64_t{10})), SampleRow()),
            Value::Bool(true));
}

TEST(ExprTest, CrossTypeNumericComparison) {
  EXPECT_EQ(EvalOn(Eq(Col("a"), Lit(10.0)), SampleRow()), Value::Bool(true));
  EXPECT_EQ(EvalOn(Lt(Col("b"), Lit(int64_t{3})), SampleRow()),
            Value::Bool(true));
}

TEST(ExprTest, StringComparison) {
  EXPECT_EQ(EvalOn(Eq(Col("s"), Lit("xyz")), SampleRow()), Value::Bool(true));
  EXPECT_EQ(EvalOn(Lt(Col("s"), Lit("zzz")), SampleRow()), Value::Bool(true));
}

TEST(ExprTest, NullComparisonYieldsNull) {
  RowVec row{Value::Null(TypeId::kInt64), Value::Float64(1), Value::String(""),
             Value::Bool(false)};
  const Value v = EvalOn(Eq(Col("a"), Lit(int64_t{1})), row);
  EXPECT_TRUE(v.is_null());
}

TEST(ExprTest, ThreeValuedAnd) {
  RowVec null_row{Value::Null(TypeId::kInt64), Value::Float64(1),
                  Value::String(""), Value::Bool(false)};
  // null AND false = false (not null).
  const Value v = EvalOn(
      And(Eq(Col("a"), Lit(int64_t{1})), Eq(Col("b"), Lit(2.0))), null_row);
  EXPECT_FALSE(v.is_null());
  EXPECT_FALSE(v.bool_value());
  // null AND true = null.
  const Value w = EvalOn(
      And(Eq(Col("a"), Lit(int64_t{1})), Eq(Col("b"), Lit(1.0))), null_row);
  EXPECT_TRUE(w.is_null());
}

TEST(ExprTest, ThreeValuedOr) {
  RowVec null_row{Value::Null(TypeId::kInt64), Value::Float64(1),
                  Value::String(""), Value::Bool(false)};
  // null OR true = true.
  const Value v = EvalOn(
      Or(Eq(Col("a"), Lit(int64_t{1})), Eq(Col("b"), Lit(1.0))), null_row);
  EXPECT_EQ(v, Value::Bool(true));
  // null OR false = null.
  const Value w = EvalOn(
      Or(Eq(Col("a"), Lit(int64_t{1})), Eq(Col("b"), Lit(9.0))), null_row);
  EXPECT_TRUE(w.is_null());
}

TEST(ExprTest, NotSemantics) {
  EXPECT_EQ(EvalOn(Not(Eq(Col("a"), Lit(int64_t{10}))), SampleRow()),
            Value::Bool(false));
  RowVec null_row{Value::Null(TypeId::kInt64), Value::Float64(1),
                  Value::String(""), Value::Bool(false)};
  EXPECT_TRUE(EvalOn(Not(Eq(Col("a"), Lit(int64_t{1}))), null_row).is_null());
}

TEST(ExprTest, IsNullOperators) {
  RowVec null_row{Value::Null(TypeId::kInt64), Value::Float64(1),
                  Value::String(""), Value::Bool(false)};
  EXPECT_EQ(EvalOn(IsNull(Col("a")), null_row), Value::Bool(true));
  EXPECT_EQ(EvalOn(IsNotNull(Col("a")), null_row), Value::Bool(false));
  EXPECT_EQ(EvalOn(IsNull(Col("a")), SampleRow()), Value::Bool(false));
}

TEST(ExprTest, IntegerArithmetic) {
  EXPECT_EQ(EvalOn(Add(Col("a"), Lit(int64_t{5})), SampleRow()),
            Value::Int64(15));
  EXPECT_EQ(EvalOn(Sub(Col("a"), Lit(int64_t{3})), SampleRow()),
            Value::Int64(7));
  EXPECT_EQ(EvalOn(Mul(Col("a"), Lit(int64_t{3})), SampleRow()),
            Value::Int64(30));
  EXPECT_EQ(EvalOn(Div(Col("a"), Lit(int64_t{3})), SampleRow()),
            Value::Int64(3));
}

TEST(ExprTest, DivisionByZeroIsNull) {
  EXPECT_TRUE(EvalOn(Div(Col("a"), Lit(int64_t{0})), SampleRow()).is_null());
  EXPECT_TRUE(EvalOn(Div(Col("b"), Lit(0.0)), SampleRow()).is_null());
}

TEST(ExprTest, FloatArithmetic) {
  const Value v = EvalOn(Mul(Col("b"), Lit(2.0)), SampleRow());
  EXPECT_DOUBLE_EQ(v.float64_value(), 5.0);
  const Value mixed = EvalOn(Add(Col("a"), Lit(0.5)), SampleRow());
  EXPECT_DOUBLE_EQ(mixed.float64_value(), 10.5);
}

TEST(ExprTest, ToStringRendersTree) {
  const std::string s =
      And(Eq(Col("a"), Lit(int64_t{1})), Gt(Col("b"), Lit(2.0)))->ToString();
  EXPECT_EQ(s, "((a = 1) AND (b > 2))");
}

TEST(ExprTest, MatchColumnEqualsLiteral) {
  auto m1 = MatchColumnEqualsLiteral(*Eq(Col("a"), Lit(int64_t{7})));
  ASSERT_TRUE(m1.has_value());
  EXPECT_EQ(m1->column, "a");
  EXPECT_EQ(m1->literal, Value::Int64(7));

  // Reversed operand order matches too.
  auto m2 = MatchColumnEqualsLiteral(*Eq(Lit("x"), Col("s")));
  ASSERT_TRUE(m2.has_value());
  EXPECT_EQ(m2->column, "s");

  EXPECT_FALSE(MatchColumnEqualsLiteral(*Lt(Col("a"), Lit(int64_t{7}))));
  EXPECT_FALSE(MatchColumnEqualsLiteral(*Eq(Col("a"), Col("s"))));
  EXPECT_FALSE(
      MatchColumnEqualsLiteral(*Eq(Lit(int64_t{1}), Lit(int64_t{1}))));
}

TEST(ExprTest, IsConstant) {
  EXPECT_TRUE(IsConstant(*Add(Lit(int64_t{1}), Lit(int64_t{2}))));
  EXPECT_FALSE(IsConstant(*Add(Col("a"), Lit(int64_t{2}))));
}

TEST(ExprTest, CollectColumns) {
  std::vector<std::string> cols;
  And(Eq(Col("a"), Lit(int64_t{1})), Gt(Col("b"), Col("a")))
      ->CollectColumns(cols);
  EXPECT_EQ(cols, (std::vector<std::string>{"a", "b", "a"}));
}

TEST(ExprTest, ChunkRowAccessor) {
  ColumnarChunk chunk(TestSchema());
  IDF_CHECK_OK(chunk.AppendRow(SampleRow()));
  ChunkRowAccessor accessor(chunk, 0);
  EXPECT_EQ(accessor.Get(0), Value::Int64(10));
  EXPECT_EQ(accessor.Get(2), Value::String("xyz"));
  auto resolved = Resolved(Gt(Col("a"), Lit(int64_t{5})));
  EXPECT_EQ(resolved->Eval(accessor), Value::Bool(true));
}

TEST(ExprTest, BinaryRowAccessor) {
  RowLayout layout(TestSchema());
  PartitionStore store(4096);
  auto ptr = store.AppendRow(layout, SampleRow(), PackedRowPtr::Null());
  ASSERT_TRUE(ptr.ok());
  BinaryRowAccessor accessor(layout, store.RowAt(*ptr));
  EXPECT_EQ(accessor.Get(0), Value::Int64(10));
  EXPECT_EQ(accessor.Get(3), Value::Bool(true));
  auto resolved = Resolved(Eq(Col("s"), Lit("xyz")));
  EXPECT_EQ(resolved->Eval(accessor), Value::Bool(true));
}

}  // namespace
}  // namespace idf
