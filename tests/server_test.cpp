// Query-service test suite (src/server/query_service.h, docs/SERVER.md).
//
// The acceptance gate for concurrent serving: M concurrent queries — mixed
// indexed lookups, joins, and appends over shared indexed tables, run under
// a 25% memory budget — must produce byte-identical per-query results to
// the same queries run serially. Plus: admission control (queue / reject /
// queue-overflow), cooperative cancellation and deadline expiry mid-stage
// and mid-pipelined-shuffle, and the invariant that a cancelled query
// releases its reservation, leaks no pins or orphan blocks, and leaves
// shared state usable for every later query.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/indexed_dataframe.h"
#include "mem/governor.h"
#include "obs/metrics_registry.h"
#include "server/query_service.h"
#include "sql/columnar.h"
#include "sql/session.h"
#include "testing/chaos.h"

namespace idf {
namespace {

using server::AdmitPolicy;
using server::QueryHandle;
using server::QueryOptions;
using server::QueryService;
using server::QueryServiceConfig;
using server::QueryState;

/// Installs chaos-bus hooks for the enclosing scope; always clears on exit.
class ScopedHooks {
 public:
  explicit ScopedHooks(chaos::ChaosHooks hooks) {
    chaos::ChaosEngine::SetHooks(std::move(hooks));
  }
  ~ScopedHooks() { chaos::ChaosEngine::SetHooks({}); }
  ScopedHooks(const ScopedHooks&) = delete;
  ScopedHooks& operator=(const ScopedHooks&) = delete;
};

/// One-shot gate: workers block in Wait() until Open() fires.
class Gate {
 public:
  void Open() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

SchemaPtr EdgeSchema() {
  return std::make_shared<Schema>(Schema({
      {"src", TypeId::kInt64, false},
      {"dst", TypeId::kInt64, false},
      {"weight", TypeId::kFloat64, true},
  }));
}

RowVec Edge(int64_t src, int64_t dst, double w = 1.0) {
  return {Value::Int64(src), Value::Int64(dst), Value::Float64(w)};
}

std::vector<RowVec> DenseEdges(int64_t n, int64_t salt = 0) {
  std::vector<RowVec> rows;
  rows.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back(
        Edge((i + salt) % 97, i, 0.25 * static_cast<double>(i + salt)));
  }
  return rows;
}

SessionOptions ServeClusterOptions() {
  ::unsetenv("IDF_MEMORY_BUDGET");
  SessionOptions opts;
  opts.cluster.num_workers = 2;
  opts.cluster.executors_per_worker = 2;
  opts.cluster.cores_per_executor = 2;
  opts.default_partitions = 4;
  return opts;
}

QueryServiceConfig ServeConfig(uint32_t workers, AdmitPolicy policy,
                               uint64_t reservation = 1 << 20,
                               uint32_t max_queue = 64) {
  QueryServiceConfig config;
  config.workers = workers;
  config.max_queue = max_queue;
  config.default_reservation_bytes = reservation;
  config.policy = policy;
  return config;
}

// ---- determinism gate -------------------------------------------------------

TEST(ServerTest, ConcurrentMixedQueriesMatchSerialUnderBudget) {
  constexpr int64_t kRows = 8000;
  Session session(ServeClusterOptions());
  IndexOptions index_options;
  index_options.batch_capacity = 4 << 10;

  auto edges = *session.CreateTable("edges", EdgeSchema(), DenseEdges(kRows));
  auto probe = *session.CreateTable("probe", EdgeSchema(), DenseEdges(300));
  auto indexed = *IndexedDataFrame::Create(edges, "src", index_options);
  indexed.RegisterAs("indexed_edges");
  auto extra_a = *session.CreateTable("extra_a", EdgeSchema(),
                                      DenseEdges(1200, /*salt=*/7));
  auto extra_b = *session.CreateTable("extra_b", EdgeSchema(),
                                      DenseEdges(900, /*salt=*/31));

  // The mixed workload: 4 indexed lookups (SQL), 2 indexed joins, 2 appends
  // (each reads back a key from its own new version). Every body is a pure
  // function of shared *immutable* versions, so serial and concurrent runs
  // must agree byte for byte.
  struct Mixed {
    std::string name;
    server::QueryWork work;
  };
  auto lookup_sql = [](int64_t key) {
    return "SELECT * FROM indexed_edges WHERE src = " + std::to_string(key);
  };
  auto sql_work = [](std::string sql) {
    return [sql](server::QueryContext& ctx) -> Status {
      IDF_ASSIGN_OR_RETURN(DataFrame df, ctx.session.Sql(sql));
      IDF_ASSIGN_OR_RETURN(ctx.result, df.Collect());
      return Status::OK();
    };
  };
  auto join_work = [&indexed](DataFrame probe_df) {
    return [&indexed, probe_df](server::QueryContext& ctx) -> Status {
      IDF_ASSIGN_OR_RETURN(ctx.result,
                           indexed.Join(probe_df, "src").Collect());
      return Status::OK();
    };
  };
  auto append_work = [&indexed](DataFrame rows, int64_t readback_key) {
    return [&indexed, rows, readback_key](server::QueryContext& ctx) -> Status {
      IDF_ASSIGN_OR_RETURN(IndexedDataFrame next, indexed.AppendRows(rows));
      IDF_ASSIGN_OR_RETURN(ctx.result, next.GetRows(Value::Int64(readback_key)));
      return Status::OK();
    };
  };
  std::vector<Mixed> workload;
  for (int64_t key : {13, 42, 64, 96}) {
    workload.push_back({"lookup_" + std::to_string(key),
                        sql_work(lookup_sql(key))});
  }
  workload.push_back({"join_probe", join_work(probe)});
  workload.push_back({"join_extra", join_work(extra_b)});
  workload.push_back({"append_a", append_work(extra_a, 7)});
  workload.push_back({"append_b", append_work(extra_b, 31)});

  // Serial reference: same bodies, one at a time, no budget.
  std::vector<std::vector<std::string>> expected;
  for (Mixed& m : workload) {
    QueryControl control;
    server::QueryContext ctx{0, control, session, {}};
    ASSERT_TRUE(m.work(ctx).ok()) << m.name;
    expected.push_back(ctx.result.SortedRowStrings());
    EXPECT_FALSE(expected.back().empty()) << m.name;
  }

  // Concurrent run at a 25% budget: three quarters of the working set must
  // spill and fault back in while 4 drivers race over it. Reservations are
  // sized so all 4 drivers can admit inside the shrunken budget — the
  // governor's eviction machinery provides the pressure, not admission.
  mem::MemoryGovernor& gov = mem::MemoryGovernor::Global();
  const uint64_t resident = gov.resident_bytes();
  const uint64_t budget_bytes = std::max<uint64_t>(resident / 4, 256 << 10);
  mem::ScopedBudget budget(budget_bytes);

  QueryService service(session, ServeConfig(/*workers=*/4, AdmitPolicy::kQueue,
                                            /*reservation=*/budget_bytes / 8));
  std::vector<QueryHandle> handles;
  for (Mixed& m : workload) {
    QueryOptions options;
    options.label = m.name;
    handles.push_back(service.Submit(m.work, options));
  }
  for (size_t i = 0; i < handles.size(); ++i) {
    ASSERT_TRUE(handles[i].Wait().ok())
        << workload[i].name << ": " << handles[i].status().ToString();
    Result<CollectedTable> result = handles[i].TakeResult();
    ASSERT_TRUE(result.ok()) << workload[i].name;
    EXPECT_EQ(result->SortedRowStrings(), expected[i]) << workload[i].name;
  }
  service.Shutdown(/*cancel_pending=*/false);
  EXPECT_EQ(gov.reserved_bytes(), 0u);
}

// ---- admission control ------------------------------------------------------

TEST(ServerTest, QueuePolicyHoldsQueriesUntilReservationsRelease) {
  Session session(ServeClusterOptions());
  mem::MemoryGovernor& gov = mem::MemoryGovernor::Global();
  const uint64_t budget_bytes = gov.resident_bytes() + (64 << 20);
  mem::ScopedBudget budget(budget_bytes);
  // Two reservations of half the budget fit exactly; a third must wait.
  const uint64_t reservation = budget_bytes / 2;

  QueryService service(
      session, ServeConfig(/*workers=*/3, AdmitPolicy::kQueue, reservation));
  Gate gate;
  auto blocking = [&gate](server::QueryContext&) -> Status {
    gate.Wait();
    return Status::OK();
  };
  QueryHandle a = service.Submit(blocking, {});
  QueryHandle b = service.Submit(blocking, {});
  QueryHandle c = service.Submit(blocking, {});

  // a and b admit (2 * reservation == budget); c cannot reserve until one
  // of them finishes, even though a worker is free for it.
  while (gov.reserved_bytes() < 2 * reservation) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(c.Done());
  EXPECT_EQ(gov.reserved_bytes(), 2 * reservation);

  gate.Open();
  EXPECT_TRUE(a.Wait().ok());
  EXPECT_TRUE(b.Wait().ok());
  EXPECT_TRUE(c.Wait().ok());
  service.Shutdown(/*cancel_pending=*/false);
  EXPECT_EQ(gov.reserved_bytes(), 0u);
}

TEST(ServerTest, RejectPolicyFailsOversubscribedQueriesCleanly) {
  Session session(ServeClusterOptions());
  mem::MemoryGovernor& gov = mem::MemoryGovernor::Global();
  const uint64_t budget_bytes = gov.resident_bytes() + (64 << 20);
  mem::ScopedBudget budget(budget_bytes);
  const uint64_t reservation = budget_bytes / 2;

  QueryService service(
      session, ServeConfig(/*workers=*/3, AdmitPolicy::kReject, reservation));
  Gate gate;
  auto blocking = [&gate](server::QueryContext&) -> Status {
    gate.Wait();
    return Status::OK();
  };
  QueryHandle a = service.Submit(blocking, {});
  QueryHandle b = service.Submit(blocking, {});
  while (gov.reserved_bytes() < 2 * reservation) {
    std::this_thread::yield();
  }
  // Third query cannot reserve -> immediate clean kResourceExhausted.
  QueryHandle c = service.Submit(blocking, {});
  Status rejected = c.Wait();
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(c.state(), QueryState::kRejected);

  // A reservation larger than the whole budget rejects under either policy.
  QueryOptions oversized;
  oversized.reservation_bytes = budget_bytes + 1;
  QueryHandle d = service.Submit(blocking, oversized);
  EXPECT_EQ(d.Wait().code(), StatusCode::kResourceExhausted);

  gate.Open();
  EXPECT_TRUE(a.Wait().ok());
  EXPECT_TRUE(b.Wait().ok());
  service.Shutdown(/*cancel_pending=*/false);
  EXPECT_EQ(gov.reserved_bytes(), 0u);
}

TEST(ServerTest, FullAdmissionQueueRejectsNewWork) {
  Session session(ServeClusterOptions());
  QueryService service(session,
                       ServeConfig(/*workers=*/1, AdmitPolicy::kQueue,
                                   /*reservation=*/1 << 20, /*max_queue=*/1));
  Gate gate;
  auto blocking = [&gate](server::QueryContext&) -> Status {
    gate.Wait();
    return Status::OK();
  };
  QueryHandle running = service.Submit(blocking, {});
  // Wait for the only worker to pick the first query up so the next Submit
  // lands in the (empty) queue rather than racing it.
  while (running.state() == QueryState::kQueued) {
    std::this_thread::yield();
  }
  QueryHandle queued = service.Submit(blocking, {});
  QueryHandle overflow = service.Submit(blocking, {});
  Status rejected = overflow.Wait();
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(overflow.state(), QueryState::kRejected);

  gate.Open();
  EXPECT_TRUE(running.Wait().ok());
  EXPECT_TRUE(queued.Wait().ok());
  service.Shutdown(/*cancel_pending=*/false);
}

// ---- cancellation & deadlines ----------------------------------------------

TEST(ServerTest, CancelMidStageReleasesEverythingAndSparesNeighbors) {
  constexpr int64_t kRows = 8000;
  Session session(ServeClusterOptions());
  IndexOptions index_options;
  index_options.batch_capacity = 4 << 10;
  auto edges = *session.CreateTable("edges", EdgeSchema(), DenseEdges(kRows));
  auto probe = *session.CreateTable("probe", EdgeSchema(), DenseEdges(400));
  auto indexed = *IndexedDataFrame::Create(edges, "src", index_options);

  const std::vector<std::string> expected =
      indexed.Join(probe, "src").Collect()->SortedRowStrings();
  mem::MemoryGovernor& gov = mem::MemoryGovernor::Global();
  const uint64_t reserved_before = gov.reserved_bytes();

  QueryService service(session,
                       ServeConfig(/*workers=*/2, AdmitPolicy::kQueue));

  // Deterministic mid-stage cancel: the Nth task boundary of the victim's
  // join stage fires Cancel() through the chaos bus's task-start hook. The
  // gate makes sure the handle exists before any task can run.
  Gate gate;
  QueryHandle victim;
  std::mutex handle_mu;
  std::atomic<int> task_starts{0};
  chaos::ChaosHooks hooks;
  hooks.on_task_start = [&] {
    if (task_starts.fetch_add(1) == 2) {
      std::lock_guard<std::mutex> lk(handle_mu);
      victim.Cancel();
    }
  };
  ScopedHooks guard(std::move(hooks));

  auto join_then_collect = [&](server::QueryContext& ctx) -> Status {
    gate.Wait();
    IDF_ASSIGN_OR_RETURN(ctx.result, indexed.Join(probe, "src").Collect());
    return Status::OK();
  };
  {
    std::lock_guard<std::mutex> lk(handle_mu);
    victim = service.Submit(join_then_collect, {});
  }
  gate.Open();
  Status status = victim.Wait();
  EXPECT_EQ(status.code(), StatusCode::kCancelled) << status.ToString();
  EXPECT_EQ(victim.state(), QueryState::kCancelled);
  EXPECT_GE(task_starts.load(), 3);

  // Everything released: reservation gone, and with the hook disarmed the
  // exact same query over the same shared tables is byte-identical — no
  // pins leaked, no shared state poisoned.
  chaos::ChaosEngine::SetHooks({});
  EXPECT_EQ(gov.reserved_bytes(), reserved_before);
  QueryHandle retry = service.Submit(
      [&](server::QueryContext& ctx) -> Status {
        IDF_ASSIGN_OR_RETURN(ctx.result, indexed.Join(probe, "src").Collect());
        return Status::OK();
      },
      {});
  ASSERT_TRUE(retry.Wait().ok()) << retry.status().ToString();
  EXPECT_EQ(retry.TakeResult()->SortedRowStrings(), expected);
  service.Shutdown(/*cancel_pending=*/false);
}

TEST(ServerTest, CancelMidPipelinedAppendLeavesNoOrphanVersion) {
  constexpr int64_t kRows = 6000;
  ::setenv("IDF_SHUFFLE_PIPELINE", "1", 1);
  Session session(ServeClusterOptions());
  IndexOptions index_options;
  index_options.batch_capacity = 4 << 10;
  auto edges = *session.CreateTable("edges", EdgeSchema(), DenseEdges(kRows));
  auto extra =
      *session.CreateTable("extra", EdgeSchema(), DenseEdges(2000, 11));
  auto indexed = *IndexedDataFrame::Create(edges, "src", index_options);

  const std::vector<uint64_t> versions_before = indexed.rdd()->Versions();
  mem::MemoryGovernor& gov = mem::MemoryGovernor::Global();
  const uint64_t reserved_before = gov.reserved_bytes();

  QueryService service(session,
                       ServeConfig(/*workers=*/2, AdmitPolicy::kQueue));

  // Cancel lands mid-append: inside the fused map+reduce shuffle stage, so
  // the unwind path exercises AbortStreaming (blocked producers/consumers
  // wake) and the orphan-version cleanup in IndexedRdd::Append.
  Gate gate;
  QueryHandle victim;
  std::mutex handle_mu;
  std::atomic<int> task_starts{0};
  chaos::ChaosHooks hooks;
  hooks.on_task_start = [&] {
    if (task_starts.fetch_add(1) == 3) {
      std::lock_guard<std::mutex> lk(handle_mu);
      victim.Cancel();
    }
  };
  ScopedHooks guard(std::move(hooks));

  {
    std::lock_guard<std::mutex> lk(handle_mu);
    victim = service.Submit(
        [&](server::QueryContext& ctx) -> Status {
          gate.Wait();
          IDF_ASSIGN_OR_RETURN(IndexedDataFrame next,
                               indexed.AppendRows(extra));
          IDF_ASSIGN_OR_RETURN(ctx.result, next.GetRows(Value::Int64(11)));
          return Status::OK();
        },
        {});
  }
  gate.Open();
  Status status = victim.Wait();
  EXPECT_EQ(status.code(), StatusCode::kCancelled) << status.ToString();
  chaos::ChaosEngine::SetHooks({});

  // The aborted append must leave no trace: version list unchanged, no
  // orphan blocks at the aborted version, reservation released.
  EXPECT_EQ(indexed.rdd()->Versions(), versions_before);
  BlockManager& blocks = session.cluster().blocks();
  for (uint32_t p = 0; p < indexed.num_partitions(); ++p) {
    for (uint64_t v : blocks.VersionsOf(indexed.rdd()->rdd_id(), p)) {
      EXPECT_LE(v, versions_before.back()) << "orphan block at partition " << p;
    }
  }
  EXPECT_EQ(gov.reserved_bytes(), reserved_before);

  // The same append now runs to completion on untouched shared state.
  QueryHandle retry = service.Submit(
      [&](server::QueryContext& ctx) -> Status {
        IDF_ASSIGN_OR_RETURN(IndexedDataFrame next, indexed.AppendRows(extra));
        IDF_ASSIGN_OR_RETURN(ctx.result, next.GetRows(Value::Int64(11)));
        return Status::OK();
      },
      {});
  ASSERT_TRUE(retry.Wait().ok()) << retry.status().ToString();
  EXPECT_FALSE(retry.TakeResult()->rows.empty());
  service.Shutdown(/*cancel_pending=*/false);
}

TEST(ServerTest, DeadlineExpiryMidQueryReturnsDeadlineExceeded) {
  constexpr int64_t kRows = 4000;
  Session session(ServeClusterOptions());
  auto edges = *session.CreateTable("edges", EdgeSchema(), DenseEdges(kRows));
  auto probe = *session.CreateTable("probe", EdgeSchema(), DenseEdges(200));
  IndexOptions index_options;
  index_options.batch_capacity = 4 << 10;
  auto indexed = *IndexedDataFrame::Create(edges, "src", index_options);
  mem::MemoryGovernor& gov = mem::MemoryGovernor::Global();
  const uint64_t reserved_before = gov.reserved_bytes();

  QueryService service(session,
                       ServeConfig(/*workers=*/2, AdmitPolicy::kQueue));
  // The work sleeps past its own deadline before launching a stage: the
  // stage-entry check fails deterministically, mid-query.
  QueryOptions options;
  options.deadline_seconds = 0.05;
  QueryHandle handle = service.Submit(
      [&](server::QueryContext& ctx) -> Status {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        IDF_ASSIGN_OR_RETURN(ctx.result, indexed.Join(probe, "src").Collect());
        return Status::OK();
      },
      options);
  Status status = handle.Wait();
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded) << status.ToString();
  EXPECT_EQ(handle.state(), QueryState::kExpired);
  EXPECT_EQ(gov.reserved_bytes(), reserved_before);

  // Unaffected neighbors: the same join still runs fine.
  QueryHandle after = service.Submit(
      [&](server::QueryContext& ctx) -> Status {
        IDF_ASSIGN_OR_RETURN(ctx.result, indexed.Join(probe, "src").Collect());
        return Status::OK();
      },
      {});
  EXPECT_TRUE(after.Wait().ok()) << after.status().ToString();
  service.Shutdown(/*cancel_pending=*/false);
}

TEST(ServerTest, QueuedQueryDeadlineExpiresWithoutRunning) {
  Session session(ServeClusterOptions());
  QueryService service(session,
                       ServeConfig(/*workers=*/1, AdmitPolicy::kQueue));
  Gate gate;
  QueryHandle blocker = service.Submit(
      [&gate](server::QueryContext&) -> Status {
        gate.Wait();
        return Status::OK();
      },
      {});
  while (blocker.state() == QueryState::kQueued) {
    std::this_thread::yield();
  }
  QueryOptions options;
  options.deadline_seconds = 0.03;
  std::atomic<bool> ran{false};
  QueryHandle starved = service.Submit(
      [&ran](server::QueryContext&) -> Status {
        ran.store(true);
        return Status::OK();
      },
      options);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  gate.Open();
  EXPECT_EQ(starved.Wait().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(starved.state(), QueryState::kExpired);
  EXPECT_FALSE(ran.load());
  EXPECT_TRUE(blocker.Wait().ok());
  service.Shutdown(/*cancel_pending=*/false);
}

// ---- introspection & lifecycle ---------------------------------------------

TEST(ServerTest, QueriesJsonReportsStatesAndShutdownCancelsPending) {
  Session session(ServeClusterOptions());
  QueryService service(session,
                       ServeConfig(/*workers=*/1, AdmitPolicy::kQueue));
  Gate gate;
  QueryOptions labelled;
  labelled.label = "held-query";
  QueryHandle running = service.Submit(
      [&gate](server::QueryContext&) -> Status {
        gate.Wait();
        return Status::OK();
      },
      labelled);
  while (running.state() == QueryState::kQueued) {
    std::this_thread::yield();
  }
  std::atomic<bool> queued_ran{false};
  QueryHandle queued = service.Submit(
      [&queued_ran](server::QueryContext&) -> Status {
        queued_ran.store(true);
        return Status::OK();
      },
      {});

  const std::string json = service.QueriesJson();
  EXPECT_NE(json.find("\"held-query\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"running\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"queued\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"reservation_bytes\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"stages_completed\""), std::string::npos) << json;
  EXPECT_EQ(service.ActiveQueries(), 2u);

  // Cancelling the queued query resolves it without ever running it: the
  // only worker is still parked at the gate, so the cancel deterministically
  // precedes any chance to execute.
  queued.Cancel();
  gate.Open();
  EXPECT_EQ(queued.Wait().code(), StatusCode::kCancelled);
  EXPECT_EQ(queued.state(), QueryState::kCancelled);
  EXPECT_FALSE(queued_ran.load());
  EXPECT_TRUE(running.Wait().ok()) << running.status().ToString();
  service.Shutdown(/*cancel_pending=*/true);
  EXPECT_EQ(mem::MemoryGovernor::Global().reserved_bytes(), 0u);
}

}  // namespace
}  // namespace idf
