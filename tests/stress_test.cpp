// Randomized stress and property tests for the Indexed DataFrame, checked
// against simple in-memory models:
//  - a random append/lookup/join workload over a version tree, validated
//    against a std::multimap model per version;
//  - concurrent readers against published partition versions while a writer
//    produces new snapshots (the paper's reader/writer regime);
//  - randomized fault injection during a mixed workload.
//
// Every RNG in this binary derives from ONE base seed, logged at first use:
// a failing run is replayed exactly by exporting the printed
// IDF_STRESS_SEED. Parameterized suites enumerate stream ids, not raw
// seeds, so overriding the base seed reseeds every case coherently.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>

#include "common/hash.h"
#include "common/rng.h"
#include "core/indexed_dataframe.h"
#include "mem/governor.h"

namespace idf {
namespace {

/// The binary-wide base seed: a fixed default (CI stays reproducible with
/// no setup) overridden by IDF_STRESS_SEED, printed once with the replay
/// recipe.
uint64_t StressBaseSeed() {
  static const uint64_t seed = [] {
    uint64_t s = 0x5eedc0de;
    if (const char* env = std::getenv("IDF_STRESS_SEED")) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(env, &end, 10);
      if (end != env) s = static_cast<uint64_t>(v);
    }
    std::fprintf(stderr,
                 "[stress] base seed %llu — replay with IDF_STRESS_SEED=%llu\n",
                 static_cast<unsigned long long>(s),
                 static_cast<unsigned long long>(s));
    return s;
  }();
  return seed;
}

/// Seed for one named RNG stream, as a pure function of (base seed, stream).
uint64_t DerivedSeed(uint64_t stream) {
  return HashCombine(Mix64(StressBaseSeed()), stream);
}

SessionOptions SmallOptions() {
  SessionOptions opts;
  opts.cluster.num_workers = 2;
  opts.cluster.executors_per_worker = 2;
  opts.cluster.cores_per_executor = 2;
  opts.default_partitions = 4;
  return opts;
}

SchemaPtr KvSchema() {
  return std::make_shared<Schema>(Schema({
      {"k", TypeId::kInt64, false},
      {"v", TypeId::kInt64, false},
  }));
}

RowVec Kv(int64_t k, int64_t v) { return {Value::Int64(k), Value::Int64(v)}; }

// ---- model-checked MVCC workload -------------------------------------------

using Model = std::multimap<int64_t, int64_t>;  // key -> values

class MvccStress : public ::testing::TestWithParam<uint64_t> {};

/// Body of the MVCC property: a random version tree checked against a
/// multimap model per version. Shared with the budgeted variant below.
void RunMvccVersionTree(uint64_t seed) {
  Session session(SmallOptions());
  Rng rng(seed);
  constexpr int64_t kKeyDomain = 40;

  // Base data.
  std::vector<RowVec> base_rows;
  Model base_model;
  for (int i = 0; i < 300; ++i) {
    const int64_t k = static_cast<int64_t>(rng.Below(kKeyDomain));
    base_rows.push_back(Kv(k, i));
    base_model.emplace(k, i);
  }
  auto df = *session.CreateTable("base", KvSchema(), base_rows);
  auto v0 = *IndexedDataFrame::Create(df, "k");

  // Version tree: each step appends to a random existing version.
  std::vector<IndexedDataFrame> versions{v0};
  std::vector<Model> models{base_model};
  for (int step = 0; step < 12; ++step) {
    const size_t parent = rng.Below(versions.size());
    std::vector<RowVec> extra_rows;
    Model next_model = models[parent];
    const int n = 1 + static_cast<int>(rng.Below(25));
    for (int i = 0; i < n; ++i) {
      const int64_t k = static_cast<int64_t>(rng.Below(kKeyDomain));
      const int64_t v = 10000 + step * 100 + i;
      extra_rows.push_back(Kv(k, v));
      next_model.emplace(k, v);
    }
    auto extra = *session.CreateTable("x" + std::to_string(step), KvSchema(),
                                      extra_rows);
    auto appended = versions[parent].AppendRows(extra);
    ASSERT_TRUE(appended.ok());
    versions.push_back(*appended);
    models.push_back(std::move(next_model));
  }

  // Every version must agree with its model on every key (count and sum).
  for (size_t vi = 0; vi < versions.size(); ++vi) {
    for (int64_t k = 0; k < kKeyDomain; k += 3) {
      auto rows = versions[vi].GetRows(Value::Int64(k));
      ASSERT_TRUE(rows.ok());
      auto range = models[vi].equal_range(k);
      const size_t expected =
          static_cast<size_t>(std::distance(range.first, range.second));
      ASSERT_EQ(rows->rows.size(), expected)
          << "version " << vi << " key " << k;
      int64_t model_sum = 0;
      for (auto it = range.first; it != range.second; ++it) {
        model_sum += it->second;
      }
      int64_t got_sum = 0;
      for (const RowVec& row : rows->rows) got_sum += row[1].int64_value();
      EXPECT_EQ(got_sum, model_sum) << "version " << vi << " key " << k;
    }
    EXPECT_EQ(versions[vi].num_rows(), models[vi].size());
  }
}

TEST_P(MvccStress, RandomVersionTreeMatchesModel) {
  RunMvccVersionTree(DerivedSeed(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Streams, MvccStress,
                         ::testing::Values(0, 1, 2, 3, 4));

// ---- concurrent readers during snapshot/append -----------------------------

TEST(ConcurrencyStress, ReadersOnPublishedVersionsDuringAppends) {
  // The engine's contract (§III-C): one writer per partition, concurrent
  // readers on snapshots. Readers pin specific published versions and must
  // see exactly that version's data while the writer races ahead.
  IndexedPartition base(KvSchema(), 0, 64 << 10);
  for (int64_t i = 0; i < 2000; ++i) {
    IDF_CHECK_OK(base.InsertRow(Kv(i % 50, i)));
  }

  std::vector<std::shared_ptr<IndexedPartition>> published;
  published.push_back(base.Snapshot());
  std::mutex mu;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(DerivedSeed(99 + static_cast<uint64_t>(t)));
      while (!stop.load(std::memory_order_relaxed)) {
        std::shared_ptr<IndexedPartition> snapshot;
        size_t version;
        {
          std::lock_guard<std::mutex> lock(mu);
          version = rng.Below(published.size());
          snapshot = published[version];
        }
        // Version i holds 2000 + i*10 rows; key counts scale accordingly.
        const int64_t key = static_cast<int64_t>(rng.Below(50));
        auto rows = snapshot->LookupRows(Value::Int64(key));
        ASSERT_EQ(snapshot->num_rows(), 2000u + version * 10);
        ASSERT_GE(rows.size(), 40u);  // 2000/50 from the base alone
        reads++;
      }
    });
  }

  // Writer: 40 rounds of snapshot + append + publish.
  std::shared_ptr<IndexedPartition> current = published[0];
  for (int round = 1; round <= 40; ++round) {
    auto next = current->Snapshot();
    for (int i = 0; i < 10; ++i) {
      IDF_CHECK_OK(next->InsertRow(Kv((round * 7 + i) % 50, 100000 + i)));
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      published.push_back(next);
    }
    current = next;
  }
  // On a single-core host the writer can finish before the readers are even
  // scheduled; keep the versions live until the readers have demonstrably
  // exercised them.
  while (reads.load(std::memory_order_relaxed) < 200) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_GE(reads.load(), 200u);
}

// ---- randomized fault injection --------------------------------------------

class FaultStress : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FaultStress, MixedWorkloadSurvivesRandomFailures) {
  Session session(SmallOptions());
  Rng rng(DerivedSeed(GetParam()));

  std::vector<RowVec> rows;
  Model model;
  for (int i = 0; i < 500; ++i) {
    const int64_t k = static_cast<int64_t>(rng.Below(30));
    rows.push_back(Kv(k, i));
    model.emplace(k, i);
  }
  auto df = *session.CreateTable("t", KvSchema(), rows);
  auto current = *IndexedDataFrame::Create(df, "k");

  for (int step = 0; step < 15; ++step) {
    const double dice = rng.NextDouble();
    if (dice < 0.3) {
      // Append.
      const int64_t k = static_cast<int64_t>(rng.Below(30));
      const int64_t v = 5000 + step;
      auto extra = *session.CreateTable("a" + std::to_string(step), KvSchema(),
                                        {Kv(k, v)});
      current = *current.AppendRows(extra);
      model.emplace(k, v);
    } else if (dice < 0.5) {
      // Kill a random executor (keep at least one alive), then revive a
      // random dead one sometimes, like a flapping cluster.
      auto alive = session.cluster().AliveExecutors();
      if (alive.size() > 1) {
        session.cluster().KillExecutor(
            alive[rng.Below(alive.size())]);
      }
      if (rng.Chance(0.5)) {
        const ExecutorId total = session.cluster().config().total_executors();
        for (ExecutorId e = 0; e < total; ++e) {
          if (!session.cluster().IsAlive(e)) {
            session.cluster().ReviveExecutor(e);
            break;
          }
        }
      }
    } else {
      // Lookup, checked against the model.
      const int64_t k = static_cast<int64_t>(rng.Below(30));
      auto got = current.GetRows(Value::Int64(k));
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      const size_t expected = model.count(k);
      EXPECT_EQ(got->rows.size(), expected) << "step " << step << " key " << k;
    }
  }
  // Final full verification.
  for (int64_t k = 0; k < 30; ++k) {
    auto got = current.GetRows(Value::Int64(k));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->rows.size(), model.count(k)) << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Streams, FaultStress,
                         ::testing::Values(100, 101, 102, 103));

// ---- budgeted pass ---------------------------------------------------------

// One pass of the MVCC property under a deliberately tight memory budget:
// batches spill and fault back mid-workload, and every version must still
// match its model exactly. Registered last so the governor's sticky
// engagement cannot perturb the unbudgeted suites above.
TEST(MvccStressBudgeted, TightBudgetPassMatchesModel) {
  ::unsetenv("IDF_MEMORY_BUDGET");
  mem::ScopedBudget tight(mem::MemoryGovernor::Global().resident_bytes() +
                          (128 << 10));
  RunMvccVersionTree(DerivedSeed(0));
}

}  // namespace
}  // namespace idf
