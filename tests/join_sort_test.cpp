// Tests for left-outer joins (all three vanilla algorithms) and ORDER BY.
#include <gtest/gtest.h>

#include "core/indexed_dataframe.h"
#include "sql/session.h"

namespace idf {
namespace {

SessionOptions SmallOptions() {
  SessionOptions opts;
  opts.cluster.num_workers = 2;
  opts.cluster.executors_per_worker = 2;
  opts.cluster.cores_per_executor = 2;
  opts.default_partitions = 4;
  return opts;
}

SchemaPtr LeftSchema() {
  return std::make_shared<Schema>(Schema({
      {"k", TypeId::kInt64, true},
      {"lv", TypeId::kString, false},
  }));
}
SchemaPtr RightSchema() {
  return std::make_shared<Schema>(Schema({
      {"rk", TypeId::kInt64, true},
      {"rv", TypeId::kInt64, false},
  }));
}

std::vector<RowVec> LeftRows() {
  return {
      {Value::Int64(1), Value::String("a")},
      {Value::Int64(2), Value::String("b")},
      {Value::Int64(2), Value::String("b2")},
      {Value::Int64(3), Value::String("c")},          // no match
      {Value::Null(TypeId::kInt64), Value::String("n")},  // null key
  };
}
std::vector<RowVec> RightRows() {
  return {
      {Value::Int64(1), Value::Int64(10)},
      {Value::Int64(2), Value::Int64(20)},
      {Value::Int64(2), Value::Int64(21)},
      {Value::Int64(9), Value::Int64(90)},             // no match
      {Value::Null(TypeId::kInt64), Value::Int64(99)}, // null key
  };
}

class OuterJoinModeSweep : public ::testing::TestWithParam<JoinExec::Mode> {};

TEST_P(OuterJoinModeSweep, LeftOuterSemantics) {
  SessionOptions opts = SmallOptions();
  opts.join_mode = GetParam();
  Session session(opts);
  auto left = *session.CreateTable("l", LeftSchema(), LeftRows());
  auto right = *session.CreateTable("r", RightSchema(), RightRows());

  auto result = left.LeftJoin(right, "k", "rk").Collect();
  ASSERT_TRUE(result.ok());
  // Matches: k=1 (1x1) + k=2 (2x2) = 5; unmatched left: k=3, k=null => 7.
  EXPECT_EQ(result->rows.size(), 7u);

  int padded = 0;
  for (const RowVec& row : result->rows) {
    ASSERT_EQ(row.size(), 4u);
    if (row[2].is_null()) {
      ++padded;
      EXPECT_TRUE(row[3].is_null());  // whole right side padded
      const std::string lv = row[1].string_value();
      EXPECT_TRUE(lv == "c" || lv == "n") << lv;
    }
  }
  EXPECT_EQ(padded, 2);
}

INSTANTIATE_TEST_SUITE_P(Modes, OuterJoinModeSweep,
                         ::testing::Values(JoinExec::Mode::kBroadcastHash,
                                           JoinExec::Mode::kShuffledHash,
                                           JoinExec::Mode::kSortMerge));

TEST(OuterJoinTest, AllModesAgree) {
  std::vector<std::vector<std::string>> results;
  for (JoinExec::Mode mode :
       {JoinExec::Mode::kBroadcastHash, JoinExec::Mode::kShuffledHash,
        JoinExec::Mode::kSortMerge}) {
    SessionOptions opts = SmallOptions();
    opts.join_mode = mode;
    Session session(opts);
    auto left = *session.CreateTable("l", LeftSchema(), LeftRows());
    auto right = *session.CreateTable("r", RightSchema(), RightRows());
    results.push_back(
        left.LeftJoin(right, "k", "rk").Collect()->SortedRowStrings());
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[1], results[2]);
}

TEST(OuterJoinTest, InnerAndOuterDifferOnlyInUnmatched) {
  Session session(SmallOptions());
  auto left = *session.CreateTable("l", LeftSchema(), LeftRows());
  auto right = *session.CreateTable("r", RightSchema(), RightRows());
  auto inner = left.Join(right, "k", "rk").Collect();
  auto outer = left.LeftJoin(right, "k", "rk").Collect();
  ASSERT_TRUE(inner.ok());
  ASSERT_TRUE(outer.ok());
  EXPECT_EQ(outer->rows.size(), inner->rows.size() + 2);
}

TEST(OuterJoinTest, OuterSchemaMarksRightNullable) {
  Session session(SmallOptions());
  auto left = *session.CreateTable("l", LeftSchema(), LeftRows());
  auto right = *session.CreateTable("r", RightSchema(), RightRows());
  auto schema = left.LeftJoin(right, "k", "rk").schema();
  ASSERT_TRUE(schema.ok());
  EXPECT_TRUE(schema->field(2).nullable);
  EXPECT_TRUE(schema->field(3).nullable);
}

TEST(OuterJoinTest, IndexedDatasetOuterJoinFallsBackAndWorks) {
  Session session(SmallOptions());
  auto left = *session.CreateTable("l", LeftSchema(), LeftRows());
  auto right = *session.CreateTable("r", RightSchema(), RightRows());
  auto indexed = *IndexedDataFrame::Create(left, "k");

  auto q = indexed.AsDataFrame().Join(right, "k", "rk", JoinType::kLeftOuter);
  auto plan = q.ExplainPhysical();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->find("IndexedJoinExec"), std::string::npos) << *plan;

  auto vanilla = left.LeftJoin(right, "k", "rk").Collect();
  auto via_indexed = q.Collect();
  ASSERT_TRUE(vanilla.ok());
  ASSERT_TRUE(via_indexed.ok());
  // Indexed storage drops no rows: the fallback scan sees null keys too.
  EXPECT_EQ(via_indexed->SortedRowStrings(), vanilla->SortedRowStrings());
}

TEST(OuterJoinTest, SqlLeftJoin) {
  Session session(SmallOptions());
  (void)session.CreateTable("l", LeftSchema(), LeftRows());
  (void)session.CreateTable("r", RightSchema(), RightRows());
  auto df = session.Sql("SELECT * FROM l LEFT JOIN r ON k = rk");
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df->Count().value(), 7u);
  auto df2 = session.Sql("SELECT * FROM l LEFT OUTER JOIN r ON k = rk");
  ASSERT_TRUE(df2.ok());
  EXPECT_EQ(df2->Count().value(), 7u);
  auto df3 = session.Sql("SELECT * FROM l INNER JOIN r ON k = rk");
  ASSERT_TRUE(df3.ok());
  EXPECT_EQ(df3->Count().value(), 5u);
}

// ---- ORDER BY -----------------------------------------------------------

SchemaPtr NumSchema() {
  return std::make_shared<Schema>(Schema({
      {"a", TypeId::kInt64, true},
      {"b", TypeId::kString, false},
  }));
}

TEST(SortTest, OrderByAscending) {
  Session session(SmallOptions());
  auto df = *session.CreateTable(
      "t", NumSchema(),
      {{Value::Int64(3), Value::String("c")},
       {Value::Int64(1), Value::String("a")},
       {Value::Int64(2), Value::String("b")}});
  auto result = df.OrderBy({{"a", false}}).Collect();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 3u);
  EXPECT_EQ(result->rows[0][0], Value::Int64(1));
  EXPECT_EQ(result->rows[1][0], Value::Int64(2));
  EXPECT_EQ(result->rows[2][0], Value::Int64(3));
}

TEST(SortTest, OrderByDescendingWithNullsFirstAscending) {
  Session session(SmallOptions());
  auto df = *session.CreateTable(
      "t", NumSchema(),
      {{Value::Int64(3), Value::String("c")},
       {Value::Null(TypeId::kInt64), Value::String("n")},
       {Value::Int64(1), Value::String("a")}});
  auto asc = df.OrderBy({{"a", false}}).Collect();
  ASSERT_TRUE(asc.ok());
  EXPECT_TRUE(asc->rows[0][0].is_null());  // nulls sort first ascending
  auto desc = df.OrderBy({{"a", true}}).Collect();
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ(desc->rows[0][0], Value::Int64(3));
  EXPECT_TRUE(desc->rows[2][0].is_null());
}

TEST(SortTest, MultiKeyStable) {
  Session session(SmallOptions());
  auto df = *session.CreateTable(
      "t", NumSchema(),
      {{Value::Int64(1), Value::String("z")},
       {Value::Int64(1), Value::String("a")},
       {Value::Int64(0), Value::String("m")}});
  auto result = df.OrderBy({{"a", false}, {"b", false}}).Collect();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][1], Value::String("m"));
  EXPECT_EQ(result->rows[1][1], Value::String("a"));
  EXPECT_EQ(result->rows[2][1], Value::String("z"));
}

TEST(SortTest, SqlOrderByLimit) {
  Session session(SmallOptions());
  std::vector<RowVec> rows;
  for (int64_t i = 0; i < 20; ++i) {
    rows.push_back({Value::Int64((i * 7) % 20),
                    Value::String("r" + std::to_string(i))});
  }
  (void)session.CreateTable("t", NumSchema(), rows);
  auto result =
      session.Sql("SELECT a FROM t ORDER BY a DESC LIMIT 3")->Collect();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 3u);
  EXPECT_EQ(result->rows[0][0], Value::Int64(19));
  EXPECT_EQ(result->rows[1][0], Value::Int64(18));
  EXPECT_EQ(result->rows[2][0], Value::Int64(17));
}

TEST(SortTest, OrderByOnIndexedFallback) {
  Session session(SmallOptions());
  std::vector<RowVec> rows;
  for (int64_t i = 0; i < 50; ++i) {
    rows.push_back(
        {Value::Int64(49 - i), Value::String("x" + std::to_string(i))});
  }
  auto df = *session.CreateTable("t", NumSchema(), rows);
  auto indexed = *IndexedDataFrame::Create(df, "a");
  auto result = indexed.AsDataFrame().OrderBy({{"a", false}}).Collect();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 50u);
  for (int64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(result->rows[static_cast<size_t>(i)][0], Value::Int64(i));
  }
}

TEST(SortTest, UnknownSortColumnFails) {
  Session session(SmallOptions());
  auto df = *session.CreateTable("t", NumSchema(),
                                 {{Value::Int64(1), Value::String("a")}});
  EXPECT_FALSE(df.OrderBy({{"zzz", false}}).Collect().ok());
}

}  // namespace
}  // namespace idf
