// Tests for the memory governor (src/mem/governor.h): budget parsing,
// cost-aware LRU eviction ordering, transparent spill/reload, pinning under
// concurrent scans, COW-shared batches spilling once, per-session budgets
// producing identical query results, and lineage recovery salvaging spilled
// batches after an executor loss.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>

#include "core/indexed_dataframe.h"
#include "core/indexed_partition.h"
#include "mem/governor.h"
#include "obs/metrics_registry.h"
#include "storage/row_batch.h"

namespace idf {
namespace {

uint64_t CounterValue(const std::string& name) {
  return obs::Registry::Global().GetCounter(name).value();
}

double GaugeValue(const std::string& name) {
  return obs::Registry::Global().GetGauge(name).value();
}

SchemaPtr EdgeSchema() {
  return std::make_shared<Schema>(Schema({
      {"src", TypeId::kInt64, false},
      {"dst", TypeId::kInt64, false},
      {"weight", TypeId::kFloat64, true},
  }));
}

RowVec Edge(int64_t src, int64_t dst, double w = 1.0) {
  return {Value::Int64(src), Value::Int64(dst), Value::Float64(w)};
}

/// A sealed batch filled with a recognizable byte pattern.
std::shared_ptr<RowBatch> PatternBatch(uint32_t capacity, uint8_t seed) {
  auto batch = RowBatch::Create(capacity);
  const uint32_t len = capacity - 64;
  const uint32_t offset = *batch->Allocate(len);
  uint8_t* dst = batch->MutableData() + offset;
  for (uint32_t i = 0; i < len; ++i) {
    dst[i] = static_cast<uint8_t>(seed + i * 31);
  }
  batch->Seal();
  return batch;
}

bool PatternIntact(const RowBatch& batch, uint8_t seed) {
  mem::AccessScope scope;
  batch.EnsureReadable();
  const uint32_t len = batch.used();
  for (uint32_t i = 0; i < len; ++i) {
    if (batch.data()[i] != static_cast<uint8_t>(seed + i * 31)) return false;
  }
  return true;
}

TEST(ParseByteSizeTest, ParsesSuffixes) {
  EXPECT_EQ(*mem::ParseByteSize("4096"), 4096u);
  EXPECT_EQ(*mem::ParseByteSize("16k"), 16u << 10);
  EXPECT_EQ(*mem::ParseByteSize("256m"), 256u << 20);
  EXPECT_EQ(*mem::ParseByteSize("2G"), 2ull << 30);
  EXPECT_EQ(*mem::ParseByteSize("100kb"), 100u << 10);
  EXPECT_FALSE(mem::ParseByteSize("").ok());
  EXPECT_FALSE(mem::ParseByteSize("12x").ok());
  EXPECT_FALSE(mem::ParseByteSize("lots").ok());
  // std::stoull would wrap "-1" to UINT64_MAX; sizes must start with a digit.
  EXPECT_FALSE(mem::ParseByteSize("-1").ok());
  EXPECT_FALSE(mem::ParseByteSize("-1g").ok());
  EXPECT_FALSE(mem::ParseByteSize("+1").ok());
  EXPECT_FALSE(mem::ParseByteSize(" 1").ok());
}

TEST(MemGovernorTest, EvictsLeastRecentlyUsedSealedBatch) {
  mem::MemoryGovernor& gov = mem::MemoryGovernor::Global();
  auto b0 = PatternBatch(64 << 10, 1);
  auto b1 = PatternBatch(64 << 10, 2);
  auto b2 = PatternBatch(64 << 10, 3);

  // Engage with a roomy budget first so LRU touches register, then shrink
  // to force exactly one eviction.
  mem::ScopedBudget roomy(gov.resident_bytes() + (1 << 20));
  {
    mem::AccessScope scope;
    b0->EnsureReadable();
    b2->EnsureReadable();
  }
  const uint64_t evictions_before = CounterValue("mem.evictions");
  mem::ScopedBudget tight(gov.resident_bytes() - 1);

  EXPECT_EQ(CounterValue("mem.evictions"), evictions_before + 1);
  EXPECT_TRUE(b0->resident());
  EXPECT_FALSE(b1->resident());  // never touched => oldest => victim
  EXPECT_TRUE(b2->resident());
  EXPECT_GT(gov.spilled_bytes(), 0u);
}

TEST(MemGovernorTest, EvictedBatchReloadsTransparentlyAndIntact) {
  auto batch = PatternBatch(64 << 10, 42);
  const uint64_t faults_before = CounterValue("mem.reload_faults");
  {
    mem::ScopedBudget tight(1);
    EXPECT_FALSE(batch->resident());
    // Reading through EnsureReadable faults the payload back in.
    EXPECT_TRUE(PatternIntact(*batch, 42));
    EXPECT_TRUE(batch->resident());
    EXPECT_EQ(CounterValue("mem.reload_faults"), faults_before + 1);

    // Re-evict: the payload is immutable, so the existing spill file is
    // reused — bytes are freed without a second write.
    const uint64_t written_before = CounterValue("mem.spill.write_bytes");
    mem::MemoryGovernor::Global().EnforceBudget();
    EXPECT_FALSE(batch->resident());
    EXPECT_EQ(CounterValue("mem.spill.write_bytes"), written_before);
    EXPECT_TRUE(PatternIntact(*batch, 42));
  }
}

TEST(MemGovernorTest, PinnedBatchesAreNeverEvicted) {
  mem::MemoryGovernor& gov = mem::MemoryGovernor::Global();
  auto batch = PatternBatch(64 << 10, 7);
  mem::ScopedBudget roomy(gov.resident_bytes() + (1 << 20));
  {
    mem::AccessScope scope;
    batch->EnsureReadable();  // pinned for the scope's lifetime
    const uint64_t blocks_before = CounterValue("mem.pin_blocks");
    mem::ScopedBudget tight(1);
    EXPECT_TRUE(batch->resident());  // budget overcommitted, but pinned
    EXPECT_GT(CounterValue("mem.pin_blocks"), blocks_before);
    // Scope still open: the data stays readable without any reload.
    EXPECT_TRUE(PatternIntact(*batch, 7));
    EXPECT_TRUE(batch->resident());

    // Once the pin drops, the same budget evicts it.
  }
  mem::ScopedBudget tight(1);
  EXPECT_FALSE(batch->resident());
}

TEST(MemGovernorTest, ScopelessAccessTakesTransientPin) {
  // Access without an AccessScope must still protect the pointer the caller
  // is reading: a transient pin — held until the thread's next scope-less
  // pin — blocks eviction even when a same-thread allocation pushes
  // residency over budget between the access and the read.
  auto batch = PatternBatch(64 << 10, 5);
  mem::ScopedBudget tight(batch->padded_bytes() + 1);
  ASSERT_TRUE(batch->resident());
  batch->EnsureReadable();  // no scope active: takes the transient pin
  auto other = PatternBatch(64 << 10, 6);  // allocation forces enforcement
  EXPECT_TRUE(batch->resident());  // data() is still safe to read here
  // The next scope-less access on this thread hands the pin over.
  other->EnsureReadable();
  mem::MemoryGovernor::Global().EnforceBudget();
  EXPECT_FALSE(batch->resident());
  EXPECT_TRUE(other->resident());
}

TEST(MemGovernorTest, ResidentGaugeTracksBudget) {
  auto b0 = PatternBatch(64 << 10, 1);
  auto b1 = PatternBatch(64 << 10, 2);
  auto b2 = PatternBatch(64 << 10, 3);
  const uint64_t budget = b0->padded_bytes() + 1;
  mem::ScopedBudget tight(budget);
  EXPECT_LE(mem::MemoryGovernor::Global().resident_bytes(), budget);
  EXPECT_LE(GaugeValue("mem.resident_bytes"), static_cast<double>(budget));
  EXPECT_EQ(GaugeValue("mem.budget_bytes"), static_cast<double>(budget));
  EXPECT_GT(GaugeValue("mem.spilled_bytes"), 0.0);
}

TEST(MemGovernorTest, StorageGaugesTrackBatchLifecycle) {
  const double batches_before = GaugeValue("storage.num_batches");
  const double resident_before = GaugeValue("storage.resident_bytes");
  {
    auto batch = PatternBatch(64 << 10, 9);
    EXPECT_EQ(GaugeValue("storage.num_batches"), batches_before + 1);
    EXPECT_EQ(GaugeValue("storage.resident_bytes"),
              resident_before + static_cast<double>(batch->padded_bytes()));
    // Eviction frees the buffer: resident drops while the batch count
    // (the disk-backed stub still exists) does not.
    mem::ScopedBudget tight(1);
    EXPECT_EQ(GaugeValue("storage.num_batches"), batches_before + 1);
    EXPECT_EQ(GaugeValue("storage.resident_bytes"), resident_before);
  }
  EXPECT_EQ(GaugeValue("storage.num_batches"), batches_before);
  EXPECT_EQ(GaugeValue("storage.resident_bytes"), resident_before);
}

TEST(MemGovernorTest, CowSharedBatchSpillsOnceAndReloadsOnce) {
  // A snapshot shares the sealed tail between two versions; the shared
  // batch is one Evictable, so it spills once and a reload through either
  // version serves both.
  IndexedPartition part(EdgeSchema(), 0, 16 << 10);
  for (int64_t i = 0; i < 200; ++i) {
    IDF_CHECK_OK(part.InsertRow(Edge(i % 10, i)));
  }
  std::shared_ptr<IndexedPartition> snap = part.Snapshot();

  const uint64_t faults_before = CounterValue("mem.reload_faults");
  mem::ScopedBudget tight(1);
  ASSERT_GT(CounterValue("mem.evictions"), 0u);

  const std::vector<RowVec> from_parent = part.LookupRows(Value::Int64(3));
  const uint64_t faults_after_parent = CounterValue("mem.reload_faults");
  EXPECT_GT(faults_after_parent, faults_before);

  // The snapshot walks the same shared batches: already reloaded, so no
  // further faults.
  const std::vector<RowVec> from_snap = snap->LookupRows(Value::Int64(3));
  EXPECT_EQ(CounterValue("mem.reload_faults"), faults_after_parent);

  ASSERT_EQ(from_parent.size(), 20u);
  ASSERT_EQ(from_snap.size(), from_parent.size());
  for (size_t i = 0; i < from_parent.size(); ++i) {
    EXPECT_EQ(from_parent[i], from_snap[i]);
  }
}

TEST(MemGovernorTest, ConcurrentScansUnderTightBudgetStayCorrect) {
  // Readers pin chain batches while the governor churns evictions under a
  // 1-byte budget (every fault-in immediately re-evicts something). Each
  // lookup must still see all of its rows.
  IndexedPartition part(EdgeSchema(), 0, 8 << 10);
  constexpr int64_t kKeys = 16;
  constexpr int64_t kRowsPerKey = 40;
  for (int64_t r = 0; r < kRowsPerKey; ++r) {
    for (int64_t k = 0; k < kKeys; ++k) {
      IDF_CHECK_OK(part.InsertRow(Edge(k, r)));
    }
  }
  std::shared_ptr<IndexedPartition> snap = part.Snapshot();

  mem::ScopedBudget tight(1);
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      for (int iter = 0; iter < 25; ++iter) {
        const int64_t key = (t * 25 + iter) % kKeys;
        const auto rows = snap->LookupRows(Value::Int64(key));
        if (rows.size() != static_cast<size_t>(kRowsPerKey)) {
          failures.fetch_add(1);
          continue;
        }
        for (const RowVec& row : rows) {
          if (row[0] != Value::Int64(key)) failures.fetch_add(1);
        }
      }
    });
  }
  // Extra churn: keep forcing enforcement while readers fault batches in.
  std::thread evictor([&] {
    for (int i = 0; i < 200; ++i) mem::MemoryGovernor::Global().EnforceBudget();
  });
  for (std::thread& t : readers) t.join();
  evictor.join();
  EXPECT_EQ(failures.load(), 0);
}

SessionOptions ClusterOptions(uint64_t budget = 0) {
  // These session tests pin an exact budget through ClusterConfig; an
  // externally imposed IDF_MEMORY_BUDGET (which by design overrides the
  // config) would change the eviction pattern under test.
  ::unsetenv("IDF_MEMORY_BUDGET");
  SessionOptions opts;
  opts.cluster.num_workers = 2;
  opts.cluster.executors_per_worker = 2;
  opts.cluster.cores_per_executor = 2;
  opts.cluster.memory_budget_bytes = budget;
  opts.default_partitions = 4;
  return opts;
}

std::vector<RowVec> DenseEdges(int64_t n) {
  std::vector<RowVec> rows;
  rows.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back(Edge(i % 97, i, 0.25 * static_cast<double>(i)));
  }
  return rows;
}

TEST(MemBudgetedSessionTest, HalfBudgetProducesIdenticalResults) {
  constexpr int64_t kRows = 20000;
  IndexOptions index_options;
  index_options.batch_capacity = 16 << 10;  // many sealed batches

  // Reference run: unbounded (budget 0 never evicts).
  std::vector<std::string> expected_join;
  size_t expected_hits = 0;
  uint64_t working_set = 0;
  {
    Session session(ClusterOptions());
    auto edges = *session.CreateTable("edges", EdgeSchema(), DenseEdges(kRows));
    auto probe = *session.CreateTable("probe", EdgeSchema(), DenseEdges(300));
    auto indexed = *IndexedDataFrame::Create(edges, "src", index_options);
    working_set = mem::MemoryGovernor::Global().resident_bytes();
    expected_hits = indexed.GetRows(Value::Int64(13)).value().rows.size();
    expected_join = indexed.Join(probe, "src").Collect()->SortedRowStrings();
  }
  ASSERT_GT(working_set, 0u);

  // Budgeted run at half the working set: every result must be identical,
  // and residency must respect the budget (asserted via the exported gauge).
  const uint64_t budget = working_set / 2;
  Session session(ClusterOptions(budget));
  auto edges = *session.CreateTable("edges", EdgeSchema(), DenseEdges(kRows));
  auto probe = *session.CreateTable("probe", EdgeSchema(), DenseEdges(300));
  auto indexed = *IndexedDataFrame::Create(edges, "src", index_options);
  EXPECT_GT(CounterValue("mem.evictions"), 0u);

  EXPECT_EQ(indexed.GetRows(Value::Int64(13)).value().rows.size(),
            expected_hits);
  EXPECT_EQ(indexed.Join(probe, "src").Collect()->SortedRowStrings(),
            expected_join);

  mem::MemoryGovernor::Global().EnforceBudget();
  EXPECT_LE(GaugeValue("mem.resident_bytes"), static_cast<double>(budget));
}

TEST(MemSalvageTest, RecoveryReloadsSpilledBatchesAfterExecutorLoss) {
  // Build under a budget so version-0 batches spill; their spill files are
  // registered in the salvage catalog. Killing an executor drops its blocks,
  // but recovery replays the salvaged prefix from disk before re-routing the
  // remainder of the base table.
  constexpr int64_t kRows = 20000;
  IndexOptions index_options;
  index_options.batch_capacity = 16 << 10;

  Session session(ClusterOptions(256 << 10));
  auto edges = *session.CreateTable("edges", EdgeSchema(), DenseEdges(kRows));
  auto indexed = *IndexedDataFrame::Create(edges, "src", index_options);
  ASSERT_GT(CounterValue("mem.evictions"), 0u);

  const auto before = indexed.GetRows(Value::Int64(29)).value();
  ASSERT_FALSE(before.rows.empty());

  const uint64_t salvaged_before = CounterValue("mem.salvage.segments");
  session.cluster().KillExecutor(1);
  session.cluster().KillExecutor(2);
  const auto after = indexed.GetRows(Value::Int64(29)).value();

  ASSERT_EQ(after.rows.size(), before.rows.size());
  for (size_t i = 0; i < after.rows.size(); ++i) {
    EXPECT_EQ(after.rows[i], before.rows[i]);
  }
  // At least one lost partition recovered through spilled segments.
  EXPECT_GT(CounterValue("mem.salvage.segments"), salvaged_before);
}

TEST(MemSalvageTest, RecomputeAfterAppendKeepsSalvageCatalogBaseOnly) {
  // Recompute replays the append chain into the same store as the re-routed
  // base rows. Salvage-tagging must stop at the base/append boundary: if
  // batches holding replayed append rows registered in the catalog, a second
  // loss of the same partition would salvage them as "base prefix", skip
  // that many real base rows, and then replay the appends again —
  // duplicating append rows and dropping base rows.
  constexpr int64_t kRows = 12000;
  IndexOptions index_options;
  index_options.batch_capacity = 16 << 10;

  Session session(ClusterOptions(192 << 10));
  auto edges = *session.CreateTable("edges", EdgeSchema(), DenseEdges(kRows));
  // Append rows distinct from every base row, so a duplicated append or a
  // dropped base row cannot cancel out in the comparison below.
  std::vector<RowVec> appends;
  for (int64_t i = 0; i < 2000; ++i) {
    appends.push_back(Edge(i % 97, (1 << 20) + i, 0.5));
  }
  auto extra = *session.CreateTable("extra", EdgeSchema(), appends);
  auto base = *IndexedDataFrame::Create(edges, "src", index_options);
  auto appended = *base.AppendRows(extra);
  ASSERT_GT(CounterValue("mem.evictions"), 0u);

  const std::vector<std::string> expected =
      appended.AsDataFrame().Collect()->SortedRowStrings();

  // First loss: every lost partition recomputes (base re-route + append
  // replay); under the budget the rebuilt batches spill, feeding the
  // salvage catalog with recompute-instance segments.
  session.cluster().KillExecutor(1);
  EXPECT_EQ(appended.AsDataFrame().Collect()->SortedRowStrings(), expected);
  // Drain: spill every sealed batch, so the rebuilt stores' full batch range
  // — including the base/append boundary — lands in the salvage catalog.
  { mem::ScopedBudget drain(1); }

  // Second loss, aimed at the executor the first round's recomputed blocks
  // landed on: recovery now salvages segments that the *first* recompute
  // spilled. Those must hold base rows only, or the replay double-counts.
  session.cluster().ReviveExecutor(1);
  const uint64_t salvaged_before = CounterValue("mem.salvage.segments");
  session.cluster().KillExecutor(0);
  session.cluster().KillExecutor(2);
  session.cluster().KillExecutor(3);
  EXPECT_EQ(appended.AsDataFrame().Collect()->SortedRowStrings(), expected);
  EXPECT_GT(CounterValue("mem.salvage.segments"), salvaged_before);
}

TEST(MemSalvageTest, LostSpillFileFailsTheQueryInsteadOfAborting) {
  // An external tmp cleaner (or disk fault) removing spill files must not
  // crash the process: the reload failure unwinds as mem::ReloadFault, the
  // task boundary converts it to a kUnavailable status, and the query
  // surfaces the error.
  constexpr int64_t kRows = 20000;
  IndexOptions index_options;
  index_options.batch_capacity = 16 << 10;

  Session session(ClusterOptions(128 << 10));
  auto edges = *session.CreateTable("edges", EdgeSchema(), DenseEdges(kRows));
  auto indexed = *IndexedDataFrame::Create(edges, "src", index_options);
  ASSERT_GT(CounterValue("mem.evictions"), 0u);

  // Truncate every spill file behind the governor's back. (Unlinking is not
  // enough of a test on POSIX-like semantics anyway; a short read is the
  // same failure class.)
  size_t clobbered = 0;
  for (const auto& entry : std::filesystem::directory_iterator(
           mem::MemoryGovernor::Global().spill_dir())) {
    if (entry.path().extension() == ".spill") {
      std::filesystem::resize_file(entry.path(), 0);
      ++clobbered;
    }
  }
  ASSERT_GT(clobbered, 0u);

  const auto result = indexed.AsDataFrame().Collect();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace idf
