// Per-query resource attribution gate (obs/query_profile.h).
//
// The conservation property: per-query profiles are a *decomposition* of
// the global counters, not a parallel bookkeeping that can drift. Under
// the same 25%-budget concurrent mixed workload as the server determinism
// gate, the sum over all profiles (including the unattributed bucket 0) of
// spilled/reloaded bytes, evictions, tasks, steals, and residency hits/
// misses must equal the corresponding global mem.*/engine.*/sched.* metric
// deltas exactly. Plus: attribution determinism across reruns (label-keyed
// task counts), QueryScope semantics, and the /queries/<id> endpoint.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/indexed_dataframe.h"
#include "mem/governor.h"
#include "obs/introspect.h"
#include "obs/metrics_registry.h"
#include "obs/query_profile.h"
#include "server/query_service.h"
#include "sql/columnar.h"
#include "sql/session.h"

namespace idf {
namespace {

using server::AdmitPolicy;
using server::QueryHandle;
using server::QueryOptions;
using server::QueryService;
using server::QueryServiceConfig;

SchemaPtr EdgeSchema() {
  return std::make_shared<Schema>(Schema({
      {"src", TypeId::kInt64, false},
      {"dst", TypeId::kInt64, false},
      {"weight", TypeId::kFloat64, true},
  }));
}

std::vector<RowVec> DenseEdges(int64_t n, int64_t salt = 0) {
  std::vector<RowVec> rows;
  rows.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back({Value::Int64((i + salt) % 97), Value::Int64(i),
                    Value::Float64(0.25 * static_cast<double>(i + salt))});
  }
  return rows;
}

SessionOptions ServeClusterOptions() {
  ::unsetenv("IDF_MEMORY_BUDGET");
  SessionOptions opts;
  opts.cluster.num_workers = 2;
  opts.cluster.executors_per_worker = 2;
  opts.cluster.cores_per_executor = 2;
  opts.default_partitions = 4;
  return opts;
}

QueryServiceConfig ServeConfig(uint32_t workers, uint64_t reservation) {
  QueryServiceConfig config;
  config.workers = workers;
  config.max_queue = 64;
  config.default_reservation_bytes = reservation;
  config.policy = AdmitPolicy::kQueue;
  return config;
}

struct Mixed {
  std::string name;
  server::QueryWork work;
};

/// The server gate's mixed workload: 4 indexed lookups (SQL), 2 indexed
/// joins, 2 appends reading a key back from their own new version. The
/// table name is parameterized so each test (and each rerun within a test)
/// registers a fresh catalog entry.
std::vector<Mixed> BuildWorkload(IndexedDataFrame& indexed,
                                 const std::string& table, DataFrame probe,
                                 DataFrame extra_a, DataFrame extra_b) {
  auto sql_work = [](std::string sql) {
    return [sql](server::QueryContext& ctx) -> Status {
      IDF_ASSIGN_OR_RETURN(DataFrame df, ctx.session.Sql(sql));
      IDF_ASSIGN_OR_RETURN(ctx.result, df.Collect());
      return Status::OK();
    };
  };
  auto join_work = [&indexed](DataFrame probe_df) {
    return [&indexed, probe_df](server::QueryContext& ctx) -> Status {
      IDF_ASSIGN_OR_RETURN(ctx.result, indexed.Join(probe_df, "src").Collect());
      return Status::OK();
    };
  };
  auto append_work = [&indexed](DataFrame rows, int64_t readback_key) {
    return [&indexed, rows, readback_key](server::QueryContext& ctx) -> Status {
      IDF_ASSIGN_OR_RETURN(IndexedDataFrame next, indexed.AppendRows(rows));
      IDF_ASSIGN_OR_RETURN(ctx.result,
                           next.GetRows(Value::Int64(readback_key)));
      return Status::OK();
    };
  };
  std::vector<Mixed> workload;
  for (int64_t key : {13, 42, 64, 96}) {
    workload.push_back(
        {"lookup_" + std::to_string(key),
         sql_work("SELECT * FROM " + table + " WHERE src = " +
                  std::to_string(key))});
  }
  workload.push_back({"join_probe", join_work(probe)});
  workload.push_back({"join_extra", join_work(extra_b)});
  workload.push_back({"append_a", append_work(extra_a, 7)});
  workload.push_back({"append_b", append_work(extra_b, 31)});
  return workload;
}

/// Map of every known profile, keyed by id (baseline for diffing).
std::map<uint64_t, obs::QueryProfileSnapshot> ProfilesById() {
  std::map<uint64_t, obs::QueryProfileSnapshot> out;
  for (obs::QueryProfileSnapshot& snap :
       obs::QueryProfileRegistry::Global().SnapshotAll()) {
    out[snap.id] = std::move(snap);
  }
  return out;
}

/// Minimal HTTP GET over loopback; returns the full response.
std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

// ---- scope & id semantics ---------------------------------------------------

TEST(QueryProfileTest, ScopeInstallsNestsAndRestores) {
  const uint64_t outer = obs::AllocateQueryId();
  const uint64_t inner = obs::AllocateQueryId();
  EXPECT_NE(outer, inner);
  EXPECT_EQ(obs::CurrentQueryId(), 0u);
  {
    obs::QueryScope a(outer);
    EXPECT_EQ(obs::CurrentQueryId(), outer);
    EXPECT_EQ(obs::CurrentQueryProfile()->id, outer);
    {
      obs::QueryScope b(inner);
      EXPECT_EQ(obs::CurrentQueryId(), inner);
      EXPECT_EQ(obs::CurrentQueryProfile()->id, inner);
    }
    EXPECT_EQ(obs::CurrentQueryId(), outer);
  }
  EXPECT_EQ(obs::CurrentQueryId(), 0u);
  EXPECT_EQ(obs::CurrentQueryProfile()->id, 0u);
}

TEST(QueryProfileTest, ProfileJsonCarriesEveryField) {
  obs::QueryProfileSnapshot snap;
  snap.id = 42;
  snap.tasks = 7;
  const std::string json = obs::QueryProfileJson(snap);
  for (const char* key :
       {"\"query_id\":42", "\"tasks\":7", "\"task_wall_us\"", "\"steals\"",
        "\"resident_hits\"", "\"resident_misses\"", "\"bytes_spilled\"",
        "\"evictions\"", "\"bytes_reloaded\"", "\"bytes_prefetched\"",
        "\"shuffle_stall_us\"", "\"shuffle_pushed_bytes\"",
        "\"admission_wait_us\"", "\"peak_pinned_bytes\"", "\"stages\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

// ---- conservation gate ------------------------------------------------------

TEST(QueryProfileTest, ConservationUnderBudgetedConcurrentServe) {
  constexpr int64_t kRows = 8000;
  Session session(ServeClusterOptions());
  IndexOptions index_options;
  index_options.batch_capacity = 4 << 10;

  auto edges = *session.CreateTable("edges", EdgeSchema(), DenseEdges(kRows));
  auto probe = *session.CreateTable("probe", EdgeSchema(), DenseEdges(300));
  auto indexed = *IndexedDataFrame::Create(edges, "src", index_options);
  indexed.RegisterAs("indexed_edges");
  auto extra_a =
      *session.CreateTable("extra_a", EdgeSchema(), DenseEdges(1200, 7));
  auto extra_b =
      *session.CreateTable("extra_b", EdgeSchema(), DenseEdges(900, 31));
  std::vector<Mixed> workload =
      BuildWorkload(indexed, "indexed_edges", probe, extra_a, extra_b);

  mem::MemoryGovernor& gov = mem::MemoryGovernor::Global();
  const uint64_t resident = gov.resident_bytes();
  const uint64_t budget_bytes = std::max<uint64_t>(resident / 4, 256 << 10);

  // Baselines first (profiles from the table builds above, global
  // counters), then the budget squeeze: even the squeeze's own evictions
  // and spills must be conserved (they land in bucket 0).
  const std::map<uint64_t, obs::QueryProfileSnapshot> before = ProfilesById();
  obs::RegistryDelta delta;
  mem::ScopedBudget budget(budget_bytes);

  QueryService service(session,
                       ServeConfig(/*workers=*/4, budget_bytes / 8));
  std::vector<QueryHandle> handles;
  for (Mixed& m : workload) {
    QueryOptions options;
    options.label = m.name;
    handles.push_back(service.Submit(m.work, options));
  }
  for (size_t i = 0; i < handles.size(); ++i) {
    ASSERT_TRUE(handles[i].Wait().ok())
        << workload[i].name << ": " << handles[i].status().ToString();
  }
  service.Shutdown(/*cancel_pending=*/false);
  // The prefetch thread charges its reloads to the enqueueing query
  // asynchronously; drain it so the final snapshot is complete.
  gov.DrainPrefetchForTesting();

  obs::QueryProfileSnapshot sum;
  for (const obs::QueryProfileSnapshot& snap :
       obs::QueryProfileRegistry::Global().SnapshotAll()) {
    auto it = before.find(snap.id);
    const obs::QueryProfileSnapshot base =
        it != before.end() ? it->second : obs::QueryProfileSnapshot{};
    sum.tasks += snap.tasks - base.tasks;
    sum.steals += snap.steals - base.steals;
    sum.resident_hits += snap.resident_hits - base.resident_hits;
    sum.resident_misses += snap.resident_misses - base.resident_misses;
    sum.bytes_spilled += snap.bytes_spilled - base.bytes_spilled;
    sum.evictions += snap.evictions - base.evictions;
    sum.bytes_reloaded += snap.bytes_reloaded - base.bytes_reloaded;
    sum.bytes_prefetched += snap.bytes_prefetched - base.bytes_prefetched;
    sum.prefetch_skips += snap.prefetch_skips - base.prefetch_skips;
    sum.shuffle_pushed_bytes +=
        snap.shuffle_pushed_bytes - base.shuffle_pushed_bytes;
  }

  // Conservation: the per-query decomposition sums back to the global
  // counters, field by field, exactly.
  EXPECT_EQ(sum.tasks, delta.Counter("engine.tasks"));
  EXPECT_EQ(sum.steals, delta.Counter("engine.scheduler.steals"));
  EXPECT_EQ(sum.resident_hits, delta.Counter("sched.resident_hits"));
  EXPECT_EQ(sum.resident_misses, delta.Counter("sched.resident_misses"));
  EXPECT_EQ(sum.bytes_spilled, delta.Counter("mem.spill.write_bytes"));
  EXPECT_EQ(sum.evictions, delta.Counter("mem.evictions"));
  EXPECT_EQ(sum.bytes_reloaded, delta.Counter("mem.reload.read_bytes"));
  EXPECT_EQ(sum.bytes_prefetched, delta.Counter("mem.prefetch.read_bytes"));
  EXPECT_EQ(sum.prefetch_skips, delta.Counter("mem.prefetch.skipped"));
  EXPECT_EQ(sum.shuffle_pushed_bytes,
            delta.Counter("engine.shuffle.pushed_bytes"));

  // The workload really exercised the machinery: every query ran tasks,
  // and the 25% budget forced spill/reload traffic somewhere.
  EXPECT_GT(sum.tasks, 0u);
  EXPECT_GT(sum.bytes_spilled, 0u);
  for (const QueryHandle& h : handles) {
    obs::QueryProfileSnapshot snap;
    ASSERT_TRUE(obs::QueryProfileRegistry::Global().Snapshot(h.id(), &snap));
    EXPECT_GT(snap.tasks, 0u) << "query " << h.id();
    EXPECT_GT(snap.task_wall_us, 0u) << "query " << h.id();
    EXPECT_FALSE(snap.stages.empty()) << "query " << h.id();
  }
}

// ---- determinism across reruns ----------------------------------------------

TEST(QueryProfileTest, TaskAttributionIsDeterministicAcrossReruns) {
  // Steals and residency hits depend on thread timing, but the *tasks each
  // query runs* are a function of its plan alone. The label-keyed task
  // projection of the profiles must be identical across reruns.
  auto run = [](int round) {
    const std::string table = "det_edges_" + std::to_string(round);
    Session session(ServeClusterOptions());
    IndexOptions index_options;
    index_options.batch_capacity = 4 << 10;
    auto edges =
        *session.CreateTable(table + "_base", EdgeSchema(), DenseEdges(4000));
    auto probe =
        *session.CreateTable(table + "_probe", EdgeSchema(), DenseEdges(300));
    auto indexed = *IndexedDataFrame::Create(edges, "src", index_options);
    indexed.RegisterAs(table);
    auto extra_a =
        *session.CreateTable(table + "_a", EdgeSchema(), DenseEdges(1200, 7));
    auto extra_b =
        *session.CreateTable(table + "_b", EdgeSchema(), DenseEdges(900, 31));
    std::vector<Mixed> workload =
        BuildWorkload(indexed, table, probe, extra_a, extra_b);

    mem::MemoryGovernor& gov = mem::MemoryGovernor::Global();
    const uint64_t budget_bytes =
        std::max<uint64_t>(gov.resident_bytes() / 4, 256 << 10);
    mem::ScopedBudget budget(budget_bytes);
    QueryService service(session,
                         ServeConfig(/*workers=*/4, budget_bytes / 8));
    std::vector<QueryHandle> handles;
    for (Mixed& m : workload) {
      QueryOptions options;
      options.label = m.name;
      handles.push_back(service.Submit(m.work, options));
    }
    std::map<std::string, uint64_t> tasks_by_label;
    for (size_t i = 0; i < handles.size(); ++i) {
      EXPECT_TRUE(handles[i].Wait().ok()) << workload[i].name;
      obs::QueryProfileSnapshot snap;
      EXPECT_TRUE(
          obs::QueryProfileRegistry::Global().Snapshot(handles[i].id(), &snap));
      tasks_by_label[workload[i].name] = snap.tasks;
    }
    service.Shutdown(/*cancel_pending=*/false);
    return tasks_by_label;
  };
  const std::map<std::string, uint64_t> first = run(1);
  const std::map<std::string, uint64_t> second = run(2);
  EXPECT_EQ(first, second);
  for (const auto& [label, tasks] : first) {
    EXPECT_GT(tasks, 0u) << label;
  }
}

// ---- /queries/<id> endpoint -------------------------------------------------

TEST(QueryProfileTest, QueryEndpointServesRecordProfileAndEvents) {
  obs::IntrospectionServer& server = obs::IntrospectionServer::Global();
  Result<uint16_t> started = server.Start(0);
  const uint16_t port = started.ok() ? *started : server.port();
  ASSERT_GT(port, 0);

  Session session(ServeClusterOptions());
  auto edges =
      *session.CreateTable("ep_edges", EdgeSchema(), DenseEdges(2000));
  auto indexed = *IndexedDataFrame::Create(edges, "src", IndexOptions{});
  QueryService service(session, ServeConfig(/*workers=*/2, 1 << 20));
  QueryOptions options;
  options.label = "endpoint_probe";
  QueryHandle handle = service.Submit(
      [&indexed](server::QueryContext& ctx) -> Status {
        IDF_ASSIGN_OR_RETURN(ctx.result, indexed.GetRows(Value::Int64(13)));
        return Status::OK();
      },
      options);
  ASSERT_TRUE(handle.Wait().ok());

  const std::string doc =
      HttpGet(port, "/queries/" + std::to_string(handle.id()));
  EXPECT_NE(doc.find("200 OK"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"record\":"), std::string::npos);
  EXPECT_NE(doc.find("\"endpoint_probe\""), std::string::npos);
  EXPECT_NE(doc.find("\"profile\":"), std::string::npos);
  EXPECT_NE(doc.find("\"events\":["), std::string::npos);
  EXPECT_NE(doc.find("\"tasks\":"), std::string::npos);

  // Unknown id and malformed id answer 404, not 200-with-garbage.
  EXPECT_NE(HttpGet(port, "/queries/18446744073709551610").find("404"),
            std::string::npos);
  EXPECT_NE(HttpGet(port, "/queries/not-a-number").find("404"),
            std::string::npos);
  service.Shutdown(/*cancel_pending=*/false);
}

}  // namespace
}  // namespace idf
