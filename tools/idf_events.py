#!/usr/bin/env python3
"""Decode an IDF flight-recorder journal into a per-stage timeline.

The flight recorder (src/obs/flight_recorder.h) dumps JSONL events — one
object per line with fields seq, ts_us, type, tid, name, a, b, c. This tool
groups task events by stage and interleaves governor/storage activity
(spills, evictions, reloads, prefetch decisions) by timestamp, so a single
journal reads as "what the scheduler and the memory governor were doing to
each other" during a run.

Every event carries a `q` field: the id of the query whose work produced
it (0 = unattributed background work). `--query N` narrows every view to
one query; the summary always ends with a per-query attribution table.

Usage:
  tools/idf_events.py journal.jsonl              # per-stage timeline
  tools/idf_events.py journal.jsonl --summary    # counts only
  tools/idf_events.py journal.jsonl --raw        # normalized event dump
  tools/idf_events.py journal.jsonl --query 7    # one query's events only
  tools/idf_events.py journal.jsonl --strict     # nonzero exit on bad input

Malformed (truncated) lines and unknown event kinds are skipped and
counted; they fail the run (exit 2) only under --strict, so a journal from
a newer binary still decodes on a best-effort basis.

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import sys
from collections import Counter, defaultdict

# Payload-field meaning per event type (see obs::EventType).
TASK_EVENTS = {"task_start", "task_finish", "task_fail", "steal",
               "resident_hit", "resident_miss"}
GOVERNOR_EVENTS = {"evict", "spill_write", "reload_demand", "reload_prefetch",
                   "prefetch_skip", "batch_seal"}
ENGINE_EVENTS = {"recovery_block", "executor_kill"}
SHUFFLE_EVENTS = {"shuffle_push", "shuffle_drain", "shuffle_stall"}
QUERY_EVENTS = {"query_submit", "query_admit", "query_reject", "query_start",
                "query_finish", "query_cancel", "query_deadline"}
CHAOS_EVENTS = {"chaos_arm", "chaos_fault"}
META_EVENTS = {"crash", "build_info"}

KNOWN_EVENTS = (TASK_EVENTS | GOVERNOR_EVENTS | ENGINE_EVENTS |
                SHUFFLE_EVENTS | QUERY_EVENTS | CHAOS_EVENTS | META_EVENTS)

# chaos_fault packs a = site << 8 | kind (see idf::chaos::Site / Fault).
CHAOS_SITES = {1: "task", 2: "reload", 3: "shuffle-push", 4: "shuffle-pull",
               5: "admission"}
CHAOS_FAULTS = {1: "task-delay", 2: "evict-world", 3: "kill-executor",
                4: "cancel-query", 5: "expire-query", 6: "budget-squeeze",
                7: "reload-fail", 8: "reload-delay", 9: "prefetch-fail",
                10: "shuffle-delay", 11: "shuffle-abort", 12: "admit-delay"}


def load_events(path):
    """Parses a JSONL journal. Malformed lines (a crash dump may be truncated
    mid-line) and unknown event kinds (journal from a newer binary) are
    skipped and counted, not fatal — see --strict."""
    events = []
    dropped = 0
    unknown = Counter()
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                ev = json.loads(line)
            except json.JSONDecodeError:
                dropped += 1
                continue
            if not isinstance(ev, dict) or "type" not in ev:
                dropped += 1
                continue
            if ev["type"] not in KNOWN_EVENTS:
                unknown[ev["type"]] += 1
                continue
            events.append(ev)
    events.sort(key=lambda e: (e.get("ts_us", 0), e.get("seq", 0)))
    return events, dropped, unknown


def fmt_bytes(n):
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024.0
    return f"{n}B"


def describe(ev):
    """One human line per event; a/b/c meanings follow obs::EventType docs."""
    t = ev["type"]
    a, b, c = ev.get("a", 0), ev.get("b", 0), ev.get("c", 0)
    if t == "task_start":
        return f"task {a} start on executor {b}"
    if t == "task_finish":
        return f"task {a} finish on executor {b} ({c} us)"
    if t == "task_fail":
        return f"task {a} FAILED on executor {b} ({c} us)"
    if t == "steal":
        return f"task {a} stolen from lane {b}"
    if t == "resident_hit":
        return f"task {a} dispatched resident (inputs in memory)"
    if t == "resident_miss":
        return f"task {a} dispatched non-resident (spilled inputs)"
    if t == "evict":
        return f"evict {fmt_bytes(a)} rdd={b} shard={c}"
    if t == "spill_write":
        return f"spill write {fmt_bytes(a)} rdd={b} shard={c}"
    if t == "reload_demand":
        return f"demand reload {fmt_bytes(a)} rdd={b} shard={c}"
    if t == "reload_prefetch":
        return f"prefetch reload {fmt_bytes(a)} rdd={b} shard={c}"
    if t == "prefetch_skip":
        return f"prefetch skipped (no headroom) {fmt_bytes(a)} rdd={b} shard={c}"
    if t == "batch_seal":
        return f"batch sealed {fmt_bytes(a)} rdd={b} shard={c}"
    if t == "shuffle_push":
        return f"shuffle push {fmt_bytes(a)} map={b} -> reduce={c}"
    if t == "shuffle_drain":
        return f"shuffle drain {fmt_bytes(a)} map={b} -> reduce={c}"
    if t == "shuffle_stall":
        side = "push (window full)" if c == 0 else "drain (waiting for data)"
        return f"shuffle stall {a / 1000.0:.1f}ms on task {b}, {side}"
    if t == "query_submit":
        return (f"query {a} submitted (reservation {fmt_bytes(b)}, "
                f"queue depth {c})")
    if t == "query_admit":
        return (f"query {a} admitted (reservation {fmt_bytes(b)}, "
                f"queued {c / 1000.0:.1f}ms)")
    if t == "query_reject":
        reason = "queue full" if c == 0 else "reservation does not fit"
        return f"query {a} REJECTED ({reason}, reservation {fmt_bytes(b)})"
    if t == "query_start":
        return f"query {a} start (reservation {fmt_bytes(b)}, priority {c})"
    if t == "query_finish":
        outcome = "OK" if b == 0 else f"status code {b}"
        return f"query {a} finish {outcome} ({c / 1000.0:.1f}ms running)"
    if t == "query_cancel":
        phase = "while queued" if b == 0 else "while running"
        return f"query {a} cancelled {phase} ({c / 1000.0:.1f}ms after submit)"
    if t == "query_deadline":
        phase = "while queued" if b == 0 else "while running"
        return (f"query {a} deadline expired {phase} "
                f"({c / 1000.0:.1f}ms after submit)")
    if t == "recovery_block":
        return f"recovery: recomputed rdd={a} partition={b} ({c} us)"
    if t == "executor_kill":
        return f"executor {b} killed, {c} blocks lost"
    if t == "chaos_arm":
        return f"chaos armed, seed {a} (replay with IDF_CHAOS_SEED={a})"
    if t == "chaos_fault":
        site = CHAOS_SITES.get(a >> 8, f"site-{a >> 8}")
        kind = CHAOS_FAULTS.get(a & 0xFF, f"kind-{a & 0xFF}")
        aux = ""
        if kind in ("task-delay", "reload-delay", "shuffle-delay",
                    "admit-delay"):
            aux = f" ({c} us)"
        elif kind == "evict-world":
            aux = f" ({c} evicted)"
        elif kind in ("reload-fail", "prefetch-fail"):
            aux = f" (reload #{c})"
        elif kind == "kill-executor":
            aux = f" (executor {c})"
        return f"CHAOS {kind} at {site} site, key {b:#x}{aux}"
    if t == "crash":
        return f"FATAL SIGNAL {a} — journal dumped by crash handler"
    if t == "build_info":
        return f"build {ev.get('name', '?')} (up {a}s)"
    return f"{t} a={a} b={b} c={c}"


def build_stages(events):
    """Groups events into per-stage windows.

    Task events carry the stage name; governor/storage events carry none, so
    they are attributed to whichever stages are live at their timestamp
    (between the stage's first task_start and last task end)."""
    stages = {}  # name -> dict(first_ts, last_ts, events)
    order = []
    for ev in events:
        if ev["type"] in TASK_EVENTS and ev.get("name"):
            name = ev["name"]
            if name not in stages:
                stages[name] = {"first": ev["ts_us"], "last": ev["ts_us"],
                                "events": []}
                order.append(name)
            st = stages[name]
            st["first"] = min(st["first"], ev["ts_us"])
            st["last"] = max(st["last"], ev["ts_us"])
            st["events"].append(ev)
    unattributed = []
    for ev in events:
        if ev["type"] in TASK_EVENTS and ev.get("name"):
            continue
        ts = ev.get("ts_us", 0)
        hosts = [n for n in order
                 if stages[n]["first"] <= ts <= stages[n]["last"]]
        if hosts:
            for n in hosts:
                stages[n]["events"].append(ev)
        else:
            unattributed.append(ev)
    for st in stages.values():
        st["events"].sort(key=lambda e: (e.get("ts_us", 0), e.get("seq", 0)))
    return order, stages, unattributed


def print_timeline(events, out=sys.stdout):
    crash = [e for e in events if e["type"] == "crash"]
    if crash:
        build = [e for e in events if e["type"] == "build_info"]
        print("=" * 66, file=out)
        print(f"  CRASH JOURNAL: {describe(crash[0])}", file=out)
        if build:
            print(f"  {describe(build[-1])}", file=out)
        print("=" * 66, file=out)
    order, stages, unattributed = build_stages(events)
    base_ts = events[0]["ts_us"] if events else 0
    for name in order:
        st = stages[name]
        tasks = Counter(e["type"] for e in st["events"])
        dur_ms = (st["last"] - st["first"]) / 1000.0
        print(f"\nstage {name!r}  "
              f"[{tasks['task_start']} tasks, {dur_ms:.1f} ms window]",
              file=out)
        gov = sum(1 for e in st["events"] if e["type"] in GOVERNOR_EVENTS)
        if gov:
            print(f"  governor activity during stage: {gov} events", file=out)
        shuf = sum(1 for e in st["events"] if e["type"] in SHUFFLE_EVENTS)
        if shuf:
            print(f"  shuffle activity during stage: {shuf} events", file=out)
        for ev in st["events"]:
            rel_ms = (ev["ts_us"] - base_ts) / 1000.0
            marker = "·" if ev["type"] in TASK_EVENTS else ">"
            print(f"  {rel_ms:10.3f}ms {marker} tid={ev.get('tid', 0):<3} "
                  f"q={ev.get('q', 0):<3} {describe(ev)}", file=out)
    if unattributed:
        print(f"\noutside any stage window ({len(unattributed)} events):",
              file=out)
        for ev in unattributed:
            rel_ms = (ev.get("ts_us", 0) - base_ts) / 1000.0
            print(f"  {rel_ms:10.3f}ms > tid={ev.get('tid', 0):<3} "
                  f"q={ev.get('q', 0):<3} {describe(ev)}", file=out)


def print_summary(events, out=sys.stdout):
    by_type = Counter(e["type"] for e in events)
    print(f"{len(events)} events", file=out)
    for t, n in sorted(by_type.items()):
        print(f"  {t:<16} {n}", file=out)
    spilled = sum(e.get("a", 0) for e in events if e["type"] == "spill_write")
    reloaded = sum(e.get("a", 0) for e in events
                   if e["type"] in ("reload_demand", "reload_prefetch"))
    if spilled or reloaded:
        print(f"  bytes spilled={fmt_bytes(spilled)} "
              f"reloaded={fmt_bytes(reloaded)}", file=out)
    pushed = sum(e.get("a", 0) for e in events if e["type"] == "shuffle_push")
    stalled_us = sum(e.get("a", 0) for e in events
                     if e["type"] == "shuffle_stall")
    if pushed or stalled_us:
        print(f"  shuffle pushed={fmt_bytes(pushed)} "
              f"stalled={stalled_us / 1000.0:.1f}ms", file=out)
    submits = by_type.get("query_submit", 0)
    if submits:
        finishes = [e for e in events if e["type"] == "query_finish"]
        failed = sum(1 for e in finishes if e.get("b", 0) != 0)
        queued_us = sum(e.get("c", 0) for e in events
                        if e["type"] == "query_admit")
        run_us = sum(e.get("c", 0) for e in finishes)
        print(f"  queries: {submits} submitted, "
              f"{by_type.get('query_admit', 0)} admitted, "
              f"{by_type.get('query_reject', 0)} rejected, "
              f"{by_type.get('query_cancel', 0)} cancelled, "
              f"{by_type.get('query_deadline', 0)} expired, "
              f"{failed} failed", file=out)
        if finishes:
            print(f"  query time: queued {queued_us / 1000.0:.1f}ms total, "
                  f"running {run_us / 1000.0:.1f}ms total "
                  f"({run_us / len(finishes) / 1000.0:.1f}ms mean)", file=out)
    arms = [e for e in events if e["type"] == "chaos_arm"]
    faults = [e for e in events if e["type"] == "chaos_fault"]
    if arms or faults:
        seeds = sorted({e.get("a", 0) for e in arms})
        by_kind = Counter(CHAOS_FAULTS.get(e.get("a", 0) & 0xFF,
                                           f"kind-{e.get('a', 0) & 0xFF}")
                          for e in faults)
        kinds = ", ".join(f"{k}={n}" for k, n in sorted(by_kind.items()))
        print(f"  chaos: armed seeds {seeds}, {len(faults)} faults injected"
              + (f" ({kinds})" if kinds else ""), file=out)
    by_stage = defaultdict(Counter)
    for e in events:
        if e["type"] in TASK_EVENTS and e.get("name"):
            by_stage[e["name"]][e["type"]] += 1
    for name, counts in by_stage.items():
        hits, misses = counts["resident_hit"], counts["resident_miss"]
        extra = f", residency {hits}H/{misses}M" if hits or misses else ""
        print(f"  stage {name!r}: {counts['task_start']} tasks, "
              f"{counts['steal']} steals{extra}", file=out)
    print_query_table(events, out=out)


def print_query_table(events, out=sys.stdout):
    """Per-query attribution: what each query id cost, from its events."""
    by_q = defaultdict(Counter)
    for e in events:
        q = e.get("q", 0)
        t = e["type"]
        by_q[q][t] += 1
        if t == "spill_write":
            by_q[q]["spilled_bytes"] += e.get("a", 0)
        elif t in ("reload_demand", "reload_prefetch"):
            by_q[q]["reloaded_bytes"] += e.get("a", 0)
        elif t == "shuffle_stall":
            by_q[q]["stall_us"] += e.get("a", 0)
    if set(by_q) <= {0}:
        return
    print("  per-query attribution:", file=out)
    for q in sorted(by_q):
        c = by_q[q]
        who = "(unattributed)" if q == 0 else ""
        parts = [f"{c['task_finish'] + c['task_fail']} tasks"]
        if c["steal"]:
            parts.append(f"{c['steal']} steals")
        if c["resident_hit"] or c["resident_miss"]:
            parts.append(f"{c['resident_hit']}H/{c['resident_miss']}M")
        if c["spilled_bytes"]:
            parts.append(f"spilled {fmt_bytes(c['spilled_bytes'])}")
        if c["reloaded_bytes"]:
            parts.append(f"reloaded {fmt_bytes(c['reloaded_bytes'])}")
        if c["stall_us"]:
            parts.append(f"stalled {c['stall_us'] / 1000.0:.1f}ms")
        print(f"    q={q:<4} {', '.join(parts)} {who}".rstrip(), file=out)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("journal", help="flight-recorder JSONL journal")
    parser.add_argument("--summary", action="store_true",
                        help="print aggregate counts only")
    parser.add_argument("--raw", action="store_true",
                        help="print every event, decoded, in time order")
    parser.add_argument("--query", type=int, metavar="ID",
                        help="only events attributed to this query id")
    parser.add_argument("--strict", action="store_true",
                        help="exit 2 when any line was malformed or any "
                             "event kind was unknown")
    args = parser.parse_args()

    events, dropped, unknown = load_events(args.journal)
    if dropped:
        print(f"warning: skipped {dropped} malformed line(s)", file=sys.stderr)
    if unknown:
        kinds = ", ".join(f"{k} x{n}" for k, n in sorted(unknown.items()))
        print(f"warning: skipped {sum(unknown.values())} event(s) of "
              f"unknown kind(s): {kinds}", file=sys.stderr)
    if args.strict and (dropped or unknown):
        return 2
    if args.query is not None:
        events = [e for e in events if e.get("q", 0) == args.query]
        if not events:
            print(f"no events attributed to query {args.query}",
                  file=sys.stderr)
            return 1
    if not events:
        print("no events in journal", file=sys.stderr)
        return 1

    if args.summary:
        print_summary(events)
    elif args.raw:
        base_ts = events[0]["ts_us"]
        for ev in events:
            rel_ms = (ev["ts_us"] - base_ts) / 1000.0
            print(f"{rel_ms:10.3f}ms tid={ev.get('tid', 0):<3} "
                  f"q={ev.get('q', 0):<3} {describe(ev)}")
    else:
        print_timeline(events)
        print()
        print_summary(events)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Piped into `head` etc.: exit quietly, and detach stdout so the
        # interpreter's shutdown flush doesn't raise a second error.
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
