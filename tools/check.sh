#!/usr/bin/env bash
# Smoke check: configure, build, and run the test suite.
#
#   tools/check.sh                 # plain RelWithDebInfo build in build/
#   tools/check.sh thread          # TSan build in build-tsan/
#   tools/check.sh address         # ASan+UBSan build in build-asan/
#   IDF_SANITIZE=thread tools/check.sh   # same as `tools/check.sh thread`
#
# Remaining args are passed through to ctest (e.g. tools/check.sh -R Obs,
# or tools/check.sh thread -R "Cluster|Scheduler").
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE="${IDF_SANITIZE:-}"
case "${1:-}" in
  thread|address) SANITIZE="$1"; shift ;;
esac
case "$SANITIZE" in
  "")       BUILD_DIR=build ;;
  thread)   BUILD_DIR=build-tsan ;;
  address)  BUILD_DIR=build-asan ;;
  *) echo "error: IDF_SANITIZE must be 'thread' or 'address'" >&2; exit 2 ;;
esac

if [[ "$SANITIZE" == thread ]]; then
  # Silence the libstdc++ atomic<shared_ptr> artifact (see tools/tsan.supp);
  # user-provided TSAN_OPTIONS still apply.
  export TSAN_OPTIONS="suppressions=$PWD/tools/tsan.supp ${TSAN_OPTIONS:-}"
fi

cmake -B "$BUILD_DIR" -S . -DIDF_SANITIZE="$SANITIZE"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"
