#!/usr/bin/env bash
# Smoke check: configure, build, and run the test suite.
#
#   tools/check.sh                 # plain RelWithDebInfo build in build/
#   tools/check.sh thread          # TSan build in build-tsan/
#   tools/check.sh address         # ASan+UBSan build in build-asan/
#   tools/check.sh chaos           # seeded fault-injection gate (ctest -L
#                                  # chaos) under a small memory budget
#   IDF_SANITIZE=thread tools/check.sh         # same as `tools/check.sh thread`
#   IDF_SANITIZE=thread tools/check.sh chaos   # the CI chaos leg: TSan + chaos
#
# Chaos knobs (see docs/TESTING.md): IDF_CHAOS_SWEEP bounds the seed sweep,
# IDF_CHAOS_SEED replays one failing seed, IDF_MEMORY_BUDGET (default 64m in
# chaos mode) keeps the spill/reload machinery engaged.
#
# Remaining args are passed through to ctest (e.g. tools/check.sh -R Obs,
# or tools/check.sh thread -R "Cluster|Scheduler").
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE="${IDF_SANITIZE:-}"
CHAOS=0
while :; do
  case "${1:-}" in
    thread|address) SANITIZE="$1"; shift ;;
    chaos)          CHAOS=1; shift ;;
    *) break ;;
  esac
done
case "$SANITIZE" in
  "")       BUILD_DIR=build ;;
  thread)   BUILD_DIR=build-tsan ;;
  address)  BUILD_DIR=build-asan ;;
  *) echo "error: IDF_SANITIZE must be 'thread' or 'address'" >&2; exit 2 ;;
esac

if [[ "$SANITIZE" == thread ]]; then
  # Silence the libstdc++ atomic<shared_ptr> artifact (see tools/tsan.supp);
  # user-provided TSAN_OPTIONS still apply.
  export TSAN_OPTIONS="suppressions=$PWD/tools/tsan.supp ${TSAN_OPTIONS:-}"
fi

cmake -B "$BUILD_DIR" -S . -DIDF_SANITIZE="$SANITIZE"
cmake --build "$BUILD_DIR" -j "$(nproc)"
if [[ "$CHAOS" == 1 ]]; then
  # The differential gate must hold under memory pressure; default to a
  # budget small enough that evictions, spills, and reloads all fire.
  export IDF_MEMORY_BUDGET="${IDF_MEMORY_BUDGET:-64m}"
  echo "[check] chaos gate: IDF_MEMORY_BUDGET=$IDF_MEMORY_BUDGET" \
       "IDF_CHAOS_SWEEP=${IDF_CHAOS_SWEEP:-20 (default)}" >&2
  ctest --test-dir "$BUILD_DIR" --output-on-failure -L chaos "$@"
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"
fi
