#!/usr/bin/env bash
# Smoke check: configure, build, and run the test suite.
#
#   tools/check.sh                 # plain RelWithDebInfo build in build/
#   IDF_SANITIZE=thread tools/check.sh   # TSan build in build-tsan/
#   IDF_SANITIZE=address tools/check.sh  # ASan+UBSan build in build-asan/
#
# Extra args are passed through to ctest (e.g. tools/check.sh -R Obs).
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE="${IDF_SANITIZE:-}"
case "$SANITIZE" in
  "")       BUILD_DIR=build ;;
  thread)   BUILD_DIR=build-tsan ;;
  address)  BUILD_DIR=build-asan ;;
  *) echo "error: IDF_SANITIZE must be 'thread' or 'address'" >&2; exit 2 ;;
esac

cmake -B "$BUILD_DIR" -S . -DIDF_SANITIZE="$SANITIZE"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"
