// Table III reproduction: probe/build/result sizes of the S/M/L/XL joins.
//
// Paper (1B-row build side): S=10K probe -> 1.5M result, M=100K -> 14M,
// L=1M -> 110M, XL=10M -> 1B. We keep the probe:build ratios (1e-5 .. 1e-2)
// at a memory-feasible build size and report the measured result sizes.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/indexed_dataframe.h"
#include "workload/snb.h"

using namespace idf;

int main(int argc, char** argv) {
  idf::bench::ObsGuard obs(argc, argv);
  const double scale = bench::ScaleEnv();
  SessionOptions options = bench::PrivateCluster();
  bench::PrintHeader("Table III", "join probe/build/result sizes",
                     "result grows superlinearly in the probe size "
                     "(power-law key multiplicities)",
                     options);
  Session session(options);

  const SnbConfig config = SnbConfig::ScaleFactor(2.0 * scale, 32);
  SnbGenerator generator(config);
  DataFrame edges = generator.Edges(session).value();
  IndexedDataFrame indexed =
      IndexedDataFrame::Create(edges, "edge_source").value();

  struct JoinScale {
    const char* name;
    double probe_fraction;  // of the build size
    const char* paper;
  };
  const JoinScale scales[] = {
      {"S", 1e-5, "probe 10K, result 1.5M (of 1B build)"},
      {"M", 1e-4, "probe 100K, result 14M"},
      {"L", 1e-3, "probe 1M, result 110M"},
      {"XL", 1e-2, "probe 10M, result 1B"},
  };

  std::printf("%-5s %-14s %-14s %-14s %-10s %s\n", "Scale", "Probe(rows)",
              "Build(rows)", "Result(rows)", "Result/Probe", "Paper");
  for (const JoinScale& s : scales) {
    const uint64_t probe_rows = std::max<uint64_t>(
        4, static_cast<uint64_t>(s.probe_fraction *
                                 static_cast<double>(config.num_edges)));
    DataFrame probe =
        generator.EdgeSample(session, probe_rows, /*seed=*/1234).value();
    const uint64_t result = indexed.Join(probe, "edge_source").Count().value();
    std::printf("%-5s %-14llu %-14llu %-14llu %-10.1f %s\n", s.name,
                static_cast<unsigned long long>(probe_rows),
                static_cast<unsigned long long>(config.num_edges),
                static_cast<unsigned long long>(result),
                static_cast<double>(result) / static_cast<double>(probe_rows),
                s.paper);
  }
  bench::PrintFooter();
  return 0;
}
