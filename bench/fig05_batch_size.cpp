// Fig. 5 reproduction: row-batch-size sensitivity of the Indexed DataFrame,
// read and write performance normalized to 4 KB batches (the OS page size).
//
// Paper: both reads and writes peak around 4 MB; much larger batches are
// "exceptionally poor for writes" (up-front page-touch/allocation cost that
// small appends cannot amortize), tiny batches hurt reads (many buffers,
// poor locality) and writes (frequent allocation).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/indexed_partition.h"
#include "workload/snb.h"

using namespace idf;

int main(int argc, char** argv) {
  idf::bench::ObsGuard obs(argc, argv);
  const double scale = bench::ScaleEnv();
  const int reps = bench::RepsEnv(5);
  SessionOptions options;  // single-partition microbench: topology unused
  bench::PrintHeader("Fig. 5", "row batch size sweep (read & write)",
                     "sweet spot at ~4 MB; small batches hurt both; huge "
                     "batches hurt writes",
                     options);

  const uint64_t rows = static_cast<uint64_t>(200000 * scale);
  const uint64_t keys = rows / 50;
  SnbConfig snb;
  snb.num_vertices = keys;
  snb.num_edges = rows;
  SnbGenerator generator(snb);

  struct Point {
    uint32_t batch_bytes;
    const char* label;
  };
  const Point points[] = {
      {4u << 10, "4 KB"},   {64u << 10, "64 KB"}, {1u << 20, "1 MB"},
      {4u << 20, "4 MB"},   {16u << 20, "16 MB"}, {64u << 20, "64 MB"},
  };

  // Pre-generate rows once so the sweep measures storage, not generation.
  std::vector<RowVec> data;
  data.reserve(rows);
  for (uint64_t i = 0; i < rows; ++i) data.push_back(generator.EdgeRow(i));

  double write_baseline = 0, read_baseline = 0;
  std::printf("%-8s %-22s %-22s %-10s %-10s\n", "Batch", "write (rows/s)",
              "read (lookups/s)", "write_norm", "read_norm");
  for (const Point& point : points) {
    Sample write_s, read_s;
    for (int r = 0; r < reps; ++r) {
      // Write path: bulk insert, including the paper's "append" mechanics
      // (batch allocation, backward chains). Fresh partition per rep.
      Stopwatch write_timer;
      IndexedPartition part(SnbGenerator::EdgeSchema(), 0, point.batch_bytes);
      for (const RowVec& row : data) IDF_CHECK_OK(part.InsertRow(row));
      write_s.Add(write_timer.ElapsedSeconds());

      // Read path: keyed lookups walking backward chains across batches.
      Stopwatch read_timer;
      uint64_t matched = 0;
      for (uint64_t k = 0; k < keys; ++k) {
        part.ForEachRowOfKey(IndexKeyCode(Value::Int64(static_cast<int64_t>(k))),
                             [&](const uint8_t*) { ++matched; });
      }
      read_s.Add(read_timer.ElapsedSeconds());
      IDF_CHECK(matched == rows);
    }
    const double write_rate = static_cast<double>(rows) / write_s.Median();
    const double read_rate = static_cast<double>(keys) / read_s.Median();
    if (point.batch_bytes == (4u << 10)) {
      write_baseline = write_rate;
      read_baseline = read_rate;
    }
    std::printf("%-8s %-22.0f %-22.0f %-10.2f %-10.2f\n", point.label,
                write_rate, read_rate, write_rate / write_baseline,
                read_rate / read_baseline);
  }
  std::printf("(normalized to 4 KB batches, as in the paper; >1 is better)\n");
  bench::PrintFooter();
  return 0;
}
