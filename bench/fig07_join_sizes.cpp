// Fig. 7 reproduction: Indexed DataFrame vs vanilla Spark join across the
// S/M/L/XL probe sizes of Table III.
//
// Paper: "irrespective of the probe size, our Indexed DataFrame is faster
// than Spark with speed-ups in the range of 3 and 8".
#include <cstdio>

#include "bench/bench_util.h"
#include "core/indexed_dataframe.h"
#include "workload/snb.h"

using namespace idf;

int main(int argc, char** argv) {
  idf::bench::ObsGuard obs(argc, argv);
  const double scale = bench::ScaleEnv();
  const int reps = bench::RepsEnv(10);
  SessionOptions options = bench::PrivateCluster();
  // Scale Spark's 10 MB broadcast threshold with the dataset: at paper scale
  // (1B-row build) the S/M probes broadcast while L/XL exceed the threshold
  // and force vanilla to shuffle BOTH relations on every query — the regime
  // responsible for the paper's 3-8x gap. Keeping 10 MB at our reduced scale
  // would let every probe broadcast and mask that effect.
  options.broadcast_threshold_bytes =
      static_cast<uint64_t>(50.0 * 1024 * scale);
  bench::PrintHeader("Fig. 7", "join runtime vs probe size (S/M/L/XL)",
                     "indexed wins at every probe size, 3-8x", options);
  Session session(options);

  const SnbConfig snb = SnbConfig::ScaleFactor(2.0 * scale, 32);
  SnbGenerator generator(snb);
  DataFrame edges = generator.Edges(session).value();
  IndexedDataFrame indexed =
      IndexedDataFrame::Create(edges, "edge_source").value();

  struct Point {
    const char* name;
    double fraction;
  };
  const Point points[] = {{"S", 1e-5}, {"M", 1e-4}, {"L", 1e-3}, {"XL", 1e-2}};

  std::printf("%-5s %-11s %-13s %-13s %-8s %-13s %-13s %-8s %s\n", "Size",
              "probe rows", "van cpu(ms)", "idx cpu(ms)", "cpu x",
              "van sim(ms)", "idx sim(ms)", "sim x", "result");
  for (const Point& point : points) {
    const uint64_t probe_rows = std::max<uint64_t>(
        4, static_cast<uint64_t>(point.fraction *
                                 static_cast<double>(snb.num_edges)));
    DataFrame probe =
        generator.EdgeSample(session, probe_rows, /*seed=*/2000).value();

    uint64_t result_rows = 0;
    Sample vanilla_cpu, vanilla_sim;
    for (int r = 0; r < reps; ++r) {
      QueryMetrics metrics;
      Stopwatch timer;
      result_rows = edges.Join(probe, "edge_source", "edge_source")
                        .Count(&metrics)
                        .value();
      vanilla_cpu.Add(timer.ElapsedSeconds());
      vanilla_sim.Add(metrics.simulated_seconds);
    }
    Sample fast_cpu, fast_sim;
    for (int r = 0; r < reps; ++r) {
      QueryMetrics metrics;
      Stopwatch timer;
      (void)indexed.Join(probe, "edge_source").Count(&metrics).value();
      fast_cpu.Add(timer.ElapsedSeconds());
      fast_sim.Add(metrics.simulated_seconds);
    }
    std::printf("%-5s %-11llu %-13.1f %-13.1f %-8.1f %-13.1f %-13.1f %-8.1f "
                "%llu\n",
                point.name, static_cast<unsigned long long>(probe_rows),
                vanilla_cpu.Mean() * 1e3, fast_cpu.Mean() * 1e3,
                vanilla_cpu.Mean() / fast_cpu.Mean(),
                vanilla_sim.Mean() * 1e3, fast_sim.Mean() * 1e3,
                vanilla_sim.Mean() / fast_sim.Mean(),
                static_cast<unsigned long long>(result_rows));
  }
  std::printf("(vanilla = BroadcastHash/ShuffledHash chosen by size, rebuilt "
              "per query; indexed = pre-built cTrie probe.\n"
              " 'sim' = discrete-event cluster time incl. network; 'cpu' = "
              "single-host compute)\n");
  bench::PrintFooter();
  return 0;
}
