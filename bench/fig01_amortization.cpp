// Fig. 1 reproduction: cost breakdown of 5 consecutive join runs on a
// Broconn-like table, vanilla vs Indexed DataFrame.
//
// Paper: flame graphs on the Databricks Runtime show vanilla Spark repeating
// the networked operations and hash-table building on every run, while the
// Indexed DataFrame pays the index build once and amortizes it.
// We print the equivalent numbers: per-run total time, time spent building
// hash tables, and simulated network time.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/indexed_dataframe.h"
#include "workload/broconn.h"

using namespace idf;

int main(int argc, char** argv) {
  idf::bench::ObsGuard obs(argc, argv);
  const double scale = bench::ScaleEnv();
  SessionOptions options = bench::Ec2Cluster(4, /*big=*/false);  // 4x i3.xlarge
  bench::PrintHeader(
      "Fig. 1", "5 consecutive joins: vanilla vs Indexed DataFrame",
      "vanilla re-pays hash build + shuffle on every run; indexed pays the "
      "index once, then every run is cheap",
      options);
  Session session(options);

  BroconnConfig config;
  config.num_connections = static_cast<uint64_t>(4000000 * scale);
  config.num_hosts = config.num_connections / 20;
  config.partitions = 16;
  BroconnGenerator generator(config);
  DataFrame conns = generator.Connections(session).value();
  // "a small random sampled subset of itself, of less than 10 MB"
  DataFrame sample =
      generator.ConnectionSample(session, 1000, /*seed=*/77).value();

  std::printf("--- vanilla Spark-style (BroadcastHash join rebuilt per run) ---\n");
  double vanilla_total = 0;
  for (int run = 1; run <= 5; ++run) {
    QueryMetrics metrics;
    Stopwatch timer;
    const uint64_t rows =
        conns.Join(sample, "src_ip", "src_ip").Count(&metrics).value();
    const double elapsed = timer.ElapsedSeconds();
    vanilla_total += elapsed;
    std::printf("run %d: %6.0f ms cpu (hash build %5.0f ms) | sim %6.0f ms "
                "(net %4.0f ms) | %llu rows\n",
                run, elapsed * 1e3, metrics.totals.hash_build_seconds * 1e3,
                metrics.simulated_seconds * 1e3, metrics.network_seconds * 1e3,
                static_cast<unsigned long long>(rows));
  }

  std::printf("--- Indexed DataFrame (index built once) ---\n");
  Stopwatch index_timer;
  QueryMetrics index_metrics;
  IndexedDataFrame indexed =
      IndexedDataFrame::Create(conns, "src_ip", {}, &index_metrics).value();
  const double index_seconds = index_timer.ElapsedSeconds();
  std::printf("createIndex: %6.0f ms cpu | sim %6.0f ms (one-time)\n",
              index_seconds * 1e3, index_metrics.simulated_seconds * 1e3);

  double indexed_total = index_seconds;
  for (int run = 1; run <= 5; ++run) {
    QueryMetrics metrics;
    Stopwatch timer;
    const uint64_t rows =
        indexed.Join(sample, "src_ip").Count(&metrics).value();
    const double elapsed = timer.ElapsedSeconds();
    indexed_total += elapsed;
    std::printf("run %d: %6.0f ms cpu (hash build %5.0f ms) | sim %6.0f ms "
                "(net %4.0f ms) | %llu rows\n",
                run, elapsed * 1e3, metrics.totals.hash_build_seconds * 1e3,
                metrics.simulated_seconds * 1e3, metrics.network_seconds * 1e3,
                static_cast<unsigned long long>(rows));
  }

  std::printf("--- summary ---\n");
  const double vanilla_per_run = vanilla_total / 5;
  const double indexed_per_run = (indexed_total - index_seconds) / 5;
  const double break_even =
      index_seconds / std::max(1e-9, vanilla_per_run - indexed_per_run);
  std::printf("per-run: vanilla %.0f ms, indexed %.1f ms -> %.1fx per run\n",
              vanilla_per_run * 1e3, indexed_per_run * 1e3,
              vanilla_per_run / indexed_per_run);
  std::printf("one-time index build %.2f s amortizes after ~%.0f runs; "
              "cumulative over 50 runs: vanilla %.1f s vs indexed %.1f s "
              "(%.1fx)\n",
              index_seconds, break_even, vanilla_per_run * 50,
              index_seconds + indexed_per_run * 50,
              (vanilla_per_run * 50) /
                  (index_seconds + indexed_per_run * 50));
  bench::PrintFooter();
  return 0;
}
