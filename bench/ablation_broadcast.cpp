// Ablation: probe-side broadcast vs shuffle in the indexed join (§III-C:
// "if the Dataframe size is small enough to be broadcasted efficiently, we
// fall back to a broadcast-based join instead of a shuffle").
//
// We force each path via the broadcast threshold and sweep probe sizes to
// locate the crossover the auto heuristic should sit near.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/indexed_dataframe.h"
#include "workload/snb.h"

using namespace idf;

namespace {

struct JoinCost {
  double cpu_ms = 0;
  double sim_ms = 0;
};

JoinCost MeasureJoin(Session& session, const IndexedDataFrame& indexed,
                     const DataFrame& probe, int reps) {
  (void)session;
  Sample cpu, sim;
  for (int r = 0; r < reps; ++r) {
    QueryMetrics metrics;
    Stopwatch timer;
    (void)indexed.Join(probe, "edge_source").Count(&metrics).value();
    cpu.Add(timer.ElapsedSeconds());
    sim.Add(metrics.simulated_seconds);
  }
  return JoinCost{cpu.Mean() * 1e3, sim.Mean() * 1e3};
}

}  // namespace

int main(int argc, char** argv) {
  idf::bench::ObsGuard obs(argc, argv);
  const double scale = bench::ScaleEnv();
  const int reps = bench::RepsEnv(5);
  bench::PrintHeader("Ablation", "indexed join: broadcast vs shuffled probe",
                     "broadcast wins for small probes (no shuffle round), "
                     "shuffle wins once the probe outgrows the cluster NICs",
                     bench::PrivateCluster());

  const SnbConfig snb = SnbConfig::ScaleFactor(1.0 * scale, 32);

  std::printf("%-12s %-14s %-14s %-14s %-14s %-10s\n", "probe rows",
              "bcast cpu", "shuf cpu", "bcast sim", "shuf sim",
              "sim winner");
  for (uint64_t probe_rows : {100ull, 1000ull, 10000ull, 100000ull}) {
    // Force-broadcast session.
    SessionOptions bopt = bench::PrivateCluster();
    bopt.broadcast_threshold_bytes = ~0ull;
    Session bsession(bopt);
    SnbGenerator generator(snb);
    DataFrame bedges = generator.Edges(bsession).value();
    IndexedDataFrame bidx =
        IndexedDataFrame::Create(bedges, "edge_source").value();
    DataFrame bprobe =
        generator.EdgeSample(bsession, probe_rows, 77).value();
    const JoinCost broadcast = MeasureJoin(bsession, bidx, bprobe, reps);

    // Force-shuffle session.
    SessionOptions sopt = bench::PrivateCluster();
    sopt.broadcast_threshold_bytes = 0;
    Session ssession(sopt);
    DataFrame sedges = generator.Edges(ssession).value();
    IndexedDataFrame sidx =
        IndexedDataFrame::Create(sedges, "edge_source").value();
    DataFrame sprobe =
        generator.EdgeSample(ssession, probe_rows, 77).value();
    const JoinCost shuffle = MeasureJoin(ssession, sidx, sprobe, reps);

    std::printf("%-12llu %-14.2f %-14.2f %-14.2f %-14.2f %s\n",
                static_cast<unsigned long long>(probe_rows), broadcast.cpu_ms,
                shuffle.cpu_ms, broadcast.sim_ms, shuffle.sim_ms,
                broadcast.sim_ms < shuffle.sim_ms ? "broadcast" : "shuffle");
  }
  bench::PrintFooter();
  return 0;
}
