// Fig. 8 reproduction: SQL operator microbenchmarks — Indexed DataFrame vs
// vanilla Spark on join, equality filter, non-equality filter, projection,
// aggregation, and scan, over the SNB edge table.
//
// Paper: "the join and filtering operators naturally use the index [and] are
// significantly improved ... projection and non-equality filters are the
// only operators that suffer slowdowns because our in-memory representation
// is based on a row structure which is less efficient than the columnar
// format adopted by the Spark cache".
#include <cstdio>

#include "bench/bench_util.h"
#include "core/indexed_dataframe.h"
#include "workload/snb.h"

using namespace idf;

int main(int argc, char** argv) {
  idf::bench::ObsGuard obs(argc, argv);
  const double scale = bench::ScaleEnv();
  const int reps = bench::RepsEnv(10);
  SessionOptions options = bench::PrivateCluster();
  options.broadcast_threshold_bytes =
      static_cast<uint64_t>(50.0 * 1024 * scale);  // see fig07
  bench::PrintHeader("Fig. 8", "SQL operator microbenchmarks",
                     "join & equality filter much faster indexed; projection "
                     "and non-equality filter slower (row vs columnar)",
                     options);
  Session session(options);

  const SnbConfig snb = SnbConfig::ScaleFactor(1.0 * scale, 32);
  SnbGenerator generator(snb);
  DataFrame edges = generator.Edges(session).value();
  IndexedDataFrame indexed =
      IndexedDataFrame::Create(edges, "edge_source").value();
  DataFrame indexed_df = indexed.AsDataFrame();
  DataFrame probe =
      generator.EdgeSample(session, snb.num_edges / 1000, 4).value();

  struct Operator {
    const char* name;
    std::function<DataFrame(const DataFrame&)> query;
  };
  const int64_t mid =
      static_cast<int64_t>(snb.num_vertices / 2);
  const Operator operators[] = {
      {"join (L probe)",
       [&](const DataFrame& t) {
         return t.Join(probe, "edge_source", "edge_source");
       }},
      {"filter ==",
       [&](const DataFrame& t) {
         return t.Filter(Eq(Col("edge_source"), Lit(mid)));
       }},
      {"filter >",
       [&](const DataFrame& t) {
         return t.Filter(Gt(Col("edge_source"), Lit(mid)));
       }},
      {"projection",
       [&](const DataFrame& t) {
         return t.Select({"edge_dest", "weight"});
       }},
      {"aggregation",
       [&](const DataFrame& t) {
         return t.Agg({}, {AggSpec::Count("n"), AggSpec::Avg("weight")});
       }},
      {"scan (count)",
       [&](const DataFrame& t) {
         return t.Agg({}, {AggSpec::Count("n")});
       }},
  };

  std::printf("%-16s %-16s %-16s %-10s %s\n", "operator", "vanilla (ms)",
              "indexed (ms)", "speedup", "note");
  for (const Operator& op : operators) {
    Sample vanilla, fast;
    for (int r = 0; r < reps; ++r) {
      Stopwatch timer;
      (void)op.query(edges).Count().value();
      vanilla.Add(timer.ElapsedSeconds());
    }
    for (int r = 0; r < reps; ++r) {
      Stopwatch timer;
      (void)op.query(indexed_df).Count().value();
      fast.Add(timer.ElapsedSeconds());
    }
    const double speedup = vanilla.Mean() / fast.Mean();
    std::printf("%-16s %-16.1f %-16.1f %-10.2f %s\n", op.name,
                vanilla.Mean() * 1e3, fast.Mean() * 1e3, speedup,
                speedup >= 1.0 ? "indexed wins" : "columnar wins (expected)");
  }
  bench::PrintFooter();
  return 0;
}
