// Micro-benchmarks (google-benchmark) for the cTrie: the index structure's
// raw insert / lookup / snapshot / miss costs that underpin every indexed
// operation in the paper.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "ctrie/ctrie.h"

namespace idf {
namespace {

void BM_CTrieInsert(benchmark::State& state) {
  const auto n = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    CTrie<uint64_t, uint64_t> trie;
    Rng rng(7);
    state.ResumeTiming();
    for (uint64_t i = 0; i < n; ++i) trie.Put(rng.Next(), i);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_CTrieInsert)->Arg(1000)->Arg(100000);

void BM_CTrieLookupHit(benchmark::State& state) {
  const auto n = static_cast<uint64_t>(state.range(0));
  CTrie<uint64_t, uint64_t> trie;
  for (uint64_t i = 0; i < n; ++i) trie.Put(i, i);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.Lookup(rng.Below(n)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CTrieLookupHit)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_CTrieLookupMiss(benchmark::State& state) {
  const auto n = static_cast<uint64_t>(state.range(0));
  CTrie<uint64_t, uint64_t> trie;
  for (uint64_t i = 0; i < n; ++i) trie.Put(i, i);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.Lookup(n + rng.Below(n)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CTrieLookupMiss)->Arg(100000);

void BM_CTrieSnapshot(benchmark::State& state) {
  // The paper's O(1) snapshot claim: cost must not grow with trie size.
  const auto n = static_cast<uint64_t>(state.range(0));
  CTrie<uint64_t, uint64_t> trie;
  for (uint64_t i = 0; i < n; ++i) trie.Put(i, i);
  for (auto _ : state) {
    auto snap = trie.Snapshot();
    benchmark::DoNotOptimize(snap);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CTrieSnapshot)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_CTrieReadOnlySnapshotLookup(benchmark::State& state) {
  CTrie<uint64_t, uint64_t> trie;
  for (uint64_t i = 0; i < 100000; ++i) trie.Put(i, i);
  auto snap = trie.ReadOnlySnapshot();
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(snap.Lookup(rng.Below(100000)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CTrieReadOnlySnapshotLookup);

void BM_CTrieInsertAfterSnapshot(benchmark::State& state) {
  // Lazy generational copying: the first writes after a snapshot re-stamp
  // their path; steady-state inserts stay close to plain insert cost.
  CTrie<uint64_t, uint64_t> trie;
  for (uint64_t i = 0; i < 100000; ++i) trie.Put(i, i);
  Rng rng(9);
  for (auto _ : state) {
    state.PauseTiming();
    auto snap = trie.Snapshot();
    state.ResumeTiming();
    for (int i = 0; i < 100; ++i) snap.Put(rng.Below(100000), 1);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_CTrieInsertAfterSnapshot);

}  // namespace
}  // namespace idf
