// Fig. 14 reproduction: TPC-DS `store_sales JOIN date_dim` across scale
// factors, Indexed DataFrame vs the (Databricks-Runtime) baseline.
//
// Paper (16x i3.8xlarge): "the larger the dataset, the larger the gap
// between the indexed version of the join compared to its non-indexed
// version ... the larger the dataset size, the more data is filtered out by
// the index".
#include <cstdio>

#include "bench/bench_util.h"
#include "core/indexed_dataframe.h"
#include "workload/tpcds.h"

using namespace idf;

int main(int argc, char** argv) {
  idf::bench::ObsGuard obs(argc, argv);
  const double scale = bench::ScaleEnv();
  const int reps = bench::RepsEnv(10);
  SessionOptions options = bench::Ec2Cluster(16, /*big=*/true);
  bench::PrintHeader("Fig. 14", "TPC-DS join speedup vs scale factor",
                     "speedup grows with the scale factor", options);

  std::printf("%-8s %-14s %-16s %-16s %-10s %-12s\n", "SF", "sales rows",
              "baseline (ms)", "indexed (ms)", "speedup", "result rows");
  for (double sf : {1.0, 10.0, 100.0, 1000.0}) {
    TpcdsConfig config;
    config.scale_factor = sf;
    config.sales_rows_per_sf = static_cast<uint64_t>(1500 * scale);
    config.partitions = 32;
    Session session(options);
    TpcdsGenerator generator(config);
    DataFrame sales = generator.StoreSales(session).value();
    // One month of dates: matches the paper's probe selectivity (~0.5%)
    // against our 5000-day date_dim.
    DataFrame dates =
        generator.DateDimForMonth(session, TpcdsConfig::kTargetYear, 6)
            .value();

    uint64_t result_rows = 0;
    Sample baseline;
    for (int r = 0; r < reps; ++r) {
      Stopwatch timer;
      result_rows =
          sales.Join(dates, "ss_sold_date_sk", "d_date_sk").Count().value();
      baseline.Add(timer.ElapsedSeconds());
    }

    IndexedDataFrame indexed =
        IndexedDataFrame::Create(sales, "ss_sold_date_sk").value();
    Sample fast;
    for (int r = 0; r < reps; ++r) {
      Stopwatch timer;
      (void)indexed.Join(dates, "d_date_sk").Count().value();
      fast.Add(timer.ElapsedSeconds());
    }

    std::printf("%-8.0f %-14llu %-16.2f %-16.2f %-10.2f %llu\n", sf,
                static_cast<unsigned long long>(config.sales_rows()),
                baseline.Mean() * 1e3, fast.Mean() * 1e3,
                baseline.Mean() / fast.Mean(),
                static_cast<unsigned long long>(result_rows));
  }
  std::printf("(the index filters sales rows to the one probed year; the "
              "baseline scans every sales row per query)\n");
  bench::PrintFooter();
  return 0;
}
