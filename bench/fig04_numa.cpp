// Fig. 4 reproduction: executors-per-machine x cores-per-executor x NUMA
// pinning, on the XL join (1B-row analogue, Table III).
//
// Paper: IQR boxplots over repeated runs; "more fine-grained executors
// perform better, and NUMA pinning is able to further reduce the running
// time"; the best configuration is 4 executors x 4 cores, pinned.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "core/indexed_dataframe.h"
#include "workload/snb.h"

using namespace idf;

namespace {

struct Config {
  const char* label;
  uint32_t executors_per_worker;
  uint32_t cores_per_executor;
  bool pinned;
};

}  // namespace

int main(int argc, char** argv) {
  idf::bench::ObsGuard obs(argc, argv);
  const double scale = bench::ScaleEnv();
  const int reps = bench::RepsEnv(8);

  const Config configs[] = {
      {"1 exec x 16 cores (spans sockets)", 1, 16, false},
      {"2 exec x 8 cores, unpinned", 2, 8, false},
      {"4 exec x 4 cores, unpinned", 4, 4, false},
      {"8 exec x 2 cores, unpinned", 8, 2, false},
      {"4 exec x 4 cores, NUMA-pinned", 4, 4, true},
  };

  SessionOptions base = bench::PrivateCluster(8);
  bench::PrintHeader("Fig. 4",
                     "executor/core/NUMA configuration sweep (XL join)",
                     "finer-grained executors win; NUMA pinning wins again; "
                     "4x4 pinned is best",
                     base);

  const SnbConfig snb = SnbConfig::ScaleFactor(2.0 * scale, 32);
  const uint64_t probe_rows = std::max<uint64_t>(8, snb.num_edges / 100);

  // Keep every configuration's session alive and interleave the repetitions
  // round-robin. Measuring configurations back-to-back would confound them
  // with process-lifetime drift (allocator churn from the large join
  // outputs); interleaving spreads any drift across all of them.
  struct Instance {
    std::unique_ptr<Session> session;
    std::unique_ptr<IndexedDataFrame> indexed;
    std::unique_ptr<SnbGenerator> generator;
    Sample sim_seconds;
  };
  std::vector<Instance> instances;
  for (const Config& config : configs) {
    SessionOptions options = base;
    options.cluster.executors_per_worker = config.executors_per_worker;
    options.cluster.cores_per_executor = config.cores_per_executor;
    options.cluster.numa_pinned = config.pinned;
    Instance inst;
    inst.session = std::make_unique<Session>(options);
    inst.generator = std::make_unique<SnbGenerator>(snb);
    DataFrame edges = inst.generator->Edges(*inst.session).value();
    inst.indexed = std::make_unique<IndexedDataFrame>(
        IndexedDataFrame::Create(edges, "edge_source").value());
    instances.push_back(std::move(inst));
  }

  for (int r = 0; r < reps; ++r) {
    for (Instance& inst : instances) {
      // XL probe (Table III ratio), re-sampled per repetition so the
      // boxplot has genuine run-to-run variation.
      DataFrame probe =
          inst.generator->EdgeSample(*inst.session, probe_rows, 1000 + r)
              .value();
      QueryMetrics metrics;
      TableHandle out =
          inst.indexed->Join(probe, "edge_source").Execute(&metrics).value();
      inst.sim_seconds.Add(metrics.simulated_seconds);
      // Release the (large) join output so memory churn stays bounded.
      inst.session->cluster().blocks().DropRdd(out.rdd_id);
    }
  }

  std::printf("%-36s %s\n", "configuration", "simulated runtime boxplot (s)");
  // Rank by median: the robust center of the paper's IQR boxplots (means
  // are distorted by rare host hiccups during the real task execution).
  double best = 1e300, worst = 0;
  std::string best_label, worst_label;
  for (size_t i = 0; i < instances.size(); ++i) {
    Sample& sim_seconds = instances[i].sim_seconds;
    std::printf("%-36s %s\n", configs[i].label,
                sim_seconds.BoxplotString().c_str());
    const double median = sim_seconds.Median();
    if (median < best) {
      best = median;
      best_label = configs[i].label;
    }
    if (median > worst) {
      worst = median;
      worst_label = configs[i].label;
    }
  }
  std::printf("--- summary (by median) ---\n");
  std::printf("best: %s | worst: %s | spread %.2fx\n", best_label.c_str(),
              worst_label.c_str(), worst / best);
  bench::PrintFooter();
  return 0;
}
