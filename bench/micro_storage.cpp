// Micro-benchmarks (google-benchmark) for the storage layer: binary row
// encode/decode, packed pointers, partition-store appends and row access,
// and the point-lookup path through an IndexedPartition.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/indexed_partition.h"
#include "storage/partition_store.h"
#include "storage/row_layout.h"

namespace idf {
namespace {

SchemaPtr BenchSchema() {
  return std::make_shared<Schema>(Schema({
      {"id", TypeId::kInt64, false},
      {"value", TypeId::kInt64, false},
      {"score", TypeId::kFloat64, true},
      {"tag", TypeId::kString, true},
  }));
}

RowVec BenchRow(uint64_t i) {
  return {Value::Int64(static_cast<int64_t>(i)),
          Value::Int64(static_cast<int64_t>(i * 31)),
          Value::Float64(static_cast<double>(i) * 0.25),
          Value::String("tag_" + std::to_string(i % 100))};
}

void BM_RowEncode(benchmark::State& state) {
  RowLayout layout(BenchSchema());
  RowVec row = BenchRow(42);
  std::vector<uint8_t> buf(*layout.ComputeRowSize(row));
  for (auto _ : state) {
    layout.EncodeRow(row, buf.data(), PackedRowPtr::Null());
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RowEncode);

void BM_RowDecode(benchmark::State& state) {
  RowLayout layout(BenchSchema());
  RowVec row = BenchRow(42);
  std::vector<uint8_t> buf(*layout.ComputeRowSize(row));
  layout.EncodeRow(row, buf.data(), PackedRowPtr::Null());
  for (auto _ : state) {
    RowVec decoded = layout.DecodeRow(buf.data());
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RowDecode);

void BM_RowFieldAccess(benchmark::State& state) {
  // Zero-copy accessor path (what joins and filters actually use).
  RowLayout layout(BenchSchema());
  RowVec row = BenchRow(42);
  std::vector<uint8_t> buf(*layout.ComputeRowSize(row));
  layout.EncodeRow(row, buf.data(), PackedRowPtr::Null());
  for (auto _ : state) {
    benchmark::DoNotOptimize(layout.GetInt64(buf.data(), 0));
    benchmark::DoNotOptimize(layout.GetFloat64(buf.data(), 2));
    benchmark::DoNotOptimize(layout.GetString(buf.data(), 3));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 3);
}
BENCHMARK(BM_RowFieldAccess);

void BM_PackedPtrPackUnpack(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    PackedRowPtr p = PackedRowPtr::Make(
        static_cast<uint32_t>(rng.Below(1000)),
        static_cast<uint32_t>(rng.Below(1 << 20)),
        static_cast<uint32_t>(rng.Below(1024)));
    benchmark::DoNotOptimize(p.batch() + p.offset() + p.prev_size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PackedPtrPackUnpack);

void BM_PartitionStoreAppend(benchmark::State& state) {
  RowLayout layout(BenchSchema());
  RowVec row = BenchRow(7);
  for (auto _ : state) {
    state.PauseTiming();
    PartitionStore store;
    state.ResumeTiming();
    for (int i = 0; i < 10000; ++i) {
      benchmark::DoNotOptimize(
          store.AppendRow(layout, row, PackedRowPtr::Null()));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_PartitionStoreAppend);

void BM_PartitionStoreRowAt(benchmark::State& state) {
  RowLayout layout(BenchSchema());
  PartitionStore store;
  std::vector<PackedRowPtr> ptrs;
  for (uint64_t i = 0; i < 100000; ++i) {
    ptrs.push_back(*store.AppendRow(layout, BenchRow(i), PackedRowPtr::Null()));
  }
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.RowAt(ptrs[rng.Below(ptrs.size())]));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PartitionStoreRowAt);

void BM_IndexedPartitionInsert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    IndexedPartition part(BenchSchema(), 0);
    state.ResumeTiming();
    for (uint64_t i = 0; i < 10000; ++i) {
      IDF_CHECK_OK(part.InsertRow(BenchRow(i % 500)));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_IndexedPartitionInsert);

void BM_IndexedPartitionLookup(benchmark::State& state) {
  // The paper's headline primitive: worst-case-logarithmic point lookup
  // followed by a backward-chain walk.
  IndexedPartition part(BenchSchema(), 0);
  constexpr uint64_t kKeys = 10000;
  for (uint64_t i = 0; i < kKeys * 20; ++i) {
    IDF_CHECK_OK(part.InsertRow(BenchRow(i % kKeys)));
  }
  Rng rng(11);
  for (auto _ : state) {
    uint64_t rows = 0;
    part.ForEachRowOfKey(
        IndexKeyCode(Value::Int64(static_cast<int64_t>(rng.Below(kKeys)))),
        [&rows](const uint8_t*) { ++rows; });
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 20);
}
BENCHMARK(BM_IndexedPartitionLookup);

void BM_IndexedPartitionSnapshot(benchmark::State& state) {
  IndexedPartition part(BenchSchema(), 0);
  for (uint64_t i = 0; i < 200000; ++i) {
    IDF_CHECK_OK(part.InsertRow(BenchRow(i)));
  }
  for (auto _ : state) {
    auto snap = part.Snapshot();
    benchmark::DoNotOptimize(snap);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_IndexedPartitionSnapshot);

}  // namespace
}  // namespace idf
