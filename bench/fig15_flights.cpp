// Fig. 15 reproduction: US Flights queries Q1-Q7 (Table II), Indexed
// DataFrame speedup over the (Databricks-Runtime) baseline.
//
// Paper: 5-20x overall; the largest speedups on integer-key point queries
// (Q5-Q7); string keys (Q1/Q2) gain less because "strings need to be hashed
// into a number which is then used as a key in the cTrie".
#include <cstdio>
#include <functional>

#include "bench/bench_util.h"
#include "core/indexed_dataframe.h"
#include "workload/flights.h"

using namespace idf;

int main(int argc, char** argv) {
  idf::bench::ObsGuard obs(argc, argv);
  const double scale = bench::ScaleEnv();
  const int reps = bench::RepsEnv(10);
  SessionOptions options = bench::Ec2Cluster(4, /*big=*/false);
  bench::PrintHeader("Fig. 15", "US Flights queries Q1-Q7",
                     "5-20x; int-key point queries (Q5-Q7) gain most; "
                     "string keys gain less",
                     options);
  Session session(options);

  FlightsConfig config;
  config.num_flights = static_cast<uint64_t>(1000000 * scale);
  config.partitions = 16;
  FlightsGenerator generator(config);
  DataFrame flights = generator.Flights(session).value();
  DataFrame planes = generator.Planes(session).value();
  IndexedDataFrame by_tail =
      IndexedDataFrame::Create(flights, "tail_num").value();
  IndexedDataFrame by_num =
      IndexedDataFrame::Create(flights, "flight_num").value();
  DataFrame tail_df = by_tail.AsDataFrame();
  DataFrame num_df = by_num.AsDataFrame();

  // Probe subsets for Q3/Q4 (Table II: the "selected flights table" is a
  // materialized temp table, so neither system re-runs the selection per
  // query).
  auto materialize = [&](DataFrame df, const char* name) {
    TableHandle handle = df.Execute().value();
    return session.Read(std::make_shared<CachedTable>(handle, name));
  };
  DataFrame subset200 =
      materialize(flights.Filter(Lt(Col("flight_num"), Lit(int32_t{200})))
                      .Select({"flight_num", "arr_delay"}),
                  "subset200");
  DataFrame subset400 =
      materialize(flights.Filter(Lt(Col("flight_num"), Lit(int32_t{400})))
                      .Select({"flight_num", "arr_delay"}),
                  "subset400");
  const std::string tail = FlightsGenerator::TailNum(7);

  struct Query {
    const char* name;
    const char* desc;
    std::function<DataFrame()> vanilla;
    std::function<DataFrame()> indexed;
  };
  const Query queries[] = {
      {"Q1", "join flights x planes ON tailNum (string)",
       [&] { return flights.Join(planes, "tail_num", "tail_num"); },
       [&] { return tail_df.Join(planes, "tail_num", "tail_num"); }},
      {"Q2", "SELECT * WHERE tailNum = x (string)",
       [&] { return flights.Filter(Eq(Col("tail_num"), Lit(tail.c_str()))); },
       [&] { return tail_df.Filter(Eq(Col("tail_num"), Lit(tail.c_str()))); }},
      {"Q3", "join w/ selected flights (flightNum<200)",
       [&] { return flights.Join(subset200, "flight_num", "flight_num"); },
       [&] { return num_df.Join(subset200, "flight_num", "flight_num"); }},
      {"Q4", "join w/ selected flights (flightNum<400)",
       [&] { return flights.Join(subset400, "flight_num", "flight_num"); },
       [&] { return num_df.Join(subset400, "flight_num", "flight_num"); }},
      {"Q5", "point query, 10 matches (int)",
       [&] {
         return flights.Filter(
             Eq(Col("flight_num"), Lit(FlightsConfig::kKey10)));
       },
       [&] {
         return num_df.Filter(
             Eq(Col("flight_num"), Lit(FlightsConfig::kKey10)));
       }},
      {"Q6", "point query, 100 matches (int)",
       [&] {
         return flights.Filter(
             Eq(Col("flight_num"), Lit(FlightsConfig::kKey100)));
       },
       [&] {
         return num_df.Filter(
             Eq(Col("flight_num"), Lit(FlightsConfig::kKey100)));
       }},
      {"Q7", "point query, 1000 matches (int)",
       [&] {
         return flights.Filter(
             Eq(Col("flight_num"), Lit(FlightsConfig::kKey1000)));
       },
       [&] {
         return num_df.Filter(
             Eq(Col("flight_num"), Lit(FlightsConfig::kKey1000)));
       }},
  };

  std::printf("%-4s %-44s %-14s %-14s %-8s\n", "Q", "description",
              "baseline (ms)", "indexed (ms)", "speedup");
  for (const Query& query : queries) {
    Sample vanilla, fast;
    uint64_t check_vanilla = 0, check_indexed = 0;
    for (int r = 0; r < reps; ++r) {
      Stopwatch timer;
      check_vanilla = query.vanilla().Count().value();
      vanilla.Add(timer.ElapsedSeconds());
    }
    for (int r = 0; r < reps; ++r) {
      Stopwatch timer;
      check_indexed = query.indexed().Count().value();
      fast.Add(timer.ElapsedSeconds());
    }
    IDF_CHECK_MSG(check_vanilla == check_indexed,
                  "indexed and vanilla disagree");
    std::printf("%-4s %-44s %-14.2f %-14.2f %-8.1f\n", query.name, query.desc,
                vanilla.Mean() * 1e3, fast.Mean() * 1e3,
                vanilla.Mean() / fast.Mean());
  }
  bench::PrintFooter();
  return 0;
}
