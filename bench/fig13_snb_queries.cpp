// Fig. 13 reproduction: SNB short-read queries SQ1-SQ7, Indexed DataFrame
// speedup over vanilla Spark, on an SF-300 analogue.
//
// Paper: "the Indexed DataFrame speeds up all queries, with the exception of
// SQ5 and SQ6, which are unable to use the index properly" (their access
// patterns hit the row-based representation's weakness vs columnar).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/indexed_dataframe.h"
#include "workload/snb.h"

using namespace idf;

int main(int argc, char** argv) {
  idf::bench::ObsGuard obs(argc, argv);
  const double scale = bench::ScaleEnv();
  const int reps = bench::RepsEnv(10);
  SessionOptions options = bench::PrivateCluster();
  bench::PrintHeader("Fig. 13", "SNB short-read queries SQ1-SQ7 (SF-300)",
                     "all queries speed up except SQ5/SQ6 (projection-heavy, "
                     "no index use)",
                     options);
  Session session(options);

  const SnbConfig snb = SnbConfig::ScaleFactor(1.2 * scale, 32);
  SnbGenerator generator(snb);
  DataFrame edges = generator.Edges(session).value();
  DataFrame vertices = generator.Vertices(session).value();
  IndexedDataFrame indexed_edges =
      IndexedDataFrame::Create(edges, "edge_source").value();
  IndexedDataFrame indexed_vertices =
      IndexedDataFrame::Create(vertices, "id").value();
  DataFrame ie = indexed_edges.AsDataFrame();
  DataFrame iv = indexed_vertices.AsDataFrame();

  const int64_t person = static_cast<int64_t>(snb.num_vertices / 3);
  std::printf("%-6s %-16s %-16s %-10s %s\n", "query", "vanilla (ms)",
              "indexed (ms)", "speedup", "note");
  const char* notes[] = {
      "",
      "vertex point lookup",
      "edge lookup + join",
      "lookup + join + project",
      "lookup + narrow project",
      "non-eq filter + project (no index)",
      "full scan aggregate (no index)",
      "lookup + join + aggregate",
  };
  for (int q = 1; q <= 7; ++q) {
    Sample vanilla, fast;
    for (int r = 0; r < reps; ++r) {
      Stopwatch timer;
      (void)SnbShortQuery(q, edges, vertices, person).Count().value();
      vanilla.Add(timer.ElapsedSeconds());
    }
    for (int r = 0; r < reps; ++r) {
      Stopwatch timer;
      (void)SnbShortQuery(q, ie, iv, person).Count().value();
      fast.Add(timer.ElapsedSeconds());
    }
    const double speedup = vanilla.Mean() / fast.Mean();
    std::printf("SQ%-5d %-16.2f %-16.2f %-10.2f %s%s\n", q,
                vanilla.Mean() * 1e3, fast.Mean() * 1e3, speedup, notes[q],
                (q == 5 || q == 6) ? (speedup < 1.3 ? " [as in paper]" : "")
                                   : "");
  }
  bench::PrintFooter();
  return 0;
}
