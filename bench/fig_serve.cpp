// Concurrent-serve benchmark: closed-loop clients against the QueryService.
//
// The paper's serving claim is that an indexed, cached table can answer
// many concurrent lookup/join/append clients out of one shared executor
// fleet and one memory budget. This bench reproduces that regime: N client
// threads drive a QueryService (src/server/query_service.h) over one shared
// indexed table with a 70% lookup / 20% join / 10% append mix, closed-loop
// (one outstanding query per client) with an optional per-client pacing
// target. Every lookup and join result is byte-compared against serially
// precomputed expectations — `mismatches` must be 0 or the bench fails.
//
// Flags (plus the usual ObsGuard --metrics-out/--events-out):
//   --clients=2,8       client-count series            (default 2,8)
//   --seconds=N         measured seconds per point     (default 5)
//   --qps=N             aggregate pacing target, 0 = unthrottled (default 0)
//   --serve-out=F.json  write BENCH_serve.json-style results to F
// Env: IDF_SERVE_WORKERS / IDF_ADMIT_* size the service (see docs/SERVER.md);
// IDF_MEMORY_BUDGET / IDF_SPILL_DIR put the run under memory pressure.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench/bench_util.h"
#include "core/indexed_dataframe.h"
#include "mem/governor.h"
#include "obs/query_profile.h"
#include "server/query_service.h"
#include "sql/columnar.h"

using namespace idf;

namespace {

constexpr int64_t kKeySpace = 97;  // src = i % 97: every key is dense

SchemaPtr EdgeSchema() {
  return std::make_shared<Schema>(Schema({
      {"src", TypeId::kInt64, false},
      {"dst", TypeId::kInt64, false},
      {"weight", TypeId::kFloat64, true},
  }));
}

std::vector<RowVec> DenseEdges(int64_t n, int64_t salt) {
  std::vector<RowVec> rows;
  rows.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back({Value::Int64((i + salt) % kKeySpace), Value::Int64(i),
                    Value::Float64(0.25 * static_cast<double>(i + salt))});
  }
  return rows;
}

/// Deterministic per-client xorshift so the mix is reproducible and two
/// clients never share a stream.
struct Rng {
  uint64_t state;
  uint64_t Next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

struct PointResult {
  uint32_t clients = 0;
  uint64_t completed = 0;
  uint64_t lookups = 0;
  uint64_t joins = 0;
  uint64_t appends = 0;
  uint64_t rejected = 0;
  uint64_t mismatches = 0;
  double seconds = 0;
  double qps = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
  /// Per-query resource profiles of this point's queries (obs/
  /// query_profile.h), heaviest task-wall first.
  std::vector<obs::QueryProfileSnapshot> profiles;
};

PointResult RunPoint(Session& session, IndexedDataFrame& indexed,
                     const DataFrame& probe, const DataFrame& append_rows,
                     const std::vector<std::vector<std::string>>& lookup_exp,
                     const std::vector<std::string>& join_exp,
                     uint32_t clients, double seconds, double target_qps) {
  // Profile ids allocated before this point belong to earlier points (or
  // the ground-truth EXPLAINs); diffing the registry afterwards isolates
  // this point's queries.
  const std::vector<uint64_t> prior_ids =
      obs::QueryProfileRegistry::Global().Ids();
  server::QueryService service(session);
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> lookups{0}, joins{0}, appends{0};
  std::atomic<bool> stop{false};
  std::vector<Sample> latencies(clients);

  auto client = [&](uint32_t c) {
    Rng rng{0x9e3779b97f4a7c15ull * (c + 1)};
    // Pace each client at target/clients; 0 = as fast as completions allow.
    const double interval_s =
        target_qps > 0 ? static_cast<double>(clients) / target_qps : 0;
    auto next_send = std::chrono::steady_clock::now();
    while (!stop.load(std::memory_order_relaxed)) {
      const uint64_t roll = rng.Next() % 100;
      const int64_t key = static_cast<int64_t>(rng.Next() % kKeySpace);
      server::QueryWork work;
      const std::vector<std::string>* expect = nullptr;
      if (roll < 70) {
        lookups.fetch_add(1, std::memory_order_relaxed);
        expect = &lookup_exp[key];
        work = [&indexed, key](server::QueryContext& ctx) -> Status {
          IDF_ASSIGN_OR_RETURN(ctx.result, indexed.GetRows(Value::Int64(key)));
          return Status::OK();
        };
      } else if (roll < 90) {
        joins.fetch_add(1, std::memory_order_relaxed);
        expect = &join_exp;
        work = [&indexed, &probe](server::QueryContext& ctx) -> Status {
          IDF_ASSIGN_OR_RETURN(ctx.result,
                               indexed.Join(probe, "src").Collect());
          return Status::OK();
        };
      } else {
        appends.fetch_add(1, std::memory_order_relaxed);
        // Appends publish a fresh version each time (dropped afterwards);
        // lookups/joins keep reading the base version, so their expected
        // bytes never change. Read the new version back as the "result".
        work = [&indexed, &append_rows, key](server::QueryContext& ctx)
            -> Status {
          IDF_ASSIGN_OR_RETURN(IndexedDataFrame next,
                               indexed.AppendRows(append_rows));
          IDF_ASSIGN_OR_RETURN(ctx.result, next.GetRows(Value::Int64(key)));
          return Status::OK();
        };
      }
      if (interval_s > 0) {
        next_send += std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(interval_s));
        std::this_thread::sleep_until(next_send);
        if (stop.load(std::memory_order_relaxed)) break;
      }
      const auto t0 = std::chrono::steady_clock::now();
      server::QueryHandle handle = service.Submit(std::move(work), {});
      const Status status = handle.Wait();
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      if (status.ok()) {
        latencies[c].Add(ms);
        if (expect != nullptr) {
          Result<CollectedTable> result = handle.TakeResult();
          if (!result.ok() || result->SortedRowStrings() != *expect) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      } else if (status.code() == StatusCode::kResourceExhausted) {
        rejected.fetch_add(1, std::memory_order_relaxed);
      } else {
        std::fprintf(stderr, "client %u: query failed: %s\n", c,
                     status.ToString().c_str());
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (uint32_t c = 0; c < clients; ++c) threads.emplace_back(client, c);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (std::thread& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  service.Shutdown(/*cancel_pending=*/false);

  Sample all;
  for (Sample& s : latencies) {
    for (double v : s.values()) all.Add(v);
  }
  PointResult out;
  out.clients = clients;
  out.completed = all.size();
  out.lookups = lookups.load();
  out.joins = joins.load();
  out.appends = appends.load();
  out.rejected = rejected.load();
  out.mismatches = mismatches.load();
  out.seconds = elapsed;
  out.qps = elapsed > 0 ? static_cast<double>(all.size()) / elapsed : 0;
  out.p50_ms = all.Quantile(0.50);
  out.p95_ms = all.Quantile(0.95);
  out.p99_ms = all.Quantile(0.99);
  const std::unordered_set<uint64_t> seen(prior_ids.begin(), prior_ids.end());
  for (obs::QueryProfileSnapshot& snap :
       obs::QueryProfileRegistry::Global().SnapshotAll()) {
    if (snap.id == 0 || seen.count(snap.id) != 0) continue;
    out.profiles.push_back(std::move(snap));
  }
  std::sort(out.profiles.begin(), out.profiles.end(),
            [](const obs::QueryProfileSnapshot& a,
               const obs::QueryProfileSnapshot& b) {
              return a.task_wall_us > b.task_wall_us;
            });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  idf::bench::ObsGuard obs(argc, argv);
  std::vector<uint32_t> client_counts = {2, 8};
  double seconds = 5.0;
  double target_qps = 0;
  std::string serve_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--clients=", 10) == 0) {
      client_counts.clear();
      for (const char* p = argv[i] + 10; *p != '\0';) {
        client_counts.push_back(static_cast<uint32_t>(std::strtoul(p, nullptr, 10)));
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    } else if (std::strncmp(argv[i], "--seconds=", 10) == 0) {
      seconds = std::atof(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--qps=", 6) == 0) {
      target_qps = std::atof(argv[i] + 6);
    } else if (std::strncmp(argv[i], "--serve-out=", 12) == 0) {
      serve_out = argv[i] + 12;
    }
  }

  const double scale = bench::ScaleEnv();
  SessionOptions options;
  options.cluster.num_workers = 2;
  options.cluster.executors_per_worker = 2;
  options.cluster.cores_per_executor = 2;
  options.default_partitions = 8;
  bench::PrintHeader(
      "Serve", "concurrent multi-client serving through the query service",
      "N closed-loop clients share one indexed table and one memory budget; "
      "results stay byte-identical to serial execution",
      options);
  const server::QueryServiceConfig service_config =
      server::QueryServiceConfig::FromEnv();
  Session session(options);  // configures the governor from IDF_MEMORY_BUDGET
  std::printf("service: %u workers, queue depth %u, reservation %llu bytes, "
              "policy %s; governor budget %llu bytes\n",
              service_config.workers, service_config.max_queue,
              static_cast<unsigned long long>(
                  service_config.default_reservation_bytes),
              service_config.policy == server::AdmitPolicy::kQueue ? "queue"
                                                                   : "reject",
              static_cast<unsigned long long>(
                  mem::MemoryGovernor::Global().budget_bytes()));
  const int64_t base_rows = std::max<int64_t>(4000, int64_t(100000 * scale));
  IndexOptions index_options;
  index_options.batch_capacity = 4 << 10;
  auto edges =
      *session.CreateTable("edges", EdgeSchema(), DenseEdges(base_rows, 0));
  auto probe =
      *session.CreateTable("probe", EdgeSchema(),
                           DenseEdges(std::max<int64_t>(200, base_rows / 100),
                                      3));
  auto append_rows = *session.CreateTable(
      "append_rows", EdgeSchema(),
      DenseEdges(std::max<int64_t>(500, base_rows / 50), 17));
  auto indexed = *IndexedDataFrame::Create(edges, "src", index_options);

  // Serial ground truth, computed once before any concurrency: what every
  // lookup and join must return, byte for byte, throughout the run.
  std::vector<std::vector<std::string>> lookup_exp(kKeySpace);
  for (int64_t k = 0; k < kKeySpace; ++k) {
    lookup_exp[k] = indexed.GetRows(Value::Int64(k))->SortedRowStrings();
  }
  const std::vector<std::string> join_exp =
      indexed.Join(probe, "src").Collect()->SortedRowStrings();

  std::printf("table: %lld rows, %u partitions, %lld-key space\n\n",
              static_cast<long long>(base_rows), indexed.num_partitions(),
              static_cast<long long>(kKeySpace));
  std::printf("%-9s %-10s %-10s %-9s %-9s %-9s %-9s %-10s\n", "clients",
              "queries", "qps", "p50 ms", "p95 ms", "p99 ms", "rejected",
              "mismatches");

  std::vector<PointResult> results;
  uint64_t total_mismatches = 0;
  for (uint32_t clients : client_counts) {
    PointResult r = RunPoint(session, indexed, probe, append_rows, lookup_exp,
                             join_exp, clients, seconds, target_qps);
    std::printf("%-9u %-10llu %-10.1f %-9.2f %-9.2f %-9.2f %-9llu %-10llu\n",
                r.clients, static_cast<unsigned long long>(r.completed), r.qps,
                r.p50_ms, r.p95_ms, r.p99_ms,
                static_cast<unsigned long long>(r.rejected),
                static_cast<unsigned long long>(r.mismatches));
    total_mismatches += r.mismatches;
    results.push_back(r);
  }

  if (!serve_out.empty()) {
    FILE* f = std::fopen(serve_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", serve_out.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\"bench\": \"fig_serve\", \"workers\": %u, "
                 "\"budget_bytes\": %llu, \"target_qps\": %.1f, "
                 "\"points\": [",
                 service_config.workers,
                 static_cast<unsigned long long>(
                     mem::MemoryGovernor::Global().budget_bytes()),
                 target_qps);
    for (size_t i = 0; i < results.size(); ++i) {
      const PointResult& r = results[i];
      std::fprintf(
          f,
          "%s{\"clients\": %u, \"queries\": %llu, \"lookups\": %llu, "
          "\"joins\": %llu, \"appends\": %llu, \"seconds\": %.2f, "
          "\"qps\": %.2f, \"p50_ms\": %.3f, \"p95_ms\": %.3f, "
          "\"p99_ms\": %.3f, \"rejected\": %llu, \"mismatches\": %llu",
          i == 0 ? "" : ", ", r.clients,
          static_cast<unsigned long long>(r.completed),
          static_cast<unsigned long long>(r.lookups),
          static_cast<unsigned long long>(r.joins),
          static_cast<unsigned long long>(r.appends), r.seconds, r.qps,
          r.p50_ms, r.p95_ms, r.p99_ms,
          static_cast<unsigned long long>(r.rejected),
          static_cast<unsigned long long>(r.mismatches));
      // Summed attribution across every query of the point, then the
      // heaviest few individual profiles (the full set can be thousands of
      // one-lookup queries; the sum is what conservation checks need).
      obs::QueryProfileSnapshot totals;
      for (const obs::QueryProfileSnapshot& p : r.profiles) {
        totals.tasks += p.tasks;
        totals.task_wall_us += p.task_wall_us;
        totals.steals += p.steals;
        totals.resident_hits += p.resident_hits;
        totals.resident_misses += p.resident_misses;
        totals.bytes_spilled += p.bytes_spilled;
        totals.evictions += p.evictions;
        totals.bytes_reloaded += p.bytes_reloaded;
        totals.bytes_prefetched += p.bytes_prefetched;
        totals.shuffle_stall_us += p.shuffle_stall_us;
        totals.shuffle_pushed_bytes += p.shuffle_pushed_bytes;
        totals.admission_wait_us += p.admission_wait_us;
        totals.peak_pinned_bytes =
            std::max(totals.peak_pinned_bytes, p.peak_pinned_bytes);
      }
      std::fprintf(f, ", \"profiled_queries\": %zu, \"profile_totals\": %s",
                   r.profiles.size(), obs::QueryProfileJson(totals).c_str());
      std::fprintf(f, ", \"profiles\": [");
      const size_t top = std::min<size_t>(r.profiles.size(), 8);
      for (size_t j = 0; j < top; ++j) {
        std::fprintf(f, "%s%s", j == 0 ? "" : ", ",
                     obs::QueryProfileJson(r.profiles[j]).c_str());
      }
      std::fprintf(f, "]}");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("serve results written to %s\n", serve_out.c_str());
  }

  if (total_mismatches != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu result mismatches against serial ground truth\n",
                 static_cast<unsigned long long>(total_mismatches));
    return 1;
  }
  std::printf("all results byte-identical to serial ground truth\n");
  bench::PrintFooter();
  return 0;
}
