// Fig. 12 reproduction: executor failure during a 200-query S-join sequence.
//
// Paper (8-node cluster, executor holding 4 indexed partitions killed during
// query 20): "re-creating the index extends the execution time of this query
// to over 13s, but subsequent queries operate at regular speed and the
// average execution time is only increased marginally".
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "core/indexed_dataframe.h"
#include "testing/chaos.h"
#include "workload/snb.h"

using namespace idf;

int main(int argc, char** argv) {
  idf::bench::ObsGuard obs(argc, argv);
  const double scale = bench::ScaleEnv();
  const int queries = bench::RepsEnv(0) > 0 ? bench::RepsEnv(0) : 200;
  SessionOptions options = bench::PrivateCluster(8);
  bench::PrintHeader("Fig. 12", "executor failure during 200 S-joins",
                     "one query pays the re-index + append replay; the rest "
                     "run at normal speed",
                     options);
  Session session(options);

  // IDF_CHAOS_SEED layers seeded cross-subsystem faults (IDF_CHAOS_* knobs,
  // docs/TESTING.md) on top of the scripted executor kill below — the
  // fault-tolerance story under compound failures, replayable from the seed.
  if (std::getenv("IDF_CHAOS_SEED") != nullptr) {
    chaos::ChaosEngine::Global().Arm(chaos::ChaosConfig::FromEnv());
  }

  const SnbConfig snb = SnbConfig::ScaleFactor(1.0 * scale, 32);
  SnbGenerator generator(snb);
  DataFrame edges = generator.Edges(session).value();
  IndexedDataFrame indexed =
      IndexedDataFrame::Create(edges, "edge_source").value();
  // Include an append so recovery must also replay it (§III-D).
  DataFrame extra = generator.EdgeSample(session, 1000, 42).value();
  indexed = indexed.AppendRows(extra).value();

  DataFrame probe =
      generator
          .EdgeSample(session, std::max<uint64_t>(4, snb.num_edges / 100000),
                      7)
          .value();

  Sample normal;
  double failure_query_seconds = 0;
  double recovery_seconds = 0;
  uint32_t recovered_tasks = 0;
  for (int q = 1; q <= queries; ++q) {
    if (q == 20) {
      const size_t lost = session.cluster().KillExecutor(3);
      std::printf("query %d: killed executor 3 (%zu blocks lost)\n", q, lost);
    }
    QueryMetrics metrics;
    Stopwatch timer;
    Result<uint64_t> count = indexed.Join(probe, "edge_source").Count(&metrics);
    uint32_t chaos_retries = 0;
    while (!count.ok() && chaos::ChaosEngine::Active() && chaos_retries < 8) {
      // Armed chaos makes individual queries fail cleanly (retryable by
      // contract, docs/TESTING.md); retry like a client would and keep the
      // retries in the reported time.
      ++chaos_retries;
      count = indexed.Join(probe, "edge_source").Count(&metrics);
    }
    if (chaos_retries > 0) {
      std::printf("query %d: %u chaos retr%s\n", q, chaos_retries,
                  chaos_retries == 1 ? "y" : "ies");
    }
    (void)count.value();
    const double elapsed = timer.ElapsedSeconds();
    if (metrics.recovered_tasks > 0) {
      failure_query_seconds = elapsed;
      recovery_seconds = metrics.totals.recovery_seconds;
      recovered_tasks = metrics.recovered_tasks;
      std::printf("query %d: %.1f ms (recovered %u partitions from lineage, "
                  "%.1f ms of re-indexing + replay)\n",
                  q, elapsed * 1e3, metrics.recovered_tasks,
                  recovery_seconds * 1e3);
    } else {
      normal.Add(elapsed);
      if (q <= 25 || q % 50 == 0) {
        std::printf("query %d: %.2f ms\n", q, elapsed * 1e3);
      }
    }
  }

  std::printf("--- summary ---\n");
  std::printf("normal queries: mean %.2f ms (n=%zu)\n", normal.Mean() * 1e3,
              normal.size());
  std::printf("failure query: %.1f ms = %.0fx a normal query "
              "(%u partitions recovered)\n",
              failure_query_seconds * 1e3,
              failure_query_seconds / normal.Mean(), recovered_tasks);
  const double with = (normal.Mean() * static_cast<double>(normal.size()) +
                       failure_query_seconds) /
                      static_cast<double>(normal.size() + 1);
  std::printf("average incl. failure: %.2f ms (+%.1f%% — 'increased only "
              "marginally')\n",
              with * 1e3, (with / normal.Mean() - 1.0) * 100.0);
  bench::PrintFooter();
  return 0;
}
