// Fig. 11 reproduction: per-partition memory overhead of the cTrie index.
//
// Paper: the 30 GB SNB edge table split into 64 partitions; "the memory
// overhead for the Indexed DataFrame is consistently lower than 2% and
// therefore negligible". We measure index bytes (deep cTrie size, the JAMM
// analogue) against row-batch data bytes for each of 64 partitions.
//
// --budget mode: additionally sweeps shrinking memory budgets through the
// memory governor (src/mem/governor.h) and reports resident vs spilled
// bytes and reload-fault counts for a fixed lookup workload at each step —
// the out-of-core extension the paper sketches in §III-C.
#include <algorithm>
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "core/indexed_dataframe.h"
#include "mem/governor.h"
#include "obs/metrics_registry.h"
#include "workload/snb.h"

using namespace idf;

namespace {

/// Fixed probe workload: point lookups across the key range. Returns total
/// rows matched (sanity: must be identical at every budget).
uint64_t RunLookups(const IndexedDataFrame& indexed, int64_t max_key) {
  uint64_t matched = 0;
  for (int64_t k = 1; k <= max_key; k += max_key / 64) {
    auto rows = indexed.GetRows(Value::Int64(k));
    if (rows.ok()) matched += rows->rows.size();
  }
  return matched;
}

void RunBudgetSweep(const IndexedDataFrame& indexed, int64_t max_key) {
  mem::MemoryGovernor& gov = mem::MemoryGovernor::Global();
  obs::Counter& faults = obs::Registry::Global().GetCounter("mem.reload_faults");
  obs::Counter& evictions = obs::Registry::Global().GetCounter("mem.evictions");
  const uint64_t working_set = gov.resident_bytes();
  std::printf("\nbudget sweep (working set %.1f MB, fixed lookup workload):\n",
              working_set / 1048576.0);
  std::printf("  %-10s %-12s %-12s %-10s %-10s %-8s\n", "budget", "resident",
              "spilled", "evictions", "faults", "rows");
  // 100% (unbounded) down to 12.5% of the working set.
  const double fractions[] = {1.0, 0.75, 0.5, 0.25, 0.125};
  for (const double fraction : fractions) {
    const uint64_t budget =
        static_cast<uint64_t>(static_cast<double>(working_set) * fraction);
    const uint64_t faults_before = faults.value();
    const uint64_t evictions_before = evictions.value();
    mem::ScopedBudget scoped(budget);
    const uint64_t rows = RunLookups(indexed, max_key);
    std::printf("  %6.1f%%    %-12llu %-12llu %-10llu %-10llu %llu\n",
                fraction * 100.0,
                static_cast<unsigned long long>(gov.resident_bytes()),
                static_cast<unsigned long long>(gov.spilled_bytes()),
                static_cast<unsigned long long>(evictions.value() -
                                                evictions_before),
                static_cast<unsigned long long>(faults.value() - faults_before),
                static_cast<unsigned long long>(rows));
  }
}

}  // namespace

int main(int argc, char** argv) {
  idf::bench::ObsGuard obs(argc, argv);
  bool budget_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--budget") == 0) budget_mode = true;
  }
  const double scale = bench::ScaleEnv();
  SessionOptions options = bench::PrivateCluster();
  bench::PrintHeader("Fig. 11", "per-partition index memory overhead",
                     "overhead consistently below 2% of the partition data",
                     options);
  Session session(options);

  const SnbConfig snb = SnbConfig::ScaleFactor(2.0 * scale, 64);
  SnbGenerator generator(snb);
  DataFrame edges = generator.Edges(session).value();
  IndexOptions index_options;
  index_options.num_partitions = 64;  // as in the paper's figure
  IndexedDataFrame indexed =
      IndexedDataFrame::Create(edges, "edge_source", index_options).value();

  auto report = indexed.MemoryReport().value();
  double min_pct = 1e9, max_pct = 0, sum_pct = 0;
  uint64_t total_data = 0, total_index = 0;
  for (const PartitionMemory& pm : report) {
    const double pct = pm.overhead_fraction() * 100.0;
    min_pct = std::min(min_pct, pct);
    max_pct = std::max(max_pct, pct);
    sum_pct += pct;
    total_data += pm.data_bytes;
    total_index += pm.index_bytes;
  }

  std::printf("partitions: %zu | rows: %llu | data: %.1f MB | index: %.2f MB\n",
              report.size(),
              static_cast<unsigned long long>(indexed.num_rows()),
              total_data / 1048576.0, total_index / 1048576.0);
  std::printf("per-partition overhead: min %.2f%%  mean %.2f%%  max %.2f%%\n",
              min_pct, sum_pct / static_cast<double>(report.size()), max_pct);
  std::printf("first 8 partitions:\n");
  for (size_t i = 0; i < std::min<size_t>(8, report.size()); ++i) {
    const PartitionMemory& pm = report[i];
    std::printf("  p%-3u rows=%-8llu data=%-10llu index=%-9llu overhead=%.2f%%\n",
                pm.partition, static_cast<unsigned long long>(pm.num_rows),
                static_cast<unsigned long long>(pm.data_bytes),
                static_cast<unsigned long long>(pm.index_bytes),
                pm.overhead_fraction() * 100.0);
  }
  std::printf("paper: <2%% everywhere; measured max: %.2f%% -> %s\n", max_pct,
              max_pct < 2.0 ? "REPRODUCED" : "see EXPERIMENTS.md discussion");
  if (budget_mode) {
    RunBudgetSweep(indexed, static_cast<int64_t>(snb.num_vertices));
  }
  bench::PrintFooter();
  return 0;
}
