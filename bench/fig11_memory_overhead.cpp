// Fig. 11 reproduction: per-partition memory overhead of the cTrie index.
//
// Paper: the 30 GB SNB edge table split into 64 partitions; "the memory
// overhead for the Indexed DataFrame is consistently lower than 2% and
// therefore negligible". We measure index bytes (deep cTrie size, the JAMM
// analogue) against row-batch data bytes for each of 64 partitions.
//
// --budget mode: additionally sweeps shrinking memory budgets through the
// memory governor (src/mem/governor.h) and reports resident vs spilled
// bytes and reload-fault counts for a fixed lookup workload at each step —
// the out-of-core extension the paper sketches in §III-C.
//
// --columnar mode: engages the governor before the session exists so the
// vanilla cache's columnar chunks are sealed as budgeted evictables, then
// sweeps a filter query over the SNB edge table at shrinking budgets. At
// every step the query result must be byte-identical to the unbudgeted run,
// and the residency-aware scheduler's hit counters show how many tasks were
// dispatched onto resident inputs.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <optional>

#include "bench/bench_util.h"
#include "core/indexed_dataframe.h"
#include "mem/governor.h"
#include "obs/metrics_registry.h"
#include "workload/snb.h"

using namespace idf;

namespace {

/// Fixed probe workload: point lookups across the key range. Returns total
/// rows matched (sanity: must be identical at every budget).
uint64_t RunLookups(const IndexedDataFrame& indexed, int64_t max_key) {
  uint64_t matched = 0;
  for (int64_t k = 1; k <= max_key; k += max_key / 64) {
    auto rows = indexed.GetRows(Value::Int64(k));
    if (rows.ok()) matched += rows->rows.size();
  }
  return matched;
}

void RunBudgetSweep(const IndexedDataFrame& indexed, int64_t max_key) {
  mem::MemoryGovernor& gov = mem::MemoryGovernor::Global();
  const uint64_t working_set = gov.resident_bytes();
  std::printf("\nbudget sweep (working set %.1f MB, fixed lookup workload):\n",
              working_set / 1048576.0);
  std::printf("  %-10s %-12s %-12s %-10s %-10s %-8s\n", "budget", "resident",
              "spilled", "evictions", "faults", "rows");
  // 100% (unbounded) down to 12.5% of the working set. One RegistryDelta per
  // rung isolates that rung's governor activity from everything before it.
  const double fractions[] = {1.0, 0.75, 0.5, 0.25, 0.125};
  obs::RegistryDelta delta;
  for (const double fraction : fractions) {
    const uint64_t budget =
        static_cast<uint64_t>(static_cast<double>(working_set) * fraction);
    delta.Reset();
    mem::ScopedBudget scoped(budget);
    const uint64_t rows = RunLookups(indexed, max_key);
    std::printf("  %6.1f%%    %-12llu %-12llu %-10llu %-10llu %llu\n",
                fraction * 100.0,
                static_cast<unsigned long long>(gov.resident_bytes()),
                static_cast<unsigned long long>(gov.spilled_bytes()),
                static_cast<unsigned long long>(delta.Counter("mem.evictions")),
                static_cast<unsigned long long>(
                    delta.Counter("mem.reload_faults")),
                static_cast<unsigned long long>(rows));
  }
}

/// --columnar sweep: a fixed filter query over the governed columnar cache
/// at 100% / 50% / 25% of the measured working set. Chunks evict and fault
/// back column-by-column; the scheduler prefers tasks whose partitions are
/// still resident. Results must match the unbudgeted baseline exactly.
void RunColumnarSweep(DataFrame& edges) {
  mem::MemoryGovernor& gov = mem::MemoryGovernor::Global();
  const uint64_t working_set = gov.resident_bytes();
  ExprPtr predicate = Gt(Col("weight"), Lit(0.5));
  auto baseline = edges.Filter(predicate).Collect();
  if (!baseline.ok()) {
    std::printf("columnar sweep: baseline query failed: %s\n",
                baseline.status().ToString().c_str());
    return;
  }
  const std::vector<std::string> expected = baseline->SortedRowStrings();

  std::printf("\ncolumnar sweep (working set %.1f MB, filter weight > 0.5, "
              "%zu matching rows):\n",
              working_set / 1048576.0, expected.size());
  std::printf("  %-8s %-12s %-12s %-10s %-8s %-10s %-10s %-9s %s\n", "budget",
              "resident", "spilled", "evictions", "faults", "res.hits",
              "res.misses", "hit-rate", "identical");
  // Two delta scopes: `sweep` spans the whole sweep for the overall hit
  // rate; `rung` resets per budget step for the table rows.
  obs::RegistryDelta sweep;
  obs::RegistryDelta rung;
  const double fractions[] = {1.0, 0.5, 0.25};
  for (const double fraction : fractions) {
    const uint64_t budget =
        static_cast<uint64_t>(static_cast<double>(working_set) * fraction);
    rung.Reset();
    mem::ScopedBudget scoped(budget);
    auto result = edges.Filter(predicate).Collect();
    const bool identical =
        result.ok() && result->SortedRowStrings() == expected;
    const uint64_t hit_delta = rung.Counter("sched.resident_hits");
    const uint64_t task_delta = rung.Counter("engine.tasks");
    std::printf("  %5.1f%%   %-12llu %-12llu %-10llu %-8llu %-10llu %-10llu "
                "%6.1f%%   %s\n",
                fraction * 100.0,
                static_cast<unsigned long long>(gov.resident_bytes()),
                static_cast<unsigned long long>(gov.spilled_bytes()),
                static_cast<unsigned long long>(rung.Counter("mem.evictions")),
                static_cast<unsigned long long>(
                    rung.Counter("mem.reload_faults")),
                static_cast<unsigned long long>(hit_delta),
                static_cast<unsigned long long>(
                    rung.Counter("sched.resident_misses")),
                task_delta == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(hit_delta) /
                          static_cast<double>(task_delta),
                identical ? "yes" : "NO");
  }
  const uint64_t sweep_hits = sweep.Counter("sched.resident_hits");
  const uint64_t sweep_tasks = sweep.Counter("engine.tasks");
  std::printf("overall resident-dispatch hit rate: %llu/%llu tasks (%.1f%%)\n",
              static_cast<unsigned long long>(sweep_hits),
              static_cast<unsigned long long>(sweep_tasks),
              sweep_tasks == 0 ? 0.0
                               : 100.0 * static_cast<double>(sweep_hits) /
                                     static_cast<double>(sweep_tasks));
}

}  // namespace

int main(int argc, char** argv) {
  idf::bench::ObsGuard obs(argc, argv);
  bool budget_mode = false;
  bool columnar_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--budget") == 0) budget_mode = true;
    if (std::strcmp(argv[i], "--columnar") == 0) columnar_mode = true;
  }
  // In --columnar mode the governor must be engaged before the session is
  // built: columnar chunks only register as evictables when sealed while a
  // budget is active. A huge budget keeps the build itself unconstrained.
  std::optional<mem::ScopedBudget> engage;
  if (columnar_mode) engage.emplace(1ull << 40);
  const double scale = bench::ScaleEnv();
  SessionOptions options = bench::PrivateCluster();
  bench::PrintHeader("Fig. 11", "per-partition index memory overhead",
                     "overhead consistently below 2% of the partition data",
                     options);
  Session session(options);

  const SnbConfig snb = SnbConfig::ScaleFactor(2.0 * scale, 64);
  SnbGenerator generator(snb);
  DataFrame edges = generator.Edges(session).value();
  if (columnar_mode) {
    RunColumnarSweep(edges);
    bench::PrintFooter();
    return 0;
  }
  IndexOptions index_options;
  index_options.num_partitions = 64;  // as in the paper's figure
  IndexedDataFrame indexed =
      IndexedDataFrame::Create(edges, "edge_source", index_options).value();

  auto report = indexed.MemoryReport().value();
  double min_pct = 1e9, max_pct = 0, sum_pct = 0;
  uint64_t total_data = 0, total_index = 0;
  for (const PartitionMemory& pm : report) {
    const double pct = pm.overhead_fraction() * 100.0;
    min_pct = std::min(min_pct, pct);
    max_pct = std::max(max_pct, pct);
    sum_pct += pct;
    total_data += pm.data_bytes;
    total_index += pm.index_bytes;
  }

  std::printf("partitions: %zu | rows: %llu | data: %.1f MB | index: %.2f MB\n",
              report.size(),
              static_cast<unsigned long long>(indexed.num_rows()),
              total_data / 1048576.0, total_index / 1048576.0);
  std::printf("per-partition overhead: min %.2f%%  mean %.2f%%  max %.2f%%\n",
              min_pct, sum_pct / static_cast<double>(report.size()), max_pct);
  std::printf("first 8 partitions:\n");
  for (size_t i = 0; i < std::min<size_t>(8, report.size()); ++i) {
    const PartitionMemory& pm = report[i];
    std::printf("  p%-3u rows=%-8llu data=%-10llu index=%-9llu overhead=%.2f%%\n",
                pm.partition, static_cast<unsigned long long>(pm.num_rows),
                static_cast<unsigned long long>(pm.data_bytes),
                static_cast<unsigned long long>(pm.index_bytes),
                pm.overhead_fraction() * 100.0);
  }
  std::printf("paper: <2%% everywhere; measured max: %.2f%% -> %s\n", max_pct,
              max_pct < 2.0 ? "REPRODUCED" : "see EXPERIMENTS.md discussion");
  if (budget_mode) {
    RunBudgetSweep(indexed, static_cast<int64_t>(snb.num_vertices));
  }
  bench::PrintFooter();
  return 0;
}
