// Fig. 11 reproduction: per-partition memory overhead of the cTrie index.
//
// Paper: the 30 GB SNB edge table split into 64 partitions; "the memory
// overhead for the Indexed DataFrame is consistently lower than 2% and
// therefore negligible". We measure index bytes (deep cTrie size, the JAMM
// analogue) against row-batch data bytes for each of 64 partitions.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/indexed_dataframe.h"
#include "workload/snb.h"

using namespace idf;

int main(int argc, char** argv) {
  idf::bench::ObsGuard obs(argc, argv);
  const double scale = bench::ScaleEnv();
  SessionOptions options = bench::PrivateCluster();
  bench::PrintHeader("Fig. 11", "per-partition index memory overhead",
                     "overhead consistently below 2% of the partition data",
                     options);
  Session session(options);

  const SnbConfig snb = SnbConfig::ScaleFactor(2.0 * scale, 64);
  SnbGenerator generator(snb);
  DataFrame edges = generator.Edges(session).value();
  IndexOptions index_options;
  index_options.num_partitions = 64;  // as in the paper's figure
  IndexedDataFrame indexed =
      IndexedDataFrame::Create(edges, "edge_source", index_options).value();

  auto report = indexed.MemoryReport().value();
  double min_pct = 1e9, max_pct = 0, sum_pct = 0;
  uint64_t total_data = 0, total_index = 0;
  for (const PartitionMemory& pm : report) {
    const double pct = pm.overhead_fraction() * 100.0;
    min_pct = std::min(min_pct, pct);
    max_pct = std::max(max_pct, pct);
    sum_pct += pct;
    total_data += pm.data_bytes;
    total_index += pm.index_bytes;
  }

  std::printf("partitions: %zu | rows: %llu | data: %.1f MB | index: %.2f MB\n",
              report.size(),
              static_cast<unsigned long long>(indexed.num_rows()),
              total_data / 1048576.0, total_index / 1048576.0);
  std::printf("per-partition overhead: min %.2f%%  mean %.2f%%  max %.2f%%\n",
              min_pct, sum_pct / static_cast<double>(report.size()), max_pct);
  std::printf("first 8 partitions:\n");
  for (size_t i = 0; i < std::min<size_t>(8, report.size()); ++i) {
    const PartitionMemory& pm = report[i];
    std::printf("  p%-3u rows=%-8llu data=%-10llu index=%-9llu overhead=%.2f%%\n",
                pm.partition, static_cast<unsigned long long>(pm.num_rows),
                static_cast<unsigned long long>(pm.data_bytes),
                static_cast<unsigned long long>(pm.index_bytes),
                pm.overhead_fraction() * 100.0);
  }
  std::printf("paper: <2%% everywhere; measured max: %.2f%% -> %s\n", max_pct,
              max_pct < 2.0 ? "REPRODUCED" : "see EXPERIMENTS.md discussion");
  bench::PrintFooter();
  return 0;
}
