// Ablation: multi-version batch management — seal-and-reopen with size
// hints (production, §III-E "children share the parent data and only store
// the deltas") vs naive full-size batches per version, vs eager full-copy
// (the copy-on-write strawman the paper rejects: "this incurs large
// performance penalties (full data copies) and storage overheads").
#include <cstdio>

#include "bench/bench_util.h"
#include "core/indexed_partition.h"
#include "workload/snb.h"

using namespace idf;

int main(int argc, char** argv) {
  idf::bench::ObsGuard obs(argc, argv);
  const double scale = bench::ScaleEnv();
  SessionOptions options;
  bench::PrintHeader("Ablation", "versioned append storage strategies",
                     "hint-sized sealed batches append fast with tiny "
                     "allocations; full copies are catastrophic",
                     options);

  SnbConfig snb;
  snb.num_edges = static_cast<uint64_t>(200000 * scale);
  snb.num_vertices = snb.num_edges / 100;
  SnbGenerator generator(snb);
  RowLayout layout(SnbGenerator::EdgeSchema());

  const int kVersions = 100;
  const int kRowsPerAppend = 64;

  auto base_rows = [&](IndexedPartition& part) {
    for (uint64_t i = 0; i < snb.num_edges; ++i) {
      IDF_CHECK_OK(part.InsertRow(generator.EdgeRow(i)));
    }
  };
  auto append_row = [&](uint64_t version, int i) {
    return generator.EdgeRow((version * 1000 + static_cast<uint64_t>(i)) %
                             snb.num_edges);
  };

  // (a) Production: snapshot + hint-sized fresh batch per version.
  {
    IndexedPartition base(SnbGenerator::EdgeSchema(), 0);
    base_rows(base);
    std::shared_ptr<IndexedPartition> current = base.Snapshot();
    Stopwatch timer;
    for (int v = 0; v < kVersions; ++v) {
      auto next = current->Snapshot();
      next->ReserveHint(static_cast<uint64_t>(kRowsPerAppend) * 56);
      for (int i = 0; i < kRowsPerAppend; ++i) {
        IDF_CHECK_OK(next->InsertRow(append_row(v, i)));
      }
      current = next;
    }
    std::printf("%-34s %8.1f ms (final data footprint %.1f MB; appended "
                "batches are hint-sized)\n",
                "seal + hint-sized batches:", timer.ElapsedSeconds() * 1e3,
                current->data_bytes() / 1048576.0);
  }

  // (b) No hint: every version opens a default 4 MB batch.
  {
    IndexedPartition base(SnbGenerator::EdgeSchema(), 0);
    base_rows(base);
    std::shared_ptr<IndexedPartition> current = base.Snapshot();
    Stopwatch timer;
    for (int v = 0; v < kVersions; ++v) {
      auto next = current->Snapshot();  // no ReserveHint
      for (int i = 0; i < kRowsPerAppend; ++i) {
        IDF_CHECK_OK(next->InsertRow(append_row(v, i)));
      }
      current = next;
    }
    std::printf("%-34s %8.1f ms (each tiny append allocates+touches a full "
                "4 MB batch)\n",
                "seal + full-size batches:", timer.ElapsedSeconds() * 1e3);
  }

  // (c) Eager copy-on-write strawman: each version deep-copies all rows.
  {
    IndexedPartition base(SnbGenerator::EdgeSchema(), 0);
    base_rows(base);
    auto current = std::make_shared<IndexedPartition>(
        SnbGenerator::EdgeSchema(), 0);
    base.ForEachRow([&](const uint8_t* row) {
      IDF_CHECK_OK(current->InsertEncoded(row, RowLayout::RowSize(row)));
    });
    Stopwatch timer;
    const int copy_versions = 5;  // 100 would take minutes; extrapolate
    for (int v = 0; v < copy_versions; ++v) {
      auto next = std::make_shared<IndexedPartition>(
          SnbGenerator::EdgeSchema(), 0);
      current->ForEachRow([&](const uint8_t* row) {
        IDF_CHECK_OK(next->InsertEncoded(row, RowLayout::RowSize(row)));
      });
      for (int i = 0; i < kRowsPerAppend; ++i) {
        IDF_CHECK_OK(next->InsertRow(append_row(static_cast<uint64_t>(v), i)));
      }
      current = next;
    }
    const double per_version = timer.ElapsedSeconds() / copy_versions;
    std::printf("%-34s %8.1f ms per version -> %.1f s for %d versions "
                "(full data copies)\n",
                "eager copy-on-write:", per_version * 1e3,
                per_version * kVersions, kVersions);
  }
  bench::PrintFooter();
  return 0;
}
