// Fig. 6 reproduction: horizontal (2..32 workers, fixed data) and vertical
// (1..16 cores, 4 workers) scalability of the XL indexed join.
//
// Paper: horizontal speedup is sub-linear (more workers => more network
// communication); vertical scaling is close to linear.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/indexed_dataframe.h"
#include "workload/snb.h"

using namespace idf;

namespace {

/// Average simulated seconds for the XL join on the given topology.
/// Partition count follows the paper's deployment rule of 1-4 partitions
/// per core, so bigger clusters actually receive more tasks.
double MeasureJoin(SessionOptions options, SnbConfig snb, int reps) {
  snb.partitions = std::max(32u, options.cluster.total_cores() * 2);
  // The XL probe is far above Spark's broadcast threshold at paper scale:
  // force the shuffle path here as well (see fig07 for the rationale).
  options.broadcast_threshold_bytes = static_cast<uint64_t>(
      50.0 * 1024 * bench::ScaleEnv());
  Session session(options);
  SnbGenerator generator(snb);
  DataFrame edges = generator.Edges(session).value();
  IndexOptions index_options;
  index_options.num_partitions = snb.partitions;  // 2 per core, like the data
  IndexedDataFrame indexed =
      IndexedDataFrame::Create(edges, "edge_source", index_options).value();
  const uint64_t probe_rows = std::max<uint64_t>(8, snb.num_edges / 100);

  Sample sim;
  for (int r = 0; r < reps; ++r) {
    DataFrame probe = generator.EdgeSample(session, probe_rows, 50 + r).value();
    QueryMetrics metrics;
    (void)indexed.Join(probe, "edge_source").Execute(&metrics).value();
    sim.Add(metrics.simulated_seconds);
  }
  return sim.Mean();
}

}  // namespace

int main(int argc, char** argv) {
  idf::bench::ObsGuard obs(argc, argv);
  const double scale = bench::ScaleEnv();
  const int reps = bench::RepsEnv(3);
  bench::PrintHeader("Fig. 6", "horizontal & vertical scalability (XL join)",
                     "horizontal: sub-linear (network-bound); vertical: "
                     "close to linear",
                     bench::PrivateCluster());

  const SnbConfig snb = SnbConfig::ScaleFactor(2.0 * scale, 32);

  std::printf("--- (a) horizontal: workers 2..32, 16 cores each ---\n");
  std::printf("%-8s %-14s %-10s %-14s\n", "Workers", "sim time (s)", "speedup",
              "ideal speedup");
  double t2 = 0;
  for (uint32_t workers : {2u, 4u, 8u, 16u, 32u}) {
    SessionOptions options = bench::PrivateCluster(workers);
    const double t = MeasureJoin(options, snb, reps);
    if (workers == 2) t2 = t;
    std::printf("%-8u %-14.4f %-10.2f %-14.1f\n", workers, t, t2 / t,
                workers / 2.0);
  }

  std::printf("--- (b) vertical: 4 workers, 1..16 cores per executor ---\n");
  std::printf("%-8s %-14s %-10s %-14s\n", "Cores", "sim time (s)", "speedup",
              "ideal speedup");
  double t1 = 0;
  for (uint32_t cores : {1u, 2u, 4u, 8u, 16u}) {
    SessionOptions options = bench::PrivateCluster(4);
    // "a single executor per worker machine" (§IV-C), core count varied.
    options.cluster.executors_per_worker = 1;
    options.cluster.cores_per_executor = cores;
    options.cluster.numa_pinned = true;
    const double t = MeasureJoin(options, snb, reps);
    if (cores == 1) t1 = t;
    std::printf("%-8u %-14.4f %-10.2f %-14.1f\n", cores, t, t1 / t,
                static_cast<double>(cores));
  }
  bench::PrintFooter();
  return 0;
}
