// Fig. 6 reproduction: horizontal (2..32 workers, fixed data) and vertical
// (1..16 cores, 4 workers) scalability of the XL indexed join.
//
// Paper: horizontal speedup is sub-linear (more workers => more network
// communication); vertical scaling is close to linear.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "bench/bench_util.h"
#include "core/indexed_dataframe.h"
#include "core/indexed_partition.h"
#include "engine/cluster.h"
#include "workload/snb.h"

using namespace idf;

namespace {

/// Average simulated seconds for the XL join on the given topology.
/// Partition count follows the paper's deployment rule of 1-4 partitions
/// per core, so bigger clusters actually receive more tasks.
double MeasureJoin(SessionOptions options, SnbConfig snb, int reps) {
  snb.partitions = std::max(32u, options.cluster.total_cores() * 2);
  // The XL probe is far above Spark's broadcast threshold at paper scale:
  // force the shuffle path here as well (see fig07 for the rationale).
  options.broadcast_threshold_bytes = static_cast<uint64_t>(
      50.0 * 1024 * bench::ScaleEnv());
  Session session(options);
  SnbGenerator generator(snb);
  DataFrame edges = generator.Edges(session).value();
  IndexOptions index_options;
  index_options.num_partitions = snb.partitions;  // 2 per core, like the data
  IndexedDataFrame indexed =
      IndexedDataFrame::Create(edges, "edge_source", index_options).value();
  const uint64_t probe_rows = std::max<uint64_t>(8, snb.num_edges / 100);

  Sample sim;
  for (int r = 0; r < reps; ++r) {
    DataFrame probe = generator.EdgeSample(session, probe_rows, 50 + r).value();
    QueryMetrics metrics;
    (void)indexed.Join(probe, "edge_source").Execute(&metrics).value();
    sim.Add(metrics.simulated_seconds);
  }
  return sim.Mean();
}

// ---- --measured: real scheduler speedup -----------------------------------
//
// Everything above reports DES-simulated seconds. This mode instead measures
// *host* wall-clock seconds: one stage of read-mostly indexed-lookup tasks
// (ForEachRowOfKey probes against a shared IndexedPartition) runs on the
// parallel task scheduler (docs/SCHEDULER.md) at 1/2/4/8 worker threads.
// Every probe batch pays a short sleep modeling the synchronous remote
// shuffle-fetch stall a real executor would see, so extra scheduler lanes
// overlap stalls — which is why measured speedup exceeds 1x even on a
// single-core host where pure compute cannot parallelize.
int RunMeasured(int reps) {
  std::printf("--- (c) measured: parallel stage scheduler, 1..8 threads ---\n");

  auto schema = std::make_shared<Schema>(Schema({
      {"k", TypeId::kInt64, false},
      {"v", TypeId::kInt64, false},
  }));
  IndexedPartition table(schema, 0);
  constexpr int64_t kKeys = 1 << 12;
  constexpr int64_t kRows = 1 << 16;  // 16 rows per key chain
  for (int64_t i = 0; i < kRows; ++i) {
    Status s = table.InsertRow({Value::Int64(i % kKeys), Value::Int64(i)});
    if (!s.ok()) {
      std::printf("insert failed: %s\n", s.message().c_str());
      return 1;
    }
  }

  constexpr uint32_t kTasks = 16;
  constexpr int kProbesPerTask = 2048;
  constexpr int kProbesPerFetch = 256;  // probes served per modeled fetch
  constexpr auto kFetchStall = std::chrono::microseconds(400);

  std::printf("%-8s %-12s %-12s %-10s %-8s %-8s %-8s\n", "Threads", "wall (s)",
              "sum-task(s)", "speedup", "ideal", "tasks", "steals");
  double t1 = 0;
  obs::RegistryDelta delta;  // per-rung scheduler counters
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    ClusterConfig config;
    config.num_workers = 4;
    config.executors_per_worker = 2;
    config.cores_per_executor = 4;
    config.scheduler_threads = threads;
    Cluster cluster(config);

    StageSpec stage;
    stage.name = "measured-lookup";
    for (uint32_t t = 0; t < kTasks; ++t) {
      TaskSpec task;
      task.preferred = t % config.total_executors();
      task.body = [&, t](TaskContext& ctx) {
        uint64_t visited = 0;
        for (int p = 0; p < kProbesPerTask; ++p) {
          if (p % kProbesPerFetch == 0) std::this_thread::sleep_for(kFetchStall);
          const uint64_t key =
              static_cast<uint64_t>((t * kProbesPerTask + p) % kKeys);
          table.ForEachRowOfKey(key, [&](const uint8_t*) { ++visited; });
          ++ctx.metrics().index_probes;
        }
        ctx.metrics().rows_read += visited;
        return Status::OK();
      };
      stage.tasks.push_back(std::move(task));
    }

    Sample wall;
    Sample task_sum;
    delta.Reset();
    for (int r = 0; r < reps; ++r) {
      auto metrics = cluster.RunStage(stage);
      if (!metrics.ok()) {
        std::printf("stage failed: %s\n", metrics.status().message().c_str());
        return 1;
      }
      wall.Add(metrics->wall_seconds);
      task_sum.Add(metrics->real_seconds);
    }
    if (threads == 1) t1 = wall.Mean();
    std::printf("%-8u %-12.4f %-12.4f %-10.2f %-8.1f %-8llu %-8llu\n", threads,
                wall.Mean(), task_sum.Mean(), t1 / wall.Mean(),
                static_cast<double>(threads),
                static_cast<unsigned long long>(delta.Counter("engine.tasks")),
                static_cast<unsigned long long>(
                    delta.Counter("engine.scheduler.steals")));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  idf::bench::ObsGuard obs(argc, argv);
  const double scale = bench::ScaleEnv();
  const int reps = bench::RepsEnv(3);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--measured") == 0) return RunMeasured(reps);
  }
  bench::PrintHeader("Fig. 6", "horizontal & vertical scalability (XL join)",
                     "horizontal: sub-linear (network-bound); vertical: "
                     "close to linear",
                     bench::PrivateCluster());

  const SnbConfig snb = SnbConfig::ScaleFactor(2.0 * scale, 32);

  std::printf("--- (a) horizontal: workers 2..32, 16 cores each ---\n");
  std::printf("%-8s %-14s %-10s %-14s\n", "Workers", "sim time (s)", "speedup",
              "ideal speedup");
  double t2 = 0;
  for (uint32_t workers : {2u, 4u, 8u, 16u, 32u}) {
    SessionOptions options = bench::PrivateCluster(workers);
    const double t = MeasureJoin(options, snb, reps);
    if (workers == 2) t2 = t;
    std::printf("%-8u %-14.4f %-10.2f %-14.1f\n", workers, t, t2 / t,
                workers / 2.0);
  }

  std::printf("--- (b) vertical: 4 workers, 1..16 cores per executor ---\n");
  std::printf("%-8s %-14s %-10s %-14s\n", "Cores", "sim time (s)", "speedup",
              "ideal speedup");
  double t1 = 0;
  for (uint32_t cores : {1u, 2u, 4u, 8u, 16u}) {
    SessionOptions options = bench::PrivateCluster(4);
    // "a single executor per worker machine" (§IV-C), core count varied.
    options.cluster.executors_per_worker = 1;
    options.cluster.cores_per_executor = cores;
    options.cluster.numa_pinned = true;
    const double t = MeasureJoin(options, snb, reps);
    if (cores == 1) t1 = t;
    std::printf("%-8u %-14.4f %-10.2f %-14.1f\n", cores, t, t1 / t,
                static_cast<double>(cores));
  }
  bench::PrintFooter();
  return 0;
}
