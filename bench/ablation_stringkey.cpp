// Ablation: string keys vs integer keys (§IV-E: "strings need to be hashed
// into a number which is then used as a key in the cTrie" — plus a verify
// step on every match to resolve hash collisions).
//
// Also compares the production design (hash-to-64-bit + verify) against
// storing full std::string keys in the trie, which avoids verification but
// pays string storage and comparisons inside the index.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/indexed_partition.h"
#include "ctrie/ctrie.h"
#include "workload/flights.h"

using namespace idf;

int main(int argc, char** argv) {
  idf::bench::ObsGuard obs(argc, argv);
  const double scale = bench::ScaleEnv();
  SessionOptions options;
  bench::PrintHeader("Ablation", "string keys vs integer keys",
                     "int keys index and probe faster; hashed-string keys "
                     "pay hashing + per-match verification",
                     options);

  const uint64_t rows = static_cast<uint64_t>(400000 * scale);
  FlightsConfig config;
  config.num_flights = rows;
  config.num_planes = 5000;
  FlightsGenerator generator(config);

  // Build the same partition twice: keyed by flight_num (int, col 0) and by
  // tail_num (string, col 1).
  Stopwatch int_build_timer;
  IndexedPartition by_int(FlightsGenerator::FlightsSchema(), 0);
  for (uint64_t i = 0; i < rows; ++i) {
    IDF_CHECK_OK(by_int.InsertRow(generator.FlightRow(i)));
  }
  const double int_build = int_build_timer.ElapsedSeconds();

  Stopwatch str_build_timer;
  IndexedPartition by_str(FlightsGenerator::FlightsSchema(), 1);
  for (uint64_t i = 0; i < rows; ++i) {
    IDF_CHECK_OK(by_str.InsertRow(generator.FlightRow(i)));
  }
  const double str_build = str_build_timer.ElapsedSeconds();

  // Alternative: full string keys in the trie (no verification needed).
  Stopwatch full_build_timer;
  CTrie<std::string, uint64_t> full_string_trie;
  RowLayout layout(FlightsGenerator::FlightsSchema());
  for (uint64_t i = 0; i < rows; ++i) {
    RowVec row = generator.FlightRow(i);
    full_string_trie.Put(row[1].string_value(), i);
  }
  const double full_build = full_build_timer.ElapsedSeconds();

  std::printf("index build on %llu rows:\n",
              static_cast<unsigned long long>(rows));
  std::printf("  int key:               %.2f s (%.0f rows/s)\n", int_build,
              rows / int_build);
  std::printf("  hashed string + verify: %.2f s (%.0f rows/s)\n", str_build,
              rows / str_build);
  std::printf("  full string in trie:    %.2f s (%.0f rows/s, latest row "
              "only — no chains)\n",
              full_build, rows / full_build);

  // Lookups.
  constexpr int kProbes = 20000;
  Rng rng(3);
  Stopwatch int_lookup_timer;
  uint64_t int_hits = 0;
  for (int i = 0; i < kProbes; ++i) {
    const int32_t key = static_cast<int32_t>(
        rng.Below(static_cast<uint64_t>(config.num_flight_numbers)));
    int_hits += by_int.LookupRows(Value::Int32(key)).size();
  }
  const double int_lookup = int_lookup_timer.ElapsedSeconds();

  Stopwatch str_lookup_timer;
  uint64_t str_hits = 0;
  for (int i = 0; i < kProbes; ++i) {
    str_hits += by_str
                    .LookupRows(Value::String(
                        FlightsGenerator::TailNum(rng.Below(config.num_planes))))
                    .size();
  }
  const double str_lookup = str_lookup_timer.ElapsedSeconds();

  Stopwatch full_lookup_timer;
  uint64_t full_hits = 0;
  for (int i = 0; i < kProbes; ++i) {
    full_hits += full_string_trie
                     .Lookup(FlightsGenerator::TailNum(rng.Below(config.num_planes)))
                     .has_value();
  }
  const double full_lookup = full_lookup_timer.ElapsedSeconds();

  std::printf("point lookups (%d probes):\n", kProbes);
  std::printf("  int key:                %.1f us/probe (%llu rows)\n",
              int_lookup / kProbes * 1e6,
              static_cast<unsigned long long>(int_hits));
  std::printf("  hashed string + verify: %.1f us/probe (%llu rows, "
              "%.2fx int)\n",
              str_lookup / kProbes * 1e6,
              static_cast<unsigned long long>(str_hits),
              (str_lookup / kProbes) / (int_lookup / kProbes + 1e-12));
  std::printf("  full string in trie:    %.1f us/probe (head only: %llu)\n",
              full_lookup / kProbes * 1e6,
              static_cast<unsigned long long>(full_hits));
  std::printf("(matches the paper: integer-key operations gain more than "
              "string-key ones)\n");
  bench::PrintFooter();
  return 0;
}
