// Fig. 10 reproduction: write throughput of appendRows / createIndex for
// various rows-per-append, cumulated over 200 appends.
//
// Paper: "most of the write time is dominated by shuffles ... the results
// are similar for both append and createIndex, as the two APIs perform the
// same internal operations"; 200 appends of 1M rows (200M rows) took just
// below 7 seconds on their cluster.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/indexed_dataframe.h"
#include "workload/snb.h"

using namespace idf;

int main(int argc, char** argv) {
  idf::bench::ObsGuard obs(argc, argv);
  const double scale = bench::ScaleEnv();
  const int appends = bench::RepsEnv(0) > 0 ? bench::RepsEnv(0) : 200;
  SessionOptions options = bench::PrivateCluster();
  bench::PrintHeader("Fig. 10", "append/createIndex write throughput",
                     "throughput dominated by the shuffle; larger append "
                     "batches amortize better; append == createIndex",
                     options);
  Session session(options);

  const SnbConfig snb = SnbConfig::ScaleFactor(0.1 * scale, 32);
  SnbGenerator generator(snb);

  std::printf("--- appendRows: %d appends per batch size ---\n", appends);
  std::printf("%-14s %-14s %-16s %-16s %-14s\n", "rows/append", "total rows",
              "total time (s)", "rows/s", "shuffle MB");
  for (uint64_t rows_per_append :
       {uint64_t(1000 * scale), uint64_t(10000 * scale),
        uint64_t(50000 * scale)}) {
    DataFrame edges = generator.Edges(session).value();
    IndexedDataFrame current =
        IndexedDataFrame::Create(edges, "edge_source").value();
    QueryMetrics total_metrics;
    Stopwatch timer;
    for (int a = 0; a < appends; ++a) {
      DataFrame extra =
          generator.EdgeSample(session, rows_per_append, 9000 + a).value();
      QueryMetrics metrics;
      current = current.AppendRows(extra, &metrics).value();
      total_metrics.totals.MergeFrom(metrics.totals);
    }
    const double seconds = timer.ElapsedSeconds();
    const uint64_t total_rows = rows_per_append * appends;
    std::printf("%-14llu %-14llu %-16.2f %-16.0f %-14.1f\n",
                static_cast<unsigned long long>(rows_per_append),
                static_cast<unsigned long long>(total_rows), seconds,
                static_cast<double>(total_rows) / seconds,
                total_metrics.totals.shuffle_bytes_written / 1048576.0);
  }

  std::printf("--- createIndex on the same volumes (same write mechanism) ---\n");
  std::printf("%-14s %-16s %-16s\n", "rows", "time (s)", "rows/s");
  for (uint64_t rows : {uint64_t(200000 * scale), uint64_t(2000000 * scale)}) {
    SnbConfig config = snb;
    config.num_edges = rows;
    config.num_vertices = std::max<uint64_t>(1, rows / 100);
    SnbGenerator g(config);
    DataFrame edges = g.Edges(session).value();
    Stopwatch timer;
    (void)IndexedDataFrame::Create(edges, "edge_source").value();
    const double seconds = timer.ElapsedSeconds();
    std::printf("%-14llu %-16.2f %-16.0f\n",
                static_cast<unsigned long long>(rows), seconds,
                static_cast<double>(rows) / seconds);
  }
  std::printf("(per-row cost of createIndex matches bulk appendRows: same "
              "shuffle + insert path)\n");
  bench::PrintFooter();
  return 0;
}
