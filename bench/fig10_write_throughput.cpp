// Fig. 10 reproduction: write throughput of appendRows / createIndex for
// various rows-per-append, cumulated over 200 appends.
//
// Paper: "most of the write time is dominated by shuffles ... the results
// are similar for both append and createIndex, as the two APIs perform the
// same internal operations"; 200 appends of 1M rows (200M rows) took just
// below 7 seconds on their cluster.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "core/indexed_dataframe.h"
#include "engine/shuffle.h"
#include "obs/metrics_registry.h"
#include "workload/snb.h"

using namespace idf;

namespace {

/// One appendRows series: cumulative AppendRows wall time (row generation
/// excluded) plus the determinism fingerprint the A/B compares.
struct AppendSeries {
  double seconds = 0;
  uint64_t final_rows = 0;
  uint64_t batch_copies = 0;
  uint64_t ctrie_snapshots = 0;
};

AppendSeries RunAppendSeries(const SessionOptions& options,
                             const SnbGenerator& generator,
                             uint64_t rows_per_append, int appends) {
  Session session(options);
  DataFrame edges = generator.Edges(session).value();
  IndexedDataFrame current =
      IndexedDataFrame::Create(edges, "edge_source").value();
  AppendSeries out;
  for (int a = 0; a < appends; ++a) {
    DataFrame extra =
        generator.EdgeSample(session, rows_per_append, 9000 + a).value();
    QueryMetrics metrics;
    Stopwatch timer;
    current = current.AppendRows(extra, &metrics).value();
    out.seconds += timer.ElapsedSeconds();
    out.batch_copies += metrics.totals.batch_copies;
    out.ctrie_snapshots += metrics.totals.ctrie_snapshots;
  }
  out.final_rows = current.num_rows();
  return out;
}

/// --pipelined: A/B the streaming transport against the barrier path on the
/// append series (same data, same seeds), verify the determinism contract,
/// and optionally emit BENCH_shuffle.json for CI.
int RunPipelinedAb(SessionOptions options, double scale, int appends,
                   const std::string& shuffle_out) {
  if (options.cluster.scheduler_threads == 0) {
    // The overlap needs real host parallelism: 4 threads matches the
    // smallest topology the speedup target is defined over (and the CI
    // runner's vCPU count). IDF_PARALLEL still overrides inside Cluster.
    options.cluster.scheduler_threads = 4;
  }
  const uint64_t rows_per_append =
      std::max<uint64_t>(1000, static_cast<uint64_t>(50000 * scale));
  const SnbConfig snb = SnbConfig::ScaleFactor(0.1 * scale, 32);
  SnbGenerator generator(snb);

  std::printf("--- streaming shuffle A/B: %d appends x %llu rows, %u "
              "scheduler threads ---\n",
              appends, static_cast<unsigned long long>(rows_per_append),
              options.cluster.scheduler_threads);
  ::setenv("IDF_SHUFFLE_PIPELINE", "0", 1);
  const AppendSeries barrier =
      RunAppendSeries(options, generator, rows_per_append, appends);
  ::setenv("IDF_SHUFFLE_PIPELINE", "1", 1);
  const AppendSeries pipelined =
      RunAppendSeries(options, generator, rows_per_append, appends);
  ::unsetenv("IDF_SHUFFLE_PIPELINE");

  if (pipelined.final_rows != barrier.final_rows ||
      pipelined.batch_copies != barrier.batch_copies ||
      pipelined.ctrie_snapshots != barrier.ctrie_snapshots) {
    std::fprintf(stderr,
                 "determinism violation: rows %llu/%llu copies %llu/%llu "
                 "snapshots %llu/%llu (pipelined/barrier)\n",
                 static_cast<unsigned long long>(pipelined.final_rows),
                 static_cast<unsigned long long>(barrier.final_rows),
                 static_cast<unsigned long long>(pipelined.batch_copies),
                 static_cast<unsigned long long>(barrier.batch_copies),
                 static_cast<unsigned long long>(pipelined.ctrie_snapshots),
                 static_cast<unsigned long long>(barrier.ctrie_snapshots));
    return 1;
  }

  const uint64_t total_rows = rows_per_append * appends;
  const double barrier_rps = total_rows / barrier.seconds;
  const double pipelined_rps = total_rows / pipelined.seconds;
  const double speedup = pipelined_rps / barrier_rps;
  const uint64_t window = ShuffleWindowBytes();
  const uint64_t peak = static_cast<uint64_t>(
      obs::Registry::Global()
          .GetGauge("engine.shuffle.inflight_peak_bytes")
          .value());
  std::printf("%-12s %-16s %-16s\n", "transport", "total time (s)", "rows/s");
  std::printf("%-12s %-16.2f %-16.0f\n", "barrier", barrier.seconds,
              barrier_rps);
  std::printf("%-12s %-16.2f %-16.0f\n", "pipelined", pipelined.seconds,
              pipelined_rps);
  std::printf("speedup %.2fx; results byte-identical (%llu rows, %llu COW "
              "copies, %llu snapshots); inflight peak %llu of %llu window\n",
              speedup, static_cast<unsigned long long>(pipelined.final_rows),
              static_cast<unsigned long long>(pipelined.batch_copies),
              static_cast<unsigned long long>(pipelined.ctrie_snapshots),
              static_cast<unsigned long long>(peak),
              static_cast<unsigned long long>(window));

  if (!shuffle_out.empty()) {
    FILE* f = std::fopen(shuffle_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", shuffle_out.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\"bench\": \"fig10_append\", \"threads\": %u, "
        "\"rows_per_append\": %llu, \"appends\": %d, "
        "\"barrier_rows_per_s\": %.0f, \"pipelined_rows_per_s\": %.0f, "
        "\"speedup\": %.4f, \"window_bytes\": %llu, "
        "\"inflight_peak_bytes\": %llu}\n",
        options.cluster.scheduler_threads,
        static_cast<unsigned long long>(rows_per_append), appends,
        barrier_rps, pipelined_rps, speedup,
        static_cast<unsigned long long>(window),
        static_cast<unsigned long long>(peak));
    std::fclose(f);
    std::printf("A/B result written to %s\n", shuffle_out.c_str());
  }
  bench::PrintFooter();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  idf::bench::ObsGuard obs(argc, argv);
  bool pipelined_ab = false;
  std::string shuffle_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--pipelined") == 0) pipelined_ab = true;
    if (std::strncmp(argv[i], "--shuffle-out=", 14) == 0) {
      shuffle_out = argv[i] + 14;
    }
  }
  const double scale = bench::ScaleEnv();
  const int appends = bench::RepsEnv(0) > 0 ? bench::RepsEnv(0) : 200;
  SessionOptions options = bench::PrivateCluster();
  bench::PrintHeader("Fig. 10", "append/createIndex write throughput",
                     "throughput dominated by the shuffle; larger append "
                     "batches amortize better; append == createIndex",
                     options);
  if (pipelined_ab) {
    return RunPipelinedAb(options, scale, appends, shuffle_out);
  }
  Session session(options);

  const SnbConfig snb = SnbConfig::ScaleFactor(0.1 * scale, 32);
  SnbGenerator generator(snb);

  std::printf("--- appendRows: %d appends per batch size ---\n", appends);
  std::printf("%-14s %-14s %-16s %-16s %-14s\n", "rows/append", "total rows",
              "total time (s)", "rows/s", "shuffle MB");
  for (uint64_t rows_per_append :
       {uint64_t(1000 * scale), uint64_t(10000 * scale),
        uint64_t(50000 * scale)}) {
    DataFrame edges = generator.Edges(session).value();
    IndexedDataFrame current =
        IndexedDataFrame::Create(edges, "edge_source").value();
    QueryMetrics total_metrics;
    Stopwatch timer;
    for (int a = 0; a < appends; ++a) {
      DataFrame extra =
          generator.EdgeSample(session, rows_per_append, 9000 + a).value();
      QueryMetrics metrics;
      current = current.AppendRows(extra, &metrics).value();
      total_metrics.totals.MergeFrom(metrics.totals);
    }
    const double seconds = timer.ElapsedSeconds();
    const uint64_t total_rows = rows_per_append * appends;
    std::printf("%-14llu %-14llu %-16.2f %-16.0f %-14.1f\n",
                static_cast<unsigned long long>(rows_per_append),
                static_cast<unsigned long long>(total_rows), seconds,
                static_cast<double>(total_rows) / seconds,
                total_metrics.totals.shuffle_bytes_written / 1048576.0);
  }

  std::printf("--- createIndex on the same volumes (same write mechanism) ---\n");
  std::printf("%-14s %-16s %-16s\n", "rows", "time (s)", "rows/s");
  for (uint64_t rows : {uint64_t(200000 * scale), uint64_t(2000000 * scale)}) {
    SnbConfig config = snb;
    config.num_edges = rows;
    config.num_vertices = std::max<uint64_t>(1, rows / 100);
    SnbGenerator g(config);
    DataFrame edges = g.Edges(session).value();
    Stopwatch timer;
    (void)IndexedDataFrame::Create(edges, "edge_source").value();
    const double seconds = timer.ElapsedSeconds();
    std::printf("%-14llu %-16.2f %-16.0f\n",
                static_cast<unsigned long long>(rows), seconds,
                static_cast<double>(rows) / seconds);
  }
  std::printf("(per-row cost of createIndex matches bulk appendRows: same "
              "shuffle + insert path)\n");
  bench::PrintFooter();
  return 0;
}
