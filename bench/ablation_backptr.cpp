// Ablation: backward-pointer chains (the paper's design, §III-C) vs an
// external multimap from key to row-pointer vector.
//
// The chain design keeps the trie at one 64-bit word per *key* and threads
// duplicates through the rows themselves; the multimap alternative stores
// every row pointer in index-side vectors. We compare build time, index
// memory, and lookup cost at several duplication factors.
#include <cstdio>
#include <unordered_map>

#include "bench/bench_util.h"
#include "core/indexed_partition.h"
#include "workload/snb.h"

using namespace idf;

namespace {

/// The alternative index: key code -> all row pointers.
struct MultimapIndex {
  std::unordered_map<uint64_t, std::vector<PackedRowPtr>> map;

  uint64_t ApproxBytes() const {
    uint64_t bytes = map.bucket_count() * sizeof(void*) * 2;
    for (const auto& [k, v] : map) {
      bytes += sizeof(k) + sizeof(v) + v.capacity() * sizeof(PackedRowPtr);
    }
    return bytes;
  }
};

}  // namespace

int main(int argc, char** argv) {
  idf::bench::ObsGuard obs(argc, argv);
  const double scale = bench::ScaleEnv();
  SessionOptions options;
  bench::PrintHeader("Ablation", "backward-pointer chains vs multimap index",
                     "chains: ~1 word per key in the trie, duplicates ride "
                     "in the rows; multimap: pointer vectors per key",
                     options);

  const uint64_t rows = static_cast<uint64_t>(400000 * scale);
  std::printf("%-12s %-14s %-14s %-14s %-14s %-14s\n", "dup factor",
              "chain build", "mmap build", "chain idx MB", "mmap idx MB",
              "lookup ratio");
  for (uint64_t dup : {1ull, 10ull, 100ull}) {
    const uint64_t keys = rows / dup;
    SnbConfig snb;
    snb.num_edges = rows;
    snb.num_vertices = keys;
    SnbGenerator generator(snb);

    // Chain design (production path).
    Stopwatch chain_timer;
    IndexedPartition chain(SnbGenerator::EdgeSchema(), 0);
    for (uint64_t i = 0; i < rows; ++i) {
      RowVec row = generator.EdgeRow(i);
      row[0] = Value::Int64(static_cast<int64_t>(i % keys));  // exact dup
      IDF_CHECK_OK(chain.InsertRow(row));
    }
    const double chain_build = chain_timer.ElapsedSeconds();

    // Multimap design over an identical PartitionStore.
    Stopwatch mmap_timer;
    RowLayout layout(SnbGenerator::EdgeSchema());
    PartitionStore store;
    MultimapIndex mmap;
    for (uint64_t i = 0; i < rows; ++i) {
      RowVec row = generator.EdgeRow(i);
      row[0] = Value::Int64(static_cast<int64_t>(i % keys));
      PackedRowPtr p =
          store.AppendRow(layout, row, PackedRowPtr::Null()).value();
      mmap.map[IndexKeyCode(row[0])].push_back(p);
    }
    const double mmap_build = mmap_timer.ElapsedSeconds();

    // Lookup: walk every row of 10k random keys through both indexes.
    Rng rng(7);
    std::vector<uint64_t> probe_keys;
    for (int i = 0; i < 10000; ++i) probe_keys.push_back(rng.Below(keys));

    Stopwatch chain_lookup;
    uint64_t chain_rows = 0;
    for (uint64_t k : probe_keys) {
      chain.ForEachRowOfKey(IndexKeyCode(Value::Int64(static_cast<int64_t>(k))),
                            [&](const uint8_t*) { ++chain_rows; });
    }
    const double chain_lk = chain_lookup.ElapsedSeconds();

    Stopwatch mmap_lookup;
    uint64_t mmap_rows = 0;
    for (uint64_t k : probe_keys) {
      auto it = mmap.map.find(IndexKeyCode(Value::Int64(static_cast<int64_t>(k))));
      if (it == mmap.map.end()) continue;
      for (PackedRowPtr p : it->second) {
        // Touch the row (read its size header) so both designs pay the
        // same per-row memory access, not just pointer arithmetic.
        mmap_rows += (RowLayout::RowSize(store.RowAt(p)) > 0);
      }
    }
    const double mmap_lk = mmap_lookup.ElapsedSeconds();
    IDF_CHECK(chain_rows == mmap_rows);

    std::printf("%-12llu %-14.2f %-14.2f %-14.2f %-14.2f %-14.2f\n",
                static_cast<unsigned long long>(dup), chain_build, mmap_build,
                chain.IndexBytes() / 1048576.0, mmap.ApproxBytes() / 1048576.0,
                chain_lk / mmap_lk);
  }
  std::printf("(lookup ratio >1: multimap's contiguous pointer vectors walk "
              "faster than chained rows; the chain wins on index memory at "
              "high duplication and never touches the rows on insert)\n");
  bench::PrintFooter();
  return 0;
}
