// Shared scaffolding for the figure/table reproduction benches.
//
// Every bench prints (a) what the paper's figure reports, (b) the simulated
// topology used (Table I analogue), and (c) our measured rows/series.
// Scale is adjustable without recompiling:
//   IDF_BENCH_SCALE  — multiplies dataset sizes (default 1.0)
//   IDF_BENCH_REPS   — repetitions per data point (default per-bench)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

#include "common/stats.h"
#include "common/timer.h"
#include "sql/session.h"

namespace idf::bench {

inline double ScaleEnv() {
  const char* s = std::getenv("IDF_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  const double v = std::atof(s);
  return v > 0 ? v : 1.0;
}

inline int RepsEnv(int fallback) {
  const char* s = std::getenv("IDF_BENCH_REPS");
  if (s == nullptr) return fallback;
  const int v = std::atoi(s);
  return v > 0 ? v : fallback;
}

/// Table I "Private Cluster": dual-socket 16-core nodes, FDR InfiniBand.
inline SessionOptions PrivateCluster(uint32_t workers = 8) {
  SessionOptions options;
  options.cluster.num_workers = workers;
  // §IV-B best configuration: 4 executors per machine, 4 cores each,
  // two per NUMA domain, pinned.
  options.cluster.executors_per_worker = 4;
  options.cluster.cores_per_executor = 4;
  options.cluster.cores_per_worker = 16;
  options.cluster.sockets_per_worker = 2;
  options.cluster.numa_pinned = true;
  options.cluster.network.bandwidth_bytes_per_s = 7.0e9;  // FDR IB ~56 Gbps
  options.cluster.network.latency_s = 2e-6;
  options.default_partitions = 32;
  return options;
}

/// Table I "Amazon EC2": i3.xlarge (4 cores) or i3.8xlarge (16), 10 Gbps.
inline SessionOptions Ec2Cluster(uint32_t workers = 4, bool big = false) {
  SessionOptions options;
  options.cluster.num_workers = workers;
  options.cluster.executors_per_worker = 1;
  options.cluster.cores_per_executor = big ? 16 : 4;
  options.cluster.cores_per_worker = big ? 16 : 4;
  options.cluster.sockets_per_worker = big ? 2 : 1;
  options.cluster.numa_pinned = false;
  options.cluster.network.bandwidth_bytes_per_s = 1.25e9;  // 10 Gbps
  options.cluster.network.latency_s = 1e-4;
  options.default_partitions = workers * (big ? 16u : 4u);
  return options;
}

inline void PrintHeader(const std::string& figure, const std::string& title,
                        const std::string& paper_expectation,
                        const SessionOptions& options) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), title.c_str());
  std::printf("paper expectation: %s\n", paper_expectation.c_str());
  std::printf("simulated topology: %s\n", options.cluster.ToString().c_str());
  std::printf("bench scale: %.2fx\n", ScaleEnv());
  std::printf("--------------------------------------------------------------\n");
}

inline void PrintFooter() {
  std::printf("==============================================================\n\n");
}

/// Runs `fn` `reps` times; returns per-run seconds.
inline Sample TimeRepeated(int reps, const std::function<void()>& fn) {
  Sample sample;
  for (int r = 0; r < reps; ++r) {
    Stopwatch timer;
    fn();
    sample.Add(timer.ElapsedSeconds());
  }
  return sample;
}

/// Collected timings of a query under both clocks.
struct QueryTiming {
  Sample real;       // host CPU seconds
  Sample simulated;  // DES cluster seconds
};

/// Runs a DataFrame query `reps` times, recording both clocks.
inline QueryTiming TimeQuery(int reps,
                             const std::function<QueryMetrics()>& run) {
  QueryTiming timing;
  for (int r = 0; r < reps; ++r) {
    Stopwatch timer;
    QueryMetrics metrics = run();
    timing.real.Add(timer.ElapsedSeconds());
    timing.simulated.Add(metrics.simulated_seconds);
  }
  return timing;
}

}  // namespace idf::bench
