// Shared scaffolding for the figure/table reproduction benches.
//
// Every bench prints (a) what the paper's figure reports, (b) the simulated
// topology used (Table I analogue), and (c) our measured rows/series.
// Scale is adjustable without recompiling:
//   IDF_BENCH_SCALE  — multiplies dataset sizes (default 1.0)
//   IDF_BENCH_REPS   — repetitions per data point (default per-bench)
//
// Observability (see docs/OBSERVABILITY.md):
//   --metrics-out=<file>.json  (or IDF_METRICS_OUT=<file>)
//       dump the global metrics registry as JSON on exit
//   --trace-out=<file>.json    (or IDF_TRACE_OUT=<file>)
//       enable span tracing and write a Chrome trace_event file on exit
//   --events-out=<file>.jsonl  (or IDF_EVENTS_OUT=<file>)
//       dump the flight-recorder journal (decode with tools/idf_events.py)
//   --hold-seconds=<n>         (or IDF_HOLD_SECONDS=<n>)
//       sleep n seconds before exporting/exiting, so an external scraper
//       (curl against IDF_OBS_PORT) can observe the finished run
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>

#include "common/stats.h"
#include "common/timer.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "sql/session.h"

namespace idf::bench {

/// Declared at the top of a bench's main(): parses --metrics-out= /
/// --trace-out= (and the matching env vars), enables tracing when a trace
/// sink is requested, and exports both files from its destructor — after
/// the bench body has run.
class ObsGuard {
 public:
  ObsGuard(int argc, char** argv) {
    if (const char* env = std::getenv("IDF_METRICS_OUT")) metrics_path_ = env;
    if (const char* env = std::getenv("IDF_TRACE_OUT")) trace_path_ = env;
    if (const char* env = std::getenv("IDF_EVENTS_OUT")) events_path_ = env;
    if (const char* env = std::getenv("IDF_HOLD_SECONDS")) {
      hold_seconds_ = std::atoi(env);
    }
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
        metrics_path_ = arg + 14;
      } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
        trace_path_ = arg + 12;
      } else if (std::strncmp(arg, "--events-out=", 13) == 0) {
        events_path_ = arg + 13;
      } else if (std::strncmp(arg, "--hold-seconds=", 15) == 0) {
        hold_seconds_ = std::atoi(arg + 15);
      }
    }
    if (!trace_path_.empty()) obs::Tracer::Global().SetEnabled(true);
  }

  ~ObsGuard() {
    if (hold_seconds_ > 0) {
      std::printf("holding %d s for external scrapers (/metrics /events)...\n",
                  hold_seconds_);
      std::fflush(stdout);
      std::this_thread::sleep_for(std::chrono::seconds(hold_seconds_));
    }
    if (!events_path_.empty()) {
      const Status s =
          obs::FlightRecorder::Global().DumpJsonl(events_path_);
      if (s.ok()) {
        std::printf("flight-recorder journal written to %s "
                    "(decode with tools/idf_events.py)\n",
                    events_path_.c_str());
      } else {
        std::fprintf(stderr, "events export failed: %s\n",
                     s.message().c_str());
      }
    }
    if (!metrics_path_.empty()) {
      const Status s = obs::Registry::Global().WriteJson(metrics_path_);
      if (s.ok()) {
        std::printf("metrics registry written to %s\n", metrics_path_.c_str());
      } else {
        std::fprintf(stderr, "metrics export failed: %s\n",
                     s.message().c_str());
      }
    }
    if (!trace_path_.empty()) {
      const Status s = obs::Tracer::Global().WriteChromeJson(trace_path_);
      if (s.ok()) {
        std::printf("chrome trace written to %s (load in ui.perfetto.dev)\n",
                    trace_path_.c_str());
      } else {
        std::fprintf(stderr, "trace export failed: %s\n", s.message().c_str());
      }
    }
  }

  ObsGuard(const ObsGuard&) = delete;
  ObsGuard& operator=(const ObsGuard&) = delete;

 private:
  std::string metrics_path_;
  std::string trace_path_;
  std::string events_path_;
  int hold_seconds_ = 0;
};

inline double ScaleEnv() {
  const char* s = std::getenv("IDF_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  const double v = std::atof(s);
  return v > 0 ? v : 1.0;
}

inline int RepsEnv(int fallback) {
  const char* s = std::getenv("IDF_BENCH_REPS");
  if (s == nullptr) return fallback;
  const int v = std::atoi(s);
  return v > 0 ? v : fallback;
}

/// Table I "Private Cluster": dual-socket 16-core nodes, FDR InfiniBand.
inline SessionOptions PrivateCluster(uint32_t workers = 8) {
  SessionOptions options;
  options.cluster.num_workers = workers;
  // §IV-B best configuration: 4 executors per machine, 4 cores each,
  // two per NUMA domain, pinned.
  options.cluster.executors_per_worker = 4;
  options.cluster.cores_per_executor = 4;
  options.cluster.cores_per_worker = 16;
  options.cluster.sockets_per_worker = 2;
  options.cluster.numa_pinned = true;
  options.cluster.network.bandwidth_bytes_per_s = 7.0e9;  // FDR IB ~56 Gbps
  options.cluster.network.latency_s = 2e-6;
  options.default_partitions = 32;
  return options;
}

/// Table I "Amazon EC2": i3.xlarge (4 cores) or i3.8xlarge (16), 10 Gbps.
inline SessionOptions Ec2Cluster(uint32_t workers = 4, bool big = false) {
  SessionOptions options;
  options.cluster.num_workers = workers;
  options.cluster.executors_per_worker = 1;
  options.cluster.cores_per_executor = big ? 16 : 4;
  options.cluster.cores_per_worker = big ? 16 : 4;
  options.cluster.sockets_per_worker = big ? 2 : 1;
  options.cluster.numa_pinned = false;
  options.cluster.network.bandwidth_bytes_per_s = 1.25e9;  // 10 Gbps
  options.cluster.network.latency_s = 1e-4;
  options.default_partitions = workers * (big ? 16u : 4u);
  return options;
}

inline void PrintHeader(const std::string& figure, const std::string& title,
                        const std::string& paper_expectation,
                        const SessionOptions& options) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), title.c_str());
  std::printf("paper expectation: %s\n", paper_expectation.c_str());
  std::printf("simulated topology: %s\n", options.cluster.ToString().c_str());
  std::printf("bench scale: %.2fx\n", ScaleEnv());
  std::printf("--------------------------------------------------------------\n");
}

inline void PrintFooter() {
  std::printf("==============================================================\n\n");
}

/// Runs `fn` `reps` times; returns per-run seconds.
inline Sample TimeRepeated(int reps, const std::function<void()>& fn) {
  Sample sample;
  for (int r = 0; r < reps; ++r) {
    Stopwatch timer;
    fn();
    sample.Add(timer.ElapsedSeconds());
  }
  return sample;
}

/// Collected timings of a query under both clocks.
struct QueryTiming {
  Sample real;       // host CPU seconds
  Sample simulated;  // DES cluster seconds
};

/// Runs a DataFrame query `reps` times, recording both clocks.
inline QueryTiming TimeQuery(int reps,
                             const std::function<QueryMetrics()>& run) {
  QueryTiming timing;
  for (int r = 0; r < reps; ++r) {
    Stopwatch timer;
    QueryMetrics metrics = run();
    timing.real.Add(timer.ElapsedSeconds());
    timing.simulated.Add(metrics.simulated_seconds);
  }
  return timing;
}

}  // namespace idf::bench
