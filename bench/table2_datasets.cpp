// Table II reproduction: the datasets and queries used in the evaluation,
// with this reproduction's instantiation of each (generator, scale, key).
#include <cstdio>

#include "bench/bench_util.h"
#include "workload/broconn.h"
#include "workload/flights.h"
#include "workload/snb.h"
#include "workload/tpcds.h"

using namespace idf;

int main(int argc, char** argv) {
  idf::bench::ObsGuard obs(argc, argv);
  const double scale = bench::ScaleEnv();
  std::printf("Table II — datasets and queries (paper -> this reproduction)\n");
  std::printf("%-16s %-18s %-34s %-12s %s\n", "Dataset", "Experiment",
              "Query", "IndexColumn", "Our instantiation");
  std::printf("---------------------------------------------------------------"
              "-----------------------------------------\n");

  const SnbConfig snb1000 = SnbConfig::ScaleFactor(4.0 * scale);
  std::printf("%-16s %-18s %-34s %-12s %llu edges, %llu vertices\n",
              "SNB (SF-1000)", "IV-B,IV-C,IV-D",
              "join edges w/ vertices ON source", "integer",
              static_cast<unsigned long long>(snb1000.num_edges),
              static_cast<unsigned long long>(snb1000.num_vertices));

  const SnbConfig snb300 = SnbConfig::ScaleFactor(1.2 * scale);
  std::printf("%-16s %-18s %-34s %-12s %llu edges, %llu vertices\n",
              "SNB (SF-300)", "IV-E", "SQ1-SQ7 (short reads)", "various",
              static_cast<unsigned long long>(snb300.num_edges),
              static_cast<unsigned long long>(snb300.num_vertices));

  FlightsConfig flights;
  flights.num_flights = static_cast<uint64_t>(1000000 * scale);
  std::printf("%-16s %-18s %-34s %-12s %llu flights, %llu planes\n",
              "US Flights", "IV-E", "Q1 join flights x planes ON tailNum",
              "string",
              static_cast<unsigned long long>(flights.num_flights),
              static_cast<unsigned long long>(flights.num_planes));
  std::printf("%-16s %-18s %-34s %-12s planted keys: 10/100/1000 matches\n",
              "", "IV-E", "Q2 tailNum=x; Q3/Q4 self-join;", "int+string");
  std::printf("%-16s %-18s %-34s %-12s (see fig15_flights)\n", "", "IV-E",
              "Q5-Q7 point queries", "integer");

  for (double sf : {1.0, 10.0, 100.0, 1000.0}) {
    TpcdsConfig tpcds;
    tpcds.scale_factor = sf;
    tpcds.sales_rows_per_sf = static_cast<uint64_t>(1500 * scale);
    std::printf("%-16s %-18s %-34s %-12s %llu sales rows, %llu dates\n",
                ("TPC-DS SF-" + std::to_string(static_cast<int>(sf))).c_str(),
                "IV-E", "store_sales JOIN date_dim", "integer",
                static_cast<unsigned long long>(tpcds.sales_rows()),
                static_cast<unsigned long long>(tpcds.date_rows));
  }

  BroconnConfig broconn;
  broconn.num_connections = static_cast<uint64_t>(1000000 * scale);
  std::printf("%-16s %-18s %-34s %-12s %llu connections, %llu hosts\n",
              "Broconn (7GB)", "II (Fig.1)", "5x self-join with sample",
              "integer",
              static_cast<unsigned long long>(broconn.num_connections),
              static_cast<unsigned long long>(broconn.num_hosts));
  return 0;
}
