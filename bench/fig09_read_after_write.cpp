// Fig. 9 reproduction: read-latency increase when interleaving appends.
//
// Paper: 200 S-joins with an append every 5 queries; "writes of at most 100K
// rows slow down reads by a factor of 3X, but larger writes double the
// latency to a factor of 6X" — still well under vanilla Spark's per-query
// cost (Fig. 7), which tolerates no appends at all.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/bench_util.h"
#include "core/indexed_dataframe.h"
#include "workload/snb.h"

using namespace idf;

namespace {

/// Mean read (join) latency across `queries` S-joins with an append of
/// `append_rows` rows every 5 queries (0 = no appends, the baseline).
double MeanReadLatency(Session& session, const SnbGenerator& generator,
                       const SnbConfig& snb, uint64_t append_rows,
                       int queries) {
  DataFrame edges = generator.Edges(session).value();
  IndexedDataFrame current =
      IndexedDataFrame::Create(edges, "edge_source").value();
  DataFrame probe = generator
                        .EdgeSample(session,
                                    std::max<uint64_t>(4, snb.num_edges / 100000),
                                    /*seed=*/11)
                        .value();
  Sample reads;
  for (int q = 0; q < queries; ++q) {
    if (append_rows > 0 && q % 5 == 4) {
      DataFrame extra =
          generator.EdgeSample(session, append_rows, 500 + q).value();
      current = current.AppendRows(extra).value();
    }
    Stopwatch timer;
    (void)current.Join(probe, "edge_source").Count().value();
    reads.Add(timer.ElapsedSeconds());
  }
  return reads.Mean();
}

}  // namespace

int main(int argc, char** argv) {
  idf::bench::ObsGuard obs(argc, argv);
  bool pipelined_ab = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--pipelined") == 0) pipelined_ab = true;
  }
  const double scale = bench::ScaleEnv();
  const int queries = bench::RepsEnv(0) > 0 ? bench::RepsEnv(0) : 100;
  SessionOptions options = bench::PrivateCluster();
  bench::PrintHeader("Fig. 9", "read latency under interleaved appends",
                     "appends <=100K rows: ~3x read slowdown; 1M-row "
                     "appends: ~6x — all cheaper than vanilla joins",
                     options);
  if (pipelined_ab) {
    // A/B the streaming shuffle on the interleaved read/append mix: appends
    // take the fused pipeline, reads measure whether overlap disturbs (or
    // helps) the read path. Same generator seeds both runs.
    if (options.cluster.scheduler_threads == 0) {
      options.cluster.scheduler_threads = 8;
    }
    const SnbConfig snb = SnbConfig::ScaleFactor(0.2 * scale, 32);
    const uint64_t append_rows = std::max<uint64_t>(100, snb.num_edges / 100);
    std::printf("--- streaming shuffle A/B: mean S-join latency with an "
                "append every 5 queries ---\n");
    double latency[2];
    for (int mode = 0; mode < 2; ++mode) {
      ::setenv("IDF_SHUFFLE_PIPELINE", mode == 0 ? "0" : "1", 1);
      Session session(options);
      SnbGenerator generator(snb);
      latency[mode] =
          MeanReadLatency(session, generator, snb, append_rows, queries);
    }
    ::unsetenv("IDF_SHUFFLE_PIPELINE");
    std::printf("%-12s %-20s\n", "transport", "mean read (ms)");
    std::printf("%-12s %-20.2f\n", "barrier", latency[0] * 1e3);
    std::printf("%-12s %-20.2f\n", "pipelined", latency[1] * 1e3);
    std::printf("read-latency ratio pipelined/barrier: %.2f\n",
                latency[1] / latency[0]);
    bench::PrintFooter();
    return 0;
  }
  Session session(options);

  const SnbConfig snb = SnbConfig::ScaleFactor(1.0 * scale, 32);
  SnbGenerator generator(snb);

  const double baseline =
      MeanReadLatency(session, generator, snb, 0, queries);
  std::printf("baseline (no appends): mean S-join latency %.2f ms\n",
              baseline * 1e3);

  std::printf("%-16s %-20s %-14s %s\n", "append rows", "mean read (ms)",
              "slowdown", "paper");
  struct Point {
    uint64_t rows;
    const char* paper;
  };
  // Paper sweeps 100 .. 1M appended rows; we keep the same 4-decade sweep
  // relative to our build size (paper: 1e-7..1e-3 of 1B; ours: of ~1M).
  const Point points[] = {
      {snb.num_edges / 10000, "~3x (small writes)"},
      {snb.num_edges / 1000, "~3x"},
      {snb.num_edges / 100, "~3x (100K rows)"},
      {snb.num_edges / 10, "~6x (large writes)"},
  };
  for (const Point& point : points) {
    const double mean =
        MeanReadLatency(session, generator, snb, point.rows, queries);
    std::printf("%-16llu %-20.2f %-14.2f %s\n",
                static_cast<unsigned long long>(point.rows), mean * 1e3,
                mean / baseline, point.paper);
  }
  bench::PrintFooter();
  return 0;
}
