// Expression trees for filters, projections, and join conditions.
//
// SQL three-valued logic: comparisons involving NULL yield NULL; a filter
// keeps a row only when its predicate evaluates to TRUE. Expressions resolve
// column names against a schema once, then evaluate against row accessors
// (columnar rows, binary rows, or joined row pairs).
//
// The optimizer inspects expression shapes — in particular
// `column == literal` (MatchColumnEqualsLiteral), the pattern the indexed
// lookup rule rewrites into a cTrie probe (§III-B).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/schema.h"
#include "types/value.h"

namespace idf {

/// Row abstraction expressions evaluate against.
class RowAccessor {
 public:
  virtual ~RowAccessor() = default;
  virtual Value Get(size_t col) const = 0;
};

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd, kSub, kMul, kDiv };

class Expr {
 public:
  enum class Kind {
    kColumn,
    kLiteral,
    kCompare,
    kAnd,
    kOr,
    kNot,
    kIsNull,
    kArith,
  };

  virtual ~Expr() = default;
  Kind kind() const { return kind_; }

  /// Binds column references to indices in `schema`. Must be called (on a
  /// fresh Resolve'd copy) before Eval. Returns the resolved expression.
  virtual Result<ExprPtr> Resolve(const Schema& schema) const = 0;

  /// Evaluates against a resolved row. Null propagation per SQL semantics.
  virtual Value Eval(const RowAccessor& row) const = 0;

  virtual std::string ToString() const = 0;

  /// All column names referenced by this expression (pre-resolution).
  virtual void CollectColumns(std::vector<std::string>& out) const = 0;

 protected:
  explicit Expr(Kind kind) : kind_(kind) {}

 private:
  Kind kind_;
};

// ---- node types (exposed so rules can pattern-match) ------------------------

class ColumnExpr final : public Expr {
 public:
  explicit ColumnExpr(std::string name, int index = -1)
      : Expr(Kind::kColumn), name_(std::move(name)), index_(index) {}

  const std::string& name() const { return name_; }
  int index() const { return index_; }
  bool resolved() const { return index_ >= 0; }

  Result<ExprPtr> Resolve(const Schema& schema) const override;
  Value Eval(const RowAccessor& row) const override;
  std::string ToString() const override { return name_; }
  void CollectColumns(std::vector<std::string>& out) const override {
    out.push_back(name_);
  }

 private:
  std::string name_;
  int index_;
};

class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value value)
      : Expr(Kind::kLiteral), value_(std::move(value)) {}

  const Value& value() const { return value_; }

  Result<ExprPtr> Resolve(const Schema&) const override;
  Value Eval(const RowAccessor&) const override { return value_; }
  std::string ToString() const override { return value_.ToString(); }
  void CollectColumns(std::vector<std::string>&) const override {}

 private:
  Value value_;
};

class CompareExpr final : public Expr {
 public:
  CompareExpr(CompareOp op, ExprPtr left, ExprPtr right)
      : Expr(Kind::kCompare),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}

  CompareOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

  Result<ExprPtr> Resolve(const Schema& schema) const override;
  Value Eval(const RowAccessor& row) const override;
  std::string ToString() const override;
  void CollectColumns(std::vector<std::string>& out) const override {
    left_->CollectColumns(out);
    right_->CollectColumns(out);
  }

 private:
  CompareOp op_;
  ExprPtr left_, right_;
};

class LogicalExpr final : public Expr {
 public:
  LogicalExpr(Kind kind, ExprPtr left, ExprPtr right)
      : Expr(kind), left_(std::move(left)), right_(std::move(right)) {
    IDF_CHECK(kind == Kind::kAnd || kind == Kind::kOr);
  }

  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

  Result<ExprPtr> Resolve(const Schema& schema) const override;
  Value Eval(const RowAccessor& row) const override;
  std::string ToString() const override;
  void CollectColumns(std::vector<std::string>& out) const override {
    left_->CollectColumns(out);
    right_->CollectColumns(out);
  }

 private:
  ExprPtr left_, right_;
};

class NotExpr final : public Expr {
 public:
  explicit NotExpr(ExprPtr child)
      : Expr(Kind::kNot), child_(std::move(child)) {}

  const ExprPtr& child() const { return child_; }

  Result<ExprPtr> Resolve(const Schema& schema) const override;
  Value Eval(const RowAccessor& row) const override;
  std::string ToString() const override {
    return "NOT (" + child_->ToString() + ")";
  }
  void CollectColumns(std::vector<std::string>& out) const override {
    child_->CollectColumns(out);
  }

 private:
  ExprPtr child_;
};

class IsNullExpr final : public Expr {
 public:
  explicit IsNullExpr(ExprPtr child, bool negated = false)
      : Expr(Kind::kIsNull), child_(std::move(child)), negated_(negated) {}

  const ExprPtr& child() const { return child_; }
  bool negated() const { return negated_; }

  Result<ExprPtr> Resolve(const Schema& schema) const override;
  Value Eval(const RowAccessor& row) const override;
  std::string ToString() const override {
    return "(" + child_->ToString() + (negated_ ? ") IS NOT NULL" : ") IS NULL");
  }
  void CollectColumns(std::vector<std::string>& out) const override {
    child_->CollectColumns(out);
  }

 private:
  ExprPtr child_;
  bool negated_;
};

class ArithExpr final : public Expr {
 public:
  ArithExpr(ArithOp op, ExprPtr left, ExprPtr right)
      : Expr(Kind::kArith),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}

  ArithOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

  Result<ExprPtr> Resolve(const Schema& schema) const override;
  Value Eval(const RowAccessor& row) const override;
  std::string ToString() const override;
  void CollectColumns(std::vector<std::string>& out) const override {
    left_->CollectColumns(out);
    right_->CollectColumns(out);
  }

 private:
  ArithOp op_;
  ExprPtr left_, right_;
};

// ---- builders ------------------------------------------------------------

ExprPtr Col(std::string name);
ExprPtr Lit(Value v);
inline ExprPtr Lit(int64_t v) { return Lit(Value::Int64(v)); }
inline ExprPtr Lit(int32_t v) { return Lit(Value::Int32(v)); }
inline ExprPtr Lit(double v) { return Lit(Value::Float64(v)); }
inline ExprPtr Lit(const char* v) { return Lit(Value::String(v)); }
inline ExprPtr Lit(bool v) { return Lit(Value::Bool(v)); }

ExprPtr Eq(ExprPtr a, ExprPtr b);
ExprPtr Ne(ExprPtr a, ExprPtr b);
ExprPtr Lt(ExprPtr a, ExprPtr b);
ExprPtr Le(ExprPtr a, ExprPtr b);
ExprPtr Gt(ExprPtr a, ExprPtr b);
ExprPtr Ge(ExprPtr a, ExprPtr b);
ExprPtr And(ExprPtr a, ExprPtr b);
ExprPtr Or(ExprPtr a, ExprPtr b);
ExprPtr Not(ExprPtr a);
ExprPtr IsNull(ExprPtr a);
ExprPtr IsNotNull(ExprPtr a);
ExprPtr Add(ExprPtr a, ExprPtr b);
ExprPtr Sub(ExprPtr a, ExprPtr b);
ExprPtr Mul(ExprPtr a, ExprPtr b);
ExprPtr Div(ExprPtr a, ExprPtr b);

// ---- pattern helpers for optimizer rules -----------------------------------

/// If `expr` is `column == literal` (either operand order), returns the
/// column name and literal. This is the shape the IndexLookupRule rewrites
/// into a cTrie point lookup.
struct ColumnEqualsLiteral {
  std::string column;
  Value literal;
};
std::optional<ColumnEqualsLiteral> MatchColumnEqualsLiteral(const Expr& expr);

/// True if the expression contains only literals (constant-foldable).
bool IsConstant(const Expr& expr);

// ---- accessors over concrete row representations ----------------------------

class ColumnarChunk;  // sql/columnar.h

class ChunkRowAccessor final : public RowAccessor {
 public:
  ChunkRowAccessor(const ColumnarChunk& chunk, size_t row)
      : chunk_(chunk), row_(row) {}
  void set_row(size_t row) { row_ = row; }
  Value Get(size_t col) const override;

 private:
  const ColumnarChunk& chunk_;
  size_t row_;
};

class RowLayout;  // storage/row_layout.h

/// Accessor over a binary row in a row batch (the Indexed DataFrame's
/// storage). Used by the fallback path when non-indexed operators run on
/// indexed data.
class BinaryRowAccessor final : public RowAccessor {
 public:
  BinaryRowAccessor(const RowLayout& layout, const uint8_t* row)
      : layout_(layout), row_(row) {}
  void set_row(const uint8_t* row) { row_ = row; }
  Value Get(size_t col) const override;

 private:
  const RowLayout& layout_;
  const uint8_t* row_;
};

}  // namespace idf
