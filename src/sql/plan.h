// Logical query plans — the abstract representations Catalyst-style rules
// rewrite before physical planning (§III-B: "queries have abstract
// representations called query plans ... optimization rules transform the
// logical plan into a physical plan").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/expr.h"
#include "sql/table.h"
#include "types/schema.h"

namespace idf {

class LogicalPlan;
using PlanPtr = std::shared_ptr<const LogicalPlan>;

/// Aggregate function specification for Aggregate nodes.
struct AggSpec {
  enum class Fn { kCount, kSum, kMin, kMax, kAvg };
  Fn fn = Fn::kCount;
  std::string column;       // input column (ignored for kCount)
  std::string output_name;  // result column name

  static AggSpec Count(std::string out = "count") {
    return {Fn::kCount, "", std::move(out)};
  }
  static AggSpec Sum(std::string col, std::string out = "") {
    return {Fn::kSum, col, out.empty() ? "sum_" + col : std::move(out)};
  }
  static AggSpec Min(std::string col, std::string out = "") {
    return {Fn::kMin, col, out.empty() ? "min_" + col : std::move(out)};
  }
  static AggSpec Max(std::string col, std::string out = "") {
    return {Fn::kMax, col, out.empty() ? "max_" + col : std::move(out)};
  }
  static AggSpec Avg(std::string col, std::string out = "") {
    return {Fn::kAvg, col, out.empty() ? "avg_" + col : std::move(out)};
  }
};

enum class JoinType { kInner, kLeftOuter };

/// One ORDER BY key.
struct SortKey {
  std::string column;
  bool descending = false;
};

class LogicalPlan {
 public:
  enum class Kind {
    kScan,
    kFilter,
    kProject,
    kJoin,
    kAggregate,
    kSort,
    kLimit,
    kUnion,
  };

  virtual ~LogicalPlan() = default;
  Kind kind() const { return kind_; }

  const std::vector<PlanPtr>& children() const { return children_; }

  /// Output schema of this node (resolved against children).
  virtual Result<Schema> OutputSchema() const = 0;

  /// Single-line description; Explain() renders the whole tree.
  virtual std::string Describe() const = 0;
  std::string Explain(int indent = 0) const;

 protected:
  LogicalPlan(Kind kind, std::vector<PlanPtr> children)
      : kind_(kind), children_(std::move(children)) {}

 private:
  Kind kind_;
  std::vector<PlanPtr> children_;
};

class ScanNode final : public LogicalPlan {
 public:
  explicit ScanNode(DatasetPtr dataset)
      : LogicalPlan(Kind::kScan, {}), dataset_(std::move(dataset)) {
    IDF_CHECK(dataset_ != nullptr);
  }

  const DatasetPtr& dataset() const { return dataset_; }

  Result<Schema> OutputSchema() const override { return *dataset_->schema(); }
  std::string Describe() const override {
    std::string s = "Scan " + dataset_->name();
    if (dataset_->indexed_column() >= 0) {
      s += " [indexed on " +
           dataset_->schema()->field(
               static_cast<size_t>(dataset_->indexed_column())).name + "]";
    }
    return s;
  }

 private:
  DatasetPtr dataset_;
};

class FilterNode final : public LogicalPlan {
 public:
  FilterNode(PlanPtr child, ExprPtr predicate)
      : LogicalPlan(Kind::kFilter, {std::move(child)}),
        predicate_(std::move(predicate)) {}

  const PlanPtr& child() const { return children()[0]; }
  const ExprPtr& predicate() const { return predicate_; }

  Result<Schema> OutputSchema() const override {
    return child()->OutputSchema();
  }
  std::string Describe() const override {
    return "Filter " + predicate_->ToString();
  }

 private:
  ExprPtr predicate_;
};

class ProjectNode final : public LogicalPlan {
 public:
  ProjectNode(PlanPtr child, std::vector<std::string> columns)
      : LogicalPlan(Kind::kProject, {std::move(child)}),
        columns_(std::move(columns)) {}

  const PlanPtr& child() const { return children()[0]; }
  const std::vector<std::string>& columns() const { return columns_; }

  Result<Schema> OutputSchema() const override {
    IDF_ASSIGN_OR_RETURN(Schema in, child()->OutputSchema());
    return in.Project(columns_);
  }
  std::string Describe() const override {
    std::string s = "Project [";
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (i) s += ", ";
      s += columns_[i];
    }
    return s + "]";
  }

 private:
  std::vector<std::string> columns_;
};

/// Equi-join on one key per side (the paper's join shape everywhere).
/// Inner by default; LEFT OUTER keeps unmatched left rows with null-padded
/// right columns.
class JoinNode final : public LogicalPlan {
 public:
  JoinNode(PlanPtr left, PlanPtr right, std::string left_key,
           std::string right_key, JoinType join_type = JoinType::kInner)
      : LogicalPlan(Kind::kJoin, {std::move(left), std::move(right)}),
        left_key_(std::move(left_key)),
        right_key_(std::move(right_key)),
        join_type_(join_type) {}

  const PlanPtr& left() const { return children()[0]; }
  const PlanPtr& right() const { return children()[1]; }
  const std::string& left_key() const { return left_key_; }
  const std::string& right_key() const { return right_key_; }
  JoinType join_type() const { return join_type_; }

  Result<Schema> OutputSchema() const override {
    IDF_ASSIGN_OR_RETURN(Schema l, left()->OutputSchema());
    IDF_ASSIGN_OR_RETURN(Schema r, right()->OutputSchema());
    IDF_RETURN_IF_ERROR(l.FieldIndex(left_key_).status());
    IDF_RETURN_IF_ERROR(r.FieldIndex(right_key_).status());
    Schema joined = l.ConcatForJoin(r);
    if (join_type_ == JoinType::kLeftOuter) {
      // Right-side columns may be null-padded.
      std::vector<Field> fields = joined.fields();
      for (size_t i = l.num_fields(); i < fields.size(); ++i) {
        fields[i].nullable = true;
      }
      return Schema(std::move(fields));
    }
    return joined;
  }
  std::string Describe() const override {
    return std::string(join_type_ == JoinType::kLeftOuter ? "LeftOuterJoin "
                                                          : "Join ") +
           left_key_ + " = " + right_key_;
  }

 private:
  std::string left_key_, right_key_;
  JoinType join_type_;
};

/// UNION ALL: concatenation of two relations with identical schemas
/// (duplicates kept; compose with Distinct() for set union).
class UnionNode final : public LogicalPlan {
 public:
  UnionNode(PlanPtr left, PlanPtr right)
      : LogicalPlan(Kind::kUnion, {std::move(left), std::move(right)}) {}

  const PlanPtr& left() const { return children()[0]; }
  const PlanPtr& right() const { return children()[1]; }

  Result<Schema> OutputSchema() const override {
    IDF_ASSIGN_OR_RETURN(Schema l, left()->OutputSchema());
    IDF_ASSIGN_OR_RETURN(Schema r, right()->OutputSchema());
    if (l != r) {
      return Status::InvalidArgument("UNION sides have different schemas: " +
                                     l.ToString() + " vs " + r.ToString());
    }
    return l;
  }
  std::string Describe() const override { return "UnionAll"; }
};

/// Global sort (ORDER BY). Materialized as a single sorted partition, like
/// a collect-and-sort in the driver.
class SortNode final : public LogicalPlan {
 public:
  SortNode(PlanPtr child, std::vector<SortKey> keys)
      : LogicalPlan(Kind::kSort, {std::move(child)}), keys_(std::move(keys)) {
    IDF_CHECK_MSG(!keys_.empty(), "ORDER BY needs at least one key");
  }

  const PlanPtr& child() const { return children()[0]; }
  const std::vector<SortKey>& keys() const { return keys_; }

  Result<Schema> OutputSchema() const override {
    IDF_ASSIGN_OR_RETURN(Schema in, child()->OutputSchema());
    for (const SortKey& key : keys_) {
      IDF_RETURN_IF_ERROR(in.FieldIndex(key.column).status());
    }
    return in;
  }
  std::string Describe() const override {
    std::string s = "Sort [";
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (i) s += ", ";
      s += keys_[i].column;
      if (keys_[i].descending) s += " DESC";
    }
    return s + "]";
  }

 private:
  std::vector<SortKey> keys_;
};

class AggregateNode final : public LogicalPlan {
 public:
  AggregateNode(PlanPtr child, std::vector<std::string> group_by,
                std::vector<AggSpec> aggs)
      : LogicalPlan(Kind::kAggregate, {std::move(child)}),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)) {
    IDF_CHECK_MSG(!aggs_.empty(), "aggregate without functions");
  }

  const PlanPtr& child() const { return children()[0]; }
  const std::vector<std::string>& group_by() const { return group_by_; }
  const std::vector<AggSpec>& aggs() const { return aggs_; }

  Result<Schema> OutputSchema() const override;
  std::string Describe() const override;

 private:
  std::vector<std::string> group_by_;
  std::vector<AggSpec> aggs_;
};

class LimitNode final : public LogicalPlan {
 public:
  LimitNode(PlanPtr child, uint64_t limit)
      : LogicalPlan(Kind::kLimit, {std::move(child)}), limit_(limit) {}

  const PlanPtr& child() const { return children()[0]; }
  uint64_t limit() const { return limit_; }

  Result<Schema> OutputSchema() const override {
    return child()->OutputSchema();
  }
  std::string Describe() const override {
    return "Limit " + std::to_string(limit_);
  }

 private:
  uint64_t limit_;
};

}  // namespace idf
