#include "sql/columnar.h"

#include <fstream>
#include <istream>
#include <ostream>

namespace idf {

namespace {

template <typename T>
void WriteVec(std::ostream& out, const std::vector<T>& v) {
  const uint64_t n = v.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  if (n > 0) {
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(n * sizeof(T)));
  }
}

template <typename T>
bool ReadVec(std::istream& in, std::vector<T>* v) {
  uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in) return false;
  v->resize(n);
  if (n > 0) {
    in.read(reinterpret_cast<char*>(v->data()),
            static_cast<std::streamsize>(n * sizeof(T)));
  }
  return static_cast<bool>(in);
}

}  // namespace

ColumnVector::ColumnVector(TypeId type) : type_(type) {
  switch (type) {
    case TypeId::kBool: data_ = BoolData{}; break;
    case TypeId::kInt32: data_ = Int32Data{}; break;
    case TypeId::kInt64: data_ = Int64Data{}; break;
    case TypeId::kFloat64: data_ = Float64Data{}; break;
    case TypeId::kString: data_ = StringData{}; break;
  }
}

void ColumnVector::MarkNull(size_t i) {
  if (nulls_.size() * 8 <= i) nulls_.resize(i / 8 + 1, 0);
  nulls_[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
}

void ColumnVector::AppendNull() {
  MarkNull(size_);
  switch (type_) {
    case TypeId::kBool: AppendBoolSlot(); break;
    case TypeId::kInt32: Data<Int32Data>().values.push_back(0); break;
    case TypeId::kInt64: Data<Int64Data>().values.push_back(0); break;
    case TypeId::kFloat64: Data<Float64Data>().values.push_back(0); break;
    case TypeId::kString: Data<StringData>().offsets.push_back(
        Data<StringData>().offsets.back());
      break;
  }
  ++size_;
}

// Helper kept out-of-line to keep AppendNull readable.
void ColumnVector::AppendBoolSlot() { Data<BoolData>().values.push_back(0); }

void ColumnVector::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  IDF_CHECK_MSG(v.type() == type_, "column type mismatch");
  switch (type_) {
    case TypeId::kBool: AppendBool(v.bool_value()); break;
    case TypeId::kInt32: AppendInt32(v.int32_value()); break;
    case TypeId::kInt64: AppendInt64(v.int64_value()); break;
    case TypeId::kFloat64: AppendFloat64(v.float64_value()); break;
    case TypeId::kString: AppendString(v.string_value()); break;
  }
}

void ColumnVector::AppendBool(bool v) {
  IDF_CHECK(type_ == TypeId::kBool);
  Data<BoolData>().values.push_back(v ? 1 : 0);
  ++size_;
}
void ColumnVector::AppendInt32(int32_t v) {
  IDF_CHECK(type_ == TypeId::kInt32);
  Data<Int32Data>().values.push_back(v);
  ++size_;
}
void ColumnVector::AppendInt64(int64_t v) {
  IDF_CHECK(type_ == TypeId::kInt64);
  Data<Int64Data>().values.push_back(v);
  ++size_;
}
void ColumnVector::AppendFloat64(double v) {
  IDF_CHECK(type_ == TypeId::kFloat64);
  Data<Float64Data>().values.push_back(v);
  ++size_;
}
void ColumnVector::AppendString(std::string_view v) {
  IDF_CHECK(type_ == TypeId::kString);
  auto& d = Data<StringData>();
  d.arena.insert(d.arena.end(), v.begin(), v.end());
  d.offsets.push_back(static_cast<uint32_t>(d.arena.size()));
  ++size_;
}

void ColumnVector::Reserve(size_t n) {
  switch (type_) {
    case TypeId::kBool: Data<BoolData>().values.reserve(n); break;
    case TypeId::kInt32: Data<Int32Data>().values.reserve(n); break;
    case TypeId::kInt64: Data<Int64Data>().values.reserve(n); break;
    case TypeId::kFloat64: Data<Float64Data>().values.reserve(n); break;
    case TypeId::kString: Data<StringData>().offsets.reserve(n + 1); break;
  }
}

Value ColumnVector::ValueAt(size_t i) const {
  IDF_CHECK(i < size_);
  if (IsNull(i)) return Value::Null(type_);
  switch (type_) {
    case TypeId::kBool: return Value::Bool(BoolAt(i));
    case TypeId::kInt32: return Value::Int32(Int32At(i));
    case TypeId::kInt64: return Value::Int64(Int64At(i));
    case TypeId::kFloat64: return Value::Float64(Float64At(i));
    case TypeId::kString: return Value::String(std::string(StringAt(i)));
  }
  return Value();
}

double ColumnVector::NumericAt(size_t i) const {
  switch (type_) {
    case TypeId::kBool: return BoolAt(i) ? 1.0 : 0.0;
    case TypeId::kInt32: return Int32At(i);
    case TypeId::kInt64: return static_cast<double>(Int64At(i));
    case TypeId::kFloat64: return Float64At(i);
    case TypeId::kString: break;
  }
  IDF_CHECK_MSG(false, "NumericAt on string column");
  return 0;
}

uint64_t ColumnVector::KeyCodeAt(size_t i) const {
  IDF_CHECK_MSG(!IsNull(i), "null values are not indexable");
  switch (type_) {
    case TypeId::kBool: return BoolAt(i) ? 1 : 0;
    case TypeId::kInt32: return static_cast<uint64_t>(
        static_cast<int64_t>(Int32At(i)));
    case TypeId::kInt64: return static_cast<uint64_t>(Int64At(i));
    case TypeId::kFloat64: return HashDouble(Float64At(i));
    case TypeId::kString: return HashString(StringAt(i));
  }
  return 0;
}

uint64_t ColumnVector::ByteSize() const {
  uint64_t bytes = nulls_.size();
  switch (type_) {
    case TypeId::kBool: bytes += Data<BoolData>().values.size(); break;
    case TypeId::kInt32: bytes += Data<Int32Data>().values.size() * 4; break;
    case TypeId::kInt64: bytes += Data<Int64Data>().values.size() * 8; break;
    case TypeId::kFloat64:
      bytes += Data<Float64Data>().values.size() * 8;
      break;
    case TypeId::kString: {
      const auto& d = Data<StringData>();
      bytes += d.arena.size() + d.offsets.size() * 4;
      break;
    }
  }
  return bytes;
}

void ColumnVector::WriteTo(std::ostream& out) const {
  WriteVec(out, nulls_);
  switch (type_) {
    case TypeId::kBool: WriteVec(out, Data<BoolData>().values); break;
    case TypeId::kInt32: WriteVec(out, Data<Int32Data>().values); break;
    case TypeId::kInt64: WriteVec(out, Data<Int64Data>().values); break;
    case TypeId::kFloat64: WriteVec(out, Data<Float64Data>().values); break;
    case TypeId::kString: {
      const auto& d = Data<StringData>();
      WriteVec(out, d.arena);
      WriteVec(out, d.offsets);
      break;
    }
  }
}

Status ColumnVector::ReadFrom(std::istream& in) {
  bool ok = ReadVec(in, &nulls_);
  size_t restored = 0;
  switch (type_) {
    case TypeId::kBool:
      ok = ok && ReadVec(in, &Data<BoolData>().values);
      restored = Data<BoolData>().values.size();
      break;
    case TypeId::kInt32:
      ok = ok && ReadVec(in, &Data<Int32Data>().values);
      restored = Data<Int32Data>().values.size();
      break;
    case TypeId::kInt64:
      ok = ok && ReadVec(in, &Data<Int64Data>().values);
      restored = Data<Int64Data>().values.size();
      break;
    case TypeId::kFloat64:
      ok = ok && ReadVec(in, &Data<Float64Data>().values);
      restored = Data<Float64Data>().values.size();
      break;
    case TypeId::kString: {
      auto& d = Data<StringData>();
      ok = ok && ReadVec(in, &d.arena) && ReadVec(in, &d.offsets);
      restored = d.offsets.empty() ? 0 : d.offsets.size() - 1;
      break;
    }
  }
  if (!ok) return Status::Unavailable("short read reloading column");
  if (restored != size_) {
    return Status::Unavailable("reloaded column row count mismatch");
  }
  return Status::OK();
}

void ColumnVector::ReleaseStorage() {
  nulls_ = {};
  switch (type_) {
    case TypeId::kBool: data_ = BoolData{}; break;
    case TypeId::kInt32: data_ = Int32Data{}; break;
    case TypeId::kInt64: data_ = Int64Data{}; break;
    case TypeId::kFloat64: data_ = Float64Data{}; break;
    case TypeId::kString: data_ = StringData{}; break;
  }
}

// ---- ColumnarChunk ---------------------------------------------------------

ColumnarChunk::ColumnarChunk(SchemaPtr schema) : schema_(std::move(schema)) {
  IDF_CHECK(schema_ != nullptr);
  columns_.reserve(schema_->num_fields());
  for (const Field& f : schema_->fields()) columns_.emplace_back(f.type);
}

Status ColumnarChunk::AppendRow(const RowVec& row) {
  IDF_CHECK_MSG(!sealed_for_governor(), "appending to a sealed chunk");
  IDF_RETURN_IF_ERROR(ValidateRow(*schema_, row));
  for (size_t i = 0; i < row.size(); ++i) columns_[i].AppendValue(row[i]);
  ++num_rows_;
  return Status::OK();
}

void ColumnarChunk::SetRowCount(size_t n) {
  for (const ColumnVector& c : columns_) {
    IDF_CHECK_MSG(c.size() == n, "ragged columns in chunk");
  }
  num_rows_ = n;
}

RowVec ColumnarChunk::RowAt(size_t i) const {
  IDF_CHECK(i < num_rows_);
  EnsureReadable();
  RowVec row;
  row.reserve(columns_.size());
  for (const ColumnVector& c : columns_) row.push_back(c.ValueAt(i));
  return row;
}

void ColumnarChunk::EncodeRowTo(const RowLayout& layout, size_t i,
                                std::vector<uint8_t>& scratch) const {
  // Cheap path: assemble the RowVec then encode. Row materialization cost is
  // intentional — it is the real price of shuffling cached columnar data.
  RowVec row = RowAt(i);
  Result<uint32_t> size = layout.ComputeRowSize(row);
  IDF_CHECK_OK(size.status());
  scratch.resize(*size);
  layout.EncodeRow(row, scratch.data(), PackedRowPtr::Null());
}

uint64_t ColumnarChunk::ByteSize() const {
  // Sealed chunks report their seal-time size so accounting (block manager,
  // shuffle modeling) never has to fault an evicted payload back in.
  if (sealed_bytes_ > 0) return sealed_bytes_;
  uint64_t bytes = 0;
  for (const ColumnVector& c : columns_) bytes += c.ByteSize();
  return bytes;
}

ColumnarChunk::~ColumnarChunk() {
  // First statement: blocks out in-flight evictions before the payload
  // vtable entries die (see Evictable::RetireFromGovernor).
  RetireFromGovernor();
}

void ColumnarChunk::SealForCache(uint64_t owner_rdd, uint32_t partition) const {
  // Gate on engagement: without a budget the governor never evicts, so
  // unbudgeted runs skip registration entirely and behave exactly as before.
  if (!mem::MemoryGovernor::Engaged()) return;
  ColumnarChunk* self = const_cast<ColumnarChunk*>(this);
  if (self->seal_started_.exchange(true, std::memory_order_acq_rel)) return;
  if (num_rows_ == 0) return;  // nothing worth spilling; stay unregistered
  uint64_t bytes = 0;
  for (const ColumnVector& c : columns_) bytes += c.ByteSize();
  if (bytes == 0) return;
  self->sealed_bytes_ = bytes;
  mem::SpillIdentity id;
  id.owner = owner_rdd;
  id.shard = partition;
  id.salvage = false;  // columnar spill files are not salvage-replayable
  self->SetSpillIdentity(id);
  self->AccountAllocated(bytes);
  self->SealForGovernor(num_rows_);
}

Result<uint64_t> ColumnarChunk::SpillPayload(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Unavailable("cannot open spill file '" + path + "'");
  }
  for (const ColumnVector& c : columns_) c.WriteTo(out);
  out.flush();
  if (!out) return Status::Unavailable("short write to '" + path + "'");
  return static_cast<uint64_t>(out.tellp());
}

void ColumnarChunk::ReleasePayload() {
  for (ColumnVector& c : columns_) c.ReleaseStorage();
}

Status ColumnarChunk::ReloadPayload(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::Unavailable("cannot open spill file '" + path + "'");
  }
  for (ColumnVector& c : columns_) {
    IDF_RETURN_IF_ERROR(c.ReadFrom(in));
  }
  return Status::OK();
}

// ---- ChunkBuilder ---------------------------------------------------------

ChunkBuilder::ChunkBuilder(SchemaPtr schema)
    : chunk_(std::make_shared<ColumnarChunk>(std::move(schema))) {}

void ChunkBuilder::AddEncodedRow(const RowLayout& layout, const uint8_t* row) {
  const Schema& schema = chunk_->schema();
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    ColumnVector& col = chunk_->mutable_column(c);
    if (layout.IsNull(row, c)) {
      col.AppendNull();
      continue;
    }
    switch (schema.field(c).type) {
      case TypeId::kBool: col.AppendBool(layout.GetBool(row, c)); break;
      case TypeId::kInt32: col.AppendInt32(layout.GetInt32(row, c)); break;
      case TypeId::kInt64: col.AppendInt64(layout.GetInt64(row, c)); break;
      case TypeId::kFloat64:
        col.AppendFloat64(layout.GetFloat64(row, c));
        break;
      case TypeId::kString: col.AppendString(layout.GetString(row, c)); break;
    }
  }
  chunk_->SetRowCount(chunk_->column(0).size());
}

void ChunkBuilder::AddRow(const RowVec& row) {
  IDF_CHECK_OK(chunk_->AppendRow(row));
}

ChunkPtr ChunkBuilder::Finish() { return std::move(chunk_); }

}  // namespace idf
