// Distributed table handles and scannable datasets.
//
// A TableHandle names a materialized distributed table: `num_partitions`
// ColumnarChunk blocks registered in the cluster's BlockManager under
// (rdd_id, partition, version). A Dataset is anything a Scan node can read —
// a cached vanilla table, or (from src/core) an Indexed Batch RDD, which
// index-aware strategies recognize and everything else treats through the
// row-to-columnar fallback (§III-B: "An Indexed Batch RDD can always fall
// back to a regular Spark Row RDD").
#pragma once

#include <memory>
#include <string>

#include "common/status.h"
#include "engine/metrics.h"
#include "types/schema.h"

namespace idf {

class Session;

struct TableHandle {
  SchemaPtr schema;
  uint64_t rdd_id = 0;
  uint32_t num_partitions = 0;
  uint64_t version = 0;
  uint64_t num_rows = 0;     // filled at materialization
  uint64_t total_bytes = 0;  // sum of block byte sizes

  bool valid() const { return schema != nullptr && num_partitions > 0; }
};

class Dataset {
 public:
  virtual ~Dataset() = default;

  virtual const SchemaPtr& schema() const = 0;
  virtual uint32_t num_partitions() const = 0;

  /// Materializes this dataset as vanilla columnar blocks (the regular
  /// execution path). For cached tables this is free; for indexed datasets
  /// it performs the row-to-columnar conversion, whose cost is part of the
  /// query (this is what slows projections on indexed data, Fig. 8).
  virtual Result<TableHandle> ScanAsColumnar(Session& session,
                                             QueryMetrics& metrics) const = 0;

  /// Index-aware strategies ask: which column is indexed? -1 for none.
  virtual int indexed_column() const { return -1; }

  /// Display name for plan explanations.
  virtual std::string name() const { return "dataset"; }
};

using DatasetPtr = std::shared_ptr<const Dataset>;

/// A vanilla cached table: blocks are already columnar in the block manager.
class CachedTable final : public Dataset {
 public:
  CachedTable(TableHandle handle, std::string name)
      : handle_(std::move(handle)), name_(std::move(name)) {
    IDF_CHECK(handle_.valid());
  }

  const SchemaPtr& schema() const override { return handle_.schema; }
  uint32_t num_partitions() const override { return handle_.num_partitions; }
  Result<TableHandle> ScanAsColumnar(Session&, QueryMetrics&) const override {
    return handle_;
  }
  std::string name() const override { return name_; }

  const TableHandle& handle() const { return handle_; }

 private:
  TableHandle handle_;
  std::string name_;
};

}  // namespace idf
