#include "sql/expr.h"

#include "sql/columnar.h"
#include "storage/row_layout.h"

namespace idf {

// ---- ColumnExpr -------------------------------------------------------------

Result<ExprPtr> ColumnExpr::Resolve(const Schema& schema) const {
  IDF_ASSIGN_OR_RETURN(size_t idx, schema.FieldIndex(name_));
  return ExprPtr(std::make_shared<ColumnExpr>(name_, static_cast<int>(idx)));
}

Value ColumnExpr::Eval(const RowAccessor& row) const {
  IDF_CHECK_MSG(resolved(), "Eval on unresolved column '" + name_ + "'");
  return row.Get(static_cast<size_t>(index_));
}

// ---- LiteralExpr -------------------------------------------------------------

Result<ExprPtr> LiteralExpr::Resolve(const Schema&) const {
  return ExprPtr(std::make_shared<LiteralExpr>(value_));
}

// ---- CompareExpr -------------------------------------------------------------

namespace {
const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}
}  // namespace

Result<ExprPtr> CompareExpr::Resolve(const Schema& schema) const {
  IDF_ASSIGN_OR_RETURN(ExprPtr l, left_->Resolve(schema));
  IDF_ASSIGN_OR_RETURN(ExprPtr r, right_->Resolve(schema));
  return ExprPtr(std::make_shared<CompareExpr>(op_, std::move(l), std::move(r)));
}

Value CompareExpr::Eval(const RowAccessor& row) const {
  const Value l = left_->Eval(row);
  const Value r = right_->Eval(row);
  if (l.is_null() || r.is_null()) return Value::Null(TypeId::kBool);
  const int cmp = l.Compare(r);
  switch (op_) {
    case CompareOp::kEq: return Value::Bool(cmp == 0);
    case CompareOp::kNe: return Value::Bool(cmp != 0);
    case CompareOp::kLt: return Value::Bool(cmp < 0);
    case CompareOp::kLe: return Value::Bool(cmp <= 0);
    case CompareOp::kGt: return Value::Bool(cmp > 0);
    case CompareOp::kGe: return Value::Bool(cmp >= 0);
  }
  return Value::Null(TypeId::kBool);
}

std::string CompareExpr::ToString() const {
  return "(" + left_->ToString() + " " + CompareOpName(op_) + " " +
         right_->ToString() + ")";
}

// ---- LogicalExpr -------------------------------------------------------------

Result<ExprPtr> LogicalExpr::Resolve(const Schema& schema) const {
  IDF_ASSIGN_OR_RETURN(ExprPtr l, left_->Resolve(schema));
  IDF_ASSIGN_OR_RETURN(ExprPtr r, right_->Resolve(schema));
  return ExprPtr(
      std::make_shared<LogicalExpr>(kind(), std::move(l), std::move(r)));
}

Value LogicalExpr::Eval(const RowAccessor& row) const {
  // SQL three-valued AND/OR with short-circuit where sound.
  const Value l = left_->Eval(row);
  if (kind() == Kind::kAnd) {
    if (!l.is_null() && !l.bool_value()) return Value::Bool(false);
    const Value r = right_->Eval(row);
    if (!r.is_null() && !r.bool_value()) return Value::Bool(false);
    if (l.is_null() || r.is_null()) return Value::Null(TypeId::kBool);
    return Value::Bool(true);
  }
  if (!l.is_null() && l.bool_value()) return Value::Bool(true);
  const Value r = right_->Eval(row);
  if (!r.is_null() && r.bool_value()) return Value::Bool(true);
  if (l.is_null() || r.is_null()) return Value::Null(TypeId::kBool);
  return Value::Bool(false);
}

std::string LogicalExpr::ToString() const {
  return "(" + left_->ToString() +
         (kind() == Kind::kAnd ? " AND " : " OR ") + right_->ToString() + ")";
}

// ---- NotExpr -------------------------------------------------------------

Result<ExprPtr> NotExpr::Resolve(const Schema& schema) const {
  IDF_ASSIGN_OR_RETURN(ExprPtr c, child_->Resolve(schema));
  return ExprPtr(std::make_shared<NotExpr>(std::move(c)));
}

Value NotExpr::Eval(const RowAccessor& row) const {
  const Value v = child_->Eval(row);
  if (v.is_null()) return Value::Null(TypeId::kBool);
  return Value::Bool(!v.bool_value());
}

// ---- IsNullExpr -------------------------------------------------------------

Result<ExprPtr> IsNullExpr::Resolve(const Schema& schema) const {
  IDF_ASSIGN_OR_RETURN(ExprPtr c, child_->Resolve(schema));
  return ExprPtr(std::make_shared<IsNullExpr>(std::move(c), negated_));
}

Value IsNullExpr::Eval(const RowAccessor& row) const {
  const bool null = child_->Eval(row).is_null();
  return Value::Bool(negated_ ? !null : null);
}

// ---- ArithExpr -------------------------------------------------------------

namespace {
const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd: return "+";
    case ArithOp::kSub: return "-";
    case ArithOp::kMul: return "*";
    case ArithOp::kDiv: return "/";
  }
  return "?";
}
}  // namespace

Result<ExprPtr> ArithExpr::Resolve(const Schema& schema) const {
  IDF_ASSIGN_OR_RETURN(ExprPtr l, left_->Resolve(schema));
  IDF_ASSIGN_OR_RETURN(ExprPtr r, right_->Resolve(schema));
  return ExprPtr(std::make_shared<ArithExpr>(op_, std::move(l), std::move(r)));
}

Value ArithExpr::Eval(const RowAccessor& row) const {
  const Value l = left_->Eval(row);
  const Value r = right_->Eval(row);
  if (l.is_null() || r.is_null()) return Value::Null(TypeId::kFloat64);
  // Integer arithmetic stays integral when both operands are integral
  // (except division, which follows SQL and stays integral too).
  const bool integral =
      (l.type() == TypeId::kInt32 || l.type() == TypeId::kInt64) &&
      (r.type() == TypeId::kInt32 || r.type() == TypeId::kInt64);
  if (integral) {
    const int64_t a = l.AsInt64();
    const int64_t b = r.AsInt64();
    switch (op_) {
      case ArithOp::kAdd: return Value::Int64(a + b);
      case ArithOp::kSub: return Value::Int64(a - b);
      case ArithOp::kMul: return Value::Int64(a * b);
      case ArithOp::kDiv:
        if (b == 0) return Value::Null(TypeId::kInt64);
        return Value::Int64(a / b);
    }
  }
  const double a = l.AsFloat64();
  const double b = r.AsFloat64();
  switch (op_) {
    case ArithOp::kAdd: return Value::Float64(a + b);
    case ArithOp::kSub: return Value::Float64(a - b);
    case ArithOp::kMul: return Value::Float64(a * b);
    case ArithOp::kDiv:
      if (b == 0) return Value::Null(TypeId::kFloat64);
      return Value::Float64(a / b);
  }
  return Value::Null(TypeId::kFloat64);
}

std::string ArithExpr::ToString() const {
  return "(" + left_->ToString() + " " + ArithOpName(op_) + " " +
         right_->ToString() + ")";
}

// ---- builders ------------------------------------------------------------

ExprPtr Col(std::string name) {
  return std::make_shared<ColumnExpr>(std::move(name));
}
ExprPtr Lit(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }

ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return std::make_shared<CompareExpr>(CompareOp::kEq, std::move(a),
                                       std::move(b));
}
ExprPtr Ne(ExprPtr a, ExprPtr b) {
  return std::make_shared<CompareExpr>(CompareOp::kNe, std::move(a),
                                       std::move(b));
}
ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return std::make_shared<CompareExpr>(CompareOp::kLt, std::move(a),
                                       std::move(b));
}
ExprPtr Le(ExprPtr a, ExprPtr b) {
  return std::make_shared<CompareExpr>(CompareOp::kLe, std::move(a),
                                       std::move(b));
}
ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return std::make_shared<CompareExpr>(CompareOp::kGt, std::move(a),
                                       std::move(b));
}
ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return std::make_shared<CompareExpr>(CompareOp::kGe, std::move(a),
                                       std::move(b));
}
ExprPtr And(ExprPtr a, ExprPtr b) {
  return std::make_shared<LogicalExpr>(Expr::Kind::kAnd, std::move(a),
                                       std::move(b));
}
ExprPtr Or(ExprPtr a, ExprPtr b) {
  return std::make_shared<LogicalExpr>(Expr::Kind::kOr, std::move(a),
                                       std::move(b));
}
ExprPtr Not(ExprPtr a) { return std::make_shared<NotExpr>(std::move(a)); }
ExprPtr IsNull(ExprPtr a) {
  return std::make_shared<IsNullExpr>(std::move(a), false);
}
ExprPtr IsNotNull(ExprPtr a) {
  return std::make_shared<IsNullExpr>(std::move(a), true);
}
ExprPtr Add(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithExpr>(ArithOp::kAdd, std::move(a), std::move(b));
}
ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithExpr>(ArithOp::kSub, std::move(a), std::move(b));
}
ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithExpr>(ArithOp::kMul, std::move(a), std::move(b));
}
ExprPtr Div(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithExpr>(ArithOp::kDiv, std::move(a), std::move(b));
}

// ---- pattern helpers ----------------------------------------------------------

std::optional<ColumnEqualsLiteral> MatchColumnEqualsLiteral(const Expr& expr) {
  if (expr.kind() != Expr::Kind::kCompare) return std::nullopt;
  const auto& cmp = static_cast<const CompareExpr&>(expr);
  if (cmp.op() != CompareOp::kEq) return std::nullopt;
  const Expr* a = cmp.left().get();
  const Expr* b = cmp.right().get();
  if (a->kind() == Expr::Kind::kLiteral && b->kind() == Expr::Kind::kColumn) {
    std::swap(a, b);
  }
  if (a->kind() != Expr::Kind::kColumn || b->kind() != Expr::Kind::kLiteral) {
    return std::nullopt;
  }
  return ColumnEqualsLiteral{
      static_cast<const ColumnExpr*>(a)->name(),
      static_cast<const LiteralExpr*>(b)->value()};
}

bool IsConstant(const Expr& expr) {
  std::vector<std::string> cols;
  expr.CollectColumns(cols);
  return cols.empty();
}

// ---- accessors ------------------------------------------------------------

Value ChunkRowAccessor::Get(size_t col) const {
  return chunk_.ValueAt(row_, col);
}

Value BinaryRowAccessor::Get(size_t col) const {
  return layout_.GetValue(row_, col);
}

}  // namespace idf
