// SQL front-end (Fig. 2: "Users write SQL queries or use the Dataframe
// API") — a lexer and recursive-descent parser producing logical plans over
// the session catalog.
//
// Supported grammar (enough for every query in the paper's evaluation):
//
//   query      := SELECT select_list
//                 FROM identifier
//                 ( JOIN identifier ON column '=' column )*
//                 [ WHERE expr ]
//                 [ GROUP BY column (',' column)* ]
//                 [ LIMIT integer ]
//   select_list:= '*' | item (',' item)*
//   item       := column
//               | (COUNT|SUM|MIN|MAX|AVG) '(' (column|'*') ')' [AS name]
//   expr       := or-tree of comparisons over columns, literals and
//                 arithmetic; IS [NOT] NULL; parentheses.
//   literal    := integer | float | 'string' | TRUE | FALSE | NULL
//
// Semantics notes:
//  - JOIN ... ON a = b takes `a` from the left (accumulated) relation and
//    `b` from the joined one; joins are inner equi-joins (the paper's only
//    join shape).
//  - A select list with aggregate functions becomes an Aggregate node whose
//    GROUP BY keys must cover the bare columns in the list.
//  - Integer literals are typed int64; comparisons widen numerics, so they
//    match int32 columns too.
#pragma once

#include <string>

#include "common/status.h"
#include "sql/plan.h"

namespace idf {

class Session;

/// Parses `sql` against the session's table catalog into a logical plan.
Result<PlanPtr> ParseSql(const std::string& sql, Session& session);

namespace sql_detail {

enum class TokenKind {
  kIdentifier,
  kInteger,
  kFloat,
  kString,
  kSymbol,  // punctuation / operators
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // uppercased for identifiers/keywords
  std::string raw;    // original spelling
  size_t position = 0;
};

/// Tokenizes a SQL string. Exposed for tests.
Result<std::vector<Token>> Lex(const std::string& sql);

}  // namespace sql_detail
}  // namespace idf
