#include "sql/parser.h"

#include <cctype>

#include "sql/session.h"

namespace idf {
namespace sql_detail {

namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentBody(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

std::string Upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < sql.size()) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < sql.size() && IsIdentBody(sql[j])) ++j;
      token.kind = TokenKind::kIdentifier;
      token.raw = sql.substr(i, j - i);
      token.text = Upper(token.raw);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < sql.size() &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i;
      bool is_float = false;
      while (j < sql.size() &&
             (std::isdigit(static_cast<unsigned char>(sql[j])) ||
              sql[j] == '.')) {
        if (sql[j] == '.') {
          if (is_float) {
            return Status::InvalidArgument("malformed number at position " +
                                           std::to_string(i));
          }
          is_float = true;
        }
        ++j;
      }
      token.kind = is_float ? TokenKind::kFloat : TokenKind::kInteger;
      token.raw = token.text = sql.substr(i, j - i);
      i = j;
    } else if (c == '\'') {
      size_t j = i + 1;
      std::string value;
      while (j < sql.size() && sql[j] != '\'') {
        value += sql[j];
        ++j;
      }
      if (j >= sql.size()) {
        return Status::InvalidArgument("unterminated string literal at " +
                                       std::to_string(i));
      }
      token.kind = TokenKind::kString;
      token.raw = token.text = value;
      i = j + 1;
    } else {
      // Multi-character operators first.
      static const char* kTwoChar[] = {"<=", ">=", "!=", "<>"};
      std::string sym(1, c);
      for (const char* two : kTwoChar) {
        if (sql.compare(i, 2, two) == 0) {
          sym = two;
          break;
        }
      }
      static const std::string kSingles = "(),*=<>+-/.";
      if (sym.size() == 1 && kSingles.find(c) == std::string::npos) {
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "' at position " +
                                       std::to_string(i));
      }
      token.kind = TokenKind::kSymbol;
      token.raw = token.text = sym;
      i += sym.size();
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = sql.size();
  tokens.push_back(end);
  return tokens;
}

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  Parser(std::vector<Token> tokens, Session& session)
      : tokens_(std::move(tokens)), session_(session) {}

  Result<PlanPtr> ParseQuery() {
    IDF_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    IDF_RETURN_IF_ERROR(ParseSelectList());
    IDF_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    IDF_ASSIGN_OR_RETURN(PlanPtr plan, ParseTable());

    while (true) {
      JoinType join_type = JoinType::kInner;
      if (AcceptKeyword("LEFT")) {
        AcceptKeyword("OUTER");  // optional noise word
        IDF_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        join_type = JoinType::kLeftOuter;
      } else if (AcceptKeyword("INNER")) {
        IDF_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
      } else if (!AcceptKeyword("JOIN")) {
        break;
      }
      IDF_ASSIGN_OR_RETURN(PlanPtr right, ParseTable());
      IDF_RETURN_IF_ERROR(ExpectKeyword("ON"));
      IDF_ASSIGN_OR_RETURN(std::string left_key, ExpectIdentifier());
      IDF_RETURN_IF_ERROR(ExpectSymbol("="));
      IDF_ASSIGN_OR_RETURN(std::string right_key, ExpectIdentifier());
      plan = std::make_shared<JoinNode>(plan, right, left_key, right_key,
                                        join_type);
    }

    if (AcceptKeyword("WHERE")) {
      IDF_ASSIGN_OR_RETURN(ExprPtr predicate, ParseExpr());
      plan = std::make_shared<FilterNode>(plan, std::move(predicate));
    }

    std::vector<std::string> group_by;
    if (AcceptKeyword("GROUP")) {
      IDF_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        IDF_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier());
        group_by.push_back(std::move(column));
      } while (AcceptSymbol(","));
    }

    // Assemble projection / aggregation from the select list.
    if (!aggs_.empty()) {
      // Bare columns in the select list must be grouping keys.
      for (const std::string& column : select_columns_) {
        bool grouped = false;
        for (const std::string& g : group_by) grouped |= (g == column);
        if (!grouped) {
          return Status::InvalidArgument(
              "column '" + column +
              "' in SELECT must appear in GROUP BY when aggregating");
        }
      }
      plan = std::make_shared<AggregateNode>(plan, group_by, aggs_);
      // Aggregate output order is group keys then aggs — already the
      // conventional order; honor explicit select order via projection.
      std::vector<std::string> out_cols = select_columns_;
      for (const AggSpec& a : aggs_) out_cols.push_back(a.output_name);
      plan = std::make_shared<ProjectNode>(plan, out_cols);
    } else if (!group_by.empty()) {
      return Status::InvalidArgument("GROUP BY without aggregate functions");
    } else if (!select_star_) {
      plan = std::make_shared<ProjectNode>(plan, select_columns_);
    }

    if (AcceptKeyword("ORDER")) {
      IDF_RETURN_IF_ERROR(ExpectKeyword("BY"));
      std::vector<SortKey> keys;
      do {
        SortKey key;
        IDF_ASSIGN_OR_RETURN(key.column, ExpectIdentifier());
        if (AcceptKeyword("DESC")) {
          key.descending = true;
        } else {
          AcceptKeyword("ASC");
        }
        keys.push_back(std::move(key));
      } while (AcceptSymbol(","));
      plan = std::make_shared<SortNode>(plan, std::move(keys));
    }

    if (AcceptKeyword("LIMIT")) {
      if (Peek().kind != TokenKind::kInteger) {
        return Status::InvalidArgument("LIMIT expects an integer");
      }
      const uint64_t n = std::stoull(Next().text);
      plan = std::make_shared<LimitNode>(plan, n);
    }

    if (AcceptKeyword("UNION")) {
      IDF_RETURN_IF_ERROR(ExpectKeyword("ALL"));
      // Parse the right-hand SELECT with a fresh sub-parser state.
      Parser rest(std::vector<Token>(tokens_.begin() +
                                         static_cast<long>(pos_),
                                     tokens_.end()),
                  session_);
      IDF_ASSIGN_OR_RETURN(PlanPtr right, rest.ParseQuery());
      pos_ = tokens_.size() - 1;  // consumed by the sub-parser
      return PlanPtr(std::make_shared<UnionNode>(plan, std::move(right)));
    }

    if (Peek().kind != TokenKind::kEnd) {
      return Status::InvalidArgument("trailing input after query: '" +
                                     Peek().raw + "'");
    }
    return plan;
  }

 private:
  // ---- token helpers ----------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Next() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  bool AcceptKeyword(const std::string& kw) {
    if (Peek().kind == TokenKind::kIdentifier && Peek().text == kw) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) {
      return Status::InvalidArgument("expected " + kw + " near '" +
                                     Peek().raw + "'");
    }
    return Status::OK();
  }
  bool AcceptSymbol(const std::string& sym) {
    if (Peek().kind == TokenKind::kSymbol && Peek().text == sym) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectSymbol(const std::string& sym) {
    if (!AcceptSymbol(sym)) {
      return Status::InvalidArgument("expected '" + sym + "' near '" +
                                     Peek().raw + "'");
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Status::InvalidArgument("expected identifier near '" +
                                     Peek().raw + "'");
    }
    return Next().raw;
  }

  static bool IsAggName(const std::string& upper) {
    return upper == "COUNT" || upper == "SUM" || upper == "MIN" ||
           upper == "MAX" || upper == "AVG";
  }

  // ---- select list -------------------------------------------------------

  Status ParseSelectList() {
    if (AcceptSymbol("*")) {
      select_star_ = true;
      return Status::OK();
    }
    do {
      if (Peek().kind != TokenKind::kIdentifier) {
        return Status::InvalidArgument("expected column or aggregate near '" +
                                       Peek().raw + "'");
      }
      if (IsAggName(Peek().text) && Peek(1).kind == TokenKind::kSymbol &&
          Peek(1).text == "(") {
        IDF_RETURN_IF_ERROR(ParseAggregate());
      } else {
        select_columns_.push_back(Next().raw);
      }
    } while (AcceptSymbol(","));
    return Status::OK();
  }

  Status ParseAggregate() {
    const std::string fn = Next().text;  // COUNT / SUM / ...
    IDF_RETURN_IF_ERROR(ExpectSymbol("("));
    std::string column;
    if (AcceptSymbol("*")) {
      if (fn != "COUNT") {
        return Status::InvalidArgument(fn + "(*) is not supported");
      }
    } else {
      IDF_ASSIGN_OR_RETURN(column, ExpectIdentifier());
    }
    IDF_RETURN_IF_ERROR(ExpectSymbol(")"));
    std::string output;
    if (AcceptKeyword("AS")) {
      IDF_ASSIGN_OR_RETURN(output, ExpectIdentifier());
    }
    AggSpec spec;
    if (fn == "COUNT") {
      spec = AggSpec::Count(output.empty() ? "count" : output);
    } else if (fn == "SUM") {
      spec = AggSpec::Sum(column, output);
    } else if (fn == "MIN") {
      spec = AggSpec::Min(column, output);
    } else if (fn == "MAX") {
      spec = AggSpec::Max(column, output);
    } else {
      spec = AggSpec::Avg(column, output);
    }
    aggs_.push_back(std::move(spec));
    return Status::OK();
  }

  // ---- FROM --------------------------------------------------------------

  Result<PlanPtr> ParseTable() {
    IDF_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    IDF_ASSIGN_OR_RETURN(DatasetPtr dataset, session_.LookupTable(name));
    return PlanPtr(std::make_shared<ScanNode>(std::move(dataset)));
  }

  // ---- expressions ----------------------------------------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    IDF_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (AcceptKeyword("OR")) {
      IDF_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = Or(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    IDF_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (AcceptKeyword("AND")) {
      IDF_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = And(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      IDF_ASSIGN_OR_RETURN(ExprPtr child, ParseNot());
      return Not(std::move(child));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    IDF_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    if (AcceptKeyword("IS")) {
      const bool negated = AcceptKeyword("NOT");
      IDF_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      return negated ? IsNotNull(std::move(left)) : IsNull(std::move(left));
    }
    static const struct {
      const char* sym;
      CompareOp op;
    } kOps[] = {{"=", CompareOp::kEq},  {"!=", CompareOp::kNe},
                {"<>", CompareOp::kNe}, {"<=", CompareOp::kLe},
                {">=", CompareOp::kGe}, {"<", CompareOp::kLt},
                {">", CompareOp::kGt}};
    for (const auto& candidate : kOps) {
      if (AcceptSymbol(candidate.sym)) {
        IDF_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
        return ExprPtr(std::make_shared<CompareExpr>(
            candidate.op, std::move(left), std::move(right)));
      }
    }
    return left;
  }

  Result<ExprPtr> ParseAdditive() {
    IDF_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (true) {
      if (AcceptSymbol("+")) {
        IDF_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
        left = Add(std::move(left), std::move(right));
      } else if (AcceptSymbol("-")) {
        IDF_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
        left = Sub(std::move(left), std::move(right));
      } else {
        return left;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    IDF_ASSIGN_OR_RETURN(ExprPtr left, ParsePrimary());
    while (true) {
      if (AcceptSymbol("*")) {
        IDF_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
        left = Mul(std::move(left), std::move(right));
      } else if (AcceptSymbol("/")) {
        IDF_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
        left = Div(std::move(left), std::move(right));
      } else {
        return left;
      }
    }
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kInteger: {
        const int64_t v = std::stoll(Next().text);
        return Lit(v);
      }
      case TokenKind::kFloat: {
        const double v = std::stod(Next().text);
        return Lit(v);
      }
      case TokenKind::kString:
        return Lit(Value::String(Next().raw));
      case TokenKind::kIdentifier: {
        if (token.text == "TRUE") {
          Next();
          return Lit(true);
        }
        if (token.text == "FALSE") {
          Next();
          return Lit(false);
        }
        if (token.text == "NULL") {
          Next();
          return Lit(Value());
        }
        return Col(Next().raw);
      }
      case TokenKind::kSymbol:
        if (token.text == "(") {
          Next();
          IDF_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
          IDF_RETURN_IF_ERROR(ExpectSymbol(")"));
          return inner;
        }
        if (token.text == "-") {
          Next();
          IDF_ASSIGN_OR_RETURN(ExprPtr inner, ParsePrimary());
          return Sub(Lit(int64_t{0}), std::move(inner));
        }
        break;
      case TokenKind::kEnd:
        break;
    }
    return Status::InvalidArgument("unexpected token '" + token.raw +
                                   "' in expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Session& session_;

  bool select_star_ = false;
  std::vector<std::string> select_columns_;
  std::vector<AggSpec> aggs_;
};

}  // namespace
}  // namespace sql_detail

Result<PlanPtr> ParseSql(const std::string& sql, Session& session) {
  IDF_ASSIGN_OR_RETURN(std::vector<sql_detail::Token> tokens,
                       sql_detail::Lex(sql));
  sql_detail::Parser parser(std::move(tokens), session);
  return parser.ParseQuery();
}

}  // namespace idf
