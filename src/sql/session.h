// Session + DataFrame: the user-facing API of the engine.
//
// A Session owns the (simulated) cluster, the planner, and the table
// catalog. DataFrame mirrors the Spark Dataframe API surface the paper's
// Listing 1 builds on: filter / select / join / aggregate / collect. The
// Indexed DataFrame extensions (createIndex / getRows / appendRows) live in
// src/core and compose with everything here.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/cluster.h"
#include "sql/columnar.h"
#include "sql/plan.h"
#include "sql/planner.h"
#include "sql/table.h"

namespace idf {

struct SessionOptions {
  ClusterConfig cluster;
  /// Partition count for tables created without an explicit one. The paper's
  /// rule of thumb is 1-4 partitions per core (§III-C).
  uint32_t default_partitions = 8;
  /// Build sides smaller than this are broadcast (the paper cites Spark's
  /// "less than 10 MB" broadcast behaviour, §IV-C).
  uint64_t broadcast_threshold_bytes = 10ull << 20;
  JoinExec::Mode join_mode = JoinExec::Mode::kAuto;
};

/// Driver-side materialized result.
struct CollectedTable {
  SchemaPtr schema;
  std::vector<RowVec> rows;

  /// Rows as sorted strings — order-insensitive comparison for tests.
  std::vector<std::string> SortedRowStrings() const;
};

class DataFrame;

class Session {
 public:
  explicit Session(SessionOptions options = {});

  Cluster& cluster() { return *cluster_; }
  Planner& planner() { return planner_; }
  const SessionOptions& options() const { return options_; }

  /// Per-partition deterministic row generator; re-invoked by lineage
  /// recomputation after failures (the "replayable source" of §III-D).
  using PartitionGenerator =
      std::function<std::vector<RowVec>(uint32_t partition)>;

  /// Creates a cached (columnar) table from driver-side rows, hash-assigned
  /// to `partitions` round-robin.
  Result<DataFrame> CreateTable(const std::string& name, SchemaPtr schema,
                                const std::vector<RowVec>& rows,
                                uint32_t partitions = 0);

  /// Creates a cached table whose partitions come from a generator —
  /// the standard path for the workload datasets.
  Result<DataFrame> CreateTableFromGenerator(const std::string& name,
                                             SchemaPtr schema,
                                             uint32_t partitions,
                                             PartitionGenerator generator);

  /// Wraps an arbitrary dataset (e.g. an Indexed DataFrame) in a DataFrame.
  DataFrame Read(DatasetPtr dataset);

  // ---- table catalog & SQL ----------------------------------------------

  /// Registers (or replaces) a named table in the catalog. Tables created
  /// via CreateTable/CreateTableFromGenerator register automatically;
  /// indexed dataframes can be registered to make their index visible to
  /// SQL queries (Fig. 2's entry path).
  void RegisterTable(const std::string& name, DatasetPtr dataset);

  /// Case-insensitive catalog lookup.
  Result<DatasetPtr> LookupTable(const std::string& name) const;

  /// Parses and binds a SQL query ("SELECT ... FROM ... JOIN ... WHERE ...
  /// GROUP BY ... LIMIT ...") against the catalog. Execution goes through
  /// the same planner as the DataFrame API — indexed strategies included.
  ///
  /// An "EXPLAIN <query>" prefix returns a one-column ("plan") dataframe
  /// holding the physical plan, one row per line; "EXPLAIN ANALYZE <query>"
  /// additionally *executes* the query and annotates each operator with
  /// rows/bytes produced, wall time, index probe/hit counts, and COW /
  /// snapshot work (see DataFrame::ExplainAnalyze).
  Result<DataFrame> Sql(const std::string& query);

  /// Gathers every block of a table to the driver.
  Result<CollectedTable> Collect(const TableHandle& handle);

  /// Extension registry: lets add-on libraries (e.g. the Indexed DataFrame
  /// rules) install themselves into this session exactly once.
  bool HasExtension(const std::string& name) const {
    std::lock_guard<std::mutex> lock(catalog_mutex_);
    return extensions_.count(name) > 0;
  }
  void MarkExtension(const std::string& name) {
    std::lock_guard<std::mutex> lock(catalog_mutex_);
    extensions_.insert(name);
  }
  /// Atomic check-and-mark: true exactly once per name per session. The
  /// install path for extensions shared by concurrent queries — two threads
  /// racing to install the same extension must not both PrependStrategy.
  bool TryMarkExtension(const std::string& name) {
    std::lock_guard<std::mutex> lock(catalog_mutex_);
    return extensions_.insert(name).second;
  }

 private:
  /// Shared materialization path; EXPLAIN results skip the catalog so they
  /// cannot shadow user tables.
  Result<DataFrame> CreateTableImpl(const std::string& name, SchemaPtr schema,
                                    uint32_t partitions,
                                    PartitionGenerator generator,
                                    bool register_in_catalog);

  SessionOptions options_;
  std::unique_ptr<Cluster> cluster_;
  Planner planner_;
  // Guards the catalog and extension registry: concurrent queries served
  // through the query service register/look up tables on one Session.
  mutable std::mutex catalog_mutex_;
  std::set<std::string> extensions_;
  std::map<std::string, DatasetPtr> catalog_;  // keys uppercased
};

class DataFrame {
 public:
  DataFrame() = default;
  DataFrame(Session* session, PlanPtr plan)
      : session_(session), plan_(std::move(plan)) {}

  bool valid() const { return session_ != nullptr && plan_ != nullptr; }
  const PlanPtr& plan() const { return plan_; }
  Session* session() const { return session_; }

  Result<Schema> schema() const { return plan_->OutputSchema(); }

  DataFrame Filter(ExprPtr predicate) const {
    return DataFrame(session_,
                     std::make_shared<FilterNode>(plan_, std::move(predicate)));
  }
  DataFrame Select(std::vector<std::string> columns) const {
    return DataFrame(
        session_, std::make_shared<ProjectNode>(plan_, std::move(columns)));
  }
  DataFrame Join(const DataFrame& right, std::string left_key,
                 std::string right_key,
                 JoinType join_type = JoinType::kInner) const {
    return DataFrame(session_, std::make_shared<JoinNode>(
                                   plan_, right.plan_, std::move(left_key),
                                   std::move(right_key), join_type));
  }
  DataFrame LeftJoin(const DataFrame& right, std::string left_key,
                     std::string right_key) const {
    return Join(right, std::move(left_key), std::move(right_key),
                JoinType::kLeftOuter);
  }
  DataFrame OrderBy(std::vector<SortKey> keys) const {
    return DataFrame(session_,
                     std::make_shared<SortNode>(plan_, std::move(keys)));
  }
  /// UNION ALL: concatenation, duplicates kept (zero-copy execution).
  DataFrame UnionAll(const DataFrame& other) const {
    return DataFrame(session_,
                     std::make_shared<UnionNode>(plan_, other.plan_));
  }
  /// Distinct rows — implemented as a group-by over every column.
  Result<DataFrame> Distinct() const;
  DataFrame Agg(std::vector<std::string> group_by,
                std::vector<AggSpec> aggs) const {
    return DataFrame(session_,
                     std::make_shared<AggregateNode>(plan_, std::move(group_by),
                                                     std::move(aggs)));
  }
  DataFrame Limit(uint64_t n) const {
    return DataFrame(session_, std::make_shared<LimitNode>(plan_, n));
  }

  /// Optimizes, plans, and executes; returns the materialized table.
  Result<TableHandle> Execute(QueryMetrics* metrics = nullptr) const;

  Result<CollectedTable> Collect(QueryMetrics* metrics = nullptr) const;

  /// Row count of the executed query.
  Result<uint64_t> Count(QueryMetrics* metrics = nullptr) const;

  /// Rendered optimized logical plan (for tests asserting rule behaviour).
  Result<std::string> ExplainOptimized() const;
  /// Rendered physical plan (for tests asserting strategy selection —
  /// e.g. that a join against an indexed dataframe uses IndexedJoinExec).
  Result<std::string> ExplainPhysical() const;
  /// Executes the query with per-operator instrumentation and renders the
  /// physical plan annotated with what each operator actually did: rows and
  /// bytes produced, wall/self time, index probes vs hits, COW batch copies,
  /// cTrie snapshots, shuffle volume. A trailing summary line reports query
  /// totals (stages, real/simulated seconds). When `metrics` is given the
  /// executed QueryMetrics (op_profile included) are stored there.
  Result<std::string> ExplainAnalyze(QueryMetrics* metrics = nullptr) const;

 private:
  Session* session_ = nullptr;
  PlanPtr plan_;
};

}  // namespace idf
