// Columnar in-memory representation — the vanilla baseline.
//
// "The Indexed DataFrame is an in-memory table, thus our performance baseline
// is the default in-memory (columnar) caching mechanism provided by Spark"
// (§IV-A). ColumnarChunk is one cached partition: typed column vectors with
// null bitmaps and a string arena. Scans, projections and vectorizable
// filters are fast here (which is exactly why Fig. 8 / Fig. 13 show the
// row-wise Indexed DataFrame *losing* on projection-heavy operators).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/status.h"
#include "engine/block.h"
#include "mem/governor.h"
#include "storage/row_layout.h"
#include "types/schema.h"

namespace idf {

class ColumnVector {
 public:
  explicit ColumnVector(TypeId type);

  TypeId type() const { return type_; }
  size_t size() const { return size_; }

  // ---- building -------------------------------------------------------
  void AppendValue(const Value& v);
  void AppendNull();
  void AppendBool(bool v);
  void AppendInt32(int32_t v);
  void AppendInt64(int64_t v);
  void AppendFloat64(double v);
  void AppendString(std::string_view v);
  void Reserve(size_t n);

  // ---- reading --------------------------------------------------------
  bool IsNull(size_t i) const {
    return i < nulls_.size() * 8 && ((nulls_[i / 8] >> (i % 8)) & 1);
  }
  bool BoolAt(size_t i) const { return Data<BoolData>().values[i] != 0; }
  int32_t Int32At(size_t i) const { return Data<Int32Data>().values[i]; }
  int64_t Int64At(size_t i) const { return Data<Int64Data>().values[i]; }
  double Float64At(size_t i) const { return Data<Float64Data>().values[i]; }
  std::string_view StringAt(size_t i) const {
    const auto& d = Data<StringData>();
    const uint32_t begin = d.offsets[i];
    const uint32_t end = d.offsets[i + 1];
    return std::string_view(d.arena.data() + begin, end - begin);
  }

  Value ValueAt(size_t i) const;

  /// Numeric value widened to double (null/any-numeric fast path for
  /// vectorized comparisons). Caller must ensure non-null numeric column.
  double NumericAt(size_t i) const;

  /// 64-bit key code of row i, consistent with IndexKeyCode(Value).
  uint64_t KeyCodeAt(size_t i) const;

  uint64_t ByteSize() const;

  // ---- spill I/O (ColumnarChunk eviction) -----------------------------
  /// Writes nulls + typed storage as length-prefixed raw vectors.
  void WriteTo(std::ostream& out) const;
  /// Restores storage written by WriteTo. kUnavailable on short/corrupt
  /// reads (including a row count that disagrees with size()).
  Status ReadFrom(std::istream& in);
  /// Frees all storage, keeping type() and size() — the column is
  /// unreadable until ReadFrom() restores it.
  void ReleaseStorage();

 private:
  struct BoolData { std::vector<uint8_t> values; };
  struct Int32Data { std::vector<int32_t> values; };
  struct Int64Data { std::vector<int64_t> values; };
  struct Float64Data { std::vector<double> values; };
  struct StringData {
    std::vector<char> arena;
    std::vector<uint32_t> offsets{0};  // size()+1 entries
  };

  template <typename T>
  const T& Data() const { return std::get<T>(data_); }
  template <typename T>
  T& Data() { return std::get<T>(data_); }

  void MarkNull(size_t i);
  void AppendBoolSlot();

  TypeId type_;
  size_t size_ = 0;
  std::vector<uint8_t> nulls_;
  std::variant<BoolData, Int32Data, Int64Data, Float64Data, StringData> data_;
};

/// One cached partition of a table: a block the engine can store and ship.
///
/// Under a memory budget a chunk is also an evictable payload: once sealed
/// (SealForCache, called where chunks are cached — TableSink::Emit, lineage
/// builds — after which the chunk is immutable) it registers with the memory
/// governor tagged {owner = producing RDD, shard = partition}, so it shows
/// up in the residency map for spill-aware scheduling and may be spilled
/// column-by-column and faulted back on access. Readers go through
/// column()/RowAt()/ValueAt(), which pin the payload for the duration of
/// the read (mem::AccessScope rules apply: bodies that hold column
/// references across reads of *other* chunks must open a scope).
class ColumnarChunk : public Block, public mem::Evictable {
 public:
  explicit ColumnarChunk(SchemaPtr schema);
  ~ColumnarChunk() override;

  const Schema& schema() const { return *schema_; }
  const SchemaPtr& schema_ptr() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const ColumnVector& column(size_t i) const {
    IDF_CHECK(i < columns_.size());
    EnsureReadable();
    return columns_[i];
  }
  ColumnVector& mutable_column(size_t i) {
    IDF_CHECK(i < columns_.size());
    IDF_CHECK_MSG(!sealed_for_governor(), "mutating a sealed chunk");
    return columns_[i];
  }

  /// Appends a validated row (API-boundary path; generators use typed
  /// per-column appends directly on the vectors then call SetRowCount).
  Status AppendRow(const RowVec& row);

  /// For builders that filled columns directly; validates column lengths.
  void SetRowCount(size_t n);

  RowVec RowAt(size_t i) const;
  Value ValueAt(size_t row, size_t col) const {
    EnsureReadable();
    return columns_[col].ValueAt(row);
  }

  /// Serializes row i with the given layout into `out` (shuffle path).
  /// `scratch` avoids per-row allocations.
  void EncodeRowTo(const RowLayout& layout, size_t i,
                   std::vector<uint8_t>& scratch) const;

  uint64_t ByteSize() const override;

  /// Seals this chunk under the memory governor as partition `partition` of
  /// RDD `owner_rdd` — from here on it is immutable, budget-accounted, and
  /// evictable. Idempotent; empty chunks stay unregistered; a chunk
  /// re-emitted under a second id (UNION's zero-copy pass-through) keeps
  /// its first identity. No-op until a governor budget engages.
  void SealForCache(uint64_t owner_rdd, uint32_t partition) const;

 private:
  /// Pin chokepoint for every read accessor: faults the payload back in if
  /// evicted and holds it resident while the caller reads. Free while the
  /// chunk is still being built (unsealed payloads cannot be evicted).
  void EnsureReadable() const {
    if (!sealed_for_governor()) return;
    mem::AccessScope::Pin(const_cast<ColumnarChunk*>(this));
  }

  Result<uint64_t> SpillPayload(const std::string& path) override;
  void ReleasePayload() override;
  Status ReloadPayload(const std::string& path) override;
  uint64_t PayloadBytes() const override { return sealed_bytes_; }

  SchemaPtr schema_;
  std::vector<ColumnVector> columns_;
  size_t num_rows_ = 0;
  uint64_t sealed_bytes_ = 0;  // ByteSize() at seal; survives eviction
  mutable std::atomic<bool> seal_started_{false};
};

using ChunkPtr = std::shared_ptr<const ColumnarChunk>;

/// Builds a chunk from encoded binary rows (shuffle-receive / index fallback
/// scan: this row->columnar conversion is the cost that makes projections on
/// the Indexed DataFrame slower than on the columnar cache).
class ChunkBuilder {
 public:
  explicit ChunkBuilder(SchemaPtr schema);

  void AddEncodedRow(const RowLayout& layout, const uint8_t* row);
  void AddRow(const RowVec& row);

  size_t num_rows() const { return chunk_->num_rows(); }
  ChunkPtr Finish();

 private:
  std::shared_ptr<ColumnarChunk> chunk_;
};

}  // namespace idf
