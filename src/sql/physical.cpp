#include "sql/physical.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "common/timer.h"
#include "mem/governor.h"
#include "obs/trace.h"
#include "sql/agg_internal.h"
#include "sql/session.h"
#include "storage/row_layout.h"

namespace idf {

std::string PhysicalOp::Explain(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += Describe();
  out += "\n";
  for (const PhysOpPtr& child : children()) out += child->Explain(indent + 1);
  return out;
}

Result<TableHandle> PhysicalOp::Execute(Session& session,
                                        QueryMetrics& metrics) const {
  obs::Span span("op", Describe());
  if (metrics.op_profile == nullptr) {
    // Regular execution: just the trace span (a no-op unless tracing is on).
    return ExecuteImpl(session, metrics);
  }

  // EXPLAIN ANALYZE: attribute the query-total delta across this subtree to
  // this node (inclusively; the renderer subtracts children for self time).
  // Operators execute sequentially on the driver, so snapshot-and-subtract
  // on the shared accumulator is race-free.
  const TaskMetrics before = metrics.totals;
  Stopwatch timer;
  Result<TableHandle> result = ExecuteImpl(session, metrics);
  const double elapsed = timer.ElapsedSeconds();

  OpProfile& prof = (*metrics.op_profile)[this];
  if (prof.label.empty()) prof.label = Describe();
  ++prof.executions;
  prof.wall_seconds += elapsed;
  prof.inclusive.MergeFrom(metrics.totals.DeltaSince(before));
  if (result.ok()) {
    prof.rows_out += result->num_rows;
    prof.bytes_out += result->total_bytes;
    if (span.active()) {
      span.AddArgInt("rows_out", result->num_rows);
      span.AddArgInt("bytes_out", result->total_bytes);
    }
  }
  return result;
}

std::string PhysicalOp::ExplainAnalyze(const QueryMetrics& metrics,
                                       int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += Describe();
  const OpProfile* prof = nullptr;
  if (metrics.op_profile != nullptr) {
    auto it = metrics.op_profile->find(this);
    if (it != metrics.op_profile->end()) prof = &it->second;
  }
  if (prof != nullptr) {
    // Self time/metrics = this node's inclusive numbers minus the children's.
    double child_wall = 0;
    TaskMetrics child_sum;
    if (metrics.op_profile != nullptr) {
      for (const PhysOpPtr& child : children()) {
        auto it = metrics.op_profile->find(child.get());
        if (it == metrics.op_profile->end()) continue;
        child_wall += it->second.wall_seconds;
        child_sum.MergeFrom(it->second.inclusive);
      }
    }
    const TaskMetrics self = prof->inclusive.DeltaSince(child_sum);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  (rows=%llu bytes=%llu wall=%.3fms self=%.3fms",
                  static_cast<unsigned long long>(prof->rows_out),
                  static_cast<unsigned long long>(prof->bytes_out),
                  prof->wall_seconds * 1e3,
                  std::max(0.0, prof->wall_seconds - child_wall) * 1e3);
    out += buf;
    if (prof->executions > 1) {
      out += " executions=" + std::to_string(prof->executions);
    }
    if (self.index_probes > 0) {
      std::snprintf(buf, sizeof(buf), " probes=%llu hits=%llu",
                    static_cast<unsigned long long>(self.index_probes),
                    static_cast<unsigned long long>(self.index_hits));
      out += buf;
    }
    if (self.ctrie_snapshots > 0) {
      out += " snapshots=" + std::to_string(self.ctrie_snapshots);
    }
    if (self.batch_copies > 0) {
      out += " cow_copies=" + std::to_string(self.batch_copies);
    }
    if (self.shuffle_bytes_written > 0) {
      out += " shuffle_bytes=" + std::to_string(self.shuffle_bytes_written);
    }
    if (self.hash_build_seconds > 0) {
      std::snprintf(buf, sizeof(buf), " hash_build=%.3fms",
                    self.hash_build_seconds * 1e3);
      out += buf;
    }
    if (self.recovery_seconds > 0) {
      std::snprintf(buf, sizeof(buf), " recovery=%.3fms",
                    self.recovery_seconds * 1e3);
      out += buf;
    }
    out += ")";
  }
  out += "\n";
  for (const PhysOpPtr& child : children()) {
    out += child->ExplainAnalyze(metrics, indent + 1);
  }
  return out;
}

// ---- helpers ------------------------------------------------------------

Result<ChunkPtr> FetchChunk(TaskContext& ctx, const TableHandle& table,
                            uint32_t partition) {
  IDF_ASSIGN_OR_RETURN(
      BlockPtr block,
      ctx.cluster().GetOrCompute(
          BlockId{table.rdd_id, partition, table.version}, ctx));
  auto chunk = std::dynamic_pointer_cast<const ColumnarChunk>(block);
  IDF_CHECK_MSG(chunk != nullptr, "block is not a columnar chunk");
  return chunk;
}

TableSink::TableSink(Session& session, SchemaPtr schema,
                     uint32_t num_partitions)
    : session_(session),
      schema_(std::move(schema)),
      num_partitions_(num_partitions),
      rdd_id_(session.cluster().NewRddId()) {}

void TableSink::Emit(TaskContext& ctx, uint32_t partition, ChunkPtr chunk) {
  rows_ += chunk->num_rows();
  bytes_ += chunk->ByteSize();
  ctx.metrics().rows_written += chunk->num_rows();
  // Finalization point for every operator's cached output: from here the
  // chunk is immutable, so it goes under the memory governor (budgeted,
  // evictable, visible to spill-aware scheduling).
  chunk->SealForCache(rdd_id_, partition);
  ctx.cluster().blocks().Put(BlockId{rdd_id_, partition, 0}, ctx.executor(),
                             std::move(chunk));
}

TableHandle TableSink::Finish() {
  TableHandle handle;
  handle.schema = schema_;
  handle.rdd_id = rdd_id_;
  handle.num_partitions = num_partitions_;
  handle.version = 0;
  handle.num_rows = rows_.load();
  handle.total_bytes = bytes_.load();
  return handle;
}

namespace {

/// Typed copy of one row from `in` to `out` (schemas must match).
void AppendRowCopy(ColumnarChunk& out, const ColumnarChunk& in, size_t row) {
  for (size_t c = 0; c < in.num_columns(); ++c) {
    const ColumnVector& src = in.column(c);
    ColumnVector& dst = out.mutable_column(c);
    if (src.IsNull(row)) {
      dst.AppendNull();
      continue;
    }
    switch (src.type()) {
      case TypeId::kBool: dst.AppendBool(src.BoolAt(row)); break;
      case TypeId::kInt32: dst.AppendInt32(src.Int32At(row)); break;
      case TypeId::kInt64: dst.AppendInt64(src.Int64At(row)); break;
      case TypeId::kFloat64: dst.AppendFloat64(src.Float64At(row)); break;
      case TypeId::kString: dst.AppendString(src.StringAt(row)); break;
    }
  }
}

/// Appends columns [offset, offset+in.num_columns) of `out` from row `row`.
void AppendColumnsAt(ColumnarChunk& out, size_t offset,
                     const ColumnarChunk& in, size_t row) {
  for (size_t c = 0; c < in.num_columns(); ++c) {
    const ColumnVector& src = in.column(c);
    ColumnVector& dst = out.mutable_column(offset + c);
    if (src.IsNull(row)) {
      dst.AppendNull();
      continue;
    }
    switch (src.type()) {
      case TypeId::kBool: dst.AppendBool(src.BoolAt(row)); break;
      case TypeId::kInt32: dst.AppendInt32(src.Int32At(row)); break;
      case TypeId::kInt64: dst.AppendInt64(src.Int64At(row)); break;
      case TypeId::kFloat64: dst.AppendFloat64(src.Float64At(row)); break;
      case TypeId::kString: dst.AppendString(src.StringAt(row)); break;
    }
  }
}

/// Appends columns of `out` starting at `offset` from an encoded binary row.
void AppendColumnsFromBinary(ColumnarChunk& out, size_t offset,
                             const RowLayout& layout, const uint8_t* row) {
  const Schema& schema = layout.schema();
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    ColumnVector& dst = out.mutable_column(offset + c);
    if (layout.IsNull(row, c)) {
      dst.AppendNull();
      continue;
    }
    switch (schema.field(c).type) {
      case TypeId::kBool: dst.AppendBool(layout.GetBool(row, c)); break;
      case TypeId::kInt32: dst.AppendInt32(layout.GetInt32(row, c)); break;
      case TypeId::kInt64: dst.AppendInt64(layout.GetInt64(row, c)); break;
      case TypeId::kFloat64:
        dst.AppendFloat64(layout.GetFloat64(row, c));
        break;
      case TypeId::kString: dst.AppendString(layout.GetString(row, c)); break;
    }
  }
}

/// Exact key equality for join verification when key codes can collide
/// (strings and doubles hash into their code).
bool KeysReallyEqual(const Value& a, const Value& b) { return a == b; }

/// Appends `count` null cells starting at column `offset` (left-outer
/// padding for unmatched rows).
void AppendNullColumns(ColumnarChunk& out, size_t offset, size_t count) {
  for (size_t c = 0; c < count; ++c) {
    out.mutable_column(offset + c).AppendNull();
  }
}

}  // namespace

void AppendJoinedRow(ColumnarChunk& out, const ColumnarChunk& left, size_t li,
                     const ColumnarChunk& right, size_t ri) {
  AppendColumnsAt(out, 0, left, li);
  AppendColumnsAt(out, left.num_columns(), right, ri);
}

// ---- ScanExec ------------------------------------------------------------

Result<TableHandle> ScanExec::ExecuteImpl(Session& session,
                                          QueryMetrics& metrics) const {
  return dataset_->ScanAsColumnar(session, metrics);
}

// ---- FilterExec ------------------------------------------------------------

namespace {

/// Vectorized selection for `numeric column <op> literal` and string
/// equality (`string column =/!= literal`). Returns true and fills
/// `selected` when the fast path applies.
bool TryVectorizedFilter(const Expr& predicate, const ColumnarChunk& chunk,
                         std::vector<uint32_t>& selected) {
  auto match = [](const Expr& e) -> const CompareExpr* {
    if (e.kind() != Expr::Kind::kCompare) return nullptr;
    return static_cast<const CompareExpr*>(&e);
  };
  const CompareExpr* cmp = match(predicate);
  if (cmp == nullptr) return false;
  const Expr* lhs = cmp->left().get();
  const Expr* rhs = cmp->right().get();
  CompareOp op = cmp->op();
  if (lhs->kind() == Expr::Kind::kLiteral &&
      rhs->kind() == Expr::Kind::kColumn) {
    std::swap(lhs, rhs);
    switch (op) {  // mirror the comparison
      case CompareOp::kLt: op = CompareOp::kGt; break;
      case CompareOp::kLe: op = CompareOp::kGe; break;
      case CompareOp::kGt: op = CompareOp::kLt; break;
      case CompareOp::kGe: op = CompareOp::kLe; break;
      default: break;
    }
  }
  if (lhs->kind() != Expr::Kind::kColumn ||
      rhs->kind() != Expr::Kind::kLiteral) {
    return false;
  }
  const auto* col_expr = static_cast<const ColumnExpr*>(lhs);
  const auto* lit_expr = static_cast<const LiteralExpr*>(rhs);
  if (!col_expr->resolved() || lit_expr->value().is_null()) return false;
  const ColumnVector& col =
      chunk.column(static_cast<size_t>(col_expr->index()));
  if (col.type() == TypeId::kBool) return false;
  if (col.type() == TypeId::kString) {
    // String equality compares the arena bytes directly — no per-row Value
    // boxing. Ordering comparisons stay on the generic row-wise path.
    if (lit_expr->value().type() != TypeId::kString) return false;
    if (op != CompareOp::kEq && op != CompareOp::kNe) return false;
    const std::string& lit = lit_expr->value().string_value();
    const size_t n = chunk.num_rows();
    selected.clear();
    for (size_t i = 0; i < n; ++i) {
      if (col.IsNull(i)) continue;
      const bool eq = col.StringAt(i) == lit;
      if (eq == (op == CompareOp::kEq)) {
        selected.push_back(static_cast<uint32_t>(i));
      }
    }
    return true;
  }
  if (lit_expr->value().type() == TypeId::kString) return false;

  const double lit = lit_expr->value().AsFloat64();
  const size_t n = chunk.num_rows();
  selected.clear();
  for (size_t i = 0; i < n; ++i) {
    if (col.IsNull(i)) continue;
    const double v = col.NumericAt(i);
    bool keep = false;
    switch (op) {
      case CompareOp::kEq: keep = v == lit; break;
      case CompareOp::kNe: keep = v != lit; break;
      case CompareOp::kLt: keep = v < lit; break;
      case CompareOp::kLe: keep = v <= lit; break;
      case CompareOp::kGt: keep = v > lit; break;
      case CompareOp::kGe: keep = v >= lit; break;
    }
    if (keep) selected.push_back(static_cast<uint32_t>(i));
  }
  return true;
}

}  // namespace

Result<TableHandle> FilterExec::ExecuteImpl(Session& session,
                                            QueryMetrics& metrics) const {
  IDF_ASSIGN_OR_RETURN(TableHandle in, child()->Execute(session, metrics));
  IDF_ASSIGN_OR_RETURN(ExprPtr resolved, predicate_->Resolve(*in.schema));

  TableSink sink(session, in.schema, in.num_partitions);
  StageSpec stage;
  stage.name = "filter";
  for (uint32_t p = 0; p < in.num_partitions; ++p) {
    stage.tasks.push_back(TaskSpec{
        session.cluster().HomeExecutorFor(in.rdd_id, p),
        {},
        0,
        [&, p](TaskContext& ctx) -> Status {
          // Keep the input chunk pinned for the whole body: column
          // references are held across appends that may trigger eviction.
          mem::AccessScope scope;
          Result<ChunkPtr> chunk = FetchChunk(ctx, in, p);
          IDF_RETURN_IF_ERROR(chunk.status());
          const ColumnarChunk& input = **chunk;
          ctx.metrics().rows_read += input.num_rows();

          auto out = std::make_shared<ColumnarChunk>(in.schema);
          std::vector<uint32_t> selected;
          if (TryVectorizedFilter(*resolved, input, selected)) {
            for (uint32_t row : selected) AppendRowCopy(*out, input, row);
          } else {
            ChunkRowAccessor accessor(input, 0);
            for (size_t i = 0; i < input.num_rows(); ++i) {
              accessor.set_row(i);
              const Value keep = resolved->Eval(accessor);
              if (!keep.is_null() && keep.bool_value()) {
                AppendRowCopy(*out, input, i);
              }
            }
          }
          out->SetRowCount(out->column(0).size());
          sink.Emit(ctx, p, std::move(out));
          return Status::OK();
        },
        {{in.rdd_id, p}}});
  }
  IDF_ASSIGN_OR_RETURN(StageMetrics sm, session.cluster().RunStage(stage));
  metrics.MergeStage(sm);
  return sink.Finish();
}

// ---- ProjectExec ------------------------------------------------------------

std::string ProjectExec::Describe() const {
  std::string s = "ProjectExec [";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i) s += ", ";
    s += columns_[i];
  }
  return s + "]";
}

Result<TableHandle> ProjectExec::ExecuteImpl(Session& session,
                                             QueryMetrics& metrics) const {
  IDF_ASSIGN_OR_RETURN(TableHandle in, child()->Execute(session, metrics));
  IDF_ASSIGN_OR_RETURN(Schema out_schema, in.schema->Project(columns_));
  auto out_schema_ptr = std::make_shared<Schema>(std::move(out_schema));
  std::vector<size_t> indices;
  for (const std::string& name : columns_) {
    IDF_ASSIGN_OR_RETURN(size_t idx, in.schema->FieldIndex(name));
    indices.push_back(idx);
  }

  TableSink sink(session, out_schema_ptr, in.num_partitions);
  StageSpec stage;
  stage.name = "project";
  for (uint32_t p = 0; p < in.num_partitions; ++p) {
    stage.tasks.push_back(TaskSpec{
        session.cluster().HomeExecutorFor(in.rdd_id, p),
        {},
        0,
        [&, p](TaskContext& ctx) -> Status {
          mem::AccessScope scope;
          Result<ChunkPtr> chunk = FetchChunk(ctx, in, p);
          IDF_RETURN_IF_ERROR(chunk.status());
          const ColumnarChunk& input = **chunk;
          ctx.metrics().rows_read += input.num_rows();

          // Columnar projection: copy whole column vectors — no row work.
          auto out = std::make_shared<ColumnarChunk>(out_schema_ptr);
          for (size_t c = 0; c < indices.size(); ++c) {
            out->mutable_column(c) = input.column(indices[c]);
          }
          out->SetRowCount(input.num_rows());
          sink.Emit(ctx, p, std::move(out));
          return Status::OK();
        },
        {{in.rdd_id, p}}});
  }
  IDF_ASSIGN_OR_RETURN(StageMetrics sm, session.cluster().RunStage(stage));
  metrics.MergeStage(sm);
  return sink.Finish();
}

// ---- JoinExec ------------------------------------------------------------

std::string JoinExec::Describe() const {
  const char* mode = "auto";
  switch (mode_) {
    case Mode::kAuto: mode = "auto"; break;
    case Mode::kBroadcastHash: mode = "broadcast-hash"; break;
    case Mode::kShuffledHash: mode = "shuffled-hash"; break;
    case Mode::kSortMerge: mode = "sort-merge"; break;
  }
  return std::string("JoinExec[") + mode +
         (join_type_ == JoinType::kLeftOuter ? ",left-outer" : "") + "] " +
         left_key_ + " = " + right_key_;
}

Result<TableHandle> JoinExec::ExecuteImpl(Session& session,
                                          QueryMetrics& metrics) const {
  IDF_ASSIGN_OR_RETURN(TableHandle lh,
                       children_[0]->Execute(session, metrics));
  IDF_ASSIGN_OR_RETURN(TableHandle rh,
                       children_[1]->Execute(session, metrics));
  IDF_ASSIGN_OR_RETURN(size_t lkey, lh.schema->FieldIndex(left_key_));
  IDF_ASSIGN_OR_RETURN(size_t rkey, rh.schema->FieldIndex(right_key_));

  Mode mode = mode_;
  // Left-outer joins must probe with the left side so its unmatched rows
  // can be emitted; inner joins build on the smaller relation.
  const bool build_left = join_type_ == JoinType::kInner &&
                          lh.total_bytes <= rh.total_bytes;
  if (mode == Mode::kAuto) {
    const uint64_t build_bytes = build_left ? lh.total_bytes : rh.total_bytes;
    mode = build_bytes <= session.options().broadcast_threshold_bytes
               ? Mode::kBroadcastHash
               : Mode::kShuffledHash;
  }
  switch (mode) {
    case Mode::kBroadcastHash:
      return BroadcastHashJoin(session, lh, rh, lkey, rkey, build_left,
                               metrics);
    case Mode::kShuffledHash:
      return ShuffledJoin(session, lh, rh, lkey, rkey, /*sort_merge=*/false,
                          metrics);
    case Mode::kSortMerge:
      return ShuffledJoin(session, lh, rh, lkey, rkey, /*sort_merge=*/true,
                          metrics);
    case Mode::kAuto:
      break;
  }
  return Status::Internal("unresolved join mode");
}

Result<TableHandle> JoinExec::BroadcastHashJoin(
    Session& session, const TableHandle& lh, const TableHandle& rh,
    size_t lkey, size_t rkey, bool build_left, QueryMetrics& metrics) const {
  Cluster& cluster = session.cluster();
  const TableHandle& build = build_left ? lh : rh;
  const TableHandle& probe = build_left ? rh : lh;
  const size_t build_key = build_left ? lkey : rkey;
  const size_t probe_key = build_left ? rkey : lkey;
  auto out_schema =
      std::make_shared<Schema>(lh.schema->ConcatForJoin(*rh.schema));
  const bool verify =
      KeyCodeNeedsVerify(build.schema->field(build_key).type) ||
      KeyCodeNeedsVerify(probe.schema->field(probe_key).type);

  // Driver collects the build side and constructs the hash table once —
  // vanilla Spark rebuilds this on *every* query execution (Fig. 1's story).
  TaskContext driver_ctx(&cluster, cluster.AliveExecutors().front());
  std::vector<ChunkPtr> build_chunks;
  // The build loop below holds column references while walking *several*
  // chunks; a scope keeps every build chunk pinned until the table is up.
  mem::AccessScope build_scope;
  for (uint32_t p = 0; p < build.num_partitions; ++p) {
    IDF_ASSIGN_OR_RETURN(ChunkPtr chunk, FetchChunk(driver_ctx, build, p));
    build_chunks.push_back(std::move(chunk));
  }

  Stopwatch build_timer;
  std::unordered_map<uint64_t, std::vector<uint64_t>> hash_table;
  hash_table.reserve(build.num_rows);
  for (size_t ci = 0; ci < build_chunks.size(); ++ci) {
    const ColumnarChunk& chunk = *build_chunks[ci];
    const ColumnVector& key_col = chunk.column(build_key);
    for (size_t ri = 0; ri < chunk.num_rows(); ++ri) {
      if (key_col.IsNull(ri)) continue;  // inner join drops null keys
      hash_table[key_col.KeyCodeAt(ri)].push_back(
          (static_cast<uint64_t>(ci) << 32) | ri);
    }
  }
  const double build_seconds = build_timer.ElapsedSeconds();
  metrics.totals.hash_build_seconds += build_seconds;
  metrics.real_seconds += build_seconds;

  // Simulated cost: ship the build relation to every worker, then every
  // executor builds its own hash table.
  cluster.simulator().Broadcast(build.total_bytes);
  StageSpec replica_stage;
  replica_stage.name = "broadcast hash build";
  for (ExecutorId e : cluster.AliveExecutors()) {
    replica_stage.tasks.push_back(
        TaskSpec{e,
                 {},
                 build_seconds,
                 [](TaskContext&) {
                   return Status::OK();  // modeled only; driver built for real
                 },
                 {}});
  }
  IDF_ASSIGN_OR_RETURN(StageMetrics replica_metrics,
                       cluster.RunStage(replica_stage));
  metrics.MergeStage(replica_metrics);

  // Probe stage: one task per probe partition, local to the probe block.
  TableSink sink(session, out_schema, probe.num_partitions);
  StageSpec stage;
  stage.name = "broadcast hash probe";
  for (uint32_t p = 0; p < probe.num_partitions; ++p) {
    stage.tasks.push_back(TaskSpec{
        cluster.HomeExecutorFor(probe.rdd_id, p),
        {},
        0,
        [&, p](TaskContext& ctx) -> Status {
          // Pins the probe chunk AND every build chunk touched below — the
          // body holds `key_col` across reads of other chunks, so transient
          // pins alone would not keep the probe chunk resident.
          mem::AccessScope scope;
          Result<ChunkPtr> chunk = FetchChunk(ctx, probe, p);
          IDF_RETURN_IF_ERROR(chunk.status());
          const ColumnarChunk& probe_chunk = **chunk;
          const ColumnVector& key_col = probe_chunk.column(probe_key);
          ctx.metrics().rows_read += probe_chunk.num_rows();

          // Left-outer pads unmatched probe (=left) rows with nulls.
          const bool outer = join_type_ == JoinType::kLeftOuter;
          const size_t probe_cols = probe.schema->num_fields();
          const size_t build_cols = build.schema->num_fields();
          auto out = std::make_shared<ColumnarChunk>(out_schema);
          auto emit_unmatched = [&](size_t ri) {
            AppendColumnsAt(*out, 0, probe_chunk, ri);
            AppendNullColumns(*out, probe_cols, build_cols);
          };
          for (size_t ri = 0; ri < probe_chunk.num_rows(); ++ri) {
            if (key_col.IsNull(ri)) {
              if (outer) emit_unmatched(ri);
              continue;
            }
            auto it = hash_table.find(key_col.KeyCodeAt(ri));
            bool matched = false;
            if (it != hash_table.end()) {
              for (uint64_t packed : it->second) {
                const size_t bci = packed >> 32;
                const size_t bri = packed & 0xffffffffu;
                const ColumnarChunk& bchunk = *build_chunks[bci];
                if (verify &&
                    !KeysReallyEqual(bchunk.ValueAt(bri, build_key),
                                     probe_chunk.ValueAt(ri, probe_key))) {
                  continue;
                }
                matched = true;
                if (build_left) {
                  AppendJoinedRow(*out, bchunk, bri, probe_chunk, ri);
                } else {
                  AppendJoinedRow(*out, probe_chunk, ri, bchunk, bri);
                }
              }
            }
            if (outer && !matched) emit_unmatched(ri);
          }
          out->SetRowCount(out->column(0).size());
          sink.Emit(ctx, p, std::move(out));
          return Status::OK();
        },
        {{probe.rdd_id, p}}});
  }
  IDF_ASSIGN_OR_RETURN(StageMetrics sm, cluster.RunStage(stage));
  metrics.MergeStage(sm);
  return sink.Finish();
}

Result<TableHandle> JoinExec::ShuffledJoin(Session& session,
                                           const TableHandle& lh,
                                           const TableHandle& rh, size_t lkey,
                                           size_t rkey, bool sort_merge,
                                           QueryMetrics& metrics) const {
  Cluster& cluster = session.cluster();
  const uint32_t R = std::max(lh.num_partitions, rh.num_partitions);
  auto out_schema =
      std::make_shared<Schema>(lh.schema->ConcatForJoin(*rh.schema));
  RowLayout llayout(lh.schema);
  RowLayout rlayout(rh.schema);
  const bool verify = KeyCodeNeedsVerify(lh.schema->field(lkey).type) ||
                      KeyCodeNeedsVerify(rh.schema->field(rkey).type);

  const uint64_t lshuffle = cluster.shuffle().NewShuffle(lh.num_partitions, R);
  const uint64_t rshuffle = cluster.shuffle().NewShuffle(rh.num_partitions, R);

  const bool outer = join_type_ == JoinType::kLeftOuter;

  // Map stages: partition each side's rows by key-code hash. For a
  // left-outer join the left side's null-key rows still need emitting, so
  // they route to partition 0 (they can never match anything).
  auto run_map_stage = [&](const TableHandle& table, const RowLayout& layout,
                           size_t key, uint64_t shuffle_id,
                           bool keep_null_keys, const char* name) -> Status {
    StageSpec stage;
    stage.name = name;
    for (uint32_t p = 0; p < table.num_partitions; ++p) {
      stage.tasks.push_back(TaskSpec{
          cluster.HomeExecutorFor(table.rdd_id, p),
          {},
          0,
          [&, p, shuffle_id, key](TaskContext& ctx) -> Status {
            // `key_col` is held across per-row encodes; keep the chunk
            // pinned for the whole map task.
            mem::AccessScope scope;
            Result<ChunkPtr> chunk = FetchChunk(ctx, table, p);
            IDF_RETURN_IF_ERROR(chunk.status());
            const ColumnarChunk& input = **chunk;
            const ColumnVector& key_col = input.column(key);
            ctx.metrics().rows_read += input.num_rows();

            std::vector<ShuffleBuffer> buffers(R);
            std::vector<uint8_t> scratch;
            for (size_t i = 0; i < input.num_rows(); ++i) {
              uint32_t rp;
              if (key_col.IsNull(i)) {
                if (!keep_null_keys) continue;
                rp = 0;
              } else {
                rp = HashPartition(key_col.KeyCodeAt(i), R);
              }
              input.EncodeRowTo(layout, i, scratch);
              buffers[rp].AppendRow(scratch.data(),
                                    static_cast<uint32_t>(scratch.size()));
            }
            for (uint32_t rp = 0; rp < R; ++rp) {
              if (buffers[rp].num_rows == 0) continue;
              buffers[rp].source = ctx.executor();
              ctx.metrics().shuffle_bytes_written += buffers[rp].bytes.size();
              cluster.shuffle().PutMapOutput(shuffle_id, p, rp,
                                             std::move(buffers[rp]));
            }
            return Status::OK();
          },
          {{table.rdd_id, p}}});
    }
    IDF_ASSIGN_OR_RETURN(StageMetrics sm, cluster.RunStage(stage));
    metrics.MergeStage(sm);
    return Status::OK();
  };
  IDF_RETURN_IF_ERROR(run_map_stage(lh, llayout, lkey, lshuffle, outer,
                                    "shuffle map (left)"));
  IDF_RETURN_IF_ERROR(run_map_stage(rh, rlayout, rkey, rshuffle, false,
                                    "shuffle map (right)"));

  // Build on the smaller side (vanilla heuristic); outer joins must probe
  // with the left side.
  const bool build_left = !outer && lh.total_bytes <= rh.total_bytes;

  TableSink sink(session, out_schema, R);
  StageSpec reduce;
  reduce.name = sort_merge ? "sort-merge reduce" : "shuffled-hash reduce";
  for (uint32_t rp = 0; rp < R; ++rp) {
    reduce.tasks.push_back(TaskSpec{
        cluster.HomeExecutorFor(sink.rdd_id(), rp),
        {},
        0,
        [&, rp](TaskContext& ctx) -> Status {
          auto fetch = [&](uint64_t shuffle_id) {
            auto inputs = cluster.shuffle().FetchReduceInputs(shuffle_id, rp);
            for (const auto& buf : inputs) {
              ctx.AddRead(buf->source, buf->bytes.size());
            }
            return inputs;
          };
          auto linputs = fetch(lshuffle);
          auto rinputs = fetch(rshuffle);

          // Collect row pointers per side.
          auto rows_of = [](const auto& inputs) {
            std::vector<const uint8_t*> rows;
            for (const auto& buf : inputs) {
              ShuffleBufferReader reader(*buf);
              while (reader.HasNext()) rows.push_back(reader.Next());
            }
            return rows;
          };
          std::vector<const uint8_t*> lrows = rows_of(linputs);
          std::vector<const uint8_t*> rrows = rows_of(rinputs);
          ctx.metrics().rows_read += lrows.size() + rrows.size();

          auto out = std::make_shared<ColumnarChunk>(out_schema);
          auto emit = [&](const uint8_t* lrow, const uint8_t* rrow) {
            AppendColumnsFromBinary(*out, 0, llayout, lrow);
            AppendColumnsFromBinary(*out, lh.schema->num_fields(), rlayout,
                                    rrow);
          };
          auto emit_left_only = [&](const uint8_t* lrow) {
            AppendColumnsFromBinary(*out, 0, llayout, lrow);
            AppendNullColumns(*out, lh.schema->num_fields(),
                              rh.schema->num_fields());
          };

          if (sort_merge) {
            // Sort both sides by key value, then merge equal-key groups.
            auto sort_side = [](std::vector<const uint8_t*>& rows,
                                const RowLayout& layout, size_t key) {
              std::sort(rows.begin(), rows.end(),
                        [&](const uint8_t* a, const uint8_t* b) {
                          return layout.GetValue(a, key)
                                     .Compare(layout.GetValue(b, key)) < 0;
                        });
            };
            sort_side(lrows, llayout, lkey);
            sort_side(rrows, rlayout, rkey);
            size_t li = 0, ri = 0;
            while (li < lrows.size() && ri < rrows.size()) {
              const Value lv = llayout.GetValue(lrows[li], lkey);
              const Value rv = rlayout.GetValue(rrows[ri], rkey);
              // Null left keys sort first and never match.
              if (lv.is_null()) {
                if (outer) emit_left_only(lrows[li]);
                ++li;
                continue;
              }
              if (rv.is_null()) {
                ++ri;
                continue;
              }
              const int cmp = lv.Compare(rv);
              if (cmp < 0) {
                if (outer) emit_left_only(lrows[li]);
                ++li;
              } else if (cmp > 0) {
                ++ri;
              } else {
                size_t lend = li, rend = ri;
                while (lend < lrows.size() &&
                       llayout.GetValue(lrows[lend], lkey).Compare(lv) == 0) {
                  ++lend;
                }
                while (rend < rrows.size() &&
                       rlayout.GetValue(rrows[rend], rkey).Compare(rv) == 0) {
                  ++rend;
                }
                for (size_t a = li; a < lend; ++a) {
                  for (size_t b = ri; b < rend; ++b) {
                    emit(lrows[a], rrows[b]);
                  }
                }
                li = lend;
                ri = rend;
              }
            }
            if (outer) {
              for (; li < lrows.size(); ++li) emit_left_only(lrows[li]);
            }
          } else {
            // Hash join: build on the configured build side.
            const auto& build_rows = build_left ? lrows : rrows;
            const auto& probe_rows = build_left ? rrows : lrows;
            const RowLayout& blayout = build_left ? llayout : rlayout;
            const RowLayout& playout = build_left ? rlayout : llayout;
            const size_t bkey = build_left ? lkey : rkey;
            const size_t pkey = build_left ? rkey : lkey;

            Stopwatch build_timer;
            std::unordered_map<uint64_t, std::vector<const uint8_t*>> ht;
            ht.reserve(build_rows.size());
            for (const uint8_t* row : build_rows) {
              ht[blayout.KeyCode(row, bkey)].push_back(row);
            }
            ctx.metrics().hash_build_seconds += build_timer.ElapsedSeconds();

            for (const uint8_t* prow : probe_rows) {
              // With outer joins the probe side is always the left relation.
              if (playout.IsNull(prow, pkey)) {
                if (outer) emit_left_only(prow);
                continue;
              }
              auto it = ht.find(playout.KeyCode(prow, pkey));
              bool matched = false;
              if (it != ht.end()) {
                for (const uint8_t* brow : it->second) {
                  if (verify &&
                      !KeysReallyEqual(blayout.GetValue(brow, bkey),
                                       playout.GetValue(prow, pkey))) {
                    continue;
                  }
                  matched = true;
                  if (build_left) {
                    emit(brow, prow);
                  } else {
                    emit(prow, brow);
                  }
                }
              }
              if (outer && !matched) emit_left_only(prow);
            }
          }
          out->SetRowCount(out->column(0).size());
          sink.Emit(ctx, rp, std::move(out));
          return Status::OK();
        },
        {}});
  }
  IDF_ASSIGN_OR_RETURN(StageMetrics sm, cluster.RunStage(reduce));
  metrics.MergeStage(sm);
  cluster.shuffle().Release(lshuffle);
  cluster.shuffle().Release(rshuffle);
  return sink.Finish();
}

// ---- HashAggExec ------------------------------------------------------------

Result<TableHandle> HashAggExec::ExecuteImpl(Session& session,
                                             QueryMetrics& metrics) const {
  using agg_internal::Accum;
  using agg_internal::FindOrCreateGroup;
  using agg_internal::GroupCode;
  using agg_internal::GroupMap;
  using agg_internal::GroupState;
  using agg_internal::ResolvedAggs;

  Cluster& cluster = session.cluster();
  IDF_ASSIGN_OR_RETURN(TableHandle in, child()->Execute(session, metrics));
  IDF_ASSIGN_OR_RETURN(ResolvedAggs resolved,
                       ResolvedAggs::Resolve(*in.schema, group_by_, aggs_));
  RowLayout partial_layout(resolved.partial_schema);

  const uint32_t R = resolved.group_idx.empty() ? 1 : in.num_partitions;
  const uint64_t shuffle_id =
      cluster.shuffle().NewShuffle(in.num_partitions, R);

  // ---- partial aggregation per input partition ----
  StageSpec partial_stage;
  partial_stage.name = "partial aggregate";
  for (uint32_t p = 0; p < in.num_partitions; ++p) {
    partial_stage.tasks.push_back(TaskSpec{
        cluster.HomeExecutorFor(in.rdd_id, p),
        {},
        0,
        [&, p](TaskContext& ctx) -> Status {
          mem::AccessScope scope;
          Result<ChunkPtr> chunk = FetchChunk(ctx, in, p);
          IDF_RETURN_IF_ERROR(chunk.status());
          const ColumnarChunk& input = **chunk;
          ctx.metrics().rows_read += input.num_rows();

          GroupMap groups;
          for (size_t i = 0; i < input.num_rows(); ++i) {
            RowVec key;
            key.reserve(resolved.group_idx.size());
            for (size_t g : resolved.group_idx) {
              key.push_back(input.ValueAt(i, g));
            }
            GroupState& state =
                FindOrCreateGroup(groups, std::move(key), aggs_.size());
            for (size_t a = 0; a < aggs_.size(); ++a) {
              const Value v =
                  resolved.agg_idx[a] < 0
                      ? Value::Int64(1)
                      : input.ValueAt(
                            i, static_cast<size_t>(resolved.agg_idx[a]));
              state.accums[a].AddValue(aggs_[a], v);
            }
          }

          // Serialize partial rows to the shuffle.
          std::vector<ShuffleBuffer> buffers(R);
          std::vector<uint8_t> scratch;
          for (const auto& [code, bucket] : groups) {
            const uint32_t rp =
                resolved.group_idx.empty() ? 0 : HashPartition(code, R);
            for (const GroupState& state : bucket) {
              RowVec row = resolved.EncodePartial(state, aggs_);
              Result<uint32_t> size = partial_layout.ComputeRowSize(row);
              IDF_RETURN_IF_ERROR(size.status());
              scratch.resize(*size);
              partial_layout.EncodeRow(row, scratch.data(),
                                       PackedRowPtr::Null());
              buffers[rp].AppendRow(scratch.data(), *size);
            }
          }
          for (uint32_t rp = 0; rp < R; ++rp) {
            if (buffers[rp].num_rows == 0) continue;
            buffers[rp].source = ctx.executor();
            ctx.metrics().shuffle_bytes_written += buffers[rp].bytes.size();
            cluster.shuffle().PutMapOutput(shuffle_id, p, rp,
                                           std::move(buffers[rp]));
          }
          return Status::OK();
        },
        {{in.rdd_id, p}}});
  }
  IDF_ASSIGN_OR_RETURN(StageMetrics psm, cluster.RunStage(partial_stage));
  metrics.MergeStage(psm);

  IDF_ASSIGN_OR_RETURN(
      TableHandle out,
      FinalizeAggregation(session, metrics, shuffle_id, R, in.schema,
                          group_by_, aggs_, resolved));
  cluster.shuffle().Release(shuffle_id);
  return out;
}

Result<TableHandle> FinalizeAggregation(
    Session& session, QueryMetrics& metrics, uint64_t shuffle_id, uint32_t R,
    const SchemaPtr& input_schema, const std::vector<std::string>& group_by,
    const std::vector<AggSpec>& aggs,
    const agg_internal::ResolvedAggs& resolved) {
  using agg_internal::Accum;
  using agg_internal::FindOrCreateGroup;
  using agg_internal::GroupMap;
  using agg_internal::GroupState;

  Cluster& cluster = session.cluster();
  RowLayout partial_layout(resolved.partial_schema);

  // Output schema comes from the logical Aggregate node semantics.
  TableHandle fake;
  fake.schema = input_schema;
  fake.rdd_id = 0;
  fake.num_partitions = 1;
  auto schema_node = std::make_shared<AggregateNode>(
      PlanPtr(std::make_shared<ScanNode>(
          std::make_shared<CachedTable>(fake, "agg-input"))),
      group_by, aggs);
  IDF_ASSIGN_OR_RETURN(Schema out_schema_val, schema_node->OutputSchema());
  auto out_schema = std::make_shared<Schema>(std::move(out_schema_val));

  TableSink sink(session, out_schema, R);
  StageSpec final_stage;
  final_stage.name = "final aggregate";
  for (uint32_t rp = 0; rp < R; ++rp) {
    final_stage.tasks.push_back(TaskSpec{
        cluster.HomeExecutorFor(sink.rdd_id(), rp),
        {},
        0,
        [&, rp](TaskContext& ctx) -> Status {
          auto inputs = cluster.shuffle().FetchReduceInputs(shuffle_id, rp);
          GroupMap groups;
          for (const auto& buf : inputs) {
            ctx.AddRead(buf->source, buf->bytes.size());
            ShuffleBufferReader reader(*buf);
            while (reader.HasNext()) {
              const uint8_t* row = reader.Next();
              RowVec partial = partial_layout.DecodeRow(row);
              RowVec key;
              std::vector<Accum> others;
              resolved.DecodePartial(partial, &key, &others);
              GroupState& state =
                  FindOrCreateGroup(groups, std::move(key), aggs.size());
              for (size_t a = 0; a < aggs.size(); ++a) {
                state.accums[a].Merge(aggs[a], others[a]);
              }
            }
          }

          auto out = std::make_shared<ColumnarChunk>(out_schema);
          for (const auto& [code, bucket] : groups) {
            for (const GroupState& state : bucket) {
              RowVec row = state.group_values;
              for (size_t a = 0; a < aggs.size(); ++a) {
                row.push_back(
                    state.accums[a].Finish(aggs[a], resolved.agg_type[a]));
              }
              IDF_RETURN_IF_ERROR(out->AppendRow(row));
            }
          }
          // Global aggregates emit one row even for empty input.
          if (resolved.group_idx.empty() && groups.empty()) {
            RowVec row;
            for (size_t a = 0; a < aggs.size(); ++a) {
              row.push_back(Accum{}.Finish(aggs[a], resolved.agg_type[a]));
            }
            IDF_RETURN_IF_ERROR(out->AppendRow(row));
          }
          sink.Emit(ctx, rp, std::move(out));
          return Status::OK();
        },
        {}});
  }
  IDF_ASSIGN_OR_RETURN(StageMetrics fsm, cluster.RunStage(final_stage));
  metrics.MergeStage(fsm);
  return sink.Finish();
}

// ---- UnionExec ------------------------------------------------------------

Result<TableHandle> UnionExec::ExecuteImpl(Session& session,
                                           QueryMetrics& metrics) const {
  Cluster& cluster = session.cluster();
  IDF_ASSIGN_OR_RETURN(TableHandle lh, children_[0]->Execute(session, metrics));
  IDF_ASSIGN_OR_RETURN(TableHandle rh, children_[1]->Execute(session, metrics));
  if (*lh.schema != *rh.schema) {
    return Status::InvalidArgument("UNION sides have different schemas");
  }

  // Zero-copy: register the existing chunks under the output RDD id. The
  // stage exists so the re-homing shows up in scheduling like any other op.
  TableSink sink(session, lh.schema, lh.num_partitions + rh.num_partitions);
  StageSpec stage;
  stage.name = "union";
  auto add_side = [&](const TableHandle& side, uint32_t offset) {
    for (uint32_t p = 0; p < side.num_partitions; ++p) {
      stage.tasks.push_back(TaskSpec{
          cluster.HomeExecutorFor(side.rdd_id, p),
          {},
          0,
          [&, p, offset, side](TaskContext& ctx) -> Status {
            Result<ChunkPtr> chunk = FetchChunk(ctx, side, p);
            IDF_RETURN_IF_ERROR(chunk.status());
            // Re-emitting an already-sealed chunk: SealForCache keeps the
            // first identity, so the pass-through costs nothing.
            sink.Emit(ctx, offset + p, *chunk);
            return Status::OK();
          },
          {{side.rdd_id, p}}});
    }
  };
  add_side(lh, 0);
  add_side(rh, lh.num_partitions);
  IDF_ASSIGN_OR_RETURN(StageMetrics sm, cluster.RunStage(stage));
  metrics.MergeStage(sm);
  return sink.Finish();
}

// ---- SortExec ------------------------------------------------------------

std::string SortExec::Describe() const {
  std::string s = "SortExec [";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i) s += ", ";
    s += keys_[i].column;
    if (keys_[i].descending) s += " DESC";
  }
  return s + "]";
}

Result<TableHandle> SortExec::ExecuteImpl(Session& session,
                                          QueryMetrics& metrics) const {
  Cluster& cluster = session.cluster();
  IDF_ASSIGN_OR_RETURN(TableHandle in, child()->Execute(session, metrics));
  std::vector<size_t> key_idx;
  for (const SortKey& key : keys_) {
    IDF_ASSIGN_OR_RETURN(size_t idx, in.schema->FieldIndex(key.column));
    key_idx.push_back(idx);
  }

  TableSink sink(session, in.schema, 1);
  StageSpec stage;
  stage.name = "sort";
  std::vector<PartitionInput> all_inputs;
  for (uint32_t p = 0; p < in.num_partitions; ++p) {
    all_inputs.push_back({in.rdd_id, p});
  }
  stage.tasks.push_back(TaskSpec{
      cluster.AliveExecutors().front(),
      {},
      0,
      [&](TaskContext& ctx) -> Status {
        // One task touches every partition; pin them all for the sort.
        mem::AccessScope scope;
        // Gather (chunk, row) references across all partitions, then sort.
        std::vector<ChunkPtr> chunks;
        std::vector<std::pair<uint32_t, uint32_t>> refs;
        for (uint32_t p = 0; p < in.num_partitions; ++p) {
          Result<ChunkPtr> chunk = FetchChunk(ctx, in, p);
          IDF_RETURN_IF_ERROR(chunk.status());
          const uint32_t ci = static_cast<uint32_t>(chunks.size());
          for (size_t i = 0; i < (*chunk)->num_rows(); ++i) {
            refs.emplace_back(ci, static_cast<uint32_t>(i));
          }
          chunks.push_back(std::move(*chunk));
        }
        ctx.metrics().rows_read += refs.size();

        std::stable_sort(
            refs.begin(), refs.end(),
            [&](const auto& a, const auto& b) {
              for (size_t k = 0; k < key_idx.size(); ++k) {
                const Value va = chunks[a.first]->ValueAt(a.second, key_idx[k]);
                const Value vb = chunks[b.first]->ValueAt(b.second, key_idx[k]);
                const int cmp = va.Compare(vb);
                if (cmp != 0) return keys_[k].descending ? cmp > 0 : cmp < 0;
              }
              return false;
            });

        auto out = std::make_shared<ColumnarChunk>(in.schema);
        for (const auto& [ci, ri] : refs) {
          AppendRowCopy(*out, *chunks[ci], ri);
        }
        out->SetRowCount(out->column(0).size());
        sink.Emit(ctx, 0, std::move(out));
        return Status::OK();
      },
      all_inputs});
  IDF_ASSIGN_OR_RETURN(StageMetrics sm, cluster.RunStage(stage));
  metrics.MergeStage(sm);
  return sink.Finish();
}

// ---- LimitExec ------------------------------------------------------------

Result<TableHandle> LimitExec::ExecuteImpl(Session& session,
                                           QueryMetrics& metrics) const {
  Cluster& cluster = session.cluster();
  IDF_ASSIGN_OR_RETURN(TableHandle in, child()->Execute(session, metrics));

  TableSink sink(session, in.schema, 1);
  StageSpec stage;
  stage.name = "limit";
  std::vector<PartitionInput> all_inputs;
  for (uint32_t p = 0; p < in.num_partitions; ++p) {
    all_inputs.push_back({in.rdd_id, p});
  }
  stage.tasks.push_back(TaskSpec{
      cluster.AliveExecutors().front(),
      {},
      0,
      [&](TaskContext& ctx) -> Status {
        mem::AccessScope scope;
        auto out = std::make_shared<ColumnarChunk>(in.schema);
        uint64_t taken = 0;
        for (uint32_t p = 0; p < in.num_partitions && taken < limit_; ++p) {
          Result<ChunkPtr> chunk = FetchChunk(ctx, in, p);
          IDF_RETURN_IF_ERROR(chunk.status());
          const ColumnarChunk& input = **chunk;
          for (size_t i = 0; i < input.num_rows() && taken < limit_;
               ++i, ++taken) {
            AppendRowCopy(*out, input, i);
          }
        }
        out->SetRowCount(out->column(0).size());
        sink.Emit(ctx, 0, std::move(out));
        return Status::OK();
      },
      all_inputs});
  IDF_ASSIGN_OR_RETURN(StageMetrics sm, cluster.RunStage(stage));
  metrics.MergeStage(sm);
  return sink.Finish();
}

}  // namespace idf
