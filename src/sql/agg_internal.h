// Aggregation internals shared between the vanilla HashAggExec and the
// Indexed DataFrame's row-direct aggregation (core/indexed_agg.h).
//
// Both produce identical *partial rows* — group columns followed by five
// flat state columns per aggregate (count, isum, fsum, min, max) — so the
// shuffle format and the final-merge phase are interchangeable.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "sql/plan.h"
#include "types/schema.h"

namespace idf::agg_internal {

/// Mutable accumulator state for one aggregate function.
struct Accum {
  int64_t count = 0;
  int64_t isum = 0;
  double fsum = 0;
  Value min;  // null until first value
  Value max;

  void AddValue(const AggSpec& spec, const Value& v) {
    switch (spec.fn) {
      case AggSpec::Fn::kCount:
        ++count;
        return;
      case AggSpec::Fn::kSum:
      case AggSpec::Fn::kAvg:
        if (v.is_null()) return;
        ++count;
        if (v.type() == TypeId::kFloat64) {
          fsum += v.float64_value();
        } else {
          isum += v.AsInt64();
        }
        return;
      case AggSpec::Fn::kMin:
        if (v.is_null()) return;
        if (min.is_null() || v.Compare(min) < 0) min = v;
        return;
      case AggSpec::Fn::kMax:
        if (v.is_null()) return;
        if (max.is_null() || v.Compare(max) > 0) max = v;
        return;
    }
  }

  void Merge(const AggSpec& spec, const Accum& other) {
    switch (spec.fn) {
      case AggSpec::Fn::kCount:
        count += other.count;
        return;
      case AggSpec::Fn::kSum:
      case AggSpec::Fn::kAvg:
        count += other.count;
        isum += other.isum;
        fsum += other.fsum;
        return;
      case AggSpec::Fn::kMin:
        if (!other.min.is_null() &&
            (min.is_null() || other.min.Compare(min) < 0)) {
          min = other.min;
        }
        return;
      case AggSpec::Fn::kMax:
        if (!other.max.is_null() &&
            (max.is_null() || other.max.Compare(max) > 0)) {
          max = other.max;
        }
        return;
    }
  }

  Value Finish(const AggSpec& spec, TypeId input_type) const {
    switch (spec.fn) {
      case AggSpec::Fn::kCount:
        return Value::Int64(count);
      case AggSpec::Fn::kSum:
        if (input_type == TypeId::kFloat64) return Value::Float64(fsum);
        return Value::Int64(isum);
      case AggSpec::Fn::kAvg: {
        if (count == 0) return Value::Null(TypeId::kFloat64);
        const double total =
            input_type == TypeId::kFloat64 ? fsum : static_cast<double>(isum);
        return Value::Float64(total / static_cast<double>(count));
      }
      case AggSpec::Fn::kMin:
        return min;
      case AggSpec::Fn::kMax:
        return max;
    }
    return Value();
  }
};

struct GroupState {
  RowVec group_values;
  std::vector<Accum> accums;
};

inline uint64_t GroupCode(const RowVec& group_values) {
  uint64_t code = 0x9e3779b97f4a7c15ULL;
  for (const Value& v : group_values) code = HashCombine(code, v.Hash());
  return code;
}

inline bool SameGroup(const RowVec& a, const RowVec& b) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].is_null() != b[i].is_null()) return false;
    if (!a[i].is_null() && !(a[i] == b[i])) return false;
  }
  return true;
}

using GroupMap = std::unordered_map<uint64_t, std::vector<GroupState>>;

inline GroupState& FindOrCreateGroup(GroupMap& groups, RowVec group_values,
                                     size_t num_aggs) {
  auto& bucket = groups[GroupCode(group_values)];
  for (GroupState& state : bucket) {
    if (SameGroup(state.group_values, group_values)) return state;
  }
  bucket.push_back(
      GroupState{std::move(group_values), std::vector<Accum>(num_aggs)});
  return bucket.back();
}

/// Resolved aggregation plan against an input schema: column indices, input
/// types, and the partial-row schema used on the shuffle wire.
struct ResolvedAggs {
  std::vector<size_t> group_idx;
  std::vector<int> agg_idx;  // -1 for COUNT(*)
  std::vector<TypeId> agg_type;
  SchemaPtr partial_schema;

  static Result<ResolvedAggs> Resolve(const Schema& in_schema,
                                      const std::vector<std::string>& group_by,
                                      const std::vector<AggSpec>& aggs) {
    ResolvedAggs out;
    std::vector<Field> partial_fields;
    for (const std::string& g : group_by) {
      IDF_ASSIGN_OR_RETURN(size_t idx, in_schema.FieldIndex(g));
      out.group_idx.push_back(idx);
      partial_fields.push_back(in_schema.field(idx));
    }
    for (size_t a = 0; a < aggs.size(); ++a) {
      const AggSpec& spec = aggs[a];
      if (spec.fn == AggSpec::Fn::kCount) {
        out.agg_idx.push_back(-1);
        out.agg_type.push_back(TypeId::kInt64);
      } else {
        IDF_ASSIGN_OR_RETURN(size_t idx, in_schema.FieldIndex(spec.column));
        out.agg_idx.push_back(static_cast<int>(idx));
        out.agg_type.push_back(in_schema.field(idx).type);
      }
      const std::string base = "agg" + std::to_string(a);
      partial_fields.push_back({base + "_count", TypeId::kInt64, false});
      partial_fields.push_back({base + "_isum", TypeId::kInt64, false});
      partial_fields.push_back({base + "_fsum", TypeId::kFloat64, false});
      partial_fields.push_back({base + "_min", out.agg_type[a], true});
      partial_fields.push_back({base + "_max", out.agg_type[a], true});
    }
    out.partial_schema = std::make_shared<Schema>(Schema(partial_fields));
    return out;
  }

  /// Serializes one group's partial state as a partial row.
  RowVec EncodePartial(const GroupState& state,
                       const std::vector<AggSpec>& aggs) const {
    RowVec row = state.group_values;
    for (size_t a = 0; a < aggs.size(); ++a) {
      const Accum& acc = state.accums[a];
      row.push_back(Value::Int64(acc.count));
      row.push_back(Value::Int64(acc.isum));
      row.push_back(Value::Float64(acc.fsum));
      row.push_back(acc.min);
      row.push_back(acc.max);
    }
    return row;
  }

  /// Splits a decoded partial row back into (group values, accumulators).
  void DecodePartial(const RowVec& partial, RowVec* group,
                     std::vector<Accum>* accums) const {
    group->assign(partial.begin(),
                  partial.begin() + static_cast<long>(group_idx.size()));
    accums->resize(agg_idx.size());
    for (size_t a = 0; a < agg_idx.size(); ++a) {
      const size_t base = group_idx.size() + a * 5;
      Accum& acc = (*accums)[a];
      acc.count = partial[base].int64_value();
      acc.isum = partial[base + 1].int64_value();
      acc.fsum = partial[base + 2].float64_value();
      acc.min = partial[base + 3];
      acc.max = partial[base + 4];
    }
  }
};

}  // namespace idf::agg_internal
