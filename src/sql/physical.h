// Physical operators: executable plans that run cluster stages and
// materialize distributed tables.
//
// The vanilla join algorithms here are the paper's baselines (§II):
// BroadcastHash ("hash-tables are built for one of the dataframes, broadcast
// and probed locally") and SortMerge ("data is sorted and then merged") plus
// the shuffled-hash variant. Each query (re-)builds its hash tables and
// (re-)shuffles its inputs — the recurring cost that the Indexed DataFrame's
// pre-built index amortizes away (Fig. 1).
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/columnar.h"
#include "sql/plan.h"
#include "sql/table.h"

namespace idf {

class Session;

class PhysicalOp {
 public:
  virtual ~PhysicalOp() = default;

  /// Runs this operator (and its inputs), returning the materialized output.
  /// Non-virtual: wraps the operator's ExecuteImpl with an "op" trace span
  /// and, when `metrics.op_profile` is set (EXPLAIN ANALYZE), per-operator
  /// accounting — rows/bytes out, wall time, and the inclusive TaskMetrics
  /// delta attributed to this subtree.
  Result<TableHandle> Execute(Session& session, QueryMetrics& metrics) const;

  virtual std::string Describe() const = 0;
  virtual const std::vector<std::shared_ptr<const PhysicalOp>>& children()
      const {
    static const std::vector<std::shared_ptr<const PhysicalOp>> kEmpty;
    return kEmpty;
  }
  std::string Explain(int indent = 0) const;

  /// Renders the plan annotated with the per-operator profile collected in
  /// `metrics` during an instrumented Execute (EXPLAIN ANALYZE). Self time
  /// and self metrics are derived by subtracting the children's inclusive
  /// numbers. Operators with no profile entry render un-annotated.
  std::string ExplainAnalyze(const QueryMetrics& metrics, int indent = 0) const;

 protected:
  /// The operator's actual execution logic.
  virtual Result<TableHandle> ExecuteImpl(Session& session,
                                          QueryMetrics& metrics) const = 0;
};

using PhysOpPtr = std::shared_ptr<const PhysicalOp>;

/// Scan: materialize a dataset as columnar blocks (free for cached tables,
/// a row-to-columnar conversion for indexed datasets).
class ScanExec final : public PhysicalOp {
 public:
  explicit ScanExec(DatasetPtr dataset) : dataset_(std::move(dataset)) {}
  Result<TableHandle> ExecuteImpl(Session& session,
                                  QueryMetrics& metrics) const override;
  std::string Describe() const override {
    return "ScanExec " + dataset_->name();
  }

 private:
  DatasetPtr dataset_;
};

class UnaryExec : public PhysicalOp {
 public:
  explicit UnaryExec(PhysOpPtr child) : children_{std::move(child)} {}
  const std::vector<PhysOpPtr>& children() const override { return children_; }
  const PhysOpPtr& child() const { return children_[0]; }

 private:
  std::vector<PhysOpPtr> children_;
};

/// Row filter over columnar chunks. Uses a vectorized fast path for
/// `numeric column <op> literal` predicates — the columnar cache's strength.
class FilterExec final : public UnaryExec {
 public:
  FilterExec(PhysOpPtr child, ExprPtr predicate)
      : UnaryExec(std::move(child)), predicate_(std::move(predicate)) {}
  Result<TableHandle> ExecuteImpl(Session& session,
                                  QueryMetrics& metrics) const override;
  std::string Describe() const override {
    return "FilterExec " + predicate_->ToString();
  }

 private:
  ExprPtr predicate_;
};

class ProjectExec final : public UnaryExec {
 public:
  ProjectExec(PhysOpPtr child, std::vector<std::string> columns)
      : UnaryExec(std::move(child)), columns_(std::move(columns)) {}
  Result<TableHandle> ExecuteImpl(Session& session,
                                  QueryMetrics& metrics) const override;
  std::string Describe() const override;

 private:
  std::vector<std::string> columns_;
};

/// Inner equi-join with runtime algorithm selection (Spark-like):
/// broadcast-hash when the build side is under the broadcast threshold,
/// otherwise shuffled-hash; sort-merge on request.
class JoinExec final : public PhysicalOp {
 public:
  enum class Mode { kAuto, kBroadcastHash, kShuffledHash, kSortMerge };

  JoinExec(PhysOpPtr left, PhysOpPtr right, std::string left_key,
           std::string right_key, Mode mode = Mode::kAuto,
           JoinType join_type = JoinType::kInner)
      : children_{std::move(left), std::move(right)},
        left_key_(std::move(left_key)),
        right_key_(std::move(right_key)),
        mode_(mode),
        join_type_(join_type) {}

  Result<TableHandle> ExecuteImpl(Session& session,
                                  QueryMetrics& metrics) const override;
  std::string Describe() const override;
  const std::vector<PhysOpPtr>& children() const override { return children_; }

 private:
  Result<TableHandle> BroadcastHashJoin(Session& session, const TableHandle& l,
                                        const TableHandle& r, size_t lkey,
                                        size_t rkey, bool build_left,
                                        QueryMetrics& metrics) const;
  Result<TableHandle> ShuffledJoin(Session& session, const TableHandle& l,
                                   const TableHandle& r, size_t lkey,
                                   size_t rkey, bool sort_merge,
                                   QueryMetrics& metrics) const;

  std::vector<PhysOpPtr> children_;
  std::string left_key_, right_key_;
  Mode mode_;
  JoinType join_type_;
};

/// UNION ALL: zero-copy concatenation — both inputs' chunks are re-homed
/// under the output table's RDD id without copying row data.
class UnionExec final : public PhysicalOp {
 public:
  UnionExec(PhysOpPtr left, PhysOpPtr right)
      : children_{std::move(left), std::move(right)} {}
  Result<TableHandle> ExecuteImpl(Session& session,
                                  QueryMetrics& metrics) const override;
  std::string Describe() const override { return "UnionExec"; }
  const std::vector<PhysOpPtr>& children() const override { return children_; }

 private:
  std::vector<PhysOpPtr> children_;
};

/// Global sort: collects the child into one partition ordered by the sort
/// keys (nulls first, as in Value::Compare). Executed driver-side like
/// LimitExec — adequate at this engine's scale; a production system would
/// range-partition instead.
class SortExec final : public UnaryExec {
 public:
  SortExec(PhysOpPtr child, std::vector<SortKey> keys)
      : UnaryExec(std::move(child)), keys_(std::move(keys)) {}
  Result<TableHandle> ExecuteImpl(Session& session,
                                  QueryMetrics& metrics) const override;
  std::string Describe() const override;

 private:
  std::vector<SortKey> keys_;
};

/// Two-phase hash aggregation: per-partition partial aggregates, shuffle by
/// group key, final merge.
class HashAggExec final : public UnaryExec {
 public:
  HashAggExec(PhysOpPtr child, std::vector<std::string> group_by,
              std::vector<AggSpec> aggs)
      : UnaryExec(std::move(child)),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)) {}
  Result<TableHandle> ExecuteImpl(Session& session,
                                  QueryMetrics& metrics) const override;
  std::string Describe() const override { return "HashAggExec"; }

 private:
  std::vector<std::string> group_by_;
  std::vector<AggSpec> aggs_;
};

class LimitExec final : public UnaryExec {
 public:
  LimitExec(PhysOpPtr child, uint64_t limit)
      : UnaryExec(std::move(child)), limit_(limit) {}
  Result<TableHandle> ExecuteImpl(Session& session,
                                  QueryMetrics& metrics) const override;
  std::string Describe() const override {
    return "LimitExec " + std::to_string(limit_);
  }

 private:
  uint64_t limit_;
};

// ---- shared execution helpers (also used by src/core's indexed operators) ---

/// Fetches one columnar block of a table inside a task, charging network
/// reads when the block lives elsewhere.
Result<ChunkPtr> FetchChunk(class TaskContext& ctx, const TableHandle& table,
                            uint32_t partition);

/// Accumulates per-task outputs of a stage into a new table handle.
/// Tasks call Emit(partition, chunk) from their bodies; Finish() registers
/// totals. Thread-safe (tasks may run concurrently in future revisions).
class TableSink {
 public:
  TableSink(Session& session, SchemaPtr schema, uint32_t num_partitions);

  uint64_t rdd_id() const { return rdd_id_; }
  /// Stores the chunk as this partition's block (homed at ctx.executor()).
  void Emit(class TaskContext& ctx, uint32_t partition, ChunkPtr chunk);
  TableHandle Finish();

 private:
  Session& session_;
  SchemaPtr schema_;
  uint32_t num_partitions_;
  uint64_t rdd_id_;
  std::atomic<uint64_t> rows_{0};
  std::atomic<uint64_t> bytes_{0};
};

/// Appends the row `(left chunk row li) ++ (right chunk row ri)` to an
/// output chunk whose schema is left ++ right.
void AppendJoinedRow(ColumnarChunk& out, const ColumnarChunk& left, size_t li,
                     const ColumnarChunk& right, size_t ri);

namespace agg_internal {
struct ResolvedAggs;
}

/// Final-merge phase of a two-phase aggregation: consumes the partial rows
/// written to `shuffle_id` (R reduce partitions, schema per `resolved`) and
/// materializes the aggregate output. Shared by HashAggExec and the Indexed
/// DataFrame's row-direct aggregation.
Result<TableHandle> FinalizeAggregation(
    Session& session, QueryMetrics& metrics, uint64_t shuffle_id, uint32_t R,
    const SchemaPtr& input_schema, const std::vector<std::string>& group_by,
    const std::vector<AggSpec>& aggs,
    const agg_internal::ResolvedAggs& resolved);

}  // namespace idf
