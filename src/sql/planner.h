// Rule-based optimizer + physical planner (the Catalyst substitute, §III-B).
//
// Logical rules rewrite plans to a fixpoint; strategies then translate each
// logical node into a physical operator. Both lists are extensible at
// runtime — this is the hook src/core uses to install its index-aware
// strategies ("through our library, we use the extensibility of Catalyst to
// add index-aware optimization rules") without the SQL layer knowing about
// indexes. Strategies are consulted in order; the first one that claims a
// node wins, and the built-in strategies act as the vanilla fallback.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/physical.h"
#include "sql/plan.h"

namespace idf {

class Planner;

/// A logical rewrite. Returns the (possibly unchanged) node; rules are
/// applied bottom-up repeatedly until no rule changes the plan.
struct LogicalRule {
  std::string name;
  std::function<Result<PlanPtr>(const PlanPtr&)> apply;
};

/// Maps one logical node to a physical operator, or declines (nullptr).
class Strategy {
 public:
  virtual ~Strategy() = default;
  virtual std::string name() const = 0;
  virtual Result<PhysOpPtr> TryPlan(const PlanPtr& plan,
                                    Planner& planner) const = 0;
};
using StrategyPtr = std::shared_ptr<const Strategy>;

/// Thread-safe for concurrent Plan()/Optimize() against concurrent
/// AddRule/PrependStrategy: rule/strategy lists are guarded by a mutex and
/// snapshotted per planning pass (plans in flight keep the list they
/// started with — newly installed strategies apply from the next pass).
/// Concurrent queries of one Session share this planner (docs/SERVER.md).
class Planner {
 public:
  /// Installs the default rules (CombineFilters, PushFilterBelowProject)
  /// and the vanilla strategies.
  explicit Planner(JoinExec::Mode default_join_mode = JoinExec::Mode::kAuto);

  void AddRule(LogicalRule rule) {
    std::lock_guard<std::mutex> lock(mutex_);
    rules_.push_back(std::move(rule));
  }

  /// Index-aware strategies are *prepended* so they outrank the vanilla
  /// fallbacks, mirroring how the paper's library injects rules into
  /// Catalyst ahead of stock planning.
  void PrependStrategy(StrategyPtr strategy) {
    std::lock_guard<std::mutex> lock(mutex_);
    strategies_.insert(strategies_.begin(), std::move(strategy));
  }

  /// Applies logical rules bottom-up to a fixpoint.
  Result<PlanPtr> Optimize(const PlanPtr& plan) const;

  /// Optimizes then physically plans the tree.
  Result<PhysOpPtr> Plan(const PlanPtr& plan);

  /// Physically plans an already-optimized subtree (for strategies planning
  /// their children).
  Result<PhysOpPtr> PlanNode(const PlanPtr& plan);

  JoinExec::Mode default_join_mode() const { return default_join_mode_; }
  void set_default_join_mode(JoinExec::Mode mode) {
    default_join_mode_ = mode;
  }

  std::vector<LogicalRule> rules() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return rules_;
  }

 private:
  mutable std::mutex mutex_;  // guards rules_ and strategies_
  std::vector<LogicalRule> rules_;
  std::vector<StrategyPtr> strategies_;
  JoinExec::Mode default_join_mode_;
};

/// Rebuilds a logical node with new children (used by rule application).
Result<PlanPtr> WithNewChildren(const PlanPtr& node,
                                std::vector<PlanPtr> children);

}  // namespace idf
