#include "sql/planner.h"

namespace idf {

Result<PlanPtr> WithNewChildren(const PlanPtr& node,
                                std::vector<PlanPtr> children) {
  IDF_CHECK(children.size() == node->children().size());
  switch (node->kind()) {
    case LogicalPlan::Kind::kScan:
      return node;
    case LogicalPlan::Kind::kFilter: {
      const auto& f = static_cast<const FilterNode&>(*node);
      return PlanPtr(
          std::make_shared<FilterNode>(std::move(children[0]), f.predicate()));
    }
    case LogicalPlan::Kind::kProject: {
      const auto& p = static_cast<const ProjectNode&>(*node);
      return PlanPtr(
          std::make_shared<ProjectNode>(std::move(children[0]), p.columns()));
    }
    case LogicalPlan::Kind::kJoin: {
      const auto& j = static_cast<const JoinNode&>(*node);
      return PlanPtr(std::make_shared<JoinNode>(
          std::move(children[0]), std::move(children[1]), j.left_key(),
          j.right_key(), j.join_type()));
    }
    case LogicalPlan::Kind::kSort: {
      const auto& s = static_cast<const SortNode&>(*node);
      return PlanPtr(
          std::make_shared<SortNode>(std::move(children[0]), s.keys()));
    }
    case LogicalPlan::Kind::kUnion:
      return PlanPtr(std::make_shared<UnionNode>(std::move(children[0]),
                                                 std::move(children[1])));
    case LogicalPlan::Kind::kAggregate: {
      const auto& a = static_cast<const AggregateNode&>(*node);
      return PlanPtr(std::make_shared<AggregateNode>(std::move(children[0]),
                                                     a.group_by(), a.aggs()));
    }
    case LogicalPlan::Kind::kLimit: {
      const auto& l = static_cast<const LimitNode&>(*node);
      return PlanPtr(
          std::make_shared<LimitNode>(std::move(children[0]), l.limit()));
    }
  }
  return Status::Internal("unknown logical node kind");
}

// ---- default logical rules ---------------------------------------------------

namespace {

/// Filter(Filter(x, p2), p1) => Filter(x, p1 AND p2).
Result<PlanPtr> CombineFilters(const PlanPtr& plan) {
  if (plan->kind() != LogicalPlan::Kind::kFilter) return plan;
  const auto& outer = static_cast<const FilterNode&>(*plan);
  if (outer.child()->kind() != LogicalPlan::Kind::kFilter) return plan;
  const auto& inner = static_cast<const FilterNode&>(*outer.child());
  return PlanPtr(std::make_shared<FilterNode>(
      inner.child(), And(outer.predicate(), inner.predicate())));
}

/// Filter(Project(x, cols), p) => Project(Filter(x, p), cols).
/// Valid because projections only drop/reorder columns (never rename), so a
/// predicate valid above the projection is valid below it. Pushing the
/// filter down lets an index-lookup strategy see Filter(Scan(indexed)).
Result<PlanPtr> PushFilterBelowProject(const PlanPtr& plan) {
  if (plan->kind() != LogicalPlan::Kind::kFilter) return plan;
  const auto& filter = static_cast<const FilterNode&>(*plan);
  if (filter.child()->kind() != LogicalPlan::Kind::kProject) return plan;
  const auto& project = static_cast<const ProjectNode&>(*filter.child());
  return PlanPtr(std::make_shared<ProjectNode>(
      PlanPtr(std::make_shared<FilterNode>(project.child(),
                                           filter.predicate())),
      project.columns()));
}

Result<PlanPtr> ApplyRulesBottomUp(const PlanPtr& plan,
                                   const std::vector<LogicalRule>& rules,
                                   bool* changed) {
  // Recurse into children first.
  std::vector<PlanPtr> new_children;
  new_children.reserve(plan->children().size());
  bool child_changed = false;
  for (const PlanPtr& child : plan->children()) {
    IDF_ASSIGN_OR_RETURN(PlanPtr nc, ApplyRulesBottomUp(child, rules, changed));
    child_changed |= (nc.get() != child.get());
    new_children.push_back(std::move(nc));
  }
  PlanPtr current = plan;
  if (child_changed) {
    IDF_ASSIGN_OR_RETURN(current, WithNewChildren(plan, std::move(new_children)));
  }
  for (const LogicalRule& rule : rules) {
    IDF_ASSIGN_OR_RETURN(PlanPtr next, rule.apply(current));
    if (next.get() != current.get()) {
      *changed = true;
      current = std::move(next);
    }
  }
  return current;
}

// ---- default strategies ---------------------------------------------------

class ScanStrategy final : public Strategy {
 public:
  std::string name() const override { return "Scan"; }
  Result<PhysOpPtr> TryPlan(const PlanPtr& plan, Planner&) const override {
    if (plan->kind() != LogicalPlan::Kind::kScan) return PhysOpPtr(nullptr);
    const auto& scan = static_cast<const ScanNode&>(*plan);
    return PhysOpPtr(std::make_shared<ScanExec>(scan.dataset()));
  }
};

class FilterStrategy final : public Strategy {
 public:
  std::string name() const override { return "Filter"; }
  Result<PhysOpPtr> TryPlan(const PlanPtr& plan,
                            Planner& planner) const override {
    if (plan->kind() != LogicalPlan::Kind::kFilter) return PhysOpPtr(nullptr);
    const auto& f = static_cast<const FilterNode&>(*plan);
    IDF_ASSIGN_OR_RETURN(PhysOpPtr child, planner.PlanNode(f.child()));
    return PhysOpPtr(
        std::make_shared<FilterExec>(std::move(child), f.predicate()));
  }
};

class ProjectStrategy final : public Strategy {
 public:
  std::string name() const override { return "Project"; }
  Result<PhysOpPtr> TryPlan(const PlanPtr& plan,
                            Planner& planner) const override {
    if (plan->kind() != LogicalPlan::Kind::kProject) return PhysOpPtr(nullptr);
    const auto& p = static_cast<const ProjectNode&>(*plan);
    IDF_ASSIGN_OR_RETURN(PhysOpPtr child, planner.PlanNode(p.child()));
    return PhysOpPtr(
        std::make_shared<ProjectExec>(std::move(child), p.columns()));
  }
};

class JoinStrategy final : public Strategy {
 public:
  std::string name() const override { return "Join"; }
  Result<PhysOpPtr> TryPlan(const PlanPtr& plan,
                            Planner& planner) const override {
    if (plan->kind() != LogicalPlan::Kind::kJoin) return PhysOpPtr(nullptr);
    const auto& j = static_cast<const JoinNode&>(*plan);
    IDF_ASSIGN_OR_RETURN(PhysOpPtr left, planner.PlanNode(j.left()));
    IDF_ASSIGN_OR_RETURN(PhysOpPtr right, planner.PlanNode(j.right()));
    return PhysOpPtr(std::make_shared<JoinExec>(
        std::move(left), std::move(right), j.left_key(), j.right_key(),
        planner.default_join_mode(), j.join_type()));
  }
};

class UnionStrategy final : public Strategy {
 public:
  std::string name() const override { return "Union"; }
  Result<PhysOpPtr> TryPlan(const PlanPtr& plan,
                            Planner& planner) const override {
    if (plan->kind() != LogicalPlan::Kind::kUnion) return PhysOpPtr(nullptr);
    const auto& u = static_cast<const UnionNode&>(*plan);
    IDF_RETURN_IF_ERROR(u.OutputSchema().status());  // schema compatibility
    IDF_ASSIGN_OR_RETURN(PhysOpPtr left, planner.PlanNode(u.left()));
    IDF_ASSIGN_OR_RETURN(PhysOpPtr right, planner.PlanNode(u.right()));
    return PhysOpPtr(
        std::make_shared<UnionExec>(std::move(left), std::move(right)));
  }
};

class SortStrategy final : public Strategy {
 public:
  std::string name() const override { return "Sort"; }
  Result<PhysOpPtr> TryPlan(const PlanPtr& plan,
                            Planner& planner) const override {
    if (plan->kind() != LogicalPlan::Kind::kSort) return PhysOpPtr(nullptr);
    const auto& s = static_cast<const SortNode&>(*plan);
    IDF_ASSIGN_OR_RETURN(PhysOpPtr child, planner.PlanNode(s.child()));
    return PhysOpPtr(std::make_shared<SortExec>(std::move(child), s.keys()));
  }
};

class AggStrategy final : public Strategy {
 public:
  std::string name() const override { return "Aggregate"; }
  Result<PhysOpPtr> TryPlan(const PlanPtr& plan,
                            Planner& planner) const override {
    if (plan->kind() != LogicalPlan::Kind::kAggregate) {
      return PhysOpPtr(nullptr);
    }
    const auto& a = static_cast<const AggregateNode&>(*plan);
    IDF_ASSIGN_OR_RETURN(PhysOpPtr child, planner.PlanNode(a.child()));
    return PhysOpPtr(std::make_shared<HashAggExec>(std::move(child),
                                                   a.group_by(), a.aggs()));
  }
};

class LimitStrategy final : public Strategy {
 public:
  std::string name() const override { return "Limit"; }
  Result<PhysOpPtr> TryPlan(const PlanPtr& plan,
                            Planner& planner) const override {
    if (plan->kind() != LogicalPlan::Kind::kLimit) return PhysOpPtr(nullptr);
    const auto& l = static_cast<const LimitNode&>(*plan);
    IDF_ASSIGN_OR_RETURN(PhysOpPtr child, planner.PlanNode(l.child()));
    return PhysOpPtr(std::make_shared<LimitExec>(std::move(child), l.limit()));
  }
};

}  // namespace

Planner::Planner(JoinExec::Mode default_join_mode)
    : default_join_mode_(default_join_mode) {
  rules_.push_back({"CombineFilters", CombineFilters});
  rules_.push_back({"PushFilterBelowProject", PushFilterBelowProject});
  strategies_ = {
      std::make_shared<FilterStrategy>(),  std::make_shared<ProjectStrategy>(),
      std::make_shared<JoinStrategy>(),    std::make_shared<AggStrategy>(),
      std::make_shared<SortStrategy>(),    std::make_shared<LimitStrategy>(),
      std::make_shared<UnionStrategy>(),   std::make_shared<ScanStrategy>(),
  };
}

Result<PlanPtr> Planner::Optimize(const PlanPtr& plan) const {
  // Snapshot the rule list: a concurrent AddRule (extension install from
  // another query's thread) must not mutate the vector mid-iteration.
  std::vector<LogicalRule> rules;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rules = rules_;
  }
  PlanPtr current = plan;
  for (int iteration = 0; iteration < 16; ++iteration) {
    bool changed = false;
    IDF_ASSIGN_OR_RETURN(current,
                         ApplyRulesBottomUp(current, rules, &changed));
    if (!changed) return current;
  }
  return current;  // fixpoint not reached; plan is still valid
}

Result<PhysOpPtr> Planner::Plan(const PlanPtr& plan) {
  IDF_ASSIGN_OR_RETURN(PlanPtr optimized, Optimize(plan));
  return PlanNode(optimized);
}

Result<PhysOpPtr> Planner::PlanNode(const PlanPtr& plan) {
  // Snapshot under the lock (shared_ptr copies — strategies are immutable
  // once installed); TryPlan may recurse back into PlanNode, so the lock
  // cannot be held across it.
  std::vector<StrategyPtr> strategies;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    strategies = strategies_;
  }
  for (const StrategyPtr& strategy : strategies) {
    IDF_ASSIGN_OR_RETURN(PhysOpPtr op, strategy->TryPlan(plan, *this));
    if (op != nullptr) return op;
  }
  return Status::Internal("no strategy for: " + plan->Describe());
}

}  // namespace idf
