#include "sql/session.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>

#include "mem/governor.h"
#include "obs/query_profile.h"
#include "obs/trace.h"
#include "sql/parser.h"

namespace idf {

std::vector<std::string> CollectedTable::SortedRowStrings() const {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const RowVec& row : rows) {
    std::string s;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) s += "|";
      s += row[i].ToString();
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

Session::Session(SessionOptions options)
    : options_(std::move(options)),
      cluster_(std::make_unique<Cluster>(options_.cluster)),
      planner_(options_.join_mode) {}

Result<DataFrame> Session::CreateTable(const std::string& name,
                                       SchemaPtr schema,
                                       const std::vector<RowVec>& rows,
                                       uint32_t partitions) {
  if (partitions == 0) partitions = options_.default_partitions;
  for (const RowVec& row : rows) {
    IDF_RETURN_IF_ERROR(ValidateRow(*schema, row));
  }
  // Round-robin assignment; capture by value so lineage can replay.
  auto generator = [rows, partitions](uint32_t partition) {
    std::vector<RowVec> mine;
    for (size_t i = partition; i < rows.size(); i += partitions) {
      mine.push_back(rows[i]);
    }
    return mine;
  };
  return CreateTableFromGenerator(name, std::move(schema), partitions,
                                  std::move(generator));
}

Result<DataFrame> Session::CreateTableFromGenerator(
    const std::string& name, SchemaPtr schema, uint32_t partitions,
    PartitionGenerator generator) {
  return CreateTableImpl(name, std::move(schema), partitions,
                         std::move(generator), /*register_in_catalog=*/true);
}

Result<DataFrame> Session::CreateTableImpl(const std::string& name,
                                           SchemaPtr schema,
                                           uint32_t partitions,
                                           PartitionGenerator generator,
                                           bool register_in_catalog) {
  IDF_CHECK(partitions > 0);
  IDF_CHECK(generator != nullptr);
  const uint64_t rdd_id = cluster_->NewRddId();

  auto build_chunk = [schema, generator](uint32_t partition) -> ChunkPtr {
    auto chunk = std::make_shared<ColumnarChunk>(schema);
    for (const RowVec& row : generator(partition)) {
      IDF_CHECK_OK(chunk->AppendRow(row));
    }
    return chunk;
  };

  // Lineage: regenerating a lost partition re-runs the generator (§III-D:
  // a replayable data source).
  cluster_->RegisterLineage(
      rdd_id, [build_chunk, rdd_id](uint32_t partition, uint64_t version,
                                    TaskContext&) -> Result<BlockPtr> {
        if (version != 0) {
          return Status::Internal("cached tables only have version 0");
        }
        ChunkPtr chunk = build_chunk(partition);
        chunk->SealForCache(rdd_id, partition);
        return BlockPtr(std::move(chunk));
      });

  StageSpec stage;
  stage.name = "materialize " + name;
  // Atomics: materialize tasks run concurrently on the stage scheduler.
  std::atomic<uint64_t> total_rows{0};
  std::atomic<uint64_t> total_bytes{0};
  for (uint32_t p = 0; p < partitions; ++p) {
    const ExecutorId home = cluster_->HomeExecutorFor(rdd_id, p);
    stage.tasks.push_back(TaskSpec{
        home,
        {},
        0,
        [&, p, rdd_id](TaskContext& ctx) {
          ChunkPtr chunk = build_chunk(p);
          total_rows += chunk->num_rows();
          total_bytes += chunk->ByteSize();
          ctx.metrics().rows_written += chunk->num_rows();
          chunk->SealForCache(rdd_id, p);
          ctx.cluster().blocks().Put(BlockId{rdd_id, p, 0}, ctx.executor(),
                                     chunk);
          return Status::OK();
        },
        {}});
  }
  IDF_RETURN_IF_ERROR(cluster_->RunStage(stage).status());

  TableHandle handle;
  handle.schema = schema;
  handle.rdd_id = rdd_id;
  handle.num_partitions = partitions;
  handle.version = 0;
  handle.num_rows = total_rows;
  handle.total_bytes = total_bytes;

  auto dataset = std::make_shared<CachedTable>(handle, name);
  if (register_in_catalog) RegisterTable(name, dataset);
  return Read(std::move(dataset));
}

namespace {
std::string CatalogKey(const std::string& name) {
  std::string key = name;
  for (char& c : key) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return key;
}
}  // namespace

void Session::RegisterTable(const std::string& name, DatasetPtr dataset) {
  IDF_CHECK(dataset != nullptr);
  std::lock_guard<std::mutex> lock(catalog_mutex_);
  catalog_[CatalogKey(name)] = std::move(dataset);
}

Result<DatasetPtr> Session::LookupTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(catalog_mutex_);
  auto it = catalog_.find(CatalogKey(name));
  if (it == catalog_.end()) {
    return Status::NotFound("no table named '" + name + "' in the catalog");
  }
  return it->second;
}

Result<DataFrame> Session::Sql(const std::string& query) {
  // Peel an EXPLAIN [ANALYZE] prefix off before parsing: the remainder is a
  // complete query of its own, re-entered through this function.
  IDF_ASSIGN_OR_RETURN(std::vector<sql_detail::Token> tokens,
                       sql_detail::Lex(query));
  if (!tokens.empty() && tokens[0].kind == sql_detail::TokenKind::kIdentifier &&
      tokens[0].text == "EXPLAIN") {
    size_t next = 1;
    bool analyze = false;
    if (tokens.size() > 1 &&
        tokens[1].kind == sql_detail::TokenKind::kIdentifier &&
        tokens[1].text == "ANALYZE") {
      analyze = true;
      next = 2;
    }
    if (next >= tokens.size() ||
        tokens[next].kind == sql_detail::TokenKind::kEnd) {
      return Status::InvalidArgument("EXPLAIN requires a query");
    }
    IDF_ASSIGN_OR_RETURN(DataFrame inner,
                         Sql(query.substr(tokens[next].position)));
    std::string text;
    if (analyze) {
      IDF_ASSIGN_OR_RETURN(text, inner.ExplainAnalyze());
    } else {
      IDF_ASSIGN_OR_RETURN(text, inner.ExplainPhysical());
    }
    // One row per plan line, in a single driver-side partition. Not
    // registered in the catalog: the result is an anonymous table.
    auto schema = std::make_shared<Schema>(
        Schema({{"plan", TypeId::kString, false}}));
    std::vector<RowVec> lines;
    size_t start = 0;
    while (start < text.size()) {
      size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      lines.push_back({Value::String(text.substr(start, end - start))});
      start = end + 1;
    }
    auto generator = [lines](uint32_t) { return lines; };
    return CreateTableImpl("explain result", schema, 1, std::move(generator),
                           /*register_in_catalog=*/false);
  }

  IDF_ASSIGN_OR_RETURN(PlanPtr plan, ParseSql(query, *this));
  // Surface binding errors (unknown columns, arity problems) at Sql() time
  // rather than at execution.
  IDF_RETURN_IF_ERROR(plan->OutputSchema().status());
  return DataFrame(this, std::move(plan));
}

DataFrame Session::Read(DatasetPtr dataset) {
  return DataFrame(this, std::make_shared<ScanNode>(std::move(dataset)));
}

Result<CollectedTable> Session::Collect(const TableHandle& handle) {
  CollectedTable out;
  out.schema = handle.schema;
  TaskContext ctx(cluster_.get(), cluster_->AliveExecutors().front());
  for (uint32_t p = 0; p < handle.num_partitions; ++p) {
    // Per-partition scope: the chunk stays pinned for its row loop, then
    // unpins so a tight budget never has to hold the whole result resident.
    mem::AccessScope scope;
    IDF_ASSIGN_OR_RETURN(
        BlockPtr block,
        cluster_->GetOrCompute(BlockId{handle.rdd_id, p, handle.version}, ctx));
    const auto& chunk = static_cast<const ColumnarChunk&>(*block);
    try {
      for (size_t i = 0; i < chunk.num_rows(); ++i) {
        out.rows.push_back(chunk.RowAt(i));
      }
    } catch (const mem::ReloadFault& fault) {
      // The chunk's payload was evicted and could not be reloaded while this
      // driver-side loop was reading it. Unlike stage bodies (whose faults
      // ExecuteTask catches), this loop runs outside any task; surface the
      // same kUnavailable status instead of unwinding into the caller.
      return fault.status();
    }
  }
  return out;
}

Result<TableHandle> DataFrame::Execute(QueryMetrics* metrics) const {
  IDF_CHECK_MSG(valid(), "Execute on an empty DataFrame");
  QueryMetrics local;
  QueryMetrics& m = metrics != nullptr ? *metrics : local;
  obs::Span span("query", plan_->Describe());
  IDF_ASSIGN_OR_RETURN(PhysOpPtr op, session_->planner().Plan(plan_));
  Result<TableHandle> result = [&]() -> Result<TableHandle> {
    try {
      return op->Execute(*session_, m);
    } catch (const mem::ReloadFault& fault) {
      // Driver-side reads (broadcast hash builds, inline chunk walks) pin
      // payloads outside any stage task, so a failed reload unwinds to here
      // rather than to ExecuteTask's catch. Same contract: the query fails
      // with the reload's kUnavailable status, the process does not.
      return fault.status();
    }
  }();
  if (span.active()) {
    span.AddArgInt("stages", m.num_stages);
    span.AddArgNum("real_s", m.real_seconds);
    span.AddArgNum("simulated_s", m.simulated_seconds);
    if (result.ok()) span.AddArgInt("rows_out", result->num_rows);
  }
  return result;
}

Result<std::string> DataFrame::ExplainAnalyze(QueryMetrics* metrics) const {
  IDF_CHECK_MSG(valid(), "ExplainAnalyze on an empty DataFrame");
  QueryMetrics local;
  QueryMetrics& m = metrics != nullptr ? *metrics : local;
  m.op_profile = std::make_shared<std::map<const void*, OpProfile>>();
  // Inside a query service the run keeps the service's query id; standalone
  // runs get an ephemeral id of their own, so the profile footer below
  // reports this execution rather than the unattributed bucket.
  const uint64_t query_id = obs::CurrentQueryId() != 0
                                ? obs::CurrentQueryId()
                                : obs::AllocateQueryId();
  obs::QueryScope query_scope(query_id);
  obs::Span span("query", "EXPLAIN ANALYZE " + plan_->Describe());
  // Plan once and execute that exact tree: the profile is keyed by the
  // physical nodes' addresses.
  IDF_ASSIGN_OR_RETURN(PhysOpPtr op, session_->planner().Plan(plan_));
  IDF_RETURN_IF_ERROR(op->Execute(*session_, m).status());
  std::string out = op->ExplainAnalyze(m);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "-- %u stages, real %.3fms, simulated %.3fms, network %.3fms",
                m.num_stages, m.real_seconds * 1e3, m.simulated_seconds * 1e3,
                m.network_seconds * 1e3);
  out += buf;
  out += "\n";
  obs::QueryProfileSnapshot snap;
  if (obs::QueryProfileRegistry::Global().Snapshot(query_id, &snap)) {
    std::snprintf(buf, sizeof(buf),
                  "-- query %llu: tasks %llu, resident hits/misses %llu/%llu, "
                  "spilled %llu B, reloaded %llu B, peak pinned %llu B",
                  static_cast<unsigned long long>(snap.id),
                  static_cast<unsigned long long>(snap.tasks),
                  static_cast<unsigned long long>(snap.resident_hits),
                  static_cast<unsigned long long>(snap.resident_misses),
                  static_cast<unsigned long long>(snap.bytes_spilled),
                  static_cast<unsigned long long>(snap.bytes_reloaded),
                  static_cast<unsigned long long>(snap.peak_pinned_bytes));
    out += buf;
    out += "\n";
  }
  return out;
}

Result<CollectedTable> DataFrame::Collect(QueryMetrics* metrics) const {
  IDF_ASSIGN_OR_RETURN(TableHandle handle, Execute(metrics));
  return session_->Collect(handle);
}

Result<uint64_t> DataFrame::Count(QueryMetrics* metrics) const {
  IDF_ASSIGN_OR_RETURN(TableHandle handle, Execute(metrics));
  return handle.num_rows;
}

Result<DataFrame> DataFrame::Distinct() const {
  IDF_CHECK_MSG(valid(), "Distinct on an empty DataFrame");
  IDF_ASSIGN_OR_RETURN(Schema schema, plan_->OutputSchema());
  std::vector<std::string> all_columns;
  for (const Field& field : schema.fields()) all_columns.push_back(field.name);
  // Group by every column, then project the group keys back out.
  PlanPtr agg = std::make_shared<AggregateNode>(
      plan_, all_columns, std::vector<AggSpec>{AggSpec::Count("__distinct")});
  return DataFrame(session_,
                   std::make_shared<ProjectNode>(std::move(agg), all_columns));
}

Result<std::string> DataFrame::ExplainOptimized() const {
  IDF_ASSIGN_OR_RETURN(PlanPtr optimized, session_->planner().Optimize(plan_));
  return optimized->Explain();
}

Result<std::string> DataFrame::ExplainPhysical() const {
  IDF_ASSIGN_OR_RETURN(PhysOpPtr op, session_->planner().Plan(plan_));
  return op->Explain();
}

}  // namespace idf
