#include "sql/plan.h"

namespace idf {

std::string LogicalPlan::Explain(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += Describe();
  out += "\n";
  for (const PlanPtr& child : children_) out += child->Explain(indent + 1);
  return out;
}

Result<Schema> AggregateNode::OutputSchema() const {
  IDF_ASSIGN_OR_RETURN(Schema in, child()->OutputSchema());
  std::vector<Field> fields;
  for (const std::string& g : group_by_) {
    IDF_ASSIGN_OR_RETURN(size_t idx, in.FieldIndex(g));
    fields.push_back(in.field(idx));
  }
  for (const AggSpec& agg : aggs_) {
    TypeId out_type = TypeId::kInt64;
    switch (agg.fn) {
      case AggSpec::Fn::kCount:
        out_type = TypeId::kInt64;
        break;
      case AggSpec::Fn::kAvg:
        out_type = TypeId::kFloat64;
        IDF_RETURN_IF_ERROR(in.FieldIndex(agg.column).status());
        break;
      case AggSpec::Fn::kSum: {
        IDF_ASSIGN_OR_RETURN(size_t idx, in.FieldIndex(agg.column));
        out_type = in.field(idx).type == TypeId::kFloat64 ? TypeId::kFloat64
                                                          : TypeId::kInt64;
        break;
      }
      case AggSpec::Fn::kMin:
      case AggSpec::Fn::kMax: {
        IDF_ASSIGN_OR_RETURN(size_t idx, in.FieldIndex(agg.column));
        out_type = in.field(idx).type;
        break;
      }
    }
    fields.push_back(Field{agg.output_name, out_type, true});
  }
  return Schema(std::move(fields));
}

std::string AggregateNode::Describe() const {
  std::string s = "Aggregate group_by=[";
  for (size_t i = 0; i < group_by_.size(); ++i) {
    if (i) s += ", ";
    s += group_by_[i];
  }
  s += "] aggs=[";
  for (size_t i = 0; i < aggs_.size(); ++i) {
    if (i) s += ", ";
    s += aggs_[i].output_name;
  }
  return s + "]";
}

}  // namespace idf
