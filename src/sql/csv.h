// CSV import/export — the practical on-ramp for real datasets (the paper's
// US Flights data ships as CSV from the US DoT).
//
// Dialect: comma separator, double-quote quoting with "" escapes, optional
// header row, \n or \r\n line endings. Import parses against an explicit
// schema (empty cells and the literal NULL become nulls for nullable
// fields); export quotes only when necessary.
#pragma once

#include <string>

#include "common/status.h"
#include "sql/session.h"

namespace idf {

struct CsvOptions {
  bool has_header = true;
  char delimiter = ',';
  /// Rows that fail to parse abort the import when false; skipped when true.
  bool skip_bad_rows = false;
};

/// Parses one CSV record from `line` (no trailing newline). Exposed for
/// tests; handles quoting and "" escapes.
Result<std::vector<std::string>> SplitCsvLine(const std::string& line,
                                              char delimiter);

/// Converts one raw cell to a typed Value per the field definition.
Result<Value> ParseCsvCell(const std::string& cell, const Field& field);

/// Reads a CSV file into a new cached table registered as `name`.
Result<DataFrame> ReadCsv(Session& session, const std::string& name,
                          const std::string& path, SchemaPtr schema,
                          uint32_t partitions = 0,
                          const CsvOptions& options = {});

/// Writes a collected result to a CSV file (with header).
Status WriteCsv(const CollectedTable& table, const std::string& path,
                const CsvOptions& options = {});

}  // namespace idf
