#include "sql/csv.h"

#include <cstdlib>
#include <fstream>

namespace idf {

Result<std::vector<std::string>> SplitCsvLine(const std::string& line,
                                              char delimiter) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';  // escaped quote
          i += 2;
          continue;
        }
        quoted = false;
        ++i;
        continue;
      }
      cell += c;
      ++i;
      continue;
    }
    if (c == '"') {
      if (!cell.empty()) {
        return Status::InvalidArgument("stray quote mid-cell: " + line);
      }
      quoted = true;
      ++i;
      continue;
    }
    if (c == delimiter) {
      cells.push_back(std::move(cell));
      cell.clear();
      ++i;
      continue;
    }
    cell += c;
    ++i;
  }
  if (quoted) {
    return Status::InvalidArgument("unterminated quote: " + line);
  }
  cells.push_back(std::move(cell));
  return cells;
}

Result<Value> ParseCsvCell(const std::string& cell, const Field& field) {
  if (cell.empty() || cell == "NULL") {
    if (field.type == TypeId::kString && !cell.empty()) {
      return Value::String(cell);  // literal "NULL" string is ambiguous;
                                   // treat as null only for non-strings
    }
    if (!field.nullable && field.type != TypeId::kString) {
      return Status::InvalidArgument("null in NOT NULL field '" + field.name +
                                     "'");
    }
    if (field.type == TypeId::kString) {
      // Empty cell in a string field: empty string if NOT NULL, else null.
      return field.nullable ? Value::Null(TypeId::kString)
                            : Value::String("");
    }
    return Value::Null(field.type);
  }
  char* end = nullptr;
  switch (field.type) {
    case TypeId::kBool: {
      if (cell == "true" || cell == "TRUE" || cell == "1") {
        return Value::Bool(true);
      }
      if (cell == "false" || cell == "FALSE" || cell == "0") {
        return Value::Bool(false);
      }
      return Status::InvalidArgument("bad bool '" + cell + "'");
    }
    case TypeId::kInt32: {
      const long v = std::strtol(cell.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument("bad int32 '" + cell + "'");
      }
      return Value::Int32(static_cast<int32_t>(v));
    }
    case TypeId::kInt64: {
      const long long v = std::strtoll(cell.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument("bad int64 '" + cell + "'");
      }
      return Value::Int64(v);
    }
    case TypeId::kFloat64: {
      const double v = std::strtod(cell.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument("bad float '" + cell + "'");
      }
      return Value::Float64(v);
    }
    case TypeId::kString:
      return Value::String(cell);
  }
  return Status::Internal("unknown type");
}

Result<DataFrame> ReadCsv(Session& session, const std::string& name,
                          const std::string& path, SchemaPtr schema,
                          uint32_t partitions, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");

  std::vector<RowVec> rows;
  std::string line;
  bool first = true;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (first && options.has_header) {
      first = false;
      continue;
    }
    first = false;
    if (line.empty()) continue;

    Result<std::vector<std::string>> cells =
        SplitCsvLine(line, options.delimiter);
    if (!cells.ok()) {
      if (options.skip_bad_rows) continue;
      return Status(cells.status().code(),
                    "line " + std::to_string(line_no) + ": " +
                        cells.status().message());
    }
    if (cells->size() != schema->num_fields()) {
      if (options.skip_bad_rows) continue;
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": " +
          std::to_string(cells->size()) + " cells, schema has " +
          std::to_string(schema->num_fields()));
    }
    RowVec row;
    row.reserve(cells->size());
    bool bad = false;
    for (size_t i = 0; i < cells->size(); ++i) {
      Result<Value> value = ParseCsvCell((*cells)[i], schema->field(i));
      if (!value.ok()) {
        if (options.skip_bad_rows) {
          bad = true;
          break;
        }
        return Status(value.status().code(),
                      "line " + std::to_string(line_no) + ": " +
                          value.status().message());
      }
      row.push_back(std::move(*value));
    }
    if (!bad) rows.push_back(std::move(row));
  }
  return session.CreateTable(name, std::move(schema), rows, partitions);
}

namespace {

bool NeedsQuoting(const std::string& s, char delimiter) {
  return s.find(delimiter) != std::string::npos ||
         s.find('"') != std::string::npos ||
         s.find('\n') != std::string::npos;
}

std::string CsvEscape(const std::string& s, char delimiter) {
  if (!NeedsQuoting(s, delimiter)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string CellText(const Value& v) {
  if (v.is_null()) return "";
  if (v.type() == TypeId::kString) return v.string_value();
  return v.ToString();
}

}  // namespace

Status WriteCsv(const CollectedTable& table, const std::string& path,
                const CsvOptions& options) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Unavailable("cannot open '" + path + "'");
  if (options.has_header) {
    for (size_t i = 0; i < table.schema->num_fields(); ++i) {
      if (i) out << options.delimiter;
      out << CsvEscape(table.schema->field(i).name, options.delimiter);
    }
    out << "\n";
  }
  for (const RowVec& row : table.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out << options.delimiter;
      out << CsvEscape(CellText(row[i]), options.delimiter);
    }
    out << "\n";
  }
  out.flush();
  return out ? Status::OK() : Status::Unavailable("short write");
}

}  // namespace idf
