#include "testing/chaos.h"

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/hash.h"
#include "common/logging.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"

namespace idf::chaos {

namespace {

double EnvProbability(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double p = std::strtod(value, &end);
  if (end == value || p < 0.0 || p > 1.0) {
    IDF_LOG_WARN("ignoring unparsable %s='%s'", name, value);
    return fallback;
  }
  return p;
}

uint64_t EnvUint64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (end == value) {
    IDF_LOG_WARN("ignoring unparsable %s='%s'", name, value);
    return fallback;
  }
  return static_cast<uint64_t>(v);
}

/// The one upward dependency: "evict every governed payload", wired by the
/// engine at startup (Cluster construction). Guarded by its own mutex so
/// registration and the evictor thread never race.
std::mutex g_actuator_mutex;
std::function<size_t()> g_evict_world;  // guarded by g_actuator_mutex

size_t RunEvictWorld() {
  std::function<size_t()> actuator;
  {
    std::lock_guard<std::mutex> lock(g_actuator_mutex);
    actuator = g_evict_world;
  }
  return actuator ? actuator() : 0;
}

obs::Counter& FaultCounter() {
  static obs::Counter* counter =
      &obs::Registry::Global().GetCounter("chaos.faults");
  return *counter;
}

}  // namespace

std::atomic<bool> ChaosEngine::active_{false};

ChaosConfig ChaosConfig::FromEnv() {
  ChaosConfig config;
  config.seed = EnvUint64("IDF_CHAOS_SEED", config.seed);
  config.task_delay_p = EnvProbability("IDF_CHAOS_TASK_DELAY_P", 0);
  config.task_evict_p = EnvProbability("IDF_CHAOS_TASK_EVICT_P", 0);
  config.task_kill_p = EnvProbability("IDF_CHAOS_TASK_KILL_P", 0);
  config.task_cancel_p = EnvProbability("IDF_CHAOS_TASK_CANCEL_P", 0);
  config.task_deadline_p = EnvProbability("IDF_CHAOS_TASK_DEADLINE_P", 0);
  config.budget_squeeze_p = EnvProbability("IDF_CHAOS_SQUEEZE_P", 0);
  config.reload_fail_p = EnvProbability("IDF_CHAOS_RELOAD_FAIL_P", 0);
  config.reload_delay_p = EnvProbability("IDF_CHAOS_RELOAD_DELAY_P", 0);
  config.prefetch_fail_p = EnvProbability("IDF_CHAOS_PREFETCH_FAIL_P", 0);
  config.reload_fail_nth = EnvUint64("IDF_CHAOS_RELOAD_FAIL_NTH", 0);
  config.shuffle_delay_p = EnvProbability("IDF_CHAOS_SHUFFLE_DELAY_P", 0);
  config.shuffle_abort_p = EnvProbability("IDF_CHAOS_SHUFFLE_ABORT_P", 0);
  config.admit_delay_p = EnvProbability("IDF_CHAOS_ADMIT_DELAY_P", 0);
  config.max_delay_us = static_cast<uint32_t>(
      EnvUint64("IDF_CHAOS_MAX_DELAY_US", config.max_delay_us));
  config.evictor_period_us = static_cast<uint32_t>(
      EnvUint64("IDF_CHAOS_EVICTOR_PERIOD_US", 0));
  return config;
}

ChaosConfig ChaosConfig::Mixed(uint64_t seed) {
  ChaosConfig config;
  config.seed = seed;
  config.task_delay_p = 0.05;
  config.task_evict_p = 0.08;
  config.task_kill_p = 0.02;
  config.task_cancel_p = 0.02;
  config.task_deadline_p = 0.02;
  config.budget_squeeze_p = 0.03;
  config.reload_fail_p = 0.03;
  config.reload_delay_p = 0.10;
  config.prefetch_fail_p = 0.10;
  config.shuffle_delay_p = 0.05;
  config.shuffle_abort_p = 0.01;
  config.admit_delay_p = 0.10;
  config.max_delay_us = 300;
  return config;
}

ChaosEngine& ChaosEngine::Global() {
  static ChaosEngine* engine = new ChaosEngine();
  return *engine;
}

void ChaosEngine::RecomputeActive() {
  ChaosEngine& engine = Global();
  bool hooks_installed;
  {
    std::lock_guard<std::mutex> lock(engine.hooks_mutex_);
    hooks_installed = engine.hooks_ != nullptr;
  }
  active_.store(engine.armed() || hooks_installed,
                std::memory_order_relaxed);
}

void ChaosEngine::Arm(const ChaosConfig& config) {
  Disarm();  // joins a previous evictor; re-arming replaces everything
  {
    std::lock_guard<std::mutex> lock(mutex_);
    config_ = config;
    visits_.clear();
  }
  reload_ordinal_.store(0, std::memory_order_relaxed);
  total_faults_.store(0, std::memory_order_relaxed);
  for (auto& count : fault_counts_) count.store(0, std::memory_order_relaxed);
  armed_.store(true, std::memory_order_release);
  RecomputeActive();
  obs::FlightRecorder::Global().Record(obs::EventType::kChaosArm, 0,
                                       config.seed, 0, 0);
  if (config.evictor_period_us > 0) {
    {
      std::lock_guard<std::mutex> lock(evictor_mutex_);
      evictor_stop_ = false;
    }
    evictor_ = std::thread(&ChaosEngine::EvictorLoop, this);
  }
}

void ChaosEngine::Disarm() {
  armed_.store(false, std::memory_order_release);
  RecomputeActive();
  if (evictor_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(evictor_mutex_);
      evictor_stop_ = true;
    }
    evictor_cv_.notify_all();
    evictor_.join();
  }
}

uint64_t ChaosEngine::seed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return config_.seed;
}

void ChaosEngine::SetHooks(ChaosHooks hooks) {
  ChaosEngine& engine = Global();
  const bool installed =
      hooks.on_reload != nullptr || hooks.on_task_start != nullptr;
  {
    std::lock_guard<std::mutex> lock(engine.hooks_mutex_);
    engine.hooks_ = installed
                        ? std::make_shared<const ChaosHooks>(std::move(hooks))
                        : nullptr;
    engine.hook_reload_ordinal_.store(0, std::memory_order_relaxed);
  }
  RecomputeActive();
}

void ChaosEngine::SetEvictWorldActuator(std::function<size_t()> actuator) {
  std::lock_guard<std::mutex> lock(g_actuator_mutex);
  if (!g_evict_world) g_evict_world = std::move(actuator);
}

uint64_t ChaosEngine::faults_of(Fault kind) const {
  return fault_counts_[static_cast<size_t>(kind)].load(
      std::memory_order_relaxed);
}

void ChaosEngine::RecordFault(Site site, Fault kind, uint64_t key,
                              uint64_t aux) {
  total_faults_.fetch_add(1, std::memory_order_relaxed);
  fault_counts_[static_cast<size_t>(kind)].fetch_add(
      1, std::memory_order_relaxed);
  FaultCounter().Increment();
  obs::FlightRecorder::Global().Record(obs::EventType::kChaosFault, 0,
                                       static_cast<uint64_t>(site) << 8 |
                                           static_cast<uint64_t>(kind),
                                       key, aux);
}

uint64_t ChaosEngine::VisitHash(Site site, uint64_t key) {
  const uint64_t site_key =
      HashCombine(Mix64(static_cast<uint64_t>(site) + 0x5157), key);
  uint64_t seed;
  uint64_t visit;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    seed = config_.seed;
    visit = ++visits_[site_key];
  }
  return HashCombine(HashCombine(Mix64(seed), site_key), visit);
}

bool ChaosEngine::Roll(uint64_t visit_hash, Fault kind, double p) {
  if (p <= 0.0) return false;
  const uint64_t h =
      Mix64(visit_hash ^ (static_cast<uint64_t>(kind) * 0x9e3779b97f4a7c15ULL));
  // Top 53 bits -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53 < p;
}

uint32_t ChaosEngine::RollDelayUs(uint64_t visit_hash, Fault kind) const {
  uint32_t max_delay;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    max_delay = config_.max_delay_us;
  }
  if (max_delay == 0) return 1;
  const uint64_t h = Mix64(visit_hash + static_cast<uint64_t>(kind) + 0xde1a);
  return 1 + static_cast<uint32_t>(h % max_delay);
}

TaskAction ChaosEngine::OnTaskStart(uint64_t stage_hash, uint32_t task_index) {
  TaskAction action;
  {
    std::shared_ptr<const ChaosHooks> hooks;
    {
      std::lock_guard<std::mutex> lock(hooks_mutex_);
      hooks = hooks_;
    }
    if (hooks != nullptr && hooks->on_task_start) hooks->on_task_start();
  }
  if (!armed()) return action;
  ChaosConfig config;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    config = config_;
  }
  const uint64_t key = HashCombine(stage_hash, task_index);
  const uint64_t h = VisitHash(Site::kTask, key);
  if (Roll(h, Fault::kTaskDelay, config.task_delay_p)) {
    action.delay_us = RollDelayUs(h, Fault::kTaskDelay);
    RecordFault(Site::kTask, Fault::kTaskDelay, key, action.delay_us);
  }
  if (Roll(h, Fault::kEvictWorld, config.task_evict_p)) {
    action.evict_world = true;
    RecordFault(Site::kTask, Fault::kEvictWorld, key, 0);
  }
  if (Roll(h, Fault::kBudgetSqueeze, config.budget_squeeze_p)) {
    action.squeeze_budget = true;
    RecordFault(Site::kTask, Fault::kBudgetSqueeze, key, 0);
  }
  // The remaining task faults are recorded by the applier (RecordFault from
  // the cluster) because they sit behind guards the engine cannot see:
  // kill needs >1 alive executor, cancel/deadline need an owning query.
  action.kill_executor = Roll(h, Fault::kKillExecutor, config.task_kill_p);
  action.cancel_query = Roll(h, Fault::kCancelQuery, config.task_cancel_p);
  action.expire_query = Roll(h, Fault::kExpireQuery, config.task_deadline_p);
  return action;
}

Status ChaosEngine::OnReload(uint64_t owner, uint32_t shard, uint32_t index,
                             bool prefetch) {
  {
    std::shared_ptr<const ChaosHooks> hooks;
    {
      std::lock_guard<std::mutex> lock(hooks_mutex_);
      hooks = hooks_;
    }
    if (hooks != nullptr && hooks->on_reload) {
      const uint64_t ordinal =
          hook_reload_ordinal_.fetch_add(1, std::memory_order_relaxed) + 1;
      IDF_RETURN_IF_ERROR(
          hooks->on_reload(owner, shard, index, ordinal, prefetch));
    }
  }
  if (!armed()) return Status::OK();
  ChaosConfig config;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    config = config_;
  }
  const uint64_t key =
      HashCombine(HashCombine(Mix64(owner), shard), index);
  const uint64_t h = VisitHash(Site::kReload, key);
  if (Roll(h, Fault::kReloadDelay, config.reload_delay_p)) {
    const uint32_t delay_us = RollDelayUs(h, Fault::kReloadDelay);
    RecordFault(Site::kReload, Fault::kReloadDelay, key, delay_us);
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  }
  // The armed ordinal counts every reload since Arm(); "exactly the Nth
  // reload fails" reproduces the lost-spill-file scenario at a seeded spot.
  const uint64_t ordinal =
      reload_ordinal_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (config.reload_fail_nth != 0 && ordinal == config.reload_fail_nth) {
    RecordFault(Site::kReload,
                prefetch ? Fault::kPrefetchFail : Fault::kReloadFail, key,
                ordinal);
    return Status::Unavailable("chaos: reload " + std::to_string(ordinal) +
                               " failed (Nth-reload fault)");
  }
  if (prefetch) {
    if (Roll(h, Fault::kPrefetchFail, config.prefetch_fail_p)) {
      RecordFault(Site::kReload, Fault::kPrefetchFail, key, ordinal);
      return Status::Unavailable("chaos: prefetch reload failed");
    }
  } else if (Roll(h, Fault::kReloadFail, config.reload_fail_p)) {
    RecordFault(Site::kReload, Fault::kReloadFail, key, ordinal);
    return Status::Unavailable("chaos: demand reload failed");
  }
  return Status::OK();
}

ShuffleAction ChaosEngine::OnShufflePush(uint64_t shuffle, uint32_t map_task,
                                         uint32_t reduce_part) {
  ShuffleAction action;
  if (!armed()) return action;
  ChaosConfig config;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    config = config_;
  }
  const uint64_t key =
      HashCombine(HashCombine(Mix64(shuffle), map_task), reduce_part);
  const uint64_t h = VisitHash(Site::kShufflePush, key);
  if (Roll(h, Fault::kShuffleDelay, config.shuffle_delay_p)) {
    action.delay_us = RollDelayUs(h, Fault::kShuffleDelay);
    RecordFault(Site::kShufflePush, Fault::kShuffleDelay, key,
                action.delay_us);
  }
  if (Roll(h, Fault::kShuffleAbort, config.shuffle_abort_p)) {
    action.abort = true;
    RecordFault(Site::kShufflePush, Fault::kShuffleAbort, key, 0);
  }
  return action;
}

uint32_t ChaosEngine::OnShufflePullDelayUs(uint64_t shuffle,
                                           uint32_t reduce_part) {
  if (!armed()) return 0;
  ChaosConfig config;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    config = config_;
  }
  const uint64_t key = HashCombine(Mix64(shuffle), reduce_part);
  const uint64_t h = VisitHash(Site::kShufflePull, key);
  if (!Roll(h, Fault::kShuffleDelay, config.shuffle_delay_p)) return 0;
  const uint32_t delay_us = RollDelayUs(h, Fault::kShuffleDelay);
  RecordFault(Site::kShufflePull, Fault::kShuffleDelay, key, delay_us);
  return delay_us;
}

uint32_t ChaosEngine::OnAdmissionDelayUs(uint64_t query_id) {
  if (!armed()) return 0;
  ChaosConfig config;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    config = config_;
  }
  const uint64_t h = VisitHash(Site::kAdmission, Mix64(query_id));
  if (!Roll(h, Fault::kAdmitDelay, config.admit_delay_p)) return 0;
  const uint32_t delay_us = RollDelayUs(h, Fault::kAdmitDelay);
  RecordFault(Site::kAdmission, Fault::kAdmitDelay, Mix64(query_id),
              delay_us);
  return delay_us;
}

void ChaosEngine::EvictorLoop() {
  uint32_t period_us;
  uint64_t seed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    period_us = config_.evictor_period_us;
    seed = config_.seed;
  }
  uint64_t tick = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(evictor_mutex_);
      evictor_cv_.wait_for(lock, std::chrono::microseconds(period_us),
                           [&] { return evictor_stop_; });
      if (evictor_stop_) return;
    }
    // Seeded decision, wall-clock timing: every other tick evicts, with
    // the phase drawn from the seed so different seeds shear differently
    // against the workload.
    ++tick;
    if (((tick + seed) & 1) == 0) continue;
    const size_t evicted = RunEvictWorld();
    if (evicted > 0) {
      RecordFault(Site::kTask, Fault::kEvictWorld, /*key=*/tick, evicted);
    }
  }
}

}  // namespace idf::chaos
