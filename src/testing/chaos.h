// ChaosEngine: seeded, probability-configured cross-subsystem fault
// injection (the repo's robustness subsystem; docs/TESTING.md).
//
// Every subsystem with a failure surface consults one process-wide hook bus
// at its injection sites:
//   - the stage scheduler (Cluster::ExecuteTask): delay a lane's task (which
//     forces steals by the other lanes), force-evict the world between
//     tasks, kill an executor mid-stage, squeeze the budget, or fire the
//     owning query's cancel/deadline at a task boundary;
//   - the memory governor (FaultIn / PrefetchPartitionSync): fail or delay
//     a payload reload — demand and prefetch distinguished — including
//     "exactly the Nth reload fails";
//   - the shuffle pipeline (PushMapOutput / PullNext): stall a channel,
//     delay a seal-push, abort the stream mid-flight;
//   - the query service (WorkerLoop): admission-queue churn delays.
//
// Determinism contract: every fault decision is a pure function of
//   (seed, site, stable logical coordinates, per-coordinate visit count)
// via hash mixing — never of wall-clock time or global arrival order. Two
// runs with the same seed and the same per-query work visit each logical
// coordinate the same number of times, so they draw the same fault
// schedule; thread interleaving cannot perturb it. (The one intentional
// exception is the optional background evictor, whose *timing* is
// wall-clock — it exists precisely to evict "during" tasks; its decisions
// are still armed by the seed.) Concurrent queries sharing coordinates
// share visit counters, so a multi-client storm replays approximately; a
// single-query run replays exactly. The differential gate is built to
// tolerate the residue: a chaos run must be byte-identical to clean OR
// fail with a retryable status and zero leaks, for ANY schedule.
//
// Arming: ChaosEngine::Global().Arm(config) (tests) or
// ChaosConfig::FromEnv() driven by IDF_CHAOS_SEED / IDF_CHAOS_* (benches,
// replay). Every armed fault is recorded as a flight-recorder event
// (kChaosArm carries the seed; kChaosFault one line per injected fault), so
// a failing run's schedule is in the journal and replayable from the seed
// alone.
//
// Test hooks: SetHooks installs deterministic scripted callbacks on the
// same bus (the successor of the deleted mem::GovernorHooks) — on_reload is
// consulted before every payload reload with a 1-based ordinal, and
// on_task_start fires at every task boundary without governor locks held.
// Hooks and armed-probability chaos compose; production code installs
// neither, keeping every site's fast path a single relaxed load.
//
// Layering: this library sits below mem/engine/server (links only
// idf_common + idf_obs). It *decides* faults; each site applies them with
// its own layer's facilities (the governor fails the reload, the cluster
// kills the executor, the shuffle service aborts the stream). The one
// upward call it needs — "evict every governed payload" for the background
// evictor — is injected by the engine at startup via SetEvictWorldActuator.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>

#include "common/status.h"

namespace idf::chaos {

/// Injection sites (flight-recorder payload `a` of chaos_fault events).
enum class Site : uint8_t {
  kTask = 1,         // Cluster::ExecuteTask, before the task body
  kReload = 2,       // MemoryGovernor reload (demand fault-in or prefetch)
  kShufflePush = 3,  // ShuffleService::PushMapOutput
  kShufflePull = 4,  // ShuffleService::PullNext
  kAdmission = 5,    // QueryService::WorkerLoop, after dequeue
};

/// Fault kinds (flight-recorder payload `b` of chaos_fault events).
enum class Fault : uint8_t {
  kTaskDelay = 1,      // sleep before the task body (forces steals)
  kEvictWorld = 2,     // force-evict every governed payload
  kKillExecutor = 3,   // kill the task's executor mid-stage
  kCancelQuery = 4,    // fire the owning query's cancel at a task boundary
  kExpireQuery = 5,    // fire the owning query's deadline at a task boundary
  kBudgetSqueeze = 6,  // halve the budget, enforce, restore
  kReloadFail = 7,     // fail a demand reload (kUnavailable)
  kReloadDelay = 8,    // sleep inside the reload (governor lock held)
  kPrefetchFail = 9,   // fail a prefetch reload (demand path retries)
  kShuffleDelay = 10,  // delay a seal-push / stall a channel pull
  kShuffleAbort = 11,  // abort the stream mid-flight
  kAdmitDelay = 12,    // admission-queue churn delay
  kMaxFault = 13,
};

/// Probability-per-site configuration. All probabilities are in [0, 1] and
/// independent; 0 disables the fault. Delays draw a duration in
/// [1, max_delay_us] from the same seeded hash that armed them.
struct ChaosConfig {
  uint64_t seed = 1;

  // Stage-scheduler task boundary.
  double task_delay_p = 0;
  double task_evict_p = 0;
  double task_kill_p = 0;      // applied only while >1 executor is alive
  double task_cancel_p = 0;    // no-op outside a served/controlled query
  double task_deadline_p = 0;  // no-op outside a served/controlled query
  double budget_squeeze_p = 0;

  // Memory-governor reloads.
  double reload_fail_p = 0;    // demand reloads
  double reload_delay_p = 0;   // demand + prefetch reloads
  double prefetch_fail_p = 0;  // prefetch reloads
  uint64_t reload_fail_nth = 0;  // exactly the Nth reload fails (0 = off)

  // Shuffle pipeline.
  double shuffle_delay_p = 0;  // push and pull sides
  double shuffle_abort_p = 0;  // push side only

  // Query service admission.
  double admit_delay_p = 0;

  uint32_t max_delay_us = 500;

  /// Period of the background evictor thread, which force-evicts every
  /// governed payload *while tasks run* (not just between them). 0 = off.
  /// Its decisions are seeded; its timing is wall-clock by design.
  uint32_t evictor_period_us = 0;

  /// Reads IDF_CHAOS_SEED plus the IDF_CHAOS_* knobs (see docs/TESTING.md):
  /// TASK_DELAY_P, TASK_EVICT_P, TASK_KILL_P, TASK_CANCEL_P,
  /// TASK_DEADLINE_P, SQUEEZE_P, RELOAD_FAIL_P, RELOAD_DELAY_P,
  /// PREFETCH_FAIL_P, RELOAD_FAIL_NTH, SHUFFLE_DELAY_P, SHUFFLE_ABORT_P,
  /// ADMIT_DELAY_P, MAX_DELAY_US, EVICTOR_PERIOD_US. Unset knobs keep the
  /// defaults above (all faults off).
  static ChaosConfig FromEnv();

  /// A moderate everything-on mix used by the ChaosTest sweep and the CI
  /// chaos leg: every fault class armed at a probability low enough that
  /// most queries still complete, high enough that a 20-seed sweep crosses
  /// every failure x eviction x concurrency pair.
  static ChaosConfig Mixed(uint64_t seed);
};

/// What the task-boundary site should do before running the task body.
/// The cluster applies these with engine/mem facilities (see chaos.h top).
struct TaskAction {
  uint32_t delay_us = 0;
  bool evict_world = false;
  bool kill_executor = false;
  bool cancel_query = false;
  bool expire_query = false;
  bool squeeze_budget = false;
};

struct ShuffleAction {
  uint32_t delay_us = 0;
  bool abort = false;
};

/// Deterministic scripted callbacks on the same bus (successor of the old
/// mem::GovernorHooks; tests/pressure_test.cpp). Install with SetHooks;
/// pass {} to clear.
struct ChaosHooks {
  /// Consulted before every payload reload — demand fault-in and prefetch
  /// alike. (owner, shard, index) are the payload's SpillIdentity
  /// coordinates; `ordinal` counts reloads since the hooks were installed
  /// (1-based); `prefetch` distinguishes the prefetcher's reloads from
  /// demand faults. Returning non-OK fails the reload exactly as a disk
  /// error would; sleeping inside delays the fault-in (the governor lock is
  /// held, so concurrent readers of the same payload queue behind it).
  /// Must not call back into the governor.
  std::function<Status(uint64_t owner, uint32_t shard, uint32_t index,
                       uint64_t ordinal, bool prefetch)>
      on_reload;
  /// Invoked at every task boundary (Cluster::ExecuteTask, before the task
  /// body), without governor locks held — may call EvictPartition etc. to
  /// force evictions *between* tasks deterministically.
  std::function<void()> on_task_start;
};

class ChaosEngine {
 public:
  /// The process-wide engine (leaky singleton, like obs::Registry).
  static ChaosEngine& Global();

  /// True while armed OR hooks are installed — the single relaxed load
  /// every site checks before doing anything else.
  static bool Active() { return active_.load(std::memory_order_relaxed); }

  /// Arms probability-driven injection with `config` (records kChaosArm
  /// with the seed, resets visit counters and fault tallies, starts the
  /// background evictor if configured). Re-arming replaces the config.
  void Arm(const ChaosConfig& config);

  /// Stops injecting (joins the evictor thread). Installed hooks survive.
  void Disarm();

  bool armed() const { return armed_.load(std::memory_order_acquire); }
  uint64_t seed() const;

  /// Installs (or, with {}, clears) the scripted test hooks.
  static void SetHooks(ChaosHooks hooks);

  // ---- site entry points (cheap no-ops unless Active()) -----------------

  /// Task boundary. Runs the on_task_start hook, then rolls the armed task
  /// faults for (stage_hash, task_index). `stage_hash` should be a stable
  /// hash of the stage name.
  TaskAction OnTaskStart(uint64_t stage_hash, uint32_t task_index);

  /// Reload of payload (owner, shard, index). Runs the on_reload hook,
  /// then the armed reload faults; sleeps armed delays in place (governor
  /// lock held — that is the point). Non-OK fails the reload.
  Status OnReload(uint64_t owner, uint32_t shard, uint32_t index,
                  bool prefetch);

  ShuffleAction OnShufflePush(uint64_t shuffle, uint32_t map_task,
                              uint32_t reduce_part);
  uint32_t OnShufflePullDelayUs(uint64_t shuffle, uint32_t reduce_part);
  uint32_t OnAdmissionDelayUs(uint64_t query_id);

  // ---- actuators & accounting -------------------------------------------

  /// Injects "evict every governed payload" (the engine wires
  /// mem::EvictPartition over a residency snapshot here at startup). Used
  /// by the background evictor; idempotent first-wins.
  static void SetEvictWorldActuator(std::function<size_t()> actuator);

  /// Faults actually injected since the last Arm().
  uint64_t faults_injected() const {
    return total_faults_.load(std::memory_order_relaxed);
  }
  uint64_t faults_of(Fault kind) const;

  /// Tells the site-side applier a fault it was handed has been applied
  /// after a guard the engine cannot evaluate (e.g. the >1-alive-executor
  /// check before a kill). Records the flight-recorder event and tallies.
  void RecordFault(Site site, Fault kind, uint64_t key, uint64_t aux);

  ChaosEngine(const ChaosEngine&) = delete;
  ChaosEngine& operator=(const ChaosEngine&) = delete;

 private:
  ChaosEngine() = default;

  /// One seeded draw for this visit of (site, key): bumps the per-key visit
  /// counter and mixes (seed, site, key, visit) into a 64-bit hash all of
  /// the visit's fault rolls derive from.
  uint64_t VisitHash(Site site, uint64_t key);
  /// True with probability p, as a pure function of (visit_hash, kind).
  static bool Roll(uint64_t visit_hash, Fault kind, double p);
  /// Delay in [1, max_delay_us], as a pure function of (visit_hash, kind).
  uint32_t RollDelayUs(uint64_t visit_hash, Fault kind) const;

  void EvictorLoop();
  static void RecomputeActive();

  static std::atomic<bool> active_;

  mutable std::mutex mutex_;  // config_, visits_, evictor bookkeeping
  std::atomic<bool> armed_{false};
  ChaosConfig config_;
  std::map<uint64_t, uint64_t> visits_;       // visit count per (site, key)
  std::atomic<uint64_t> reload_ordinal_{0};   // armed Nth-reload counter
  std::atomic<uint64_t> total_faults_{0};
  std::atomic<uint64_t> fault_counts_[static_cast<size_t>(Fault::kMaxFault)] =
      {};

  // Scripted hooks (shared_ptr swap, same pattern the governor used).
  std::mutex hooks_mutex_;
  std::shared_ptr<const ChaosHooks> hooks_;
  std::atomic<uint64_t> hook_reload_ordinal_{0};

  // Background evictor: force-evicts the world every evictor_period_us
  // while armed. Joined by Disarm.
  std::thread evictor_;
  std::mutex evictor_mutex_;
  std::condition_variable evictor_cv_;
  bool evictor_stop_ = false;  // guarded by evictor_mutex_
};

}  // namespace idf::chaos
