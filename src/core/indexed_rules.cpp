#include "core/indexed_rules.h"

#include "core/indexed_agg.h"
#include "core/indexed_ops.h"
#include "core/indexed_rdd.h"

namespace idf {
namespace {

/// If `plan` is a scan of an indexed dataset whose indexed column is named
/// `key`, returns that dataset.
std::shared_ptr<const IndexedDataset> MatchIndexedScan(const PlanPtr& plan,
                                                       const std::string& key) {
  if (plan->kind() != LogicalPlan::Kind::kScan) return nullptr;
  const auto& scan = static_cast<const ScanNode&>(*plan);
  auto indexed = std::dynamic_pointer_cast<const IndexedDataset>(scan.dataset());
  if (indexed == nullptr) return nullptr;
  const int col = indexed->indexed_column();
  if (col < 0) return nullptr;
  if (indexed->schema()->field(static_cast<size_t>(col)).name != key) {
    return nullptr;
  }
  return indexed;
}

/// Splits a predicate into its AND-ed conjuncts.
void FlattenConjuncts(const ExprPtr& expr, std::vector<ExprPtr>& out) {
  if (expr->kind() == Expr::Kind::kAnd) {
    const auto& logical = static_cast<const LogicalExpr&>(*expr);
    FlattenConjuncts(logical.left(), out);
    FlattenConjuncts(logical.right(), out);
    return;
  }
  out.push_back(expr);
}

ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts) {
  if (conjuncts.empty()) return nullptr;
  ExprPtr combined = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    combined = And(combined, conjuncts[i]);
  }
  return combined;
}

}  // namespace

Result<PhysOpPtr> IndexedJoinStrategy::TryPlan(const PlanPtr& plan,
                                               Planner& planner) const {
  if (plan->kind() != LogicalPlan::Kind::kJoin) return PhysOpPtr(nullptr);
  const auto& join = static_cast<const JoinNode&>(*plan);
  // Outer joins fall back to vanilla execution (the index cannot enumerate
  // its own unmatched rows without a full scan anyway).
  if (join.join_type() != JoinType::kInner) return PhysOpPtr(nullptr);

  // "If any of the sides of the relation are indexed, our implementation
  // triggers an indexed join operation" (§III-A).
  if (auto indexed = MatchIndexedScan(join.left(), join.left_key())) {
    IDF_ASSIGN_OR_RETURN(PhysOpPtr probe, planner.PlanNode(join.right()));
    return PhysOpPtr(std::make_shared<IndexedJoinExec>(
        std::move(indexed), std::move(probe), join.right_key(),
        /*indexed_is_left=*/true));
  }
  if (auto indexed = MatchIndexedScan(join.right(), join.right_key())) {
    IDF_ASSIGN_OR_RETURN(PhysOpPtr probe, planner.PlanNode(join.left()));
    return PhysOpPtr(std::make_shared<IndexedJoinExec>(
        std::move(indexed), std::move(probe), join.left_key(),
        /*indexed_is_left=*/false));
  }
  return PhysOpPtr(nullptr);
}

Result<PhysOpPtr> IndexLookupStrategy::TryPlan(const PlanPtr& plan,
                                               Planner& planner) const {
  (void)planner;
  if (plan->kind() != LogicalPlan::Kind::kFilter) return PhysOpPtr(nullptr);
  const auto& filter = static_cast<const FilterNode&>(*plan);
  if (filter.child()->kind() != LogicalPlan::Kind::kScan) {
    return PhysOpPtr(nullptr);
  }
  const auto& scan = static_cast<const ScanNode&>(*filter.child());
  auto indexed =
      std::dynamic_pointer_cast<const IndexedDataset>(scan.dataset());
  if (indexed == nullptr || indexed->indexed_column() < 0) {
    return PhysOpPtr(nullptr);
  }
  const std::string& key_name =
      indexed->schema()
          ->field(static_cast<size_t>(indexed->indexed_column()))
          .name;

  // Find a `key == literal` conjunct; everything else becomes the residual.
  std::vector<ExprPtr> conjuncts;
  FlattenConjuncts(filter.predicate(), conjuncts);
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    auto match = MatchColumnEqualsLiteral(*conjuncts[i]);
    if (!match.has_value() || match->column != key_name) continue;
    if (match->literal.is_null()) continue;  // key = NULL matches nothing
    std::vector<ExprPtr> residual = conjuncts;
    residual.erase(residual.begin() + static_cast<long>(i));
    return PhysOpPtr(std::make_shared<IndexLookupExec>(
        indexed, match->literal, CombineConjuncts(residual)));
  }
  return PhysOpPtr(nullptr);
}

void InstallIndexedExtensions(Session& session) {
  static const char kExtension[] = "indexed-dataframe";
  // Atomic check-and-mark: two queries racing to create the first index on
  // one session must not both install (duplicate strategies would plan
  // correctly but shadow each other and bloat every later PlanNode pass).
  if (!session.TryMarkExtension(kExtension)) return;
  // Lookup outranks join (more specific); both outrank vanilla strategies.
  session.planner().PrependStrategy(std::make_shared<RowAggStrategy>());
  session.planner().PrependStrategy(std::make_shared<IndexedJoinStrategy>());
  session.planner().PrependStrategy(std::make_shared<IndexLookupStrategy>());
}

}  // namespace idf
