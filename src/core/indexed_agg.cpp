#include "core/indexed_agg.h"

#include "mem/governor.h"
#include "sql/agg_internal.h"
#include "sql/session.h"

namespace idf {

Result<TableHandle> RowAggExec::ExecuteImpl(Session& session,
                                            QueryMetrics& metrics) const {
  using agg_internal::FindOrCreateGroup;
  using agg_internal::GroupMap;
  using agg_internal::GroupState;
  using agg_internal::ResolvedAggs;

  Cluster& cluster = session.cluster();
  const std::shared_ptr<IndexedRdd>& rdd = indexed_->rdd();
  const Schema& in_schema = *rdd->schema();
  IDF_ASSIGN_OR_RETURN(ResolvedAggs resolved,
                       ResolvedAggs::Resolve(in_schema, group_by_, aggs_));
  RowLayout partial_layout(resolved.partial_schema);

  const uint32_t P = rdd->num_partitions();
  const uint32_t R = resolved.group_idx.empty() ? 1 : P;
  const uint64_t shuffle_id = cluster.shuffle().NewShuffle(P, R);

  StageSpec partial_stage;
  partial_stage.name = "row-direct partial aggregate";
  for (uint32_t p = 0; p < P; ++p) {
    partial_stage.tasks.push_back(TaskSpec{
        cluster.HomeExecutorFor(rdd->rdd_id(), p),
        {},
        0,
        [&, p](TaskContext& ctx) -> Status {
          IDF_ASSIGN_OR_RETURN(std::shared_ptr<const IndexedPartition> part,
                               rdd->GetPartition(p, indexed_->version(), ctx));
          // Pin the partition's batches for the whole aggregation scan.
          mem::AccessScope scan_scope;
          const RowLayout& layout = part->layout();
          ctx.metrics().rows_read += part->num_rows();

          // Aggregate straight off the binary rows — no columnar detour.
          GroupMap groups;
          part->ForEachRow([&](const uint8_t* row) {
            RowVec key;
            key.reserve(resolved.group_idx.size());
            for (size_t g : resolved.group_idx) {
              key.push_back(layout.GetValue(row, g));
            }
            GroupState& state =
                FindOrCreateGroup(groups, std::move(key), aggs_.size());
            for (size_t a = 0; a < aggs_.size(); ++a) {
              const Value v =
                  resolved.agg_idx[a] < 0
                      ? Value::Int64(1)
                      : layout.GetValue(
                            row, static_cast<size_t>(resolved.agg_idx[a]));
              state.accums[a].AddValue(aggs_[a], v);
            }
          });

          std::vector<ShuffleBuffer> buffers(R);
          std::vector<uint8_t> scratch;
          for (const auto& [code, bucket] : groups) {
            const uint32_t rp =
                resolved.group_idx.empty() ? 0 : HashPartition(code, R);
            for (const GroupState& state : bucket) {
              RowVec row = resolved.EncodePartial(state, aggs_);
              Result<uint32_t> size = partial_layout.ComputeRowSize(row);
              IDF_RETURN_IF_ERROR(size.status());
              scratch.resize(*size);
              partial_layout.EncodeRow(row, scratch.data(),
                                       PackedRowPtr::Null());
              buffers[rp].AppendRow(scratch.data(), *size);
            }
          }
          for (uint32_t rp = 0; rp < R; ++rp) {
            if (buffers[rp].num_rows == 0) continue;
            buffers[rp].source = ctx.executor();
            ctx.metrics().shuffle_bytes_written += buffers[rp].bytes.size();
            cluster.shuffle().PutMapOutput(shuffle_id, p, rp,
                                           std::move(buffers[rp]));
          }
          return Status::OK();
        },
        {{rdd->rdd_id(), p}}});
  }
  IDF_ASSIGN_OR_RETURN(StageMetrics psm, cluster.RunStage(partial_stage));
  metrics.MergeStage(psm);

  IDF_ASSIGN_OR_RETURN(
      TableHandle out,
      FinalizeAggregation(session, metrics, shuffle_id, R, rdd->schema(),
                          group_by_, aggs_, resolved));
  cluster.shuffle().Release(shuffle_id);
  return out;
}

Result<PhysOpPtr> RowAggStrategy::TryPlan(const PlanPtr& plan,
                                          Planner& planner) const {
  (void)planner;
  if (plan->kind() != LogicalPlan::Kind::kAggregate) return PhysOpPtr(nullptr);
  const auto& agg = static_cast<const AggregateNode&>(*plan);
  if (agg.child()->kind() != LogicalPlan::Kind::kScan) {
    return PhysOpPtr(nullptr);
  }
  const auto& scan = static_cast<const ScanNode&>(*agg.child());
  auto indexed =
      std::dynamic_pointer_cast<const IndexedDataset>(scan.dataset());
  if (indexed == nullptr) return PhysOpPtr(nullptr);
  return PhysOpPtr(std::make_shared<RowAggExec>(std::move(indexed),
                                                agg.group_by(), agg.aggs()));
}

}  // namespace idf
