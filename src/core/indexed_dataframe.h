// IndexedDataFrame — the library's public API, mirroring the paper's
// Listing 1:
//
//   df.createIndex(colNo).cache()   -> IndexedDataFrame::Create(df, "col")
//   df.getRows(key)                 -> idf.GetRows(key)
//   df.appendRows(otherDF)          -> idf.AppendRows(other)
//   df.join(right, "left == right") -> idf.AsDataFrame().Join(right, ...)
//
// An IndexedDataFrame is an immutable handle onto one *version* of an
// Indexed Batch RDD. AppendRows returns a new handle (new version) and
// leaves this one valid — divergent appends from one parent coexist
// (§III-E, Listing 2).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/indexed_rdd.h"
#include "core/indexed_rules.h"
#include "sql/session.h"

namespace idf {

/// Per-partition index-vs-data footprint, for the Fig. 11 experiment.
struct PartitionMemory {
  uint32_t partition = 0;
  uint64_t data_bytes = 0;
  uint64_t index_bytes = 0;
  uint64_t num_rows = 0;

  double overhead_fraction() const {
    return data_bytes == 0
               ? 0.0
               : static_cast<double>(index_bytes) /
                     static_cast<double>(data_bytes);
  }
};

class IndexedDataFrame {
 public:
  IndexedDataFrame() = default;

  /// `createIndex`: executes `df`, hash-shuffles its rows on `column`, and
  /// builds the per-partition cTrie indexes. Also installs the index-aware
  /// planner strategies into the session (the "attach the library" step).
  /// The result is cached in cluster memory — `Cache()` exists for Listing-1
  /// API parity and is a no-op.
  static Result<IndexedDataFrame> Create(const DataFrame& df,
                                         const std::string& column,
                                         const IndexOptions& options = {},
                                         QueryMetrics* metrics = nullptr);

  bool valid() const { return rdd_ != nullptr; }

  /// No-op (the index is materialized in executor memory at creation);
  /// returns *this so `Create(...)->Cache()` reads like the paper's API.
  IndexedDataFrame& Cache() { return *this; }

  /// `getRows`: point lookup. Returns all rows whose indexed column equals
  /// `key`, as a driver-side table (the paper returns a small DataFrame).
  Result<CollectedTable> GetRows(const Value& key,
                                 QueryMetrics* metrics = nullptr) const;

  /// `appendRows`: appends the rows of `rows` (same schema), returning a new
  /// IndexedDataFrame version. This handle stays valid and unchanged.
  Result<IndexedDataFrame> AppendRows(const DataFrame& rows,
                                      QueryMetrics* metrics = nullptr) const;

  /// The DataFrame view of this version. Joins/filters on it flow through
  /// the planner, where the indexed strategies kick in; other operators use
  /// the row-RDD fallback scan.
  DataFrame AsDataFrame() const;

  /// Convenience indexed equi-join: this (indexed, build side) with `probe`.
  DataFrame Join(const DataFrame& probe, const std::string& probe_key) const;

  /// Registers this version in the session catalog so SQL queries against
  /// `name` see the index (`SELECT ... FROM name WHERE key = ...` plans an
  /// IndexLookupExec, joins on the key plan an IndexedJoinExec).
  void RegisterAs(const std::string& name) const;

  uint64_t version() const { return version_; }
  uint32_t num_partitions() const { return rdd_->num_partitions(); }
  uint64_t num_rows() const { return rdd_->RowsAtVersion(version_); }
  const std::string& indexed_column_name() const { return column_name_; }
  const std::shared_ptr<IndexedRdd>& rdd() const { return rdd_; }

  /// Fig. 11: per-partition memory overhead of the index.
  Result<std::vector<PartitionMemory>> MemoryReport() const;

  /// Wraps an existing RDD version (used by core/persistence.h's loader and
  /// other advanced integrations).
  static IndexedDataFrame FromRdd(std::shared_ptr<IndexedRdd> rdd,
                                  uint64_t version, std::string column_name) {
    return IndexedDataFrame(std::move(rdd), version, std::move(column_name));
  }

 private:
  IndexedDataFrame(std::shared_ptr<IndexedRdd> rdd, uint64_t version,
                   std::string column_name)
      : rdd_(std::move(rdd)),
        version_(version),
        column_name_(std::move(column_name)) {}

  std::shared_ptr<IndexedRdd> rdd_;
  uint64_t version_ = 0;
  std::string column_name_;
};

}  // namespace idf
