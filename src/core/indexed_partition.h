// IndexedPartition: one partition of the Indexed Batch RDD (§III-C, Fig. 3).
//
// Three cooperating structures:
//  (1) a cTrie mapping 64-bit key codes to the packed pointer of the *latest*
//      row with that key,
//  (2) row batches (PartitionStore) holding the binary rows,
//  (3) backward pointers: each row's header points at the previous row with
//      the same key, forming one linked list per unique key.
//
// Key codes: integer columns use their numeric value (injective); strings and
// doubles hash into the code and lookups verify the stored column against the
// probe key (§IV-E: "Strings need to be hashed into a number which is then
// used as a key in the cTrie").
//
// Threading: single writer per partition (the engine schedules at most one
// append task per partition), any number of readers against snapshots —
// exactly the cTrie's contract.
#pragma once

#include <functional>
#include <memory>

#include "ctrie/ctrie.h"
#include "engine/block.h"
#include "storage/partition_store.h"
#include "storage/row_layout.h"
#include "types/schema.h"

namespace idf {

class IndexedPartition final : public Block {
 public:
  IndexedPartition(SchemaPtr schema, size_t key_column,
                   uint32_t batch_capacity = RowBatch::kDefaultCapacity);

  const Schema& schema() const { return layout_.schema(); }
  const RowLayout& layout() const { return layout_; }
  size_t key_column() const { return key_column_; }

  // ---- writes (single writer) -------------------------------------------

  /// Indexes and stores one row. Rows with a NULL key are stored but not
  /// indexed (they are unreachable via lookups, like Spark's null join keys).
  Status InsertRow(const RowVec& row);

  /// Same, for an already-encoded row (shuffle-received bytes).
  Status InsertEncoded(const uint8_t* row, uint32_t len);

  /// Hints how many bytes of rows are about to be inserted, so freshly
  /// opened row batches are right-sized (important after snapshots, whose
  /// sealing would otherwise force a full-size batch per tiny append).
  void ReserveHint(uint64_t bytes) { store_.ReserveHint(bytes); }

  /// Tags this partition's row batches for the memory governor's salvage
  /// catalog, enabling recovery from spill files after an executor loss
  /// (see PartitionStore::SetSpillTag).
  void SetSpillTag(uint64_t owner, uint32_t shard) {
    store_.SetSpillTag(owner, shard);
  }

  /// Ends salvage-tagging: rows inserted after this call never enter the
  /// salvage catalog (see PartitionStore::ClearSpillTag).
  void ClearSpillTag() { store_.ClearSpillTag(); }

  /// Declares this version fully built: seals the open tail batch so the
  /// whole partition is evictable under memory pressure. Every later write
  /// goes through Snapshot() (which would seal the tail anyway), so sealing
  /// here costs nothing and lets the governor spill freshly built bases.
  void SealStorage() { store_.SealTail(); }

  // ---- reads ------------------------------------------------------------

  /// Walks the backward chain of `key_code`, newest to oldest, invoking `fn`
  /// for each stored row. Returns the number of rows visited. Callers whose
  /// key type hashes (strings/doubles) must verify the key column.
  size_t ForEachRowOfKey(uint64_t key_code,
                         const std::function<void(const uint8_t*)>& fn) const;

  /// Convenience: all rows whose key column *equals* `key` (verification
  /// included), decoded.
  std::vector<RowVec> LookupRows(const Value& key) const;

  /// Scans every row in storage order (index fallback path / full scans).
  void ForEachRow(const std::function<void(const uint8_t*)>& fn) const;

  // ---- versioning ---------------------------------------------------------

  /// O(1) snapshot for multi-version appends (§III-E): the new partition
  /// shares the cTrie (generation snapshot) and all sealed row batches; the
  /// open tail batch is copied lazily on the next divergent write.
  ///
  /// Logically const: readers of *this* are unaffected; the cTrie root
  /// renewal it performs is the algorithm's standard, thread-safe mechanism.
  std::shared_ptr<IndexedPartition> Snapshot() const;

  // ---- statistics -----------------------------------------------------------

  uint64_t num_rows() const { return store_.num_rows(); }
  uint64_t data_bytes() const { return store_.data_bytes(); }
  uint32_t num_batches() const { return store_.num_batches(); }

  /// Total batch capacity granted so far (PartitionStore::allocated_bytes).
  /// The streaming shuffle's insert gate measures ReserveHint consumption
  /// against this to keep batch layouts byte-identical to a single up-front
  /// hint (docs/SHUFFLE.md).
  uint64_t allocated_bytes() const { return store_.allocated_bytes(); }

  /// Configured full-size batch capacity (the hint gate's threshold).
  uint32_t batch_capacity() const { return store_.batch_capacity(); }

  /// COW batch opens charged to this partition (see
  /// PartitionStore::cow_batch_opens). A freshly snapshotted partition
  /// starts at zero, so the value attributes copies to the divergent writer.
  uint64_t cow_batch_opens() const { return store_.cow_batch_opens(); }

  /// Approximate bytes held by the cTrie index (Fig. 11's overhead metric).
  uint64_t IndexBytes() const;

  /// Data + index footprint; drives simulated transfer costs.
  uint64_t ByteSize() const override { return data_bytes() + IndexBytes(); }

 private:
  IndexedPartition(SchemaPtr schema, size_t key_column,
                   CTrie<uint64_t, uint64_t> index, PartitionStore store);

  Status CheckInsertable(const RowVec& row) const;

  RowLayout layout_;
  size_t key_column_;
  CTrie<uint64_t, uint64_t> index_;  // key code -> PackedRowPtr bits
  PartitionStore store_;
};

}  // namespace idf
