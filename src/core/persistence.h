// Out-of-core persistence for the Indexed DataFrame.
//
// The paper stores everything in memory "without loss of generality; the
// representation could easily extend to store data out-of-core, for example
// in SSD or NVMe devices" (§III-C). This module implements that extension:
// partitions serialize their row batches verbatim (packed pointers remain
// valid because batch indices and offsets are preserved) and the cTrie is
// rebuilt on load with a single storage-order scan — the last row inserted
// for a key becomes the chain head again, and the backward pointers are
// already encoded in the row headers.
//
// A saved Indexed DataFrame is a directory:
//   manifest.idf    — schema, key column, partition count, batch capacity
//   part-<N>.bin    — one file per partition (batches, raw)
//
// Loading registers disk-backed lineage: if an executor later loses a
// loaded partition, it is re-read from the file (and any post-load appends
// are replayed on top), the same recovery path as §III-D with the file
// standing in for the replayable source.
#pragma once

#include <string>

#include "core/indexed_dataframe.h"
#include "core/indexed_partition.h"

namespace idf {

/// Serializes one partition (schema, key column, batches) to `path`.
Status SavePartition(const IndexedPartition& partition,
                     const std::string& path);

/// Loads a partition saved by SavePartition; rebuilds the index.
Result<std::shared_ptr<IndexedPartition>> LoadPartition(
    const std::string& path);

/// Saves every partition of `df`'s version plus a manifest into `dir`
/// (created if missing).
Status SaveIndexedDataFrame(const IndexedDataFrame& df,
                            const std::string& dir);

/// Restores an Indexed DataFrame saved by SaveIndexedDataFrame. The result
/// is fully functional: lookups, joins, appends (new versions), and
/// fault-tolerant via disk-backed lineage.
Result<IndexedDataFrame> LoadIndexedDataFrame(Session& session,
                                              const std::string& dir);

}  // namespace idf
