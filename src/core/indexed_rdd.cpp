#include "core/indexed_rdd.h"

#include <deque>
#include <fstream>

#include "common/logging.h"
#include "mem/governor.h"
#include "sql/physical.h"

namespace idf {

namespace {

/// Streams routed shuffle buffers into an IndexedPartition while keeping
/// the row-batch layout byte-identical to the classic barrier path, which
/// issued ONE ReserveHint(total_routed_bytes) before inserting anything.
///
/// Batch opens consume the store's hint: capacity = clamp(hint, row, cap)
/// (see PartitionStore). With one big up-front hint, every open grants the
/// full batch capacity until the hint remainder drops below it. Streaming
/// delivers hints per buffer, so the naive order (hint, insert, hint, ...)
/// would open under-sized batches mid-stream and change num_batches /
/// cow_batch_opens. The gate restores the invariant: rows are inserted only
/// while the undelivered hint credit (hinted - capacity granted since this
/// inserter started) covers a full batch, or once the stream is complete —
/// so every open sees either hint >= cap (grants cap, like the big-hint
/// path) or the exact final remainder (like the big-hint tail).
class GatedRowInserter {
 public:
  explicit GatedRowInserter(IndexedPartition& part)
      : part_(part),
        cap_(part.batch_capacity()),
        baseline_(part.allocated_bytes()) {}

  /// Accounts one routed buffer's hint and queues its rows for insertion.
  void Deliver(std::shared_ptr<const ShuffleBuffer> buf) {
    hinted_ += buf->bytes.size();
    part_.ReserveHint(buf->bytes.size());
    queue_.push_back(std::move(buf));
  }

  /// Inserts queued rows while the gate allows. Call with stream_done =
  /// false after each Deliver (overlap), then once with true at end of
  /// stream (flushes the tail under the exact-remainder hint).
  Status Drain(bool stream_done) {
    while (!queue_.empty()) {
      const ShuffleBuffer& buf = *queue_.front();
      while (cursor_ < buf.bytes.size()) {
        if (!stream_done) {
          const int64_t credit =
              static_cast<int64_t>(hinted_) -
              static_cast<int64_t>(part_.allocated_bytes() - baseline_);
          if (credit < static_cast<int64_t>(cap_)) return Status::OK();
        }
        const uint8_t* row = buf.bytes.data() + cursor_;
        const uint32_t size = RowLayout::RowSize(row);
        IDF_CHECK_MSG(size >= 16 && cursor_ + size <= buf.bytes.size(),
                      "corrupt shuffle buffer");
        IDF_RETURN_IF_ERROR(part_.InsertEncoded(row, size));
        cursor_ += size;
        ++rows_inserted_;
      }
      cursor_ = 0;
      queue_.pop_front();
    }
    return Status::OK();
  }

  uint64_t rows_inserted() const { return rows_inserted_; }

 private:
  IndexedPartition& part_;
  const uint32_t cap_;       // full batch capacity (gate threshold)
  const uint64_t baseline_;  // allocated_bytes at construction
  uint64_t hinted_ = 0;
  uint64_t rows_inserted_ = 0;
  size_t cursor_ = 0;  // byte offset into queue_.front()
  std::deque<std::shared_ptr<const ShuffleBuffer>> queue_;
};

/// Drives a GatedRowInserter from a routed-buffer stream to exhaustion.
Status InsertRoutedStream(RoutedBufferStream& in, GatedRowInserter& inserter) {
  for (;;) {
    IDF_ASSIGN_OR_RETURN(std::shared_ptr<const ShuffleBuffer> buf, in.Next());
    if (buf == nullptr) break;
    inserter.Deliver(std::move(buf));
    IDF_RETURN_IF_ERROR(inserter.Drain(/*stream_done=*/false));
  }
  return inserter.Drain(/*stream_done=*/true);
}

/// Replays one salvaged spill segment into `target`: the file holds the
/// batch's verbatim self-delimiting rows, and InsertEncoded re-derives the
/// index entries and back-pointer chains.
Status ReplaySalvageSegment(const mem::SalvageSegment& segment,
                            IndexedPartition& target) {
  std::ifstream in(segment.path, std::ios::binary);
  if (!in) {
    return Status::Unavailable("cannot open salvaged spill file '" +
                               segment.path + "'");
  }
  std::vector<uint8_t> bytes(segment.bytes);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!in || in.gcount() != static_cast<std::streamsize>(bytes.size())) {
    return Status::Unavailable("short read from salvaged spill file '" +
                               segment.path + "'");
  }
  uint64_t rows = 0;
  size_t cursor = 0;
  while (cursor < bytes.size()) {
    const uint32_t size = RowLayout::RowSize(bytes.data() + cursor);
    if (size < 16 || cursor + size > bytes.size()) {
      return Status::Internal("corrupt salvaged spill file '" + segment.path +
                              "'");
    }
    IDF_RETURN_IF_ERROR(target.InsertEncoded(bytes.data() + cursor, size));
    cursor += size;
    ++rows;
  }
  if (rows != segment.rows) {
    return Status::Internal("salvaged spill file row count mismatch");
  }
  return Status::OK();
}

}  // namespace

IndexedRdd::~IndexedRdd() {
  mem::MemoryGovernor::Global().DropSalvage(rdd_id_);
}

IndexedRdd::IndexedRdd(Session& session, TableHandle base, size_t key_column,
                       uint32_t num_partitions, uint32_t batch_capacity)
    : session_(&session),
      rdd_id_(session.cluster().NewRddId()),
      base_(std::move(base)),
      schema_(base_.schema),
      key_column_(key_column),
      num_partitions_(num_partitions),
      batch_capacity_(batch_capacity) {}

Result<std::shared_ptr<IndexedRdd>> IndexedRdd::Restore(
    Session& session, SchemaPtr schema, size_t key_column,
    uint32_t num_partitions, uint32_t batch_capacity, PartitionLoader loader,
    QueryMetrics& metrics) {
  if (key_column >= schema->num_fields()) {
    return Status::InvalidArgument("index column out of range");
  }
  IDF_CHECK(loader != nullptr);
  TableHandle no_base;
  no_base.schema = schema;
  auto rdd = std::shared_ptr<IndexedRdd>(new IndexedRdd(
      session, no_base, key_column, num_partitions, batch_capacity));
  rdd->loader_ = std::move(loader);

  Cluster& cluster = session.cluster();
  std::atomic<uint64_t> total_rows{0};
  StageSpec stage;
  stage.name = "restore index";
  for (uint32_t p = 0; p < num_partitions; ++p) {
    stage.tasks.push_back(TaskSpec{
        cluster.HomeExecutorFor(rdd->rdd_id_, p),
        {},
        0,
        [&, p](TaskContext& ctx) -> Status {
          IDF_ASSIGN_OR_RETURN(std::shared_ptr<IndexedPartition> part,
                               rdd->loader_(p));
          if (part->schema() != *schema) {
            return Status::InvalidArgument(
                "loaded partition schema mismatch");
          }
          total_rows += part->num_rows();
          ctx.metrics().rows_written += part->num_rows();
          ctx.cluster().blocks().Put(BlockId{rdd->rdd_id_, p, 0},
                                     ctx.executor(), std::move(part));
          return Status::OK();
        },
        {}});
  }
  IDF_ASSIGN_OR_RETURN(StageMetrics sm, cluster.RunStage(stage));
  metrics.MergeStage(sm);
  {
    std::lock_guard<std::mutex> lock(rdd->mutex_);
    rdd->versions_[0] = VersionInfo{0, TableHandle{}, total_rows.load()};
  }
  // Lineage: the loader is the replayable source for lost partitions.
  session.cluster().RegisterLineage(
      rdd->rdd_id_,
      [weak = std::weak_ptr<IndexedRdd>(rdd)](
          uint32_t partition, uint64_t version,
          TaskContext& ctx) -> Result<BlockPtr> {
        auto self = weak.lock();
        if (self == nullptr) {
          return Status::Unavailable("indexed RDD no longer exists");
        }
        return self->Recompute(partition, version, ctx);
      });
  return rdd;
}

Result<std::shared_ptr<IndexedRdd>> IndexedRdd::Create(
    Session& session, const TableHandle& base, size_t key_column,
    const IndexOptions& options, QueryMetrics& metrics) {
  if (key_column >= base.schema->num_fields()) {
    return Status::InvalidArgument("index column out of range");
  }
  uint32_t partitions = options.num_partitions != 0
                            ? options.num_partitions
                            : session.options().default_partitions;
  auto rdd = std::shared_ptr<IndexedRdd>(new IndexedRdd(
      session, base, key_column, partitions, options.batch_capacity));
  IDF_RETURN_IF_ERROR(rdd->BuildBase(metrics));

  // Lineage: a lost partition of any version is rebuilt from the base table
  // plus the append chain.
  session.cluster().RegisterLineage(
      rdd->rdd_id_,
      [weak = std::weak_ptr<IndexedRdd>(rdd)](
          uint32_t partition, uint64_t version,
          TaskContext& ctx) -> Result<BlockPtr> {
        auto self = weak.lock();
        if (self == nullptr) {
          return Status::Unavailable("indexed RDD no longer exists");
        }
        return self->Recompute(partition, version, ctx);
      });
  return rdd;
}

Status IndexedRdd::ShuffleToPartitions(
    const TableHandle& source, const std::string& stage_name,
    QueryMetrics& metrics,
    const std::function<Status(TaskContext&, uint32_t, RoutedBufferStream&)>&
        consume) {
  Cluster& cluster = session_->cluster();
  if (*source.schema != *schema_) {
    return Status::InvalidArgument(
        "appended rows must match the indexed schema: " + schema_->ToString() +
        " vs " + source.schema->ToString());
  }
  RowLayout layout(schema_);
  const uint64_t shuffle_id =
      cluster.shuffle().NewShuffle(source.num_partitions, num_partitions_);
  // Sampled once per shuffle so the map tasks, reduce tasks, and stage
  // scheduling below always agree on the transport.
  const bool pipelined = ShufflePipelineEnabled();

  // Map: route rows to their indexed partitions by key-code hash (§III-C
  // "its rows are shuffled based on the hash partitioning scheme"). Under
  // the streaming transport each per-target buffer is pushed into its
  // channel as it seals, so consumers start inserting mid-encode.
  StageSpec map_stage;
  map_stage.name = stage_name + " (shuffle)";
  for (uint32_t p = 0; p < source.num_partitions; ++p) {
    map_stage.tasks.push_back(TaskSpec{
        cluster.HomeExecutorFor(source.rdd_id, p),
        {},
        0,
        [&, p](TaskContext& ctx) -> Status {
          // Scope: key_col stays valid across the encode loop even if the
          // budget enforcer runs while routed buffers allocate.
          mem::AccessScope scope;
          Result<ChunkPtr> chunk = FetchChunk(ctx, source, p);
          IDF_RETURN_IF_ERROR(chunk.status());
          const ColumnarChunk& input = **chunk;
          const ColumnVector& key_col = input.column(key_column_);
          ctx.metrics().rows_read += input.num_rows();

          ShuffleWriter writer(cluster.shuffle(), shuffle_id, p,
                               num_partitions_, ctx.executor(), pipelined,
                               input.num_rows());
          std::vector<uint8_t> scratch;  // reused across rows
          Status routed = Status::OK();
          for (size_t i = 0; i < input.num_rows() && routed.ok(); ++i) {
            // Null keys go to partition 0 (stored, never indexed).
            const uint32_t target =
                key_col.IsNull(i) ? 0 : PartitionOf(key_col.KeyCodeAt(i));
            input.EncodeRowTo(layout, i, scratch);
            routed = writer.Append(target, scratch.data(),
                                   static_cast<uint32_t>(scratch.size()));
          }
          // Finish unconditionally: it publishes remainders and (streaming)
          // marks this map task done so ordered consumers can advance.
          const Status finished = writer.Finish();
          ctx.metrics().shuffle_bytes_written += writer.bytes_written();
          return routed.ok() ? finished : routed;
        },
        {{source.rdd_id, p}}});
  }

  // Reduce: each partition drains its ordered routed-buffer stream.
  StageSpec reduce_stage;
  reduce_stage.name = stage_name + " (insert)";
  for (uint32_t t = 0; t < num_partitions_; ++t) {
    reduce_stage.tasks.push_back(TaskSpec{
        cluster.HomeExecutorFor(rdd_id_, t),
        {},
        0,
        [&, t](TaskContext& ctx) -> Status {
          std::unique_ptr<RoutedBufferStream> in =
              OpenReduceStream(ctx, shuffle_id, t, pipelined);
          return consume(ctx, t, *in);
        },
        {{rdd_id_, t}}});
  }

  Result<std::vector<StageMetrics>> stage_metrics =
      cluster.RunShuffleStages(shuffle_id, map_stage, reduce_stage, pipelined);
  cluster.shuffle().Release(shuffle_id);
  IDF_RETURN_IF_ERROR(stage_metrics.status());
  for (const StageMetrics& sm : *stage_metrics) metrics.MergeStage(sm);
  return Status::OK();
}

Status IndexedRdd::BuildBase(QueryMetrics& metrics) {
  std::atomic<uint64_t> total_rows{0};
  IDF_RETURN_IF_ERROR(ShuffleToPartitions(
      base_, "createIndex", metrics,
      [&](TaskContext& ctx, uint32_t partition,
          RoutedBufferStream& in) -> Status {
        auto part = std::make_shared<IndexedPartition>(schema_, key_column_,
                                                       batch_capacity_);
        // Version-0 batches are salvageable: if they spill, recovery can
        // reload the spill files instead of re-routing the base table.
        part->SetSpillTag(rdd_id_, partition);
        // Insert as buffers arrive; the gate keeps the batch layout
        // identical to a single up-front routed-bytes hint.
        GatedRowInserter inserter(*part);
        IDF_RETURN_IF_ERROR(InsertRoutedStream(in, inserter));
        total_rows += part->num_rows();
        ctx.metrics().rows_written += part->num_rows();
        part->SealStorage();  // built: evictable from here on
        ctx.cluster().blocks().Put(BlockId{rdd_id_, partition, 0},
                                   ctx.executor(), part);
        return Status::OK();
      }));
  std::lock_guard<std::mutex> lock(mutex_);
  versions_[0] = VersionInfo{0, TableHandle{}, total_rows.load()};
  return Status::OK();
}

Result<uint64_t> IndexedRdd::Append(uint64_t parent_version,
                                    const TableHandle& rows,
                                    QueryMetrics& metrics) {
  uint64_t new_version;
  uint64_t parent_rows;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = versions_.find(parent_version);
    if (it == versions_.end()) {
      return Status::NotFound("unknown parent version " +
                              std::to_string(parent_version));
    }
    parent_rows = it->second.num_rows;
    new_version = next_version_++;
  }

  std::atomic<uint64_t> appended{0};
  Status status = ShuffleToPartitions(
      rows, "appendRows", metrics,
      [&](TaskContext& ctx, uint32_t partition,
          RoutedBufferStream& in) -> Status {
        // Fetch the parent partition, snapshot it (O(1), shared state), and
        // insert the routed rows into the snapshot (§III-E) as their
        // buffers stream in.
        IDF_ASSIGN_OR_RETURN(
            std::shared_ptr<const IndexedPartition> parent,
            GetPartition(partition, parent_version, ctx));
        std::shared_ptr<IndexedPartition> next = parent->Snapshot();
        ++ctx.metrics().ctrie_snapshots;
        GatedRowInserter inserter(*next);
        IDF_RETURN_IF_ERROR(InsertRoutedStream(in, inserter));
        // `next` starts with zero COW opens, so this is exactly the number
        // of sealed-tail divergences caused by this append (Fig. 9).
        ctx.metrics().batch_copies += next->cow_batch_opens();
        appended += inserter.rows_inserted();
        ctx.metrics().rows_written += inserter.rows_inserted();
        next->SealStorage();  // built: evictable from here on
        ctx.cluster().blocks().Put(BlockId{rdd_id_, partition, new_version},
                                   ctx.executor(), std::move(next));
        return Status::OK();
      });
  if (!status.ok()) {
    // Unwind a failed (or cancelled) append: reduce tasks that completed
    // before the stage aborted have already published blocks at the new
    // version. The version is never registered, so no reader can reach
    // them — drop them now so they don't hold memory or shadow a future
    // append that mints a fresh version. Shared state stays exactly as it
    // was before this call.
    session_->cluster().blocks().DropVersion(rdd_id_, new_version);
    return status;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  versions_[new_version] =
      VersionInfo{parent_version, rows, parent_rows + appended.load()};
  return new_version;
}

Result<std::shared_ptr<const IndexedPartition>> IndexedRdd::GetPartition(
    uint32_t partition, uint64_t version, TaskContext& ctx) const {
  IDF_ASSIGN_OR_RETURN(
      BlockPtr block,
      ctx.cluster().GetOrCompute(BlockId{rdd_id_, partition, version}, ctx));
  auto part = std::dynamic_pointer_cast<const IndexedPartition>(block);
  IDF_CHECK_MSG(part != nullptr, "block is not an indexed partition");
  return part;
}

uint64_t IndexedRdd::RowsAtVersion(uint64_t version) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = versions_.find(version);
  IDF_CHECK_MSG(it != versions_.end(), "unknown version");
  return it->second.num_rows;
}

std::vector<uint64_t> IndexedRdd::Versions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<uint64_t> out;
  for (const auto& [v, info] : versions_) out.push_back(v);
  return out;
}

Status IndexedRdd::InsertRoutedRows(const TableHandle& table,
                                    uint32_t partition,
                                    IndexedPartition& target,
                                    TaskContext& ctx,
                                    uint64_t skip_rows) const {
  RowLayout layout(schema_);
  std::vector<uint8_t> scratch;
  for (uint32_t p = 0; p < table.num_partitions; ++p) {
    // Per-chunk scope: pins at most one source chunk at a time, so a tight
    // budget never needs the whole table resident to rebuild one partition.
    mem::AccessScope chunk_scope;
    IDF_ASSIGN_OR_RETURN(ChunkPtr chunk, FetchChunk(ctx, table, p));
    const ColumnVector& key_col = chunk->column(key_column_);
    for (size_t i = 0; i < chunk->num_rows(); ++i) {
      const uint32_t t =
          key_col.IsNull(i) ? 0 : PartitionOf(key_col.KeyCodeAt(i));
      if (t != partition) continue;
      if (skip_rows > 0) {
        --skip_rows;
        continue;
      }
      chunk->EncodeRowTo(layout, i, scratch);
      IDF_RETURN_IF_ERROR(target.InsertEncoded(
          scratch.data(), static_cast<uint32_t>(scratch.size())));
    }
  }
  return Status::OK();
}

Result<BlockPtr> IndexedRdd::Recompute(uint32_t partition, uint64_t version,
                                       TaskContext& ctx) const {
  // Collect the append chain root -> version.
  std::vector<TableHandle> appends;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t v = version;
    while (v != 0) {
      auto it = versions_.find(v);
      if (it == versions_.end()) {
        return Status::NotFound("recompute of unknown version " +
                                std::to_string(v));
      }
      appends.push_back(it->second.append_source);
      v = it->second.parent;
    }
  }
  std::reverse(appends.begin(), appends.end());

  IDF_LOG_INFO("re-indexing partition %u of rdd %llu at version %llu "
               "(replaying %zu appends)",
               partition, static_cast<unsigned long long>(rdd_id_),
               static_cast<unsigned long long>(version), appends.size());

  std::shared_ptr<IndexedPartition> part;
  if (loader_ != nullptr) {
    // Out-of-core RDD: the spill file is the replayable source.
    IDF_ASSIGN_OR_RETURN(part, loader_(partition));
  } else {
    part = std::make_shared<IndexedPartition>(schema_, key_column_,
                                              batch_capacity_);
    part->SetSpillTag(rdd_id_, partition);
    // Before re-routing the base table, check the governor's salvage
    // catalog: batches of the lost partition that were spilled to local
    // disk survive the block loss, and replaying their files is a
    // sequential read instead of a full base-table scan. Only a contiguous
    // prefix is usable — routing order is deterministic, so after reloading
    // the first M routed rows from spill we resume the re-route at row M.
    uint64_t salvaged_rows = 0;
    uint64_t salvaged_bytes = 0;
    const std::vector<mem::SalvageSegment> segments =
        mem::MemoryGovernor::Global().SalvagePrefix(rdd_id_, partition);
    for (const mem::SalvageSegment& segment : segments) {
      salvaged_bytes += segment.bytes;
    }
    part->ReserveHint(salvaged_bytes);
    for (const mem::SalvageSegment& segment : segments) {
      IDF_RETURN_IF_ERROR(ReplaySalvageSegment(segment, *part));
      salvaged_rows += segment.rows;
    }
    if (!segments.empty()) {
      IDF_LOG_INFO("salvaged %llu rows of rdd %llu partition %u from %zu "
                   "spill files",
                   static_cast<unsigned long long>(salvaged_rows),
                   static_cast<unsigned long long>(rdd_id_), partition,
                   segments.size());
    }
    IDF_RETURN_IF_ERROR(
        InsertRoutedRows(base_, partition, *part, ctx, salvaged_rows));
    // The append replay below writes into this same store. Salvage maps a
    // catalog prefix 1:1 onto base routing order, so batches holding append
    // rows (or a base/append mix in the tail) must never register: seal the
    // base-only tail and stop tagging before the first append row lands.
    part->ClearSpillTag();
  }
  for (const TableHandle& append : appends) {
    IDF_RETURN_IF_ERROR(InsertRoutedRows(append, partition, *part, ctx));
  }
  part->SealStorage();  // rebuilt: evictable from here on
  return BlockPtr(part);
}

// ---- IndexedDataset ---------------------------------------------------------

Result<TableHandle> IndexedDataset::ScanAsColumnar(
    Session& session, QueryMetrics& metrics) const {
  Cluster& cluster = session.cluster();
  TableSink sink(session, rdd_->schema(), rdd_->num_partitions());
  StageSpec stage;
  stage.name = "indexed fallback scan";
  for (uint32_t p = 0; p < rdd_->num_partitions(); ++p) {
    stage.tasks.push_back(TaskSpec{
        cluster.HomeExecutorFor(rdd_->rdd_id(), p),
        {},
        0,
        [&, p](TaskContext& ctx) -> Status {
          IDF_ASSIGN_OR_RETURN(std::shared_ptr<const IndexedPartition> part,
                               rdd_->GetPartition(p, version_, ctx));
          // Row-to-columnar conversion: the real cost of running regular
          // operators over the row-wise indexed representation (Fig. 8).
          // The scan scope pins each batch once for the whole conversion.
          mem::AccessScope scan_scope;
          ChunkBuilder builder(rdd_->schema());
          const RowLayout& layout = part->layout();
          part->ForEachRow([&](const uint8_t* row) {
            builder.AddEncodedRow(layout, row);
          });
          ctx.metrics().rows_read += part->num_rows();
          sink.Emit(ctx, p, builder.Finish());
          return Status::OK();
        },
        {{rdd_->rdd_id(), p}}});
  }
  IDF_ASSIGN_OR_RETURN(StageMetrics sm, cluster.RunStage(stage));
  metrics.MergeStage(sm);
  return sink.Finish();
}

}  // namespace idf
