// Row-direct aggregation over an Indexed Batch RDD.
//
// Aggregates and scans do not use the index, but they also should not pay a
// full row-to-columnar conversion first: like Spark's whole-stage pipelines,
// the partial-aggregation phase here consumes the binary rows of each
// indexed partition directly. Projections and non-equality filters, by
// contrast, keep going through the columnar fallback and genuinely lose to
// the columnar cache — exactly the split Fig. 8 / Fig. 13 report.
#pragma once

#include "core/indexed_rdd.h"
#include "sql/physical.h"
#include "sql/planner.h"

namespace idf {

class RowAggExec final : public PhysicalOp {
 public:
  RowAggExec(std::shared_ptr<const IndexedDataset> indexed,
             std::vector<std::string> group_by, std::vector<AggSpec> aggs)
      : indexed_(std::move(indexed)),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)) {}

  Result<TableHandle> ExecuteImpl(Session& session,
                                  QueryMetrics& metrics) const override;
  std::string Describe() const override {
    return "RowAggExec over " + indexed_->name();
  }

 private:
  std::shared_ptr<const IndexedDataset> indexed_;
  std::vector<std::string> group_by_;
  std::vector<AggSpec> aggs_;
};

/// Aggregate(Scan(indexed)) -> RowAggExec. Installed alongside the join and
/// lookup strategies by InstallIndexedExtensions.
class RowAggStrategy final : public Strategy {
 public:
  std::string name() const override { return "RowAggregate"; }
  Result<PhysOpPtr> TryPlan(const PlanPtr& plan,
                            Planner& planner) const override;
};

}  // namespace idf
