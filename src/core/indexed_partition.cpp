#include "core/indexed_partition.h"

namespace idf {

IndexedPartition::IndexedPartition(SchemaPtr schema, size_t key_column,
                                   uint32_t batch_capacity)
    : layout_(std::move(schema)),
      key_column_(key_column),
      store_(batch_capacity) {
  IDF_CHECK(key_column_ < layout_.schema().num_fields());
}

IndexedPartition::IndexedPartition(SchemaPtr schema, size_t key_column,
                                   CTrie<uint64_t, uint64_t> index,
                                   PartitionStore store)
    : layout_(std::move(schema)),
      key_column_(key_column),
      index_(std::move(index)),
      store_(std::move(store)) {}

Status IndexedPartition::InsertRow(const RowVec& row) {
  IDF_RETURN_IF_ERROR(ValidateRow(layout_.schema(), row));
  // The append may chase a back-pointer into an older (possibly spilled)
  // batch; keep everything it touches pinned for the duration.
  mem::AccessScope scope;
  if (row[key_column_].is_null()) {
    // Unindexed storage: reachable by scans, invisible to lookups.
    IDF_RETURN_IF_ERROR(
        store_.AppendRow(layout_, row, PackedRowPtr::Null()).status());
    return Status::OK();
  }
  const uint64_t code = IndexKeyCode(row[key_column_]);
  // Backward chain: the new row points at the current head for this key.
  const std::optional<uint64_t> prev = index_.Lookup(code);
  const PackedRowPtr back_ptr =
      prev.has_value() ? PackedRowPtr::FromBits(*prev) : PackedRowPtr::Null();
  IDF_ASSIGN_OR_RETURN(PackedRowPtr ptr,
                       store_.AppendRow(layout_, row, back_ptr));
  index_.Put(code, ptr.bits());
  return Status::OK();
}

Status IndexedPartition::InsertEncoded(const uint8_t* row, uint32_t len) {
  mem::AccessScope scope;
  if (layout_.IsNull(row, key_column_)) {
    IDF_RETURN_IF_ERROR(
        store_.AppendEncoded(row, len, PackedRowPtr::Null()).status());
    return Status::OK();
  }
  const uint64_t code = layout_.KeyCode(row, key_column_);
  const std::optional<uint64_t> prev = index_.Lookup(code);
  const PackedRowPtr back_ptr =
      prev.has_value() ? PackedRowPtr::FromBits(*prev) : PackedRowPtr::Null();
  IDF_ASSIGN_OR_RETURN(PackedRowPtr ptr,
                       store_.AppendEncoded(row, len, back_ptr));
  index_.Put(code, ptr.bits());
  return Status::OK();
}

size_t IndexedPartition::ForEachRowOfKey(
    uint64_t key_code, const std::function<void(const uint8_t*)>& fn) const {
  const std::optional<uint64_t> head = index_.Lookup(key_code);
  if (!head.has_value()) return 0;
  // The chain can cross many batches; pin each one until the walk is done.
  mem::AccessScope scope;
  size_t visited = 0;
  PackedRowPtr ptr = PackedRowPtr::FromBits(*head);
  while (!ptr.is_null()) {
    const uint8_t* row = store_.RowAt(ptr);
    fn(row);
    ++visited;
    ptr = RowLayout::BackPtr(row);
  }
  return visited;
}

std::vector<RowVec> IndexedPartition::LookupRows(const Value& key) const {
  std::vector<RowVec> rows;
  if (key.is_null()) return rows;
  mem::AccessScope scope;
  const bool verify = KeyCodeNeedsVerify(key.type());
  ForEachRowOfKey(IndexKeyCode(key), [&](const uint8_t* row) {
    if (verify && !(layout_.GetValue(row, key_column_) == key)) return;
    rows.push_back(layout_.DecodeRow(row));
  });
  return rows;
}

void IndexedPartition::ForEachRow(
    const std::function<void(const uint8_t*)>& fn) const {
  for (uint32_t b = 0; b < store_.num_batches(); ++b) {
    // One scope per batch: a full scan's working set is the current batch,
    // not the whole partition — earlier batches may be evicted behind us.
    mem::AccessScope scope;
    const std::shared_ptr<RowBatch> batch = store_.batch(b);
    const uint8_t* cursor = batch->data();
    const uint8_t* end = batch->data() + batch->used();
    while (cursor < end) {
      const uint32_t size = RowLayout::RowSize(cursor);
      IDF_CHECK_MSG(size >= 16 && cursor + size <= end, "corrupt row batch");
      fn(cursor);
      cursor += size;
    }
  }
}

std::shared_ptr<IndexedPartition> IndexedPartition::Snapshot() const {
  // Logically const; see header. The single-writer discipline makes the
  // PartitionStore snapshot safe, and cTrie snapshots are lock-free.
  auto* self = const_cast<IndexedPartition*>(this);
  return std::shared_ptr<IndexedPartition>(new IndexedPartition(
      layout_.schema_ptr(), key_column_, self->index_.Snapshot(),
      self->store_.Snapshot()));
}

uint64_t IndexedPartition::IndexBytes() const {
  return index_.ComputeMemoryStats().approx_bytes;
}

}  // namespace idf
