#include "core/indexed_ops.h"

#include "common/timer.h"
#include "mem/governor.h"
#include "sql/session.h"

namespace idf {

namespace {

/// Appends one joined output row from an indexed binary row and a probe
/// binary row, respecting the logical left/right order.
void EmitJoined(ColumnarChunk& out, const RowLayout& indexed_layout,
                const uint8_t* indexed_row, const RowLayout& probe_layout,
                const uint8_t* probe_row, bool indexed_is_left) {
  // AppendColumnsFromBinary equivalent lives in sql/physical.cpp as a local
  // helper; re-implemented here over the public chunk API.
  auto append_side = [&](size_t offset, const RowLayout& layout,
                         const uint8_t* row) {
    const Schema& schema = layout.schema();
    for (size_t c = 0; c < schema.num_fields(); ++c) {
      ColumnVector& dst = out.mutable_column(offset + c);
      if (layout.IsNull(row, c)) {
        dst.AppendNull();
        continue;
      }
      switch (schema.field(c).type) {
        case TypeId::kBool: dst.AppendBool(layout.GetBool(row, c)); break;
        case TypeId::kInt32: dst.AppendInt32(layout.GetInt32(row, c)); break;
        case TypeId::kInt64: dst.AppendInt64(layout.GetInt64(row, c)); break;
        case TypeId::kFloat64:
          dst.AppendFloat64(layout.GetFloat64(row, c));
          break;
        case TypeId::kString:
          dst.AppendString(layout.GetString(row, c));
          break;
      }
    }
  };
  if (indexed_is_left) {
    append_side(0, indexed_layout, indexed_row);
    append_side(indexed_layout.schema().num_fields(), probe_layout, probe_row);
  } else {
    append_side(0, probe_layout, probe_row);
    append_side(probe_layout.schema().num_fields(), indexed_layout,
                indexed_row);
  }
}

}  // namespace

Result<TableHandle> IndexedJoinExec::ExecuteImpl(Session& session,
                                                 QueryMetrics& metrics) const {
  Cluster& cluster = session.cluster();
  const std::shared_ptr<IndexedRdd>& rdd = indexed_->rdd();
  const uint64_t version = indexed_->version();
  const uint32_t P = rdd->num_partitions();

  IDF_ASSIGN_OR_RETURN(TableHandle probe,
                       children_[0]->Execute(session, metrics));
  IDF_ASSIGN_OR_RETURN(size_t probe_key, probe.schema->FieldIndex(probe_key_));
  RowLayout probe_layout(probe.schema);

  const Schema& indexed_schema = *rdd->schema();
  const size_t key_col = rdd->key_column();
  auto out_schema = std::make_shared<Schema>(
      indexed_is_left_ ? indexed_schema.ConcatForJoin(*probe.schema)
                       : probe.schema->ConcatForJoin(indexed_schema));
  const bool verify =
      KeyCodeNeedsVerify(indexed_schema.field(key_col).type) ||
      KeyCodeNeedsVerify(probe.schema->field(probe_key).type);

  TableSink sink(session, out_schema, P);

  // Zero-allocation key verification: string keys compare their raw bytes,
  // everything else falls back to boxed Value equality (doubles).
  const bool both_strings =
      indexed_schema.field(key_col).type == TypeId::kString &&
      probe.schema->field(probe_key).type == TypeId::kString;
  auto keys_equal = [&](const RowLayout& ilayout, const uint8_t* irow,
                        const uint8_t* prow) {
    if (both_strings) {
      return ilayout.GetString(irow, key_col) ==
             probe_layout.GetString(prow, probe_key);
    }
    return ilayout.GetValue(irow, key_col) ==
           probe_layout.GetValue(prow, probe_key);
  };

  // Probe task shared logic: probe rows (encoded) against one partition.
  auto probe_partition = [&](TaskContext& ctx, uint32_t p,
                             const std::vector<const uint8_t*>& probe_rows,
                             ColumnarChunk& out) -> Status {
    IDF_ASSIGN_OR_RETURN(std::shared_ptr<const IndexedPartition> part,
                         rdd->GetPartition(p, version, ctx));
    // Pin every batch this probe touches for the whole task: under a memory
    // budget the governor must not evict a batch between two probes of the
    // same partition (each chain walk would otherwise re-fault it).
    mem::AccessScope probe_scope;
    const RowLayout& indexed_layout = part->layout();
    for (const uint8_t* prow : probe_rows) {
      if (probe_layout.IsNull(prow, probe_key)) continue;
      const uint64_t code = probe_layout.KeyCode(prow, probe_key);
      ++ctx.metrics().index_probes;
      uint64_t matched = 0;
      part->ForEachRowOfKey(code, [&](const uint8_t* irow) {
        if (verify && !keys_equal(indexed_layout, irow, prow)) return;
        ++matched;
        EmitJoined(out, indexed_layout, irow, probe_layout, prow,
                   indexed_is_left_);
      });
      // A probe "hits" when it joins at least one verified row — the hit
      // rate the paper reports alongside probe counts.
      if (matched > 0) ++ctx.metrics().index_hits;
    }
    return Status::OK();
  };

  if (probe.total_bytes <= session.options().broadcast_threshold_bytes) {
    // Broadcast path (§III-C: "if the Dataframe size is small enough to be
    // broadcasted efficiently, we fall back to a broadcast-based join").
    TaskContext driver_ctx(&cluster, cluster.AliveExecutors().front());
    std::vector<std::vector<uint8_t>> encoded_rows;
    // Bucket the broadcast probe rows by owning partition once, up front —
    // each partition then probes only the keys it owns.
    std::vector<std::vector<const uint8_t*>> buckets(P);
    for (uint32_t p = 0; p < probe.num_partitions; ++p) {
      // Per-chunk pin scope: the row loop reads the chunk many times and
      // must not re-fault it between rows under a tight budget.
      mem::AccessScope bucket_scope;
      IDF_ASSIGN_OR_RETURN(ChunkPtr chunk, FetchChunk(driver_ctx, probe, p));
      std::vector<uint8_t> scratch;
      for (size_t i = 0; i < chunk->num_rows(); ++i) {
        if (chunk->column(probe_key).IsNull(i)) continue;
        chunk->EncodeRowTo(probe_layout, i, scratch);
        encoded_rows.push_back(scratch);
      }
    }
    for (const auto& row : encoded_rows) {
      const uint8_t* ptr = row.data();
      buckets[rdd->PartitionOf(probe_layout.KeyCode(ptr, probe_key))]
          .push_back(ptr);
    }
    cluster.simulator().Broadcast(probe.total_bytes);

    StageSpec stage;
    stage.name = "indexed join (broadcast probe)";
    for (uint32_t p = 0; p < P; ++p) {
      stage.tasks.push_back(TaskSpec{
          cluster.HomeExecutorFor(rdd->rdd_id(), p),
          {},
          0,
          [&, p](TaskContext& ctx) -> Status {
            const std::vector<const uint8_t*>& mine = buckets[p];
            ctx.metrics().rows_read += mine.size();
            auto out = std::make_shared<ColumnarChunk>(out_schema);
            IDF_RETURN_IF_ERROR(probe_partition(ctx, p, mine, *out));
            out->SetRowCount(out->column(0).size());
            sink.Emit(ctx, p, std::move(out));
            return Status::OK();
          },
          {{rdd->rdd_id(), p}}});
    }
    IDF_ASSIGN_OR_RETURN(StageMetrics sm, cluster.RunStage(stage));
    metrics.MergeStage(sm);
    return sink.Finish();
  }

  // Shuffle path: route probe rows to the indexed partitions (§III-C: "the
  // rows of the latter are shuffled according to the hash partitioning
  // scheme of the former"). Under the streaming transport the build side
  // starts probing routed buffers while upstream probe partitions are still
  // encoding (fused map+reduce stage).
  const uint64_t shuffle_id =
      cluster.shuffle().NewShuffle(probe.num_partitions, P);
  const bool pipelined = ShufflePipelineEnabled();
  StageSpec map_stage;
  map_stage.name = "indexed join (probe shuffle)";
  for (uint32_t p = 0; p < probe.num_partitions; ++p) {
    map_stage.tasks.push_back(TaskSpec{
        cluster.HomeExecutorFor(probe.rdd_id, p),
        {},
        0,
        [&, p](TaskContext& ctx) -> Status {
          // `key_vec` is held across per-row encodes of the same chunk.
          mem::AccessScope scope;
          Result<ChunkPtr> chunk = FetchChunk(ctx, probe, p);
          IDF_RETURN_IF_ERROR(chunk.status());
          const ColumnarChunk& input = **chunk;
          const ColumnVector& key_vec = input.column(probe_key);
          ctx.metrics().rows_read += input.num_rows();
          ShuffleWriter writer(cluster.shuffle(), shuffle_id, p, P,
                               ctx.executor(), pipelined, input.num_rows());
          std::vector<uint8_t> scratch;  // reused across rows
          Status routed = Status::OK();
          for (size_t i = 0; i < input.num_rows() && routed.ok(); ++i) {
            if (key_vec.IsNull(i)) continue;
            const uint32_t target = rdd->PartitionOf(key_vec.KeyCodeAt(i));
            input.EncodeRowTo(probe_layout, i, scratch);
            routed = writer.Append(target, scratch.data(),
                                   static_cast<uint32_t>(scratch.size()));
          }
          const Status finished = writer.Finish();
          ctx.metrics().shuffle_bytes_written += writer.bytes_written();
          return routed.ok() ? finished : routed;
        },
        {{probe.rdd_id, p}}});
  }

  StageSpec reduce_stage;
  reduce_stage.name = "indexed join (local probe)";
  for (uint32_t p = 0; p < P; ++p) {
    reduce_stage.tasks.push_back(TaskSpec{
        cluster.HomeExecutorFor(rdd->rdd_id(), p),
        {},
        0,
        [&, p](TaskContext& ctx) -> Status {
          // Stream opened before the build partition is fetched so the
          // barrier transport declares its per-map network reads in the
          // classic order (reads before the GetPartition transfer).
          std::unique_ptr<RoutedBufferStream> in =
              OpenReduceStream(ctx, shuffle_id, p, pipelined);
          IDF_ASSIGN_OR_RETURN(std::shared_ptr<const IndexedPartition> part,
                               rdd->GetPartition(p, version, ctx));
          const RowLayout& indexed_layout = part->layout();
          auto out = std::make_shared<ColumnarChunk>(out_schema);
          for (;;) {
            IDF_ASSIGN_OR_RETURN(std::shared_ptr<const ShuffleBuffer> buf,
                                 in->Next());
            if (buf == nullptr) break;
            ctx.metrics().rows_read += buf->num_rows;
            // Per-buffer pin scope: probed chain batches stay resident
            // across this buffer's rows, and the task's peak footprint is
            // one routed buffer instead of the whole partition's input.
            mem::AccessScope probe_scope;
            ShuffleBufferReader reader(*buf);
            while (reader.HasNext()) {
              const uint8_t* prow = reader.Next();
              const uint64_t code = probe_layout.KeyCode(prow, probe_key);
              ++ctx.metrics().index_probes;
              uint64_t matched = 0;
              part->ForEachRowOfKey(code, [&](const uint8_t* irow) {
                if (verify && !keys_equal(indexed_layout, irow, prow)) return;
                ++matched;
                EmitJoined(*out, indexed_layout, irow, probe_layout, prow,
                           indexed_is_left_);
              });
              if (matched > 0) ++ctx.metrics().index_hits;
            }
          }
          out->SetRowCount(out->column(0).size());
          sink.Emit(ctx, p, std::move(out));
          return Status::OK();
        },
        {{rdd->rdd_id(), p}}});
  }
  Result<std::vector<StageMetrics>> stage_metrics =
      cluster.RunShuffleStages(shuffle_id, map_stage, reduce_stage, pipelined);
  cluster.shuffle().Release(shuffle_id);
  IDF_RETURN_IF_ERROR(stage_metrics.status());
  for (const StageMetrics& sm : *stage_metrics) metrics.MergeStage(sm);
  return sink.Finish();
}

Result<TableHandle> IndexLookupExec::ExecuteImpl(Session& session,
                                                 QueryMetrics& metrics) const {
  Cluster& cluster = session.cluster();
  const std::shared_ptr<IndexedRdd>& rdd = indexed_->rdd();
  if (key_.is_null()) {
    return Status::InvalidArgument("index lookup with NULL key");
  }

  ExprPtr residual;
  if (residual_ != nullptr) {
    IDF_ASSIGN_OR_RETURN(residual, residual_->Resolve(*rdd->schema()));
  }

  // The lookup runs on exactly one partition — the one owning the key
  // (§III-C: "a lookup operation is scheduled on the Spark partition
  // responsible for holding that key").
  const uint32_t p = rdd->PartitionOf(IndexKeyCode(key_));
  const size_t key_col = rdd->key_column();
  const bool verify = KeyCodeNeedsVerify(key_.type());

  TableSink sink(session, rdd->schema(), 1);
  StageSpec stage;
  stage.name = "index lookup";
  stage.tasks.push_back(TaskSpec{
      cluster.HomeExecutorFor(rdd->rdd_id(), p),
      {},
      0,
      [&](TaskContext& ctx) -> Status {
        IDF_ASSIGN_OR_RETURN(std::shared_ptr<const IndexedPartition> part,
                             rdd->GetPartition(p, indexed_->version(), ctx));
        mem::AccessScope lookup_scope;  // pin chain batches for the lookup
        const RowLayout& layout = part->layout();
        ++ctx.metrics().index_probes;

        ChunkBuilder builder(rdd->schema());
        uint64_t matched = 0;
        part->ForEachRowOfKey(IndexKeyCode(key_), [&](const uint8_t* row) {
          if (verify && !(layout.GetValue(row, key_col) == key_)) return;
          if (residual != nullptr) {
            BinaryRowAccessor accessor(layout, row);
            const Value keep = residual->Eval(accessor);
            if (keep.is_null() || !keep.bool_value()) return;
          }
          ++matched;
          builder.AddEncodedRow(layout, row);
        });
        if (matched > 0) ++ctx.metrics().index_hits;
        sink.Emit(ctx, 0, builder.Finish());
        return Status::OK();
      },
      {{rdd->rdd_id(), p}}});
  IDF_ASSIGN_OR_RETURN(StageMetrics sm, cluster.RunStage(stage));
  metrics.MergeStage(sm);
  return sink.Finish();
}

}  // namespace idf
