#include "core/indexed_dataframe.h"

#include "core/indexed_ops.h"
#include "mem/governor.h"

namespace idf {

Result<IndexedDataFrame> IndexedDataFrame::Create(const DataFrame& df,
                                                  const std::string& column,
                                                  const IndexOptions& options,
                                                  QueryMetrics* metrics) {
  IDF_CHECK_MSG(df.valid(), "createIndex on an empty DataFrame");
  Session& session = *df.session();
  InstallIndexedExtensions(session);

  QueryMetrics local;
  QueryMetrics& m = metrics != nullptr ? *metrics : local;
  IDF_ASSIGN_OR_RETURN(TableHandle base, df.Execute(&m));
  IDF_ASSIGN_OR_RETURN(size_t key_column, base.schema->FieldIndex(column));
  IDF_ASSIGN_OR_RETURN(
      std::shared_ptr<IndexedRdd> rdd,
      IndexedRdd::Create(session, base, key_column, options, m));
  return IndexedDataFrame(std::move(rdd), 0, column);
}

Result<CollectedTable> IndexedDataFrame::GetRows(const Value& key,
                                                 QueryMetrics* metrics) const {
  IDF_CHECK_MSG(valid(), "GetRows on an invalid IndexedDataFrame");
  QueryMetrics local;
  QueryMetrics& m = metrics != nullptr ? *metrics : local;
  auto dataset = std::make_shared<IndexedDataset>(rdd_, version_);
  IndexLookupExec lookup(std::move(dataset), key, /*residual=*/nullptr);
  try {
    IDF_ASSIGN_OR_RETURN(TableHandle handle,
                         lookup.Execute(rdd_->session(), m));
    return rdd_->session().Collect(handle);
  } catch (const mem::ReloadFault& fault) {
    // Lookup fast paths read partitions on the caller's thread; a failed
    // reload there has no task boundary to catch it (see ExecuteTask), so
    // convert it to the query's failure status here.
    return fault.status();
  }
}

Result<IndexedDataFrame> IndexedDataFrame::AppendRows(
    const DataFrame& rows, QueryMetrics* metrics) const {
  IDF_CHECK_MSG(valid(), "AppendRows on an invalid IndexedDataFrame");
  QueryMetrics local;
  QueryMetrics& m = metrics != nullptr ? *metrics : local;
  IDF_ASSIGN_OR_RETURN(TableHandle handle, rows.Execute(&m));
  IDF_ASSIGN_OR_RETURN(uint64_t new_version,
                       rdd_->Append(version_, handle, m));
  return IndexedDataFrame(rdd_, new_version, column_name_);
}

DataFrame IndexedDataFrame::AsDataFrame() const {
  IDF_CHECK_MSG(valid(), "AsDataFrame on an invalid IndexedDataFrame");
  return rdd_->session().Read(
      std::make_shared<IndexedDataset>(rdd_, version_));
}

DataFrame IndexedDataFrame::Join(const DataFrame& probe,
                                 const std::string& probe_key) const {
  return AsDataFrame().Join(probe, column_name_, probe_key);
}

void IndexedDataFrame::RegisterAs(const std::string& name) const {
  IDF_CHECK_MSG(valid(), "RegisterAs on an invalid IndexedDataFrame");
  rdd_->session().RegisterTable(
      name, std::make_shared<IndexedDataset>(rdd_, version_));
}

Result<std::vector<PartitionMemory>> IndexedDataFrame::MemoryReport() const {
  IDF_CHECK_MSG(valid(), "MemoryReport on an invalid IndexedDataFrame");
  Cluster& cluster = rdd_->session().cluster();
  TaskContext ctx(&cluster, cluster.AliveExecutors().front());
  std::vector<PartitionMemory> report;
  for (uint32_t p = 0; p < rdd_->num_partitions(); ++p) {
    IDF_ASSIGN_OR_RETURN(std::shared_ptr<const IndexedPartition> part,
                         rdd_->GetPartition(p, version_, ctx));
    PartitionMemory pm;
    pm.partition = p;
    pm.data_bytes = part->data_bytes();
    pm.index_bytes = part->IndexBytes();
    pm.num_rows = part->num_rows();
    report.push_back(pm);
  }
  return report;
}

}  // namespace idf
