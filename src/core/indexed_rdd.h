// IndexedRdd: the distributed, multi-versioned Indexed Batch RDD (§III-C/D/E).
//
// - Hash-partitioned on the indexed key: row with key code c lives in
//   partition HashPartition(c, P) — index creation and appends shuffle rows
//   to their partitions; lookups and joins route probes the same way.
// - Versioned: every append mints a new version; blocks are keyed
//   (rdd, partition, version) so the scheduler can never read stale replicas
//   (§III-D). Divergent appends from one parent get *distinct* versions,
//   recorded in a version tree (§III-E / Listing 2).
// - Fault tolerant by lineage: a lost partition is rebuilt by re-routing the
//   base table's rows and replaying every append along the version chain.
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "core/indexed_partition.h"
#include "sql/session.h"

namespace idf {

struct IndexOptions {
  /// Indexed partitions; 0 = the session default.
  uint32_t num_partitions = 0;
  /// Row batch size (§IV-B Fig. 5: 4 MB is the sweet spot).
  uint32_t batch_capacity = RowBatch::kDefaultCapacity;
};

class IndexedRdd : public std::enable_shared_from_this<IndexedRdd> {
 public:
  /// Creates the RDD and builds version 0 by hash-shuffling `base` on the
  /// key column. Registers lineage with the cluster.
  static Result<std::shared_ptr<IndexedRdd>> Create(Session& session,
                                                    const TableHandle& base,
                                                    size_t key_column,
                                                    const IndexOptions& options,
                                                    QueryMetrics& metrics);

  /// Produces one already-indexed partition, e.g. by reading a spill file
  /// (core/persistence.h). Must be deterministic: lineage re-invokes it.
  using PartitionLoader =
      std::function<Result<std::shared_ptr<IndexedPartition>>(
          uint32_t partition)>;

  /// Restores an RDD whose version-0 partitions come from `loader` instead
  /// of a shuffle (the out-of-core path, §III-C). The loader doubles as the
  /// replayable source for fault tolerance.
  static Result<std::shared_ptr<IndexedRdd>> Restore(
      Session& session, SchemaPtr schema, size_t key_column,
      uint32_t num_partitions, uint32_t batch_capacity,
      PartitionLoader loader, QueryMetrics& metrics);

  /// Drops this RDD's spill-salvage catalog entries (and with them the last
  /// references to orphaned spill files).
  ~IndexedRdd();

  uint64_t rdd_id() const { return rdd_id_; }
  const SchemaPtr& schema() const { return schema_; }
  size_t key_column() const { return key_column_; }
  uint32_t num_partitions() const { return num_partitions_; }
  Session& session() const { return *session_; }

  uint32_t PartitionOf(uint64_t key_code) const {
    return HashPartition(key_code, num_partitions_);
  }

  /// Appends the rows of `rows` to `parent_version`, producing a new version
  /// (returned). Both the parent and the new version remain queryable.
  Result<uint64_t> Append(uint64_t parent_version, const TableHandle& rows,
                          QueryMetrics& metrics);

  /// Fetches (or lineage-recomputes) one indexed partition at a version.
  Result<std::shared_ptr<const IndexedPartition>> GetPartition(
      uint32_t partition, uint64_t version, TaskContext& ctx) const;

  /// Rows in a version (sum over partitions, tracked at build/append time).
  uint64_t RowsAtVersion(uint64_t version) const;

  /// All live versions (for tests and tooling).
  std::vector<uint64_t> Versions() const;

 private:
  IndexedRdd(Session& session, TableHandle base, size_t key_column,
             uint32_t num_partitions, uint32_t batch_capacity);

  struct VersionInfo {
    uint64_t parent = 0;        // meaningless for version 0
    TableHandle append_source;  // invalid for version 0
    uint64_t num_rows = 0;      // cumulative rows at this version
  };

  /// Builds version 0 with a real shuffle (map: route rows; reduce: insert).
  Status BuildBase(QueryMetrics& metrics);

  /// Shuffles `source` rows to their indexed partitions; `consume` runs per
  /// partition, draining its routed buffers from an ordered stream. Under
  /// the streaming transport (IDF_SHUFFLE_PIPELINE, default on) the map and
  /// insert stages run fused, so consumers insert while upstream partitions
  /// are still encoding; buffers always arrive in (map task, seal sequence)
  /// order, so what a consumer sees is byte-identical across transports.
  Status ShuffleToPartitions(
      const TableHandle& source, const std::string& stage_name,
      QueryMetrics& metrics,
      const std::function<Status(TaskContext&, uint32_t partition,
                                 RoutedBufferStream& in)>& consume);

  /// Lineage recomputation: rebuild partition `p` at `version` by routing the
  /// base rows and replaying appends along the version chain (§III-D: "if
  /// there were any appends on that particular partition, these have to be
  /// replayed as well").
  Result<BlockPtr> Recompute(uint32_t partition, uint64_t version,
                             TaskContext& ctx) const;

  /// Inserts every row of `table` that routes to `partition` (driver of the
  /// recompute path; scans the full table like Spark's re-shuffle would).
  /// The first `skip_rows` routed rows are skipped — routing order is
  /// deterministic, so recovery that salvaged the first M rows from spill
  /// files resumes the insert exactly where those left off.
  Status InsertRoutedRows(const TableHandle& table, uint32_t partition,
                          IndexedPartition& target, TaskContext& ctx,
                          uint64_t skip_rows = 0) const;

  Session* session_;
  uint64_t rdd_id_;
  TableHandle base_;            // shuffle-built RDDs
  PartitionLoader loader_;      // restored (out-of-core) RDDs
  SchemaPtr schema_;
  size_t key_column_;
  uint32_t num_partitions_;
  uint32_t batch_capacity_;

  mutable std::mutex mutex_;
  std::map<uint64_t, VersionInfo> versions_;
  uint64_t next_version_ = 1;
};

/// Adapts an (IndexedRdd, version) pair to the SQL layer's Dataset so scans,
/// joins and filters of indexed dataframes flow through the planner. The
/// index-aware strategies recognize this type; everything else falls back to
/// ScanAsColumnar (row-to-columnar conversion — the regular "Spark Row RDD"
/// path of Fig. 2).
class IndexedDataset final : public Dataset {
 public:
  IndexedDataset(std::shared_ptr<IndexedRdd> rdd, uint64_t version)
      : rdd_(std::move(rdd)), version_(version) {}

  const SchemaPtr& schema() const override { return rdd_->schema(); }
  uint32_t num_partitions() const override { return rdd_->num_partitions(); }
  int indexed_column() const override {
    return static_cast<int>(rdd_->key_column());
  }
  std::string name() const override {
    return "indexed(rdd=" + std::to_string(rdd_->rdd_id()) +
           ", v=" + std::to_string(version_) + ")";
  }

  Result<TableHandle> ScanAsColumnar(Session& session,
                                     QueryMetrics& metrics) const override;

  const std::shared_ptr<IndexedRdd>& rdd() const { return rdd_; }
  uint64_t version() const { return version_; }

 private:
  std::shared_ptr<IndexedRdd> rdd_;
  uint64_t version_;
};

}  // namespace idf
