// Indexed physical operators (§III-B/C).
//
// IndexedJoinExec: "the indexed relation is always the build side (as it is
// actually pre-built due to the index), while the probe side is the
// non-indexed relation." Probe rows are shuffled (or broadcast, when small)
// to the indexed partitions and probed against the local cTrie — no hash
// table is built at query time.
//
// IndexLookupExec: an equality filter on the indexed column becomes a point
// lookup on the single partition owning the key, plus a residual filter for
// any remaining conjuncts.
#pragma once

#include <memory>

#include "core/indexed_rdd.h"
#include "sql/physical.h"

namespace idf {

class IndexedJoinExec final : public PhysicalOp {
 public:
  /// `indexed_is_left`: whether the indexed relation is the left side of the
  /// logical join (controls output column order).
  IndexedJoinExec(std::shared_ptr<const IndexedDataset> indexed,
                  PhysOpPtr probe, std::string probe_key, bool indexed_is_left)
      : indexed_(std::move(indexed)),
        children_{std::move(probe)},
        probe_key_(std::move(probe_key)),
        indexed_is_left_(indexed_is_left) {}

  Result<TableHandle> ExecuteImpl(Session& session,
                                  QueryMetrics& metrics) const override;
  std::string Describe() const override {
    return "IndexedJoinExec probe_key=" + probe_key_ + " on " +
           indexed_->name();
  }
  const std::vector<PhysOpPtr>& children() const override { return children_; }

 private:
  std::shared_ptr<const IndexedDataset> indexed_;
  std::vector<PhysOpPtr> children_;
  std::string probe_key_;
  bool indexed_is_left_;
};

class IndexLookupExec final : public PhysicalOp {
 public:
  /// `residual` may be null; when set it is applied to matching rows.
  IndexLookupExec(std::shared_ptr<const IndexedDataset> indexed, Value key,
                  ExprPtr residual)
      : indexed_(std::move(indexed)),
        key_(std::move(key)),
        residual_(std::move(residual)) {}

  Result<TableHandle> ExecuteImpl(Session& session,
                                  QueryMetrics& metrics) const override;
  std::string Describe() const override {
    return "IndexLookupExec key=" + key_.ToString() +
           (residual_ ? " residual=" + residual_->ToString() : "") + " on " +
           indexed_->name();
  }

 private:
  std::shared_ptr<const IndexedDataset> indexed_;
  Value key_;
  ExprPtr residual_;
};

}  // namespace idf
