#include "core/persistence.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace idf {
namespace {

constexpr char kPartitionMagic[] = "IDFPART1";
constexpr char kManifestMagic[] = "IDFMANIFEST1";

template <typename T>
void WritePod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

void WriteString(std::ofstream& out, const std::string& s) {
  WritePod(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadString(std::ifstream& in, std::string* s) {
  uint32_t len;
  if (!ReadPod(in, &len)) return false;
  if (len > (64u << 10)) return false;  // sanity bound for names
  s->resize(len);
  in.read(s->data(), len);
  return static_cast<bool>(in);
}

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::InvalidArgument("corrupt partition file '" + path +
                                 "': " + what);
}

}  // namespace

Status SavePartition(const IndexedPartition& partition,
                     const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Unavailable("cannot open '" + path + "' for writing");
  }
  out.write(kPartitionMagic, 8);
  const Schema& schema = partition.schema();
  WritePod(out, static_cast<uint32_t>(partition.key_column()));
  WritePod(out, static_cast<uint32_t>(schema.num_fields()));
  WritePod(out, static_cast<uint32_t>(schema.num_fields()));
  for (const Field& field : schema.fields()) {
    WriteString(out, field.name);
    WritePod(out, static_cast<uint8_t>(field.type));
    WritePod(out, static_cast<uint8_t>(field.nullable ? 1 : 0));
  }

  WritePod(out, partition.num_rows());
  WritePod(out, partition.data_bytes());
  // Rows are self-delimiting; write them in storage order. Backward-pointer
  // headers are rewritten on load, so the raw bytes round-trip safely even
  // though batch boundaries may differ.
  Status status = Status::OK();
  partition.ForEachRow([&](const uint8_t* row) {
    out.write(reinterpret_cast<const char*>(row), RowLayout::RowSize(row));
  });
  out.flush();
  if (!out) return Status::Unavailable("short write to '" + path + "'");
  return status;
}

Result<std::shared_ptr<IndexedPartition>> LoadPartition(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");

  char magic[8];
  in.read(magic, 8);
  if (!in || std::string(magic, 8) != kPartitionMagic) {
    return Corrupt(path, "bad magic");
  }
  uint32_t key_column, layout_fields, num_fields;
  if (!ReadPod(in, &key_column) || !ReadPod(in, &layout_fields) ||
      !ReadPod(in, &num_fields) || num_fields != layout_fields ||
      num_fields == 0 || num_fields > 4096) {
    return Corrupt(path, "bad header");
  }
  std::vector<Field> fields;
  for (uint32_t i = 0; i < num_fields; ++i) {
    Field field;
    uint8_t type, nullable;
    if (!ReadString(in, &field.name) || !ReadPod(in, &type) ||
        !ReadPod(in, &nullable) || type > 4) {
      return Corrupt(path, "bad field descriptor");
    }
    field.type = static_cast<TypeId>(type);
    field.nullable = nullable != 0;
    fields.push_back(std::move(field));
  }
  uint64_t num_rows, data_bytes;
  if (!ReadPod(in, &num_rows) || !ReadPod(in, &data_bytes)) {
    return Corrupt(path, "truncated row header");
  }

  auto schema = std::make_shared<Schema>(Schema(std::move(fields)));
  if (key_column >= schema->num_fields()) {
    return Corrupt(path, "key column out of range");
  }
  auto partition = std::make_shared<IndexedPartition>(schema, key_column);
  partition->ReserveHint(data_bytes);

  std::vector<char> buffer(data_bytes);
  in.read(buffer.data(), static_cast<std::streamsize>(data_bytes));
  if (!in) return Corrupt(path, "truncated row data");

  size_t cursor = 0;
  uint64_t rows = 0;
  while (cursor < data_bytes) {
    const uint8_t* row = reinterpret_cast<const uint8_t*>(buffer.data()) + cursor;
    if (cursor + 16 > data_bytes) return Corrupt(path, "dangling row header");
    const uint32_t size = RowLayout::RowSize(row);
    if (size < 16 || cursor + size > data_bytes) {
      return Corrupt(path, "row overruns file");
    }
    IDF_RETURN_IF_ERROR(partition->InsertEncoded(row, size));
    cursor += size;
    ++rows;
  }
  if (rows != num_rows) return Corrupt(path, "row count mismatch");
  partition->SealStorage();  // loaded: evictable from here on
  return partition;
}

Status SaveIndexedDataFrame(const IndexedDataFrame& df,
                            const std::string& dir) {
  IDF_CHECK_MSG(df.valid(), "SaveIndexedDataFrame on an invalid handle");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Unavailable("cannot create directory '" + dir +
                               "': " + ec.message());
  }

  const std::shared_ptr<IndexedRdd>& rdd = df.rdd();
  Cluster& cluster = rdd->session().cluster();
  TaskContext ctx(&cluster, cluster.AliveExecutors().front());
  for (uint32_t p = 0; p < rdd->num_partitions(); ++p) {
    IDF_ASSIGN_OR_RETURN(std::shared_ptr<const IndexedPartition> part,
                         rdd->GetPartition(p, df.version(), ctx));
    IDF_RETURN_IF_ERROR(
        SavePartition(*part, dir + "/part-" + std::to_string(p) + ".bin"));
  }

  std::ofstream manifest(dir + "/manifest.idf", std::ios::trunc);
  if (!manifest) {
    return Status::Unavailable("cannot write manifest in '" + dir + "'");
  }
  manifest << kManifestMagic << "\n";
  manifest << "key_column " << df.indexed_column_name() << "\n";
  manifest << "partitions " << rdd->num_partitions() << "\n";
  manifest << "fields " << rdd->schema()->num_fields() << "\n";
  for (const Field& field : rdd->schema()->fields()) {
    manifest << field.name << " " << static_cast<int>(field.type) << " "
             << (field.nullable ? 1 : 0) << "\n";
  }
  manifest.flush();
  return manifest ? Status::OK()
                  : Status::Unavailable("short manifest write");
}

Result<IndexedDataFrame> LoadIndexedDataFrame(Session& session,
                                              const std::string& dir) {
  std::ifstream manifest(dir + "/manifest.idf");
  if (!manifest) {
    return Status::NotFound("no manifest in '" + dir + "'");
  }
  std::string magic;
  manifest >> magic;
  if (magic != kManifestMagic) {
    return Status::InvalidArgument("'" + dir + "' is not a saved index");
  }
  std::string tag, key_column_name;
  uint32_t partitions = 0;
  size_t num_fields = 0;
  manifest >> tag >> key_column_name;
  if (tag != "key_column") return Status::InvalidArgument("bad manifest");
  manifest >> tag >> partitions;
  if (tag != "partitions" || partitions == 0) {
    return Status::InvalidArgument("bad manifest partition count");
  }
  manifest >> tag >> num_fields;
  if (tag != "fields" || num_fields == 0) {
    return Status::InvalidArgument("bad manifest field count");
  }
  std::vector<Field> fields;
  for (size_t i = 0; i < num_fields; ++i) {
    Field field;
    int type, nullable;
    manifest >> field.name >> type >> nullable;
    if (!manifest || type < 0 || type > 4) {
      return Status::InvalidArgument("bad manifest field");
    }
    field.type = static_cast<TypeId>(type);
    field.nullable = nullable != 0;
    fields.push_back(std::move(field));
  }
  auto schema = std::make_shared<Schema>(Schema(std::move(fields)));
  IDF_ASSIGN_OR_RETURN(size_t key_column,
                       schema->FieldIndex(key_column_name));

  InstallIndexedExtensions(session);
  QueryMetrics metrics;
  IDF_ASSIGN_OR_RETURN(
      std::shared_ptr<IndexedRdd> rdd,
      IndexedRdd::Restore(
          session, schema, key_column, partitions,
          RowBatch::kDefaultCapacity,
          [dir](uint32_t p) {
            return LoadPartition(dir + "/part-" + std::to_string(p) + ".bin");
          },
          metrics));
  return IndexedDataFrame::FromRdd(std::move(rdd), 0, key_column_name);
}

}  // namespace idf
