// Index-aware planner strategies — the Catalyst integration (§III-B).
//
// "Our library includes optimization rules that make regular Spark SQL
// queries aware of our custom indexed operations ... for queries on
// non-indexed dataframes we fall back to the default Spark behavior."
//
// InstallIndexedExtensions() prepends two strategies to a session's planner:
//   - IndexedJoinStrategy: Join(Scan(indexed on k), probe) on k == probe_key
//     -> IndexedJoinExec (works with the indexed side on either side).
//   - IndexLookupStrategy: Filter(Scan(indexed on k), k == literal [AND ...])
//     -> IndexLookupExec (+ residual predicate).
// Anything they decline flows to the vanilla strategies unchanged.
#pragma once

#include "sql/planner.h"
#include "sql/session.h"

namespace idf {

class IndexedJoinStrategy final : public Strategy {
 public:
  std::string name() const override { return "IndexedJoin"; }
  Result<PhysOpPtr> TryPlan(const PlanPtr& plan,
                            Planner& planner) const override;
};

class IndexLookupStrategy final : public Strategy {
 public:
  std::string name() const override { return "IndexLookup"; }
  Result<PhysOpPtr> TryPlan(const PlanPtr& plan,
                            Planner& planner) const override;
};

/// Attaches the Indexed DataFrame library to a session — the equivalent of
/// bundling the jar and letting its rules register with Catalyst (§III-F).
/// Idempotent per session.
void InstallIndexedExtensions(Session& session);

}  // namespace idf
