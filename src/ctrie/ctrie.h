// Concurrent hash trie (CTrie) with lock-free, constant-time snapshots.
//
// This is the index data structure of the Indexed DataFrame (§III-C): each
// indexed partition owns one CTrie mapping key -> packed 64-bit pointer to
// the most recently appended row for that key. Its snapshot capability is
// what makes multi-version appends cheap (§III-E): "whenever a snapshot is
// triggered, the newly created copy shares the initial state with no memory
// overhead and only stores differences to the previous version."
//
// The implementation follows Prokopec, Bronson, Bagwell, Odersky,
// "Concurrent Tries with Efficient Non-Blocking Snapshots" (PPoPP 2012):
//   - CNode/SNode/INode/TNode/LNode node kinds,
//   - GCAS (generation-compare-and-swap) for main-node updates,
//   - RDCSS-style double-compare-single-swap on the root for snapshots,
//   - lazy generational copying after a snapshot (copy-on-gen-mismatch).
//
// Memory reclamation: nodes are managed with std::shared_ptr and published
// through std::atomic<std::shared_ptr<...>>. The *algorithm* is the lock-free
// CTrie; the C++ standard library may implement atomic<shared_ptr> with an
// internal spinlock, which preserves linearizability and progress in practice
// but is not formally lock-free. Structural sharing across snapshots falls
// out of reference counting.
//
// Hashing consumes 64-bit hashes 6 bits per level (branching factor 64);
// full-hash collisions beyond the deepest level fall back to LNode lists.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/hash.h"
#include "common/status.h"

namespace idf {

namespace ctrie_detail {

/// Default hasher: routes through idf::Mix64 for integers so that dense key
/// ranges spread across the trie, std::hash for everything else.
template <typename K>
struct DefaultHash {
  uint64_t operator()(const K& k) const {
    if constexpr (std::is_integral_v<K>) {
      return Mix64(static_cast<uint64_t>(k));
    } else {
      return std::hash<K>{}(k);
    }
  }
};

}  // namespace ctrie_detail

template <typename K, typename V,
          typename HashFn = ctrie_detail::DefaultHash<K>,
          typename EqFn = std::equal_to<K>>
class CTrie {
  static constexpr int kBitsPerLevel = 6;
  static constexpr uint64_t kLevelMask = (1ULL << kBitsPerLevel) - 1;
  static constexpr int kMaxLevel = 60;  // deeper than this => LNode lists

  // ---- node kinds -----------------------------------------------------

  struct Gen {};  // identity-only generation stamp
  using GenPtr = std::shared_ptr<Gen>;

  struct CNode;
  struct TNode;
  struct LNode;

  // A "main node" is what an INode points at.
  struct MainNode {
    enum class Kind : uint8_t { kCNode, kTNode, kLNode, kFailed } kind;
    // GCAS bookkeeping: non-null while the swap that installed this node is
    // uncommitted; a Failed main node signals the swap must be rolled back.
    std::atomic<std::shared_ptr<MainNode>> prev{nullptr};

    explicit MainNode(Kind k) : kind(k) {}
    virtual ~MainNode() = default;
  };
  using MainPtr = std::shared_ptr<MainNode>;

  struct FailedNode final : MainNode {
    explicit FailedNode(MainPtr p) : MainNode(MainNode::Kind::kFailed) {
      this->prev.store(std::move(p), std::memory_order_relaxed);
    }
  };

  // A "branch" is an element of a CNode's array.
  struct Branch {
    enum class Kind : uint8_t { kINode, kSNode } kind;
    explicit Branch(Kind k) : kind(k) {}
    virtual ~Branch() = default;
  };
  using BranchPtr = std::shared_ptr<Branch>;

  struct SNode final : Branch {
    K key;
    V value;
    uint64_t hash;
    SNode(K k, V v, uint64_t h)
        : Branch(Branch::Kind::kSNode),
          key(std::move(k)),
          value(std::move(v)),
          hash(h) {}
  };
  using SNodePtr = std::shared_ptr<SNode>;

  struct INode final : Branch {
    std::atomic<MainPtr> main;
    GenPtr gen;
    INode(MainPtr m, GenPtr g)
        : Branch(Branch::Kind::kINode), main(std::move(m)), gen(std::move(g)) {}
  };
  using INodePtr = std::shared_ptr<INode>;

  struct CNode final : MainNode {
    uint64_t bmp = 0;
    std::vector<BranchPtr> array;
    GenPtr gen;
    CNode(uint64_t b, std::vector<BranchPtr> a, GenPtr g)
        : MainNode(MainNode::Kind::kCNode),
          bmp(b),
          array(std::move(a)),
          gen(std::move(g)) {}
  };
  using CNodePtr = std::shared_ptr<CNode>;

  // Tombed singleton: marks a one-entry CNode pending contraction.
  struct TNode final : MainNode {
    SNodePtr sn;
    explicit TNode(SNodePtr s)
        : MainNode(MainNode::Kind::kTNode), sn(std::move(s)) {}
  };

  // Collision list for keys whose 64-bit hashes fully coincide.
  struct LNode final : MainNode {
    SNodePtr sn;
    std::shared_ptr<const LNode> next;
    LNode(SNodePtr s, std::shared_ptr<const LNode> n)
        : MainNode(MainNode::Kind::kLNode),
          sn(std::move(s)),
          next(std::move(n)) {}
  };
  using LNodePtr = std::shared_ptr<const LNode>;

  // ---- root holder (RDCSS) --------------------------------------------

  // The root slot holds either the root INode or an in-flight snapshot
  // descriptor (RDCSS). A descriptor is completed (rolled forward or back)
  // by any thread that observes it.
  struct RootEntry {
    enum class Kind : uint8_t { kINode, kDescriptor } kind;
    explicit RootEntry(Kind k) : kind(k) {}
    virtual ~RootEntry() = default;
  };
  using RootPtr = std::shared_ptr<RootEntry>;

  struct RootINode final : RootEntry {
    INodePtr inode;
    explicit RootINode(INodePtr i)
        : RootEntry(RootEntry::Kind::kINode), inode(std::move(i)) {}
  };

  struct Descriptor final : RootEntry {
    std::shared_ptr<RootINode> old_root;
    MainPtr expected_main;
    std::shared_ptr<RootINode> new_root;
    std::atomic<bool> committed{false};
    Descriptor(std::shared_ptr<RootINode> o, MainPtr em,
               std::shared_ptr<RootINode> n)
        : RootEntry(RootEntry::Kind::kDescriptor),
          old_root(std::move(o)),
          expected_main(std::move(em)),
          new_root(std::move(n)) {}
  };

 public:
  CTrie()
      : root_(std::make_shared<RootINode>(NewRootINode())),
        read_only_(false) {}

  CTrie(const CTrie&) = delete;
  CTrie& operator=(const CTrie&) = delete;
  CTrie(CTrie&&) = default;
  CTrie& operator=(CTrie&&) = default;

  /// Inserts or overwrites; returns the previous value if the key existed.
  /// This "return the old pointer" behaviour is what builds the backward-
  /// pointer chains in IndexedPartition (§III-C, Non-unique Keys).
  std::optional<V> Put(const K& key, V value) {
    AssertWritable();
    const uint64_t h = hash_(key);
    while (true) {
      INodePtr r = ReadRoot();
      auto res = Insert(r, key, value, h, 0, nullptr, r->gen,
                        /*only_if_absent=*/false);
      if (res.restart) continue;
      return res.old_value;
    }
  }

  /// Inserts only if absent; returns the existing value otherwise.
  std::optional<V> PutIfAbsent(const K& key, V value) {
    AssertWritable();
    const uint64_t h = hash_(key);
    while (true) {
      INodePtr r = ReadRoot();
      auto res = Insert(r, key, value, h, 0, nullptr, r->gen,
                        /*only_if_absent=*/true);
      if (res.restart) continue;
      return res.old_value;
    }
  }

  std::optional<V> Lookup(const K& key) const {
    const uint64_t h = hash_(key);
    while (true) {
      INodePtr r = ReadRoot();
      auto res = DoLookup(r, key, h, 0, nullptr, r->gen);
      if (res.restart) continue;
      return res.old_value;
    }
  }

  bool Contains(const K& key) const { return Lookup(key).has_value(); }

  /// Removes the key; returns its value if it was present.
  std::optional<V> Remove(const K& key) {
    AssertWritable();
    const uint64_t h = hash_(key);
    while (true) {
      INodePtr r = ReadRoot();
      auto res = DoRemove(r, key, h, 0, nullptr, r->gen);
      if (res.restart) continue;
      return res.old_value;
    }
  }

  /// O(1) writable snapshot. Both the snapshot and this trie keep sharing
  /// all current nodes; each lazily re-generates the path it subsequently
  /// writes (copy-on-gen-mismatch).
  CTrie Snapshot() {
    AssertWritable();
    while (true) {
      std::shared_ptr<RootINode> r = RdcssReadRoot();
      MainPtr expmain = GcasRead(r->inode);
      // Install a fresh-gen copy of the root into *this* trie ...
      auto renewed = std::make_shared<RootINode>(
          CopyRootToNewGen(r->inode, expmain));
      if (RdcssRootSwap(r, expmain, renewed)) {
        // ... and hand the snapshot its own fresh-gen copy of the old root.
        CTrie snap(std::make_shared<RootINode>(
                       CopyRootToNewGen(r->inode, expmain)),
                   /*read_only=*/false, hash_, eq_);
        return snap;
      }
    }
  }

  /// O(1) read-only snapshot: mutation through it aborts; reads never copy.
  CTrie ReadOnlySnapshot() const {
    if (read_only_) {
      return CTrie(std::atomic_load(&root_), true, hash_, eq_);
    }
    auto* self = const_cast<CTrie*>(this);
    while (true) {
      std::shared_ptr<RootINode> r = self->RdcssReadRoot();
      MainPtr expmain = self->GcasRead(r->inode);
      auto renewed = std::make_shared<RootINode>(
          self->CopyRootToNewGen(r->inode, expmain));
      if (self->RdcssRootSwap(r, expmain, renewed)) {
        return CTrie(r, /*read_only=*/true, hash_, eq_);
      }
    }
  }

  bool read_only() const { return read_only_; }

  /// Visits every (key, value); takes an implicit read-only snapshot first,
  /// so iteration is consistent even under concurrent writes.
  void ForEach(const std::function<void(const K&, const V&)>& fn) const {
    if (!read_only_) {
      ReadOnlySnapshot().ForEach(fn);
      return;
    }
    INodePtr r = ReadRoot();
    Traverse(r, fn);
  }

  /// Number of entries. O(n): walks a read-only snapshot.
  size_t Size() const {
    size_t n = 0;
    ForEach([&n](const K&, const V&) { ++n; });
    return n;
  }

  bool Empty() const {
    bool any = false;
    // Cheap check: inspect root CNode bitmap on a snapshot-consistent read.
    if (!read_only_) return ReadOnlySnapshot().Empty();
    INodePtr r = ReadRoot();
    MainPtr m = const_cast<CTrie*>(this)->GcasRead(r);
    if (m->kind == MainNode::Kind::kCNode) {
      any = static_cast<const CNode*>(m.get())->bmp != 0;
    } else {
      any = true;
    }
    return !any;
  }

  /// Structural memory statistics for the memory-overhead experiment
  /// (Fig. 11). Counts nodes reachable from the current root; shared
  /// snapshot structure is counted once per trie that walks it.
  struct MemoryStats {
    size_t cnodes = 0;
    size_t snodes = 0;
    size_t inodes = 0;
    size_t lnodes = 0;
    size_t approx_bytes = 0;
  };
  MemoryStats ComputeMemoryStats() const {
    if (!read_only_) return ReadOnlySnapshot().ComputeMemoryStats();
    MemoryStats stats;
    INodePtr r = ReadRoot();
    StatsWalkINode(r, stats);
    return stats;
  }

 private:
  struct OpResult {
    bool restart = false;
    std::optional<V> old_value;
    static OpResult Restart() { return {true, std::nullopt}; }
    static OpResult Done(std::optional<V> old = std::nullopt) {
      return {false, std::move(old)};
    }
  };

  CTrie(RootPtr root, bool read_only, HashFn hash, EqFn eq)
      : root_(std::move(root)), read_only_(read_only), hash_(hash), eq_(eq) {}

  void AssertWritable() const {
    IDF_CHECK_MSG(!read_only_, "mutation of a read-only CTrie snapshot");
  }

  INodePtr NewRootINode() {
    auto gen = std::make_shared<Gen>();
    auto cn = std::make_shared<CNode>(0, std::vector<BranchPtr>{}, gen);
    return std::make_shared<INode>(cn, gen);
  }

  /// Copies an INode (given its committed main) into a brand-new generation.
  INodePtr CopyRootToNewGen(const INodePtr& /*root*/, const MainPtr& main) {
    auto gen = std::make_shared<Gen>();
    return std::make_shared<INode>(RegenerateMain(main, gen), gen);
  }

  /// A main node adopted into generation `gen` (CNodes get their gen field
  /// re-stamped; TNode/LNode carry no generation).
  MainPtr RegenerateMain(const MainPtr& m, const GenPtr& gen) {
    if (m->kind == MainNode::Kind::kCNode) {
      const auto* cn = static_cast<const CNode*>(m.get());
      return std::make_shared<CNode>(cn->bmp, cn->array, gen);
    }
    return m;
  }

  // ---- RDCSS root access ------------------------------------------------

  std::shared_ptr<RootINode> RdcssReadRoot(bool abort = false) {
    while (true) {
      RootPtr r = std::atomic_load(&root_);
      if (r->kind == RootEntry::Kind::kINode) {
        return std::static_pointer_cast<RootINode>(r);
      }
      RdcssComplete(std::static_pointer_cast<Descriptor>(r), abort);
    }
  }

  void RdcssComplete(const std::shared_ptr<Descriptor>& d, bool abort) {
    RootPtr expected = d;
    if (abort) {
      std::atomic_compare_exchange_strong(&root_, &expected,
                                          RootPtr(d->old_root));
      return;
    }
    MainPtr old_main = GcasRead(d->old_root->inode);
    if (old_main == d->expected_main) {
      if (std::atomic_compare_exchange_strong(&root_, &expected,
                                              RootPtr(d->new_root))) {
        d->committed.store(true, std::memory_order_release);
      }
    } else {
      std::atomic_compare_exchange_strong(&root_, &expected,
                                          RootPtr(d->old_root));
    }
  }

  bool RdcssRootSwap(const std::shared_ptr<RootINode>& old_root,
                     const MainPtr& expected_main,
                     const std::shared_ptr<RootINode>& new_root) {
    auto d = std::make_shared<Descriptor>(old_root, expected_main, new_root);
    RootPtr expected = old_root;
    if (std::atomic_compare_exchange_strong(&root_, &expected, RootPtr(d))) {
      RdcssComplete(d, /*abort=*/false);
      return d->committed.load(std::memory_order_acquire);
    }
    return false;
  }

  INodePtr ReadRoot(bool abort = false) const {
    return const_cast<CTrie*>(this)->RdcssReadRoot(abort)->inode;
  }

  // ---- GCAS ---------------------------------------------------------------

  MainPtr GcasRead(const INodePtr& in) {
    MainPtr m = in->main.load(std::memory_order_acquire);
    if (m == nullptr || m->prev.load(std::memory_order_acquire) == nullptr) {
      return m;
    }
    return GcasCommit(in, m);
  }

  MainPtr GcasCommit(const INodePtr& in, MainPtr m) {
    while (true) {
      MainPtr p = m->prev.load(std::memory_order_acquire);
      std::shared_ptr<RootINode> r = RdcssReadRoot(/*abort=*/true);
      if (p == nullptr) return m;
      if (p->kind == MainNode::Kind::kFailed) {
        // The swap failed; roll the INode back to the pre-swap main node.
        MainPtr rollback = p->prev.load(std::memory_order_acquire);
        MainPtr expected = m;
        if (in->main.compare_exchange_strong(expected, rollback)) {
          return rollback;
        }
        m = in->main.load(std::memory_order_acquire);
        continue;
      }
      // Commit if the trie's generation still matches this INode's.
      if (r->inode->gen == in->gen && !read_only_) {
        MainPtr expected_prev = p;
        if (m->prev.compare_exchange_strong(expected_prev, nullptr)) {
          return m;
        }
        continue;  // somebody else moved prev; re-inspect
      }
      // Generation changed mid-swap: mark failed and retry from main.
      MainPtr expected_prev = p;
      m->prev.compare_exchange_strong(expected_prev,
                                      std::make_shared<FailedNode>(p));
      m = in->main.load(std::memory_order_acquire);
    }
  }

  bool Gcas(const INodePtr& in, const MainPtr& old_main, MainPtr new_main) {
    new_main->prev.store(old_main, std::memory_order_release);
    MainPtr expected = old_main;
    if (in->main.compare_exchange_strong(expected, new_main)) {
      GcasCommit(in, new_main);
      return new_main->prev.load(std::memory_order_acquire) == nullptr;
    }
    return false;
  }

  // ---- CNode helpers ------------------------------------------------------

  static void FlagPos(uint64_t hash, int level, uint64_t bmp, uint64_t* flag,
                      int* pos) {
    const uint64_t idx = (hash >> level) & kLevelMask;
    *flag = 1ULL << idx;
    *pos = std::popcount(bmp & (*flag - 1));
  }

  CNodePtr CNodeInserted(const CNode& cn, int pos, uint64_t flag,
                         BranchPtr branch, const GenPtr& gen) {
    std::vector<BranchPtr> arr;
    arr.reserve(cn.array.size() + 1);
    arr.insert(arr.end(), cn.array.begin(), cn.array.begin() + pos);
    arr.push_back(std::move(branch));
    arr.insert(arr.end(), cn.array.begin() + pos, cn.array.end());
    return std::make_shared<CNode>(cn.bmp | flag, std::move(arr), gen);
  }

  CNodePtr CNodeUpdated(const CNode& cn, int pos, BranchPtr branch,
                        const GenPtr& gen) {
    std::vector<BranchPtr> arr = cn.array;
    arr[static_cast<size_t>(pos)] = std::move(branch);
    return std::make_shared<CNode>(cn.bmp, std::move(arr), gen);
  }

  CNodePtr CNodeRemoved(const CNode& cn, int pos, uint64_t flag,
                        const GenPtr& gen) {
    std::vector<BranchPtr> arr;
    arr.reserve(cn.array.size() - 1);
    arr.insert(arr.end(), cn.array.begin(), cn.array.begin() + pos);
    arr.insert(arr.end(), cn.array.begin() + pos + 1, cn.array.end());
    return std::make_shared<CNode>(cn.bmp & ~flag, std::move(arr), gen);
  }

  /// A CNode whose INode children are re-stamped to `gen` (lazy snapshot
  /// propagation — shared subtrees are copied only along written paths).
  CNodePtr RenewCNode(const CNode& cn, const GenPtr& gen) {
    std::vector<BranchPtr> arr;
    arr.reserve(cn.array.size());
    for (const BranchPtr& b : cn.array) {
      if (b->kind == Branch::Kind::kINode) {
        auto in = std::static_pointer_cast<INode>(b);
        MainPtr m = GcasRead(in);
        arr.push_back(std::make_shared<INode>(RegenerateMain(m, gen), gen));
      } else {
        arr.push_back(b);
      }
    }
    return std::make_shared<CNode>(cn.bmp, std::move(arr), gen);
  }

  /// Builds the two-entry subtree distinguishing x and y below `level`.
  MainPtr DualBranch(SNodePtr x, SNodePtr y, int level, const GenPtr& gen) {
    if (level > kMaxLevel) {
      auto tail = std::make_shared<LNode>(std::move(y), nullptr);
      return std::make_shared<LNode>(std::move(x), std::move(tail));
    }
    const uint64_t xidx = (x->hash >> level) & kLevelMask;
    const uint64_t yidx = (y->hash >> level) & kLevelMask;
    if (xidx == yidx) {
      MainPtr sub = DualBranch(std::move(x), std::move(y),
                               level + kBitsPerLevel, gen);
      auto in = std::make_shared<INode>(std::move(sub), gen);
      std::vector<BranchPtr> arr{in};
      return std::make_shared<CNode>(1ULL << xidx, std::move(arr), gen);
    }
    std::vector<BranchPtr> arr;
    if (xidx < yidx) {
      arr = {std::move(x), std::move(y)};
    } else {
      arr = {std::move(y), std::move(x)};
    }
    return std::make_shared<CNode>((1ULL << xidx) | (1ULL << yidx),
                                   std::move(arr), gen);
  }

  // ---- entombment / compression -------------------------------------------

  BranchPtr Resurrect(const BranchPtr& b) {
    if (b->kind == Branch::Kind::kINode) {
      auto in = std::static_pointer_cast<INode>(b);
      MainPtr m = GcasRead(in);
      if (m != nullptr && m->kind == MainNode::Kind::kTNode) {
        return static_cast<const TNode*>(m.get())->sn;
      }
    }
    return b;
  }

  MainPtr ToContracted(const CNodePtr& cn, int level) {
    if (level > 0 && cn->array.size() == 1 &&
        cn->array[0]->kind == Branch::Kind::kSNode) {
      return std::make_shared<TNode>(
          std::static_pointer_cast<SNode>(cn->array[0]));
    }
    return cn;
  }

  MainPtr ToCompressed(const CNode& cn, int level, const GenPtr& gen) {
    std::vector<BranchPtr> arr;
    arr.reserve(cn.array.size());
    for (const BranchPtr& b : cn.array) arr.push_back(Resurrect(b));
    auto compressed =
        std::make_shared<CNode>(cn.bmp, std::move(arr), gen);
    return ToContracted(compressed, level);
  }

  void Clean(const INodePtr& in, int level) {
    MainPtr m = GcasRead(in);
    if (m != nullptr && m->kind == MainNode::Kind::kCNode) {
      const auto* cn = static_cast<const CNode*>(m.get());
      Gcas(in, m, ToCompressed(*cn, level, in->gen));
    }
  }

  void CleanParent(const INodePtr& parent, const INodePtr& in, uint64_t hash,
                   int parent_level, const GenPtr& start_gen) {
    while (true) {
      MainPtr pm = GcasRead(parent);
      if (pm == nullptr || pm->kind != MainNode::Kind::kCNode) return;
      const auto* cn = static_cast<const CNode*>(pm.get());
      uint64_t flag;
      int pos;
      FlagPos(hash, parent_level, cn->bmp, &flag, &pos);
      if ((cn->bmp & flag) == 0) return;
      BranchPtr sub = cn->array[static_cast<size_t>(pos)];
      if (sub.get() != in.get()) return;
      MainPtr m = GcasRead(in);
      if (m != nullptr && m->kind == MainNode::Kind::kTNode) {
        auto tn = static_cast<const TNode*>(m.get());
        CNodePtr updated = CNodeUpdated(*cn, pos, tn->sn, parent->gen);
        MainPtr contracted = ToContracted(updated, parent_level);
        if (!Gcas(parent, pm, contracted)) {
          if (ReadRoot()->gen == start_gen) continue;  // retry
        }
      }
      return;
    }
  }

  // ---- LNode helpers --------------------------------------------------

  std::optional<V> LNodeLookup(const LNode* ln, const K& key) const {
    for (const LNode* p = ln; p != nullptr; p = p->next.get()) {
      if (eq_(p->sn->key, key)) return p->sn->value;
    }
    return std::nullopt;
  }

  LNodePtr LNodeRemoved(const LNode* ln, const K& key) const {
    // Rebuild the list without `key` (persistent removal).
    std::vector<SNodePtr> keep;
    for (const LNode* p = ln; p != nullptr; p = p->next.get()) {
      if (!eq_(p->sn->key, key)) keep.push_back(p->sn);
    }
    LNodePtr out = nullptr;
    for (auto it = keep.rbegin(); it != keep.rend(); ++it) {
      out = std::make_shared<LNode>(*it, out);
    }
    return out;
  }

  // ---- core recursive operations ----------------------------------------

  OpResult Insert(const INodePtr& in, const K& key, const V& value,
                  uint64_t h, int level, const INodePtr& parent,
                  const GenPtr& start_gen, bool only_if_absent) {
    MainPtr m = GcasRead(in);
    IDF_CHECK(m != nullptr);

    switch (m->kind) {
      case MainNode::Kind::kCNode: {
        const auto* cn = static_cast<const CNode*>(m.get());
        uint64_t flag;
        int pos;
        FlagPos(h, level, cn->bmp, &flag, &pos);
        if ((cn->bmp & flag) == 0) {
          // Empty slot: insert a fresh SNode here.
          CNodePtr renewed = (cn->gen == in->gen)
                                 ? nullptr
                                 : RenewCNode(*cn, in->gen);
          const CNode& base = renewed ? *renewed : *cn;
          CNodePtr updated = CNodeInserted(
              base, pos, flag, std::make_shared<SNode>(key, value, h),
              in->gen);
          return Gcas(in, m, updated) ? OpResult::Done() : OpResult::Restart();
        }
        BranchPtr b = cn->array[static_cast<size_t>(pos)];
        if (b->kind == Branch::Kind::kINode) {
          auto child = std::static_pointer_cast<INode>(b);
          if (start_gen == child->gen) {
            return Insert(child, key, value, h, level + kBitsPerLevel, in,
                          start_gen, only_if_absent);
          }
          // Generation mismatch: renew this CNode's children, then retry.
          if (Gcas(in, m, RenewCNode(*cn, in->gen))) {
            return Insert(in, key, value, h, level, parent, start_gen,
                          only_if_absent);
          }
          return OpResult::Restart();
        }
        // SNode in the slot.
        auto sn = std::static_pointer_cast<SNode>(b);
        if (sn->hash == h && eq_(sn->key, key)) {
          if (only_if_absent) return OpResult::Done(sn->value);
          CNodePtr renewed = (cn->gen == in->gen)
                                 ? nullptr
                                 : RenewCNode(*cn, in->gen);
          const CNode& base = renewed ? *renewed : *cn;
          CNodePtr updated = CNodeUpdated(
              base, pos, std::make_shared<SNode>(key, value, h), in->gen);
          return Gcas(in, m, updated) ? OpResult::Done(sn->value)
                                      : OpResult::Restart();
        }
        // Different key: grow a level.
        CNodePtr renewed =
            (cn->gen == in->gen) ? nullptr : RenewCNode(*cn, in->gen);
        const CNode& base = renewed ? *renewed : *cn;
        MainPtr sub = DualBranch(sn, std::make_shared<SNode>(key, value, h),
                                 level + kBitsPerLevel, in->gen);
        auto nin = std::make_shared<INode>(std::move(sub), in->gen);
        CNodePtr updated = CNodeUpdated(base, pos, nin, in->gen);
        return Gcas(in, m, updated) ? OpResult::Done() : OpResult::Restart();
      }
      case MainNode::Kind::kTNode: {
        if (parent != nullptr) Clean(parent, level - kBitsPerLevel);
        return OpResult::Restart();
      }
      case MainNode::Kind::kLNode: {
        const auto* ln = static_cast<const LNode*>(m.get());
        std::optional<V> existing = LNodeLookup(ln, key);
        if (existing.has_value() && only_if_absent) {
          return OpResult::Done(existing);
        }
        LNodePtr base = existing.has_value()
                            ? LNodeRemoved(ln, key)
                            : std::static_pointer_cast<const LNode>(m);
        auto updated = std::make_shared<LNode>(
            std::make_shared<SNode>(key, value, h), base);
        return Gcas(in, m, updated) ? OpResult::Done(existing)
                                    : OpResult::Restart();
      }
      case MainNode::Kind::kFailed:
        return OpResult::Restart();
    }
    return OpResult::Restart();
  }

  OpResult DoLookup(const INodePtr& in, const K& key, uint64_t h, int level,
                    const INodePtr& parent, const GenPtr& start_gen) const {
    auto* self = const_cast<CTrie*>(this);
    MainPtr m = self->GcasRead(in);
    IDF_CHECK(m != nullptr);

    switch (m->kind) {
      case MainNode::Kind::kCNode: {
        const auto* cn = static_cast<const CNode*>(m.get());
        uint64_t flag;
        int pos;
        FlagPos(h, level, cn->bmp, &flag, &pos);
        if ((cn->bmp & flag) == 0) return OpResult::Done();
        BranchPtr b = cn->array[static_cast<size_t>(pos)];
        if (b->kind == Branch::Kind::kINode) {
          auto child = std::static_pointer_cast<INode>(b);
          if (read_only_ || start_gen == child->gen) {
            return DoLookup(child, key, h, level + kBitsPerLevel, in,
                            start_gen);
          }
          if (self->Gcas(in, m, self->RenewCNode(*cn, in->gen))) {
            return DoLookup(in, key, h, level, parent, start_gen);
          }
          return OpResult::Restart();
        }
        auto sn = std::static_pointer_cast<SNode>(b);
        if (sn->hash == h && eq_(sn->key, key)) return OpResult::Done(sn->value);
        return OpResult::Done();
      }
      case MainNode::Kind::kTNode: {
        // Read-only views may simply look through the tomb.
        const auto* tn = static_cast<const TNode*>(m.get());
        if (read_only_) {
          if (tn->sn->hash == h && eq_(tn->sn->key, key)) {
            return OpResult::Done(tn->sn->value);
          }
          return OpResult::Done();
        }
        if (parent != nullptr) self->Clean(parent, level - kBitsPerLevel);
        return OpResult::Restart();
      }
      case MainNode::Kind::kLNode: {
        const auto* ln = static_cast<const LNode*>(m.get());
        return OpResult::Done(LNodeLookup(ln, key));
      }
      case MainNode::Kind::kFailed:
        return OpResult::Restart();
    }
    return OpResult::Restart();
  }

  OpResult DoRemove(const INodePtr& in, const K& key, uint64_t h, int level,
                    const INodePtr& parent, const GenPtr& start_gen) {
    MainPtr m = GcasRead(in);
    IDF_CHECK(m != nullptr);

    switch (m->kind) {
      case MainNode::Kind::kCNode: {
        const auto* cn = static_cast<const CNode*>(m.get());
        uint64_t flag;
        int pos;
        FlagPos(h, level, cn->bmp, &flag, &pos);
        if ((cn->bmp & flag) == 0) return OpResult::Done();

        BranchPtr b = cn->array[static_cast<size_t>(pos)];
        OpResult res;
        if (b->kind == Branch::Kind::kINode) {
          auto child = std::static_pointer_cast<INode>(b);
          if (start_gen == child->gen) {
            res = DoRemove(child, key, h, level + kBitsPerLevel, in,
                           start_gen);
          } else {
            if (Gcas(in, m, RenewCNode(*cn, in->gen))) {
              res = DoRemove(in, key, h, level, parent, start_gen);
            } else {
              return OpResult::Restart();
            }
          }
        } else {
          auto sn = std::static_pointer_cast<SNode>(b);
          if (sn->hash != h || !eq_(sn->key, key)) {
            return OpResult::Done();
          }
          CNodePtr renewed =
              (cn->gen == in->gen) ? nullptr : RenewCNode(*cn, in->gen);
          const CNode& base = renewed ? *renewed : *cn;
          CNodePtr removed = CNodeRemoved(base, pos, flag, in->gen);
          MainPtr contracted = ToContracted(removed, level);
          if (!Gcas(in, m, contracted)) return OpResult::Restart();
          res = OpResult::Done(sn->value);
        }

        if (res.restart || !res.old_value.has_value()) return res;
        // Contraction may have entombed this INode; fix the parent link.
        if (parent != nullptr) {
          MainPtr now = GcasRead(in);
          if (now != nullptr && now->kind == MainNode::Kind::kTNode) {
            CleanParent(parent, in, h, level - kBitsPerLevel, start_gen);
          }
        }
        return res;
      }
      case MainNode::Kind::kTNode: {
        if (parent != nullptr) Clean(parent, level - kBitsPerLevel);
        return OpResult::Restart();
      }
      case MainNode::Kind::kLNode: {
        const auto* ln = static_cast<const LNode*>(m.get());
        std::optional<V> existing = LNodeLookup(ln, key);
        if (!existing.has_value()) return OpResult::Done();
        LNodePtr remaining = LNodeRemoved(ln, key);
        MainPtr replacement;
        if (remaining == nullptr) {
          // Empty list is impossible here (list had >=2 or we entomb).
          replacement = std::make_shared<TNode>(nullptr);
        } else if (remaining->next == nullptr) {
          replacement = std::make_shared<TNode>(remaining->sn);
        } else {
          replacement = std::const_pointer_cast<LNode>(remaining);
        }
        return Gcas(in, m, replacement) ? OpResult::Done(existing)
                                        : OpResult::Restart();
      }
      case MainNode::Kind::kFailed:
        return OpResult::Restart();
    }
    return OpResult::Restart();
  }

  // ---- traversal (read-only views) ---------------------------------------

  void Traverse(const INodePtr& in,
                const std::function<void(const K&, const V&)>& fn) const {
    MainPtr m = const_cast<CTrie*>(this)->GcasRead(in);
    if (m == nullptr) return;
    switch (m->kind) {
      case MainNode::Kind::kCNode: {
        const auto* cn = static_cast<const CNode*>(m.get());
        for (const BranchPtr& b : cn->array) {
          if (b->kind == Branch::Kind::kINode) {
            Traverse(std::static_pointer_cast<INode>(b), fn);
          } else {
            const auto* sn = static_cast<const SNode*>(b.get());
            fn(sn->key, sn->value);
          }
        }
        break;
      }
      case MainNode::Kind::kTNode: {
        const auto* tn = static_cast<const TNode*>(m.get());
        if (tn->sn) fn(tn->sn->key, tn->sn->value);
        break;
      }
      case MainNode::Kind::kLNode: {
        for (const LNode* p = static_cast<const LNode*>(m.get()); p != nullptr;
             p = p->next.get()) {
          fn(p->sn->key, p->sn->value);
        }
        break;
      }
      case MainNode::Kind::kFailed:
        break;
    }
  }

  void StatsWalkINode(const INodePtr& in, MemoryStats& stats) const {
    ++stats.inodes;
    stats.approx_bytes += sizeof(INode);
    MainPtr m = const_cast<CTrie*>(this)->GcasRead(in);
    if (m == nullptr) return;
    switch (m->kind) {
      case MainNode::Kind::kCNode: {
        const auto* cn = static_cast<const CNode*>(m.get());
        ++stats.cnodes;
        stats.approx_bytes +=
            sizeof(CNode) + cn->array.size() * sizeof(BranchPtr);
        for (const BranchPtr& b : cn->array) {
          if (b->kind == Branch::Kind::kINode) {
            StatsWalkINode(std::static_pointer_cast<INode>(b), stats);
          } else {
            ++stats.snodes;
            stats.approx_bytes += sizeof(SNode);
          }
        }
        break;
      }
      case MainNode::Kind::kTNode:
        ++stats.snodes;
        stats.approx_bytes += sizeof(TNode) + sizeof(SNode);
        break;
      case MainNode::Kind::kLNode:
        for (const LNode* p = static_cast<const LNode*>(m.get()); p != nullptr;
             p = p->next.get()) {
          ++stats.lnodes;
          stats.approx_bytes += sizeof(LNode) + sizeof(SNode);
        }
        break;
      case MainNode::Kind::kFailed:
        break;
    }
  }

  // Root slot; accessed with std::atomic_* shared_ptr free functions because
  // the member itself must be replaceable under RDCSS.
  RootPtr root_;
  bool read_only_;
  HashFn hash_{};
  EqFn eq_{};
};

}  // namespace idf
