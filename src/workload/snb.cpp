#include "workload/snb.h"

namespace idf {

SchemaPtr SnbGenerator::EdgeSchema() {
  static const SchemaPtr kSchema = std::make_shared<Schema>(Schema({
      {"edge_source", TypeId::kInt64, false},
      {"edge_dest", TypeId::kInt64, false},
      {"creation_date", TypeId::kInt64, false},
      {"weight", TypeId::kFloat64, true},
  }));
  return kSchema;
}

SchemaPtr SnbGenerator::VertexSchema() {
  static const SchemaPtr kSchema = std::make_shared<Schema>(Schema({
      {"id", TypeId::kInt64, false},
      {"name", TypeId::kString, false},
      {"city", TypeId::kInt64, false},
      {"creation_date", TypeId::kInt64, false},
  }));
  return kSchema;
}

RowVec SnbGenerator::EdgeRow(uint64_t index) const {
  // Per-row determinism: the row's randomness depends only on (seed, index).
  Rng rng(HashCombine(config_.seed, index));
  ZipfSampler zipf(config_.num_vertices, config_.zipf_exponent);
  uint64_t rank = zipf.Sample(rng);
  // Bounded-degree spreading (see SnbConfig::max_degree): if this rank's
  // expected hit count exceeds the cap, deterministically fan its hits out
  // over `groups` pseudo-random vertices so each stays near the cap.
  const double expected =
      zipf.RankProbability(rank) * static_cast<double>(config_.num_edges);
  if (expected > static_cast<double>(config_.max_degree)) {
    const uint64_t groups = static_cast<uint64_t>(
        expected / static_cast<double>(config_.max_degree)) + 1;
    rank = (rank + rng.Below(groups) * 0x9E3779B9ULL) % config_.num_vertices;
  }
  const int64_t source = static_cast<int64_t>(rank);
  const int64_t dest =
      static_cast<int64_t>(rng.Below(config_.num_vertices));
  const int64_t creation = 1577836800 + static_cast<int64_t>(rng.Below(86400 * 365));
  return {Value::Int64(source), Value::Int64(dest), Value::Int64(creation),
          Value::Float64(rng.NextDouble())};
}

RowVec SnbGenerator::VertexRow(uint64_t index) const {
  Rng rng(HashCombine(config_.seed ^ 0x5eedf00dULL, index));
  return {Value::Int64(static_cast<int64_t>(index)),
          Value::String("person_" + std::to_string(index)),
          Value::Int64(static_cast<int64_t>(rng.Below(1000))),
          Value::Int64(1262304000 + static_cast<int64_t>(rng.Below(86400 * 3650)))};
}

Result<DataFrame> SnbGenerator::Edges(Session& session) const {
  const SnbConfig config = config_;
  SnbGenerator generator(config);
  return session.CreateTableFromGenerator(
      "snb_edges", EdgeSchema(), config.partitions,
      [generator, config](uint32_t partition) {
        std::vector<RowVec> rows;
        for (uint64_t i = partition; i < config.num_edges;
             i += config.partitions) {
          rows.push_back(generator.EdgeRow(i));
        }
        return rows;
      });
}

Result<DataFrame> SnbGenerator::Vertices(Session& session) const {
  const SnbConfig config = config_;
  SnbGenerator generator(config);
  return session.CreateTableFromGenerator(
      "snb_vertices", VertexSchema(), config.partitions,
      [generator, config](uint32_t partition) {
        std::vector<RowVec> rows;
        for (uint64_t i = partition; i < config.num_vertices;
             i += config.partitions) {
          rows.push_back(generator.VertexRow(i));
        }
        return rows;
      });
}

Result<DataFrame> SnbGenerator::EdgeSample(Session& session, uint64_t rows,
                                           uint64_t sample_seed) const {
  const SnbConfig config = config_;
  SnbGenerator generator(config);
  const uint32_t partitions =
      std::max<uint32_t>(1, std::min<uint32_t>(config.partitions,
                                               static_cast<uint32_t>(rows)));
  // Probe keys are drawn uniformly from the vertex domain. Sampling edge
  // *rows* would size-bias the probe toward the Zipf head (the top vertex
  // owns >10% of all edges) and blow the join output up quadratically;
  // uniform keys keep the paper's Table III result:probe ratio of ~100-150x
  // (the average out-degree).
  return session.CreateTableFromGenerator(
      "snb_edge_sample", EdgeSchema(), partitions,
      [generator, config, rows, sample_seed, partitions](uint32_t partition) {
        std::vector<RowVec> out;
        for (uint64_t i = partition; i < rows; i += partitions) {
          Rng rng(HashCombine(sample_seed, i));
          const int64_t source =
              static_cast<int64_t>(rng.Below(config.num_vertices));
          out.push_back({Value::Int64(source),
                         Value::Int64(static_cast<int64_t>(
                             rng.Below(config.num_vertices))),
                         Value::Int64(1577836800),
                         Value::Float64(rng.NextDouble())});
        }
        return out;
      });
}

DataFrame SnbShortQuery(int number, const DataFrame& edges,
                        const DataFrame& vertices, int64_t person_id) {
  switch (number) {
    case 1:
      // Person profile: vertex point lookup.
      return vertices.Filter(Eq(Col("id"), Lit(person_id)));
    case 2:
      // Recent activity: the person's edges joined with target vertices.
      return edges.Filter(Eq(Col("edge_source"), Lit(person_id)))
          .Join(vertices, "edge_dest", "id");
    case 3:
      // Friends: same shape, projected to friend attributes.
      return edges.Filter(Eq(Col("edge_source"), Lit(person_id)))
          .Join(vertices, "edge_dest", "id")
          .Select({"edge_dest", "name", "city"});
    case 4:
      // Message content: lookup + narrow projection.
      return edges.Filter(Eq(Col("edge_source"), Lit(person_id)))
          .Select({"creation_date"});
    case 5:
      // Creator scan: non-equality filter + projection — cannot use the
      // index; on the row layout this is the slow path (Fig. 13: SQ5 < 1x).
      return edges.Filter(Gt(Col("creation_date"), Lit(int64_t{1590000000})))
          .Select({"creation_date", "weight"});
    case 6:
      // Forum scan: full-table aggregate — no index use either.
      return edges.Select({"edge_dest", "weight"})
          .Agg({}, {AggSpec::Count("messages"), AggSpec::Avg("weight")});
    case 7:
      // Replies: lookup + join + per-friend aggregate.
      return edges.Filter(Eq(Col("edge_source"), Lit(person_id)))
          .Join(vertices, "edge_dest", "id")
          .Agg({"city"}, {AggSpec::Count("replies")});
    default:
      IDF_CHECK_MSG(false, "SNB short query number must be 1..7");
  }
  return DataFrame();
}

}  // namespace idf
