// TPC-DS-lite workload (§IV-E, Fig. 14).
//
// The paper runs `store_sales JOIN date_dim ON ss_sold_date_sk` across scale
// factors 1..1000. We reproduce the two tables' join shape: store_sales
// grows linearly with the scale factor while date_dim stays constant (as in
// real TPC-DS, where date_dim always has 73,049 rows) — so the larger the
// scale factor, the more the index filters out, which is exactly the Fig. 14
// trend ("the larger the dataset, the more data is filtered out").
#pragma once

#include "common/rng.h"
#include "sql/session.h"

namespace idf {

struct TpcdsConfig {
  double scale_factor = 1.0;
  /// store_sales rows per unit scale factor (real TPC-DS: ~2.88M; scaled
  /// down for in-memory reproduction).
  uint64_t sales_rows_per_sf = 120000;
  /// date_dim is constant-size in TPC-DS.
  uint64_t date_rows = 5000;
  /// The join query restricts to one year of dates: d_year == kTargetYear.
  static constexpr int32_t kTargetYear = 2001;
  uint64_t seed = 7;
  uint32_t partitions = 8;

  uint64_t sales_rows() const {
    return static_cast<uint64_t>(scale_factor *
                                 static_cast<double>(sales_rows_per_sf));
  }
};

class TpcdsGenerator {
 public:
  explicit TpcdsGenerator(TpcdsConfig config) : config_(config) {}

  const TpcdsConfig& config() const { return config_; }

  /// (ss_sold_date_sk i32, ss_item_sk i64, ss_customer_sk i64,
  ///  ss_quantity i32, ss_sales_price f64)
  static SchemaPtr StoreSalesSchema();
  /// (d_date_sk i32, d_year i32, d_moy i32, d_dom i32)
  static SchemaPtr DateDimSchema();

  RowVec StoreSalesRow(uint64_t index) const;
  RowVec DateDimRow(uint64_t index) const;

  Result<DataFrame> StoreSales(Session& session) const;
  Result<DataFrame> DateDim(Session& session) const;

  /// The evaluation's probe side: date_dim restricted to one year — a small
  /// relation joined against the big (indexed) store_sales.
  Result<DataFrame> DateDimForYear(Session& session, int32_t year) const;

  /// One month of dates (~30 keys). Relative to our 5000-row date_dim this
  /// matches the paper's selectivity regime (365 of 73,049 days ~ 0.5%).
  Result<DataFrame> DateDimForMonth(Session& session, int32_t year,
                                    int32_t month) const;

 private:
  TpcdsConfig config_;
};

}  // namespace idf
