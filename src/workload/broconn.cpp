#include "workload/broconn.h"

namespace idf {
namespace {
const char* kProtos[] = {"tcp", "udp", "icmp"};
}

SchemaPtr BroconnGenerator::ConnSchema() {
  static const SchemaPtr kSchema = std::make_shared<Schema>(Schema({
      {"ts", TypeId::kInt64, false},
      {"src_ip", TypeId::kInt64, false},
      {"dst_ip", TypeId::kInt64, false},
      {"src_port", TypeId::kInt32, false},
      {"dst_port", TypeId::kInt32, false},
      {"proto", TypeId::kString, false},
      {"orig_bytes", TypeId::kInt64, false},
      {"resp_bytes", TypeId::kInt64, false},
  }));
  return kSchema;
}

SchemaPtr BroconnGenerator::WatchlistSchema() {
  static const SchemaPtr kSchema = std::make_shared<Schema>(Schema({
      {"ip", TypeId::kInt64, false},
      {"threat_level", TypeId::kInt32, false},
      {"label", TypeId::kString, false},
  }));
  return kSchema;
}

RowVec BroconnGenerator::ConnRow(uint64_t index) const {
  Rng rng(HashCombine(config_.seed, index));
  ZipfSampler zipf(config_.num_hosts, config_.zipf_exponent);
  const int64_t src = HostIp(zipf.Sample(rng));
  const int64_t dst = HostIp(rng.Below(config_.num_hosts));
  static const int32_t kWellKnown[] = {22, 53, 80, 123, 443, 8080};
  return {Value::Int64(1700000000 + static_cast<int64_t>(index / 100)),
          Value::Int64(src),
          Value::Int64(dst),
          Value::Int32(static_cast<int32_t>(1024 + rng.Below(64511))),
          Value::Int32(kWellKnown[rng.Below(6)]),
          Value::String(kProtos[rng.Below(3)]),
          Value::Int64(static_cast<int64_t>(rng.Below(1 << 20))),
          Value::Int64(static_cast<int64_t>(rng.Below(1 << 22)))};
}

Result<DataFrame> BroconnGenerator::Connections(Session& session) const {
  const BroconnConfig config = config_;
  BroconnGenerator generator(config);
  return session.CreateTableFromGenerator(
      "broconn", ConnSchema(), config.partitions,
      [generator, config](uint32_t partition) {
        std::vector<RowVec> out;
        for (uint64_t i = partition; i < config.num_connections;
             i += config.partitions) {
          out.push_back(generator.ConnRow(i));
        }
        return out;
      });
}

Result<DataFrame> BroconnGenerator::ConnectionSample(Session& session,
                                                     uint64_t rows,
                                                     uint64_t sample_seed) const {
  const BroconnConfig config = config_;
  BroconnGenerator generator(config);
  const uint32_t partitions =
      std::max<uint32_t>(1, std::min<uint32_t>(config.partitions,
                                               static_cast<uint32_t>(rows)));
  // Sample source IPs uniformly over the host domain rather than over
  // connection rows: row sampling would be dominated by the Zipf-head hosts
  // and make the self-join output quadratic in the heavy hitters' traffic.
  return session.CreateTableFromGenerator(
      "broconn_sample", ConnSchema(), partitions,
      [generator, config, rows, sample_seed, partitions](uint32_t partition) {
        std::vector<RowVec> out;
        for (uint64_t i = partition; i < rows; i += partitions) {
          Rng rng(HashCombine(sample_seed, i));
          RowVec row = generator.ConnRow(rng.Below(config.num_connections));
          row[1] = Value::Int64(
              generator.HostIp(rng.Below(config.num_hosts)));
          out.push_back(std::move(row));
        }
        return out;
      });
}

Result<DataFrame> BroconnGenerator::Watchlist(Session& session, uint64_t size,
                                              uint64_t watch_seed) const {
  const BroconnConfig config = config_;
  BroconnGenerator generator(config);
  return session.CreateTableFromGenerator(
      "watchlist", WatchlistSchema(), 1,
      [generator, config, size, watch_seed](uint32_t) {
        std::vector<RowVec> out;
        for (uint64_t i = 0; i < size; ++i) {
          Rng rng(HashCombine(watch_seed, i));
          out.push_back(
              {Value::Int64(generator.HostIp(rng.Below(config.num_hosts))),
               Value::Int32(static_cast<int32_t>(1 + rng.Below(5))),
               Value::String("apt_" + std::to_string(rng.Below(100)))});
        }
        return out;
      });
}

}  // namespace idf
