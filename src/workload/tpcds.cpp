#include "workload/tpcds.h"

namespace idf {

SchemaPtr TpcdsGenerator::StoreSalesSchema() {
  static const SchemaPtr kSchema = std::make_shared<Schema>(Schema({
      {"ss_sold_date_sk", TypeId::kInt32, false},
      {"ss_item_sk", TypeId::kInt64, false},
      {"ss_customer_sk", TypeId::kInt64, false},
      {"ss_quantity", TypeId::kInt32, false},
      {"ss_sales_price", TypeId::kFloat64, false},
  }));
  return kSchema;
}

SchemaPtr TpcdsGenerator::DateDimSchema() {
  static const SchemaPtr kSchema = std::make_shared<Schema>(Schema({
      {"d_date_sk", TypeId::kInt32, false},
      {"d_year", TypeId::kInt32, false},
      {"d_moy", TypeId::kInt32, false},
      {"d_dom", TypeId::kInt32, false},
  }));
  return kSchema;
}

RowVec TpcdsGenerator::StoreSalesRow(uint64_t index) const {
  Rng rng(HashCombine(config_.seed, index));
  const int32_t date_sk =
      static_cast<int32_t>(rng.Below(config_.date_rows));
  return {Value::Int32(date_sk),
          Value::Int64(static_cast<int64_t>(rng.Below(18000))),
          Value::Int64(static_cast<int64_t>(rng.Below(100000))),
          Value::Int32(static_cast<int32_t>(1 + rng.Below(100))),
          Value::Float64(rng.NextDouble() * 200.0)};
}

RowVec TpcdsGenerator::DateDimRow(uint64_t index) const {
  // Dates advance one day per surrogate key starting 1998-01-01; years span
  // ~13.7 years over 5000 keys, so d_year == 2001 selects ~365 rows.
  const int32_t days = static_cast<int32_t>(index);
  const int32_t year = 1998 + days / 365;
  const int32_t day_of_year = days % 365;
  return {Value::Int32(days), Value::Int32(year),
          Value::Int32(1 + day_of_year / 31),
          Value::Int32(1 + day_of_year % 31)};
}

Result<DataFrame> TpcdsGenerator::StoreSales(Session& session) const {
  const TpcdsConfig config = config_;
  TpcdsGenerator generator(config);
  const uint64_t rows = config.sales_rows();
  return session.CreateTableFromGenerator(
      "store_sales", StoreSalesSchema(), config.partitions,
      [generator, config, rows](uint32_t partition) {
        std::vector<RowVec> out;
        for (uint64_t i = partition; i < rows; i += config.partitions) {
          out.push_back(generator.StoreSalesRow(i));
        }
        return out;
      });
}

Result<DataFrame> TpcdsGenerator::DateDim(Session& session) const {
  const TpcdsConfig config = config_;
  TpcdsGenerator generator(config);
  const uint32_t partitions = std::min<uint32_t>(config.partitions, 4);
  return session.CreateTableFromGenerator(
      "date_dim", DateDimSchema(), partitions,
      [generator, config, partitions](uint32_t partition) {
        std::vector<RowVec> out;
        for (uint64_t i = partition; i < config.date_rows; i += partitions) {
          out.push_back(generator.DateDimRow(i));
        }
        return out;
      });
}

Result<DataFrame> TpcdsGenerator::DateDimForYear(Session& session,
                                                 int32_t year) const {
  IDF_ASSIGN_OR_RETURN(DataFrame dates, DateDim(session));
  return dates.Filter(Eq(Col("d_year"), Lit(year)));
}

Result<DataFrame> TpcdsGenerator::DateDimForMonth(Session& session,
                                                  int32_t year,
                                                  int32_t month) const {
  IDF_ASSIGN_OR_RETURN(DataFrame dates, DateDim(session));
  return dates.Filter(
      And(Eq(Col("d_year"), Lit(year)), Eq(Col("d_moy"), Lit(month))));
}

}  // namespace idf
