// Broconn-like network-connection log (§II, Fig. 1).
//
// The paper's motivating workload is cyber-security threat detection on Zeek
// (Bro) "conn" logs: high-volume network connections arriving continuously,
// analyzed by joining against watchlists and by point lookups on source
// hosts. This generator produces a conn table with Zipf-skewed source IPs
// (a few hosts dominate traffic, as in real networks), plus small probe
// tables: a sampled subset of the log ("joining it with a small random
// sampled subset of itself", Fig. 1) and a watchlist of suspicious hosts.
#pragma once

#include "common/rng.h"
#include "sql/session.h"

namespace idf {

struct BroconnConfig {
  uint64_t num_connections = 1000000;
  uint64_t num_hosts = 50000;  // distinct source IPs
  double zipf_exponent = 1.2;
  uint64_t seed = 1337;
  uint32_t partitions = 8;
};

class BroconnGenerator {
 public:
  explicit BroconnGenerator(BroconnConfig config) : config_(config) {}

  const BroconnConfig& config() const { return config_; }

  /// (ts i64, src_ip i64, dst_ip i64, src_port i32, dst_port i32,
  ///  proto string, orig_bytes i64, resp_bytes i64)
  static SchemaPtr ConnSchema();
  /// (ip i64, threat_level i32, label string)
  static SchemaPtr WatchlistSchema();

  RowVec ConnRow(uint64_t index) const;

  Result<DataFrame> Connections(Session& session) const;

  /// Uniform sample of `rows` connections (the Fig. 1 probe side).
  Result<DataFrame> ConnectionSample(Session& session, uint64_t rows,
                                     uint64_t sample_seed) const;

  /// `size` suspicious source IPs drawn from the host domain.
  Result<DataFrame> Watchlist(Session& session, uint64_t size,
                              uint64_t watch_seed) const;

 private:
  /// IPv4-style packed address for host h (10.0.0.0/8 space).
  int64_t HostIp(uint64_t host) const {
    return (10ll << 24) + static_cast<int64_t>(host % (1 << 24));
  }

  BroconnConfig config_;
};

}  // namespace idf
