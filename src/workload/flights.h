// US-Flights-like workload (§IV-A, §IV-E, Fig. 15).
//
// The paper uses the US DoT on-time dataset: a 120 GB flights table and a
// 420 KB planes table, with queries Q1–Q7 (Table II):
//   Q1: join flights with planes ON tailNum           (string key)
//   Q2: SELECT * WHERE tailNum = x                    (string point query)
//   Q3: join flights with flights WHERE flightNum<200 (int key)
//   Q4: join flights with flights WHERE flightNum<400 (int key)
//   Q5–Q7: point queries with 10 / 100 / 1000 matches (int key)
//
// The generator plants three special flight numbers with exactly 10, 100 and
// 1000 occurrences so Q5–Q7 have the paper's controlled selectivities.
#pragma once

#include "common/rng.h"
#include "sql/session.h"

namespace idf {

struct FlightsConfig {
  uint64_t num_flights = 1000000;
  uint64_t num_planes = 5000;     // the real planes table is tiny (420 KB)
  int32_t num_flight_numbers = 8000;
  uint64_t seed = 99;
  uint32_t partitions = 8;

  // Planted keys for Q5/Q6/Q7 (outside the regular flight-number domain).
  static constexpr int32_t kKey10 = 900010;
  static constexpr int32_t kKey100 = 900100;
  static constexpr int32_t kKey1000 = 901000;
};

class FlightsGenerator {
 public:
  explicit FlightsGenerator(FlightsConfig config) : config_(config) {}

  const FlightsConfig& config() const { return config_; }

  /// (flight_num i32, tail_num string, origin string, dest string,
  ///  dep_delay i32, arr_delay i32, distance i32, flight_date i64)
  static SchemaPtr FlightsSchema();
  /// (tail_num string, manufacturer string, model string, year i32)
  static SchemaPtr PlanesSchema();

  RowVec FlightRow(uint64_t index) const;
  RowVec PlaneRow(uint64_t index) const;

  Result<DataFrame> Flights(Session& session) const;
  Result<DataFrame> Planes(Session& session) const;

  /// Tail number of plane `i`, e.g. "N00042" — shared by both tables.
  static std::string TailNum(uint64_t plane);

  /// Expected number of flights carrying one of the planted keys.
  static uint64_t PlantedMatches(int32_t key) {
    switch (key) {
      case FlightsConfig::kKey10: return 10;
      case FlightsConfig::kKey100: return 100;
      case FlightsConfig::kKey1000: return 1000;
      default: return 0;
    }
  }

 private:
  uint64_t planted_total() const { return 10 + 100 + 1000; }

  FlightsConfig config_;
};

}  // namespace idf
