// SNB-like social network workload (§IV-A).
//
// The LDBC Social Network Benchmark "generates a social network with
// power-law structure, similar to Facebook", with edge and vertex tables.
// This generator reproduces the shape at configurable scale: Zipf-distributed
// out-degrees on the edge table, a vertex table with person attributes, a
// sampled probe table ("joining it with a small random sampled subset of
// itself"), and analogues of the seven short-read queries SQ1–SQ7 (Fig. 13).
//
// Generation is per-partition deterministic (each row derives its randomness
// from Mix64(seed, row_index)) so lineage recomputation rebuilds identical
// partitions.
#pragma once

#include "common/rng.h"
#include "sql/session.h"

namespace idf {

struct SnbConfig {
  uint64_t num_vertices = 100000;
  uint64_t num_edges = 1000000;
  double zipf_exponent = 1.1;  // power-law out-degree skew
  /// Maximum expected out-degree. LDBC's datagen uses a bounded
  /// ("facebook-like") degree distribution; an uncapped Zipf with s>1 would
  /// give the rank-0 vertex >10% of ALL edges and turn the partition holding
  /// it into a permanent straggler at any cluster size. Zipf head ranks whose
  /// expected frequency exceeds this cap are spread over several vertices.
  uint64_t max_degree = 1000;
  uint64_t seed = 42;
  uint32_t partitions = 8;

  /// Rough analogue of the paper's scale factors: SF-300 and SF-1000 have
  /// ~0.3B and ~1B "knows" edges over a few million persons — LDBC's average
  /// degree is in the hundreds, which we preserve (100:1 edge:vertex).
  static SnbConfig ScaleFactor(double sf, uint32_t partitions = 8,
                               uint64_t seed = 42) {
    SnbConfig config;
    // SF 1 ~ 1M edges in this reproduction (paper SF-1000 ~ 1B).
    config.num_edges = static_cast<uint64_t>(sf * 1e6);
    config.num_vertices = std::max<uint64_t>(1, config.num_edges / 100);
    // LDBC's degree distribution is power-law with a *bounded* maximum
    // degree (facebookDegreeDistribution); a pure Zipf with s>1 would hand
    // >10% of all edges to the rank-0 vertex and turn one partition into a
    // permanent straggler. s=0.8 keeps a heavy tail with a capped head.
    config.zipf_exponent = 0.8;
    config.partitions = partitions;
    config.seed = seed;
    return config;
  }
};

class SnbGenerator {
 public:
  explicit SnbGenerator(SnbConfig config) : config_(config) {}

  const SnbConfig& config() const { return config_; }

  /// (edge_source i64, edge_dest i64, creation_date i64, weight f64)
  static SchemaPtr EdgeSchema();
  /// (id i64, name string, city i64, creation_date i64)
  static SchemaPtr VertexSchema();

  /// One edge row; row indices are global in [0, num_edges).
  RowVec EdgeRow(uint64_t index) const;
  RowVec VertexRow(uint64_t index) const;

  Result<DataFrame> Edges(Session& session) const;
  Result<DataFrame> Vertices(Session& session) const;

  /// A uniform sample of `rows` edges — the probe side of the paper's join
  /// (Table III: probe sizes S=10K .. XL=10M against a 1B build side).
  Result<DataFrame> EdgeSample(Session& session, uint64_t rows,
                               uint64_t sample_seed) const;

 private:
  SnbConfig config_;
};

/// Analogue of the LDBC short-read queries (Fig. 13). `edges` and `vertices`
/// may be indexed dataframe views or plain cached tables — the planner
/// decides whether indexed operators fire, as in the paper.
///
///   SQ1: person profile           — vertex lookup by id
///   SQ2: person's recent activity — edge lookup by source + join vertices
///   SQ3: friends of person        — edge lookup + join vertices on dest
///   SQ4: content of a message     — edge lookup, project one column
///   SQ5: creator scan             — projection + non-equality filter
///                                   (no index use; slower on row layout)
///   SQ6: forum scan               — full scan + aggregate (no index use)
///   SQ7: replies                  — edge lookup + join + aggregate
DataFrame SnbShortQuery(int number, const DataFrame& edges,
                        const DataFrame& vertices, int64_t person_id);

}  // namespace idf
