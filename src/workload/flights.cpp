#include "workload/flights.h"

#include <cstdio>

namespace idf {
namespace {

const char* kAirports[] = {"ATL", "ORD", "DFW", "LAX", "JFK", "DEN",
                           "SFO", "SEA", "MIA", "BOS", "PHX", "IAH"};
constexpr size_t kNumAirports = sizeof(kAirports) / sizeof(kAirports[0]);

const char* kManufacturers[] = {"BOEING", "AIRBUS", "EMBRAER", "BOMBARDIER"};

}  // namespace

SchemaPtr FlightsGenerator::FlightsSchema() {
  static const SchemaPtr kSchema = std::make_shared<Schema>(Schema({
      {"flight_num", TypeId::kInt32, false},
      {"tail_num", TypeId::kString, false},
      {"origin", TypeId::kString, false},
      {"dest", TypeId::kString, false},
      {"dep_delay", TypeId::kInt32, true},
      {"arr_delay", TypeId::kInt32, true},
      {"distance", TypeId::kInt32, false},
      {"flight_date", TypeId::kInt64, false},
  }));
  return kSchema;
}

SchemaPtr FlightsGenerator::PlanesSchema() {
  static const SchemaPtr kSchema = std::make_shared<Schema>(Schema({
      {"tail_num", TypeId::kString, false},
      {"manufacturer", TypeId::kString, false},
      {"model", TypeId::kString, false},
      {"year", TypeId::kInt32, false},
  }));
  return kSchema;
}

std::string FlightsGenerator::TailNum(uint64_t plane) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "N%05llu",
                static_cast<unsigned long long>(plane));
  return buf;
}

RowVec FlightsGenerator::FlightRow(uint64_t index) const {
  Rng rng(HashCombine(config_.seed, index));
  // The first 1110 rows carry the planted Q5/Q6/Q7 keys; the rest draw from
  // the regular flight-number domain.
  int32_t flight_num;
  if (index < 10) {
    flight_num = FlightsConfig::kKey10;
  } else if (index < 110) {
    flight_num = FlightsConfig::kKey100;
  } else if (index < 1110) {
    flight_num = FlightsConfig::kKey1000;
  } else {
    flight_num = static_cast<int32_t>(
        rng.Below(static_cast<uint64_t>(config_.num_flight_numbers)));
  }
  const uint64_t plane = rng.Below(config_.num_planes);
  const size_t origin = rng.Below(kNumAirports);
  size_t dest = rng.Below(kNumAirports - 1);
  if (dest >= origin) ++dest;
  const bool delayed = rng.Chance(0.25);
  return {Value::Int32(flight_num),
          Value::String(TailNum(plane)),
          Value::String(kAirports[origin]),
          Value::String(kAirports[dest]),
          delayed ? Value::Int32(static_cast<int32_t>(rng.Below(180)))
                  : Value::Int32(0),
          delayed ? Value::Int32(static_cast<int32_t>(rng.Below(240)))
                  : Value::Int32(0),
          Value::Int32(static_cast<int32_t>(100 + rng.Below(2900))),
          Value::Int64(1199145600 +
                       static_cast<int64_t>(rng.Below(86400ull * 365)))};
}

RowVec FlightsGenerator::PlaneRow(uint64_t index) const {
  Rng rng(HashCombine(config_.seed ^ 0x9a9a9a9aULL, index));
  const size_t manufacturer = rng.Below(4);
  return {Value::String(TailNum(index)),
          Value::String(kManufacturers[manufacturer]),
          Value::String("M" + std::to_string(rng.Below(20))),
          Value::Int32(static_cast<int32_t>(1985 + rng.Below(25)))};
}

Result<DataFrame> FlightsGenerator::Flights(Session& session) const {
  const FlightsConfig config = config_;
  FlightsGenerator generator(config);
  return session.CreateTableFromGenerator(
      "flights", FlightsSchema(), config.partitions,
      [generator, config](uint32_t partition) {
        std::vector<RowVec> out;
        for (uint64_t i = partition; i < config.num_flights;
             i += config.partitions) {
          out.push_back(generator.FlightRow(i));
        }
        return out;
      });
}

Result<DataFrame> FlightsGenerator::Planes(Session& session) const {
  const FlightsConfig config = config_;
  FlightsGenerator generator(config);
  const uint32_t partitions = std::min<uint32_t>(config.partitions, 2);
  return session.CreateTableFromGenerator(
      "planes", PlanesSchema(), partitions,
      [generator, config, partitions](uint32_t partition) {
        std::vector<RowVec> out;
        for (uint64_t i = partition; i < config.num_planes; i += partitions) {
          out.push_back(generator.PlaneRow(i));
        }
        return out;
      });
}

}  // namespace idf
