// Fixed-size worker pool used by the engine's executors.
//
// On this reproduction's single-core host the pool still provides the
// concurrency *semantics* the Indexed DataFrame needs (concurrent readers
// against cTrie snapshots, one writer per partition) even though parallel
// speedup is modeled by the discrete-event scheduler (see engine/cluster.h).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace idf {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future for its completion.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      IDF_CHECK_POOL_OPEN();
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for i in [0, count) across the pool and waits for all.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

  /// Tasks executed since construction (for scheduler accounting tests).
  size_t completed_tasks() const;

 private:
  void IDF_CHECK_POOL_OPEN() const;  // asserts not shut down (mutex held)
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t completed_ = 0;
  bool shutdown_ = false;
};

}  // namespace idf
