// Leveled logger with pluggable sinks. Off by default above WARN so
// benchmarks stay quiet; tests flip the level to observe scheduler
// decisions (recovery, staleness).
//
// Emission is thread-safe: the message is formatted into a local buffer,
// then dispatched to every registered sink under one mutex, so concurrent
// tasks cannot interleave partial lines. The default sink writes
// "[idf LEVEL] msg" to stderr; AddLogSink() can add more (e.g. the JSONL
// file sink for machine-readable logs).
#pragma once

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <memory>
#include <string>

namespace idf {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Receives fully formatted messages (no trailing newline). Write() is
/// always called under the logger's emission mutex — sinks need no locking
/// of their own.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(LogLevel level, const std::string& message) = 0;
};

/// Adds a sink alongside the default stderr sink.
void AddLogSink(std::shared_ptr<LogSink> sink);

/// Removes every added sink (the stderr default stays).
void ClearLogSinks();

/// Sink writing one JSON object per line:
///   {"ts": <unix seconds>, "level": "WARN", "msg": "..."}
/// Returns nullptr (and logs to stderr) if the file cannot be opened.
std::shared_ptr<LogSink> MakeJsonlFileSink(const std::string& path);

/// printf-style logging with a level prefix, fanned out to all sinks.
void LogImpl(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

#define IDF_LOG_DEBUG(...) ::idf::LogImpl(::idf::LogLevel::kDebug, __VA_ARGS__)
#define IDF_LOG_INFO(...) ::idf::LogImpl(::idf::LogLevel::kInfo, __VA_ARGS__)
#define IDF_LOG_WARN(...) ::idf::LogImpl(::idf::LogLevel::kWarn, __VA_ARGS__)
#define IDF_LOG_ERROR(...) ::idf::LogImpl(::idf::LogLevel::kError, __VA_ARGS__)

/// Rate limiter for hot-path warnings: emits on the 1st, (n+1)th, (2n+1)th …
/// hit of this call site. `level` is a LogLevel enumerator name (Warn, …).
#define IDF_LOG_EVERY_N(level, n, ...)                                        \
  do {                                                                        \
    static ::std::atomic<uint64_t> idf_log_every_n_counter_{0};               \
    if (idf_log_every_n_counter_.fetch_add(1, ::std::memory_order_relaxed) %  \
            static_cast<uint64_t>(n) ==                                       \
        0) {                                                                  \
      ::idf::LogImpl(::idf::LogLevel::k##level, __VA_ARGS__);                 \
    }                                                                         \
  } while (0)

}  // namespace idf
