// Minimal leveled logger. Off by default above WARN so benchmarks stay quiet;
// tests flip the level to observe scheduler decisions (recovery, staleness).
#pragma once

#include <cstdarg>
#include <cstdio>

namespace idf {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// printf-style logging to stderr with a level prefix.
void LogImpl(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

#define IDF_LOG_DEBUG(...) ::idf::LogImpl(::idf::LogLevel::kDebug, __VA_ARGS__)
#define IDF_LOG_INFO(...) ::idf::LogImpl(::idf::LogLevel::kInfo, __VA_ARGS__)
#define IDF_LOG_WARN(...) ::idf::LogImpl(::idf::LogLevel::kWarn, __VA_ARGS__)
#define IDF_LOG_ERROR(...) ::idf::LogImpl(::idf::LogLevel::kError, __VA_ARGS__)

}  // namespace idf
