#include "common/logging.h"

#include <atomic>

namespace idf {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void LogImpl(LogLevel level, const char* fmt, ...) {
  if (level < GetLogLevel()) return;
  std::fprintf(stderr, "[idf %s] ", LevelName(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace idf
