#include "common/logging.h"

#include <chrono>
#include <mutex>
#include <vector>

namespace idf {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

class StderrSink final : public LogSink {
 public:
  void Write(LogLevel level, const std::string& message) override {
    std::fprintf(stderr, "[idf %s] %s\n", LevelName(level), message.c_str());
  }
};

class JsonlFileSink final : public LogSink {
 public:
  explicit JsonlFileSink(std::FILE* file) : file_(file) {}
  ~JsonlFileSink() override { std::fclose(file_); }

  void Write(LogLevel level, const std::string& message) override {
    std::string escaped;
    escaped.reserve(message.size() + 8);
    for (const char c : message) {
      switch (c) {
        case '"': escaped += "\\\""; break;
        case '\\': escaped += "\\\\"; break;
        case '\n': escaped += "\\n"; break;
        case '\r': escaped += "\\r"; break;
        case '\t': escaped += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            escaped += buf;
          } else {
            escaped += c;
          }
      }
    }
    const auto now = std::chrono::duration<double>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count();
    std::fprintf(file_, "{\"ts\":%.6f,\"level\":\"%s\",\"msg\":\"%s\"}\n", now,
                 LevelName(level), escaped.c_str());
    std::fflush(file_);
  }

 private:
  std::FILE* file_;
};

struct SinkState {
  std::mutex mutex;
  std::vector<std::shared_ptr<LogSink>> extra_sinks;
  StderrSink stderr_sink;
};

SinkState& Sinks() {
  static SinkState* state = new SinkState();
  return *state;
}

}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void AddLogSink(std::shared_ptr<LogSink> sink) {
  if (sink == nullptr) return;
  SinkState& state = Sinks();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.extra_sinks.push_back(std::move(sink));
}

void ClearLogSinks() {
  SinkState& state = Sinks();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.extra_sinks.clear();
}

std::shared_ptr<LogSink> MakeJsonlFileSink(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) {
    std::fprintf(stderr, "[idf ERROR] cannot open log file '%s'\n",
                 path.c_str());
    return nullptr;
  }
  return std::make_shared<JsonlFileSink>(file);
}

void LogImpl(LogLevel level, const char* fmt, ...) {
  if (level < GetLogLevel()) return;

  // Format outside the lock; fall back to a heap buffer for long messages.
  char stack_buf[512];
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, args);
  va_end(args);
  std::string message;
  if (needed < 0) {
    va_end(args_copy);
    message = "(log formatting error)";
  } else if (static_cast<size_t>(needed) < sizeof(stack_buf)) {
    va_end(args_copy);
    message.assign(stack_buf, static_cast<size_t>(needed));
  } else {
    message.resize(static_cast<size_t>(needed));
    std::vsnprintf(message.data(), message.size() + 1, fmt, args_copy);
    va_end(args_copy);
  }

  SinkState& state = Sinks();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.stderr_sink.Write(level, message);
  for (const auto& sink : state.extra_sinks) sink->Write(level, message);
}

}  // namespace idf
