// Lightweight error-handling primitives for the Indexed DataFrame library.
//
// Fallible operations return `Status` (void-like) or `Result<T>` (value or
// error). Programmer errors (broken invariants) abort via IDF_CHECK; user and
// environment errors (bad query, missing block, stale version) travel as
// Status so callers can react — e.g. the scheduler catches kUnavailable from
// a lost executor and triggers lineage recomputation.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace idf {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed (bad schema, key type)
  kNotFound,          // lookup key / block / column absent
  kAlreadyExists,     // duplicate registration (table name, index)
  kOutOfRange,        // offset past a batch, partition id out of bounds
  kResourceExhausted, // batch full, memory budget exceeded
  kFailedPrecondition,// operation on wrong state (uncached index, closed writer)
  kUnavailable,       // executor dead / block lost — retryable via lineage
  kStale,             // versioned block older than required (consistency, §III-D)
  kUnimplemented,
  kInternal,
  kCancelled,         // query cancelled by its client (server/query_service.h)
  kDeadlineExceeded,  // query deadline expired before completion
};

/// Human-readable name of a status code ("OK", "NotFound", ...).
std::string_view StatusCodeName(StatusCode code);

/// A success-or-error outcome with an optional message. Cheap to copy on the
/// OK path (no allocation); error path allocates the message once.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) { return {StatusCode::kInvalidArgument, std::move(m)}; }
  static Status NotFound(std::string m) { return {StatusCode::kNotFound, std::move(m)}; }
  static Status AlreadyExists(std::string m) { return {StatusCode::kAlreadyExists, std::move(m)}; }
  static Status OutOfRange(std::string m) { return {StatusCode::kOutOfRange, std::move(m)}; }
  static Status ResourceExhausted(std::string m) { return {StatusCode::kResourceExhausted, std::move(m)}; }
  static Status FailedPrecondition(std::string m) { return {StatusCode::kFailedPrecondition, std::move(m)}; }
  static Status Unavailable(std::string m) { return {StatusCode::kUnavailable, std::move(m)}; }
  static Status Stale(std::string m) { return {StatusCode::kStale, std::move(m)}; }
  static Status Unimplemented(std::string m) { return {StatusCode::kUnimplemented, std::move(m)}; }
  static Status Internal(std::string m) { return {StatusCode::kInternal, std::move(m)}; }
  static Status Cancelled(std::string m) { return {StatusCode::kCancelled, std::move(m)}; }
  static Status DeadlineExceeded(std::string m) { return {StatusCode::kDeadlineExceeded, std::move(m)}; }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "NotFound: key 42 absent from partition 3" or "OK".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Value-or-Status. Mirrors absl::StatusOr with the subset we need.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}           // NOLINT implicit
  Result(Status status) : status_(std::move(status)) {}   // NOLINT implicit

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & { AbortIfError(); return *value_; }
  const T& value() const& { AbortIfError(); return *value_; }
  T&& value() && { AbortIfError(); return std::move(*value_); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void AbortIfError() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& extra);
}  // namespace internal

// Invariant checks: always on (these guard memory-safety-critical layout
// arithmetic in the storage layer; the cost is negligible next to row I/O).
#define IDF_CHECK(expr)                                                   \
  do {                                                                    \
    if (!(expr)) ::idf::internal::CheckFailed(__FILE__, __LINE__, #expr, ""); \
  } while (0)

#define IDF_CHECK_MSG(expr, msg)                                          \
  do {                                                                    \
    if (!(expr))                                                          \
      ::idf::internal::CheckFailed(__FILE__, __LINE__, #expr, (msg));     \
  } while (0)

#define IDF_CHECK_OK(status_expr)                                         \
  do {                                                                    \
    ::idf::Status _idf_s = (status_expr);                                 \
    if (!_idf_s.ok())                                                     \
      ::idf::internal::CheckFailed(__FILE__, __LINE__, #status_expr,      \
                                   _idf_s.ToString());                    \
  } while (0)

// Propagate a non-OK Status to the caller.
#define IDF_RETURN_IF_ERROR(status_expr)          \
  do {                                            \
    ::idf::Status _idf_s = (status_expr);         \
    if (!_idf_s.ok()) return _idf_s;              \
  } while (0)

// Assign-or-return for Result<T>: IDF_ASSIGN_OR_RETURN(auto x, Foo());
#define IDF_ASSIGN_OR_RETURN(lhs, result_expr)    \
  IDF_ASSIGN_OR_RETURN_IMPL_(                     \
      IDF_STATUS_CONCAT_(_idf_result, __LINE__), lhs, result_expr)
#define IDF_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, result_expr) \
  auto tmp = (result_expr);                               \
  if (!tmp.ok()) return tmp.status();                     \
  lhs = std::move(tmp).value()
#define IDF_STATUS_CONCAT_(a, b) IDF_STATUS_CONCAT_IMPL_(a, b)
#define IDF_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace idf
