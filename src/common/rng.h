// Deterministic random number generation for workload synthesis.
//
// Every generator in src/workload is seeded explicitly so that (a) tests are
// reproducible and (b) lineage-based recomputation after an executor failure
// regenerates byte-identical partitions (the engine treats "generate partition
// p of dataset D with seed s" as a replayable source, like Kafka offsets in
// the paper's §III-D).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/status.h"

namespace idf {

/// xoshiro256** PRNG — fast, high quality, 2^256-1 period.
/// Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0xdecafbadULL) { Seed(seed); }

  /// Re-seeds the full 256-bit state from a 64-bit seed via splitmix64.
  void Seed(uint64_t seed) {
    for (auto& word : state_) {
      seed = Mix64(seed);
      word = seed;
    }
    // Avoid the (astronomically unlikely) all-zero state.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) {
    IDF_CHECK(bound > 0);
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    auto low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = (~bound + 1) % bound;
      while (low < threshold) {
        m = static_cast<__uint128_t>(Next()) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    IDF_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p of true.
  bool Chance(double p) { return NextDouble() < p; }

  /// Random lowercase ASCII string of the given length.
  std::string NextString(size_t length) {
    std::string s(length, 'a');
    for (auto& c : s) c = static_cast<char>('a' + Below(26));
    return s;
  }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

/// Zipf-distributed sampler over {0, ..., n-1} with exponent `s`.
///
/// Used by the SNB-like generator to produce power-law vertex degrees
/// ("social network with power-law structure, similar to Facebook", §IV-A)
/// and by Broconn to skew source-IP frequencies. Implements rejection-
/// inversion sampling (Hörmann & Derflinger) — O(1) per draw, no O(n) tables.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double s);

  uint64_t Sample(Rng& rng);

  /// Probability mass of a given rank (0-based). Used by generators that
  /// need expected frequencies, e.g. to cap maximum degrees LDBC-style.
  double RankProbability(uint64_t rank) const;

  uint64_t n() const { return n_; }
  double exponent() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double threshold_;
};

/// Fisher–Yates shuffle of a vector with an explicit Rng (std::shuffle's
/// algorithm is unspecified across standard libraries; this one is portable
/// and therefore lineage-safe).
template <typename T>
void DeterministicShuffle(std::vector<T>& v, Rng& rng) {
  for (size_t i = v.size(); i > 1; --i) {
    size_t j = rng.Below(i);
    using std::swap;
    swap(v[i - 1], v[j]);
  }
}

}  // namespace idf
