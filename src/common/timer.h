// Wall-clock timing for real measurements. The engine's *simulated* cluster
// time lives in engine/virtual_clock.h; this header is only for measuring
// actual CPU work on the host.
#pragma once

#include <chrono>
#include <cstdint>

namespace idf {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace idf
