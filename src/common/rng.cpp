#include "common/rng.h"

#include <cmath>

namespace idf {

// Rejection-inversion sampling for the Zipf distribution, after
// W. Hörmann, G. Derflinger, "Rejection-inversion to generate variates from
// monotone discrete distributions", ACM TOMACS 1996. Indices here are 1-based
// internally; Sample() returns 0-based ranks.
ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), s_(s) {
  IDF_CHECK(n >= 1);
  IDF_CHECK(s > 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -s_));
}

double ZipfSampler::H(double x) const {
  if (s_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfSampler::HInverse(double x) const {
  if (s_ == 1.0) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

double ZipfSampler::RankProbability(uint64_t rank) const {
  IDF_CHECK(rank < n_);
  const double r = static_cast<double>(rank);
  const double mass = H(r + 1.5) - H(r + 0.5);
  const double total = H(static_cast<double>(n_) + 0.5) - H(0.5);
  return mass / total;
}

uint64_t ZipfSampler::Sample(Rng& rng) {
  if (n_ == 1) return 0;
  while (true) {
    const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    if (k > static_cast<double>(n_)) k = static_cast<double>(n_);
    // Accept most draws immediately; fall back to the exact test otherwise.
    if (k - x <= threshold_ ||
        u >= H(k + 0.5) - std::pow(k, -s_)) {
      return static_cast<uint64_t>(k) - 1;
    }
  }
}

}  // namespace idf
