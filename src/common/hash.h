// 64-bit hashing used everywhere a stable, high-quality hash is required:
// shuffle partitioning, cTrie keys, string-key indexing (§IV-E: strings are
// hashed into a fixed-width key, then verified against the stored row).
//
// All functions are deterministic across runs and platforms — partitioning
// decisions are part of the lineage, so recomputation after a failure must
// land rows on the same partitions.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace idf {

/// Fast, well-mixed 64->64 finalizer (splitmix64 / murmur3 fmix-style).
constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine two hashes (boost::hash_combine-like, 64-bit).
constexpr uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return seed ^ (Mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

/// xxHash64-style hash over arbitrary bytes. Not the reference implementation
/// byte-for-byte, but the same construction (striped accumulators + avalanche)
/// and quality class; stable across runs.
uint64_t HashBytes(const void* data, size_t len, uint64_t seed = 0);

inline uint64_t HashString(std::string_view s, uint64_t seed = 0) {
  return HashBytes(s.data(), s.size(), seed);
}

inline uint64_t HashInt64(int64_t v, uint64_t seed = 0) {
  return Mix64(static_cast<uint64_t>(v) + seed);
}

inline uint64_t HashDouble(double v, uint64_t seed = 0) {
  // Normalize -0.0 to +0.0 so equal values hash equally.
  if (v == 0.0) v = 0.0;
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return Mix64(bits + seed);
}

}  // namespace idf
