#include "common/threadpool.h"

#include <atomic>

#include "common/status.h"

namespace idf {

ThreadPool::ThreadPool(size_t num_threads) {
  IDF_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::IDF_CHECK_POOL_OPEN() const {
  IDF_CHECK_MSG(!shutdown_, "Submit() on a shut-down ThreadPool");
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++completed_;
    }
  }
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    futures.push_back(Submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.get();  // rethrows worker exceptions here
}

size_t ThreadPool::completed_tasks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

}  // namespace idf
