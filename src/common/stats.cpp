#include "common/stats.h"

#include <cstdio>
#include <limits>
#include <numeric>

namespace idf {

double Sample::Mean() const {
  if (values_.empty()) return 0.0;
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

void Sample::Sort() {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Sample::Quantile(double q) {
  if (values_.empty()) return 0.0;
  Sort();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

std::string Sample::BoxplotString() {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "min=%.4g p25=%.4g med=%.4g p75=%.4g max=%.4g mean=%.4g",
                Min(), Quantile(0.25), Median(), Quantile(0.75), Max(),
                Mean());
  return buf;
}

std::string FormatBytes(double bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f %s", bytes, kUnits[unit]);
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.0f ns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  }
  return buf;
}

}  // namespace idf
