// Streaming statistics and benchmark reporting helpers.
//
// The paper reports "averages of performance metrics over many runs" and IQR
// boxplots (Fig. 4); RunningStat and Sample cover both.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace idf {

/// Welford-style streaming mean/variance plus min/max.
class RunningStat {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// A batch of observations with quantile queries (for boxplots).
class Sample {
 public:
  void Add(double x) { values_.push_back(x); sorted_ = false; }
  void Reserve(size_t n) { values_.reserve(n); }

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double Mean() const;
  double Min() { Sort(); return values_.empty() ? 0.0 : values_.front(); }
  double Max() { Sort(); return values_.empty() ? 0.0 : values_.back(); }

  /// Linear-interpolated quantile, q in [0,1].
  double Quantile(double q);
  double Median() { return Quantile(0.5); }

  const std::vector<double>& values() const { return values_; }

  /// "min=.. p25=.. med=.. p75=.. max=.. mean=.." — one boxplot row.
  std::string BoxplotString();

 private:
  void Sort();

  std::vector<double> values_;
  bool sorted_ = false;
};

/// Formats byte counts as "4.0 KB", "3.2 GB", ...
std::string FormatBytes(double bytes);

/// Formats seconds as "831 us", "1.24 s", ...
std::string FormatSeconds(double seconds);

}  // namespace idf
