// RowBatch: one fixed-capacity raw buffer of row-wise binary data.
//
// "The row batches are collections of binary, unsafe arrays (e.g., of 4 MB in
// size), each storing a number of rows determined by the row and batch sizes"
// (§III-C). The buffer is allocated outside any GC'd heap by construction
// (std::aligned_alloc) and is append-only: rows are bump-allocated and never
// moved, so PackedRowPtr offsets stay valid for the batch's lifetime.
//
// Memory governance (src/mem/governor.h): a batch is an Evictable payload.
// While open (the writable tail of a partition store) it is never evicted;
// Seal() — called when the store rolls to a new tail or takes a snapshot —
// makes it immutable and hands it to the MemoryGovernor, which may spill the
// buffer to disk under memory pressure. Readers call EnsureReadable() before
// touching data(): it pins the batch into the thread's mem::AccessScope and
// transparently faults a spilled buffer back in. Metadata (capacity, used,
// num_rows) always stays in memory — an evicted batch is a disk-backed stub.
#pragma once

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "mem/governor.h"

namespace idf {

class RowBatch final : public mem::Evictable {
 public:
  /// Default batch size — the paper's measured sweet spot (Fig. 5).
  static constexpr uint32_t kDefaultCapacity = 4u << 20;  // 4 MB

  static std::shared_ptr<RowBatch> Create(uint32_t capacity = kDefaultCapacity);

  ~RowBatch() override;
  RowBatch(const RowBatch&) = delete;
  RowBatch& operator=(const RowBatch&) = delete;

  /// Bump-allocates `len` bytes; returns the offset of the allocation, or
  /// ResourceExhausted when the batch is full. The caller writes the row
  /// into MutableData() + offset. Only valid while the batch is unsealed.
  Result<uint32_t> Allocate(uint32_t len);

  /// Copy-on-write clone: a new batch with the same capacity whose used
  /// prefix is copied. Used when a divergent version appends into a tail
  /// batch that a snapshot still shares (§III-E).
  std::shared_ptr<RowBatch> Clone() const;

  /// Seals the batch: no further writes, eligible for eviction. Idempotent.
  /// Partition stores call this when a snapshot shares the tail or when a
  /// fresh tail replaces it.
  void Seal();
  bool sealed() const { return sealed_for_governor(); }

  /// Pins this batch into the thread's mem::AccessScope (reloading the
  /// buffer from spill if it was evicted) so data() stays valid for the
  /// scope's lifetime. Near-free until a memory budget is first engaged.
  void EnsureReadable() const { mem::AccessScope::Pin(const_cast<RowBatch*>(this)); }

  /// Tags this batch for the governor's salvage catalog (fault tolerance):
  /// if it spills, the spill file is recoverable by (owner, shard, index).
  void SetSpillIdentity(const mem::SpillIdentity& id) {
    mem::Evictable::SetSpillIdentity(id);
  }

  const uint8_t* data() const { return data_; }
  uint8_t* MutableData() { return data_; }

  uint32_t capacity() const { return capacity_; }
  uint32_t used() const { return used_; }
  uint32_t remaining() const { return capacity_ - used_; }
  uint32_t num_rows() const { return num_rows_; }

  /// Buffer bytes actually allocated (capacity padded to the alignment).
  uint64_t padded_bytes() const { return PaddedBytes(capacity_); }

 private:
  RowBatch(uint8_t* data, uint32_t capacity)
      : data_(data), capacity_(capacity) {}

  static uint64_t PaddedBytes(uint32_t capacity);

  // mem::Evictable payload hooks (governor lock held, no pins).
  Result<uint64_t> SpillPayload(const std::string& path) override;
  void ReleasePayload() override;
  Status ReloadPayload(const std::string& path) override;
  uint64_t PayloadBytes() const override { return padded_bytes(); }

  uint8_t* data_;
  uint32_t capacity_;
  uint32_t used_ = 0;
  uint32_t num_rows_ = 0;
};

}  // namespace idf
