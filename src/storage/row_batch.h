// RowBatch: one fixed-capacity raw buffer of row-wise binary data.
//
// "The row batches are collections of binary, unsafe arrays (e.g., of 4 MB in
// size), each storing a number of rows determined by the row and batch sizes"
// (§III-C). The buffer is allocated outside any GC'd heap by construction
// (std::aligned_alloc) and is append-only: rows are bump-allocated and never
// moved, so PackedRowPtr offsets stay valid for the batch's lifetime.
#pragma once

#include <cstdint>
#include <memory>

#include "common/status.h"

namespace idf {

class RowBatch {
 public:
  /// Default batch size — the paper's measured sweet spot (Fig. 5).
  static constexpr uint32_t kDefaultCapacity = 4u << 20;  // 4 MB

  static std::shared_ptr<RowBatch> Create(uint32_t capacity = kDefaultCapacity);

  ~RowBatch();
  RowBatch(const RowBatch&) = delete;
  RowBatch& operator=(const RowBatch&) = delete;

  /// Bump-allocates `len` bytes; returns the offset of the allocation, or
  /// ResourceExhausted when the batch is full. The caller writes the row
  /// into MutableData() + offset.
  Result<uint32_t> Allocate(uint32_t len);

  /// Copy-on-write clone: a new batch with the same capacity whose used
  /// prefix is copied. Used when a divergent version appends into a tail
  /// batch that a snapshot still shares (§III-E).
  std::shared_ptr<RowBatch> Clone() const;

  const uint8_t* data() const { return data_; }
  uint8_t* MutableData() { return data_; }

  uint32_t capacity() const { return capacity_; }
  uint32_t used() const { return used_; }
  uint32_t remaining() const { return capacity_ - used_; }
  uint32_t num_rows() const { return num_rows_; }

 private:
  RowBatch(uint8_t* data, uint32_t capacity)
      : data_(data), capacity_(capacity) {}

  uint8_t* data_;
  uint32_t capacity_;
  uint32_t used_ = 0;
  uint32_t num_rows_ = 0;
};

}  // namespace idf
