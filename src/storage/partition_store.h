// PartitionStore: the row-batch collection of one Indexed Batch RDD partition,
// with snapshot-based multi-versioning (§III-C, §III-E).
//
// The batch *directory* is a cTrie mapping batch index -> RowBatch pointer —
// the paper's "secondary cTrie that stores pointers to the row batches".
// Taking a version snapshot is O(1): the directory is snapshotted, sealed
// batches are shared by pointer, and the open tail batch is copied lazily
// the first time a divergent version appends into it (COW at 4 MB
// granularity, not full-data copies).
//
// Threading model, as in the paper: one writer per partition ("transformations
// within a partition are sequentially executed on a single core", §III-C);
// any number of concurrent readers against snapshots.
#pragma once

#include <cstdint>
#include <memory>

#include "ctrie/ctrie.h"
#include "storage/packed_ptr.h"
#include "storage/row_batch.h"
#include "storage/row_layout.h"
#include "types/schema.h"

namespace idf {

class PartitionStore {
 public:
  explicit PartitionStore(uint32_t batch_capacity = RowBatch::kDefaultCapacity);

  PartitionStore(const PartitionStore&) = delete;
  PartitionStore& operator=(const PartitionStore&) = delete;
  PartitionStore(PartitionStore&&) = default;
  PartitionStore& operator=(PartitionStore&&) = default;

  /// O(1) version snapshot: shares all batches. The open tail batch is
  /// *sealed* by the snapshot — each version's next append opens a fresh
  /// batch of its own, so no data is ever copied (§III-E: divergent versions
  /// "share the parent data and only store the deltas").
  PartitionStore Snapshot();

  /// Hints that ~`bytes` of row data are about to be appended: freshly
  /// opened batches are sized to the hint (capped at batch_capacity) instead
  /// of the full default, so small appends after a snapshot do not allocate
  /// a whole 4 MB batch for a handful of rows.
  void ReserveHint(uint64_t bytes) { next_batch_hint_ += bytes; }

  /// Encodes and appends a row. `back_ptr` points at the previous row with
  /// the same key (null for first occurrence); its size is folded into the
  /// new row's PackedRowPtr per the paper's pointer layout.
  Result<PackedRowPtr> AppendRow(const RowLayout& layout, const RowVec& row,
                                 PackedRowPtr back_ptr);

  /// Appends an already-encoded row (shuffle-received bytes), rewriting its
  /// back-pointer header to `back_ptr`.
  Result<PackedRowPtr> AppendEncoded(const uint8_t* bytes, uint32_t len,
                                     PackedRowPtr back_ptr);

  /// Start of the encoded row this pointer addresses. The returned pointer
  /// stays valid as long as this PartitionStore (or any snapshot sharing the
  /// batch) is alive.
  const uint8_t* RowAt(PackedRowPtr ptr) const;

  /// Size in bytes of the row a pointer addresses.
  uint32_t RowSizeAt(PackedRowPtr ptr) const {
    return RowLayout::RowSize(RowAt(ptr));
  }

  uint32_t num_batches() const { return num_batches_; }
  std::shared_ptr<RowBatch> batch(uint32_t index) const;

  uint64_t num_rows() const { return num_rows_; }
  uint32_t batch_capacity() const { return batch_capacity_; }

  /// Bytes of row data written (excludes unused batch tails).
  uint64_t data_bytes() const { return data_bytes_; }
  /// Bytes of buffer capacity allocated across all batches (variable-size:
  /// hinted appends open right-sized batches).
  uint64_t allocated_bytes() const { return allocated_bytes_; }

  /// COW events on this store: fresh batches opened because the previous
  /// tail was sealed by a snapshot (the paper's batch-granular copy-on-write,
  /// Fig. 9). Full-batch opens and first-ever batches are not counted.
  uint64_t cow_batch_opens() const { return cow_batch_opens_; }

  /// Residency report for spill-aware scheduling: how many of this
  /// partition's batches are currently in memory vs. evicted to spill.
  /// Point-in-time (the governor may evict concurrently); callers treat it
  /// as a dispatch hint, not a guarantee.
  void CountResidency(size_t* resident, size_t* evicted) const {
    *resident = 0;
    *evicted = 0;
    for (const std::shared_ptr<RowBatch>& b : flat_) {
      if (b == nullptr) continue;
      if (b->resident()) {
        ++*resident;
      } else {
        ++*evicted;
      }
    }
  }

  /// Seals the open tail batch, making it immutable and therefore evictable
  /// by the memory governor. Called when a version finishes building (base
  /// shuffle, append, recompute, load): the finished version is never
  /// written again — every subsequent write snapshots first — so without
  /// this a freshly built partition would hold one unsealed (unevictable)
  /// tail per partition forever. Idempotent; the next append to *this*
  /// store (which never happens in practice) would open a fresh batch.
  void SealTail() {
    if (tail_ != nullptr) tail_->Seal();
    tail_exclusive_ = false;
  }

  /// Registers this store's batches with the memory governor's salvage
  /// catalog: batch i is tagged SpillIdentity{owner, shard, instance, i}, so
  /// if it spills, the spill file can seed recovery of (owner, shard) after
  /// an executor loss. Applied retroactively to existing batches and to every
  /// batch opened later. Snapshots deliberately do NOT inherit the tag:
  /// divergent-version batches are not part of the base contiguous prefix
  /// that recovery replays.
  void SetSpillTag(uint64_t owner, uint32_t shard);

  /// Ends salvage-tagging: seals the open tail batch (so every tagged batch
  /// holds exclusively rows inserted before this call) and leaves batches
  /// opened from here on untagged. Recompute calls this between re-routing
  /// the base table and replaying the append chain — the salvage catalog's
  /// contract is "a contiguous prefix of base routing order", so a batch
  /// holding replayed append rows must never register in it.
  void ClearSpillTag();

 private:
  /// Ensures the tail batch is exclusively owned and has room for `len`
  /// bytes; allocates/COWs as needed. Returns the writable tail.
  Result<std::shared_ptr<RowBatch>> WritableTail(uint32_t len);

  Result<PackedRowPtr> FinishAppend(RowBatch& tail, uint32_t offset,
                                    PackedRowPtr back_ptr, uint32_t len);

  CTrie<uint32_t, std::shared_ptr<RowBatch>> directory_;
  // Read cache mirroring the directory: RowAt() is on the join/lookup hot
  // path (one call per backward-chain step), so it must not pay a cTrie
  // lookup per row. The directory remains the versioning/sharing mechanism;
  // this vector is rebuilt O(#batches) on snapshot (pointer copies only).
  std::vector<std::shared_ptr<RowBatch>> flat_;
  uint32_t batch_capacity_;
  uint32_t num_batches_ = 0;
  uint64_t num_rows_ = 0;
  uint64_t data_bytes_ = 0;
  uint64_t allocated_bytes_ = 0;
  uint64_t next_batch_hint_ = 0;
  uint64_t cow_batch_opens_ = 0;
  uint64_t spill_owner_ = 0;  // 0 = batches are not salvage-tagged
  uint32_t spill_shard_ = 0;
  uint64_t spill_instance_ = 0;
  std::shared_ptr<RowBatch> tail_;  // == directory_[num_batches_-1]
  bool tail_exclusive_ = false;     // false after a snapshot (tail sealed)
};

}  // namespace idf
