#include "storage/partition_store.h"

#include <algorithm>

#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"

namespace idf {

namespace {

/// Process-wide storage counters, resolved once. Updates are one relaxed
/// atomic add each, cheap enough for the append path.
struct StorageMetrics {
  obs::Counter& snapshots =
      obs::Registry::Global().GetCounter("storage.partition.snapshots");
  obs::Counter& batches_opened =
      obs::Registry::Global().GetCounter("storage.batches.opened");
  obs::Counter& cow_batch_opens =
      obs::Registry::Global().GetCounter("storage.batches.cow_opens");
  obs::Counter& batch_bytes =
      obs::Registry::Global().GetCounter("storage.batches.allocated_bytes");

  static StorageMetrics& Get() {
    static StorageMetrics* metrics = new StorageMetrics();
    return *metrics;
  }
};

}  // namespace

PartitionStore::PartitionStore(uint32_t batch_capacity)
    : batch_capacity_(batch_capacity) {
  IDF_CHECK_MSG(batch_capacity_ > PackedRowPtr::kMaxRowSize,
                "batch capacity must exceed the maximum row size");
  IDF_CHECK_MSG(batch_capacity_ - 1 <= PackedRowPtr::kMaxOffset,
                "batch capacity not addressable by packed pointers");
}

PartitionStore PartitionStore::Snapshot() {
  PartitionStore snap(batch_capacity_);
  snap.directory_ = directory_.Snapshot();
  snap.flat_ = flat_;
  snap.num_batches_ = num_batches_;
  snap.num_rows_ = num_rows_;
  snap.data_bytes_ = data_bytes_;
  snap.allocated_bytes_ = allocated_bytes_;
  snap.tail_ = tail_;
  // The tail is now shared and therefore sealed for both versions: each
  // side's next append opens a fresh (hint-sized) batch of its own. Sealing
  // also hands the batch to the memory governor — from here on it may be
  // spilled under memory pressure (it is shared, so it spills once).
  if (tail_ != nullptr) {
    if (tail_exclusive_) {
      obs::FlightRecorder::Global().Record(obs::EventType::kBatchSeal, 0,
                                           tail_->used(), spill_owner_,
                                           spill_shard_);
    }
    tail_->Seal();
  }
  snap.tail_exclusive_ = false;
  tail_exclusive_ = false;
  StorageMetrics::Get().snapshots.Increment();
  return snap;
}

Result<std::shared_ptr<RowBatch>> PartitionStore::WritableTail(uint32_t len) {
  IDF_CHECK_MSG(len <= PackedRowPtr::kMaxRowSize, "row exceeds 1 KB bound");
  if (tail_ != nullptr && tail_exclusive_ && tail_->remaining() >= len) {
    return tail_;
  }
  // Tail missing, sealed by a snapshot, or full: open a fresh batch, sized
  // to the pending-append hint when one is set (min len, max the default).
  if (num_batches_ >= PackedRowPtr::kMaxBatch) {
    return Status::ResourceExhausted("partition reached max batch count");
  }
  StorageMetrics& sm = StorageMetrics::Get();
  if (tail_ != nullptr && !tail_exclusive_ && tail_->remaining() >= len) {
    // The tail was sealed by a snapshot while it still had room: this open
    // is the COW divergence event of §III-E, not a capacity rollover.
    ++cow_batch_opens_;
    sm.cow_batch_opens.Increment();
  }
  uint32_t capacity = batch_capacity_;
  if (next_batch_hint_ > 0) {
    capacity = static_cast<uint32_t>(std::clamp<uint64_t>(
        next_batch_hint_, len, batch_capacity_));
    next_batch_hint_ -= std::min<uint64_t>(next_batch_hint_, capacity);
  }
  // The outgoing tail will never be written again — it becomes immutable
  // here, which is exactly when the governor may start evicting it.
  if (tail_ != nullptr && tail_exclusive_) {
    obs::FlightRecorder::Global().Record(obs::EventType::kBatchSeal, 0,
                                         tail_->used(), spill_owner_,
                                         spill_shard_);
    tail_->Seal();
  }
  tail_ = RowBatch::Create(capacity);
  if (spill_owner_ != 0) {
    tail_->SetSpillIdentity(
        {spill_owner_, spill_shard_, spill_instance_, num_batches_});
  }
  allocated_bytes_ += capacity;
  sm.batches_opened.Increment();
  sm.batch_bytes.Add(capacity);
  tail_exclusive_ = true;
  directory_.Put(num_batches_, tail_);
  flat_.push_back(tail_);
  ++num_batches_;
  return tail_;
}

Result<PackedRowPtr> PartitionStore::FinishAppend(RowBatch& tail,
                                                  uint32_t offset,
                                                  PackedRowPtr back_ptr,
                                                  uint32_t len) {
  const uint32_t prev_size =
      back_ptr.is_null() ? 0 : RowSizeAt(back_ptr);
  ++num_rows_;
  data_bytes_ += len;
  (void)tail;
  return PackedRowPtr::Make(num_batches_ - 1, offset, prev_size);
}

Result<PackedRowPtr> PartitionStore::AppendRow(const RowLayout& layout,
                                               const RowVec& row,
                                               PackedRowPtr back_ptr) {
  uint32_t len;
  {
    Result<uint32_t> size = layout.ComputeRowSize(row);
    IDF_RETURN_IF_ERROR(size.status());
    len = *size;
  }
  IDF_ASSIGN_OR_RETURN(std::shared_ptr<RowBatch> tail, WritableTail(len));
  IDF_ASSIGN_OR_RETURN(uint32_t offset, tail->Allocate(len));
  layout.EncodeRow(row, tail->MutableData() + offset, back_ptr);
  return FinishAppend(*tail, offset, back_ptr, len);
}

Result<PackedRowPtr> PartitionStore::AppendEncoded(const uint8_t* bytes,
                                                   uint32_t len,
                                                   PackedRowPtr back_ptr) {
  IDF_CHECK(RowLayout::RowSize(bytes) == len);
  IDF_ASSIGN_OR_RETURN(std::shared_ptr<RowBatch> tail, WritableTail(len));
  IDF_ASSIGN_OR_RETURN(uint32_t offset, tail->Allocate(len));
  uint8_t* dst = tail->MutableData() + offset;
  std::memcpy(dst, bytes, len);
  RowLayout::SetBackPtr(dst, back_ptr);
  return FinishAppend(*tail, offset, back_ptr, len);
}

const uint8_t* PartitionStore::RowAt(PackedRowPtr ptr) const {
  IDF_CHECK_MSG(!ptr.is_null(), "RowAt(null)");
  IDF_CHECK_MSG(ptr.batch() < flat_.size(),
                "dangling batch index in packed pointer");
  const RowBatch& batch = *flat_[ptr.batch()];
  // Pin + fault-in if the batch was spilled; a single predicted branch when
  // no memory budget has ever been engaged.
  batch.EnsureReadable();
  IDF_CHECK(batch.used() > ptr.offset());
  return batch.data() + ptr.offset();
}

std::shared_ptr<RowBatch> PartitionStore::batch(uint32_t index) const {
  auto found = directory_.Lookup(index);
  IDF_CHECK_MSG(found.has_value(), "batch index out of range");
  (*found)->EnsureReadable();
  return *found;
}

void PartitionStore::ClearSpillTag() {
  SealTail();
  spill_owner_ = 0;
}

void PartitionStore::SetSpillTag(uint64_t owner, uint32_t shard) {
  spill_owner_ = owner;
  spill_shard_ = shard;
  spill_instance_ = mem::MemoryGovernor::NewInstanceId();
  for (uint32_t i = 0; i < num_batches_; ++i) {
    flat_[i]->SetSpillIdentity({spill_owner_, spill_shard_, spill_instance_, i});
  }
}

}  // namespace idf
