// Packed 64-bit row pointers (§III-C): "The pointers stored both in the cTrie
// and in the backward pointer data structure are packed in dense 64-bit
// integers, each containing the row batch number, an offset within a row
// batch, and the size of the previous row indexed on the same key."
//
// Layout (most- to least-significant):
//   [ batch : 28 bits ][ offset : 26 bits ][ prev_size : 10 bits ]
//
// - 2^28 batches per partition; at the default 4 MB batch size that is
//   1 PB per partition — same order as the paper's 2^31 x 4 MB bound.
// - 26-bit offsets address batches up to 64 MB, the largest size the batch
//   sweep (Fig. 5) explores.
// - 10-bit prev_size covers the paper's 1 KB maximum row size.
//
// The all-ones value is reserved as the null pointer (end of a backward
// chain / empty cTrie slot).
#pragma once

#include <cstdint>

#include "common/status.h"

namespace idf {

class PackedRowPtr {
 public:
  static constexpr int kBatchBits = 28;
  static constexpr int kOffsetBits = 26;
  static constexpr int kPrevSizeBits = 10;
  static_assert(kBatchBits + kOffsetBits + kPrevSizeBits == 64);

  static constexpr uint64_t kMaxBatch = (1ULL << kBatchBits) - 1;
  static constexpr uint64_t kMaxOffset = (1ULL << kOffsetBits) - 1;
  static constexpr uint64_t kMaxPrevSize = (1ULL << kPrevSizeBits) - 1;
  static constexpr uint64_t kNullBits = ~0ULL;

  /// Maximum encodable row size; rows are rejected above this (§III-C:
  /// "rows that may have up to 1 KB").
  static constexpr uint32_t kMaxRowSize = static_cast<uint32_t>(kMaxPrevSize);

  constexpr PackedRowPtr() : bits_(kNullBits) {}

  static PackedRowPtr Make(uint32_t batch, uint32_t offset,
                           uint32_t prev_size) {
    IDF_CHECK_MSG(batch <= kMaxBatch, "batch index overflow");
    IDF_CHECK_MSG(offset <= kMaxOffset, "batch offset overflow");
    IDF_CHECK_MSG(prev_size <= kMaxPrevSize, "prev row size overflow");
    PackedRowPtr p;
    p.bits_ = (static_cast<uint64_t>(batch) << (kOffsetBits + kPrevSizeBits)) |
              (static_cast<uint64_t>(offset) << kPrevSizeBits) |
              static_cast<uint64_t>(prev_size);
    // Make() must never produce the reserved null pattern; it cannot, since
    // batch==kMaxBatch && offset==kMaxOffset && prev==kMaxPrevSize would
    // require a 64 MB-1 offset in the last possible batch, which the
    // partition store never allocates (it caps batch count below kMaxBatch).
    IDF_CHECK(p.bits_ != kNullBits);
    return p;
  }

  static constexpr PackedRowPtr Null() { return PackedRowPtr(); }

  static constexpr PackedRowPtr FromBits(uint64_t bits) {
    PackedRowPtr p;
    p.bits_ = bits;
    return p;
  }

  constexpr bool is_null() const { return bits_ == kNullBits; }
  constexpr uint64_t bits() const { return bits_; }

  constexpr uint32_t batch() const {
    return static_cast<uint32_t>(bits_ >> (kOffsetBits + kPrevSizeBits));
  }
  constexpr uint32_t offset() const {
    return static_cast<uint32_t>((bits_ >> kPrevSizeBits) & kMaxOffset);
  }
  constexpr uint32_t prev_size() const {
    return static_cast<uint32_t>(bits_ & kMaxPrevSize);
  }

  constexpr bool operator==(const PackedRowPtr& o) const {
    return bits_ == o.bits_;
  }
  constexpr bool operator!=(const PackedRowPtr& o) const {
    return bits_ != o.bits_;
  }

 private:
  uint64_t bits_;
};

}  // namespace idf
