#include "storage/row_batch.h"

#include <cstdlib>
#include <cstring>

#include "obs/metrics_registry.h"

namespace idf {
namespace {
constexpr size_t kAlignment = 64;  // cache-line aligned buffers
}

std::shared_ptr<RowBatch> RowBatch::Create(uint32_t capacity) {
  IDF_CHECK_MSG(capacity > 0, "zero-capacity row batch");
  const size_t padded = (capacity + kAlignment - 1) / kAlignment * kAlignment;
  auto* buf = static_cast<uint8_t*>(std::aligned_alloc(kAlignment, padded));
  IDF_CHECK_MSG(buf != nullptr, "row batch allocation failed");
  // First-touch the whole buffer now. This keeps page faults out of the
  // append path and charges the allocation cost where it belongs — it is
  // also why very large batches hurt *write* performance when appends are
  // small (the Fig. 5 sweep's right-hand side).
  std::memset(buf, 0, padded);
  static obs::Counter& allocations =
      obs::Registry::Global().GetCounter("storage.row_batch.allocations");
  allocations.Increment();
  return std::shared_ptr<RowBatch>(new RowBatch(buf, capacity));
}

RowBatch::~RowBatch() { std::free(data_); }

Result<uint32_t> RowBatch::Allocate(uint32_t len) {
  IDF_CHECK(len > 0);
  if (len > remaining()) {
    return Status::ResourceExhausted("row batch full: need " +
                                     std::to_string(len) + " bytes, have " +
                                     std::to_string(remaining()));
  }
  const uint32_t offset = used_;
  used_ += len;
  ++num_rows_;
  return offset;
}

std::shared_ptr<RowBatch> RowBatch::Clone() const {
  static obs::Counter& clones =
      obs::Registry::Global().GetCounter("storage.row_batch.clones");
  clones.Increment();
  std::shared_ptr<RowBatch> copy = Create(capacity_);
  std::memcpy(copy->data_, data_, used_);
  copy->used_ = used_;
  copy->num_rows_ = num_rows_;
  return copy;
}

}  // namespace idf
