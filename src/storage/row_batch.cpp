#include "storage/row_batch.h"

#include <cstdlib>
#include <cstring>
#include <fstream>

#include "obs/metrics_registry.h"

namespace idf {
namespace {
constexpr size_t kAlignment = 64;  // cache-line aligned buffers

/// Live-batch gauges (the counters PartitionStore kept privately before the
/// memory governor made residency a first-class, process-wide quantity).
struct BatchGauges {
  obs::Gauge& resident_bytes =
      obs::Registry::Global().GetGauge("storage.resident_bytes");
  obs::Gauge& num_batches =
      obs::Registry::Global().GetGauge("storage.num_batches");

  static BatchGauges& Get() {
    static BatchGauges* gauges = new BatchGauges();
    return *gauges;
  }
};

}  // namespace

uint64_t RowBatch::PaddedBytes(uint32_t capacity) {
  return (static_cast<uint64_t>(capacity) + kAlignment - 1) / kAlignment *
         kAlignment;
}

std::shared_ptr<RowBatch> RowBatch::Create(uint32_t capacity) {
  IDF_CHECK_MSG(capacity > 0, "zero-capacity row batch");
  const size_t padded = PaddedBytes(capacity);
  auto* buf = static_cast<uint8_t*>(std::aligned_alloc(kAlignment, padded));
  IDF_CHECK_MSG(buf != nullptr, "row batch allocation failed");
  // First-touch the whole buffer now. This keeps page faults out of the
  // append path and charges the allocation cost where it belongs — it is
  // also why very large batches hurt *write* performance when appends are
  // small (the Fig. 5 sweep's right-hand side).
  std::memset(buf, 0, padded);
  static obs::Counter& allocations =
      obs::Registry::Global().GetCounter("storage.row_batch.allocations");
  allocations.Increment();
  BatchGauges& gauges = BatchGauges::Get();
  gauges.num_batches.Add(1);
  gauges.resident_bytes.Add(static_cast<double>(padded));
  auto batch = std::shared_ptr<RowBatch>(new RowBatch(buf, capacity));
  // Registers the allocation with the memory governor; may evict sealed
  // batches elsewhere to make room.
  batch->AccountAllocated(padded);
  return batch;
}

RowBatch::~RowBatch() {
  // Must run before any member is torn down: blocks until an in-flight
  // eviction of this batch finishes, then deregisters it.
  RetireFromGovernor();
  BatchGauges& gauges = BatchGauges::Get();
  gauges.num_batches.Add(-1);
  if (data_ != nullptr) {
    gauges.resident_bytes.Add(-static_cast<double>(padded_bytes()));
    std::free(data_);
  }
}

Result<uint32_t> RowBatch::Allocate(uint32_t len) {
  IDF_CHECK(len > 0);
  IDF_CHECK_MSG(!sealed(), "append into a sealed row batch");
  if (len > remaining()) {
    return Status::ResourceExhausted("row batch full: need " +
                                     std::to_string(len) + " bytes, have " +
                                     std::to_string(remaining()));
  }
  const uint32_t offset = used_;
  used_ += len;
  ++num_rows_;
  return offset;
}

std::shared_ptr<RowBatch> RowBatch::Clone() const {
  static obs::Counter& clones =
      obs::Registry::Global().GetCounter("storage.row_batch.clones");
  clones.Increment();
  mem::AccessScope scope;
  EnsureReadable();
  std::shared_ptr<RowBatch> copy = Create(capacity_);
  std::memcpy(copy->data_, data_, used_);
  copy->used_ = used_;
  copy->num_rows_ = num_rows_;
  return copy;
}

void RowBatch::Seal() { SealForGovernor(num_rows_); }

Result<uint64_t> RowBatch::SpillPayload(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Unavailable("cannot open spill file '" + path + "'");
  }
  // Rows are self-delimiting encoded bytes — the same verbatim encoding
  // core/persistence.cpp writes into part-<N>.bin files, which is what lets
  // lineage recovery salvage spill segments directly.
  out.write(reinterpret_cast<const char*>(data_), used_);
  out.flush();
  if (!out) return Status::Unavailable("short write to '" + path + "'");
  return static_cast<uint64_t>(used_);
}

void RowBatch::ReleasePayload() {
  BatchGauges::Get().resident_bytes.Add(-static_cast<double>(padded_bytes()));
  std::free(data_);
  data_ = nullptr;
}

Status RowBatch::ReloadPayload(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::Unavailable("cannot open spill file '" + path + "'");
  const size_t padded = PaddedBytes(capacity_);
  auto* buf = static_cast<uint8_t*>(std::aligned_alloc(kAlignment, padded));
  IDF_CHECK_MSG(buf != nullptr, "row batch reload allocation failed");
  std::memset(buf + used_, 0, padded - used_);
  in.read(reinterpret_cast<char*>(buf), used_);
  if (!in || in.gcount() != static_cast<std::streamsize>(used_)) {
    std::free(buf);
    return Status::Unavailable("short read from spill file '" + path + "'");
  }
  data_ = buf;
  BatchGauges::Get().resident_bytes.Add(static_cast<double>(padded_bytes()));
  return Status::OK();
}

}  // namespace idf
