// Binary row layout for the Indexed Batch RDD's row batches.
//
// The paper stores rows in "binary, unsafe arrays" off the JVM heap
// (§III-C/F). Our equivalent is a schema-driven layout over raw buffers:
//
//   offset 0   : uint32  row_size        (total bytes, incl. this header)
//   offset 4   : uint32  reserved/padding
//   offset 8   : uint64  back_ptr        (PackedRowPtr bits; §III-C backward
//                                         pointer to previous row w/ same key)
//   offset 16  : null bitmap             ((nfields+7)/8 bytes, padded to 8)
//   then       : fixed-width slots       (aligned; strings hold off/len)
//   then       : var-length data         (string bytes)
//
// Rows are self-contained: decoding needs only the layout and a pointer.
// Maximum row size is PackedRowPtr::kMaxRowSize (1 KB, as in the paper).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "storage/packed_ptr.h"
#include "types/schema.h"

namespace idf {

class RowLayout {
 public:
  explicit RowLayout(SchemaPtr schema);

  const Schema& schema() const { return *schema_; }
  const SchemaPtr& schema_ptr() const { return schema_; }

  /// Bytes this row will occupy when encoded, or InvalidArgument if it
  /// exceeds the 1 KB row bound or mismatches the schema.
  Result<uint32_t> ComputeRowSize(const RowVec& row) const;

  /// Encodes `row` at `dst` (which must have ComputeRowSize bytes available).
  /// `back_ptr` seeds the backward-pointer header.
  void EncodeRow(const RowVec& row, uint8_t* dst, PackedRowPtr back_ptr) const;

  /// Full decode to a RowVec (API-boundary path; hot paths use accessors).
  RowVec DecodeRow(const uint8_t* src) const;

  // ---- zero-copy field accessors -------------------------------------

  static uint32_t RowSize(const uint8_t* src) {
    uint32_t s;
    std::memcpy(&s, src, sizeof(s));
    return s;
  }
  static PackedRowPtr BackPtr(const uint8_t* src) {
    uint64_t bits;
    std::memcpy(&bits, src + 8, sizeof(bits));
    return PackedRowPtr::FromBits(bits);
  }
  static void SetBackPtr(uint8_t* dst, PackedRowPtr p) {
    const uint64_t bits = p.bits();
    std::memcpy(dst + 8, &bits, sizeof(bits));
  }

  bool IsNull(const uint8_t* src, size_t col) const {
    IDF_CHECK(col < slot_offsets_.size());
    return (src[16 + col / 8] >> (col % 8)) & 1;
  }

  bool GetBool(const uint8_t* src, size_t col) const {
    return src[SlotOffset(col, TypeId::kBool)] != 0;
  }
  int32_t GetInt32(const uint8_t* src, size_t col) const {
    int32_t v;
    std::memcpy(&v, src + SlotOffset(col, TypeId::kInt32), sizeof(v));
    return v;
  }
  int64_t GetInt64(const uint8_t* src, size_t col) const {
    int64_t v;
    std::memcpy(&v, src + SlotOffset(col, TypeId::kInt64), sizeof(v));
    return v;
  }
  double GetFloat64(const uint8_t* src, size_t col) const {
    double v;
    std::memcpy(&v, src + SlotOffset(col, TypeId::kFloat64), sizeof(v));
    return v;
  }
  std::string_view GetString(const uint8_t* src, size_t col) const {
    const size_t slot = SlotOffset(col, TypeId::kString);
    uint32_t off, len;
    std::memcpy(&off, src + slot, sizeof(off));
    std::memcpy(&len, src + slot + 4, sizeof(len));
    return std::string_view(reinterpret_cast<const char*>(src) + off, len);
  }

  /// Column value as a Value (dispatches on declared type; handles nulls).
  Value GetValue(const uint8_t* src, size_t col) const;

  /// 64-bit key code of a column, consistent with IndexKeyCode(Value) below:
  /// integer columns use their value hashed by the trie (identity here,
  /// Mix64 in the trie); strings hash their bytes — the lookup path then
  /// verifies the actual bytes to resolve collisions (§IV-E).
  uint64_t KeyCode(const uint8_t* src, size_t col) const;

  /// Fixed-section size (header + bitmap + slots); var data starts here.
  uint32_t fixed_size() const { return fixed_size_; }

 private:
  size_t SlotOffset(size_t col, TypeId expect) const {
    IDF_CHECK(col < slot_offsets_.size());
    IDF_CHECK(schema_->field(col).type == expect);
    return slot_offsets_[col];
  }

  SchemaPtr schema_;
  std::vector<uint32_t> slot_offsets_;
  uint32_t bitmap_bytes_ = 0;
  uint32_t fixed_size_ = 0;
};

/// The 64-bit key code for indexing a Value of any supported type. Matches
/// RowLayout::KeyCode for the same column value, so a user-supplied lookup
/// key probes the slot the stored row occupies.
uint64_t IndexKeyCode(const Value& key);

/// Whether key codes of this type are injective (no verify step needed).
/// Strings and doubles hash, so equal codes require verifying the column.
inline bool KeyCodeNeedsVerify(TypeId type) {
  return type == TypeId::kString || type == TypeId::kFloat64;
}

}  // namespace idf
