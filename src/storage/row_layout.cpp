#include "storage/row_layout.h"

#include <cstring>

namespace idf {
namespace {

constexpr uint32_t kHeaderBytes = 16;  // row_size + pad + back_ptr

uint32_t AlignUp(uint32_t x, uint32_t a) { return (x + a - 1) / a * a; }

}  // namespace

RowLayout::RowLayout(SchemaPtr schema) : schema_(std::move(schema)) {
  IDF_CHECK(schema_ != nullptr);
  const size_t n = schema_->num_fields();
  bitmap_bytes_ = AlignUp(static_cast<uint32_t>((n + 7) / 8), 8);
  uint32_t cursor = kHeaderBytes + bitmap_bytes_;
  slot_offsets_.resize(n);

  // Lay out 8-byte slots first, then 4-byte, then 1-byte, so every slot is
  // naturally aligned without per-field padding.
  for (uint32_t width : {8u, 4u, 1u}) {
    for (size_t i = 0; i < n; ++i) {
      if (FixedSlotWidth(schema_->field(i).type) != width) continue;
      slot_offsets_[i] = cursor;
      cursor += width;
    }
  }
  fixed_size_ = AlignUp(cursor, 4);  // var-length offsets stay 4-aligned
}

Result<uint32_t> RowLayout::ComputeRowSize(const RowVec& row) const {
  IDF_RETURN_IF_ERROR(ValidateRow(*schema_, row));
  uint64_t size = fixed_size_;
  for (size_t i = 0; i < row.size(); ++i) {
    if (schema_->field(i).type == TypeId::kString && !row[i].is_null()) {
      size += row[i].string_value().size();
    }
  }
  if (size > PackedRowPtr::kMaxRowSize) {
    return Status::InvalidArgument(
        "row of " + std::to_string(size) + " bytes exceeds the " +
        std::to_string(PackedRowPtr::kMaxRowSize) + "-byte row bound");
  }
  return static_cast<uint32_t>(size);
}

void RowLayout::EncodeRow(const RowVec& row, uint8_t* dst,
                          PackedRowPtr back_ptr) const {
  Result<uint32_t> size = ComputeRowSize(row);
  IDF_CHECK_OK(size.status());
  const uint32_t row_size = *size;

  std::memset(dst, 0, fixed_size_);
  std::memcpy(dst, &row_size, sizeof(row_size));
  SetBackPtr(dst, back_ptr);

  uint32_t var_cursor = fixed_size_;
  for (size_t i = 0; i < row.size(); ++i) {
    const Value& v = row[i];
    if (v.is_null()) {
      dst[16 + i / 8] |= static_cast<uint8_t>(1u << (i % 8));
      continue;  // slot stays zeroed
    }
    uint8_t* slot = dst + slot_offsets_[i];
    switch (schema_->field(i).type) {
      case TypeId::kBool: {
        *slot = v.bool_value() ? 1 : 0;
        break;
      }
      case TypeId::kInt32: {
        const int32_t x = v.int32_value();
        std::memcpy(slot, &x, sizeof(x));
        break;
      }
      case TypeId::kInt64: {
        const int64_t x = v.int64_value();
        std::memcpy(slot, &x, sizeof(x));
        break;
      }
      case TypeId::kFloat64: {
        const double x = v.float64_value();
        std::memcpy(slot, &x, sizeof(x));
        break;
      }
      case TypeId::kString: {
        const std::string& s = v.string_value();
        const uint32_t off = var_cursor;
        const uint32_t len = static_cast<uint32_t>(s.size());
        std::memcpy(slot, &off, sizeof(off));
        std::memcpy(slot + 4, &len, sizeof(len));
        std::memcpy(dst + var_cursor, s.data(), s.size());
        var_cursor += len;
        break;
      }
    }
  }
  IDF_CHECK(var_cursor == row_size);
}

RowVec RowLayout::DecodeRow(const uint8_t* src) const {
  const size_t n = schema_->num_fields();
  RowVec row;
  row.reserve(n);
  for (size_t i = 0; i < n; ++i) row.push_back(GetValue(src, i));
  return row;
}

Value RowLayout::GetValue(const uint8_t* src, size_t col) const {
  const Field& f = schema_->field(col);
  if (IsNull(src, col)) return Value::Null(f.type);
  switch (f.type) {
    case TypeId::kBool: return Value::Bool(GetBool(src, col));
    case TypeId::kInt32: return Value::Int32(GetInt32(src, col));
    case TypeId::kInt64: return Value::Int64(GetInt64(src, col));
    case TypeId::kFloat64: return Value::Float64(GetFloat64(src, col));
    case TypeId::kString: {
      std::string_view s = GetString(src, col);
      return Value::String(std::string(s));
    }
  }
  return Value();
}

uint64_t RowLayout::KeyCode(const uint8_t* src, size_t col) const {
  const Field& f = schema_->field(col);
  IDF_CHECK_MSG(!IsNull(src, col), "null values are not indexable");
  switch (f.type) {
    case TypeId::kBool: return GetBool(src, col) ? 1 : 0;
    case TypeId::kInt32: return static_cast<uint64_t>(
        static_cast<int64_t>(GetInt32(src, col)));
    case TypeId::kInt64: return static_cast<uint64_t>(GetInt64(src, col));
    case TypeId::kFloat64: return HashDouble(GetFloat64(src, col));
    case TypeId::kString: return HashString(GetString(src, col));
  }
  return 0;
}

uint64_t IndexKeyCode(const Value& key) {
  IDF_CHECK_MSG(!key.is_null(), "null values are not indexable");
  switch (key.type()) {
    case TypeId::kBool: return key.bool_value() ? 1 : 0;
    case TypeId::kInt32: return static_cast<uint64_t>(
        static_cast<int64_t>(key.int32_value()));
    case TypeId::kInt64: return static_cast<uint64_t>(key.int64_value());
    case TypeId::kFloat64: return HashDouble(key.float64_value());
    case TypeId::kString: return HashString(key.string_value());
  }
  return 0;
}

}  // namespace idf
